#include "models/gru4rec.h"

#include "common/log.h"
#include "tensor/arena.h"
#include "tensor/ops.h"

namespace causer::models {

using nn::Tensor;

Gru4Rec::Gru4Rec(const ModelConfig& config) : RepresentationModel(config) {
  in_items_ = std::make_unique<nn::Embedding>(config.num_items,
                                              config.embedding_dim, rng_);
  cell_ = std::make_unique<nn::GruCell>(config.embedding_dim,
                                        config.hidden_dim, rng_);
  out_proj_ =
      std::make_unique<nn::Linear>(config.hidden_dim, config.embedding_dim,
                                   rng_);
  RegisterModule(in_items_.get());
  RegisterModule(cell_.get());
  RegisterModule(out_proj_.get());
  FinalizeOptimizer();
}

Tensor Gru4Rec::Represent(int user, const std::vector<data::Step>& history) {
  (void)user;  // session-based: no user embedding
  Tensor h = cell_->InitialState();
  for (const auto& step : history) {
    if (step.items.empty()) continue;
    h = cell_->Forward(StepEmbedding(*in_items_, step), h);
  }
  return out_proj_->Forward(h);
}

/// Incremental session: the history window (bounded by max_history, the
/// only part of the history ScoreAll can see) plus the GRU hidden state
/// after consuming it. The hidden floats are copied out of each step's
/// arena, so the state owns plain heap storage.
class Gru4Rec::State : public SessionState {
 public:
  std::vector<data::Step> window;
  std::vector<float> h;  // [hidden_dim]; empty = no non-empty step yet
  /// The window slid (an old step left): the cached h includes a step that
  /// no longer counts, so it must be replayed from the window.
  bool dirty = false;
};

std::unique_ptr<SessionState> Gru4Rec::NewSessionState(int /*user*/) {
  return std::make_unique<State>();
}

void Gru4Rec::AdvanceState(SessionState& state, const data::Step& step) {
  auto* s = dynamic_cast<State*>(&state);
  CAUSER_CHECK(s != nullptr);
  s->window.push_back(step);
  if (static_cast<int>(s->window.size()) > config_.max_history) {
    s->window.erase(s->window.begin());
    s->dirty = true;  // h still carries the evicted step; rebuild lazily
  }
  if (s->dirty || step.items.empty()) return;  // ScoreAll skips empty steps
  tensor::NoGradGuard guard;
  tensor::ArenaScope arena_scope;
  Tensor h_prev = s->h.empty()
                      ? cell_->InitialState()
                      : Tensor::FromData(1, cell_->hidden_dim(), s->h);
  // Same cell application Represent chains — feeding it the copied-out
  // floats of the previous state yields bit-identical values.
  Tensor h = cell_->Forward(StepEmbedding(*in_items_, step), h_prev);
  s->h.assign(h.data().begin(), h.data().end());
}

void Gru4Rec::RebuildIfDirty(State& state) {
  if (!state.dirty) return;
  tensor::NoGradGuard guard;
  tensor::ArenaScope arena_scope;
  Tensor h = cell_->InitialState();
  bool any = false;
  for (const auto& step : state.window) {
    if (step.items.empty()) continue;
    h = cell_->Forward(StepEmbedding(*in_items_, step), h);
    any = true;
  }
  if (any) {
    state.h.assign(h.data().begin(), h.data().end());
  } else {
    state.h.clear();
  }
  state.dirty = false;
}

Tensor Gru4Rec::RepFromState(State& state) {
  RebuildIfDirty(state);
  Tensor h = state.h.empty()
                 ? cell_->InitialState()
                 : Tensor::FromData(1, cell_->hidden_dim(), state.h);
  return out_proj_->Forward(h);
}

std::vector<float> Gru4Rec::ScoreFromState(SessionState& state) {
  auto* s = dynamic_cast<State*>(&state);
  CAUSER_CHECK(s != nullptr);
  tensor::NoGradGuard guard;
  // ScoreAll returns zeros for an empty history without running the
  // backbone; match it exactly.
  if (s->window.empty()) return std::vector<float>(config_.num_items, 0.0f);
  tensor::ArenaScope arena_scope;
  Tensor rep = RepFromState(*s);
  Tensor logits = tensor::MatMul(out_items_->weight(), tensor::Transpose(rep));
  std::vector<float> out(config_.num_items);
  for (int i = 0; i < config_.num_items; ++i) out[i] = logits.At(i, 0);
  return out;
}

bool Gru4Rec::StateRep(SessionState& state, float* out) {
  auto* s = dynamic_cast<State*>(&state);
  CAUSER_CHECK(s != nullptr);
  if (s->window.empty()) return false;  // ScoreAll's all-zeros special case
  tensor::NoGradGuard guard;
  tensor::ArenaScope arena_scope;
  Tensor rep = RepFromState(*s);
  for (int j = 0; j < rep.cols(); ++j) out[j] = rep.At(0, j);
  return true;
}

const Tensor* Gru4Rec::OutputItemTable() const {
  return &out_items_->weight();
}

}  // namespace causer::models
