#include "models/gru4rec.h"

#include "tensor/ops.h"

namespace causer::models {

using nn::Tensor;

Gru4Rec::Gru4Rec(const ModelConfig& config) : RepresentationModel(config) {
  in_items_ = std::make_unique<nn::Embedding>(config.num_items,
                                              config.embedding_dim, rng_);
  cell_ = std::make_unique<nn::GruCell>(config.embedding_dim,
                                        config.hidden_dim, rng_);
  out_proj_ =
      std::make_unique<nn::Linear>(config.hidden_dim, config.embedding_dim,
                                   rng_);
  RegisterModule(in_items_.get());
  RegisterModule(cell_.get());
  RegisterModule(out_proj_.get());
  FinalizeOptimizer();
}

Tensor Gru4Rec::Represent(int user, const std::vector<data::Step>& history) {
  (void)user;  // session-based: no user embedding
  Tensor h = cell_->InitialState();
  for (const auto& step : history) {
    if (step.items.empty()) continue;
    h = cell_->Forward(StepEmbedding(*in_items_, step), h);
  }
  return out_proj_->Forward(h);
}

}  // namespace causer::models
