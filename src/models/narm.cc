#include "models/narm.h"

#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace causer::models {

using nn::Tensor;

Narm::Narm(const ModelConfig& config) : RepresentationModel(config) {
  in_items_ = std::make_unique<nn::Embedding>(config.num_items,
                                              config.embedding_dim, rng_);
  cell_ = std::make_unique<nn::GruCell>(config.embedding_dim,
                                        config.hidden_dim, rng_);
  attention_ = std::make_unique<nn::BilinearAttention>(config.hidden_dim, rng_);
  out_proj_ = std::make_unique<nn::Linear>(2 * config.hidden_dim,
                                           config.embedding_dim, rng_);
  RegisterModule(in_items_.get());
  RegisterModule(cell_.get());
  RegisterModule(attention_.get());
  RegisterModule(out_proj_.get());
  FinalizeOptimizer();
}

Tensor Narm::EncodeStates(const std::vector<data::Step>& history) {
  Tensor h = cell_->InitialState();
  std::vector<Tensor> states;
  for (const auto& step : history) {
    if (step.items.empty()) continue;
    h = cell_->Forward(StepEmbedding(*in_items_, step), h);
    states.push_back(h);
  }
  CAUSER_CHECK(!states.empty());
  return tensor::ConcatRows(states);  // [T, hidden]
}

Tensor Narm::Represent(int user, const std::vector<data::Step>& history) {
  (void)user;
  Tensor states = EncodeStates(history);                     // [T, h]
  Tensor global = tensor::SliceRows(states, states.rows() - 1, 1);  // [1, h]
  Tensor local = attention_->Pool(states, global);           // [1, h]
  return out_proj_->Forward(tensor::ConcatCols(global, local));
}

std::vector<double> Narm::AttentionWeights(
    const data::EvalInstance& instance) {
  tensor::NoGradGuard guard;
  const auto truncated = Truncate(instance.history);
  const size_t offset = instance.history.size() - truncated.size();
  std::vector<double> out(instance.history.size(), 0.0);
  if (truncated.empty()) return out;
  Tensor states = EncodeStates(truncated);
  Tensor query = tensor::SliceRows(states, states.rows() - 1, 1);
  Tensor w = attention_->Weights(states, query);  // [T, 1]
  // Map encoded step positions back onto original history positions
  // (steps with empty baskets were skipped by the encoder).
  int row = 0;
  for (size_t t = 0; t < truncated.size(); ++t) {
    if (truncated[t].items.empty()) continue;
    if (row < w.rows()) out[offset + t] = w.At(row, 0);
    ++row;
  }
  return out;
}

}  // namespace causer::models
