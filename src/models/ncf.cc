#include "models/ncf.h"

#include "data/sampler.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace causer::models {

using nn::Tensor;

Ncf::Ncf(const ModelConfig& config) : SequentialRecommender(config) {
  const int d = config.embedding_dim;
  users_gmf_ = std::make_unique<nn::Embedding>(config.num_users, d, rng_);
  items_gmf_ = std::make_unique<nn::Embedding>(config.num_items, d, rng_);
  users_mlp_ = std::make_unique<nn::Embedding>(config.num_users, d, rng_);
  items_mlp_ = std::make_unique<nn::Embedding>(config.num_items, d, rng_);
  mlp_ = std::make_unique<nn::Mlp>(std::vector<int>{2 * d, d, d / 2},
                                   nn::Mlp::Activation::kRelu, rng_);
  fusion_ = std::make_unique<nn::Linear>(d + d / 2, 1, rng_);
  RegisterModule(users_gmf_.get());
  RegisterModule(items_gmf_.get());
  RegisterModule(users_mlp_.get());
  RegisterModule(items_mlp_.get());
  RegisterModule(mlp_.get());
  RegisterModule(fusion_.get());
  optimizer_ = std::make_unique<nn::Adam>(Parameters(), config.learning_rate);
}

Tensor Ncf::Logits(int user, const std::vector<int>& item_ids) {
  const int n = static_cast<int>(item_ids.size());
  Tensor ones = Tensor::Full(n, 1, 1.0f);
  Tensor pu_gmf = tensor::MatMul(ones, users_gmf_->Row(user));  // [n, d]
  Tensor pu_mlp = tensor::MatMul(ones, users_mlp_->Row(user));  // [n, d]
  Tensor qi_gmf = items_gmf_->Forward(item_ids);                // [n, d]
  Tensor qi_mlp = items_mlp_->Forward(item_ids);                // [n, d]

  Tensor gmf = tensor::Mul(pu_gmf, qi_gmf);                          // [n, d]
  Tensor hidden = mlp_->Forward(tensor::ConcatCols(pu_mlp, qi_mlp));  // [n, d/2]
  return fusion_->Forward(tensor::ConcatCols(gmf, hidden));          // [n, 1]
}

std::vector<float> Ncf::ScoreAll(int user,
                                 const std::vector<data::Step>& history) {
  (void)history;
  tensor::NoGradGuard guard;
  std::vector<int> all(config_.num_items);
  for (int i = 0; i < config_.num_items; ++i) all[i] = i;
  Tensor logits = Logits(user, all);
  std::vector<float> out(config_.num_items);
  for (int i = 0; i < config_.num_items; ++i) out[i] = logits.At(i, 0);
  return out;
}

double Ncf::TrainEpoch(const std::vector<data::Sequence>& train) {
  std::vector<std::pair<int, int>> pairs;
  for (const auto& seq : train) {
    for (const auto& step : seq.steps) {
      for (int item : step.items) pairs.emplace_back(seq.user, item);
    }
  }
  rng_.Shuffle(pairs);

  double total = 0.0;
  for (const auto& [user, pos] : pairs) {
    std::vector<int> ids{pos};
    auto negs =
        data::SampleNegatives(config_.num_items, ids, config_.num_negatives,
                              rng_);
    ids.insert(ids.end(), negs.begin(), negs.end());
    std::vector<float> labels(ids.size(), 0.0f);
    labels[0] = 1.0f;

    Tensor logits = Logits(user, ids);
    Tensor targets =
        Tensor::FromData(static_cast<int>(ids.size()), 1, labels);
    Tensor loss = tensor::BceWithLogits(logits, targets);
    optimizer_->ZeroGrad();
    tensor::Backward(loss);
    optimizer_->ClipGradNorm(config_.grad_clip);
    optimizer_->Step();
    total += loss.Item();
  }
  return pairs.empty() ? 0.0 : total / pairs.size();
}

}  // namespace causer::models
