#ifndef CAUSER_MODELS_VTRNN_H_
#define CAUSER_MODELS_VTRNN_H_

#include <memory>

#include "models/recommender.h"
#include "nn/linear.h"
#include "nn/rnn_cells.h"

namespace causer::models {

/// VTRNN (Cui et al., 2016): a recurrent recommender whose step inputs are
/// the concatenation of the item embedding and a learned projection of the
/// item's raw side features (visual/textual in the original; our synthetic
/// raw features here). Requires config.item_features.
class Vtrnn : public RepresentationModel {
 public:
  explicit Vtrnn(const ModelConfig& config);

  std::string name() const override { return "VTRNN"; }

 protected:
  nn::Tensor Represent(int user,
                       const std::vector<data::Step>& history) override;

 private:
  /// Mean raw-feature vector of a step: [1, feature_dim] constant tensor.
  nn::Tensor StepFeatures(const data::Step& step) const;

  std::unique_ptr<nn::Embedding> in_items_;
  std::unique_ptr<nn::Linear> feature_proj_;
  std::unique_ptr<nn::GruCell> cell_;
  std::unique_ptr<nn::Linear> out_proj_;
  int feature_dim_;
};

}  // namespace causer::models

#endif  // CAUSER_MODELS_VTRNN_H_
