#ifndef CAUSER_MODELS_NARM_H_
#define CAUSER_MODELS_NARM_H_

#include <memory>

#include "models/recommender.h"
#include "nn/attention.h"
#include "nn/linear.h"
#include "nn/rnn_cells.h"

namespace causer::models {

/// NARM (Li et al., 2017): a GRU encoder whose final state provides the
/// *global* preference, plus an attention mechanism over all hidden states
/// (query = final state) providing the *local* purpose representation; the
/// concatenation is projected into the item-embedding space for scoring.
class Narm : public RepresentationModel {
 public:
  explicit Narm(const ModelConfig& config);

  std::string name() const override { return "NARM"; }

  /// Attention weights over history steps for a given instance, exposed for
  /// the explanation experiments (Fig 8 compares NARM's attention-based
  /// explanations with Causer's causal ones).
  std::vector<double> AttentionWeights(const data::EvalInstance& instance);

 protected:
  nn::Tensor Represent(int user,
                       const std::vector<data::Step>& history) override;

 private:
  /// Runs the GRU; returns stacked hidden states [T, hidden].
  nn::Tensor EncodeStates(const std::vector<data::Step>& history);

  std::unique_ptr<nn::Embedding> in_items_;
  std::unique_ptr<nn::GruCell> cell_;
  std::unique_ptr<nn::BilinearAttention> attention_;
  std::unique_ptr<nn::Linear> out_proj_;  // [2*hidden] -> embedding
};

}  // namespace causer::models

#endif  // CAUSER_MODELS_NARM_H_
