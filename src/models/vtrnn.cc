#include "models/vtrnn.h"

#include "common/log.h"
#include "tensor/ops.h"

namespace causer::models {

using nn::Tensor;

Vtrnn::Vtrnn(const ModelConfig& config) : RepresentationModel(config) {
  CAUSER_CHECK(config.item_features != nullptr &&
               !config.item_features->empty());
  feature_dim_ = static_cast<int>((*config.item_features)[0].size());
  const int d = config.embedding_dim;
  in_items_ = std::make_unique<nn::Embedding>(config.num_items, d, rng_);
  feature_proj_ = std::make_unique<nn::Linear>(feature_dim_, d, rng_);
  cell_ = std::make_unique<nn::GruCell>(2 * d, config.hidden_dim, rng_);
  out_proj_ = std::make_unique<nn::Linear>(config.hidden_dim, d, rng_);
  RegisterModule(in_items_.get());
  RegisterModule(feature_proj_.get());
  RegisterModule(cell_.get());
  RegisterModule(out_proj_.get());
  FinalizeOptimizer();
}

Tensor Vtrnn::StepFeatures(const data::Step& step) const {
  std::vector<float> mean(feature_dim_, 0.0f);
  for (int item : step.items) {
    const auto& f = (*config_.item_features)[item];
    for (int k = 0; k < feature_dim_; ++k) mean[k] += f[k];
  }
  for (auto& v : mean) v /= static_cast<float>(step.items.size());
  return Tensor::FromData(1, feature_dim_, std::move(mean));
}

Tensor Vtrnn::Represent(int user, const std::vector<data::Step>& history) {
  (void)user;
  Tensor h = cell_->InitialState();
  for (const auto& step : history) {
    if (step.items.empty()) continue;
    Tensor emb = StepEmbedding(*in_items_, step);
    Tensor feat = feature_proj_->Forward(StepFeatures(step));
    h = cell_->Forward(tensor::ConcatCols(emb, feat), h);
  }
  return out_proj_->Forward(h);
}

}  // namespace causer::models
