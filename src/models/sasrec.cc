#include "models/sasrec.h"

#include "tensor/ops.h"

namespace causer::models {

using nn::Tensor;

SasRec::SasRec(const ModelConfig& config) : RepresentationModel(config) {
  const int d = config.embedding_dim;
  in_items_ = std::make_unique<nn::Embedding>(config.num_items, d, rng_);
  positions_ = std::make_unique<nn::Embedding>(config.max_history, d, rng_);
  attention_ = std::make_unique<nn::CausalSelfAttention>(d, rng_);
  ffn1_ = std::make_unique<nn::Linear>(d, d, rng_);
  ffn2_ = std::make_unique<nn::Linear>(d, d, rng_);
  norm1_ = std::make_unique<nn::LayerNorm>(d);
  norm2_ = std::make_unique<nn::LayerNorm>(d);
  RegisterModule(in_items_.get());
  RegisterModule(positions_.get());
  RegisterModule(attention_.get());
  RegisterModule(ffn1_.get());
  RegisterModule(ffn2_.get());
  RegisterModule(norm1_.get());
  RegisterModule(norm2_.get());
  FinalizeOptimizer();
}

Tensor SasRec::InputEmbedding(const data::Step& step) {
  return StepEmbedding(*in_items_, step);
}

Tensor SasRec::Represent(int user, const std::vector<data::Step>& history) {
  (void)user;
  std::vector<Tensor> embeds;
  for (const auto& step : history) {
    if (step.items.empty()) continue;
    embeds.push_back(InputEmbedding(step));
  }
  CAUSER_CHECK(!embeds.empty());
  const int t = static_cast<int>(embeds.size());
  Tensor x = tensor::ConcatRows(embeds);  // [T, d]
  std::vector<int> pos(t);
  for (int i = 0; i < t; ++i) pos[i] = config_.max_history - t + i;
  x = tensor::Add(x, positions_->Forward(pos));

  // Self-attention block with residual connection and layer norm.
  Tensor attended = norm1_->Forward(tensor::Add(attention_->Forward(x), x));
  // Pointwise FFN with residual and layer norm.
  Tensor ffn = ffn2_->Forward(tensor::Relu(ffn1_->Forward(attended)));
  Tensor out = norm2_->Forward(tensor::Add(ffn, attended));
  return tensor::SliceRows(out, t - 1, 1);
}

}  // namespace causer::models
