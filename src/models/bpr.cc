#include "models/bpr.h"

#include "data/sampler.h"
#include "nn/init.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace causer::models {

using nn::Tensor;

Bpr::Bpr(const ModelConfig& config) : SequentialRecommender(config) {
  users_ = std::make_unique<nn::Embedding>(config.num_users,
                                           config.embedding_dim, rng_);
  items_ = std::make_unique<nn::Embedding>(config.num_items,
                                           config.embedding_dim, rng_);
  RegisterModule(users_.get());
  RegisterModule(items_.get());
  item_bias_ = RegisterParameter(nn::ZeroParam(config.num_items, 1));
  optimizer_ = std::make_unique<nn::Adam>(Parameters(), config.learning_rate);
}

std::vector<float> Bpr::ScoreAll(int user,
                                 const std::vector<data::Step>& history) {
  (void)history;  // BPR ignores sequence context.
  tensor::NoGradGuard guard;
  Tensor pu = users_->Row(user);  // [1, d]
  Tensor logits = tensor::Add(
      tensor::MatMul(items_->weight(), tensor::Transpose(pu)), item_bias_);
  std::vector<float> out(config_.num_items);
  for (int i = 0; i < config_.num_items; ++i) out[i] = logits.At(i, 0);
  return out;
}

double Bpr::TrainEpoch(const std::vector<data::Sequence>& train) {
  // Flatten to (user, item) pairs.
  std::vector<std::pair<int, int>> pairs;
  for (const auto& seq : train) {
    for (const auto& step : seq.steps) {
      for (int item : step.items) pairs.emplace_back(seq.user, item);
    }
  }
  rng_.Shuffle(pairs);

  double total = 0.0;
  for (const auto& [user, pos] : pairs) {
    int neg = data::SampleNegatives(config_.num_items, {pos}, 1, rng_)[0];
    Tensor pu = users_->Row(user);
    Tensor qi = items_->Row(pos);
    Tensor qj = items_->Row(neg);
    Tensor x_pos = tensor::Add(tensor::SumRows(tensor::Mul(pu, qi)),
                               tensor::GatherRows(item_bias_, {pos}));
    Tensor x_neg = tensor::Add(tensor::SumRows(tensor::Mul(pu, qj)),
                               tensor::GatherRows(item_bias_, {neg}));
    Tensor diff = tensor::Sub(x_pos, x_neg);
    Tensor loss = tensor::BceWithLogits(diff, Tensor::Scalar(1.0f));
    optimizer_->ZeroGrad();
    tensor::Backward(loss);
    optimizer_->Step();
    total += loss.Item();
  }
  return pairs.empty() ? 0.0 : total / pairs.size();
}

}  // namespace causer::models
