#ifndef CAUSER_MODELS_BPR_H_
#define CAUSER_MODELS_BPR_H_

#include <memory>

#include "models/recommender.h"

namespace causer::models {

/// Bayesian Personalized Ranking (Rendle et al., 2012): matrix
/// factorization trained with the pairwise ranking loss
///   -log sigmoid(x_ui - x_uj)
/// for observed item i vs. sampled negative j. History-agnostic; included
/// as the paper's non-sequential baseline.
class Bpr : public SequentialRecommender {
 public:
  explicit Bpr(const ModelConfig& config);

  std::string name() const override { return "BPR"; }
  std::vector<float> ScoreAll(int user,
                              const std::vector<data::Step>& history) override;
  double TrainEpoch(const std::vector<data::Sequence>& train) override;

 private:
  std::unique_ptr<nn::Embedding> users_;
  std::unique_ptr<nn::Embedding> items_;
  nn::Tensor item_bias_;  // [V, 1]
  std::unique_ptr<nn::Adam> optimizer_;
};

}  // namespace causer::models

#endif  // CAUSER_MODELS_BPR_H_
