#ifndef CAUSER_MODELS_NCF_H_
#define CAUSER_MODELS_NCF_H_

#include <memory>

#include "models/recommender.h"
#include "nn/linear.h"

namespace causer::models {

/// Neural Collaborative Filtering (He et al., 2017): the NeuMF variant
/// combining generalized matrix factorization (elementwise p_u * q_i) with
/// an MLP over [p_u ; q_i], fused by a final linear layer. Trained with
/// pointwise BCE + negative sampling; history-agnostic.
class Ncf : public SequentialRecommender {
 public:
  explicit Ncf(const ModelConfig& config);

  std::string name() const override { return "NCF"; }
  std::vector<float> ScoreAll(int user,
                              const std::vector<data::Step>& history) override;
  double TrainEpoch(const std::vector<data::Sequence>& train) override;

 private:
  /// Logits for `user` against the item rows `items` ([n, d] each stream).
  nn::Tensor Logits(int user, const std::vector<int>& item_ids);

  std::unique_ptr<nn::Embedding> users_gmf_;
  std::unique_ptr<nn::Embedding> items_gmf_;
  std::unique_ptr<nn::Embedding> users_mlp_;
  std::unique_ptr<nn::Embedding> items_mlp_;
  std::unique_ptr<nn::Mlp> mlp_;
  std::unique_ptr<nn::Linear> fusion_;
  std::unique_ptr<nn::Adam> optimizer_;
};

}  // namespace causer::models

#endif  // CAUSER_MODELS_NCF_H_
