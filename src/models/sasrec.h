#ifndef CAUSER_MODELS_SASREC_H_
#define CAUSER_MODELS_SASREC_H_

#include <memory>

#include "models/recommender.h"
#include "nn/attention.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"

namespace causer::models {

/// SASRec (Kang & McAuley, 2018): item + positional embeddings feed a
/// causal self-attention block with a residual pointwise feed-forward
/// network; the representation at the last position scores the catalog.
class SasRec : public RepresentationModel {
 public:
  explicit SasRec(const ModelConfig& config);

  std::string name() const override { return "SASRec"; }

 protected:
  nn::Tensor Represent(int user,
                       const std::vector<data::Step>& history) override;

  /// Per-step input embedding hook (MMSARec overrides to add side info).
  virtual nn::Tensor InputEmbedding(const data::Step& step);

  std::unique_ptr<nn::Embedding> in_items_;
  std::unique_ptr<nn::Embedding> positions_;
  std::unique_ptr<nn::CausalSelfAttention> attention_;
  std::unique_ptr<nn::Linear> ffn1_;
  std::unique_ptr<nn::Linear> ffn2_;
  std::unique_ptr<nn::LayerNorm> norm1_;
  std::unique_ptr<nn::LayerNorm> norm2_;
};

}  // namespace causer::models

#endif  // CAUSER_MODELS_SASREC_H_
