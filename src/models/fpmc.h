#ifndef CAUSER_MODELS_FPMC_H_
#define CAUSER_MODELS_FPMC_H_

#include <memory>

#include "models/recommender.h"

namespace causer::models {

/// Factorizing Personalized Markov Chains (Rendle et al., 2010):
///   score(u, i | last basket B) = <P_u, Q_i> + (1/|B|) sum_{l in B} <M_l, N_i>
/// Combines matrix factorization with a first-order Markov transition
/// factorization. Trained with the S-BPR pairwise loss.
class Fpmc : public SequentialRecommender {
 public:
  explicit Fpmc(const ModelConfig& config);

  std::string name() const override { return "FPMC"; }
  std::vector<float> ScoreAll(int user,
                              const std::vector<data::Step>& history) override;
  double TrainEpoch(const std::vector<data::Sequence>& train) override;

 private:
  nn::Tensor ScorePair(int user, const std::vector<int>& basket, int item);

  std::unique_ptr<nn::Embedding> users_;       // P
  std::unique_ptr<nn::Embedding> items_mf_;    // Q
  std::unique_ptr<nn::Embedding> prev_items_;  // M
  std::unique_ptr<nn::Embedding> next_items_;  // N
  std::unique_ptr<nn::Adam> optimizer_;
};

}  // namespace causer::models

#endif  // CAUSER_MODELS_FPMC_H_
