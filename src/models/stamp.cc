#include "models/stamp.h"

#include "nn/init.h"
#include "tensor/ops.h"

namespace causer::models {

using nn::Tensor;

Stamp::Stamp(const ModelConfig& config) : RepresentationModel(config) {
  const int d = config.embedding_dim;
  in_items_ = std::make_unique<nn::Embedding>(config.num_items, d, rng_);
  w1_ = std::make_unique<nn::Linear>(d, d, rng_, /*with_bias=*/true);
  w2_ = std::make_unique<nn::Linear>(d, d, rng_, /*with_bias=*/false);
  w3_ = std::make_unique<nn::Linear>(d, d, rng_, /*with_bias=*/false);
  w0_ = RegisterParameter(nn::XavierUniform(d, 1, rng_));
  mlp_a_ = std::make_unique<nn::Linear>(d, d, rng_);
  mlp_t_ = std::make_unique<nn::Linear>(d, d, rng_);
  RegisterModule(in_items_.get());
  RegisterModule(w1_.get());
  RegisterModule(w2_.get());
  RegisterModule(w3_.get());
  RegisterModule(mlp_a_.get());
  RegisterModule(mlp_t_.get());
  FinalizeOptimizer();
}

Tensor Stamp::Represent(int user, const std::vector<data::Step>& history) {
  (void)user;
  std::vector<Tensor> embeds;
  for (const auto& step : history) {
    if (step.items.empty()) continue;
    embeds.push_back(StepEmbedding(*in_items_, step));
  }
  CAUSER_CHECK(!embeds.empty());
  Tensor x = tensor::ConcatRows(embeds);  // [T, d]
  const int t = x.rows();
  // m_s: session mean; m_t: last step embedding.
  Tensor m_s = tensor::ScalarMul(tensor::SumCols(x), 1.0f / t);  // [1, d]
  Tensor m_t = tensor::SliceRows(x, t - 1, 1);                   // [1, d]

  // Attention scores per step; W2 m_t and W3 m_s broadcast over rows.
  Tensor pre = tensor::Sigmoid(tensor::Add(
      tensor::Add(w1_->Forward(x), w2_->Forward(m_t)), w3_->Forward(m_s)));
  Tensor scores = tensor::MatMul(pre, w0_);  // [T, 1]
  // STAMP uses unnormalized attention; the attended memory is the
  // score-weighted sum of item embeddings.
  Tensor m_a = tensor::MatMul(tensor::Transpose(scores), x);  // [1, d]

  Tensor h_s = tensor::Tanh(mlp_a_->Forward(m_a));
  Tensor h_t = tensor::Tanh(mlp_t_->Forward(m_t));
  return tensor::Mul(h_s, h_t);
}

}  // namespace causer::models
