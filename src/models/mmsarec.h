#ifndef CAUSER_MODELS_MMSAREC_H_
#define CAUSER_MODELS_MMSAREC_H_

#include <memory>

#include "models/sasrec.h"
#include "nn/linear.h"

namespace causer::models {

/// MMSARec (Han et al., 2020): self-attentive sequential recommendation
/// with multi-modal side information encoded into the architecture. Here
/// the step input is the item embedding plus a learned projection of the
/// item's raw features. Requires config.item_features.
class MmsaRec : public SasRec {
 public:
  explicit MmsaRec(const ModelConfig& config);

  std::string name() const override { return "MMSARec"; }

 protected:
  nn::Tensor InputEmbedding(const data::Step& step) override;

 private:
  std::unique_ptr<nn::Linear> feature_proj_;
  int feature_dim_;
};

}  // namespace causer::models

#endif  // CAUSER_MODELS_MMSAREC_H_
