#ifndef CAUSER_MODELS_STAMP_H_
#define CAUSER_MODELS_STAMP_H_

#include <memory>

#include "models/recommender.h"
#include "nn/linear.h"

namespace causer::models {

/// STAMP (Liu et al., 2018): Short-Term Attention/Memory Priority model.
/// Attention over history item embeddings with a query built from the
/// session mean (long-term) and the last step (short-term); two MLPs embed
/// the attended memory and the last step, and their elementwise product is
/// the session representation.
class Stamp : public RepresentationModel {
 public:
  explicit Stamp(const ModelConfig& config);

  std::string name() const override { return "STAMP"; }

 protected:
  nn::Tensor Represent(int user,
                       const std::vector<data::Step>& history) override;

 private:
  std::unique_ptr<nn::Embedding> in_items_;
  // Attention network: a_t = w0^T sigmoid(W1 x_t + W2 m_t + W3 m_s + b).
  std::unique_ptr<nn::Linear> w1_, w2_, w3_;
  nn::Tensor w0_;  // [d, 1]
  std::unique_ptr<nn::Linear> mlp_a_;  // attended memory -> h_s
  std::unique_ptr<nn::Linear> mlp_t_;  // last step -> h_t
};

}  // namespace causer::models

#endif  // CAUSER_MODELS_STAMP_H_
