#ifndef CAUSER_MODELS_RECOMMENDER_H_
#define CAUSER_MODELS_RECOMMENDER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/serial.h"
#include "data/dataset.h"
#include "data/sampler.h"
#include "data/split.h"
#include "eval/evaluator.h"
#include "nn/embedding.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/quant.h"

namespace causer::models {

/// Training-loop instruments (see docs/OBSERVABILITY.md), shared by the
/// baseline training loops here and core::CauserModel's epoch loop.
/// Registered together on first touch.
struct TrainerMetricsT {
  metrics::Counter& epochs;            ///< trainer.epochs_total
  metrics::Counter& optimizer_steps;   ///< trainer.optimizer_steps_total
  metrics::Gauge& epoch_loss;          ///< trainer.epoch_loss
  metrics::Gauge& best_validation_ndcg;  ///< trainer.best_validation_ndcg
  metrics::Histogram& epoch_seconds;   ///< trainer.epoch_seconds
  metrics::Histogram& step_seconds;    ///< trainer.step_seconds
  metrics::Histogram& grad_norm;       ///< trainer.grad_norm
};

/// The shared instrument group (function-local static registration).
TrainerMetricsT& TrainerMetrics();

/// Fault-tolerance instruments (see docs/ROBUSTNESS.md): the numeric-health
/// sentinel and the checkpoint/resume machinery. Registered together when
/// Fit() first runs.
struct HealthMetricsT {
  metrics::Counter& nonfinite;    ///< trainer.health.nonfinite_total
  metrics::Counter& rollbacks;    ///< trainer.health.rollbacks_total
  metrics::Gauge& lr_scale;       ///< trainer.health.lr_scale
  metrics::Counter& checkpoint_writes;   ///< trainer.checkpoint.writes_total
  metrics::Counter& checkpoint_resumes;  ///< trainer.checkpoint.resumes_total
};

/// The shared fault-tolerance instrument group.
HealthMetricsT& HealthMetrics();

/// Hyper-parameters shared by all models in the comparison suite. Sized for
/// single-core CPU training on the scaled-down datasets.
struct ModelConfig {
  int num_users = 0;
  int num_items = 0;
  int embedding_dim = 16;
  int hidden_dim = 16;
  /// Negative samples per training example (sigmoid + negative sampling,
  /// the paper's Section II-A training scheme).
  int num_negatives = 5;
  /// History is truncated to the most recent `max_history` steps.
  int max_history = 12;
  float learning_rate = 0.01f;
  float grad_clip = 5.0f;
  /// Examples per optimizer step. 1 (the default) runs the legacy
  /// sequential loop — one forward/backward/clip/step per example,
  /// bit-identical to earlier releases under a fixed seed. Larger values
  /// accumulate the mean gradient of up to `batch_size` examples (scored
  /// concurrently on the shared pool when DefaultThreads() > 1, each worker
  /// backpropagating into a private parameter copy) before a single
  /// ClipGradNorm + Step.
  int batch_size = 1;
  uint64_t seed = 7;
  /// Item raw features (needed by VTRNN / MMSARec / Causer); may be null.
  const std::vector<std::vector<float>>* item_features = nullptr;
};

/// Opaque per-user incremental inference state for online serving (see
/// docs/PERFORMANCE.md, "Online serving"). Created by NewSessionState,
/// advanced one interaction at a time by AdvanceState, scored against the
/// full catalog by ScoreFromState; serve::SessionStore keeps one per active
/// user. A state is only valid with the model that created it.
class SessionState {
 public:
  virtual ~SessionState() = default;
};

/// Interface of every recommender in the comparison suite (Table IV).
/// Inherits the nn::Module parameter registry so the trainer can snapshot
/// and restore weights for early stopping.
class SequentialRecommender : public nn::Module {
 public:
  explicit SequentialRecommender(const ModelConfig& config)
      : config_(config), rng_(config.seed) {}

  /// Display name, e.g. "GRU4Rec".
  virtual std::string name() const = 0;

  /// Scores every item given the user's history (inference; higher =
  /// more likely to be the next interaction).
  virtual std::vector<float> ScoreAll(
      int user, const std::vector<data::Step>& history) = 0;

  /// One shuffled pass over the training sequences; returns mean loss.
  virtual double TrainEpoch(const std::vector<data::Sequence>& train) = 0;

  /// Hook invoked by Fit() after restoring the best parameter snapshot;
  /// models with derived caches (Causer's item-level W) invalidate them.
  /// The base drops the cached quantized item table — overrides should
  /// call it (or InvalidateQuantizedItemTable) on top of their own work.
  virtual void OnParametersRestored() { InvalidateQuantizedItemTable(); }

  /// Appends the model's training-resume state to `out`: everything beyond
  /// the parameters that the next epoch depends on. The base class covers
  /// the RNG stream (shuffle + negative sampling); overrides append their
  /// optimizer moments and schedule counters on top. Together with the
  /// parameters this makes a checkpointed resume bit-identical to an
  /// uninterrupted run (core/checkpoint.h).
  virtual void SaveTrainingState(std::string* out) const;

  /// Restores state written by SaveTrainingState. Overrides call the base
  /// first (same order as SaveTrainingState) and must leave derived caches
  /// invalidated. Returns false on a short or wrong-architecture blob;
  /// callers treat the model as invalid in that case.
  virtual bool LoadTrainingState(serial::Reader& in);

  /// Multiplies every optimizer learning rate by `factor` — the numeric-
  /// health sentinel's post-rollback halving. Base: no-op (models without
  /// an optimizer handle simply retry at the same rate).
  virtual void ScaleLearningRate(float factor);

  // -- Incremental serving API (docs/PERFORMANCE.md, "Online serving") ----
  // The contract for every override: after any sequence of AdvanceState
  // calls appending steps h_0..h_{T-1}, ScoreFromState returns bit-identical
  // floats to ScoreAll(user, {h_0..h_{T-1}}) at every thread count. The base
  // implementation trivially satisfies it by keeping the (truncated) history
  // window and replaying ScoreAll; models override with O(1) recurrent-cell
  // advances (Gru4Rec, CauserModel).

  /// Creates an empty incremental state for `user`.
  virtual std::unique_ptr<SessionState> NewSessionState(int user);

  /// Appends one interaction to the state. O(1) in the history length for
  /// the incremental overrides while the appended history fits in
  /// config_.max_history; past that the window slides and the next score
  /// performs one bounded O(max_history) rebuild.
  virtual void AdvanceState(SessionState& state, const data::Step& step);

  /// Scores every item from the cached state (same output as ScoreAll on
  /// the state's appended history).
  virtual std::vector<float> ScoreFromState(SessionState& state);

  /// Batched-GEMM hook: writes the state's scoring representation (the
  /// [1, d] vector whose inner products with OutputItemTable() rows are the
  /// ScoreFromState outputs) into `out` and returns true. Models whose
  /// scoring is not a single inner product — or states with nothing to
  /// represent yet (empty history) — return false, and the serving engine
  /// falls back to ScoreFromState for that request. Base: false.
  virtual bool StateRep(SessionState& state, float* out);

  /// The [num_items, d] output embedding table StateRep representations are
  /// scored against, or nullptr when the model has no single-GEMM scoring
  /// form. Base: nullptr.
  virtual const nn::Tensor* OutputItemTable() const;

  /// Symmetric per-row int8 quantization of OutputItemTable() for the
  /// serving engine's `--quantize=int8` path (tensor/quant.h), built with
  /// one absmax calibration pass on first call and cached on the model so
  /// every engine over the same model shares it. Returns nullptr when the
  /// model has no single-GEMM form or the table holds non-finite values
  /// (the engine then stays on fp32). The cache snapshots the weights at
  /// build time and training never consults it; after any parameter
  /// change (Fit's best-snapshot restore, checkpoint load), the next
  /// OnParametersRestored() — or an explicit InvalidateQuantizedItemTable()
  /// — drops it so the next call recalibrates.
  const tensor::QuantizedMatrix* QuantizedItemTable();

  /// Drops the cached quantized table (see QuantizedItemTable()).
  void InvalidateQuantizedItemTable();

  const ModelConfig& config() const { return config_; }

 protected:
  /// Truncates history to the most recent config_.max_history steps.
  std::vector<data::Step> Truncate(
      const std::vector<data::Step>& history) const;

  ModelConfig config_;
  Rng rng_;

 private:
  /// Lazily built by QuantizedItemTable(); null and not-yet-built states
  /// are distinguished so a failed quantization is not retried per batch.
  std::unique_ptr<tensor::QuantizedMatrix> quant_table_;
  bool quant_table_built_ = false;
};

/// Base for models that reduce a history to a single representation vector
/// and score items by inner product with an output item embedding. Supplies
/// the BCE + negative-sampling training loop and full-catalog scoring; the
/// derived model only provides Represent().
class RepresentationModel : public SequentialRecommender {
 public:
  explicit RepresentationModel(const ModelConfig& config);

  std::vector<float> ScoreAll(int user,
                              const std::vector<data::Step>& history) override;
  double TrainEpoch(const std::vector<data::Sequence>& train) override;
  void SaveTrainingState(std::string* out) const override;
  bool LoadTrainingState(serial::Reader& in) override;
  void ScaleLearningRate(float factor) override;

 protected:
  /// Maps (user, truncated history) to a [1, embedding_dim] representation.
  /// `history` is non-empty.
  virtual nn::Tensor Represent(int user,
                               const std::vector<data::Step>& history) = 0;

  /// Mean of the item embeddings of one step (the paper's multi-hot input
  /// handling): [1, dim].
  nn::Tensor StepEmbedding(const nn::Embedding& emb,
                           const data::Step& step) const;

  /// Must be called at the end of the derived constructor, after all
  /// parameters are registered.
  void FinalizeOptimizer();

  /// Output (scoring) item embeddings e_b.
  std::unique_ptr<nn::Embedding> out_items_;

 private:
  /// Mini-batch gradient-accumulation epoch (config_.batch_size > 1):
  /// shards each batch across the shared pool, every worker building
  /// forward/backward graphs against a private parameter copy, then reduces
  /// the per-worker gradients deterministically and takes one step.
  double TrainEpochBatched(const std::vector<data::TrainExample>& examples);

  std::unique_ptr<nn::Adam> optimizer_;
};

/// The Fit() loop's complete resume state: the epoch cursor plus the
/// early-stopping bookkeeping. Checkpoints bundle this next to the model
/// parameters and training state so a resumed run makes the same stop/
/// snapshot decisions an uninterrupted one would.
struct FitResumeState {
  /// First epoch the loop has not completed yet.
  int next_epoch = 0;
  double best_ndcg = -1.0;
  /// Epochs since the last validation improvement.
  int stale = 0;
  std::vector<double> epoch_losses;
  /// Parameter snapshot behind best_ndcg (empty before min_epochs).
  std::vector<std::vector<float>> best_snapshot;
  /// Cumulative sentinel learning-rate scale baked into the optimizer
  /// state at checkpoint time (1.0 until a rollback halves it). Persisted
  /// so rollback halvings compound correctly across restores.
  double lr_scale = 1.0;
};

/// Training configuration for Fit().
struct TrainConfig {
  int max_epochs = 8;
  /// Early stopping: epochs without validation NDCG improvement.
  int patience = 2;
  /// Epochs before early-stopping bookkeeping begins (no snapshots, no
  /// patience countdown). Used by models with staged training (Causer's
  /// graph warm-up) whose early epochs would otherwise win the snapshot.
  int min_epochs = 0;
  int eval_z = 5;
  bool verbose = false;

  // -- Fault tolerance (docs/ROBUSTNESS.md) -------------------------------
  /// Persists the model + FitResumeState after an epoch; installed by
  /// core::InstallCheckpointHooks. Null disables checkpointing. A failed
  /// save is logged and training continues (availability over durability).
  std::function<bool(const FitResumeState&)> checkpoint_save;
  /// Restores the newest loadable checkpoint into the model and `*state`;
  /// used at startup when `resume` is set and by the health sentinel's
  /// rollback. Returns false when nothing loadable exists.
  std::function<bool(FitResumeState*)> checkpoint_restore;
  /// Epochs between checkpoint_save calls.
  int checkpoint_every = 1;
  /// Call checkpoint_restore before the first epoch.
  bool resume = false;
  /// Per-epoch numeric-health sentinel: scan the epoch loss and every
  /// parameter for non-finite values; on a trip, roll back to the last
  /// good checkpoint and halve the learning rate.
  bool health_check = true;
  /// Rollbacks allowed before the sentinel gives up and stops training.
  int health_max_retries = 3;
};

/// Outcome of Fit().
struct FitResult {
  /// Total epochs of the logical run — including epochs replayed from a
  /// resumed checkpoint's history, excluding epochs voided by a rollback.
  int epochs_run = 0;
  double best_validation_ndcg = 0.0;
  std::vector<double> epoch_losses;
  /// Health-sentinel rollbacks performed (each halved the LR).
  int health_rollbacks = 0;
  /// True when training stopped because the sentinel ran out of retries
  /// (or had no checkpoint to roll back to).
  bool stopped_unhealthy = false;
};

/// Trains `model` on split.train with early stopping on split.validation
/// NDCG@eval_z, restoring the best parameters before returning.
FitResult Fit(SequentialRecommender& model, const data::Split& split,
              const TrainConfig& config = {});

/// Adapts a model to the evaluator's Scorer interface.
eval::Scorer MakeScorer(SequentialRecommender& model);

}  // namespace causer::models

#endif  // CAUSER_MODELS_RECOMMENDER_H_
