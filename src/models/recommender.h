#ifndef CAUSER_MODELS_RECOMMENDER_H_
#define CAUSER_MODELS_RECOMMENDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "data/sampler.h"
#include "data/split.h"
#include "eval/evaluator.h"
#include "nn/embedding.h"
#include "nn/module.h"
#include "nn/optimizer.h"

namespace causer::models {

/// Training-loop instruments (see docs/OBSERVABILITY.md), shared by the
/// baseline training loops here and core::CauserModel's epoch loop.
/// Registered together on first touch.
struct TrainerMetricsT {
  metrics::Counter& epochs;            ///< trainer.epochs_total
  metrics::Counter& optimizer_steps;   ///< trainer.optimizer_steps_total
  metrics::Gauge& epoch_loss;          ///< trainer.epoch_loss
  metrics::Gauge& best_validation_ndcg;  ///< trainer.best_validation_ndcg
  metrics::Histogram& epoch_seconds;   ///< trainer.epoch_seconds
  metrics::Histogram& step_seconds;    ///< trainer.step_seconds
  metrics::Histogram& grad_norm;       ///< trainer.grad_norm
};

/// The shared instrument group (function-local static registration).
TrainerMetricsT& TrainerMetrics();

/// Hyper-parameters shared by all models in the comparison suite. Sized for
/// single-core CPU training on the scaled-down datasets.
struct ModelConfig {
  int num_users = 0;
  int num_items = 0;
  int embedding_dim = 16;
  int hidden_dim = 16;
  /// Negative samples per training example (sigmoid + negative sampling,
  /// the paper's Section II-A training scheme).
  int num_negatives = 5;
  /// History is truncated to the most recent `max_history` steps.
  int max_history = 12;
  float learning_rate = 0.01f;
  float grad_clip = 5.0f;
  /// Examples per optimizer step. 1 (the default) runs the legacy
  /// sequential loop — one forward/backward/clip/step per example,
  /// bit-identical to earlier releases under a fixed seed. Larger values
  /// accumulate the mean gradient of up to `batch_size` examples (scored
  /// concurrently on the shared pool when DefaultThreads() > 1, each worker
  /// backpropagating into a private parameter copy) before a single
  /// ClipGradNorm + Step.
  int batch_size = 1;
  uint64_t seed = 7;
  /// Item raw features (needed by VTRNN / MMSARec / Causer); may be null.
  const std::vector<std::vector<float>>* item_features = nullptr;
};

/// Interface of every recommender in the comparison suite (Table IV).
/// Inherits the nn::Module parameter registry so the trainer can snapshot
/// and restore weights for early stopping.
class SequentialRecommender : public nn::Module {
 public:
  explicit SequentialRecommender(const ModelConfig& config)
      : config_(config), rng_(config.seed) {}

  /// Display name, e.g. "GRU4Rec".
  virtual std::string name() const = 0;

  /// Scores every item given the user's history (inference; higher =
  /// more likely to be the next interaction).
  virtual std::vector<float> ScoreAll(
      int user, const std::vector<data::Step>& history) = 0;

  /// One shuffled pass over the training sequences; returns mean loss.
  virtual double TrainEpoch(const std::vector<data::Sequence>& train) = 0;

  /// Hook invoked by Fit() after restoring the best parameter snapshot;
  /// models with derived caches (Causer's item-level W) invalidate them.
  virtual void OnParametersRestored() {}

  const ModelConfig& config() const { return config_; }

 protected:
  /// Truncates history to the most recent config_.max_history steps.
  std::vector<data::Step> Truncate(
      const std::vector<data::Step>& history) const;

  ModelConfig config_;
  Rng rng_;
};

/// Base for models that reduce a history to a single representation vector
/// and score items by inner product with an output item embedding. Supplies
/// the BCE + negative-sampling training loop and full-catalog scoring; the
/// derived model only provides Represent().
class RepresentationModel : public SequentialRecommender {
 public:
  explicit RepresentationModel(const ModelConfig& config);

  std::vector<float> ScoreAll(int user,
                              const std::vector<data::Step>& history) override;
  double TrainEpoch(const std::vector<data::Sequence>& train) override;

 protected:
  /// Maps (user, truncated history) to a [1, embedding_dim] representation.
  /// `history` is non-empty.
  virtual nn::Tensor Represent(int user,
                               const std::vector<data::Step>& history) = 0;

  /// Mean of the item embeddings of one step (the paper's multi-hot input
  /// handling): [1, dim].
  nn::Tensor StepEmbedding(const nn::Embedding& emb,
                           const data::Step& step) const;

  /// Must be called at the end of the derived constructor, after all
  /// parameters are registered.
  void FinalizeOptimizer();

  /// Output (scoring) item embeddings e_b.
  std::unique_ptr<nn::Embedding> out_items_;

 private:
  /// Mini-batch gradient-accumulation epoch (config_.batch_size > 1):
  /// shards each batch across the shared pool, every worker building
  /// forward/backward graphs against a private parameter copy, then reduces
  /// the per-worker gradients deterministically and takes one step.
  double TrainEpochBatched(const std::vector<data::TrainExample>& examples);

  std::unique_ptr<nn::Adam> optimizer_;
};

/// Training configuration for Fit().
struct TrainConfig {
  int max_epochs = 8;
  /// Early stopping: epochs without validation NDCG improvement.
  int patience = 2;
  /// Epochs before early-stopping bookkeeping begins (no snapshots, no
  /// patience countdown). Used by models with staged training (Causer's
  /// graph warm-up) whose early epochs would otherwise win the snapshot.
  int min_epochs = 0;
  int eval_z = 5;
  bool verbose = false;
};

/// Outcome of Fit().
struct FitResult {
  int epochs_run = 0;
  double best_validation_ndcg = 0.0;
  std::vector<double> epoch_losses;
};

/// Trains `model` on split.train with early stopping on split.validation
/// NDCG@eval_z, restoring the best parameters before returning.
FitResult Fit(SequentialRecommender& model, const data::Split& split,
              const TrainConfig& config = {});

/// Adapts a model to the evaluator's Scorer interface.
eval::Scorer MakeScorer(SequentialRecommender& model);

}  // namespace causer::models

#endif  // CAUSER_MODELS_RECOMMENDER_H_
