#include "models/fpmc.h"

#include "data/sampler.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace causer::models {

using nn::Tensor;

Fpmc::Fpmc(const ModelConfig& config) : SequentialRecommender(config) {
  const int d = config.embedding_dim;
  users_ = std::make_unique<nn::Embedding>(config.num_users, d, rng_);
  items_mf_ = std::make_unique<nn::Embedding>(config.num_items, d, rng_);
  prev_items_ = std::make_unique<nn::Embedding>(config.num_items, d, rng_);
  next_items_ = std::make_unique<nn::Embedding>(config.num_items, d, rng_);
  RegisterModule(users_.get());
  RegisterModule(items_mf_.get());
  RegisterModule(prev_items_.get());
  RegisterModule(next_items_.get());
  optimizer_ = std::make_unique<nn::Adam>(Parameters(), config.learning_rate);
}

Tensor Fpmc::ScorePair(int user, const std::vector<int>& basket, int item) {
  Tensor pu = users_->Row(user);
  Tensor qi = items_mf_->Row(item);
  Tensor mf = tensor::SumRows(tensor::Mul(pu, qi));  // [1, 1]
  Tensor m = prev_items_->Forward(basket);           // [k, d]
  Tensor mean_m = tensor::ScalarMul(tensor::SumCols(m),
                                    1.0f / static_cast<float>(m.rows()));
  Tensor ni = next_items_->Row(item);
  Tensor fmc = tensor::SumRows(tensor::Mul(mean_m, ni));  // [1, 1]
  return tensor::Add(mf, fmc);
}

std::vector<float> Fpmc::ScoreAll(int user,
                                  const std::vector<data::Step>& history) {
  tensor::NoGradGuard guard;
  Tensor pu = users_->Row(user);
  Tensor mf = tensor::MatMul(items_mf_->weight(), tensor::Transpose(pu));
  std::vector<float> out(config_.num_items);
  if (history.empty() || history.back().items.empty()) {
    for (int i = 0; i < config_.num_items; ++i) out[i] = mf.At(i, 0);
    return out;
  }
  Tensor m = prev_items_->Forward(history.back().items);
  Tensor mean_m = tensor::ScalarMul(tensor::SumCols(m),
                                    1.0f / static_cast<float>(m.rows()));
  Tensor fmc =
      tensor::MatMul(next_items_->weight(), tensor::Transpose(mean_m));
  for (int i = 0; i < config_.num_items; ++i) out[i] = mf.At(i, 0) + fmc.At(i, 0);
  return out;
}

double Fpmc::TrainEpoch(const std::vector<data::Sequence>& train) {
  auto examples = data::EnumerateExamples(train);
  rng_.Shuffle(examples);

  double total = 0.0;
  int count = 0;
  for (const auto& ex : examples) {
    const auto& steps = ex.sequence->steps;
    const auto& basket = steps[ex.target_step - 1].items;
    if (basket.empty()) continue;
    for (int pos : steps[ex.target_step].items) {
      int neg = data::SampleNegatives(config_.num_items, {pos}, 1, rng_)[0];
      Tensor diff = tensor::Sub(ScorePair(ex.sequence->user, basket, pos),
                                ScorePair(ex.sequence->user, basket, neg));
      Tensor loss = tensor::BceWithLogits(diff, Tensor::Scalar(1.0f));
      optimizer_->ZeroGrad();
      tensor::Backward(loss);
      optimizer_->Step();
      total += loss.Item();
      ++count;
    }
  }
  return count > 0 ? total / count : 0.0;
}

}  // namespace causer::models
