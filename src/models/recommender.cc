#include "models/recommender.h"

#include <algorithm>

#include "common/log.h"
#include "data/sampler.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace causer::models {

using nn::Tensor;

std::vector<data::Step> SequentialRecommender::Truncate(
    const std::vector<data::Step>& history) const {
  const int cap = config_.max_history;
  if (static_cast<int>(history.size()) <= cap) return history;
  return std::vector<data::Step>(history.end() - cap, history.end());
}

RepresentationModel::RepresentationModel(const ModelConfig& config)
    : SequentialRecommender(config) {
  out_items_ = std::make_unique<nn::Embedding>(config.num_items,
                                               config.embedding_dim, rng_);
  RegisterModule(out_items_.get());
}

void RepresentationModel::FinalizeOptimizer() {
  optimizer_ = std::make_unique<nn::Adam>(Parameters(), config_.learning_rate);
}

Tensor RepresentationModel::StepEmbedding(const nn::Embedding& emb,
                                          const data::Step& step) const {
  CAUSER_CHECK(!step.items.empty());
  Tensor rows = emb.Forward(step.items);  // [k, dim]
  if (rows.rows() == 1) return rows;
  return tensor::ScalarMul(tensor::SumCols(rows),
                           1.0f / static_cast<float>(rows.rows()));
}

std::vector<float> RepresentationModel::ScoreAll(
    int user, const std::vector<data::Step>& history) {
  tensor::NoGradGuard guard;
  if (history.empty()) {
    return std::vector<float>(config_.num_items, 0.0f);
  }
  Tensor rep = Represent(user, Truncate(history));        // [1, d]
  Tensor logits = tensor::MatMul(out_items_->weight(), tensor::Transpose(rep));
  std::vector<float> out(config_.num_items);
  for (int i = 0; i < config_.num_items; ++i) out[i] = logits.At(i, 0);
  return out;
}

double RepresentationModel::TrainEpoch(
    const std::vector<data::Sequence>& train) {
  CAUSER_CHECK(optimizer_ != nullptr);
  auto examples = data::EnumerateExamples(train);
  rng_.Shuffle(examples);

  double total_loss = 0.0;
  int count = 0;
  for (const auto& ex : examples) {
    const auto& steps = ex.sequence->steps;
    std::vector<data::Step> history(steps.begin(),
                                    steps.begin() + ex.target_step);
    history = Truncate(history);
    if (history.empty()) continue;
    const auto& positives = steps[ex.target_step].items;
    int available = config_.num_items - static_cast<int>(positives.size());
    int num_neg = std::min(config_.num_negatives, std::max(0, available));
    std::vector<int> negatives =
        data::SampleNegatives(config_.num_items, positives, num_neg, rng_);

    std::vector<int> ids = positives;
    ids.insert(ids.end(), negatives.begin(), negatives.end());
    std::vector<float> labels(ids.size(), 0.0f);
    for (size_t i = 0; i < positives.size(); ++i) labels[i] = 1.0f;

    Tensor rep = Represent(ex.sequence->user, history);  // [1, d]
    Tensor cand = out_items_->Forward(ids);              // [n, d]
    Tensor logits = tensor::MatMul(cand, tensor::Transpose(rep));  // [n, 1]
    Tensor targets =
        Tensor::FromData(static_cast<int>(ids.size()), 1, labels);
    Tensor loss = tensor::BceWithLogits(logits, targets);

    optimizer_->ZeroGrad();
    tensor::Backward(loss);
    optimizer_->ClipGradNorm(config_.grad_clip);
    optimizer_->Step();
    total_loss += loss.Item();
    ++count;
  }
  return count > 0 ? total_loss / count : 0.0;
}

namespace {

std::vector<std::vector<float>> SnapshotParams(
    const std::vector<Tensor>& params) {
  std::vector<std::vector<float>> snap;
  snap.reserve(params.size());
  for (const auto& p : params) snap.push_back(p.data());
  return snap;
}

void RestoreParams(std::vector<Tensor>& params,
                   const std::vector<std::vector<float>>& snap) {
  CAUSER_CHECK(params.size() == snap.size());
  for (size_t i = 0; i < params.size(); ++i) params[i].data() = snap[i];
}

}  // namespace

FitResult Fit(SequentialRecommender& model, const data::Split& split,
              const TrainConfig& config) {
  FitResult result;
  auto scorer = MakeScorer(model);
  auto params = model.Parameters();
  std::vector<std::vector<float>> best_snapshot;
  double best_ndcg = -1.0;
  int stale = 0;

  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    double loss = model.TrainEpoch(split.train);
    result.epoch_losses.push_back(loss);
    ++result.epochs_run;

    const auto& val =
        split.validation.empty() ? split.test : split.validation;
    eval::EvalResult ev = eval::Evaluate(scorer, val, config.eval_z);
    if (config.verbose) {
      CAUSER_LOG(Info) << model.name() << " epoch " << epoch << " loss "
                       << loss << " val NDCG@" << config.eval_z << " "
                       << ev.ndcg;
    }
    if (epoch + 1 < config.min_epochs) continue;
    if (ev.ndcg > best_ndcg) {
      best_ndcg = ev.ndcg;
      best_snapshot = SnapshotParams(params);
      stale = 0;
    } else if (++stale > config.patience) {
      break;
    }
  }
  if (!best_snapshot.empty()) {
    RestoreParams(params, best_snapshot);
    model.OnParametersRestored();
  }
  result.best_validation_ndcg = std::max(best_ndcg, 0.0);
  return result;
}

eval::Scorer MakeScorer(SequentialRecommender& model) {
  return [&model](const data::EvalInstance& inst) {
    return model.ScoreAll(inst.user, inst.history);
  };
}

}  // namespace causer::models
