#include "models/recommender.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/fault.h"
#include "common/log.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "data/sampler.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace causer::models {

using nn::Tensor;

TrainerMetricsT& TrainerMetrics() {
  static TrainerMetricsT m{
      metrics::GetCounter("trainer.epochs_total", "epochs",
                          "Training epochs completed (across all models)."),
      metrics::GetCounter(
          "trainer.optimizer_steps_total", "steps",
          "Optimizer steps taken (one per example at batch_size 1, one "
          "per batch otherwise)."),
      metrics::GetGauge("trainer.epoch_loss", "loss",
                        "Mean training loss of the latest epoch."),
      metrics::GetGauge(
          "trainer.best_validation_ndcg", "ndcg",
          "Best validation NDCG@Z seen by the current Fit() run."),
      metrics::GetHistogram("trainer.epoch_seconds", "seconds",
                            "Wall time of each training epoch.",
                            metrics::ExponentialBuckets(1e-3, 10.0, 8)),
      metrics::GetHistogram(
          "trainer.step_seconds", "seconds",
          "Wall time of each optimizer step, including its forward and "
          "backward passes.",
          metrics::ExponentialBuckets(1e-6, 10.0, 8)),
      metrics::GetHistogram(
          "trainer.grad_norm", "l2-norm",
          "Pre-clip global gradient L2 norm at each optimizer step.",
          {0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 100.0}),
  };
  return m;
}

HealthMetricsT& HealthMetrics() {
  static HealthMetricsT m{
      metrics::GetCounter(
          "trainer.health.nonfinite_total", "trips",
          "Epochs whose loss or parameters went non-finite (NaN/Inf)."),
      metrics::GetCounter(
          "trainer.health.rollbacks_total", "rollbacks",
          "Checkpoint rollbacks performed by the numeric-health sentinel."),
      metrics::GetGauge(
          "trainer.health.lr_scale", "factor",
          "Cumulative learning-rate scale applied by sentinel rollbacks "
          "(1.0 = untouched, halved per rollback)."),
      metrics::GetCounter("trainer.checkpoint.writes_total", "checkpoints",
                          "Training checkpoints written successfully."),
      metrics::GetCounter(
          "trainer.checkpoint.resumes_total", "resumes",
          "Checkpoints restored (startup --resume and sentinel rollbacks)."),
  };
  return m;
}

void SequentialRecommender::SaveTrainingState(std::string* out) const {
  rng_.SaveState(out);
}

bool SequentialRecommender::LoadTrainingState(serial::Reader& in) {
  return rng_.LoadState(in);
}

void SequentialRecommender::ScaleLearningRate(float /*factor*/) {}

std::vector<data::Step> SequentialRecommender::Truncate(
    const std::vector<data::Step>& history) const {
  const int cap = config_.max_history;
  if (static_cast<int>(history.size()) <= cap) return history;
  return std::vector<data::Step>(history.end() - cap, history.end());
}

namespace {

/// Fallback session state: the (truncated) history window itself. Scoring
/// replays ScoreAll, which is bit-identical to it by construction — models
/// without an incremental override still satisfy the serving contract,
/// just without the O(1) advance.
class ReplaySessionState : public SessionState {
 public:
  int user = 0;
  std::vector<data::Step> window;
};

}  // namespace

std::unique_ptr<SessionState> SequentialRecommender::NewSessionState(
    int user) {
  auto state = std::make_unique<ReplaySessionState>();
  state->user = user;
  return state;
}

void SequentialRecommender::AdvanceState(SessionState& state,
                                         const data::Step& step) {
  auto* s = dynamic_cast<ReplaySessionState*>(&state);
  CAUSER_CHECK(s != nullptr);
  s->window.push_back(step);
  // Only the most recent max_history steps can influence ScoreAll (it
  // truncates), so the window is bounded regardless of session length.
  if (static_cast<int>(s->window.size()) > config_.max_history) {
    s->window.erase(s->window.begin());
  }
}

std::vector<float> SequentialRecommender::ScoreFromState(SessionState& state) {
  auto* s = dynamic_cast<ReplaySessionState*>(&state);
  CAUSER_CHECK(s != nullptr);
  return ScoreAll(s->user, s->window);
}

bool SequentialRecommender::StateRep(SessionState& /*state*/,
                                     float* /*out*/) {
  return false;
}

const Tensor* SequentialRecommender::OutputItemTable() const {
  return nullptr;
}

const tensor::QuantizedMatrix* SequentialRecommender::QuantizedItemTable() {
  if (!quant_table_built_) {
    quant_table_built_ = true;
    const Tensor* table = OutputItemTable();
    if (table != nullptr && table->rows() > 0) {
      auto q = std::make_unique<tensor::QuantizedMatrix>();
      if (tensor::QuantizeRows(table->data().data(), table->rows(),
                               table->cols(), q.get())) {
        quant_table_ = std::move(q);
      }
      // On failure (non-finite weights) quant_table_ stays null: the
      // serving engine keeps scoring in fp32 and counts the fallback.
    }
  }
  return quant_table_.get();
}

void SequentialRecommender::InvalidateQuantizedItemTable() {
  quant_table_.reset();
  quant_table_built_ = false;
}

RepresentationModel::RepresentationModel(const ModelConfig& config)
    : SequentialRecommender(config) {
  out_items_ = std::make_unique<nn::Embedding>(config.num_items,
                                               config.embedding_dim, rng_);
  RegisterModule(out_items_.get());
}

void RepresentationModel::FinalizeOptimizer() {
  optimizer_ = std::make_unique<nn::Adam>(Parameters(), config_.learning_rate);
}

void RepresentationModel::SaveTrainingState(std::string* out) const {
  CAUSER_CHECK(optimizer_ != nullptr);
  SequentialRecommender::SaveTrainingState(out);
  optimizer_->SaveState(out);
}

bool RepresentationModel::LoadTrainingState(serial::Reader& in) {
  CAUSER_CHECK(optimizer_ != nullptr);
  return SequentialRecommender::LoadTrainingState(in) &&
         optimizer_->LoadState(in);
}

void RepresentationModel::ScaleLearningRate(float factor) {
  CAUSER_CHECK(optimizer_ != nullptr);
  optimizer_->set_lr(optimizer_->lr() * factor);
}

Tensor RepresentationModel::StepEmbedding(const nn::Embedding& emb,
                                          const data::Step& step) const {
  CAUSER_CHECK(!step.items.empty());
  Tensor rows = emb.Forward(step.items);  // [k, dim]
  if (rows.rows() == 1) return rows;
  return tensor::ScalarMul(tensor::SumCols(rows),
                           1.0f / static_cast<float>(rows.rows()));
}

std::vector<float> RepresentationModel::ScoreAll(
    int user, const std::vector<data::Step>& history) {
  tensor::NoGradGuard guard;
  if (history.empty()) {
    return std::vector<float>(config_.num_items, 0.0f);
  }
  Tensor rep = Represent(user, Truncate(history));        // [1, d]
  Tensor logits = tensor::MatMul(out_items_->weight(), tensor::Transpose(rep));
  std::vector<float> out(config_.num_items);
  for (int i = 0; i < config_.num_items; ++i) out[i] = logits.At(i, 0);
  return out;
}

double RepresentationModel::TrainEpoch(
    const std::vector<data::Sequence>& train) {
  CAUSER_CHECK(optimizer_ != nullptr);
  auto examples = data::EnumerateExamples(train);
  rng_.Shuffle(examples);
  if (config_.batch_size > 1) return TrainEpochBatched(examples);

  const bool measure = metrics::Enabled();
  double total_loss = 0.0;
  int count = 0;
  for (const auto& ex : examples) {
    const auto& steps = ex.sequence->steps;
    std::vector<data::Step> history(steps.begin(),
                                    steps.begin() + ex.target_step);
    history = Truncate(history);
    if (history.empty()) continue;
    const auto& positives = steps[ex.target_step].items;
    int available = config_.num_items - static_cast<int>(positives.size());
    int num_neg = std::min(config_.num_negatives, std::max(0, available));
    std::vector<int> negatives =
        data::SampleNegatives(config_.num_items, positives, num_neg, rng_);

    std::vector<int> ids = positives;
    ids.insert(ids.end(), negatives.begin(), negatives.end());
    std::vector<float> labels(ids.size(), 0.0f);
    for (size_t i = 0; i < positives.size(); ++i) labels[i] = 1.0f;

    Stopwatch step_sw;
    // The whole step's tape (forward graph, loss, gradients of interior
    // nodes) dies with this scope; parameters and optimizer state stay on
    // the heap. loss.Item() below runs before the scope closes.
    tensor::ArenaScope arena_scope;
    Tensor rep = Represent(ex.sequence->user, history);  // [1, d]
    Tensor cand = out_items_->Forward(ids);              // [n, d]
    Tensor logits = tensor::MatMul(cand, tensor::Transpose(rep));  // [n, 1]
    Tensor targets =
        Tensor::FromData(static_cast<int>(ids.size()), 1, labels);
    Tensor loss = tensor::BceWithLogits(logits, targets);

    optimizer_->ZeroGrad();
    tensor::Backward(loss);
    double norm = optimizer_->ClipGradNorm(config_.grad_clip);
    // Numeric-health sentinel: a non-finite global norm means some
    // gradient exploded. Bail out before Step() poisons the parameters —
    // the NaN epoch loss sends Fit() to its checkpoint-rollback path.
    if (!std::isfinite(norm)) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    optimizer_->Step();
    if (measure) {
      auto& tm = TrainerMetrics();
      tm.optimizer_steps.Add();
      tm.grad_norm.Observe(norm);
      tm.step_seconds.Observe(step_sw.ElapsedSeconds());
    }
    total_loss += loss.Item();
    ++count;
  }
  return count > 0 ? total_loss / count : 0.0;
}

double RepresentationModel::TrainEpochBatched(
    const std::vector<data::TrainExample>& examples) {
  struct Prepared {
    int user = 0;
    std::vector<data::Step> history;
    std::vector<int> ids;
    std::vector<float> labels;
  };

  auto params = Parameters();
  ThreadPool& pool = DefaultPool();
  const int max_shards = pool.num_threads();
  // One private parameter copy per shard — the per-worker gradient buffers.
  // Allocated lazily on first use and refreshed (values + zeroed grads)
  // before every batch, since Step() changes the parameters in between.
  std::vector<std::vector<Tensor>> shadows(max_shards);
  std::vector<double> shard_loss(max_shards, 0.0);

  double total_loss = 0.0;
  int count = 0;
  std::vector<Prepared> batch;
  batch.reserve(config_.batch_size);
  size_t next = 0;
  while (next < examples.size()) {
    // Preparation (history truncation + negative sampling) stays on the
    // calling thread, consuming rng_ in example order: the random stream is
    // independent of the worker count.
    batch.clear();
    while (static_cast<int>(batch.size()) < config_.batch_size &&
           next < examples.size()) {
      const auto& ex = examples[next++];
      const auto& steps = ex.sequence->steps;
      std::vector<data::Step> history(steps.begin(),
                                      steps.begin() + ex.target_step);
      history = Truncate(history);
      if (history.empty()) continue;
      const auto& positives = steps[ex.target_step].items;
      int available = config_.num_items - static_cast<int>(positives.size());
      int num_neg = std::min(config_.num_negatives, std::max(0, available));
      Prepared p;
      p.user = ex.sequence->user;
      p.ids = positives;
      std::vector<int> negatives =
          data::SampleNegatives(config_.num_items, positives, num_neg, rng_);
      p.ids.insert(p.ids.end(), negatives.begin(), negatives.end());
      p.labels.assign(p.ids.size(), 0.0f);
      for (size_t i = 0; i < positives.size(); ++i) p.labels[i] = 1.0f;
      p.history = std::move(history);
      batch.push_back(std::move(p));
    }
    if (batch.empty()) continue;
    const int bsz = static_cast<int>(batch.size());
    const int shards = std::min(max_shards, bsz);

    const bool measure = metrics::Enabled();
    Stopwatch step_sw;
    optimizer_->ZeroGrad();
    pool.ParallelFor(0, shards, [&](int shard_begin, int shard_end) {
      for (int s = shard_begin; s < shard_end; ++s) {
        const int lo = bsz * s / shards;
        const int hi = bsz * (s + 1) / shards;
        auto& shadow = shadows[s];
        if (shadow.empty()) {
          shadow.reserve(params.size());
          for (const auto& p : params)
            shadow.push_back(p.Clone(/*requires_grad=*/true));
        } else {
          for (size_t i = 0; i < params.size(); ++i) {
            shadow[i].data() = params[i].data();
            shadow[i].ZeroGrad();
          }
        }
        tensor::ParamSubstitutionScope scope(params, shadow);
        double loss_sum = 0.0;
        for (int e = lo; e < hi; ++e) {
          // Per-example tape on this worker's thread-local arena. The
          // shadow parameters were cloned outside any scope, so their
          // grad buffers (the cross-example accumulators) stay heap.
          tensor::ArenaScope arena_scope;
          const Prepared& p = batch[e];
          Tensor rep = Represent(p.user, p.history);            // [1, d]
          Tensor cand = out_items_->Forward(p.ids);             // [n, d]
          Tensor logits =
              tensor::MatMul(cand, tensor::Transpose(rep));     // [n, 1]
          Tensor targets = Tensor::FromData(
              static_cast<int>(p.ids.size()), 1, p.labels);
          Tensor loss = tensor::BceWithLogits(logits, targets);
          tensor::Backward(loss);
          loss_sum += loss.Item();
        }
        shard_loss[s] = loss_sum;
      }
    });

    // Reduce the per-shard gradients into the parameters in shard order
    // (deterministic for a fixed thread count), averaging over the batch,
    // then take one clipped step for the whole batch.
    const float inv_batch = 1.0f / static_cast<float>(bsz);
    for (size_t i = 0; i < params.size(); ++i) {
      auto& node = *params[i].node();
      for (int s = 0; s < shards; ++s) {
        const auto& g = shadows[s][i].grad();
        if (g.empty()) continue;
        node.EnsureGrad();
        for (size_t j = 0; j < g.size(); ++j) node.grad[j] += g[j] * inv_batch;
      }
    }
    double norm = optimizer_->ClipGradNorm(config_.grad_clip);
    // Same per-step sentinel as the sequential path: never Step() through
    // a non-finite gradient.
    if (!std::isfinite(norm)) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    optimizer_->Step();
    if (measure) {
      auto& tm = TrainerMetrics();
      tm.optimizer_steps.Add();
      tm.grad_norm.Observe(norm);
      tm.step_seconds.Observe(step_sw.ElapsedSeconds());
    }
    for (int s = 0; s < shards; ++s) total_loss += shard_loss[s];
    count += bsz;
  }
  return count > 0 ? total_loss / count : 0.0;
}

namespace {

std::vector<std::vector<float>> SnapshotParams(
    const std::vector<Tensor>& params) {
  std::vector<std::vector<float>> snap;
  snap.reserve(params.size());
  for (const auto& p : params)
    snap.emplace_back(p.data().begin(), p.data().end());
  return snap;
}

void RestoreParams(std::vector<Tensor>& params,
                   const std::vector<std::vector<float>>& snap) {
  CAUSER_CHECK(params.size() == snap.size());
  for (size_t i = 0; i < params.size(); ++i)
    params[i].data().assign(snap[i].begin(), snap[i].end());
}

}  // namespace

namespace {

bool AllFinite(const std::vector<Tensor>& params) {
  for (const auto& p : params) {
    for (float v : p.data()) {
      if (!std::isfinite(v)) return false;
    }
  }
  return true;
}

}  // namespace

FitResult Fit(SequentialRecommender& model, const data::Split& split,
              const TrainConfig& config) {
  FitResult result;
  auto& hm = HealthMetrics();  // registers the group even when disabled
  auto scorer = MakeScorer(model);
  auto params = model.Parameters();
  FitResumeState st;
  trace::TraceSpan fit_span("train.fit", "trainer");

  if (config.resume && config.checkpoint_restore &&
      config.checkpoint_restore(&st)) {
    model.OnParametersRestored();
    CAUSER_LOG(Info) << model.name() << " resumed at epoch "
                     << st.next_epoch;
  }
  if (metrics::Enabled()) hm.lr_scale.Set(st.lr_scale);

  int epoch = st.next_epoch;
  bool stop = false;
  while (epoch < config.max_epochs && !stop) {
    trace::TraceSpan epoch_span("train.epoch", "trainer");
    epoch_span.AddArg("epoch", epoch);
    const bool measure = metrics::Enabled();
    Stopwatch epoch_sw;
    double loss = model.TrainEpoch(split.train);
    if (measure) {
      auto& tm = TrainerMetrics();
      tm.epochs.Add();
      tm.epoch_loss.Set(loss);
      tm.epoch_seconds.Observe(epoch_sw.ElapsedSeconds());
    }
    epoch_span.AddArg("loss", loss);

    // Numeric-health sentinel: a non-finite loss (the trainers bail out
    // with NaN on an exploded gradient) or non-finite parameters void the
    // epoch. Roll back to the last good checkpoint at half the learning
    // rate; give up after health_max_retries rollbacks (or with no
    // checkpoint to return to).
    if (config.health_check && (!std::isfinite(loss) || !AllFinite(params))) {
      if (measure) hm.nonfinite.Add();
      if (config.checkpoint_restore &&
          result.health_rollbacks < config.health_max_retries) {
        FitResumeState recovered;
        if (config.checkpoint_restore(&recovered)) {
          // Halve relative to the attempt that just failed, not to the
          // restored checkpoint (whose optimizer state carries its own
          // baked-in scale): consecutive rollbacks keep compounding.
          const double target = st.lr_scale * 0.5;
          model.OnParametersRestored();
          model.ScaleLearningRate(
              static_cast<float>(target / recovered.lr_scale));
          recovered.lr_scale = target;
          st = std::move(recovered);
          ++result.health_rollbacks;
          if (measure) {
            hm.rollbacks.Add();
            hm.lr_scale.Set(st.lr_scale);
          }
          CAUSER_LOG(Warning)
              << model.name() << " non-finite state at epoch " << epoch
              << "; rolled back to epoch " << st.next_epoch
              << " at lr scale " << st.lr_scale;
          epoch = st.next_epoch;
          continue;
        }
      }
      CAUSER_LOG(Error) << model.name() << " non-finite state at epoch "
                        << epoch << " and no checkpoint to roll back to "
                        << "(or retries exhausted); stopping";
      result.stopped_unhealthy = true;
      break;
    }

    st.epoch_losses.push_back(loss);
    const auto& val =
        split.validation.empty() ? split.test : split.validation;
    eval::EvalResult ev = eval::Evaluate(scorer, val, config.eval_z);
    if (config.verbose) {
      CAUSER_LOG(Info) << model.name() << " epoch " << epoch << " loss "
                       << loss << " val NDCG@" << config.eval_z << " "
                       << ev.ndcg;
    }
    if (epoch + 1 >= config.min_epochs) {
      if (ev.ndcg > st.best_ndcg) {
        st.best_ndcg = ev.ndcg;
        st.best_snapshot = SnapshotParams(params);
        st.stale = 0;
        if (measure) TrainerMetrics().best_validation_ndcg.Set(st.best_ndcg);
      } else if (++st.stale > config.patience) {
        stop = true;
      }
    }
    ++epoch;
    st.next_epoch = epoch;
    if (config.checkpoint_save && epoch % config.checkpoint_every == 0) {
      if (!config.checkpoint_save(st)) {
        CAUSER_LOG(Warning) << "checkpoint save failed at epoch " << epoch
                            << "; training continues";
      } else if (fault::ShouldFail("trainer.crash_after_checkpoint")) {
        // Simulated hard kill for the crash-resume tests: abandon the run
        // right after the checkpoint hits disk, without restoring the
        // best snapshot — exactly what SIGKILL would leave behind.
        CAUSER_LOG(Warning) << "fault injection: simulated crash after "
                            << "checkpoint at epoch " << epoch;
        result.epochs_run = static_cast<int>(st.epoch_losses.size());
        result.epoch_losses = std::move(st.epoch_losses);
        result.best_validation_ndcg = std::max(st.best_ndcg, 0.0);
        return result;
      }
    }
  }
  result.epochs_run = static_cast<int>(st.epoch_losses.size());
  result.epoch_losses = std::move(st.epoch_losses);
  fit_span.AddArg("epochs", result.epochs_run);
  if (!st.best_snapshot.empty()) {
    RestoreParams(params, st.best_snapshot);
    model.OnParametersRestored();
  }
  result.best_validation_ndcg = std::max(st.best_ndcg, 0.0);
  return result;
}

eval::Scorer MakeScorer(SequentialRecommender& model) {
  return [&model](const data::EvalInstance& inst) {
    return model.ScoreAll(inst.user, inst.history);
  };
}

}  // namespace causer::models
