#include "models/recommender.h"

#include <algorithm>

#include "common/log.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "data/sampler.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace causer::models {

using nn::Tensor;

TrainerMetricsT& TrainerMetrics() {
  static TrainerMetricsT m{
      metrics::GetCounter("trainer.epochs_total", "epochs",
                          "Training epochs completed (across all models)."),
      metrics::GetCounter(
          "trainer.optimizer_steps_total", "steps",
          "Optimizer steps taken (one per example at batch_size 1, one "
          "per batch otherwise)."),
      metrics::GetGauge("trainer.epoch_loss", "loss",
                        "Mean training loss of the latest epoch."),
      metrics::GetGauge(
          "trainer.best_validation_ndcg", "ndcg",
          "Best validation NDCG@Z seen by the current Fit() run."),
      metrics::GetHistogram("trainer.epoch_seconds", "seconds",
                            "Wall time of each training epoch.",
                            metrics::ExponentialBuckets(1e-3, 10.0, 8)),
      metrics::GetHistogram(
          "trainer.step_seconds", "seconds",
          "Wall time of each optimizer step, including its forward and "
          "backward passes.",
          metrics::ExponentialBuckets(1e-6, 10.0, 8)),
      metrics::GetHistogram(
          "trainer.grad_norm", "l2-norm",
          "Pre-clip global gradient L2 norm at each optimizer step.",
          {0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 100.0}),
  };
  return m;
}

std::vector<data::Step> SequentialRecommender::Truncate(
    const std::vector<data::Step>& history) const {
  const int cap = config_.max_history;
  if (static_cast<int>(history.size()) <= cap) return history;
  return std::vector<data::Step>(history.end() - cap, history.end());
}

RepresentationModel::RepresentationModel(const ModelConfig& config)
    : SequentialRecommender(config) {
  out_items_ = std::make_unique<nn::Embedding>(config.num_items,
                                               config.embedding_dim, rng_);
  RegisterModule(out_items_.get());
}

void RepresentationModel::FinalizeOptimizer() {
  optimizer_ = std::make_unique<nn::Adam>(Parameters(), config_.learning_rate);
}

Tensor RepresentationModel::StepEmbedding(const nn::Embedding& emb,
                                          const data::Step& step) const {
  CAUSER_CHECK(!step.items.empty());
  Tensor rows = emb.Forward(step.items);  // [k, dim]
  if (rows.rows() == 1) return rows;
  return tensor::ScalarMul(tensor::SumCols(rows),
                           1.0f / static_cast<float>(rows.rows()));
}

std::vector<float> RepresentationModel::ScoreAll(
    int user, const std::vector<data::Step>& history) {
  tensor::NoGradGuard guard;
  if (history.empty()) {
    return std::vector<float>(config_.num_items, 0.0f);
  }
  Tensor rep = Represent(user, Truncate(history));        // [1, d]
  Tensor logits = tensor::MatMul(out_items_->weight(), tensor::Transpose(rep));
  std::vector<float> out(config_.num_items);
  for (int i = 0; i < config_.num_items; ++i) out[i] = logits.At(i, 0);
  return out;
}

double RepresentationModel::TrainEpoch(
    const std::vector<data::Sequence>& train) {
  CAUSER_CHECK(optimizer_ != nullptr);
  auto examples = data::EnumerateExamples(train);
  rng_.Shuffle(examples);
  if (config_.batch_size > 1) return TrainEpochBatched(examples);

  const bool measure = metrics::Enabled();
  double total_loss = 0.0;
  int count = 0;
  for (const auto& ex : examples) {
    const auto& steps = ex.sequence->steps;
    std::vector<data::Step> history(steps.begin(),
                                    steps.begin() + ex.target_step);
    history = Truncate(history);
    if (history.empty()) continue;
    const auto& positives = steps[ex.target_step].items;
    int available = config_.num_items - static_cast<int>(positives.size());
    int num_neg = std::min(config_.num_negatives, std::max(0, available));
    std::vector<int> negatives =
        data::SampleNegatives(config_.num_items, positives, num_neg, rng_);

    std::vector<int> ids = positives;
    ids.insert(ids.end(), negatives.begin(), negatives.end());
    std::vector<float> labels(ids.size(), 0.0f);
    for (size_t i = 0; i < positives.size(); ++i) labels[i] = 1.0f;

    Stopwatch step_sw;
    // The whole step's tape (forward graph, loss, gradients of interior
    // nodes) dies with this scope; parameters and optimizer state stay on
    // the heap. loss.Item() below runs before the scope closes.
    tensor::ArenaScope arena_scope;
    Tensor rep = Represent(ex.sequence->user, history);  // [1, d]
    Tensor cand = out_items_->Forward(ids);              // [n, d]
    Tensor logits = tensor::MatMul(cand, tensor::Transpose(rep));  // [n, 1]
    Tensor targets =
        Tensor::FromData(static_cast<int>(ids.size()), 1, labels);
    Tensor loss = tensor::BceWithLogits(logits, targets);

    optimizer_->ZeroGrad();
    tensor::Backward(loss);
    double norm = optimizer_->ClipGradNorm(config_.grad_clip);
    optimizer_->Step();
    if (measure) {
      auto& tm = TrainerMetrics();
      tm.optimizer_steps.Add();
      tm.grad_norm.Observe(norm);
      tm.step_seconds.Observe(step_sw.ElapsedSeconds());
    }
    total_loss += loss.Item();
    ++count;
  }
  return count > 0 ? total_loss / count : 0.0;
}

double RepresentationModel::TrainEpochBatched(
    const std::vector<data::TrainExample>& examples) {
  struct Prepared {
    int user = 0;
    std::vector<data::Step> history;
    std::vector<int> ids;
    std::vector<float> labels;
  };

  auto params = Parameters();
  ThreadPool& pool = DefaultPool();
  const int max_shards = pool.num_threads();
  // One private parameter copy per shard — the per-worker gradient buffers.
  // Allocated lazily on first use and refreshed (values + zeroed grads)
  // before every batch, since Step() changes the parameters in between.
  std::vector<std::vector<Tensor>> shadows(max_shards);
  std::vector<double> shard_loss(max_shards, 0.0);

  double total_loss = 0.0;
  int count = 0;
  std::vector<Prepared> batch;
  batch.reserve(config_.batch_size);
  size_t next = 0;
  while (next < examples.size()) {
    // Preparation (history truncation + negative sampling) stays on the
    // calling thread, consuming rng_ in example order: the random stream is
    // independent of the worker count.
    batch.clear();
    while (static_cast<int>(batch.size()) < config_.batch_size &&
           next < examples.size()) {
      const auto& ex = examples[next++];
      const auto& steps = ex.sequence->steps;
      std::vector<data::Step> history(steps.begin(),
                                      steps.begin() + ex.target_step);
      history = Truncate(history);
      if (history.empty()) continue;
      const auto& positives = steps[ex.target_step].items;
      int available = config_.num_items - static_cast<int>(positives.size());
      int num_neg = std::min(config_.num_negatives, std::max(0, available));
      Prepared p;
      p.user = ex.sequence->user;
      p.ids = positives;
      std::vector<int> negatives =
          data::SampleNegatives(config_.num_items, positives, num_neg, rng_);
      p.ids.insert(p.ids.end(), negatives.begin(), negatives.end());
      p.labels.assign(p.ids.size(), 0.0f);
      for (size_t i = 0; i < positives.size(); ++i) p.labels[i] = 1.0f;
      p.history = std::move(history);
      batch.push_back(std::move(p));
    }
    if (batch.empty()) continue;
    const int bsz = static_cast<int>(batch.size());
    const int shards = std::min(max_shards, bsz);

    const bool measure = metrics::Enabled();
    Stopwatch step_sw;
    optimizer_->ZeroGrad();
    pool.ParallelFor(0, shards, [&](int shard_begin, int shard_end) {
      for (int s = shard_begin; s < shard_end; ++s) {
        const int lo = bsz * s / shards;
        const int hi = bsz * (s + 1) / shards;
        auto& shadow = shadows[s];
        if (shadow.empty()) {
          shadow.reserve(params.size());
          for (const auto& p : params)
            shadow.push_back(p.Clone(/*requires_grad=*/true));
        } else {
          for (size_t i = 0; i < params.size(); ++i) {
            shadow[i].data() = params[i].data();
            shadow[i].ZeroGrad();
          }
        }
        tensor::ParamSubstitutionScope scope(params, shadow);
        double loss_sum = 0.0;
        for (int e = lo; e < hi; ++e) {
          // Per-example tape on this worker's thread-local arena. The
          // shadow parameters were cloned outside any scope, so their
          // grad buffers (the cross-example accumulators) stay heap.
          tensor::ArenaScope arena_scope;
          const Prepared& p = batch[e];
          Tensor rep = Represent(p.user, p.history);            // [1, d]
          Tensor cand = out_items_->Forward(p.ids);             // [n, d]
          Tensor logits =
              tensor::MatMul(cand, tensor::Transpose(rep));     // [n, 1]
          Tensor targets = Tensor::FromData(
              static_cast<int>(p.ids.size()), 1, p.labels);
          Tensor loss = tensor::BceWithLogits(logits, targets);
          tensor::Backward(loss);
          loss_sum += loss.Item();
        }
        shard_loss[s] = loss_sum;
      }
    });

    // Reduce the per-shard gradients into the parameters in shard order
    // (deterministic for a fixed thread count), averaging over the batch,
    // then take one clipped step for the whole batch.
    const float inv_batch = 1.0f / static_cast<float>(bsz);
    for (size_t i = 0; i < params.size(); ++i) {
      auto& node = *params[i].node();
      for (int s = 0; s < shards; ++s) {
        const auto& g = shadows[s][i].grad();
        if (g.empty()) continue;
        node.EnsureGrad();
        for (size_t j = 0; j < g.size(); ++j) node.grad[j] += g[j] * inv_batch;
      }
    }
    double norm = optimizer_->ClipGradNorm(config_.grad_clip);
    optimizer_->Step();
    if (measure) {
      auto& tm = TrainerMetrics();
      tm.optimizer_steps.Add();
      tm.grad_norm.Observe(norm);
      tm.step_seconds.Observe(step_sw.ElapsedSeconds());
    }
    for (int s = 0; s < shards; ++s) total_loss += shard_loss[s];
    count += bsz;
  }
  return count > 0 ? total_loss / count : 0.0;
}

namespace {

std::vector<std::vector<float>> SnapshotParams(
    const std::vector<Tensor>& params) {
  std::vector<std::vector<float>> snap;
  snap.reserve(params.size());
  for (const auto& p : params)
    snap.emplace_back(p.data().begin(), p.data().end());
  return snap;
}

void RestoreParams(std::vector<Tensor>& params,
                   const std::vector<std::vector<float>>& snap) {
  CAUSER_CHECK(params.size() == snap.size());
  for (size_t i = 0; i < params.size(); ++i)
    params[i].data().assign(snap[i].begin(), snap[i].end());
}

}  // namespace

FitResult Fit(SequentialRecommender& model, const data::Split& split,
              const TrainConfig& config) {
  FitResult result;
  auto scorer = MakeScorer(model);
  auto params = model.Parameters();
  std::vector<std::vector<float>> best_snapshot;
  double best_ndcg = -1.0;
  int stale = 0;
  trace::TraceSpan fit_span("train.fit", "trainer");

  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    trace::TraceSpan epoch_span("train.epoch", "trainer");
    epoch_span.AddArg("epoch", epoch);
    const bool measure = metrics::Enabled();
    Stopwatch epoch_sw;
    double loss = model.TrainEpoch(split.train);
    if (measure) {
      auto& tm = TrainerMetrics();
      tm.epochs.Add();
      tm.epoch_loss.Set(loss);
      tm.epoch_seconds.Observe(epoch_sw.ElapsedSeconds());
    }
    epoch_span.AddArg("loss", loss);
    result.epoch_losses.push_back(loss);
    ++result.epochs_run;

    const auto& val =
        split.validation.empty() ? split.test : split.validation;
    eval::EvalResult ev = eval::Evaluate(scorer, val, config.eval_z);
    if (config.verbose) {
      CAUSER_LOG(Info) << model.name() << " epoch " << epoch << " loss "
                       << loss << " val NDCG@" << config.eval_z << " "
                       << ev.ndcg;
    }
    if (epoch + 1 < config.min_epochs) continue;
    if (ev.ndcg > best_ndcg) {
      best_ndcg = ev.ndcg;
      best_snapshot = SnapshotParams(params);
      stale = 0;
      if (measure) TrainerMetrics().best_validation_ndcg.Set(best_ndcg);
    } else if (++stale > config.patience) {
      break;
    }
  }
  fit_span.AddArg("epochs", result.epochs_run);
  if (!best_snapshot.empty()) {
    RestoreParams(params, best_snapshot);
    model.OnParametersRestored();
  }
  result.best_validation_ndcg = std::max(best_ndcg, 0.0);
  return result;
}

eval::Scorer MakeScorer(SequentialRecommender& model) {
  return [&model](const data::EvalInstance& inst) {
    return model.ScoreAll(inst.user, inst.history);
  };
}

}  // namespace causer::models
