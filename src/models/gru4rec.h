#ifndef CAUSER_MODELS_GRU4REC_H_
#define CAUSER_MODELS_GRU4REC_H_

#include <memory>

#include "models/recommender.h"
#include "nn/linear.h"
#include "nn/rnn_cells.h"

namespace causer::models {

/// GRU4Rec (Hidasi et al., 2016): a GRU consumes the step embeddings; the
/// final hidden state, projected to the embedding space, scores items.
class Gru4Rec : public RepresentationModel {
 public:
  explicit Gru4Rec(const ModelConfig& config);

  std::string name() const override { return "GRU4Rec"; }

  // Incremental serving (docs/PERFORMANCE.md): the session caches the GRU
  // hidden state, so appending an interaction is one cell step instead of a
  // full backbone replay, and ScoreFromState stays bit-identical to
  // ScoreAll over the appended history.
  std::unique_ptr<SessionState> NewSessionState(int user) override;
  void AdvanceState(SessionState& state, const data::Step& step) override;
  std::vector<float> ScoreFromState(SessionState& state) override;
  bool StateRep(SessionState& state, float* out) override;
  const nn::Tensor* OutputItemTable() const override;

 protected:
  nn::Tensor Represent(int user,
                       const std::vector<data::Step>& history) override;

  std::unique_ptr<nn::Embedding> in_items_;
  std::unique_ptr<nn::GruCell> cell_;
  std::unique_ptr<nn::Linear> out_proj_;  // hidden -> embedding space

 private:
  class State;
  /// Replays the window into the cached hidden state after a window slide
  /// (the one O(max_history) step of an otherwise O(1) session).
  void RebuildIfDirty(State& state);
  /// The state's current [1, embedding_dim] scoring representation.
  nn::Tensor RepFromState(State& state);
};

}  // namespace causer::models

#endif  // CAUSER_MODELS_GRU4REC_H_
