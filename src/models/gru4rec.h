#ifndef CAUSER_MODELS_GRU4REC_H_
#define CAUSER_MODELS_GRU4REC_H_

#include <memory>

#include "models/recommender.h"
#include "nn/linear.h"
#include "nn/rnn_cells.h"

namespace causer::models {

/// GRU4Rec (Hidasi et al., 2016): a GRU consumes the step embeddings; the
/// final hidden state, projected to the embedding space, scores items.
class Gru4Rec : public RepresentationModel {
 public:
  explicit Gru4Rec(const ModelConfig& config);

  std::string name() const override { return "GRU4Rec"; }

 protected:
  nn::Tensor Represent(int user,
                       const std::vector<data::Step>& history) override;

  std::unique_ptr<nn::Embedding> in_items_;
  std::unique_ptr<nn::GruCell> cell_;
  std::unique_ptr<nn::Linear> out_proj_;  // hidden -> embedding space
};

}  // namespace causer::models

#endif  // CAUSER_MODELS_GRU4REC_H_
