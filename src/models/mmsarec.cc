#include "models/mmsarec.h"

#include "common/log.h"
#include "tensor/ops.h"

namespace causer::models {

using nn::Tensor;

MmsaRec::MmsaRec(const ModelConfig& config) : SasRec(config) {
  CAUSER_CHECK(config.item_features != nullptr &&
               !config.item_features->empty());
  feature_dim_ = static_cast<int>((*config.item_features)[0].size());
  feature_proj_ =
      std::make_unique<nn::Linear>(feature_dim_, config.embedding_dim, rng_);
  RegisterModule(feature_proj_.get());
  // Rebuild the optimizer so it covers the feature projection too.
  FinalizeOptimizer();
}

Tensor MmsaRec::InputEmbedding(const data::Step& step) {
  Tensor emb = StepEmbedding(*in_items_, step);
  std::vector<float> mean(feature_dim_, 0.0f);
  for (int item : step.items) {
    const auto& f = (*config_.item_features)[item];
    for (int k = 0; k < feature_dim_; ++k) mean[k] += f[k];
  }
  for (auto& v : mean) v /= static_cast<float>(step.items.size());
  Tensor feat = Tensor::FromData(1, feature_dim_, std::move(mean));
  return tensor::Add(emb, feature_proj_->Forward(feat));
}

}  // namespace causer::models
