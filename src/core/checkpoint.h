#ifndef CAUSER_CORE_CHECKPOINT_H_
#define CAUSER_CORE_CHECKPOINT_H_

#include <string>
#include <vector>

#include "models/recommender.h"

namespace causer::core {

/// Fault-tolerant training checkpoints (docs/ROBUSTNESS.md).
///
/// A checkpoint is one binary file bundling everything a resumed run needs
/// to be bit-identical to an uninterrupted one:
///   - model parameters (every registered tensor),
///   - model training state (RNG streams, optimizer moments and step
///     counts, the augmented-Lagrangian multipliers, epoch counters —
///     whatever SequentialRecommender::SaveTrainingState appends),
///   - the Fit() loop's resume state (epoch cursor, early-stopping
///     bookkeeping, best-parameter snapshot).
///
/// File format (native byte order; version bumps on layout change):
///   u32 magic, u32 version, u32 section_count
///   per section: u32 tag, u64 payload_size, u32 crc32(payload), payload
///   u32 crc32(everything before this field)
///
/// Every CRC is validated before any state is applied, so a torn,
/// truncated, or bit-flipped file is rejected without mutating the model.
/// Writes are atomic: the bytes go to `<path>.tmp`, are flushed and
/// fsync'd, and only then renamed over `path` (the directory is fsync'd
/// after the rename); a crash at any point leaves either the old
/// checkpoint or the new one, never a half-written file under `path`.

/// Checkpointing policy, wired into models::TrainConfig by
/// InstallCheckpointHooks.
struct CheckpointOptions {
  /// Directory for checkpoint files (created if missing).
  std::string dir;
  /// Epochs between checkpoints.
  int every = 1;
  /// Restore the newest loadable checkpoint before the first epoch.
  bool resume = false;
  /// Checkpoints retained after each save; older ones are pruned. Keeping
  /// two means a checkpoint torn exactly at the rename can still fall
  /// back to its predecessor.
  int keep = 2;
};

/// The canonical file name for the checkpoint written after `epoch` epochs:
/// `<dir>/ckpt-NNNNNN.causer`.
std::string CheckpointPath(const std::string& dir, int epoch);

/// Checkpoint files in `dir`, sorted by epoch ascending. Non-checkpoint
/// files are ignored; a missing directory yields an empty list.
std::vector<std::string> ListCheckpoints(const std::string& dir);

/// Atomically writes a checkpoint of `model` + `state` to `path`.
/// Returns false on any I/O failure, leaving a previous `path` (if any)
/// intact. Fault points: `ckpt.short_write`, `ckpt.rename_fail`,
/// `ckpt.torn_file`.
bool SaveTrainingCheckpoint(const models::SequentialRecommender& model,
                            const models::FitResumeState& state,
                            const std::string& path);

/// Loads a checkpoint written by SaveTrainingCheckpoint into `model` and
/// `*state`. All CRCs, the architecture guard (model name + parameter
/// shapes), and the section framing are validated before anything is
/// applied; on failure the model and `*state` are unchanged and the
/// function returns false.
bool LoadTrainingCheckpoint(models::SequentialRecommender& model,
                            models::FitResumeState* state,
                            const std::string& path);

/// Deletes all but the newest `keep` checkpoints in `dir`.
void PruneCheckpoints(const std::string& dir, int keep);

/// Wires checkpointing into a Fit() config: creates options.dir, installs
/// checkpoint_save (write + prune, counting trainer.checkpoint.writes_total)
/// and checkpoint_restore (newest loadable checkpoint wins — a corrupt
/// newest file falls back to its predecessor — counting
/// trainer.checkpoint.resumes_total), and copies `every`/`resume` into the
/// config. Returns false when the directory cannot be created.
bool InstallCheckpointHooks(const CheckpointOptions& options,
                            models::SequentialRecommender& model,
                            models::TrainConfig* config);

}  // namespace causer::core

#endif  // CAUSER_CORE_CHECKPOINT_H_
