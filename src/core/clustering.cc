#include "core/clustering.h"

#include "common/log.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace causer::core {

ItemClusterer::ItemClusterer(const std::vector<std::vector<float>>& features,
                             int num_clusters, int encoder_hidden,
                             int cluster_dim, float eta, causer::Rng& rng)
    : num_clusters_(num_clusters), cluster_dim_(cluster_dim), eta_(eta) {
  CAUSER_CHECK(!features.empty());
  CAUSER_CHECK(eta > 0.0f);
  const int v = static_cast<int>(features.size());
  const int d = static_cast<int>(features[0].size());
  std::vector<float> flat;
  flat.reserve(static_cast<size_t>(v) * d);
  for (const auto& row : features) {
    CAUSER_CHECK(static_cast<int>(row.size()) == d);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  features_ = Tensor::FromData(v, d, std::move(flat));

  enc1_ = std::make_unique<nn::Linear>(d, encoder_hidden, rng);
  enc2_ = std::make_unique<nn::Linear>(encoder_hidden, cluster_dim, rng);
  dec1_ = std::make_unique<nn::Linear>(cluster_dim, encoder_hidden, rng);
  dec2_ = std::make_unique<nn::Linear>(encoder_hidden, d, rng);
  RegisterModule(enc1_.get());
  RegisterModule(enc2_.get());
  RegisterModule(dec1_.get());
  RegisterModule(dec2_.get());
  centers_ = RegisterParameter(nn::XavierUniform(num_clusters, cluster_dim, rng));
  assignment_logits_ =
      RegisterParameter(nn::UniformParam(v, num_clusters, 0.5f, rng));
}

Tensor ItemClusterer::EncodeItems(const std::vector<int>& items) const {
  Tensor x = tensor::GatherRows(features_, items);
  return enc2_->Forward(tensor::Sigmoid(enc1_->Forward(x)));
}

Tensor ItemClusterer::EncodeAll() const {
  return enc2_->Forward(tensor::Sigmoid(enc1_->Forward(features_)));
}

Tensor ItemClusterer::Assignments(const std::vector<int>& items) const {
  return tensor::SoftmaxRows(tensor::GatherRows(assignment_logits_, items),
                             eta_);
}

Tensor ItemClusterer::AssignmentsAll() const {
  return tensor::SoftmaxRows(assignment_logits_, eta_);
}

Tensor ItemClusterer::ClusteringLoss() const {
  Tensor embedded = EncodeAll();                              // [V, d2]
  Tensor mixture = tensor::MatMul(AssignmentsAll(), centers_);  // [V, d2]
  return tensor::MseLoss(embedded, mixture);
}

Tensor ItemClusterer::ReconstructionLoss() const {
  Tensor embedded = EncodeAll();
  Tensor decoded = dec2_->Forward(tensor::Sigmoid(dec1_->Forward(embedded)));
  return tensor::MseLoss(decoded, features_);
}

std::vector<int> ItemClusterer::HardAssignments() const {
  tensor::NoGradGuard guard;
  Tensor a = AssignmentsAll();
  std::vector<int> out(a.rows());
  for (int i = 0; i < a.rows(); ++i) {
    int best = 0;
    for (int k = 1; k < a.cols(); ++k) {
      if (a.At(i, k) > a.At(i, best)) best = k;
    }
    out[i] = best;
  }
  return out;
}

}  // namespace causer::core
