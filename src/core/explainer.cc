#include "core/explainer.h"

namespace causer::core {

eval::Explainer MakeCauserExplainer(CauserModel& model, ExplainMode mode) {
  return [&model, mode](const data::EvalInstance& instance, int item) {
    return model.ExplainScores(instance, item, mode);
  };
}

eval::Explainer MakeNarmExplainer(models::Narm& model) {
  return [&model](const data::EvalInstance& instance, int item) {
    (void)item;
    return model.AttentionWeights(instance);
  };
}

}  // namespace causer::core
