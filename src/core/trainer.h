#ifndef CAUSER_CORE_TRAINER_H_
#define CAUSER_CORE_TRAINER_H_

#include "core/causer_model.h"
#include "data/dataset.h"
#include "data/split.h"
#include "models/recommender.h"

namespace causer::core {

/// Builds a CauserConfig wired to `dataset` (item counts, features) with
/// the library defaults; callers tweak fields afterwards (K, eta, epsilon,
/// ablations) before constructing the model.
CauserConfig DefaultCauserConfig(const data::Dataset& dataset,
                                 Backbone backbone, uint64_t seed = 7);

/// Result of a full Causer training run.
struct CauserTrainResult {
  models::FitResult fit;            ///< epochs run, best validation NDCG
  /// Acyclicity residual h(W^c) = tr(e^{W∘W}) − K after training; ~0
  /// means the learned graph is (numerically) a DAG and the ε filter is
  /// trustworthy.
  double final_acyclicity = 0.0;
  /// The cluster graph binarized at the ε filter threshold.
  causal::Graph learned_cluster_graph;
};

/// Trains `model` with models::Fit (early stopping on validation NDCG) and
/// reports the causal-graph diagnostics alongside.
CauserTrainResult TrainCauser(CauserModel& model, const data::Split& split,
                              const models::TrainConfig& config = {});

}  // namespace causer::core

#endif  // CAUSER_CORE_TRAINER_H_
