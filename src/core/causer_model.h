#ifndef CAUSER_CORE_CAUSER_MODEL_H_
#define CAUSER_CORE_CAUSER_MODEL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cluster_graph.h"
#include "core/clustering.h"
#include "models/recommender.h"
#include "nn/attention.h"
#include "nn/linear.h"
#include "nn/rnn_cells.h"

namespace causer::core {

/// Recurrent backbone choice for g in Eq. 10.
enum class Backbone { kGru, kLstm };

/// Which relevance signal an explanation uses (Section V-E). In the
/// paper's notation the per-step relevance of history step t for target
/// item b is the product Ŵ_tb · α_t — the global total causal effect
/// times the local bilinear attention:
///   kFull      — α_t · Ŵ_tb (the complete Causer explanation)
///   kCausal    — Ŵ_tb only (the -att variant's explanation)
///   kAttention — α_t only (the -causal variant's explanation)
enum class ExplainMode { kFull, kCausal, kAttention };

/// All Causer hyper-parameters (Table III ranges; defaults tuned for the
/// scaled-down synthetic datasets).
struct CauserConfig {
  models::ModelConfig base;

  /// Number of latent clusters K.
  int num_clusters = 8;
  /// Assignment softmax temperature eta.
  float eta = 0.5f;
  /// Causal filter threshold epsilon in Eq. 10.
  float epsilon = 0.25f;
  /// L1 sparsity coefficient lambda on W^c.
  float lambda = 0.002f;
  /// Encoder hidden width d1 (Eq. 6).
  int encoder_hidden = 16;
  /// Cluster/embedding dimension d2 (encoder output; also the RNN input).
  int cluster_dim = 16;

  Backbone backbone = Backbone::kGru;

  /// Adds a learned per-user affinity term u_k . e_b to every score (the
  /// explicit u_k conditioning of Eq. 10). Off by default: on the scaled
  /// datasets the memorized affinity shortcut starves the sequential path
  /// of gradient and hurts generalization (see DESIGN.md).
  bool use_user_embedding = false;

  /// Adds a free per-item input embedding to the encoder output of Eq. 6,
  /// giving the backbone collaborative capacity beyond the raw features
  /// (part of the paper's Theta_e item-embedding parameters). Off by
  /// default; see DESIGN.md "Known improvement directions".
  bool use_free_input_embedding = false;

  // Ablation switches (Table V variants).
  bool use_clustering_loss = true;     ///< false = Causer(-clus)
  bool use_reconstruction_loss = true; ///< false = Causer(-rec)
  bool use_attention = true;           ///< false = Causer(-att)
  bool use_causal = true;              ///< false = Causer(-causal)

  // Augmented Lagrangian schedule (Algorithm 1) on the acyclicity
  // residual h(W^c) = tr(e^{W∘W}) − K. Paper-symbol correspondence (the
  // paper's β₁/β₂ are the standard NOTEARS α/ρ, see causal/notears.h):
  //   β₁ — Lagrange multiplier      (NOTEARS α; exported as notears.alpha)
  //   β₂ — quadratic penalty coeff. (NOTEARS ρ; exported as notears.rho)
  //   κ₁ — multiplicative growth of β₂ while h stalls
  //   κ₂ — residual shrink factor h must beat to avoid β₂ growth
  float beta1_init = 0.0f;   ///< initial multiplier β₁
  float beta2_init = 0.25f;  ///< initial penalty coefficient β₂
  float kappa1 = 1.5f;       ///< penalty growth κ₁ (> 1)
  float beta2_max = 4.0f;    ///< cap on β₂ (bounds the penalty stiffness)
  float kappa2 = 0.9f;       ///< required residual shrink κ₂ (< 1)

  /// Epochs to train the backbone before W^c starts updating. Until the
  /// representations align (positive items score positively), the BCE
  /// gradient on the multiplicative What factor is biased downward and
  /// would collapse the graph to the trivial empty DAG.
  int graph_warmup_epochs = 1;
  /// Auxiliary (clustering + reconstruction) optimization steps per epoch.
  int aux_steps_per_epoch = 15;
  /// Graph/cluster parameters are updated only every `w_update_every`
  /// epochs (Section III-C efficiency mode; 1 = always).
  int w_update_every = 1;
  /// Direct gradient steps of the per-epoch W^c subproblem.
  int graph_inner_steps = 60;
  /// Learning rate for W^c (higher than the main rate: the graph receives
  /// few, heavily averaged updates per epoch).
  float graph_learning_rate = 0.05f;
  /// Weight of the cluster-level next-step likelihood that anchors W^c to
  /// the data (the sequence analog of NOTEARS' regression term): predict
  /// the observed item's cluster from the history's cluster activations
  /// through W^c. The DAG and L1 penalties then orient and prune it.
  float graph_data_weight = 1.0f;
};

/// Causer: causality-enhanced sequential recommendation (the paper's core
/// contribution). For each candidate item b, causally irrelevant history
/// items (item-level W[v][b] <= epsilon, W = A W^c A^T) are filtered out
/// before the recurrent encoder; surviving hidden states are combined with
/// weights alpha_t (local bilinear attention) * What_tb (global total
/// causal effect), adapted by V and scored against the independent item
/// embedding e_b (Eq. 10). W^c is learned jointly under the NOTEARS
/// acyclicity constraint via the augmented Lagrangian (Eq. 11/Algorithm 1).
class CauserModel : public models::SequentialRecommender {
 public:
  explicit CauserModel(const CauserConfig& config);

  std::string name() const override;

  std::vector<float> ScoreAll(int user,
                              const std::vector<data::Step>& history) override;
  double TrainEpoch(const std::vector<data::Sequence>& train) override;
  void OnParametersRestored() override;

  // Incremental serving (docs/PERFORMANCE.md, "Online serving"): the
  // session caches the per-group backbone states (GRU h / LSTM (h, c)) and
  // the hashed filtered-history group keys, so appending one interaction
  // advances each of the ~K groups by a single cell step instead of
  // replaying the backbone over the whole window. ScoreFromState stays
  // bit-identical to ScoreAll over the appended history. After a parameter
  // update (TrainEpoch / restore) the cached groups are invalidated and
  // rebuilt from the window on the next call.
  std::unique_ptr<models::SessionState> NewSessionState(int user) override;
  void AdvanceState(models::SessionState& state,
                    const data::Step& step) override;
  std::vector<float> ScoreFromState(models::SessionState& state) override;

  /// Causer's resume state on top of the base RNG stream: the three Adam
  /// optimizers, the augmented-Lagrangian multipliers, the epoch counter
  /// (which gates warm-up and slow-update scheduling) and the frozen-graph
  /// flag. With the parameters this makes a resume bit-identical.
  void SaveTrainingState(std::string* out) const override;
  bool LoadTrainingState(serial::Reader& in) override;
  void ScaleLearningRate(float factor) override;

  /// Per-history-step explanation scores for recommending `item` after
  /// `instance.history` (higher = more causal). Length = history size.
  std::vector<double> ExplainScores(const data::EvalInstance& instance,
                                    int item, ExplainMode mode);

  /// Section III-C "prior knowledge" mode: pre-fits the clustering (from
  /// the item features) and the cluster graph (from the training
  /// sequences' cluster transitions under the DAG constraint), then
  /// freezes both so TrainEpoch only updates the sequential parameters.
  /// `rounds` controls how many clustering/graph alternations run.
  void PretrainAndFreezeGraph(const std::vector<data::Sequence>& train,
                              int rounds = 8);

  /// True after PretrainAndFreezeGraph.
  bool graph_frozen() const { return graph_frozen_; }

  /// The learned cluster graph, binarized at the filter threshold.
  causal::Graph LearnedClusterGraph() const;

  /// Current acyclicity residual of W^c.
  double AcyclicityResidual() const;

  /// Item-level causal weight W[a][b] under the current parameters.
  float ItemCausalWeight(int a, int b);

  const ItemClusterer& clusterer() const { return *clusterer_; }
  const ClusterCausalGraph& cluster_graph() const { return *graph_; }
  const CauserConfig& causer_config() const { return causer_config_; }

 private:
  struct Encoded {
    nn::Tensor states;            // [T, hidden]; undefined when empty
    std::vector<int> step_index;  // original history index per state row
    std::vector<std::vector<int>> kept_items;  // per state row
    bool fallback = false;  // true when filtering removed everything
  };

  class ServeState;

  /// Recomputes the per-epoch caches (assignments + item-level W).
  void RefreshCaches();
  void EnsureCaches();

  /// Filters `history` for candidate b and runs the backbone.
  Encoded EncodeFiltered(const std::vector<data::Step>& history,
                         int candidate);

  /// Runs the backbone over explicit per-step item lists.
  nn::Tensor RunBackbone(const std::vector<std::vector<int>>& step_items);

  /// One backbone input row for a step's item list (encoder output, plus
  /// the optional free input embedding, mean-pooled over the items).
  nn::Tensor StepInput(const std::vector<int>& items);

  /// Advances the copied-out recurrent state (*h, and *c for the LSTM
  /// backbone; empty = initial state) by one step over `items`. Produces
  /// the same floats as the corresponding chained RunBackbone step.
  void BackboneStep(const std::vector<int>& items, std::vector<float>* h,
                    std::vector<float>* c);

  /// The per-user affinity bias column e . u_k (satellite of ScoreAll's
  /// Eq. 10 term), cached per user and invalidated alongside w_cache_.
  /// Caller must not hold cache_mu_. The returned reference stays valid
  /// until the next RefreshCaches (node-based map storage).
  const std::vector<float>& UserBiasFor(int user);

  /// Scores one group of candidates sharing the encoded `states` and
  /// attention `alpha`, adding the user bias: the shared tail of ScoreAll
  /// and ScoreFromState. `kept_steps` lists the filtered items per state
  /// row for the What sums; null means What = 1 (fallback / non-causal).
  void ScoreGroup(const nn::Tensor& states, const nn::Tensor& alpha,
                  const std::vector<std::vector<int>>* kept_steps,
                  const std::vector<int>& members,
                  const std::vector<float>& user_bias,
                  std::vector<float>* out);

  /// Rebuilds a serve session's groups from its window (used after a
  /// window slide or a cache refresh): the bounded O(max_history) step of
  /// the otherwise O(1)-per-event serving path.
  void RebuildServeState(ServeState& state);

  /// Attention weights over the encoded states: [T, 1].
  nn::Tensor StepWeights(const nn::Tensor& states);

  /// Total causal effects What_tb as an autograd column [T, 1]
  /// (differentiable w.r.t. W^c and the assignment logits when
  /// `differentiable` is true; numeric constants otherwise).
  nn::Tensor CausalEffects(const Encoded& encoded, int candidate,
                           bool differentiable);

  /// Candidate logit (Eq. 10) given the encoded history; the user
  /// embedding (the u_k conditioning of Eq. 10) is added to the adapted
  /// representation before scoring.
  nn::Tensor CandidateLogit(const Encoded& encoded, int user, int candidate,
                            bool differentiable_graph);

  CauserConfig causer_config_;
  std::unique_ptr<ItemClusterer> clusterer_;
  std::unique_ptr<ClusterCausalGraph> graph_;
  std::unique_ptr<nn::GruCell> gru_;
  std::unique_ptr<nn::LstmCell> lstm_;
  std::unique_ptr<nn::BilinearAttention> attention_;
  std::unique_ptr<nn::Linear> adapt_;  // the paper's V matrix
  std::unique_ptr<nn::Embedding> out_items_;  // e_b
  std::unique_ptr<nn::Embedding> users_;      // u_k conditioning (Eq. 10)
  std::unique_ptr<nn::Embedding> input_items_;  // optional free inputs

  std::unique_ptr<nn::Adam> opt_main_;
  std::unique_ptr<nn::Adam> opt_graph_;
  std::unique_ptr<nn::Adam> opt_aux_;

  AugmentedLagrangian lagrangian_;
  int epoch_ = 0;

  /// Records one (history cluster-activation, next-item cluster) pair for
  /// this epoch's W^c subproblem.
  void RecordTransition(const std::vector<data::Step>& history,
                        int positive_item);

  /// Solves the per-epoch W^c subproblem: cluster-level next-step
  /// cross-entropy (the sequence analog of NOTEARS' regression term) plus
  /// L1 and the augmented-Lagrangian DAG penalty, by direct projected
  /// gradient steps with proximal L1. Updates the multipliers afterwards.
  void FitClusterGraph();

  bool graph_frozen_ = false;
  /// Guards the cache refresh when ScoreAll runs concurrently on the
  /// parallel evaluator's workers (training itself stays single-threaded
  /// at the example level for Causer).
  std::mutex cache_mu_;
  bool caches_stale_ = true;
  std::vector<float> w_cache_;       // item-level W, row-major [V * V]
  std::vector<float> assign_cache_;  // soft assignments, row-major [V * K]
  /// Per-user affinity bias columns ([V] each), computed lazily by
  /// UserBiasFor under cache_mu_ and cleared whenever w_cache_ refreshes.
  std::unordered_map<int, std::vector<float>> user_bias_cache_;
  /// Bumped by every RefreshCaches; serve sessions stamp the epoch their
  /// cached groups were built under and rebuild on mismatch (the filter
  /// sets depend on w_cache_).
  uint64_t serve_epoch_ = 0;
  std::vector<float> epoch_sources_;  // per-transition history activations
  std::vector<float> epoch_targets_;  // per-transition target assignments
};

}  // namespace causer::core

#endif  // CAUSER_CORE_CAUSER_MODEL_H_
