#ifndef CAUSER_CORE_CLUSTER_GRAPH_H_
#define CAUSER_CORE_CLUSTER_GRAPH_H_

#include <string>
#include <vector>

#include "causal/dense.h"
#include "causal/graph.h"
#include "common/serial.h"
#include "nn/module.h"

namespace causer::core {

using nn::Tensor;

/// The learnable cluster-level causal relation matrix W^c (paper Section
/// III-A), regularized toward a DAG by the NOTEARS acyclicity penalty
/// inside the augmented Lagrangian (Eq. 11 / Algorithm 1).
class ClusterCausalGraph : public nn::Module {
 public:
  ClusterCausalGraph(int num_clusters, causer::Rng& rng);

  /// The raw parameter matrix W^c: [K, K].
  const Tensor& weights() const { return wc_; }
  Tensor& mutable_weights() { return wc_; }

  /// Current acyclicity residual h(W^c) = trace(e^{Wc o Wc}) - K.
  double AcyclicityResidual() const;

  /// Adds the augmented-Lagrangian DAG penalty gradient
  ///   (beta1 + beta2 * h) * grad_h(W^c)
  /// and the L1 subgradient lambda * sign(W^c) into W^c's gradient buffer.
  /// Returns the residual h. Call between Backward() and the optimizer
  /// step for the graph parameters.
  double AccumulatePenaltyGradient(double beta1, double beta2, double lambda);

  /// Item-level causal matrix W = A W^c A^T (Eq. 9), given soft cluster
  /// assignments [V, K]. Plain numeric output (row-major V x V), used for
  /// the per-epoch filter cache (Algorithm 1 line 7).
  std::vector<float> ItemLevelMatrix(const Tensor& assignments) const;

  /// W^c as a double matrix (for analysis).
  causal::Dense AsDense() const;

  /// Binarized learned cluster graph: edge i->j iff Wc(i,j) > threshold.
  causal::Graph ThresholdedGraph(double threshold) const;

  /// Applies the DAG and sparsity penalties as direct (non-Adam) steps:
  /// a plain gradient step of size lr on (beta1 + beta2 h) h's gradient,
  /// followed by proximal L1 soft-thresholding by lr * lambda and the
  /// non-negativity projection. Keeping these out of the Adam state is
  /// essential: Adam normalizes the tiny-but-persistent penalty gradients
  /// into full-size steps that collapse W^c regardless of the data term.
  /// Returns the acyclicity residual before the step.
  double ApplyPenaltySteps(double lr, double beta1, double beta2,
                           double lambda);

  /// Projects W^c onto the non-negative orthant (diagonal forced to 0).
  /// Causal relation strengths are non-negative by construction (the 0/1
  /// adjacency relaxed); projecting after each optimizer step also breaks
  /// the (What, alignment) -> (-What, -alignment) sign symmetry of Eq. 10.
  void ClampNonNegative();

  int num_clusters() const { return wc_.rows(); }

 private:
  Tensor wc_;
};

/// Augmented Lagrangian multiplier schedule (Algorithm 1 lines 14-15):
///   beta1 <- beta1 + beta2 * h
///   beta2 <- kappa1 * beta2   if |h| >= kappa2 * |h_prev|.
/// beta2 (NOTEARS rho) is capped at beta2_max: the geometric escalation is
/// exactly the loop that can run to inf when the residual stalls, and a
/// capped-but-finite penalty keeps the W^c subproblem solvable.
class AugmentedLagrangian {
 public:
  AugmentedLagrangian(double beta1_init, double beta2_init, double kappa1,
                      double kappa2, double beta2_max = 1e8);

  /// Updates multipliers with the epoch-end residual. A non-finite `h` is
  /// ignored entirely (the caller's sentinel handles the blow-up; feeding
  /// it into beta1 would make the schedule itself non-finite). Returns
  /// true when the beta2_max cap bound this update — the trip signal
  /// behind the causer.notears.rho_capped_total counter.
  bool Update(double h);

  double beta1() const { return beta1_; }
  double beta2() const { return beta2_; }
  double previous_residual() const { return h_prev_; }

  /// Appends the schedule state (beta1/beta2/h_prev) to `out` so a resumed
  /// run continues the escalation exactly where it stopped.
  void SaveState(std::string* out) const;

  /// Restores state written by SaveState. Returns false on a short blob,
  /// leaving the schedule unchanged. The constants (kappa1/kappa2/
  /// beta2_max) stay as constructed: they are configuration, not state.
  bool LoadState(serial::Reader& in);

 private:
  double beta1_;
  double beta2_;
  double kappa1_;
  double kappa2_;
  double beta2_max_;
  double h_prev_;
};

}  // namespace causer::core

#endif  // CAUSER_CORE_CLUSTER_GRAPH_H_
