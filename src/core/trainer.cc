#include "core/trainer.h"

#include "common/trace.h"

namespace causer::core {

CauserConfig DefaultCauserConfig(const data::Dataset& dataset,
                                 Backbone backbone, uint64_t seed) {
  CauserConfig config;
  config.base.num_users = dataset.num_users;
  config.base.num_items = dataset.num_items;
  config.base.item_features = &dataset.item_features;
  config.base.seed = seed;
  config.backbone = backbone;
  // Default K: the generator's truth when known, else 8. (The K sweep bench
  // varies this explicitly, mirroring the paper's Fig. 4.)
  if (dataset.true_cluster_graph.n() > 0) {
    config.num_clusters = dataset.true_cluster_graph.n();
  }
  return config;
}

CauserTrainResult TrainCauser(CauserModel& model, const data::Split& split,
                              const models::TrainConfig& config) {
  trace::TraceSpan span("train.causer", "trainer");
  CauserTrainResult result;
  models::TrainConfig effective = config;
  if (effective.min_epochs == 0) {
    // Do not let early stopping latch onto a warm-up snapshot whose causal
    // graph has not started learning yet.
    effective.min_epochs =
        model.causer_config().graph_warmup_epochs + 2;
  }
  result.fit = models::Fit(model, split, effective);
  result.final_acyclicity = model.AcyclicityResidual();
  result.learned_cluster_graph = model.LearnedClusterGraph();
  return result;
}

}  // namespace causer::core
