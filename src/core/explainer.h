#ifndef CAUSER_CORE_EXPLAINER_H_
#define CAUSER_CORE_EXPLAINER_H_

#include "core/causer_model.h"
#include "eval/explanation_eval.h"
#include "models/narm.h"

namespace causer::core {

/// Adapts a trained CauserModel to the explanation evaluator. `mode`
/// selects the relevance signal: kFull for Causer, kCausal for
/// Causer(-att), kAttention for Causer(-causal) — the three systems
/// compared in the paper's Fig. 7.
eval::Explainer MakeCauserExplainer(CauserModel& model, ExplainMode mode);

/// NARM's attention weights as an explanation baseline (Fig. 8). The
/// weights do not depend on the target item.
eval::Explainer MakeNarmExplainer(models::Narm& model);

}  // namespace causer::core

#endif  // CAUSER_CORE_EXPLAINER_H_
