#include "core/cluster_graph.h"

#include <cmath>
#include <limits>

#include "causal/acyclicity.h"
#include "nn/init.h"
#include "tensor/ops.h"
#include "tensor/primitives/primitives.h"

namespace causer::core {

ClusterCausalGraph::ClusterCausalGraph(int num_clusters, causer::Rng& rng) {
  // Positive-leaning initialization so some edges pass the filter threshold
  // before the graph has been learned (the DAG + L1 penalties prune from
  // there). The diagonal starts at zero and is never favored by h(W).
  wc_ = RegisterParameter(
      Tensor::RandomUniform(num_clusters, num_clusters, 0.2f, 0.6f, rng,
                            /*requires_grad=*/true));
  for (int i = 0; i < num_clusters; ++i) wc_.At(i, i) = 0.0f;
}

double ClusterCausalGraph::AcyclicityResidual() const {
  return causal::AcyclicityValue(AsDense());
}

double ClusterCausalGraph::AccumulatePenaltyGradient(double beta1,
                                                     double beta2,
                                                     double lambda) {
  const int k = wc_.rows();
  auto& node = *wc_.node();
  node.EnsureGrad();
  double h = causal::AcyclicityValueAndAccumulateGrad(
      node.value.data(), k, /*scale=*/0.0, nullptr);
  causal::AcyclicityValueAndAccumulateGrad(node.value.data(), k,
                                           beta1 + beta2 * h,
                                           node.grad.data());
  for (size_t i = 0; i < node.value.size(); ++i) {
    float w = node.value[i];
    node.grad[i] += static_cast<float>(
        lambda * (w > 0.0f ? 1.0 : (w < 0.0f ? -1.0 : 0.0)));
  }
  return h;
}

std::vector<float> ClusterCausalGraph::ItemLevelMatrix(
    const Tensor& assignments) const {
  tensor::NoGradGuard guard;
  // W = A Wc A^T computed as (A Wc) A^T.
  Tensor awc = tensor::MatMul(assignments, wc_);                 // [V, K]
  Tensor w = tensor::MatMul(awc, tensor::Transpose(assignments));  // [V, V]
  return {w.data().begin(), w.data().end()};
}

causal::Dense ClusterCausalGraph::AsDense() const {
  const int k = wc_.rows();
  causal::Dense d(k, k);
  for (int i = 0; i < k; ++i)
    for (int j = 0; j < k; ++j) d(i, j) = wc_.At(i, j);
  return d;
}

causal::Graph ClusterCausalGraph::ThresholdedGraph(double threshold) const {
  const int k = wc_.rows();
  causal::Graph g(k);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      // Paper filter semantics: W > epsilon (signed, not |W|).
      if (i != j && wc_.At(i, j) > threshold) g.SetEdge(i, j);
    }
  }
  return g;
}

double ClusterCausalGraph::ApplyPenaltySteps(double lr, double beta1,
                                             double beta2, double lambda) {
  causal::Dense w = AsDense();
  double h = causal::AcyclicityValue(w);
  causal::Dense grad = causal::AcyclicityGradient(w);
  const double coeff = lr * (beta1 + beta2 * h);
  const double shrink = lr * lambda;
  auto& node = *wc_.node();
  const int k = wc_.rows();
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      float& v = node.value[static_cast<size_t>(i) * k + j];
      v -= static_cast<float>(coeff * grad(i, j));
      if (v > shrink) {
        v -= static_cast<float>(shrink);
      } else if (v < -shrink) {
        v += static_cast<float>(shrink);
      } else {
        v = 0.0f;
      }
    }
  }
  ClampNonNegative();
  return h;
}

void ClusterCausalGraph::ClampNonNegative() {
  auto& node = *wc_.node();
  const int k = wc_.rows();
  // max(0, w) through the active ISA's clamp (identical -0/NaN selects in
  // every variant), then re-zero the diagonal it may not touch.
  tensor::primitives::Active().clamp(
      static_cast<std::size_t>(k) * k, 0.0f,
      std::numeric_limits<float>::infinity(), node.value.data());
  for (int i = 0; i < k; ++i) {
    node.value[static_cast<std::size_t>(i) * k + i] = 0.0f;
  }
}

AugmentedLagrangian::AugmentedLagrangian(double beta1_init, double beta2_init,
                                         double kappa1, double kappa2,
                                         double beta2_max)
    : beta1_(beta1_init),
      beta2_(beta2_init),
      kappa1_(kappa1),
      kappa2_(kappa2),
      beta2_max_(beta2_max),
      h_prev_(std::numeric_limits<double>::infinity()) {}

bool AugmentedLagrangian::Update(double h) {
  if (!std::isfinite(h)) return false;
  beta1_ += beta2_ * h;
  bool capped = false;
  if (std::isfinite(h_prev_) && std::fabs(h) >= kappa2_ * std::fabs(h_prev_)) {
    double grown = beta2_ * kappa1_;
    capped = grown > beta2_max_;
    beta2_ = capped ? beta2_max_ : grown;
  }
  h_prev_ = h;
  return capped;
}

void AugmentedLagrangian::SaveState(std::string* out) const {
  serial::AppendF64(out, beta1_);
  serial::AppendF64(out, beta2_);
  serial::AppendF64(out, h_prev_);
}

bool AugmentedLagrangian::LoadState(serial::Reader& in) {
  double beta1 = 0.0, beta2 = 0.0, h_prev = 0.0;
  in.ReadF64(&beta1);
  in.ReadF64(&beta2);
  in.ReadF64(&h_prev);
  if (!in.ok()) return false;
  beta1_ = beta1;
  beta2_ = beta2;
  h_prev_ = h_prev;
  return true;
}

}  // namespace causer::core
