#include "core/causer_model.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "causal/acyclicity.h"
#include "causal/notears.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "data/sampler.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace causer::core {

using nn::Tensor;

namespace {

/// Causer graph instruments (see docs/OBSERVABILITY.md), registered
/// together on first touch. The NOTEARS-shared gauges (rho/alpha/h) live in
/// causal::NotearsMetrics() since the W^c subproblem reuses that machinery.
struct CauserMetricsT {
  metrics::Counter& graph_updates;  ///< causer.graph_updates_total
  metrics::Gauge& graph_edges;      ///< causer.graph_edges
  metrics::Counter& rho_capped;     ///< causer.notears.rho_capped_total
};

CauserMetricsT& CauserMetrics() {
  static CauserMetricsT m{
      metrics::GetCounter(
          "causer.graph_updates_total", "updates",
          "FitClusterGraph solves (per-epoch W^c subproblems)."),
      metrics::GetGauge(
          "causer.graph_edges", "edges",
          "Edges of the learned cluster graph above the epsilon threshold."),
      metrics::GetCounter(
          "causer.notears.rho_capped_total", "updates",
          "Multiplier updates where the beta2_max cap bound the NOTEARS "
          "rho escalation."),
  };
  return m;
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seed of the chained group-key hash; histories that keep nothing stay at
/// the seed, so it doubles as "the fallback group's key".
constexpr uint64_t kGroupKeySeed = 0xcbf29ce484222325ULL;

/// Absorbs one kept (step, item) pair into a running group key. Chaining
/// the mix keeps the key order-sensitive and lets the serving path extend a
/// cached key with a new step's pairs without revisiting the history —
/// exactly the Zobrist-style trick incremental hashers use. Two distinct
/// filtered histories collide with probability ~2^-64 per pair, far below
/// the float-noise floor of everything downstream; a collision would merely
/// score the colliding candidates against the other history's encoding.
inline uint64_t HashKeptPair(uint64_t key, int step, int item) {
  const uint64_t pair = (static_cast<uint64_t>(static_cast<uint32_t>(step))
                         << 32) |
                        static_cast<uint32_t>(item);
  return SplitMix64(key ^ SplitMix64(pair));
}

}  // namespace

CauserModel::CauserModel(const CauserConfig& config)
    : models::SequentialRecommender(config.base),
      causer_config_(config),
      lagrangian_(config.beta1_init, config.beta2_init, config.kappa1,
                  config.kappa2, config.beta2_max) {
  CAUSER_CHECK(config.base.item_features != nullptr &&
               !config.base.item_features->empty());
  CAUSER_CHECK(config.num_clusters >= 2);

  clusterer_ = std::make_unique<ItemClusterer>(
      *config.base.item_features, config.num_clusters, config.encoder_hidden,
      config.cluster_dim, config.eta, rng_);
  graph_ = std::make_unique<ClusterCausalGraph>(config.num_clusters, rng_);
  if (config.backbone == Backbone::kGru) {
    gru_ = std::make_unique<nn::GruCell>(config.cluster_dim,
                                         config.base.hidden_dim, rng_);
  } else {
    lstm_ = std::make_unique<nn::LstmCell>(config.cluster_dim,
                                           config.base.hidden_dim, rng_);
  }
  attention_ =
      std::make_unique<nn::BilinearAttention>(config.base.hidden_dim, rng_);
  adapt_ = std::make_unique<nn::Linear>(config.base.hidden_dim,
                                        config.base.embedding_dim, rng_,
                                        /*with_bias=*/false);
  out_items_ = std::make_unique<nn::Embedding>(config.base.num_items,
                                               config.base.embedding_dim,
                                               rng_);
  // Zero-initialized so the untrained model matches the session-only
  // formulation; the affinity term grows only where the data supports it.
  users_ = std::make_unique<nn::Embedding>(config.base.num_users,
                                           config.base.embedding_dim, rng_,
                                           /*scale=*/0.0f);
  // Zero scale when disabled keeps both the behaviour and the random
  // stream identical to the feature-only formulation.
  input_items_ = std::make_unique<nn::Embedding>(
      config.base.num_items, config.cluster_dim, rng_,
      config.use_free_input_embedding ? 0.1f : 0.0f);

  RegisterModule(clusterer_.get());
  RegisterModule(graph_.get());
  if (gru_) RegisterModule(gru_.get());
  if (lstm_) RegisterModule(lstm_.get());
  RegisterModule(attention_.get());
  RegisterModule(adapt_.get());
  RegisterModule(out_items_.get());
  RegisterModule(users_.get());
  RegisterModule(input_items_.get());

  // Three parameter groups with independent optimizers (Algorithm 1's
  // alternating updates + the Section III-C slow-update efficiency mode):
  // main = Theta_g, Theta_e, V, A; graph = W^c; aux = Theta_a.
  std::vector<Tensor> main_params;
  auto append = [&main_params](const nn::Module& m) {
    auto p = m.Parameters();
    main_params.insert(main_params.end(), p.begin(), p.end());
  };
  if (gru_) append(*gru_);
  if (lstm_) append(*lstm_);
  append(*attention_);
  append(*adapt_);
  append(*out_items_);
  append(*users_);
  if (config.use_free_input_embedding) append(*input_items_);
  opt_main_ =
      std::make_unique<nn::Adam>(main_params, config.base.learning_rate);
  opt_graph_ = std::make_unique<nn::Adam>(graph_->Parameters(),
                                          config.graph_learning_rate);
  opt_aux_ = std::make_unique<nn::Adam>(clusterer_->Parameters(),
                                        config.base.learning_rate);
}

std::string CauserModel::name() const {
  std::string n = causer_config_.backbone == Backbone::kGru ? "Causer (GRU)"
                                                            : "Causer (LSTM)";
  std::string ablations;
  if (!causer_config_.use_clustering_loss) ablations += "-clus,";
  if (!causer_config_.use_reconstruction_loss) ablations += "-rec,";
  if (!causer_config_.use_attention) ablations += "-att,";
  if (!causer_config_.use_causal) ablations += "-causal,";
  if (!ablations.empty()) {
    ablations.pop_back();
    n += " [" + ablations + "]";
  }
  return n;
}

void CauserModel::OnParametersRestored() {
  SequentialRecommender::OnParametersRestored();
  caches_stale_ = true;
}

void CauserModel::RefreshCaches() {
  tensor::NoGradGuard guard;
  // The assignment/item-level tensors ([V,K] and [V,V]) are pure scratch:
  // build them on the arena and keep only the flat heap copies below.
  tensor::ArenaScope arena_scope;
  Tensor assignments = clusterer_->AssignmentsAll();
  w_cache_ = graph_->ItemLevelMatrix(assignments);
  // Explicit element copy: the caches are plain heap vectors that outlive
  // any ArenaScope the refresh might run under.
  assign_cache_.assign(assignments.data().begin(), assignments.data().end());
  // The user-bias columns are dot products against the refreshed
  // parameters, and serve sessions' cached groups filter through the
  // refreshed w_cache_: both invalidate with it.
  user_bias_cache_.clear();
  ++serve_epoch_;
  caches_stale_ = false;
}

void CauserModel::RecordTransition(const std::vector<data::Step>& history,
                                   int positive_item) {
  const int k = causer_config_.num_clusters;
  std::vector<float> s(k, 0.0f);
  float total = 0.0f;
  for (const auto& step : history) {
    for (int item : step.items) {
      const float* row = assign_cache_.data() + static_cast<size_t>(item) * k;
      for (int i = 0; i < k; ++i) {
        s[i] += row[i];
        total += row[i];
      }
    }
  }
  if (total <= 0.0f) return;
  for (auto& v : s) v /= total;
  const float* target =
      assign_cache_.data() + static_cast<size_t>(positive_item) * k;
  epoch_sources_.insert(epoch_sources_.end(), s.begin(), s.end());
  epoch_targets_.insert(epoch_targets_.end(), target, target + k);
}

void CauserModel::FitClusterGraph() {
  const int k = causer_config_.num_clusters;
  const int n = static_cast<int>(epoch_sources_.size()) / k;
  if (n == 0) return;
  trace::TraceSpan span("causer.fit_cluster_graph", "causal");
  span.AddArg("transitions", n);
  auto& node = *graph_->mutable_weights().node();
  const double lr = causer_config_.graph_learning_rate;
  const double shrink = lr * causer_config_.lambda;

  for (int step = 0; step < causer_config_.graph_inner_steps; ++step) {
    // Cross-entropy gradient of predicting the next cluster from the
    // history's cluster activations through W^c, averaged over the epoch's
    // transitions (the sequence analog of NOTEARS' regression term).
    std::vector<double> grad(static_cast<size_t>(k) * k, 0.0);
    std::vector<double> score(k), p(k);
    for (int t = 0; t < n; ++t) {
      const float* s = epoch_sources_.data() + static_cast<size_t>(t) * k;
      const float* target = epoch_targets_.data() + static_cast<size_t>(t) * k;
      std::fill(score.begin(), score.end(), 0.0);
      for (int i = 0; i < k; ++i) {
        if (s[i] == 0.0f) continue;
        const float* row = node.value.data() + static_cast<size_t>(i) * k;
        for (int j = 0; j < k; ++j) score[j] += s[i] * row[j];
      }
      double mx = score[0];
      for (int j = 1; j < k; ++j) mx = std::max(mx, score[j]);
      double z = 0.0;
      for (int j = 0; j < k; ++j) {
        p[j] = std::exp(score[j] - mx);
        z += p[j];
      }
      for (int j = 0; j < k; ++j) {
        double coef = p[j] / z - target[j];
        if (coef == 0.0) continue;
        for (int i = 0; i < k; ++i) {
          if (s[i] != 0.0f) grad[static_cast<size_t>(i) * k + j] += s[i] * coef;
        }
      }
    }
    const double data_scale = causer_config_.graph_data_weight / n;

    // Augmented-Lagrangian DAG penalty at the current multipliers.
    causal::Dense w = graph_->AsDense();
    double h = causal::AcyclicityValue(w);
    // Numeric-health guard: a non-finite residual means W^c already blew
    // up; more penalty steps only spread the damage. Leave the matrix for
    // the trainer's sentinel to roll back.
    if (!std::isfinite(h)) break;
    causal::Dense hg = causal::AcyclicityGradient(w);
    const double coeff = lagrangian_.beta1() + lagrangian_.beta2() * h;

    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < k; ++j) {
        float& v = node.value[static_cast<size_t>(i) * k + j];
        v -= static_cast<float>(
            lr * (data_scale * grad[static_cast<size_t>(i) * k + j] +
                  coeff * hg(i, j)));
        // Proximal L1 keeps inactive entries at exactly zero.
        if (v > shrink) {
          v -= static_cast<float>(shrink);
        } else if (v < -shrink) {
          v += static_cast<float>(shrink);
        } else {
          v = 0.0f;
        }
      }
    }
    graph_->ClampNonNegative();
  }
  const bool rho_capped = lagrangian_.Update(graph_->AcyclicityResidual());
  if (metrics::Enabled()) {
    if (rho_capped) CauserMetrics().rho_capped.Add();
    // One FitClusterGraph call is one outer iteration (fixed multipliers,
    // then one multiplier update) over a single inner subproblem.
    auto& nm = causal::NotearsMetrics();
    nm.subproblems.Add();
    nm.inner_steps.Add(
        static_cast<uint64_t>(causer_config_.graph_inner_steps));
    nm.outer_iterations.Add();
    const double h = graph_->AcyclicityResidual();
    nm.h.Set(h);
    nm.alpha.Set(lagrangian_.beta1());
    nm.rho.Set(lagrangian_.beta2());
    CauserMetrics().graph_updates.Add();
    causal::Graph g = graph_->ThresholdedGraph(causer_config_.epsilon);
    int edges = 0;
    for (int i = 0; i < g.n(); ++i)
      for (int j = 0; j < g.n(); ++j) edges += g.Edge(i, j) ? 1 : 0;
    CauserMetrics().graph_edges.Set(edges);
    span.AddArg("h", h);
  }
  epoch_sources_.clear();
  epoch_targets_.clear();
}

void CauserModel::EnsureCaches() {
  // Serialized so the parallel evaluator's concurrent first ScoreAll calls
  // cannot refresh the caches twice; once fresh, callers only read them.
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (caches_stale_ || w_cache_.empty()) RefreshCaches();
}

float CauserModel::ItemCausalWeight(int a, int b) {
  EnsureCaches();
  return w_cache_[static_cast<size_t>(a) * config_.num_items + b];
}

Tensor CauserModel::StepInput(const std::vector<int>& items) {
  Tensor rows = clusterer_->EncodeItems(items);  // [k, d2]
  if (causer_config_.use_free_input_embedding) {
    rows = tensor::Add(rows, input_items_->Forward(items));
  }
  return rows.rows() == 1 ? rows
                          : tensor::ScalarMul(tensor::SumCols(rows),
                                              1.0f / rows.rows());
}

Tensor CauserModel::RunBackbone(
    const std::vector<std::vector<int>>& step_items) {
  CAUSER_CHECK(!step_items.empty());
  std::vector<Tensor> states;
  states.reserve(step_items.size());
  if (gru_) {
    Tensor h = gru_->InitialState();
    for (const auto& items : step_items) {
      h = gru_->Forward(StepInput(items), h);
      states.push_back(h);
    }
  } else {
    nn::LstmState s = lstm_->InitialState();
    for (const auto& items : step_items) {
      s = lstm_->Forward(StepInput(items), s);
      states.push_back(s.h);
    }
  }
  return tensor::ConcatRows(states);
}

void CauserModel::BackboneStep(const std::vector<int>& items,
                               std::vector<float>* h, std::vector<float>* c) {
  tensor::NoGradGuard guard;
  tensor::ArenaScope arena_scope;
  const int hd = config_.hidden_dim;
  Tensor input = StepInput(items);
  if (gru_) {
    Tensor prev =
        h->empty() ? gru_->InitialState() : Tensor::FromData(1, hd, *h);
    // Feeding the cell the copied-out floats of the previous state yields
    // the same values the chained RunBackbone recurrence computes.
    Tensor next = gru_->Forward(input, prev);
    h->assign(next.data().begin(), next.data().end());
  } else {
    nn::LstmState prev;
    prev.h = h->empty() ? lstm_->InitialState().h : Tensor::FromData(1, hd, *h);
    prev.c = c->empty() ? lstm_->InitialState().c : Tensor::FromData(1, hd, *c);
    nn::LstmState next = lstm_->Forward(input, prev);
    h->assign(next.h.data().begin(), next.h.data().end());
    c->assign(next.c.data().begin(), next.c.data().end());
  }
}

CauserModel::Encoded CauserModel::EncodeFiltered(
    const std::vector<data::Step>& history, int candidate) {
  EnsureCaches();
  const int v = config_.num_items;
  Encoded enc;
  std::vector<std::vector<int>> steps;
  for (size_t t = 0; t < history.size(); ++t) {
    if (history[t].items.empty()) continue;
    std::vector<int> kept;
    if (causer_config_.use_causal) {
      for (int item : history[t].items) {
        if (w_cache_[static_cast<size_t>(item) * v + candidate] >
            causer_config_.epsilon) {
          kept.push_back(item);
        }
      }
    } else {
      kept = history[t].items;
    }
    if (kept.empty()) continue;  // Eq. 10: skip cause-free steps
    steps.push_back(std::move(kept));
    enc.step_index.push_back(static_cast<int>(t));
  }
  if (steps.empty()) {
    // Everything was filtered out; fall back to the unfiltered history so
    // the model still produces (and learns from) a representation.
    enc.fallback = true;
    for (size_t t = 0; t < history.size(); ++t) {
      if (history[t].items.empty()) continue;
      steps.push_back(history[t].items);
      enc.step_index.push_back(static_cast<int>(t));
    }
  }
  if (steps.empty()) return enc;  // degenerate: empty history
  enc.kept_items = steps;
  enc.states = RunBackbone(steps);
  return enc;
}

Tensor CauserModel::StepWeights(const Tensor& states) {
  const int t = states.rows();
  if (!causer_config_.use_attention) {
    return Tensor::Full(t, 1, 1.0f / static_cast<float>(t));
  }
  Tensor query = tensor::SliceRows(states, t - 1, 1);
  return attention_->Weights(states, query);
}

Tensor CauserModel::CausalEffects(const Encoded& encoded, int candidate,
                                  bool differentiable) {
  const int t = encoded.states.rows();
  if (!causer_config_.use_causal) {
    return Tensor::Full(t, 1, 1.0f);
  }
  if (encoded.fallback && !differentiable) {
    // Inference with a fully filtered history: treat all steps equally.
    return Tensor::Full(t, 1, 1.0f);
  }
  // In the differentiable fallback case What is computed over the full
  // (unfiltered) history, so entries of W^c that dropped below epsilon
  // still receive gradients and can recover — otherwise the filter is a
  // one-way trap that collapses the graph.
  if (!differentiable) {
    std::vector<float> vals(t, 0.0f);
    const int v = config_.num_items;
    for (int r = 0; r < t; ++r) {
      for (int item : encoded.kept_items[r]) {
        vals[r] += w_cache_[static_cast<size_t>(item) * v + candidate];
      }
    }
    return Tensor::FromData(t, 1, std::move(vals));
  }
  Tensor ab =
      tensor::Transpose(clusterer_->Assignments({candidate}));  // [K, 1]
  std::vector<Tensor> rows;
  rows.reserve(t);
  for (int r = 0; r < t; ++r) {
    Tensor s = tensor::SumCols(
        clusterer_->Assignments(encoded.kept_items[r]));  // [1, K]
    rows.push_back(tensor::MatMul(tensor::MatMul(s, graph_->weights()), ab));
  }
  return tensor::ConcatRows(rows);  // [T, 1]
}

Tensor CauserModel::CandidateLogit(const Encoded& encoded, int user,
                                   int candidate,
                                   bool differentiable_graph) {
  if (!encoded.states.defined()) return Tensor::Scalar(0.0f);
  Tensor alpha = StepWeights(encoded.states);                        // [T,1]
  Tensor what = CausalEffects(encoded, candidate, differentiable_graph);
  Tensor coeff = tensor::Mul(alpha, what);                           // [T,1]
  Tensor pooled =
      tensor::MatMul(tensor::Transpose(coeff), encoded.states);      // [1,h]
  Tensor rep = adapt_->Forward(pooled);
  if (causer_config_.use_user_embedding) {
    rep = tensor::Add(rep, users_->Row(user));
  }
  return tensor::SumRows(tensor::Mul(rep, out_items_->Row(candidate)));
}

const std::vector<float>& CauserModel::UserBiasFor(int user) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = user_bias_cache_.find(user);
  if (it != user_bias_cache_.end()) return it->second;
  // One [V, 1] GEMV per user per cache epoch instead of one per ScoreAll;
  // RefreshCaches clears the map when the parameters behind it move.
  tensor::NoGradGuard guard;
  tensor::ArenaScope arena_scope;
  Tensor bias = tensor::MatMul(out_items_->weight(),
                               tensor::Transpose(users_->Row(user)));
  std::vector<float>& cached = user_bias_cache_[user];
  cached.assign(bias.data().begin(), bias.data().end());
  return cached;
}

void CauserModel::ScoreGroup(const Tensor& states, const Tensor& alpha,
                             const std::vector<std::vector<int>>* kept_steps,
                             const std::vector<int>& members,
                             const std::vector<float>& user_bias,
                             std::vector<float>* out) {
  const int v = config_.num_items;
  const int t = states.rows();
  const int g_size = static_cast<int>(members.size());
  // Coefficient matrix C[t][g] = alpha_t * What_{t, b_g}.
  std::vector<float> coeff(static_cast<size_t>(t) * g_size, 0.0f);
  for (int g = 0; g < g_size; ++g) {
    int b = members[g];
    for (int r = 0; r < t; ++r) {
      float what = 1.0f;
      if (kept_steps != nullptr) {
        what = 0.0f;
        for (int item : (*kept_steps)[r]) {
          what += w_cache_[static_cast<size_t>(item) * v + b];
        }
      }
      coeff[static_cast<size_t>(r) * g_size + g] = alpha.At(r, 0) * what;
    }
  }
  Tensor c = Tensor::FromData(t, g_size, std::move(coeff));
  Tensor pooled = tensor::MatMul(tensor::Transpose(c), states);  // [G, h]
  Tensor reps = adapt_->Forward(pooled);                    // [G, de]
  Tensor emb = out_items_->Forward(members);                // [G, de]
  Tensor logits = tensor::SumRows(tensor::Mul(reps, emb));  // [G, 1]
  for (int g = 0; g < g_size; ++g) {
    int b = members[g];
    (*out)[b] = logits.At(g, 0) + user_bias[b];
  }
}

std::vector<float> CauserModel::ScoreAll(
    int user, const std::vector<data::Step>& history) {
  tensor::NoGradGuard guard;
  EnsureCaches();
  const int v = config_.num_items;
  std::vector<float> out(v, 0.0f);
  std::vector<data::Step> truncated = Truncate(history);
  if (truncated.empty()) return out;
  // User-affinity bias u_k . e_b, added to every candidate's score when
  // the u_k conditioning is enabled (zeros otherwise, keeping the + below
  // unconditional so disabled runs stay bitwise-identical).
  std::vector<float> zero_bias;
  const std::vector<float>* user_bias;
  if (causer_config_.use_user_embedding) {
    user_bias = &UserBiasFor(user);
  } else {
    zero_bias.assign(v, 0.0f);
    user_bias = &zero_bias;
  }

  // Group candidates sharing the same filtered history; the backbone runs
  // once per group (with near-hard assignments there are at most ~K
  // distinct filters, which is what makes cluster-level causality scale).
  // The key is the chained hash of the kept (step, item) pairs — integer
  // mixing instead of the O(V·T) string formatting this loop used to do.
  struct Group {
    Encoded encoded;
    Tensor alpha;
    std::vector<int> members;
  };
  std::vector<Group> groups;
  std::unordered_map<uint64_t, int> group_of;
  for (int b = 0; b < v; ++b) {
    uint64_t key = kGroupKeySeed;
    if (causer_config_.use_causal) {
      for (size_t t = 0; t < truncated.size(); ++t) {
        for (int item : truncated[t].items) {
          if (w_cache_[static_cast<size_t>(item) * v + b] >
              causer_config_.epsilon) {
            key = HashKeptPair(key, static_cast<int>(t), item);
          }
        }
      }
    }
    auto [it, inserted] = group_of.try_emplace(key, -1);
    if (inserted) {
      Group g;
      g.encoded = EncodeFiltered(truncated, b);
      if (g.encoded.states.defined()) g.alpha = StepWeights(g.encoded.states);
      it->second = static_cast<int>(groups.size());
      groups.push_back(std::move(g));
    }
    groups[it->second].members.push_back(b);
  }

  for (const auto& group : groups) {
    if (!group.encoded.states.defined()) continue;
    const bool weighted =
        causer_config_.use_causal && !group.encoded.fallback;
    ScoreGroup(group.encoded.states, group.alpha,
               weighted ? &group.encoded.kept_items : nullptr, group.members,
               *user_bias, &out);
  }
  return out;
}

/// Incremental serving session: the history window plus, per filtered-
/// history group, the backbone state over that group's kept steps. With
/// near-hard assignments there are at most ~K groups, so advancing an
/// event costs ~K cell steps however long the session is. All storage is
/// plain heap vectors (states are copied out of each step's arena).
class CauserModel::ServeState : public models::SessionState {
 public:
  /// One filtered-history group: the candidates whose causal filter keeps
  /// exactly `kept_steps` of the window, and the backbone run over them.
  struct GroupState {
    uint64_t key = kGroupKeySeed;
    std::vector<std::vector<int>> kept_steps;  // filtered items per row
    std::vector<int> step_index;               // window index per row
    std::vector<float> states;                 // [rows * hidden_dim]
    std::vector<float> h;  // last hidden state ([hidden_dim])
    std::vector<float> c;  // LSTM cell memory (unused under GRU)

    /// True for the group of candidates whose filter kept nothing — they
    /// score against the shared unfiltered fallback encoding.
    bool empty() const { return kept_steps.empty(); }

    void Append(const std::vector<int>& items, int t) {
      kept_steps.push_back(items);
      step_index.push_back(t);
    }
  };

  int user = 0;
  std::vector<data::Step> window;  // last <= max_history appended steps
  bool dirty = false;   // groups must be rebuilt from the window
  uint64_t epoch = 0;   // serve_epoch_ the cached groups were built under
  /// Backbone over every non-empty window step unfiltered: Eq. 10's
  /// fallback encoding, and the single group when use_causal is off.
  GroupState unfiltered;
  /// Filtered groups (use_causal only); groups[group_of[b]] is candidate
  /// b's group. A group with empty kept_steps is the fallback group.
  std::vector<GroupState> groups;
  std::vector<int> group_of;
};

std::unique_ptr<models::SessionState> CauserModel::NewSessionState(int user) {
  EnsureCaches();
  auto state = std::make_unique<ServeState>();
  state->user = user;
  state->epoch = serve_epoch_;
  if (causer_config_.use_causal) {
    // Every candidate starts in the (empty) fallback group.
    state->groups.emplace_back();
    state->group_of.assign(config_.num_items, 0);
  }
  return state;
}

void CauserModel::AdvanceState(models::SessionState& state,
                               const data::Step& step) {
  auto* s = dynamic_cast<ServeState*>(&state);
  CAUSER_CHECK(s != nullptr);
  s->window.push_back(step);
  bool slid = false;
  if (static_cast<int>(s->window.size()) > config_.max_history) {
    // Only the most recent max_history steps can influence ScoreAll, so
    // the window is bounded; the cached states now include an evicted step
    // and must be replayed from the window.
    s->window.erase(s->window.begin());
    slid = true;
  }
  EnsureCaches();
  if (slid || s->epoch != serve_epoch_) s->dirty = true;
  // Rebuilds are deferred to the next score, so a burst of advances after
  // a slide or a cache refresh pays for one rebuild, not many.
  if (s->dirty || step.items.empty()) return;  // empty steps never encode

  tensor::NoGradGuard guard;
  const int t = static_cast<int>(s->window.size()) - 1;
  BackboneStep(step.items, &s->unfiltered.h, &s->unfiltered.c);
  s->unfiltered.states.insert(s->unfiltered.states.end(),
                              s->unfiltered.h.begin(), s->unfiltered.h.end());
  s->unfiltered.Append(step.items, t);
  if (!causer_config_.use_causal) return;

  // Re-partition the candidates by their extended keys. Keys only ever
  // extend (the new step's kept pairs chain onto the old key), so groups
  // split but never merge: equal new keys imply equal old keys, and each
  // child can start from its parent's copied-out recurrent state.
  const int v = config_.num_items;
  const float eps = causer_config_.epsilon;
  std::vector<ServeState::GroupState> next;
  std::vector<int> next_of(v, -1);
  std::unordered_map<uint64_t, int> index;
  std::vector<int> kept;
  for (int b = 0; b < v; ++b) {
    const ServeState::GroupState& parent = s->groups[s->group_of[b]];
    kept.clear();
    uint64_t key = parent.key;
    for (int item : step.items) {
      if (w_cache_[static_cast<size_t>(item) * v + b] > eps) {
        kept.push_back(item);
        key = HashKeptPair(key, t, item);
      }
    }
    auto [it, inserted] = index.try_emplace(key, -1);
    if (inserted) {
      ServeState::GroupState g;
      if (kept.empty()) {
        g = parent;  // nothing new kept: the group carries over unchanged
      } else if (parent.empty()) {
        // Fallback members gaining their first kept items: the filtered
        // history is exactly this step's kept set.
        g.key = key;
        g.Append(kept, t);
        BackboneStep(kept, &g.h, &g.c);
        g.states = g.h;
      } else {
        g = parent;  // split: the child copies the parent's rows...
        g.key = key;
        g.Append(kept, t);
        BackboneStep(kept, &g.h, &g.c);  // ...and advances one cell step
        g.states.insert(g.states.end(), g.h.begin(), g.h.end());
      }
      it->second = static_cast<int>(next.size());
      next.push_back(std::move(g));
    }
    next_of[b] = it->second;
  }
  s->groups = std::move(next);
  s->group_of = std::move(next_of);
}

void CauserModel::RebuildServeState(ServeState& state) {
  tensor::NoGradGuard guard;
  const int v = config_.num_items;
  const float eps = causer_config_.epsilon;
  state.unfiltered = ServeState::GroupState{};
  state.groups.clear();
  state.group_of.clear();
  for (size_t t = 0; t < state.window.size(); ++t) {
    const auto& items = state.window[t].items;
    if (items.empty()) continue;
    BackboneStep(items, &state.unfiltered.h, &state.unfiltered.c);
    state.unfiltered.states.insert(state.unfiltered.states.end(),
                                   state.unfiltered.h.begin(),
                                   state.unfiltered.h.end());
    state.unfiltered.Append(items, static_cast<int>(t));
  }
  if (causer_config_.use_causal) {
    // Same grouping scan as ScoreAll's, building each group's backbone
    // once on first sight of its key.
    state.group_of.assign(v, -1);
    std::unordered_map<uint64_t, int> index;
    for (int b = 0; b < v; ++b) {
      uint64_t key = kGroupKeySeed;
      for (size_t t = 0; t < state.window.size(); ++t) {
        for (int item : state.window[t].items) {
          if (w_cache_[static_cast<size_t>(item) * v + b] > eps) {
            key = HashKeptPair(key, static_cast<int>(t), item);
          }
        }
      }
      auto [it, inserted] = index.try_emplace(key, -1);
      if (inserted) {
        ServeState::GroupState g;
        g.key = key;
        for (size_t t = 0; t < state.window.size(); ++t) {
          std::vector<int> kept;
          for (int item : state.window[t].items) {
            if (w_cache_[static_cast<size_t>(item) * v + b] > eps) {
              kept.push_back(item);
            }
          }
          if (kept.empty()) continue;
          BackboneStep(kept, &g.h, &g.c);
          g.states.insert(g.states.end(), g.h.begin(), g.h.end());
          g.Append(kept, static_cast<int>(t));
        }
        it->second = static_cast<int>(state.groups.size());
        state.groups.push_back(std::move(g));
      }
      state.group_of[b] = it->second;
    }
  }
  state.epoch = serve_epoch_;
  state.dirty = false;
}

std::vector<float> CauserModel::ScoreFromState(models::SessionState& state) {
  auto* s = dynamic_cast<ServeState*>(&state);
  CAUSER_CHECK(s != nullptr);
  tensor::NoGradGuard guard;
  EnsureCaches();
  const int v = config_.num_items;
  std::vector<float> out(v, 0.0f);
  if (s->window.empty()) return out;  // ScoreAll's empty-history zeros
  if (s->epoch != serve_epoch_) s->dirty = true;
  if (s->dirty) RebuildServeState(*s);
  // Scratch (reconstructed states, attention, pooling) lives on the arena;
  // only the plain `out` floats leave the scope.
  tensor::ArenaScope arena_scope;
  std::vector<float> zero_bias;
  const std::vector<float>* user_bias;
  if (causer_config_.use_user_embedding) {
    user_bias = &UserBiasFor(s->user);
  } else {
    zero_bias.assign(v, 0.0f);
    user_bias = &zero_bias;
  }

  const int hd = config_.hidden_dim;
  auto encode = [hd](const ServeState::GroupState& g) {
    // The copied-out rows carry the exact floats RunBackbone's chained
    // recurrence produces, so everything downstream matches ScoreAll.
    return Tensor::FromData(static_cast<int>(g.step_index.size()), hd,
                            g.states);
  };

  if (!causer_config_.use_causal) {
    if (s->unfiltered.empty()) return out;  // only empty steps so far
    Tensor states = encode(s->unfiltered);
    Tensor alpha = StepWeights(states);
    std::vector<int> members(v);
    for (int b = 0; b < v; ++b) members[b] = b;
    ScoreGroup(states, alpha, nullptr, members, *user_bias, &out);
    return out;
  }

  std::vector<std::vector<int>> members(s->groups.size());
  for (int b = 0; b < v; ++b) members[s->group_of[b]].push_back(b);
  Tensor fb_states, fb_alpha;  // shared fallback encoding, built lazily
  for (size_t gi = 0; gi < s->groups.size(); ++gi) {
    if (members[gi].empty()) continue;
    const ServeState::GroupState& g = s->groups[gi];
    if (g.empty()) {
      if (s->unfiltered.empty()) continue;  // degenerate: all steps empty
      if (!fb_states.defined()) {
        fb_states = encode(s->unfiltered);
        fb_alpha = StepWeights(fb_states);
      }
      // Fallback semantics at inference: unfiltered states, What = 1.
      ScoreGroup(fb_states, fb_alpha, nullptr, members[gi], *user_bias, &out);
    } else {
      Tensor states = encode(g);
      Tensor alpha = StepWeights(states);
      ScoreGroup(states, alpha, &g.kept_steps, members[gi], *user_bias, &out);
    }
  }
  return out;
}

void CauserModel::PretrainAndFreezeGraph(
    const std::vector<data::Sequence>& train, int rounds) {
  CAUSER_CHECK(rounds > 0);
  auto examples = data::EnumerateExamples(train);
  for (int round = 0; round < rounds; ++round) {
    // Clustering phase (Eqs. 7-8) so the assignments stabilize first.
    for (int s = 0; s < causer_config_.aux_steps_per_epoch; ++s) {
      tensor::ArenaScope arena_scope;
      Tensor loss = tensor::Add(clusterer_->ClusteringLoss(),
                                clusterer_->ReconstructionLoss());
      opt_aux_->ZeroGrad();
      tensor::Backward(loss);
      opt_aux_->ClipGradNorm(config_.grad_clip);
      opt_aux_->Step();
    }
    RefreshCaches();
    // Graph phase: fit W^c to the observed cluster transitions.
    for (const auto& ex : examples) {
      std::vector<data::Step> history(
          ex.sequence->steps.begin(),
          ex.sequence->steps.begin() + ex.target_step);
      history = Truncate(history);
      for (int pos : ex.sequence->steps[ex.target_step].items) {
        RecordTransition(history, pos);
      }
    }
    FitClusterGraph();
  }
  RefreshCaches();
  graph_frozen_ = true;
}

double CauserModel::TrainEpoch(const std::vector<data::Sequence>& train) {
  const bool update_slow =
      !graph_frozen_ &&
      (epoch_ % std::max(1, causer_config_.w_update_every)) == 0;
  const bool update_graph = update_slow && causer_config_.use_causal &&
                            epoch_ >= causer_config_.graph_warmup_epochs;

  RefreshCaches();  // Algorithm 1 line 7-8

  // Auxiliary phase: clustering + reconstruction objectives (Eqs. 7-8).
  if (update_slow && (causer_config_.use_clustering_loss ||
                      causer_config_.use_reconstruction_loss)) {
    for (int s = 0; s < causer_config_.aux_steps_per_epoch; ++s) {
      tensor::ArenaScope arena_scope;
      Tensor loss;
      if (causer_config_.use_clustering_loss) {
        loss = clusterer_->ClusteringLoss();
      }
      if (causer_config_.use_reconstruction_loss) {
        Tensor rec = clusterer_->ReconstructionLoss();
        loss = loss.defined() ? tensor::Add(loss, rec) : rec;
      }
      opt_aux_->ZeroGrad();
      tensor::Backward(loss);
      opt_aux_->ClipGradNorm(config_.grad_clip);
      opt_aux_->Step();
    }
    RefreshCaches();  // assignments moved
  }

  auto examples = data::EnumerateExamples(train);
  rng_.Shuffle(examples);

  const bool measure = metrics::Enabled();
  double total = 0.0;
  int count = 0;
  for (const auto& ex : examples) {
    const auto& steps = ex.sequence->steps;
    std::vector<data::Step> history(steps.begin(),
                                    steps.begin() + ex.target_step);
    history = Truncate(history);
    bool any = false;
    for (const auto& s : history) any = any || !s.items.empty();
    if (!any) continue;

    const auto& positives = steps[ex.target_step].items;
    int available = config_.num_items - static_cast<int>(positives.size());
    int num_neg = std::min(config_.num_negatives, std::max(0, available));
    std::vector<int> ids = positives;
    auto negatives =
        data::SampleNegatives(config_.num_items, positives, num_neg, rng_);
    ids.insert(ids.end(), negatives.begin(), negatives.end());
    std::vector<float> labels(ids.size(), 0.0f);
    for (size_t i = 0; i < positives.size(); ++i) labels[i] = 1.0f;

    Stopwatch step_sw;
    // Per-example tape arena: every candidate's filtered encoding, the
    // attention/pooling graph and the loss die together at scope exit
    // (after loss.Item() below). Parameters and caches stay heap.
    tensor::ArenaScope arena_scope;
    std::vector<Tensor> logit_rows;
    logit_rows.reserve(ids.size());
    for (int b : ids) {
      Encoded enc = EncodeFiltered(history, b);
      logit_rows.push_back(CandidateLogit(enc, ex.sequence->user, b,
                                          /*differentiable_graph=*/false));
    }
    if (update_graph) {
      for (int pos : positives) RecordTransition(history, pos);
    }
    Tensor logits = tensor::ConcatRows(logit_rows);
    Tensor targets =
        Tensor::FromData(static_cast<int>(ids.size()), 1, labels);
    Tensor loss = tensor::BceWithLogits(logits, targets);

    opt_main_->ZeroGrad();
    opt_aux_->ZeroGrad();
    tensor::Backward(loss);
    double norm = opt_main_->ClipGradNorm(config_.grad_clip);
    opt_main_->Step();
    if (update_slow) {
      // Theta_a also receives recommendation-loss gradients on slow-update
      // epochs (Algorithm 1 line 11 updates the full parameter set).
      opt_aux_->ClipGradNorm(config_.grad_clip);
      opt_aux_->Step();
    }
    if (measure) {
      auto& tm = models::TrainerMetrics();
      tm.optimizer_steps.Add();
      tm.grad_norm.Observe(norm);
      tm.step_seconds.Observe(step_sw.ElapsedSeconds());
    }
    total += loss.Item();
    ++count;
  }
  // Per-epoch W^c subproblem (Algorithm 1 lines 10-15): fit the epoch's
  // cluster transitions under the augmented-Lagrangian DAG constraint.
  if (update_graph) FitClusterGraph();
  ++epoch_;
  caches_stale_ = true;
  return count > 0 ? total / count : 0.0;
}

std::vector<double> CauserModel::ExplainScores(
    const data::EvalInstance& instance, int item, ExplainMode mode) {
  tensor::NoGradGuard guard;
  tensor::ArenaScope arena_scope;
  EnsureCaches();
  std::vector<double> out(instance.history.size(), 0.0);
  std::vector<data::Step> truncated = Truncate(instance.history);
  const size_t offset = instance.history.size() - truncated.size();
  Encoded enc = EncodeFiltered(truncated, item);
  if (!enc.states.defined()) return out;

  Tensor alpha = StepWeights(enc.states);
  Tensor what = CausalEffects(enc, item, /*differentiable=*/false);
  for (int r = 0; r < enc.states.rows(); ++r) {
    double a = alpha.At(r, 0);
    double w = what.At(r, 0);
    double score = 0.0;
    switch (mode) {
      case ExplainMode::kFull:
        score = a * w;
        break;
      case ExplainMode::kCausal:
        score = w;
        break;
      case ExplainMode::kAttention:
        score = a;
        break;
    }
    out[offset + enc.step_index[r]] = score;
  }
  return out;
}

void CauserModel::SaveTrainingState(std::string* out) const {
  models::SequentialRecommender::SaveTrainingState(out);  // rng stream
  opt_main_->SaveState(out);
  opt_graph_->SaveState(out);
  opt_aux_->SaveState(out);
  lagrangian_.SaveState(out);
  serial::AppendI32(out, epoch_);
  serial::AppendU32(out, graph_frozen_ ? 1 : 0);
  // Mutable via ScaleLearningRate, so it is state rather than config.
  serial::AppendF32(out, causer_config_.graph_learning_rate);
}

bool CauserModel::LoadTrainingState(serial::Reader& in) {
  if (!models::SequentialRecommender::LoadTrainingState(in)) return false;
  if (!opt_main_->LoadState(in)) return false;
  if (!opt_graph_->LoadState(in)) return false;
  if (!opt_aux_->LoadState(in)) return false;
  if (!lagrangian_.LoadState(in)) return false;
  int32_t epoch = 0;
  uint32_t frozen = 0;
  float graph_lr = 0.0f;
  in.ReadI32(&epoch);
  in.ReadU32(&frozen);
  in.ReadF32(&graph_lr);
  if (!in.ok()) return false;
  epoch_ = epoch;
  graph_frozen_ = frozen != 0;
  causer_config_.graph_learning_rate = graph_lr;
  // The W/assignment caches and any recorded transitions belong to the
  // interrupted epoch; TrainEpoch rebuilds both from the restored
  // parameters.
  caches_stale_ = true;
  epoch_sources_.clear();
  epoch_targets_.clear();
  return true;
}

void CauserModel::ScaleLearningRate(float factor) {
  opt_main_->set_lr(opt_main_->lr() * factor);
  opt_graph_->set_lr(opt_graph_->lr() * factor);
  opt_aux_->set_lr(opt_aux_->lr() * factor);
  // The W^c subproblem takes direct (non-Adam) steps at this rate.
  causer_config_.graph_learning_rate *= factor;
}

causal::Graph CauserModel::LearnedClusterGraph() const {
  return graph_->ThresholdedGraph(causer_config_.epsilon);
}

double CauserModel::AcyclicityResidual() const {
  return graph_->AcyclicityResidual();
}

}  // namespace causer::core
