#ifndef CAUSER_CORE_CLUSTERING_H_
#define CAUSER_CORE_CLUSTERING_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"

namespace causer::core {

using nn::Tensor;

/// Differentiable item clustering (paper Eqs. 6-8).
///
/// Each item's raw feature vector is encoded to an embedding
///   v* = V2 sigmoid(V1 v~ + b1) + b2,
/// constrained to lie near a convex combination of K learned cluster
/// centers (clustering loss, Eq. 7) whose mixture weights come from free
/// per-item logits through a temperature softmax, and decoded back to the
/// raw features (reconstruction loss, Eq. 8).
class ItemClusterer : public nn::Module {
 public:
  /// `features`: raw item features, one row per item (the paper's averaged
  /// GloVe vectors). `eta` is the assignment softmax temperature.
  ItemClusterer(const std::vector<std::vector<float>>& features,
                int num_clusters, int encoder_hidden, int cluster_dim,
                float eta, causer::Rng& rng);

  /// Encoder output v* for the given items: [n, cluster_dim].
  Tensor EncodeItems(const std::vector<int>& items) const;

  /// Encoder output for all items: [num_items, cluster_dim].
  Tensor EncodeAll() const;

  /// Soft cluster assignments for the given items: [n, K], rows sum to 1.
  Tensor Assignments(const std::vector<int>& items) const;

  /// Soft cluster assignments for all items: [num_items, K].
  Tensor AssignmentsAll() const;

  /// Clustering loss (Eq. 7): sum_v ||v* - sum_k a_vk m_k||^2.
  Tensor ClusteringLoss() const;

  /// Reconstruction loss (Eq. 8): sum_v ||decode(v*) - v~||^2.
  Tensor ReconstructionLoss() const;

  /// Hard assignment (argmax of the soft assignment) per item.
  std::vector<int> HardAssignments() const;

  int num_items() const { return features_.rows(); }
  int num_clusters() const { return num_clusters_; }
  int cluster_dim() const { return cluster_dim_; }
  float eta() const { return eta_; }

 private:
  Tensor features_;  // constant [V, d]
  int num_clusters_;
  int cluster_dim_;
  float eta_;
  std::unique_ptr<nn::Linear> enc1_, enc2_;  // V1/b1, V2/b2
  std::unique_ptr<nn::Linear> dec1_, dec2_;  // V3/b3, V4/b4
  Tensor centers_;            // [K, cluster_dim]
  Tensor assignment_logits_;  // [V, K] (the paper's free parameters a)
};

}  // namespace causer::core

#endif  // CAUSER_CORE_CLUSTERING_H_
