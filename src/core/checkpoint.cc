#include "core/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <utility>

#include "common/fault.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/serial.h"

namespace causer::core {
namespace {

namespace fs = std::filesystem;

constexpr uint32_t kMagic = 0x54504B43;  // "CKPT"
constexpr uint32_t kVersion = 1;

// Section tags. New sections get new tags; readers reject unknown tags so
// a version bump is explicit rather than a silent misparse.
constexpr uint32_t kSectionMeta = 1;        // model name (architecture guard)
constexpr uint32_t kSectionParams = 2;      // registered parameter tensors
constexpr uint32_t kSectionModelState = 3;  // SaveTrainingState blob
constexpr uint32_t kSectionFitState = 4;    // FitResumeState

constexpr char kPrefix[] = "ckpt-";
constexpr char kSuffix[] = ".causer";

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void AppendSection(std::string* out, uint32_t tag,
                   const std::string& payload) {
  serial::AppendU32(out, tag);
  serial::AppendU64(out, payload.size());
  serial::AppendU32(out, serial::Crc32(payload.data(), payload.size()));
  out->append(payload);
}

std::string SerializeFitState(const models::FitResumeState& st) {
  std::string out;
  serial::AppendI32(&out, st.next_epoch);
  serial::AppendF64(&out, st.best_ndcg);
  serial::AppendI32(&out, st.stale);
  serial::AppendF64(&out, st.lr_scale);
  serial::AppendDoubles(&out, st.epoch_losses);
  serial::AppendU32(&out, static_cast<uint32_t>(st.best_snapshot.size()));
  for (const auto& p : st.best_snapshot) serial::AppendFloats(&out, p);
  return out;
}

bool ParseFitState(const std::string& blob, models::FitResumeState* st) {
  serial::Reader in(blob);
  models::FitResumeState parsed;
  uint32_t snapshot_count = 0;
  in.ReadI32(&parsed.next_epoch);
  in.ReadF64(&parsed.best_ndcg);
  in.ReadI32(&parsed.stale);
  in.ReadF64(&parsed.lr_scale);
  in.ReadDoubles(&parsed.epoch_losses);
  if (!in.ReadU32(&snapshot_count)) return false;
  parsed.best_snapshot.resize(snapshot_count);
  for (auto& p : parsed.best_snapshot) {
    if (!in.ReadFloats(&p)) return false;
  }
  if (!in.AtEnd()) return false;
  *st = std::move(parsed);
  return true;
}

std::string SerializeParams(const models::SequentialRecommender& model) {
  std::string out;
  auto params = model.Parameters();
  serial::AppendU32(&out, static_cast<uint32_t>(params.size()));
  for (const auto& p : params) {
    serial::AppendU32(&out, static_cast<uint32_t>(p.rows()));
    serial::AppendU32(&out, static_cast<uint32_t>(p.cols()));
    serial::AppendFloats(&out, p.data().data(), p.data().size());
  }
  return out;
}

/// Parses the params section against the model's live shapes without
/// touching them; the staged rows are committed by the caller only after
/// every other section validated.
bool StageParams(const std::string& blob,
                 const std::vector<nn::Tensor>& params,
                 std::vector<std::vector<float>>* staged) {
  serial::Reader in(blob);
  uint32_t count = 0;
  if (!in.ReadU32(&count) || count != params.size()) return false;
  staged->resize(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    uint32_t rows = 0, cols = 0;
    in.ReadU32(&rows);
    in.ReadU32(&cols);
    if (!in.ok() || static_cast<int>(rows) != params[i].rows() ||
        static_cast<int>(cols) != params[i].cols()) {
      return false;
    }
    if (!in.ReadFloats(&(*staged)[i]) ||
        (*staged)[i].size() != params[i].data().size()) {
      return false;
    }
  }
  return in.AtEnd();
}

/// Reads `path` and splits it into validated sections. Returns false on
/// any framing or checksum mismatch.
bool ReadSections(const std::string& path,
                  std::vector<std::pair<uint32_t, std::string>>* sections) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  std::string bytes;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    bytes.append(buf, n);
  }
  if (std::ferror(f.get()) != 0) return false;

  serial::Reader in(bytes);
  uint32_t magic = 0, version = 0, section_count = 0;
  in.ReadU32(&magic);
  in.ReadU32(&version);
  in.ReadU32(&section_count);
  if (!in.ok() || magic != kMagic || version != kVersion) return false;
  sections->clear();
  for (uint32_t s = 0; s < section_count; ++s) {
    uint32_t tag = 0, crc = 0;
    uint64_t size = 0;
    in.ReadU32(&tag);
    in.ReadU64(&size);
    in.ReadU32(&crc);
    if (!in.ok() || size > in.remaining()) return false;
    std::string payload(bytes.data() + (bytes.size() - in.remaining()),
                        static_cast<size_t>(size));
    if (serial::Crc32(payload.data(), payload.size()) != crc) return false;
    if (!in.Skip(static_cast<size_t>(size))) return false;
    sections->emplace_back(tag, std::move(payload));
  }
  // Whole-file checksum over everything before it; catches truncation at
  // a section boundary (where per-section CRCs all still pass).
  if (in.remaining() != sizeof(uint32_t)) return false;
  uint32_t file_crc = 0;
  in.ReadU32(&file_crc);
  return in.AtEnd() &&
         serial::Crc32(bytes.data(), bytes.size() - sizeof(uint32_t)) ==
             file_crc;
}

const std::string* FindSection(
    const std::vector<std::pair<uint32_t, std::string>>& sections,
    uint32_t tag) {
  for (const auto& [t, payload] : sections) {
    if (t == tag) return &payload;
  }
  return nullptr;
}

/// Writes `bytes` to `path` atomically: tmp file, flush, fsync, rename,
/// directory fsync. Any failure removes the tmp file and leaves an
/// existing `path` untouched.
bool AtomicWriteFile(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) return false;
    // `ckpt.torn_file` simulates data lost after a "successful" write
    // (e.g. a power cut between the rename and the data blocks hitting
    // disk): only half the bytes land, but the whole protocol completes
    // and reports success — the reader's CRCs are what must catch it.
    // `ckpt.short_write` is the detected variant: the write comes up
    // short and the save reports failure.
    const bool torn = fault::ShouldFail("ckpt.torn_file");
    size_t to_write = bytes.size();
    if (torn || fault::ShouldFail("ckpt.short_write")) to_write /= 2;
    bool ok = std::fwrite(bytes.data(), 1, to_write, f.get()) == to_write;
    if (!torn && to_write != bytes.size()) ok = false;
    if (ok) ok = std::fflush(f.get()) == 0;
    if (ok) ok = ::fsync(::fileno(f.get())) == 0;
    if (ok) {
      ok = std::fclose(f.release()) == 0;
    }
    if (!ok) {
      f.reset();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (fault::ShouldFail("ckpt.rename_fail") ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  // Persist the rename itself: fsync the containing directory.
  std::string dir = fs::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

/// Epoch parsed from a checkpoint file name, or -1.
int EpochFromName(const std::string& name) {
  const size_t prefix_len = sizeof(kPrefix) - 1;
  const size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return -1;
  if (name.compare(0, prefix_len, kPrefix) != 0) return -1;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return -1;
  }
  int epoch = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    epoch = epoch * 10 + (name[i] - '0');
  }
  return epoch;
}

}  // namespace

std::string CheckpointPath(const std::string& dir, int epoch) {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%06d%s", kPrefix, epoch, kSuffix);
  return (fs::path(dir) / name).string();
}

std::vector<std::string> ListCheckpoints(const std::string& dir) {
  std::vector<std::pair<int, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    int epoch = EpochFromName(entry.path().filename().string());
    if (epoch >= 0) found.emplace_back(epoch, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [epoch, path] : found) paths.push_back(std::move(path));
  return paths;
}

bool SaveTrainingCheckpoint(const models::SequentialRecommender& model,
                            const models::FitResumeState& state,
                            const std::string& path) {
  std::string meta;
  serial::AppendString(&meta, model.name());
  std::string model_state;
  model.SaveTrainingState(&model_state);

  std::string bytes;
  serial::AppendU32(&bytes, kMagic);
  serial::AppendU32(&bytes, kVersion);
  serial::AppendU32(&bytes, 4);  // section count
  AppendSection(&bytes, kSectionMeta, meta);
  AppendSection(&bytes, kSectionParams, SerializeParams(model));
  AppendSection(&bytes, kSectionModelState, model_state);
  AppendSection(&bytes, kSectionFitState, SerializeFitState(state));
  serial::AppendU32(&bytes, serial::Crc32(bytes.data(), bytes.size()));
  return AtomicWriteFile(path, bytes);
}

bool LoadTrainingCheckpoint(models::SequentialRecommender& model,
                            models::FitResumeState* state,
                            const std::string& path) {
  std::vector<std::pair<uint32_t, std::string>> sections;
  if (!ReadSections(path, &sections)) return false;
  const std::string* meta = FindSection(sections, kSectionMeta);
  const std::string* params_blob = FindSection(sections, kSectionParams);
  const std::string* model_state = FindSection(sections, kSectionModelState);
  const std::string* fit_state = FindSection(sections, kSectionFitState);
  if (meta == nullptr || params_blob == nullptr || model_state == nullptr ||
      fit_state == nullptr) {
    return false;
  }

  // Architecture guard: the checkpoint must have been written by the same
  // model kind (name covers backbone + ablation variant).
  serial::Reader meta_in(*meta);
  std::string saved_name;
  if (!meta_in.ReadString(&saved_name) || !meta_in.AtEnd() ||
      saved_name != model.name()) {
    CAUSER_LOG(Error) << "LoadTrainingCheckpoint(" << path
                      << "): model mismatch (checkpoint '" << saved_name
                      << "', model '" << model.name() << "')";
    return false;
  }

  // Stage everything that can be staged before mutating the model.
  auto params = model.Parameters();
  std::vector<std::vector<float>> staged;
  if (!StageParams(*params_blob, params, &staged)) return false;
  models::FitResumeState parsed_state;
  if (!ParseFitState(*fit_state, &parsed_state)) return false;

  serial::Reader state_in(*model_state);
  if (!model.LoadTrainingState(state_in) || !state_in.AtEnd()) return false;
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].data().assign(staged[i].begin(), staged[i].end());
  }
  *state = std::move(parsed_state);
  return true;
}

void PruneCheckpoints(const std::string& dir, int keep) {
  auto paths = ListCheckpoints(dir);
  if (keep < 0) keep = 0;
  const size_t excess =
      paths.size() > static_cast<size_t>(keep)
          ? paths.size() - static_cast<size_t>(keep)
          : 0;
  for (size_t i = 0; i < excess; ++i) std::remove(paths[i].c_str());
}

bool InstallCheckpointHooks(const CheckpointOptions& options,
                            models::SequentialRecommender& model,
                            models::TrainConfig* config) {
  CAUSER_CHECK(config != nullptr);
  CAUSER_CHECK(!options.dir.empty());
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    CAUSER_LOG(Error) << "InstallCheckpointHooks: cannot create '"
                      << options.dir << "': " << ec.message();
    return false;
  }
  const std::string dir = options.dir;
  const int keep = options.keep;
  models::SequentialRecommender* m = &model;
  config->checkpoint_every = std::max(1, options.every);
  config->resume = options.resume;
  config->checkpoint_save =
      [dir, keep, m](const models::FitResumeState& st) {
        const std::string path = CheckpointPath(dir, st.next_epoch);
        if (!SaveTrainingCheckpoint(*m, st, path)) {
          CAUSER_LOG(Warning) << "checkpoint write failed: " << path;
          return false;
        }
        if (metrics::Enabled()) {
          models::HealthMetrics().checkpoint_writes.Add();
        }
        PruneCheckpoints(dir, keep);
        return true;
      };
  config->checkpoint_restore = [dir, m](models::FitResumeState* st) {
    auto paths = ListCheckpoints(dir);
    // Newest first; a torn or corrupt newest file falls back to its
    // predecessor (which keep >= 2 retains exactly for this case).
    for (auto it = paths.rbegin(); it != paths.rend(); ++it) {
      if (LoadTrainingCheckpoint(*m, st, *it)) {
        if (metrics::Enabled()) {
          models::HealthMetrics().checkpoint_resumes.Add();
        }
        return true;
      }
      CAUSER_LOG(Warning) << "skipping unloadable checkpoint: " << *it;
    }
    return false;
  };
  return true;
}

}  // namespace causer::core
