#include "data/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.h"

namespace causer::data {
namespace {

bool WriteInteractions(const Dataset& d, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "user\tstep\titem\tcause_step\tcause_item\n";
  for (const auto& seq : d.sequences) {
    for (size_t t = 0; t < seq.steps.size(); ++t) {
      const Step& step = seq.steps[t];
      for (size_t k = 0; k < step.items.size(); ++k) {
        out << seq.user << '\t' << t << '\t' << step.items[k] << '\t'
            << step.cause_step[k] << '\t' << step.cause_item[k] << '\n';
      }
    }
  }
  return static_cast<bool>(out);
}

bool WriteFeatures(const Dataset& d, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  for (int i = 0; i < d.num_items; ++i) {
    out << i;
    for (float f : d.item_features[i]) out << '\t' << f;
    out << '\n';
  }
  return static_cast<bool>(out);
}

bool WriteMeta(const Dataset& d, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "name\t" << d.name << '\n';
  out << "num_users\t" << d.num_users << '\n';
  out << "num_items\t" << d.num_items << '\n';
  out << "feature_dim\t" << d.feature_dim << '\n';
  out << "basket_mode\t" << (d.basket_mode ? 1 : 0) << '\n';
  if (!d.item_true_cluster.empty()) {
    out << "clusters";
    for (int c : d.item_true_cluster) out << '\t' << c;
    out << '\n';
    out << "cluster_graph\t" << d.true_cluster_graph.n();
    for (int i = 0; i < d.true_cluster_graph.n(); ++i)
      for (int j = 0; j < d.true_cluster_graph.n(); ++j)
        if (d.true_cluster_graph.Edge(i, j)) out << '\t' << i << ':' << j;
    out << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace

bool SaveDataset(const Dataset& dataset, const std::string& directory) {
  return WriteInteractions(dataset, directory + "/interactions.tsv") &&
         WriteFeatures(dataset, directory + "/features.tsv") &&
         WriteMeta(dataset, directory + "/meta.tsv");
}

bool LoadDataset(const std::string& directory, Dataset* out) {
  CAUSER_CHECK(out != nullptr);
  Dataset d;

  // --- meta ---
  {
    std::ifstream in(directory + "/meta.tsv");
    if (!in) return false;
    std::string line;
    while (std::getline(in, line)) {
      std::istringstream row(line);
      std::string key;
      if (!std::getline(row, key, '\t')) continue;
      if (key == "name") {
        std::getline(row, d.name, '\t');
      } else if (key == "num_users") {
        row >> d.num_users;
      } else if (key == "num_items") {
        row >> d.num_items;
      } else if (key == "feature_dim") {
        row >> d.feature_dim;
      } else if (key == "basket_mode") {
        int flag = 0;
        row >> flag;
        d.basket_mode = flag != 0;
      } else if (key == "clusters") {
        int c;
        while (row >> c) d.item_true_cluster.push_back(c);
      } else if (key == "cluster_graph") {
        int n = 0;
        row >> n;
        d.true_cluster_graph = causal::Graph(n);
        std::string edge;
        while (row >> edge) {
          size_t colon = edge.find(':');
          if (colon == std::string::npos) return false;
          int i = std::stoi(edge.substr(0, colon));
          int j = std::stoi(edge.substr(colon + 1));
          if (i < 0 || j < 0 || i >= n || j >= n) return false;
          d.true_cluster_graph.SetEdge(i, j);
        }
      }
    }
    if (d.num_users <= 0 || d.num_items <= 0) return false;
  }

  // --- features ---
  {
    std::ifstream in(directory + "/features.tsv");
    if (!in) return false;
    d.item_features.assign(d.num_items, {});
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::istringstream row(line);
      int item;
      if (!(row >> item) || item < 0 || item >= d.num_items) return false;
      float f;
      while (row >> f) d.item_features[item].push_back(f);
      if (static_cast<int>(d.item_features[item].size()) != d.feature_dim)
        return false;
    }
  }

  // --- interactions ---
  {
    std::ifstream in(directory + "/interactions.tsv");
    if (!in) return false;
    d.sequences.assign(d.num_users, {});
    for (int u = 0; u < d.num_users; ++u) d.sequences[u].user = u;
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::istringstream row(line);
      int user, step, item, cause_step, cause_item;
      if (!(row >> user >> step >> item >> cause_step >> cause_item))
        return false;
      if (user < 0 || user >= d.num_users || item < 0 ||
          item >= d.num_items || step < 0) {
        return false;
      }
      auto& steps = d.sequences[user].steps;
      if (static_cast<int>(steps.size()) <= step)
        steps.resize(step + 1);
      steps[static_cast<size_t>(step)].items.push_back(item);
      steps[static_cast<size_t>(step)].cause_step.push_back(cause_step);
      steps[static_cast<size_t>(step)].cause_item.push_back(cause_item);
    }
  }

  *out = std::move(d);
  return true;
}

}  // namespace causer::data
