#ifndef CAUSER_DATA_SPLIT_H_
#define CAUSER_DATA_SPLIT_H_

#include "data/dataset.h"

namespace causer::data {

/// Leave-last-out split (the paper's protocol): the last step of each user
/// sequence is the test target, the second-to-last is the validation
/// target, the rest is training. Users with fewer than 3 steps contribute
/// what they can (2 steps: test only; 1 step: training only).
struct Split {
  /// Training sequences (prefixes; sequences that became empty are kept out).
  std::vector<Sequence> train;
  std::vector<EvalInstance> validation;
  std::vector<EvalInstance> test;
};

/// Splits `dataset` by the leave-last-out protocol.
Split LeaveLastOut(const Dataset& dataset);

}  // namespace causer::data

#endif  // CAUSER_DATA_SPLIT_H_
