#include "data/specs.h"

#include "common/log.h"

namespace causer::data {

DatasetSpec SpecFor(PaperDataset which) {
  DatasetSpec s;
  switch (which) {
    case PaperDataset::kEpinions:
      // Paper: 1,530 users / 683 items / 4,600 inter / seqlen 3.01.
      // Diverse catalog -> many true clusters.
      s.name = "Epinions";
      s.seed = 101;
      s.num_users = 360;
      s.num_items = 170;
      s.num_clusters = 16;
      s.min_len = 3;
      s.max_len = 9;
      s.len_stop_prob = 0.5;
      s.causal_prob = 0.7;
      s.sibling_prob = 0.2;
      break;
    case PaperDataset::kFoursquare:
      // Paper: 2,292 users / 5,494 items / 120,736 inter / seqlen 52.68.
      // Long check-in sequences, basket-free.
      s.name = "Foursquare";
      s.seed = 102;
      s.num_users = 240;
      s.num_items = 420;
      s.num_clusters = 12;
      s.min_len = 12;
      s.max_len = 48;
      s.len_stop_prob = 0.08;
      // Check-in behaviour is dominated by where the user just was rather
      // than by stable per-user taste: strong causal chaining, mild
      // affinity.
      s.causal_prob = 0.75;
      s.sibling_prob = 0.15;
      s.user_affinity_concentration = 0.6;
      s.feature_dim = 8;     // GPS-like low-dimensional raw features
      s.feature_noise = 0.1;  // venue coordinates are precise
      break;
    case PaperDataset::kPatio:
      // Paper: 7,153 users / 2,952 items / 29,625 inter / seqlen 4.14.
      s.name = "Patio";
      s.seed = 103;
      s.num_users = 700;
      s.num_items = 260;
      s.num_clusters = 10;
      s.min_len = 2;
      s.max_len = 10;
      s.len_stop_prob = 0.45;
      s.basket_extend_prob = 0.1;
      break;
    case PaperDataset::kBaby:
      // Paper: 16,898 users / 6,178 items / 77,046 inter / seqlen 4.56.
      // Homogeneous catalog -> few true clusters (paper Section V-C1).
      s.name = "Baby";
      s.seed = 104;
      s.num_users = 900;
      s.num_items = 320;
      s.num_clusters = 5;
      s.min_len = 2;
      s.max_len = 12;
      s.len_stop_prob = 0.42;
      s.basket_extend_prob = 0.1;
      break;
    case PaperDataset::kVideo:
      // Paper: 19,939 users / 9,275 items / 142,658 inter / seqlen 7.15.
      s.name = "Video";
      s.seed = 105;
      s.num_users = 1000;
      s.num_items = 380;
      s.num_clusters = 12;
      s.min_len = 3;
      s.max_len = 16;
      s.len_stop_prob = 0.28;
      s.basket_extend_prob = 0.05;
      break;
  }
  return s;
}

std::vector<DatasetSpec> AllPaperSpecs() {
  return {SpecFor(PaperDataset::kEpinions), SpecFor(PaperDataset::kFoursquare),
          SpecFor(PaperDataset::kPatio), SpecFor(PaperDataset::kBaby),
          SpecFor(PaperDataset::kVideo)};
}

std::string PaperDatasetName(PaperDataset which) {
  return SpecFor(which).name;
}

DatasetSpec TinySpec() {
  DatasetSpec s;
  s.name = "Tiny";
  s.seed = 42;
  s.num_users = 60;
  s.num_items = 40;
  s.feature_dim = 8;
  s.num_clusters = 4;
  s.cluster_edge_prob = 0.5;
  s.min_len = 3;
  s.max_len = 8;
  s.len_stop_prob = 0.4;
  return s;
}

}  // namespace causer::data
