#include "data/stats.h"

#include "common/log.h"

namespace causer::data {

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats s;
  s.name = dataset.name;
  s.num_users = dataset.num_users;
  s.num_items = dataset.num_items;
  s.num_interactions = dataset.NumInteractions();
  s.avg_seq_len = dataset.AvgSequenceLength();
  s.sparsity = dataset.Sparsity();
  return s;
}

std::vector<int> SequenceLengthHistogram(
    const Dataset& dataset, const std::vector<int>& bucket_edges) {
  CAUSER_CHECK(bucket_edges.size() >= 2);
  std::vector<int> counts(bucket_edges.size(), 0);
  for (const auto& seq : dataset.sequences) {
    int len = seq.NumInteractions();
    size_t b = 0;
    while (b + 1 < bucket_edges.size() && len >= bucket_edges[b + 1]) ++b;
    if (len >= bucket_edges.back()) b = bucket_edges.size() - 1;
    ++counts[b];
  }
  return counts;
}

}  // namespace causer::data
