#ifndef CAUSER_DATA_SPECS_H_
#define CAUSER_DATA_SPECS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace causer::data {

/// Parameters of the synthetic causal interaction generator.
///
/// Sequences are generated from a ground-truth cluster-level causal DAG:
/// with probability `causal_prob` the next interaction is an *effect* of a
/// previously interacted item (its cluster's child in the DAG); otherwise it
/// is exploration noise drawn from a popularity (Zipf) distribution. With
/// probability `sibling_prob` a causal emission is followed by a sibling
/// effect of the same cause from a different child cluster — this plants
/// exactly the confounded co-occurrence pattern of the paper's
/// printer -> {paper, ink box} example, which attention-based models latch
/// onto and causal filtering should reject.
struct DatasetSpec {
  std::string name;
  uint64_t seed = 1;

  int num_users = 100;
  int num_items = 100;
  int feature_dim = 16;

  /// Ground-truth cluster structure.
  int num_clusters = 8;
  double cluster_edge_prob = 0.3;

  /// Sequence length model: min_len + TruncatedGeometric(len_stop_prob).
  int min_len = 3;
  int max_len = 20;
  double len_stop_prob = 0.35;

  /// Behaviour mixture.
  double causal_prob = 0.75;
  double sibling_prob = 0.25;

  /// Zipf exponent for item popularity inside a cluster and globally.
  double zipf_exponent = 1.0;

  /// Item feature noise around the cluster center.
  double feature_noise = 0.35;

  /// Next-basket mode: probability of adding one more item to the current
  /// basket (0 disables baskets; every step then holds one item).
  double basket_extend_prob = 0.0;

  /// Strength of per-user cluster affinity (higher = more personalized).
  double user_affinity_concentration = 1.0;
};

/// The five datasets of the paper's Table II, scaled down so every model in
/// the comparison trains on CPU in seconds. Relative characteristics are
/// preserved: Foursquare-like has long sequences and many items per user;
/// the Amazon-like specs are short and sparse; Epinions is tiny and very
/// sparse; Baby is homogeneous (few clusters); Epinions is diverse (many
/// clusters, matching the paper's Section V-C1 discussion).
enum class PaperDataset { kEpinions, kFoursquare, kPatio, kBaby, kVideo };

/// Spec reproducing the named paper dataset's shape.
DatasetSpec SpecFor(PaperDataset which);

/// All five specs, in the paper's Table II order.
std::vector<DatasetSpec> AllPaperSpecs();

/// Display name ("Epinions", "Foursquare", ...).
std::string PaperDatasetName(PaperDataset which);

/// A deliberately tiny spec for unit tests (fast to generate and train on).
DatasetSpec TinySpec();

}  // namespace causer::data

#endif  // CAUSER_DATA_SPECS_H_
