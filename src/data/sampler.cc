#include "data/sampler.h"

#include <algorithm>

#include "common/log.h"

namespace causer::data {

std::vector<int> SampleNegatives(int num_items,
                                 const std::vector<int>& positives, int k,
                                 Rng& rng) {
  CAUSER_CHECK(k + static_cast<int>(positives.size()) <= num_items);
  std::vector<int> out;
  out.reserve(k);
  while (static_cast<int>(out.size()) < k) {
    int candidate = rng.UniformInt(num_items);
    if (std::find(positives.begin(), positives.end(), candidate) !=
        positives.end()) {
      continue;
    }
    if (std::find(out.begin(), out.end(), candidate) != out.end()) continue;
    out.push_back(candidate);
  }
  return out;
}

std::vector<TrainExample> EnumerateExamples(
    const std::vector<Sequence>& sequences) {
  std::vector<TrainExample> out;
  for (const auto& seq : sequences) {
    for (size_t t = 1; t < seq.steps.size(); ++t) {
      if (!seq.steps[t].items.empty()) {
        out.push_back({&seq, static_cast<int>(t)});
      }
    }
  }
  return out;
}

}  // namespace causer::data
