#include "data/sampler.h"

#include <algorithm>
#include <unordered_set>

#include "common/log.h"

namespace causer::data {

std::vector<int> SampleNegatives(int num_items,
                                 const std::vector<int>& positives, int k,
                                 Rng& rng) {
  // Dedupe the positives first: baskets can repeat an item, and counting
  // duplicates both miscounts the capacity check (rejecting feasible
  // requests) and makes the rejection scan O(k * (k + |positives|)).
  std::unordered_set<int> excluded(positives.begin(), positives.end());
  CAUSER_CHECK(k + static_cast<int>(excluded.size()) <= num_items);
  std::vector<int> out;
  out.reserve(k);
  std::unordered_set<int> taken;
  taken.reserve(k);
  while (static_cast<int>(out.size()) < k) {
    int candidate = rng.UniformInt(num_items);
    if (excluded.count(candidate) != 0 || taken.count(candidate) != 0)
      continue;
    taken.insert(candidate);
    out.push_back(candidate);
  }
  return out;
}

std::vector<TrainExample> EnumerateExamples(
    const std::vector<Sequence>& sequences) {
  std::vector<TrainExample> out;
  for (const auto& seq : sequences) {
    for (size_t t = 1; t < seq.steps.size(); ++t) {
      if (!seq.steps[t].items.empty()) {
        out.push_back({&seq, static_cast<int>(t)});
      }
    }
  }
  return out;
}

}  // namespace causer::data
