#ifndef CAUSER_DATA_SAMPLER_H_
#define CAUSER_DATA_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace causer::data {

/// Samples `k` negative item ids uniformly from [0, num_items), excluding
/// the items in `positives`. Requires k + |positives| <= num_items.
std::vector<int> SampleNegatives(int num_items,
                                 const std::vector<int>& positives, int k,
                                 Rng& rng);

/// A single next-step training example extracted from a sequence: predict
/// the items of step `target_step` from steps [0, target_step).
struct TrainExample {
  const Sequence* sequence = nullptr;
  int target_step = 0;
};

/// Enumerates all training examples (every step with non-empty history) in
/// `sequences`. Order is deterministic; shuffle with an Rng for SGD.
std::vector<TrainExample> EnumerateExamples(
    const std::vector<Sequence>& sequences);

}  // namespace causer::data

#endif  // CAUSER_DATA_SAMPLER_H_
