#include "data/dataset.h"

namespace causer::data {

int Sequence::NumInteractions() const {
  int n = 0;
  for (const auto& s : steps) n += static_cast<int>(s.items.size());
  return n;
}

int Dataset::NumInteractions() const {
  int n = 0;
  for (const auto& s : sequences) n += s.NumInteractions();
  return n;
}

double Dataset::AvgSequenceLength() const {
  if (sequences.empty()) return 0.0;
  double total = 0.0;
  for (const auto& s : sequences) total += s.NumInteractions();
  return total / sequences.size();
}

double Dataset::Sparsity() const {
  if (num_users == 0 || num_items == 0) return 0.0;
  return 1.0 - static_cast<double>(NumInteractions()) /
                   (static_cast<double>(num_users) * num_items);
}

}  // namespace causer::data
