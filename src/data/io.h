#ifndef CAUSER_DATA_IO_H_
#define CAUSER_DATA_IO_H_

#include <string>

#include "data/dataset.h"

namespace causer::data {

/// Saves a dataset to a directory as three TSV files:
///   interactions.tsv  user <tab> step <tab> item <tab> cause_step <tab> cause_item
///   features.tsv      item <tab> f0 <tab> f1 ...
///   meta.tsv          name/users/items/feature_dim/basket flags, true
///                     cluster assignment and cluster-graph edges when the
///                     dataset carries generator ground truth.
/// Returns false on I/O failure.
bool SaveDataset(const Dataset& dataset, const std::string& directory);

/// Loads a dataset saved by SaveDataset. Returns false (leaving `out`
/// untouched) on missing files or malformed content.
bool LoadDataset(const std::string& directory, Dataset* out);

}  // namespace causer::data

#endif  // CAUSER_DATA_IO_H_
