#ifndef CAUSER_DATA_GENERATOR_H_
#define CAUSER_DATA_GENERATOR_H_

#include "data/dataset.h"
#include "data/specs.h"

namespace causer::data {

/// Generates a synthetic dataset from `spec` (deterministic in spec.seed).
///
/// The generator's process, per user:
///  1. Draw a per-user cluster-affinity vector (log-normal weights).
///  2. Draw the number of steps from min_len + Geometric(len_stop_prob),
///     truncated at max_len.
///  3. At each step, with probability `causal_prob` (and non-empty
///     history) emit an *effect*: choose a recency-weighted cause item `a`
///     from the history, a child cluster of cluster(a) in the true DAG, and
///     a Zipf-popular item from that cluster. The (step, item) of the cause
///     is recorded as ground truth. With probability `sibling_prob` a
///     second effect of the *same* cause from a *different* child cluster
///     is queued for the following step — the confounded co-occurrence
///     pattern that separates causal from co-occurrence models.
///     Otherwise emit exploration noise from the user's affinity-weighted
///     cluster distribution (no cause recorded).
///  4. In basket mode, extra items are appended to the current step with
///     probability `basket_extend_prob` each.
Dataset MakeDataset(const DatasetSpec& spec);

}  // namespace causer::data

#endif  // CAUSER_DATA_GENERATOR_H_
