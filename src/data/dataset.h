#ifndef CAUSER_DATA_DATASET_H_
#define CAUSER_DATA_DATASET_H_

#include <string>
#include <vector>

#include "causal/graph.h"

namespace causer::data {

/// One time step of a user sequence: an item set (the paper's multi-hot
/// vector v_j). For next-item datasets every step holds exactly one item.
///
/// `cause_step[k]` / `cause_item[k]` record the generator's ground truth:
/// the history step index and concrete item that causally triggered
/// `items[k]`, or -1 when the interaction was exploration noise. These
/// labels substitute for the paper's human-annotated explanation dataset.
struct Step {
  std::vector<int> items;
  std::vector<int> cause_step;
  std::vector<int> cause_item;
};

/// A user's chronological interaction sequence.
struct Sequence {
  int user = 0;
  std::vector<Step> steps;

  /// Total number of item interactions across all steps.
  int NumInteractions() const;
};

/// A full dataset, including the generator's ground truth (true cluster
/// assignment per item and the true cluster-level causal DAG) used by the
/// explanation and identifiability experiments.
struct Dataset {
  std::string name;
  int num_users = 0;
  int num_items = 0;
  int feature_dim = 0;
  bool basket_mode = false;

  std::vector<Sequence> sequences;
  /// Raw item features (the paper's GloVe-averaged descriptions):
  /// [num_items][feature_dim].
  std::vector<std::vector<float>> item_features;

  // -- generator ground truth (empty for externally loaded data) --
  std::vector<int> item_true_cluster;
  causal::Graph true_cluster_graph;

  int NumInteractions() const;
  double AvgSequenceLength() const;
  /// 1 - |interactions| / (|users| * |items|), as reported in Table II.
  double Sparsity() const;
};

/// A held-out evaluation instance: predict `target_items` from `history`.
struct EvalInstance {
  int user = 0;
  std::vector<Step> history;
  std::vector<int> target_items;
  /// Ground-truth causes of each target item within `history` (history step
  /// index, or -1). Parallel to target_items.
  std::vector<int> target_cause_step;
  std::vector<int> target_cause_item;
};

}  // namespace causer::data

#endif  // CAUSER_DATA_DATASET_H_
