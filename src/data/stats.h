#ifndef CAUSER_DATA_STATS_H_
#define CAUSER_DATA_STATS_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace causer::data {

/// The Table II statistics row of a dataset.
struct DatasetStats {
  std::string name;
  int num_users = 0;
  int num_items = 0;
  int num_interactions = 0;
  double avg_seq_len = 0.0;
  double sparsity = 0.0;  // fraction in [0,1]
};

/// Computes the Table II row for `dataset`.
DatasetStats ComputeStats(const Dataset& dataset);

/// Histogram of per-user sequence lengths (number of interactions).
/// `bucket_edges` = {e0, e1, ..., ek} produces k buckets [e_i, e_{i+1});
/// lengths >= ek land in a final overflow bucket, so the result has k+1
/// entries.
std::vector<int> SequenceLengthHistogram(const Dataset& dataset,
                                         const std::vector<int>& bucket_edges);

}  // namespace causer::data

#endif  // CAUSER_DATA_STATS_H_
