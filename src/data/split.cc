#include "data/split.h"

namespace causer::data {
namespace {

EvalInstance MakeInstance(const Sequence& seq, int target_step) {
  EvalInstance inst;
  inst.user = seq.user;
  inst.history.assign(seq.steps.begin(), seq.steps.begin() + target_step);
  const Step& target = seq.steps[target_step];
  inst.target_items = target.items;
  inst.target_cause_step = target.cause_step;
  inst.target_cause_item = target.cause_item;
  return inst;
}

}  // namespace

Split LeaveLastOut(const Dataset& dataset) {
  Split split;
  for (const auto& seq : dataset.sequences) {
    const int len = static_cast<int>(seq.steps.size());
    if (len >= 3) {
      split.test.push_back(MakeInstance(seq, len - 1));
      split.validation.push_back(MakeInstance(seq, len - 2));
      Sequence train = seq;
      train.steps.resize(len - 2);
      if (train.steps.size() >= 2) split.train.push_back(std::move(train));
    } else if (len == 2) {
      split.test.push_back(MakeInstance(seq, len - 1));
    } else if (len == 1) {
      // Too short to evaluate; nothing to predict from.
      continue;
    }
  }
  return split;
}

}  // namespace causer::data
