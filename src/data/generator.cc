#include "data/generator.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/log.h"
#include "common/rng.h"

namespace causer::data {
namespace {

constexpr double kCauseRecencyDecay = 0.85;
constexpr int kMaxBasketSize = 4;

struct PendingEmission {
  int item;
  int cause_step;
  int cause_item;
};

class Generator {
 public:
  explicit Generator(const DatasetSpec& spec) : spec_(spec), rng_(spec.seed) {}

  Dataset Run() {
    Dataset d;
    d.name = spec_.name;
    d.num_users = spec_.num_users;
    d.num_items = spec_.num_items;
    d.feature_dim = spec_.feature_dim;
    d.basket_mode = spec_.basket_extend_prob > 0.0;

    BuildClusters(d);
    BuildFeatures(d);

    d.sequences.reserve(spec_.num_users);
    for (int u = 0; u < spec_.num_users; ++u) {
      d.sequences.push_back(GenerateSequence(u, d));
    }
    return d;
  }

 private:
  void BuildClusters(Dataset& d) {
    const int k = spec_.num_clusters;
    d.true_cluster_graph = causal::RandomDag(k, spec_.cluster_edge_prob, rng_);
    // Guarantee the DAG has at least one edge so causal behaviour exists.
    if (d.true_cluster_graph.NumEdges() == 0 && k >= 2) {
      d.true_cluster_graph.SetEdge(0, 1);
    }
    d.item_true_cluster.resize(spec_.num_items);
    cluster_items_.assign(k, {});
    for (int i = 0; i < spec_.num_items; ++i) {
      // First K items seed each cluster so none is empty.
      int c = i < k ? i : rng_.UniformInt(k);
      d.item_true_cluster[i] = c;
      cluster_items_[c].push_back(i);
    }
    // Zipf popularity weights per cluster (by position within the cluster).
    cluster_item_weights_.assign(k, {});
    for (int c = 0; c < k; ++c) {
      for (size_t r = 0; r < cluster_items_[c].size(); ++r) {
        cluster_item_weights_[c].push_back(
            1.0 / std::pow(static_cast<double>(r + 1), spec_.zipf_exponent));
      }
    }
  }

  void BuildFeatures(Dataset& d) {
    const int k = spec_.num_clusters;
    std::vector<std::vector<double>> centers(k);
    for (int c = 0; c < k; ++c) {
      centers[c].resize(spec_.feature_dim);
      for (auto& v : centers[c]) v = rng_.Normal();
    }
    d.item_features.resize(spec_.num_items);
    for (int i = 0; i < spec_.num_items; ++i) {
      int c = d.item_true_cluster[i];
      d.item_features[i].resize(spec_.feature_dim);
      for (int f = 0; f < spec_.feature_dim; ++f) {
        d.item_features[i][f] = static_cast<float>(
            centers[c][f] + spec_.feature_noise * rng_.Normal());
      }
    }
  }

  /// Samples an item from cluster c by popularity; avoids `forbidden`.
  int SampleFromCluster(int c, int forbidden) {
    const auto& items = cluster_items_[c];
    if (items.size() == 1) return items[0];
    for (int attempt = 0; attempt < 8; ++attempt) {
      int idx = rng_.Categorical(cluster_item_weights_[c]);
      if (items[idx] != forbidden) return items[idx];
    }
    return items[rng_.UniformInt(static_cast<int>(items.size()))];
  }

  /// Picks a cause from the history, weighted by recency.
  std::pair<int, int> PickCause(
      const std::vector<std::pair<int, int>>& history, int current_step) {
    std::vector<double> weights(history.size());
    for (size_t i = 0; i < history.size(); ++i) {
      int age = current_step - history[i].first;
      weights[i] = std::pow(kCauseRecencyDecay, age);
    }
    return history[rng_.Categorical(weights)];
  }

  Sequence GenerateSequence(int user, const Dataset& d) {
    Sequence seq;
    seq.user = user;
    const int extra = spec_.max_len - spec_.min_len;
    int num_steps =
        spec_.min_len +
        (extra > 0 ? rng_.TruncatedGeometric(spec_.len_stop_prob, extra) : 0);

    // Per-user cluster affinity (log-normal).
    std::vector<double> affinity(spec_.num_clusters);
    for (auto& a : affinity)
      a = std::exp(spec_.user_affinity_concentration * rng_.Normal());

    std::vector<std::pair<int, int>> history;  // (step index, item)
    std::deque<PendingEmission> pending;

    for (int t = 0; t < num_steps; ++t) {
      Step step;
      auto emit = [&](int item, int cause_step, int cause_item) {
        if (std::find(step.items.begin(), step.items.end(), item) !=
            step.items.end()) {
          return;  // no duplicate items within one basket
        }
        step.items.push_back(item);
        step.cause_step.push_back(cause_step);
        step.cause_item.push_back(cause_item);
      };

      // 1. Scheduled sibling effects take priority.
      if (!pending.empty()) {
        PendingEmission p = pending.front();
        pending.pop_front();
        emit(p.item, p.cause_step, p.cause_item);
      } else {
        EmitOne(d, affinity, history, t, emit, pending);
      }

      // 2. Basket extension.
      while (static_cast<int>(step.items.size()) < kMaxBasketSize &&
             rng_.Bernoulli(spec_.basket_extend_prob)) {
        if (!pending.empty()) {
          PendingEmission p = pending.front();
          pending.pop_front();
          emit(p.item, p.cause_step, p.cause_item);
        } else {
          EmitOne(d, affinity, history, t, emit, pending);
        }
      }

      for (int item : step.items) history.emplace_back(t, item);
      seq.steps.push_back(std::move(step));
    }
    return seq;
  }

  template <typename EmitFn>
  void EmitOne(const Dataset& d, const std::vector<double>& affinity,
               const std::vector<std::pair<int, int>>& history, int t,
               EmitFn&& emit, std::deque<PendingEmission>& pending) {
    if (!history.empty() && rng_.Bernoulli(spec_.causal_prob)) {
      auto [cause_step, cause_item] = PickCause(history, t);
      int c_a = d.item_true_cluster[cause_item];
      std::vector<int> children = d.true_cluster_graph.Children(c_a);
      // When the picked item's cluster has no effects, the interaction
      // falls through to exploration noise (a cause must be causal).
      if (!children.empty()) {
        // Affinity-weighted child cluster choice.
        std::vector<double> w(children.size());
        for (size_t i = 0; i < children.size(); ++i)
          w[i] = affinity[children[i]];
        int pick = rng_.Categorical(w);
        int c_b = children[pick];
        int item = SampleFromCluster(c_b, cause_item);
        emit(item, cause_step, cause_item);
        // Confounded sibling: same cause, different child cluster.
        if (children.size() >= 2 && rng_.Bernoulli(spec_.sibling_prob)) {
          int other = children[(pick + 1 + rng_.UniformInt(
                                   static_cast<int>(children.size()) - 1)) %
                               children.size()];
          if (other != c_b) {
            pending.push_back(
                {SampleFromCluster(other, cause_item), cause_step, cause_item});
          }
        }
        return;
      }
    }
    // Exploration noise: affinity-weighted cluster, popular item.
    int c = rng_.Categorical(affinity);
    emit(SampleFromCluster(c, -1), -1, -1);
  }

  const DatasetSpec& spec_;
  Rng rng_;
  std::vector<std::vector<int>> cluster_items_;
  std::vector<std::vector<double>> cluster_item_weights_;
};

}  // namespace

Dataset MakeDataset(const DatasetSpec& spec) {
  CAUSER_CHECK(spec.num_users > 0 && spec.num_items > 0);
  CAUSER_CHECK(spec.num_clusters >= 1 &&
               spec.num_clusters <= spec.num_items);
  CAUSER_CHECK(spec.min_len >= 1 && spec.max_len >= spec.min_len);
  return Generator(spec).Run();
}

}  // namespace causer::data
