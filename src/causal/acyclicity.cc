#include "causal/acyclicity.h"

#include "causal/matrix_exp.h"

namespace causer::causal {

double AcyclicityValue(const Dense& w) {
  CAUSER_CHECK(w.rows() == w.cols());
  Dense squared = w.Hadamard(w);
  return MatrixExponential(squared).Trace() - w.rows();
}

Dense AcyclicityGradient(const Dense& w) {
  CAUSER_CHECK(w.rows() == w.cols());
  Dense squared = w.Hadamard(w);
  Dense e = MatrixExponential(squared).Transposed();
  Dense grad(w.rows(), w.cols());
  for (int i = 0; i < w.rows(); ++i)
    for (int j = 0; j < w.cols(); ++j) grad(i, j) = e(i, j) * 2.0 * w(i, j);
  return grad;
}

double AcyclicityValueAndAccumulateGrad(const float* w, int d, double scale,
                                        float* grad) {
  CAUSER_CHECK(w != nullptr && d > 0);
  Dense wd(d, d);
  for (int i = 0; i < d; ++i)
    for (int j = 0; j < d; ++j) wd(i, j) = w[static_cast<size_t>(i) * d + j];
  double h = AcyclicityValue(wd);
  if (grad != nullptr) {
    Dense g = AcyclicityGradient(wd);
    for (int i = 0; i < d; ++i)
      for (int j = 0; j < d; ++j)
        grad[static_cast<size_t>(i) * d + j] +=
            static_cast<float>(scale * g(i, j));
  }
  return h;
}

}  // namespace causer::causal
