#include "causal/graph.h"

#include <deque>

namespace causer::causal {

int Graph::NumEdges() const {
  int count = 0;
  for (uint8_t v : adj_) count += v;
  return count;
}

std::vector<int> Graph::Parents(int j) const {
  std::vector<int> out;
  for (int i = 0; i < n_; ++i)
    if (Edge(i, j)) out.push_back(i);
  return out;
}

std::vector<int> Graph::Children(int i) const {
  std::vector<int> out;
  for (int j = 0; j < n_; ++j)
    if (Edge(i, j)) out.push_back(j);
  return out;
}

bool Graph::IsDag() const {
  return static_cast<int>(TopologicalOrder().size()) == n_;
}

std::vector<int> Graph::TopologicalOrder() const {
  std::vector<int> indegree(n_, 0);
  for (int i = 0; i < n_; ++i)
    for (int j = 0; j < n_; ++j)
      if (Edge(i, j)) ++indegree[j];
  std::deque<int> ready;
  for (int i = 0; i < n_; ++i)
    if (indegree[i] == 0) ready.push_back(i);
  std::vector<int> order;
  while (!ready.empty()) {
    int u = ready.front();
    ready.pop_front();
    order.push_back(u);
    for (int v = 0; v < n_; ++v) {
      if (Edge(u, v) && --indegree[v] == 0) ready.push_back(v);
    }
  }
  return order;  // shorter than n_ iff there is a cycle
}

std::vector<int> Graph::Descendants(int start) const {
  std::vector<uint8_t> seen(n_, 0);
  std::deque<int> queue{start};
  seen[start] = 1;
  std::vector<int> out;
  while (!queue.empty()) {
    int u = queue.front();
    queue.pop_front();
    for (int v = 0; v < n_; ++v) {
      if (Edge(u, v) && !seen[v]) {
        seen[v] = 1;
        out.push_back(v);
        queue.push_back(v);
      }
    }
  }
  return out;
}

std::vector<int> Graph::Ancestors(int target) const {
  std::vector<uint8_t> seen(n_, 0);
  std::deque<int> queue{target};
  seen[target] = 1;
  std::vector<int> out;
  while (!queue.empty()) {
    int v = queue.front();
    queue.pop_front();
    for (int u = 0; u < n_; ++u) {
      if (Edge(u, v) && !seen[u]) {
        seen[u] = 1;
        out.push_back(u);
        queue.push_back(u);
      }
    }
  }
  return out;
}

Graph RandomDag(int n, double edge_prob, Rng& rng) {
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);
  Graph g(n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (rng.Bernoulli(edge_prob)) g.SetEdge(order[a], order[b]);
    }
  }
  return g;
}

Graph Threshold(const Dense& w, double threshold) {
  CAUSER_CHECK(w.rows() == w.cols());
  Graph g(w.rows());
  for (int i = 0; i < w.rows(); ++i) {
    for (int j = 0; j < w.cols(); ++j) {
      if (i != j && std::fabs(w(i, j)) > threshold) g.SetEdge(i, j);
    }
  }
  return g;
}

Dense ToDense(const Graph& g) {
  Dense w(g.n(), g.n());
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j)
      if (g.Edge(i, j)) w(i, j) = 1.0;
  return w;
}

}  // namespace causer::causal
