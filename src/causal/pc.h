#ifndef CAUSER_CAUSAL_PC_H_
#define CAUSER_CAUSAL_PC_H_

#include "causal/dense.h"
#include "causal/markov_equivalence.h"

namespace causer::causal {

/// Options for the PC algorithm.
struct PcOptions {
  /// Significance level of the Fisher-z partial-correlation test (the
  /// statistical α — unrelated to the NOTEARS Lagrange multiplier α of
  /// causal/notears.h). Smaller values keep fewer edges.
  double alpha = 0.01;
  /// Largest conditioning-set size explored. Bounds the number of CI
  /// tests at the cost of possibly missing higher-order separations.
  int max_condition_size = 3;
};

/// Result of a PC run.
struct PcResult {
  Pdag cpdag;           ///< estimated essential graph
  int num_tests = 0;    ///< CI tests performed
};

/// The PC algorithm (Spirtes & Glymour) for linear-Gaussian data: learns
/// the CPDAG by conditional-independence testing (partial correlation +
/// Fisher z), v-structure orientation, and Meek rules. The paper cites
/// constraint-based discovery as the main alternative family to the
/// score-based NOTEARS approach it builds on; this implementation lets the
/// identifiability bench compare the two on the same data.
PcResult PcAlgorithm(const Dense& data, const PcOptions& options = {});

/// Gaussian conditional-independence test: returns true when x and y are
/// judged independent given the variables in `conditioning`, at
/// significance alpha, based on the partial correlation computed from
/// `correlation` (the full correlation matrix) with `n` samples.
bool GaussianCiTest(const Dense& correlation, int n, int x, int y,
                    const std::vector<int>& conditioning, double alpha);

/// Pearson correlation matrix of the columns of `data`.
Dense CorrelationMatrix(const Dense& data);

/// Applies Meek orientation rules R1-R3 to `pdag` until fixpoint.
void ApplyMeekRules(Pdag& pdag);

}  // namespace causer::causal

#endif  // CAUSER_CAUSAL_PC_H_
