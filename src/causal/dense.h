#ifndef CAUSER_CAUSAL_DENSE_H_
#define CAUSER_CAUSAL_DENSE_H_

#include <cmath>
#include <vector>

#include "common/log.h"

namespace causer::causal {

/// Small dense double-precision matrix used by the causal-discovery
/// numerics (matrix exponential, NOTEARS). Distinct from tensor::Tensor on
/// purpose: graph numerics want double precision and no autograd overhead.
class Dense {
 public:
  Dense() : rows_(0), cols_(0) {}
  Dense(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0.0) {
    CAUSER_CHECK(rows >= 0 && cols >= 0);
  }

  static Dense Identity(int n) {
    Dense m(n, n);
    for (int i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int r, int c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// this * other.
  Dense Multiply(const Dense& other) const {
    CAUSER_CHECK(cols_ == other.rows_);
    Dense out(rows_, other.cols_);
    for (int i = 0; i < rows_; ++i) {
      for (int k = 0; k < cols_; ++k) {
        double a = (*this)(i, k);
        if (a == 0.0) continue;
        for (int j = 0; j < other.cols_; ++j) out(i, j) += a * other(k, j);
      }
    }
    return out;
  }

  Dense Transposed() const {
    Dense out(cols_, rows_);
    for (int i = 0; i < rows_; ++i)
      for (int j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    return out;
  }

  void AddInPlace(const Dense& other, double scale = 1.0) {
    CAUSER_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
    for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
  }

  void Scale(double s) {
    for (auto& v : data_) v *= s;
  }

  double Trace() const {
    CAUSER_CHECK(rows_ == cols_);
    double t = 0.0;
    for (int i = 0; i < rows_; ++i) t += (*this)(i, i);
    return t;
  }

  double MaxAbs() const {
    double m = 0.0;
    for (double v : data_) m = std::max(m, std::fabs(v));
    return m;
  }

  double FrobeniusNorm() const {
    double s = 0.0;
    for (double v : data_) s += v * v;
    return std::sqrt(s);
  }

  /// Elementwise product this ∘ other.
  Dense Hadamard(const Dense& other) const {
    CAUSER_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
    Dense out(rows_, cols_);
    for (size_t i = 0; i < data_.size(); ++i)
      out.data_[i] = data_[i] * other.data_[i];
    return out;
  }

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

}  // namespace causer::causal

#endif  // CAUSER_CAUSAL_DENSE_H_
