#include "causal/markov_equivalence.h"

#include <algorithm>

namespace causer::causal {

Graph Skeleton(const Graph& g) {
  Graph s(g.n());
  for (int i = 0; i < g.n(); ++i) {
    for (int j = 0; j < g.n(); ++j) {
      if (g.Edge(i, j)) {
        s.SetEdge(i, j);
        s.SetEdge(j, i);
      }
    }
  }
  return s;
}

std::vector<std::tuple<int, int, int>> VStructures(const Graph& g) {
  std::vector<std::tuple<int, int, int>> out;
  auto adjacent = [&](int a, int b) { return g.Edge(a, b) || g.Edge(b, a); };
  for (int k = 0; k < g.n(); ++k) {
    auto parents = g.Parents(k);
    for (size_t a = 0; a < parents.size(); ++a) {
      for (size_t b = a + 1; b < parents.size(); ++b) {
        int i = std::min(parents[a], parents[b]);
        int j = std::max(parents[a], parents[b]);
        if (!adjacent(i, j)) out.emplace_back(i, k, j);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool SameMarkovEquivalenceClass(const Graph& g1, const Graph& g2) {
  if (g1.n() != g2.n()) return false;
  if (!(Skeleton(g1) == Skeleton(g2))) return false;
  return VStructures(g1) == VStructures(g2);
}

int StructuralHammingDistance(const Graph& g1, const Graph& g2) {
  CAUSER_CHECK(g1.n() == g2.n());
  int shd = 0;
  for (int i = 0; i < g1.n(); ++i) {
    for (int j = i + 1; j < g1.n(); ++j) {
      // Per unordered pair: 0 = none, 1 = i->j, 2 = j->i, 3 = both.
      int s1 = (g1.Edge(i, j) ? 1 : 0) | (g1.Edge(j, i) ? 2 : 0);
      int s2 = (g2.Edge(i, j) ? 1 : 0) | (g2.Edge(j, i) ? 2 : 0);
      if (s1 != s2) ++shd;
    }
  }
  return shd;
}

Pdag::Pdag(int n) : n_(n), state_(static_cast<size_t>(n) * n, 0) {}

bool Pdag::HasDirected(int i, int j) const {
  return state_[static_cast<size_t>(i) * n_ + j] == 1;
}

bool Pdag::HasUndirected(int i, int j) const {
  return state_[static_cast<size_t>(i) * n_ + j] == 2;
}

bool Pdag::Adjacent(int i, int j) const {
  return state_[static_cast<size_t>(i) * n_ + j] != 0 ||
         state_[static_cast<size_t>(j) * n_ + i] != 0;
}

void Pdag::SetDirected(int i, int j) {
  state_[static_cast<size_t>(i) * n_ + j] = 1;
  state_[static_cast<size_t>(j) * n_ + i] = 0;
}

void Pdag::SetUndirected(int i, int j) {
  state_[static_cast<size_t>(i) * n_ + j] = 2;
  state_[static_cast<size_t>(j) * n_ + i] = 2;
}

void Pdag::Remove(int i, int j) {
  state_[static_cast<size_t>(i) * n_ + j] = 0;
  state_[static_cast<size_t>(j) * n_ + i] = 0;
}

Pdag Cpdag(const Graph& g) {
  const int n = g.n();
  Pdag p(n);
  // Start with all edges undirected.
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (g.Edge(i, j)) p.SetUndirected(i, j);
  // Orient v-structure edges.
  for (const auto& [i, k, j] : VStructures(g)) {
    p.SetDirected(i, k);
    p.SetDirected(j, k);
  }
  // Meek rules to a fixpoint. R1-R3 are complete for CPDAGs obtained from a
  // DAG without background knowledge.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        if (!p.HasUndirected(a, b)) continue;
        // R1: c -> a, a - b, c and b non-adjacent  =>  a -> b.
        for (int c = 0; c < n; ++c) {
          if (p.HasDirected(c, a) && !p.Adjacent(c, b)) {
            p.SetDirected(a, b);
            changed = true;
            break;
          }
        }
        if (!p.HasUndirected(a, b)) continue;
        // R2: a -> c -> b and a - b  =>  a -> b.
        for (int c = 0; c < n; ++c) {
          if (p.HasDirected(a, c) && p.HasDirected(c, b)) {
            p.SetDirected(a, b);
            changed = true;
            break;
          }
        }
        if (!p.HasUndirected(a, b)) continue;
        // R3: a - c, a - d, c -> b, d -> b, c and d non-adjacent => a -> b.
        bool oriented = false;
        for (int c = 0; c < n && !oriented; ++c) {
          if (!p.HasUndirected(a, c) || !p.HasDirected(c, b)) continue;
          for (int d = c + 1; d < n; ++d) {
            if (p.HasUndirected(a, d) && p.HasDirected(d, b) &&
                !p.Adjacent(c, d)) {
              p.SetDirected(a, b);
              changed = true;
              oriented = true;
              break;
            }
          }
        }
      }
    }
  }
  return p;
}

}  // namespace causer::causal
