#ifndef CAUSER_CAUSAL_D_SEPARATION_H_
#define CAUSER_CAUSAL_D_SEPARATION_H_

#include <vector>

#include "causal/graph.h"

namespace causer::causal {

/// True when every trail between a node in `a` and a node in `b` is blocked
/// given conditioning set `c` (d-separation). Implemented with the
/// Koller-Friedman reachable-via-active-trail algorithm (linear in edges).
/// Sets must be disjoint node-index lists.
bool DSeparated(const Graph& g, const std::vector<int>& a,
                const std::vector<int>& b, const std::vector<int>& c);

/// Nodes reachable from `sources` via an active trail given observed set
/// `observed` (includes the sources themselves when not observed).
std::vector<int> ReachableViaActiveTrail(const Graph& g,
                                         const std::vector<int>& sources,
                                         const std::vector<int>& observed);

}  // namespace causer::causal

#endif  // CAUSER_CAUSAL_D_SEPARATION_H_
