#include "causal/matrix_exp.h"

#include <cmath>

#include "causal/notears.h"

namespace causer::causal {

Dense MatrixExponential(const Dense& a) {
  CAUSER_CHECK(a.rows() == a.cols());
  NotearsMetrics().matrix_exp_calls.Add();
  const int n = a.rows();
  if (n == 0) return a;

  // Scale A by 2^-s so its infinity norm is below 0.5.
  double norm = 0.0;
  for (int i = 0; i < n; ++i) {
    double row = 0.0;
    for (int j = 0; j < n; ++j) row += std::fabs(a(i, j));
    norm = std::max(norm, row);
  }
  int s = 0;
  while (norm > 0.5) {
    norm /= 2.0;
    ++s;
  }

  Dense scaled = a;
  scaled.Scale(std::pow(0.5, s));

  // Taylor series: I + B + B^2/2! + ... until terms vanish.
  Dense result = Dense::Identity(n);
  Dense term = Dense::Identity(n);
  for (int k = 1; k <= 30; ++k) {
    term = term.Multiply(scaled);
    term.Scale(1.0 / k);
    result.AddInPlace(term);
    if (term.MaxAbs() < 1e-18) break;
  }

  // Square back: e^A = (e^{A/2^s})^{2^s}.
  for (int i = 0; i < s; ++i) result = result.Multiply(result);
  return result;
}

}  // namespace causer::causal
