#include "causal/d_separation.h"

#include <deque>

namespace causer::causal {

std::vector<int> ReachableViaActiveTrail(const Graph& g,
                                         const std::vector<int>& sources,
                                         const std::vector<int>& observed) {
  const int n = g.n();
  std::vector<uint8_t> is_observed(n, 0);
  for (int z : observed) is_observed[z] = 1;

  // Phase I: observed nodes and their ancestors.
  std::vector<uint8_t> anc_of_observed(n, 0);
  {
    std::deque<int> queue;
    for (int z : observed) {
      if (!anc_of_observed[z]) {
        anc_of_observed[z] = 1;
        queue.push_back(z);
      }
    }
    while (!queue.empty()) {
      int v = queue.front();
      queue.pop_front();
      for (int u = 0; u < n; ++u) {
        if (g.Edge(u, v) && !anc_of_observed[u]) {
          anc_of_observed[u] = 1;
          queue.push_back(u);
        }
      }
    }
  }

  // Phase II: BFS over (node, direction) states. Direction kUp means the
  // trail enters the node from one of its children; kDown from a parent.
  enum Dir { kUp = 0, kDown = 1 };
  std::vector<uint8_t> visited(static_cast<size_t>(n) * 2, 0);
  std::vector<uint8_t> reachable(n, 0);
  std::deque<std::pair<int, int>> frontier;
  for (int s : sources) frontier.emplace_back(s, kUp);

  while (!frontier.empty()) {
    auto [y, d] = frontier.front();
    frontier.pop_front();
    size_t key = static_cast<size_t>(y) * 2 + d;
    if (visited[key]) continue;
    visited[key] = 1;
    if (!is_observed[y]) reachable[y] = 1;

    if (d == kUp && !is_observed[y]) {
      for (int p = 0; p < n; ++p)
        if (g.Edge(p, y)) frontier.emplace_back(p, kUp);
      for (int c = 0; c < n; ++c)
        if (g.Edge(y, c)) frontier.emplace_back(c, kDown);
    } else if (d == kDown) {
      if (!is_observed[y]) {
        for (int c = 0; c < n; ++c)
          if (g.Edge(y, c)) frontier.emplace_back(c, kDown);
      }
      if (anc_of_observed[y]) {
        for (int p = 0; p < n; ++p)
          if (g.Edge(p, y)) frontier.emplace_back(p, kUp);
      }
    }
  }

  std::vector<int> out;
  for (int v = 0; v < n; ++v)
    if (reachable[v]) out.push_back(v);
  return out;
}

bool DSeparated(const Graph& g, const std::vector<int>& a,
                const std::vector<int>& b, const std::vector<int>& c) {
  std::vector<uint8_t> in_b(g.n(), 0);
  for (int v : b) in_b[v] = 1;
  for (int v : ReachableViaActiveTrail(g, a, c)) {
    if (in_b[v]) return false;
  }
  return true;
}

}  // namespace causer::causal
