#include "causal/pc.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

namespace causer::causal {
namespace {

/// Inverse of a small SPD matrix via Gauss-Jordan (sizes here are at most
/// max_condition_size + 2).
Dense Invert(const Dense& m) {
  const int n = m.rows();
  Dense a = m;
  Dense inv = Dense::Identity(n);
  for (int col = 0; col < n; ++col) {
    // Partial pivoting.
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    }
    if (std::fabs(a(pivot, col)) < 1e-12) {
      // Singular (perfectly collinear variables); nudge the diagonal.
      a(col, col) += 1e-8;
      pivot = col;
    }
    if (pivot != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(a(col, c), a(pivot, c));
        std::swap(inv(col, c), inv(pivot, c));
      }
    }
    double d = a(col, col);
    for (int c = 0; c < n; ++c) {
      a(col, c) /= d;
      inv(col, c) /= d;
    }
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      double factor = a(r, col);
      if (factor == 0.0) continue;
      for (int c = 0; c < n; ++c) {
        a(r, c) -= factor * a(col, c);
        inv(r, c) -= factor * inv(col, c);
      }
    }
  }
  return inv;
}

/// Standard normal CDF.
double Phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

/// Enumerates all size-k subsets of `pool` via index odometer; calls
/// `visit` with each subset; stops early when visit returns true.
bool ForEachSubset(const std::vector<int>& pool, int k,
                   const std::function<bool(const std::vector<int>&)>& visit) {
  const int n = static_cast<int>(pool.size());
  if (k > n) return false;
  std::vector<int> idx(k);
  for (int i = 0; i < k; ++i) idx[i] = i;
  std::vector<int> subset(k);
  while (true) {
    for (int i = 0; i < k; ++i) subset[i] = pool[idx[i]];
    if (visit(subset)) return true;
    // Advance odometer.
    int i = k - 1;
    while (i >= 0 && idx[i] == n - k + i) --i;
    if (i < 0) return false;
    ++idx[i];
    for (int j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

}  // namespace

Dense CorrelationMatrix(const Dense& data) {
  const int n = data.rows();
  const int d = data.cols();
  CAUSER_CHECK(n > 1);
  std::vector<double> mean(d, 0.0), stddev(d, 0.0);
  for (int j = 0; j < d; ++j) {
    for (int i = 0; i < n; ++i) mean[j] += data(i, j);
    mean[j] /= n;
    for (int i = 0; i < n; ++i) {
      double c = data(i, j) - mean[j];
      stddev[j] += c * c;
    }
    stddev[j] = std::sqrt(stddev[j] / n);
    if (stddev[j] < 1e-12) stddev[j] = 1e-12;
  }
  Dense corr(d, d);
  for (int a = 0; a < d; ++a) {
    corr(a, a) = 1.0;
    for (int b = a + 1; b < d; ++b) {
      double cov = 0.0;
      for (int i = 0; i < n; ++i)
        cov += (data(i, a) - mean[a]) * (data(i, b) - mean[b]);
      cov /= n;
      double r = cov / (stddev[a] * stddev[b]);
      corr(a, b) = r;
      corr(b, a) = r;
    }
  }
  return corr;
}

bool GaussianCiTest(const Dense& correlation, int n, int x, int y,
                    const std::vector<int>& conditioning, double alpha) {
  double r;
  if (conditioning.empty()) {
    r = correlation(x, y);
  } else {
    // Partial correlation from the inverse of the submatrix over
    // {x, y} ∪ conditioning: rho = -P_xy / sqrt(P_xx P_yy).
    std::vector<int> vars = {x, y};
    vars.insert(vars.end(), conditioning.begin(), conditioning.end());
    const int k = static_cast<int>(vars.size());
    Dense sub(k, k);
    for (int a = 0; a < k; ++a)
      for (int b = 0; b < k; ++b) sub(a, b) = correlation(vars[a], vars[b]);
    Dense prec = Invert(sub);
    r = -prec(0, 1) / std::sqrt(prec(0, 0) * prec(1, 1));
  }
  r = std::clamp(r, -0.999999, 0.999999);
  // Fisher z-transform.
  double z = 0.5 * std::log((1.0 + r) / (1.0 - r));
  double dof = n - static_cast<double>(conditioning.size()) - 3.0;
  if (dof <= 0) return true;  // too few samples to reject independence
  double statistic = std::sqrt(dof) * std::fabs(z);
  double p_value = 2.0 * (1.0 - Phi(statistic));
  return p_value > alpha;
}

void ApplyMeekRules(Pdag& p) {
  const int n = p.n();
  bool changed = true;
  while (changed) {
    changed = false;
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        if (!p.HasUndirected(a, b)) continue;
        // R1: c -> a, a - b, c and b non-adjacent => a -> b.
        for (int c = 0; c < n; ++c) {
          if (p.HasDirected(c, a) && !p.Adjacent(c, b)) {
            p.SetDirected(a, b);
            changed = true;
            break;
          }
        }
        if (!p.HasUndirected(a, b)) continue;
        // R2: a -> c -> b and a - b => a -> b.
        for (int c = 0; c < n; ++c) {
          if (p.HasDirected(a, c) && p.HasDirected(c, b)) {
            p.SetDirected(a, b);
            changed = true;
            break;
          }
        }
        if (!p.HasUndirected(a, b)) continue;
        // R3: a - c, a - d, c -> b, d -> b, c/d non-adjacent => a -> b.
        bool oriented = false;
        for (int c = 0; c < n && !oriented; ++c) {
          if (!p.HasUndirected(a, c) || !p.HasDirected(c, b)) continue;
          for (int d = c + 1; d < n; ++d) {
            if (p.HasUndirected(a, d) && p.HasDirected(d, b) &&
                !p.Adjacent(c, d)) {
              p.SetDirected(a, b);
              changed = true;
              oriented = true;
              break;
            }
          }
        }
      }
    }
  }
}

PcResult PcAlgorithm(const Dense& data, const PcOptions& options) {
  const int d = data.cols();
  const int n = data.rows();
  Dense corr = CorrelationMatrix(data);
  PcResult result{Pdag(d), 0};

  // Adjacency bookkeeping for the skeleton phase.
  std::vector<std::vector<uint8_t>> adjacent(d, std::vector<uint8_t>(d, 1));
  for (int i = 0; i < d; ++i) adjacent[i][i] = 0;
  // Separating sets, used to orient v-structures later.
  std::vector<std::vector<std::vector<int>>> sepset(
      d, std::vector<std::vector<int>>(d));
  std::vector<std::vector<uint8_t>> separated(d, std::vector<uint8_t>(d, 0));

  for (int level = 0; level <= options.max_condition_size; ++level) {
    // PC-stable: neighbor sets are frozen within a level.
    auto frozen = adjacent;
    for (int x = 0; x < d; ++x) {
      for (int y = x + 1; y < d; ++y) {
        if (!adjacent[x][y]) continue;
        std::vector<int> neighbors;
        for (int z = 0; z < d; ++z) {
          if (z != y && frozen[x][z]) neighbors.push_back(z);
        }
        bool removed = ForEachSubset(
            neighbors, level, [&](const std::vector<int>& cond) {
              ++result.num_tests;
              if (GaussianCiTest(corr, n, x, y, cond, options.alpha)) {
                sepset[x][y] = cond;
                sepset[y][x] = cond;
                separated[x][y] = separated[y][x] = 1;
                return true;
              }
              return false;
            });
        if (removed) {
          adjacent[x][y] = adjacent[y][x] = 0;
        }
      }
    }
  }

  // Build the undirected skeleton.
  for (int x = 0; x < d; ++x)
    for (int y = x + 1; y < d; ++y)
      if (adjacent[x][y]) result.cpdag.SetUndirected(x, y);

  // Orient v-structures: x - z - y with x, y non-adjacent and z not in
  // sepset(x, y)  =>  x -> z <- y.
  for (int z = 0; z < d; ++z) {
    for (int x = 0; x < d; ++x) {
      if (x == z || !adjacent[x][z]) continue;
      for (int y = x + 1; y < d; ++y) {
        if (y == z || !adjacent[y][z] || adjacent[x][y]) continue;
        if (!separated[x][y]) continue;
        const auto& sep = sepset[x][y];
        if (std::find(sep.begin(), sep.end(), z) == sep.end()) {
          result.cpdag.SetDirected(x, z);
          result.cpdag.SetDirected(y, z);
        }
      }
    }
  }

  ApplyMeekRules(result.cpdag);
  return result;
}

}  // namespace causer::causal
