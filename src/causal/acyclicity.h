#ifndef CAUSER_CAUSAL_ACYCLICITY_H_
#define CAUSER_CAUSAL_ACYCLICITY_H_

#include <vector>

#include "causal/dense.h"

namespace causer::causal {

/// NOTEARS acyclicity function h(W) = trace(e^{W∘W}) - d (Zheng et al.,
/// 2018). h(W) == 0 iff the weighted graph W is acyclic; h is smooth and
/// non-negative.
double AcyclicityValue(const Dense& w);

/// Gradient of h: ∇h(W) = (e^{W∘W})^T ∘ 2W.
Dense AcyclicityGradient(const Dense& w);

/// Convenience for float parameter buffers (the cluster graph W^c lives in
/// the autograd world as a float tensor): computes h(W) and, if `grad` is
/// non-null, *adds* `scale * ∇h` into it. `w` and `grad` are row-major d*d
/// buffers (raw pointers, so both heap vectors and the tensor layer's
/// arena-backed FloatBuffers work).
double AcyclicityValueAndAccumulateGrad(const float* w, int d, double scale,
                                        float* grad);

}  // namespace causer::causal

#endif  // CAUSER_CAUSAL_ACYCLICITY_H_
