#ifndef CAUSER_CAUSAL_GES_H_
#define CAUSER_CAUSAL_GES_H_

#include "causal/dense.h"
#include "causal/graph.h"

namespace causer::causal {

/// Options for greedy equivalence search.
struct GesOptions {
  /// BIC penalty multiplier (1.0 = standard BIC; larger = sparser graphs).
  double penalty = 1.0;
  /// Maximum parents per node (caps the local regression size).
  int max_parents = 6;
};

/// Result of a GES run.
struct GesResult {
  Graph graph;           ///< a DAG in the estimated equivalence class
  /// Final Gaussian BIC score (higher is better). Comparable across runs
  /// on the same data only — the likelihood term scales with n and d.
  double score = 0.0;
  int insertions = 0;    ///< edges added in the forward phase
  int deletions = 0;     ///< edges removed in the backward phase
};

/// Greedy equivalence search (Chickering 2002), simplified to DAG-space
/// greedy hill climbing with the Gaussian BIC score over single-edge
/// insertions, deletions and reversals. Cited by the paper as the
/// canonical score-based discovery family its NOTEARS-style training
/// continuizes. Caveat of the simplification: single-move search can stop
/// in a denser I-map of the true distribution (e.g. a reversed collider
/// plus one compensating edge) where true equivalence-class GES would not.
GesResult GreedyEquivalenceSearch(const Dense& data,
                                  const GesOptions& options = {});

/// Gaussian BIC score of `graph` on `data` (sum over nodes of the
/// residual-variance log-likelihood minus the BIC complexity penalty).
double BicScore(const Dense& data, const Graph& graph, double penalty = 1.0);

}  // namespace causer::causal

#endif  // CAUSER_CAUSAL_GES_H_
