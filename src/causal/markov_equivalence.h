#ifndef CAUSER_CAUSAL_MARKOV_EQUIVALENCE_H_
#define CAUSER_CAUSAL_MARKOV_EQUIVALENCE_H_

#include <tuple>
#include <vector>

#include "causal/graph.h"

namespace causer::causal {

/// Undirected skeleton: Edge(i,j) set for both directions of every edge.
Graph Skeleton(const Graph& g);

/// All v-structures (i -> k <- j with i, j non-adjacent), as (i, k, j)
/// tuples with i < j for canonical ordering.
std::vector<std::tuple<int, int, int>> VStructures(const Graph& g);

/// True when g1 and g2 are in the same Markov equivalence class:
/// identical skeletons and identical v-structure sets (paper Definition 1,
/// Verma & Pearl 1990).
bool SameMarkovEquivalenceClass(const Graph& g1, const Graph& g2);

/// Structural Hamming distance between directed graphs: +1 for each edge
/// present in exactly one graph; a reversed edge counts once (not twice).
int StructuralHammingDistance(const Graph& g1, const Graph& g2);

/// Partially directed graph: per ordered pair, an edge is absent, directed,
/// or undirected. Undirected edges are stored symmetrically.
class Pdag {
 public:
  explicit Pdag(int n);

  int n() const { return n_; }
  bool HasDirected(int i, int j) const;    // i -> j
  bool HasUndirected(int i, int j) const;  // i - j
  bool Adjacent(int i, int j) const;
  void SetDirected(int i, int j);
  void SetUndirected(int i, int j);
  void Remove(int i, int j);

  bool operator==(const Pdag& other) const {
    return n_ == other.n_ && state_ == other.state_;
  }

 private:
  int n_;
  // 0 = none, 1 = directed i->j, 2 = undirected (mirrored).
  std::vector<uint8_t> state_;
};

/// Completed PDAG (essential graph) of a DAG: v-structure edges stay
/// directed, all others start undirected, then Meek rules R1-R3 orient the
/// compelled edges. Two DAGs are Markov equivalent iff their CPDAGs are
/// identical.
Pdag Cpdag(const Graph& g);

}  // namespace causer::causal

#endif  // CAUSER_CAUSAL_MARKOV_EQUIVALENCE_H_
