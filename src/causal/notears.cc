#include "causal/notears.h"

#include <cmath>
#include <limits>

#include "causal/acyclicity.h"
#include "common/trace.h"

namespace causer::causal {

NotearsMetricsT& NotearsMetrics() {
  static NotearsMetricsT m{
      metrics::GetCounter(
          "notears.outer_iterations_total", "iterations",
          "Augmented-Lagrangian outer iterations (multiplier updates) "
          "across NotearsLinear and Causer's W^c subproblem."),
      metrics::GetCounter(
          "notears.subproblems_total", "subproblems",
          "Inner minimization subproblems solved at fixed (alpha, rho)."),
      metrics::GetCounter(
          "notears.inner_steps_total", "steps",
          "Gradient/Adam steps taken inside inner subproblems."),
      metrics::GetCounter(
          "causal.matrix_exp_calls_total", "calls",
          "MatrixExponential evaluations (the h(W) value/gradient core)."),
      metrics::GetGauge(
          "notears.rho", "coefficient",
          "Latest quadratic penalty coefficient rho (beta2 in Causer)."),
      metrics::GetGauge(
          "notears.alpha", "coefficient",
          "Latest Lagrange multiplier alpha (beta1 in Causer)."),
      metrics::GetGauge("notears.h", "residual",
                        "Latest acyclicity residual h(W)."),
  };
  return m;
}

namespace {

/// Smooth part of the objective for fixed multipliers:
///   f(W) = (1/2n)||X - XW||^2 + alpha h(W) + (rho/2) h(W)^2.
/// Returns f and writes its gradient (lambda1 L1 handled by the caller via
/// subgradient). `xtx` is X^T X precomputed.
double SmoothValueAndGrad(const Dense& xtx, int n_samples, const Dense& w,
                          double alpha, double rho, Dense* grad) {
  const int d = w.rows();
  // Residual gradient: (1/n) (XtX W - XtX).
  Dense xtxw = xtx.Multiply(w);
  Dense g(d, d);
  for (int i = 0; i < d; ++i)
    for (int j = 0; j < d; ++j)
      g(i, j) = (xtxw(i, j) - xtx(i, j)) / n_samples;

  // Loss value: (1/2n) tr((I-W)^T XtX (I-W)).
  double loss = 0.0;
  {
    Dense iw = Dense::Identity(d);
    iw.AddInPlace(w, -1.0);
    Dense tmp = xtx.Multiply(iw);
    Dense full = iw.Transposed().Multiply(tmp);
    loss = full.Trace() / (2.0 * n_samples);
  }

  double h = AcyclicityValue(w);
  Dense hg = AcyclicityGradient(w);
  double coeff = alpha + rho * h;
  for (int i = 0; i < d; ++i)
    for (int j = 0; j < d; ++j) g(i, j) += coeff * hg(i, j);

  *grad = std::move(g);
  return loss + alpha * h + 0.5 * rho * h * h;
}

}  // namespace

NotearsResult NotearsLinear(const Dense& x, const NotearsOptions& options) {
  const int n = x.rows();
  const int d = x.cols();
  CAUSER_CHECK(n > 0 && d > 0);
  trace::TraceSpan solve_span("notears.solve", "causal");
  solve_span.AddArg("d", d);
  solve_span.AddArg("n", n);

  Dense xtx = x.Transposed().Multiply(x);

  Dense w(d, d);
  double alpha = 0.0;
  double rho = 1.0;
  // Residual of the "previous" outer iteration; starts at infinity so the
  // penalty coefficient is not grown before the first subproblem is solved
  // (W = 0 trivially has h = 0, which must not count as progress).
  double h = std::numeric_limits<double>::infinity();

  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;

  NotearsResult result;
  int outer = 0;
  for (; outer < options.max_outer_iterations; ++outer) {
    trace::TraceSpan outer_span("notears.outer", "causal");
    double h_new = h;
    // Inner subproblem: minimize smooth + lambda1 * ||W||_1 at fixed
    // (alpha, rho), growing rho until the residual shrinks enough.
    while (true) {
      NotearsMetrics().subproblems.Add();
      NotearsMetrics().inner_steps.Add(options.inner_iterations);
      // Fresh Adam state per subproblem: second-moment estimates from a
      // previous (differently scaled) penalty would cripple the step sizes.
      Dense m(d, d), v(d, d);
      int adam_t = 0;
      for (int it = 0; it < options.inner_iterations; ++it) {
        Dense grad;
        SmoothValueAndGrad(xtx, n, w, alpha, rho, &grad);
        ++adam_t;
        double bc1 = 1.0 - std::pow(beta1, adam_t);
        double bc2 = 1.0 - std::pow(beta2, adam_t);
        const double shrink = options.learning_rate * options.lambda1;
        for (int i = 0; i < d; ++i) {
          for (int j = 0; j < d; ++j) {
            if (i == j) continue;  // diagonal stays zero
            double g = grad(i, j);
            m(i, j) = beta1 * m(i, j) + (1.0 - beta1) * g;
            v(i, j) = beta2 * v(i, j) + (1.0 - beta2) * g * g;
            double next = w(i, j) - options.learning_rate * (m(i, j) / bc1) /
                                        (std::sqrt(v(i, j) / bc2) + eps);
            // Proximal L1 (soft-thresholding): keeps inactive entries at
            // exactly zero, which also stabilizes the DAG penalty — jitter
            // on a reverse edge would otherwise leak large alpha-scaled
            // gradients onto the true edge.
            if (next > shrink) {
              next -= shrink;
            } else if (next < -shrink) {
              next += shrink;
            } else {
              next = 0.0;
            }
            w(i, j) = next;
          }
        }
      }
      h_new = AcyclicityValue(w);
      if (h_new > options.residual_shrink * h && rho < options.rho_max) {
        rho *= options.rho_growth;
      } else {
        break;
      }
    }
    alpha += rho * h_new;
    h = h_new;
    NotearsMetrics().outer_iterations.Add();
    NotearsMetrics().rho.Set(rho);
    NotearsMetrics().alpha.Set(alpha);
    NotearsMetrics().h.Set(h);
    outer_span.AddArg("h", h);
    outer_span.AddArg("rho", rho);
    if (h <= options.h_tolerance || rho >= options.rho_max) break;
  }

  result.weights = w;
  result.final_h = h;
  result.outer_iterations = outer + 1;
  result.converged = h <= options.h_tolerance;
  result.graph = Threshold(w, options.weight_threshold);
  // Guarantee an acyclic output: if thresholding left a cycle (possible when
  // rho_max was hit), greedily drop the weakest edge on a cycle.
  while (!result.graph.IsDag()) {
    int bi = -1, bj = -1;
    double best = 1e300;
    for (int i = 0; i < d; ++i) {
      for (int j = 0; j < d; ++j) {
        if (result.graph.Edge(i, j) && std::fabs(w(i, j)) < best) {
          best = std::fabs(w(i, j));
          bi = i;
          bj = j;
        }
      }
    }
    result.graph.SetEdge(bi, bj, false);
  }
  return result;
}

Dense SimulateLinearSem(const Graph& dag, int n, double w_low, double w_high,
                        Rng& rng, Dense* w_true) {
  CAUSER_CHECK(dag.IsDag());
  const int d = dag.n();
  Dense w(d, d);
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < d; ++j) {
      if (dag.Edge(i, j)) {
        double mag = rng.Uniform(w_low, w_high);
        w(i, j) = rng.Bernoulli(0.5) ? mag : -mag;
      }
    }
  }
  if (w_true != nullptr) *w_true = w;

  std::vector<int> order = dag.TopologicalOrder();
  Dense x(n, d);
  for (int s = 0; s < n; ++s) {
    for (int v : order) {
      double value = rng.Normal();
      for (int p : dag.Parents(v)) value += x(s, p) * w(p, v);
      x(s, v) = value;
    }
  }
  return x;
}

}  // namespace causer::causal
