#ifndef CAUSER_CAUSAL_GRAPH_H_
#define CAUSER_CAUSAL_GRAPH_H_

#include <cstdint>
#include <vector>

#include "causal/dense.h"
#include "common/rng.h"

namespace causer::causal {

/// Directed graph over n nodes as a dense 0/1 adjacency matrix.
/// Edge(i, j) == true means i -> j ("i causes j").
class Graph {
 public:
  Graph() : n_(0) {}
  explicit Graph(int n) : n_(n), adj_(static_cast<size_t>(n) * n, 0) {}

  int n() const { return n_; }

  bool Edge(int i, int j) const {
    return adj_[static_cast<size_t>(i) * n_ + j] != 0;
  }
  void SetEdge(int i, int j, bool present = true) {
    CAUSER_CHECK(i != j || !present);
    adj_[static_cast<size_t>(i) * n_ + j] = present ? 1 : 0;
  }

  /// Number of directed edges.
  int NumEdges() const;

  /// Parent set of node j (all i with i -> j).
  std::vector<int> Parents(int j) const;

  /// Child set of node i (all j with i -> j).
  std::vector<int> Children(int i) const;

  /// True if the graph has no directed cycle (Kahn's algorithm).
  bool IsDag() const;

  /// A topological order (only valid when IsDag()). Ties broken by index.
  std::vector<int> TopologicalOrder() const;

  /// Nodes reachable from `start` by directed edges (excluding start).
  std::vector<int> Descendants(int start) const;

  /// Nodes that reach `target` by directed edges (excluding target).
  std::vector<int> Ancestors(int target) const;

  bool operator==(const Graph& other) const {
    return n_ == other.n_ && adj_ == other.adj_;
  }

 private:
  int n_;
  std::vector<uint8_t> adj_;
};

/// Samples a random DAG: a random permutation defines a node order; each
/// forward pair (u before v) gets an edge with probability `edge_prob`.
Graph RandomDag(int n, double edge_prob, Rng& rng);

/// Binarizes a weighted matrix: edge i->j iff |w(i,j)| > threshold.
/// Diagonal is always dropped.
Graph Threshold(const Dense& w, double threshold);

/// Converts a 0/1 graph to a Dense weight matrix (1.0 on edges).
Dense ToDense(const Graph& g);

}  // namespace causer::causal

#endif  // CAUSER_CAUSAL_GRAPH_H_
