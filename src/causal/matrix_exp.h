#ifndef CAUSER_CAUSAL_MATRIX_EXP_H_
#define CAUSER_CAUSAL_MATRIX_EXP_H_

#include "causal/dense.h"

namespace causer::causal {

/// Matrix exponential e^A via scaling-and-squaring with a truncated Taylor
/// series. A must be square. Accurate to near machine precision for the
/// moderate-norm matrices that arise from the NOTEARS constraint
/// (entries of W∘W are bounded by the squared weights).
Dense MatrixExponential(const Dense& a);

}  // namespace causer::causal

#endif  // CAUSER_CAUSAL_MATRIX_EXP_H_
