#ifndef CAUSER_CAUSAL_NOTEARS_H_
#define CAUSER_CAUSAL_NOTEARS_H_

#include "causal/dense.h"
#include "causal/graph.h"

namespace causer::causal {

/// Options for the standalone linear-SEM NOTEARS solver (Zheng et al. 2018,
/// Eq. 3 of the paper). Defaults are tuned for graphs up to ~50 nodes.
struct NotearsOptions {
  /// L1 sparsity coefficient (the paper's lambda).
  double lambda1 = 0.02;
  /// Maximum augmented-Lagrangian outer iterations.
  int max_outer_iterations = 40;
  /// Stop when h(W) drops below this value.
  double h_tolerance = 1e-8;
  /// Abort when the penalty coefficient rho exceeds this.
  double rho_max = 1e16;
  /// Adam steps per inner subproblem.
  int inner_iterations = 300;
  /// Adam learning rate for the inner subproblem.
  double learning_rate = 0.01;
  /// |w| threshold for the final binarized graph.
  double weight_threshold = 0.3;
  /// Penalty growth factor (the paper's kappa_1).
  double rho_growth = 10.0;
  /// Required residual shrink factor per outer step (the paper's kappa_2).
  double residual_shrink = 0.25;
};

/// Result of a NOTEARS run.
struct NotearsResult {
  Dense weights;         ///< learned weighted adjacency (diagonal zero)
  Graph graph;           ///< weights thresholded at `weight_threshold`
  double final_h = 0.0;  ///< acyclicity residual at termination
  int outer_iterations = 0;
  bool converged = false;  ///< h below tolerance before hitting rho_max
};

/// Learns a weighted DAG from observational data `x` (n samples x d
/// variables) by minimizing
///   (1/2n) ||X - XW||_F^2 + lambda1 ||W||_1
///   s.t. trace(e^{W o W}) = d
/// via the augmented Lagrangian with Adam inner optimization.
NotearsResult NotearsLinear(const Dense& x, const NotearsOptions& options = {});

/// Generates n samples from the linear SEM X = X W + E with standard normal
/// noise, following the topological order of `dag`; edge weights are drawn
/// uniformly from ±[w_low, w_high]. Returns the (n x d) data matrix and
/// writes the ground-truth weighted matrix to `w_true` if non-null.
Dense SimulateLinearSem(const Graph& dag, int n, double w_low, double w_high,
                        Rng& rng, Dense* w_true = nullptr);

}  // namespace causer::causal

#endif  // CAUSER_CAUSAL_NOTEARS_H_
