#ifndef CAUSER_CAUSAL_NOTEARS_H_
#define CAUSER_CAUSAL_NOTEARS_H_

#include "causal/dense.h"
#include "causal/graph.h"
#include "common/metrics.h"

namespace causer::causal {

/// Options for the standalone linear-SEM NOTEARS solver (Zheng et al. 2018,
/// Eq. 3 of the paper). Defaults are tuned for graphs up to ~50 nodes.
///
/// Paper-symbol correspondence (augmented Lagrangian, Algorithm 1 of the
/// Causer paper uses β₁/β₂ for the same roles):
///   - `lambda1`         ↔ λ, the L1 sparsity weight on W
///   - `h_tolerance`     ↔ the target for h(W) = tr(e^{W∘W}) − d
///   - `rho_growth`      ↔ κ₁, the penalty growth factor (ρ ← κ₁ρ)
///   - `residual_shrink` ↔ κ₂, the required per-step shrink of h(W)
///   - `rho_max`         ↔ the cap on the quadratic penalty ρ
struct NotearsOptions {
  /// L1 sparsity coefficient (the paper's λ).
  double lambda1 = 0.02;
  /// Maximum augmented-Lagrangian outer iterations (multiplier updates).
  int max_outer_iterations = 40;
  /// Stop when the acyclicity residual h(W) drops below this value.
  double h_tolerance = 1e-8;
  /// Abort when the quadratic penalty coefficient ρ exceeds this.
  double rho_max = 1e16;
  /// Adam steps per inner subproblem (minimization at fixed α, ρ).
  int inner_iterations = 300;
  /// Adam learning rate for the inner subproblem.
  double learning_rate = 0.01;
  /// |w| threshold for the final binarized graph.
  double weight_threshold = 0.3;
  /// Penalty growth factor (the paper's κ₁): ρ ← κ₁ρ while h stalls.
  double rho_growth = 10.0;
  /// Required residual shrink factor per outer step (the paper's κ₂).
  double residual_shrink = 0.25;
};

/// Result of a NOTEARS run.
struct NotearsResult {
  Dense weights;         ///< learned weighted adjacency W (diagonal zero)
  Graph graph;           ///< W thresholded at `weight_threshold`
  double final_h = 0.0;  ///< acyclicity residual h(W) at termination
  int outer_iterations = 0;  ///< augmented-Lagrangian outer steps run
  bool converged = false;  ///< h below tolerance before hitting rho_max
};

/// Learns a weighted DAG from observational data `x` (n samples × d
/// variables) by minimizing
///   (1/2n) ||X − XW||_F² + λ₁||W||₁   s.t.  h(W) = tr(e^{W∘W}) − d = 0
/// via the augmented Lagrangian (multiplier α, penalty ρ) with Adam inner
/// optimization and proximal L1.
NotearsResult NotearsLinear(const Dense& x, const NotearsOptions& options = {});

/// Generates n samples from the linear SEM X = XW + E with standard normal
/// noise E, following the topological order of `dag`; edge weights are
/// drawn uniformly from ±[w_low, w_high]. Returns the (n × d) data matrix
/// and writes the ground-truth weighted matrix to `w_true` if non-null.
Dense SimulateLinearSem(const Graph& dag, int n, double w_low, double w_high,
                        Rng& rng, Dense* w_true = nullptr);

/// Observability instruments of the augmented-Lagrangian NOTEARS machinery
/// (see docs/OBSERVABILITY.md). Shared between the standalone
/// NotearsLinear solver and Causer's per-epoch W^c subproblem
/// (core::CauserModel::FitClusterGraph), which runs the same α/ρ schedule
/// under the paper's β₁/β₂ naming. Registered together on first touch.
struct NotearsMetricsT {
  metrics::Counter& outer_iterations;  ///< notears.outer_iterations_total
  metrics::Counter& subproblems;       ///< notears.subproblems_total
  metrics::Counter& inner_steps;       ///< notears.inner_steps_total
  metrics::Counter& matrix_exp_calls;  ///< causal.matrix_exp_calls_total
  metrics::Gauge& rho;                 ///< notears.rho (β₂ in Causer)
  metrics::Gauge& alpha;               ///< notears.alpha (β₁ in Causer)
  metrics::Gauge& h;                   ///< notears.h — latest h(W)
};

/// The shared instrument group (function-local static registration).
NotearsMetricsT& NotearsMetrics();

}  // namespace causer::causal

#endif  // CAUSER_CAUSAL_NOTEARS_H_
