#include "causal/ges.h"

#include <cmath>
#include <vector>

#include "common/log.h"

namespace causer::causal {
namespace {

/// Residual variance of regressing column y on the columns in `parents`
/// (with intercept), via the normal equations solved by Gauss-Jordan.
double ResidualVariance(const Dense& data, int y,
                        const std::vector<int>& parents) {
  const int n = data.rows();
  const int k = static_cast<int>(parents.size());
  // Design matrix columns: intercept + parents.
  const int p = k + 1;
  // Normal equations A beta = b with A = X^T X, b = X^T y.
  std::vector<double> a(static_cast<size_t>(p) * p, 0.0), b(p, 0.0);
  for (int i = 0; i < n; ++i) {
    std::vector<double> x(p, 1.0);
    for (int j = 0; j < k; ++j) x[j + 1] = data(i, parents[j]);
    double yi = data(i, y);
    for (int r = 0; r < p; ++r) {
      b[r] += x[r] * yi;
      for (int c = 0; c < p; ++c) a[static_cast<size_t>(r) * p + c] += x[r] * x[c];
    }
  }
  // Solve by Gauss-Jordan with a ridge nudge for stability.
  for (int i = 0; i < p; ++i) a[static_cast<size_t>(i) * p + i] += 1e-8;
  std::vector<double> beta = b;
  // Forward elimination.
  std::vector<double> m = a;
  for (int col = 0; col < p; ++col) {
    int pivot = col;
    for (int r = col + 1; r < p; ++r) {
      if (std::fabs(m[static_cast<size_t>(r) * p + col]) >
          std::fabs(m[static_cast<size_t>(pivot) * p + col])) {
        pivot = r;
      }
    }
    if (pivot != col) {
      for (int c = 0; c < p; ++c)
        std::swap(m[static_cast<size_t>(col) * p + c],
                  m[static_cast<size_t>(pivot) * p + c]);
      std::swap(beta[col], beta[pivot]);
    }
    double d = m[static_cast<size_t>(col) * p + col];
    for (int c = 0; c < p; ++c) m[static_cast<size_t>(col) * p + c] /= d;
    beta[col] /= d;
    for (int r = 0; r < p; ++r) {
      if (r == col) continue;
      double f = m[static_cast<size_t>(r) * p + col];
      if (f == 0.0) continue;
      for (int c = 0; c < p; ++c)
        m[static_cast<size_t>(r) * p + c] -= f * m[static_cast<size_t>(col) * p + c];
      beta[r] -= f * beta[col];
    }
  }
  // Residual sum of squares.
  double rss = 0.0;
  for (int i = 0; i < n; ++i) {
    double pred = beta[0];
    for (int j = 0; j < k; ++j) pred += beta[j + 1] * data(i, parents[j]);
    double r = data(i, y) - pred;
    rss += r * r;
  }
  return std::max(rss / n, 1e-12);
}

/// Local BIC contribution of node y with the given parent set.
double LocalScore(const Dense& data, int y, const std::vector<int>& parents,
                  double penalty) {
  const int n = data.rows();
  double var = ResidualVariance(data, y, parents);
  double loglik = -0.5 * n * (std::log(2.0 * M_PI * var) + 1.0);
  double complexity =
      0.5 * penalty * std::log(static_cast<double>(n)) *
      (static_cast<double>(parents.size()) + 2.0);  // params: betas + var
  return loglik - complexity;
}

}  // namespace

double BicScore(const Dense& data, const Graph& graph, double penalty) {
  double total = 0.0;
  for (int y = 0; y < graph.n(); ++y) {
    total += LocalScore(data, y, graph.Parents(y), penalty);
  }
  return total;
}

GesResult GreedyEquivalenceSearch(const Dense& data,
                                  const GesOptions& options) {
  const int d = data.cols();
  GesResult result;
  result.graph = Graph(d);

  // Cache per-node local scores.
  std::vector<double> local(d);
  for (int y = 0; y < d; ++y)
    local[y] = LocalScore(data, y, {}, options.penalty);

  // Greedy hill climbing over single-edge operations: insertion,
  // deletion, and reversal (reversal is what lets a mis-oriented early
  // edge be corrected once colliders make the true direction score
  // better).
  enum class Op { kInsert, kDelete, kReverse };
  auto parents_without = [&](int j, int i) {
    std::vector<int> reduced;
    for (int p : result.graph.Parents(j))
      if (p != i) reduced.push_back(p);
    return reduced;
  };
  bool improved = true;
  int safety = 0;
  while (improved && safety++ < 10 * d * d) {
    improved = false;
    Op best_op = Op::kInsert;
    int best_i = -1, best_j = -1;
    double best_gain = 1e-9;

    for (int i = 0; i < d; ++i) {
      for (int j = 0; j < d; ++j) {
        if (i == j) continue;
        if (result.graph.Edge(i, j)) {
          // Deletion.
          double del_gain =
              LocalScore(data, j, parents_without(j, i), options.penalty) -
              local[j];
          if (del_gain > best_gain) {
            best_gain = del_gain;
            best_op = Op::kDelete;
            best_i = i;
            best_j = j;
          }
          // Reversal i->j  =>  j->i: acyclic iff no other path i ~> j.
          Graph probe = result.graph;
          probe.SetEdge(i, j, false);
          bool path = false;
          for (int v : probe.Descendants(i)) path = path || v == j;
          if (!path &&
              static_cast<int>(probe.Parents(i).size()) <
                  options.max_parents) {
            auto new_pi = probe.Parents(i);
            new_pi.push_back(j);
            double rev_gain =
                (LocalScore(data, j, parents_without(j, i),
                            options.penalty) -
                 local[j]) +
                (LocalScore(data, i, new_pi, options.penalty) - local[i]);
            if (rev_gain > best_gain) {
              best_gain = rev_gain;
              best_op = Op::kReverse;
              best_i = i;
              best_j = j;
            }
          }
        } else if (!result.graph.Edge(j, i)) {
          // Insertion i -> j.
          auto parents = result.graph.Parents(j);
          if (static_cast<int>(parents.size()) >= options.max_parents)
            continue;
          bool reaches = false;
          for (int v : result.graph.Descendants(j)) reaches = reaches || v == i;
          if (reaches) continue;
          parents.push_back(i);
          double gain =
              LocalScore(data, j, parents, options.penalty) - local[j];
          if (gain > best_gain) {
            best_gain = gain;
            best_op = Op::kInsert;
            best_i = i;
            best_j = j;
          }
        }
      }
    }

    if (best_i < 0) break;
    switch (best_op) {
      case Op::kInsert:
        result.graph.SetEdge(best_i, best_j);
        ++result.insertions;
        break;
      case Op::kDelete:
        result.graph.SetEdge(best_i, best_j, false);
        ++result.deletions;
        break;
      case Op::kReverse:
        result.graph.SetEdge(best_i, best_j, false);
        result.graph.SetEdge(best_j, best_i);
        local[best_i] = LocalScore(data, best_i, result.graph.Parents(best_i),
                                   options.penalty);
        break;
    }
    local[best_j] = LocalScore(data, best_j, result.graph.Parents(best_j),
                               options.penalty);
    improved = true;
  }

  result.score = 0.0;
  for (int y = 0; y < d; ++y) result.score += local[y];
  CAUSER_CHECK(result.graph.IsDag());
  return result;
}

}  // namespace causer::causal
