#include "eval/significance.h"

#include <cmath>

#include "common/log.h"

namespace causer::eval {
namespace {

/// Continued-fraction evaluation of the regularized incomplete beta
/// function I_x(a, b) (Numerical Recipes "betacf" scheme).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEps = 3e-12;
  constexpr double kFpMin = 1e-300;

  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double ln_beta = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                   a * std::log(x) + b * std::log(1.0 - x);
  double front = std::exp(ln_beta);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

}  // namespace

double StudentTTwoSidedPValue(double t, int df) {
  CAUSER_CHECK(df > 0);
  double x = df / (df + t * t);
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b) {
  CAUSER_CHECK(a.size() == b.size());
  CAUSER_CHECK(a.size() >= 2);
  const int n = static_cast<int>(a.size());

  double mean = 0.0;
  for (int i = 0; i < n; ++i) mean += a[i] - b[i];
  mean /= n;

  double var = 0.0;
  for (int i = 0; i < n; ++i) {
    double d = (a[i] - b[i]) - mean;
    var += d * d;
  }
  var /= (n - 1);

  TTestResult result;
  result.degrees_of_freedom = n - 1;
  result.mean_difference = mean;
  if (var <= 0.0) {
    result.t_statistic = mean == 0.0 ? 0.0 : (mean > 0 ? 1e9 : -1e9);
    result.p_value = mean == 0.0 ? 1.0 : 0.0;
    return result;
  }
  result.t_statistic = mean / std::sqrt(var / n);
  result.p_value =
      StudentTTwoSidedPValue(result.t_statistic, result.degrees_of_freedom);
  return result;
}

}  // namespace causer::eval
