#ifndef CAUSER_EVAL_EXPLANATION_EVAL_H_
#define CAUSER_EVAL_EXPLANATION_EVAL_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace causer::eval {

/// One explanation-evaluation sample, mirroring the paper's hand-labeled
/// dataset (Section V-E1): for a test interaction, the set of history step
/// positions that are true causes of the target item.
///
/// The paper's annotators label up to 3 likely cause items per sample
/// (~1.8 survive agreement). Our ground truth is assembled analogously:
/// the generator's recorded cause step plus every history step holding an
/// item whose true cluster is a causal parent of the target item's cluster
/// (the plausible causes a human would also mark).
struct ExplanationExample {
  const data::EvalInstance* instance = nullptr;
  int target_item = 0;
  std::vector<int> true_cause_positions;  // history step indices
};

/// Builds the explanation dataset from test instances. Only instances whose
/// target has a recorded cause are kept (noise interactions have no right
/// answer); at most `max_examples` are sampled.
std::vector<ExplanationExample> BuildExplanationSet(
    const std::vector<data::EvalInstance>& instances,
    const data::Dataset& dataset, int max_examples, Rng& rng);

/// An explainer assigns a relevance score to every history step of the
/// instance for the given target item (higher = more causal).
using Explainer =
    std::function<std::vector<double>(const data::EvalInstance&, int item)>;

/// Aggregate explanation quality.
struct ExplanationResult {
  double f1 = 0.0;
  double ndcg = 0.0;
  int num_examples = 0;
  double avg_causes_per_example = 0.0;
};

/// Evaluates `explainer` on the examples: the top-`top_k` scored history
/// positions are compared against the true cause positions with F1 / NDCG
/// (the paper uses top_k = 3).
ExplanationResult EvaluateExplanations(
    const Explainer& explainer,
    const std::vector<ExplanationExample>& examples, int top_k);

}  // namespace causer::eval

#endif  // CAUSER_EVAL_EXPLANATION_EVAL_H_
