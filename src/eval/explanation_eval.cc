#include "eval/explanation_eval.h"

#include <algorithm>

#include "common/log.h"
#include "eval/metrics.h"

namespace causer::eval {

std::vector<ExplanationExample> BuildExplanationSet(
    const std::vector<data::EvalInstance>& instances,
    const data::Dataset& dataset, int max_examples, Rng& rng) {
  std::vector<ExplanationExample> all;
  for (const auto& inst : instances) {
    for (size_t k = 0; k < inst.target_items.size(); ++k) {
      if (inst.target_cause_step.size() <= k || inst.target_cause_step[k] < 0)
        continue;  // noise interaction: no ground-truth cause
      if (inst.history.empty()) continue;
      ExplanationExample ex;
      ex.instance = &inst;
      ex.target_item = inst.target_items[k];
      ex.true_cause_positions.push_back(inst.target_cause_step[k]);
      // Plausible additional causes: history steps containing an item whose
      // true cluster is a parent of the target's cluster.
      int target_cluster = dataset.item_true_cluster[ex.target_item];
      auto parents = dataset.true_cluster_graph.Parents(target_cluster);
      for (size_t pos = 0; pos < inst.history.size(); ++pos) {
        if (static_cast<int>(pos) == inst.target_cause_step[k]) continue;
        for (int item : inst.history[pos].items) {
          int c = dataset.item_true_cluster[item];
          if (std::find(parents.begin(), parents.end(), c) != parents.end()) {
            ex.true_cause_positions.push_back(static_cast<int>(pos));
            break;
          }
        }
      }
      std::sort(ex.true_cause_positions.begin(),
                ex.true_cause_positions.end());
      ex.true_cause_positions.erase(std::unique(ex.true_cause_positions.begin(),
                                                ex.true_cause_positions.end()),
                                    ex.true_cause_positions.end());
      all.push_back(std::move(ex));
    }
  }
  if (static_cast<int>(all.size()) > max_examples) {
    rng.Shuffle(all);
    all.resize(max_examples);
  }
  return all;
}

ExplanationResult EvaluateExplanations(
    const Explainer& explainer,
    const std::vector<ExplanationExample>& examples, int top_k) {
  CAUSER_CHECK(top_k > 0);
  ExplanationResult result;
  double cause_total = 0.0;
  for (const auto& ex : examples) {
    std::vector<double> scores = explainer(*ex.instance, ex.target_item);
    CAUSER_CHECK(scores.size() == ex.instance->history.size());
    std::vector<float> fscores(scores.begin(), scores.end());
    std::vector<int> ranked = TopK(fscores, top_k);
    result.f1 += F1(ranked, ex.true_cause_positions);
    result.ndcg += Ndcg(ranked, ex.true_cause_positions);
    cause_total += static_cast<double>(ex.true_cause_positions.size());
  }
  result.num_examples = static_cast<int>(examples.size());
  if (result.num_examples > 0) {
    result.f1 /= result.num_examples;
    result.ndcg /= result.num_examples;
    result.avg_causes_per_example = cause_total / result.num_examples;
  }
  return result;
}

}  // namespace causer::eval
