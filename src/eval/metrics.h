#ifndef CAUSER_EVAL_METRICS_H_
#define CAUSER_EVAL_METRICS_H_

#include <vector>

namespace causer::eval {

/// Indices of the top-k largest scores, ties broken by lower index.
std::vector<int> TopK(const std::vector<float>& scores, int k);

/// Precision@Z = |ranked ∩ relevant| / |ranked|.
double Precision(const std::vector<int>& ranked,
                 const std::vector<int>& relevant);

/// Recall@Z = |ranked ∩ relevant| / |relevant|.
double Recall(const std::vector<int>& ranked,
              const std::vector<int>& relevant);

/// F1 = 2PR/(P+R); 0 when both are 0.
double F1(const std::vector<int>& ranked, const std::vector<int>& relevant);

/// NDCG@Z with binary relevance:
///   DCG = sum_i rel(i)/log2(i+1), IDCG = best achievable for |relevant|.
double Ndcg(const std::vector<int>& ranked, const std::vector<int>& relevant);

}  // namespace causer::eval

#endif  // CAUSER_EVAL_METRICS_H_
