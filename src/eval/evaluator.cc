#include "eval/evaluator.h"

#include "common/log.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "eval/metrics.h"
#include "tensor/arena.h"

namespace causer::eval {
namespace {

/// Evaluator instruments (see docs/OBSERVABILITY.md), registered together
/// on first touch. Shard timing divided by shard instance counts gives the
/// per-shard instance throughput.
struct EvalMetricsT {
  metrics::Counter& runs;
  metrics::Counter& instances;
  metrics::Histogram& run_seconds;
  metrics::Histogram& shard_seconds;
};

EvalMetricsT& EvalMetrics() {
  static EvalMetricsT m{
      metrics::GetCounter("eval.runs_total", "runs",
                          "Evaluate() calls completed."),
      metrics::GetCounter("eval.instances_total", "instances",
                          "Evaluation instances scored and ranked."),
      metrics::GetHistogram("eval.run_seconds", "seconds",
                            "Wall time of each Evaluate() call.",
                            metrics::ExponentialBuckets(1e-4, 10.0, 8)),
      metrics::GetHistogram(
          "eval.shard_seconds", "seconds",
          "Wall time of each evaluation shard (one contiguous instance "
          "range on one worker).",
          metrics::ExponentialBuckets(1e-5, 10.0, 8)),
  };
  return m;
}

}  // namespace

EvalResult Evaluate(const Scorer& scorer,
                    const std::vector<data::EvalInstance>& instances, int z,
                    int threads) {
  CAUSER_CHECK(z > 0);
  if (threads <= 0) threads = DefaultThreads();
  const int n = static_cast<int>(instances.size());
  trace::TraceSpan run_span("eval.run", "eval");
  run_span.AddArg("instances", n);
  run_span.AddArg("threads", threads);
  const bool measure = metrics::Enabled();
  Stopwatch run_sw;

  EvalResult result;
  result.per_instance_f1.resize(n, 0.0);
  result.per_instance_ndcg.resize(n, 0.0);

  // Each instance is scored independently: shard them across the pool with
  // every worker writing only its own slots. The scorer must be safe to
  // call concurrently when threads > 1 (model scorers are: scoring runs
  // under NoGradGuard and only reads parameters).
  auto score_range = [&](int begin, int end) {
    trace::TraceSpan shard_span("eval.shard", "eval");
    shard_span.AddArg("instances", end - begin);
    Stopwatch shard_sw;
    for (int i = begin; i < end; ++i) {
      const auto& inst = instances[i];
      // Model scorers build (no-grad) tape nodes for every candidate
      // batch; recycle them per instance on this worker's arena. The
      // returned scores are a plain heap vector, safe past the reset.
      tensor::ArenaScope arena_scope;
      std::vector<float> scores = scorer(inst);
      if (scores.empty()) continue;  // no catalog to rank: count as a miss
      // TopK clamps z to the catalog size, so z > num_items degrades to
      // ranking the whole catalog instead of reading out of bounds.
      std::vector<int> ranked = TopK(scores, z);
      result.per_instance_f1[i] = F1(ranked, inst.target_items);
      result.per_instance_ndcg[i] = Ndcg(ranked, inst.target_items);
    }
    if (measure) EvalMetrics().shard_seconds.Observe(shard_sw.ElapsedSeconds());
  };
  if (threads > 1 && n > 1) {
    // A dedicated pool of the requested size when it differs from the
    // shared one; otherwise reuse the shared pool.
    if (threads == DefaultThreads()) {
      DefaultPool().ParallelFor(0, n, score_range);
    } else {
      ThreadPool pool(threads);
      pool.ParallelFor(0, n, score_range);
    }
  } else {
    score_range(0, n);
  }

  // Merge in instance order, so the aggregate sums are bit-identical to the
  // sequential evaluator for every thread count.
  for (int i = 0; i < n; ++i) {
    result.f1 += result.per_instance_f1[i];
    result.ndcg += result.per_instance_ndcg[i];
  }
  if (n > 0) {
    result.f1 /= n;
    result.ndcg /= n;
  }
  if (measure) {
    EvalMetrics().runs.Add();
    EvalMetrics().instances.Add(static_cast<uint64_t>(n));
    EvalMetrics().run_seconds.Observe(run_sw.ElapsedSeconds());
  }
  return result;
}

}  // namespace causer::eval
