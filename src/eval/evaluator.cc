#include "eval/evaluator.h"

#include "common/log.h"
#include "eval/metrics.h"

namespace causer::eval {

EvalResult Evaluate(const Scorer& scorer,
                    const std::vector<data::EvalInstance>& instances, int z) {
  CAUSER_CHECK(z > 0);
  EvalResult result;
  for (const auto& inst : instances) {
    std::vector<float> scores = scorer(inst);
    std::vector<int> ranked = TopK(scores, z);
    double f1 = F1(ranked, inst.target_items);
    double ndcg = Ndcg(ranked, inst.target_items);
    result.per_instance_f1.push_back(f1);
    result.per_instance_ndcg.push_back(ndcg);
    result.f1 += f1;
    result.ndcg += ndcg;
  }
  if (!instances.empty()) {
    result.f1 /= instances.size();
    result.ndcg /= instances.size();
  }
  return result;
}

}  // namespace causer::eval
