#ifndef CAUSER_EVAL_ANALYSIS_H_
#define CAUSER_EVAL_ANALYSIS_H_

#include <vector>

#include "causal/graph.h"

namespace causer::eval {

/// Clustering purity of `predicted` against `truth`: each predicted
/// cluster is credited with its majority true label; returns the credited
/// fraction in [0, 1]. Labels may use arbitrary (even non-contiguous) ids.
double ClusterPurity(const std::vector<int>& predicted,
                     const std::vector<int>& truth);

/// Majority-vote mapping from predicted cluster id to true cluster id.
/// Predicted clusters with no members are absent from the result (which is
/// indexed by predicted id, -1 where undefined).
std::vector<int> MajorityMapping(const std::vector<int>& predicted,
                                 const std::vector<int>& truth,
                                 int num_predicted, int num_truth);

/// Precision/recall/F1 of a learned edge set against a reference graph.
struct EdgeRecovery {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  int true_positives = 0;
  int learned_edges = 0;
  int true_edges = 0;
};

/// Compares directed edges of `learned` against `truth` (same node space).
EdgeRecovery CompareEdges(const causal::Graph& learned,
                          const causal::Graph& truth);

/// Compares a learned cluster graph against the truth after remapping the
/// learned cluster ids through the majority assignment mapping (learned
/// and true clusterings use different, permuted ids). Edges whose
/// endpoints map to the same true cluster are dropped (they have no
/// counterpart in the reference).
EdgeRecovery CompareEdgesMapped(const causal::Graph& learned,
                                const causal::Graph& truth,
                                const std::vector<int>& predicted_clusters,
                                const std::vector<int>& true_clusters);

}  // namespace causer::eval

#endif  // CAUSER_EVAL_ANALYSIS_H_
