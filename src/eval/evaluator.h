#ifndef CAUSER_EVAL_EVALUATOR_H_
#define CAUSER_EVAL_EVALUATOR_H_

#include <functional>
#include <vector>

#include "data/dataset.h"

namespace causer::eval {

/// A scorer maps an evaluation instance to one score per item (higher =
/// more likely to be interacted next). This indirection keeps the evaluator
/// independent of the model classes.
using Scorer = std::function<std::vector<float>(const data::EvalInstance&)>;

/// Aggregate ranking quality over a set of instances.
struct EvalResult {
  double f1 = 0.0;    ///< mean F1@Z across instances
  double ndcg = 0.0;  ///< mean NDCG@Z across instances
  /// Per-instance values, used for the paired t-test.
  std::vector<double> per_instance_f1;
  std::vector<double> per_instance_ndcg;
};

/// Ranks all items per instance with `scorer` and averages F1@Z / NDCG@Z,
/// following the paper's protocol (Z = 5 in the experiments).
///
/// `threads` shards the instances across that many workers (0 = use the
/// process-wide DefaultThreads(), which defaults to 1 = sequential). The
/// per-shard sums are merged in instance order, so the returned metrics are
/// bit-identical for every thread count; the scorer must be callable from
/// multiple threads concurrently when threads > 1. Z larger than the
/// catalog ranks the whole catalog; an empty score vector counts as a miss.
EvalResult Evaluate(const Scorer& scorer,
                    const std::vector<data::EvalInstance>& instances, int z,
                    int threads = 0);

}  // namespace causer::eval

#endif  // CAUSER_EVAL_EVALUATOR_H_
