#include "eval/analysis.h"

#include <algorithm>
#include <map>

#include "common/log.h"

namespace causer::eval {

double ClusterPurity(const std::vector<int>& predicted,
                     const std::vector<int>& truth) {
  CAUSER_CHECK(predicted.size() == truth.size());
  if (predicted.empty()) return 0.0;
  std::map<int, std::map<int, int>> table;
  for (size_t i = 0; i < predicted.size(); ++i) {
    table[predicted[i]][truth[i]]++;
  }
  int credited = 0;
  for (const auto& [cluster, counts] : table) {
    int best = 0;
    for (const auto& [label, n] : counts) best = std::max(best, n);
    credited += best;
  }
  return static_cast<double>(credited) / predicted.size();
}

std::vector<int> MajorityMapping(const std::vector<int>& predicted,
                                 const std::vector<int>& truth,
                                 int num_predicted, int num_truth) {
  CAUSER_CHECK(predicted.size() == truth.size());
  std::vector<std::vector<int>> counts(num_predicted,
                                       std::vector<int>(num_truth, 0));
  for (size_t i = 0; i < predicted.size(); ++i) {
    CAUSER_CHECK(predicted[i] >= 0 && predicted[i] < num_predicted);
    CAUSER_CHECK(truth[i] >= 0 && truth[i] < num_truth);
    counts[predicted[i]][truth[i]]++;
  }
  std::vector<int> mapping(num_predicted, -1);
  for (int p = 0; p < num_predicted; ++p) {
    int best = -1, best_count = 0;
    for (int t = 0; t < num_truth; ++t) {
      if (counts[p][t] > best_count) {
        best_count = counts[p][t];
        best = t;
      }
    }
    mapping[p] = best;
  }
  return mapping;
}

EdgeRecovery CompareEdges(const causal::Graph& learned,
                          const causal::Graph& truth) {
  CAUSER_CHECK(learned.n() == truth.n());
  EdgeRecovery r;
  r.learned_edges = learned.NumEdges();
  r.true_edges = truth.NumEdges();
  for (int i = 0; i < truth.n(); ++i) {
    for (int j = 0; j < truth.n(); ++j) {
      if (learned.Edge(i, j) && truth.Edge(i, j)) ++r.true_positives;
    }
  }
  r.precision = r.learned_edges > 0
                    ? static_cast<double>(r.true_positives) / r.learned_edges
                    : 0.0;
  r.recall = r.true_edges > 0
                 ? static_cast<double>(r.true_positives) / r.true_edges
                 : 0.0;
  r.f1 = r.precision + r.recall > 0
             ? 2 * r.precision * r.recall / (r.precision + r.recall)
             : 0.0;
  return r;
}

EdgeRecovery CompareEdgesMapped(const causal::Graph& learned,
                                const causal::Graph& truth,
                                const std::vector<int>& predicted_clusters,
                                const std::vector<int>& true_clusters) {
  auto mapping = MajorityMapping(predicted_clusters, true_clusters,
                                 learned.n(), truth.n());
  EdgeRecovery r;
  r.true_edges = truth.NumEdges();
  for (int i = 0; i < learned.n(); ++i) {
    for (int j = 0; j < learned.n(); ++j) {
      if (!learned.Edge(i, j)) continue;
      int mi = mapping[i], mj = mapping[j];
      if (mi < 0 || mj < 0 || mi == mj) continue;  // unmatchable edge
      ++r.learned_edges;
      if (truth.Edge(mi, mj)) ++r.true_positives;
    }
  }
  r.precision = r.learned_edges > 0
                    ? static_cast<double>(r.true_positives) / r.learned_edges
                    : 0.0;
  r.recall = r.true_edges > 0
                 ? static_cast<double>(r.true_positives) / r.true_edges
                 : 0.0;
  r.f1 = r.precision + r.recall > 0
             ? 2 * r.precision * r.recall / (r.precision + r.recall)
             : 0.0;
  return r;
}

}  // namespace causer::eval
