#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace causer::eval {

std::vector<int> TopK(const std::vector<float>& scores, int k) {
  const int n = static_cast<int>(scores.size());
  k = std::max(0, std::min(k, n));
  if (k == 0) return {};
  // Deterministic strict order: score descending, index ascending on ties.
  // Because it is total, any correct selection yields exactly one answer —
  // this heap selection returns the same ranking a full sort would.
  auto better = [&scores](int a, int b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  };
  // Bounded selection heap over the k best seen so far, with the *worst*
  // kept candidate at the front (std heap ops treat `better` as the
  // ordering, making the front its maximum = worst). For the evaluator's
  // k ≪ catalog this is O(n + k·log k·log n) expected and never
  // materializes an n-sized index array.
  std::vector<int> heap;
  heap.reserve(k);
  for (int i = 0; i < n; ++i) {
    if (static_cast<int>(heap.size()) < k) {
      heap.push_back(i);
      std::push_heap(heap.begin(), heap.end(), better);
    } else if (better(i, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), better);
      heap.back() = i;
      std::push_heap(heap.begin(), heap.end(), better);
    }
  }
  std::sort(heap.begin(), heap.end(), better);
  return heap;
}

namespace {

int HitCount(const std::vector<int>& ranked, const std::vector<int>& relevant) {
  int hits = 0;
  for (int r : ranked) {
    if (std::find(relevant.begin(), relevant.end(), r) != relevant.end())
      ++hits;
  }
  return hits;
}

}  // namespace

double Precision(const std::vector<int>& ranked,
                 const std::vector<int>& relevant) {
  if (ranked.empty()) return 0.0;
  return static_cast<double>(HitCount(ranked, relevant)) / ranked.size();
}

double Recall(const std::vector<int>& ranked,
              const std::vector<int>& relevant) {
  if (relevant.empty()) return 0.0;
  return static_cast<double>(HitCount(ranked, relevant)) / relevant.size();
}

double F1(const std::vector<int>& ranked, const std::vector<int>& relevant) {
  double p = Precision(ranked, relevant);
  double r = Recall(ranked, relevant);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double Ndcg(const std::vector<int>& ranked, const std::vector<int>& relevant) {
  if (relevant.empty()) return 0.0;
  double dcg = 0.0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (std::find(relevant.begin(), relevant.end(), ranked[i]) !=
        relevant.end()) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  double idcg = 0.0;
  size_t ideal_hits = std::min(ranked.size(), relevant.size());
  for (size_t i = 0; i < ideal_hits; ++i) {
    idcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

}  // namespace causer::eval
