#ifndef CAUSER_EVAL_SIGNIFICANCE_H_
#define CAUSER_EVAL_SIGNIFICANCE_H_

#include <vector>

namespace causer::eval {

/// Result of a two-sided paired t-test on matched samples.
struct TTestResult {
  double t_statistic = 0.0;
  double p_value = 1.0;
  int degrees_of_freedom = 0;
  /// Mean of (a - b); positive means `a` larger on average.
  double mean_difference = 0.0;
};

/// Paired two-sided t-test between matched per-instance metric vectors
/// (the paper marks improvements with p < 0.05). Requires equal sizes and
/// at least two pairs. Degenerate zero-variance differences yield
/// p = 1 when the mean difference is 0, otherwise p = 0.
TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Two-sided p-value of a Student-t statistic with `df` degrees of freedom
/// (regularized incomplete beta implementation).
double StudentTTwoSidedPValue(double t, int df);

}  // namespace causer::eval

#endif  // CAUSER_EVAL_SIGNIFICANCE_H_
