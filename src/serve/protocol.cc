#include "serve/protocol.h"

#include <limits>

#include "common/net.h"

namespace causer::serve::wire {

void EncodeRequest(const RequestFrame& frame, std::vector<uint8_t>* out) {
  out->clear();
  net::PutU8(out, kVersion);
  net::PutU8(out, static_cast<uint8_t>(frame.priority));
  net::PutU8(out, static_cast<uint8_t>(frame.op));
  net::PutU8(out, 0);  // reserved
  net::PutU32(out, frame.request_id);
  net::PutU32(out, static_cast<uint32_t>(frame.user));
  net::PutU32(out, frame.deadline_ms);
  net::PutU16(out, static_cast<uint16_t>(frame.append.size()));
  net::PutU16(out, static_cast<uint16_t>(frame.bootstrap.size()));
  for (int32_t item : frame.append) {
    net::PutU32(out, static_cast<uint32_t>(item));
  }
  for (const auto& step : frame.bootstrap) {
    net::PutU16(out, static_cast<uint16_t>(step.size()));
    for (int32_t item : step) net::PutU32(out, static_cast<uint32_t>(item));
  }
}

bool DecodeRequest(const std::vector<uint8_t>& payload, RequestFrame* out) {
  net::Cursor cursor{payload.data(), payload.size()};
  if (cursor.U8() != kVersion) return false;
  const uint8_t priority = cursor.U8();
  if (priority > static_cast<uint8_t>(Priority::kHigh)) return false;
  out->priority = static_cast<Priority>(priority);
  const uint8_t op = cursor.U8();
  if (op > static_cast<uint8_t>(Op::kReload)) return false;
  out->op = static_cast<Op>(op);
  cursor.U8();  // reserved
  out->request_id = cursor.U32();
  out->user = static_cast<int32_t>(cursor.U32());
  out->deadline_ms = cursor.U32();
  const uint16_t append_items = cursor.U16();
  const uint16_t bootstrap_steps = cursor.U16();
  out->append.clear();
  out->append.reserve(append_items);
  for (uint16_t i = 0; i < append_items && cursor.ok; ++i) {
    out->append.push_back(static_cast<int32_t>(cursor.U32()));
  }
  out->bootstrap.clear();
  out->bootstrap.reserve(bootstrap_steps);
  for (uint16_t s = 0; s < bootstrap_steps && cursor.ok; ++s) {
    const uint16_t count = cursor.U16();
    std::vector<int32_t> step;
    step.reserve(count);
    for (uint16_t i = 0; i < count && cursor.ok; ++i) {
      step.push_back(static_cast<int32_t>(cursor.U32()));
    }
    out->bootstrap.push_back(std::move(step));
  }
  return cursor.ok && cursor.AtEnd();
}

void EncodeResponse(const ResponseFrame& frame, std::vector<uint8_t>* out) {
  out->clear();
  net::PutU8(out, kVersion);
  net::PutU8(out, static_cast<uint8_t>(frame.status));
  net::PutU16(out, static_cast<uint16_t>(frame.items.size()));
  net::PutU32(out, frame.request_id);
  net::PutU32(out, frame.model_version);
  for (size_t i = 0; i < frame.items.size(); ++i) {
    net::PutU32(out, static_cast<uint32_t>(frame.items[i]));
    net::PutF32(out, i < frame.scores.size() ? frame.scores[i] : 0.0f);
  }
}

bool DecodeResponse(const std::vector<uint8_t>& payload,
                    ResponseFrame* out) {
  net::Cursor cursor{payload.data(), payload.size()};
  if (cursor.U8() != kVersion) return false;
  const uint8_t status = cursor.U8();
  if (status > static_cast<uint8_t>(Status::kReloadFailed)) return false;
  out->status = static_cast<Status>(status);
  const uint16_t k = cursor.U16();
  out->request_id = cursor.U32();
  out->model_version = cursor.U32();
  out->items.clear();
  out->scores.clear();
  out->items.reserve(k);
  out->scores.reserve(k);
  for (uint16_t i = 0; i < k && cursor.ok; ++i) {
    out->items.push_back(static_cast<int32_t>(cursor.U32()));
    out->scores.push_back(cursor.F32());
  }
  return cursor.ok && cursor.AtEnd();
}

const char* StatusName(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kQueueFull:
      return "queue_full";
    case Status::kDeadlineExceeded:
      return "deadline_exceeded";
    case Status::kShuttingDown:
      return "shutting_down";
    case Status::kBadRequest:
      return "bad_request";
    case Status::kReloadFailed:
      return "reload_failed";
  }
  return "unknown";
}

}  // namespace causer::serve::wire
