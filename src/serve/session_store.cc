#include "serve/session_store.h"

#include <algorithm>
#include <utility>

#include "common/log.h"

namespace causer::serve {

ServeMetricsT& ServeMetrics() {
  static ServeMetricsT m{
      metrics::GetCounter("serve.requests_total", "requests",
                          "Scoring requests handled by the serving engine."),
      metrics::GetCounter("serve.batches_total", "batches",
                          "Micro-batches dispatched (coalesced request "
                          "groups scored together)."),
      metrics::GetCounter("serve.session_hits_total", "hits",
                          "Requests whose user already had a cached "
                          "incremental session state."),
      metrics::GetCounter("serve.session_misses_total", "misses",
                          "Requests that created a session state (first "
                          "sight or post-eviction bootstrap replay)."),
      metrics::GetCounter("serve.session_evictions_total", "evictions",
                          "Sessions evicted by the store's LRU cap."),
      metrics::GetGauge("serve.sessions", "sessions",
                        "Incremental session states currently cached."),
      metrics::GetHistogram("serve.batch_size", "requests",
                            "Requests coalesced per dispatched micro-batch.",
                            {1, 2, 4, 8, 16, 32, 64, 128}),
      metrics::GetHistogram("serve.request_seconds", "seconds",
                            "End-to-end request latency through the "
                            "micro-batcher (enqueue to response).",
                            metrics::ExponentialBuckets(1e-6, 10.0, 8)),
      metrics::GetHistogram("serve.advance_seconds", "seconds",
                            "Wall time of a batch's session-advance phase.",
                            metrics::ExponentialBuckets(1e-6, 10.0, 8)),
      metrics::GetHistogram("serve.score_seconds", "seconds",
                            "Wall time of a batch's catalog-scoring phase "
                            "(batched GEMM + fused top-k, or per-request "
                            "fallback).",
                            metrics::ExponentialBuckets(1e-6, 10.0, 8)),
      metrics::GetCounter("serve.quant.batches_total", "batches",
                          "Micro-batches scored through the int8 quantized "
                          "GEMM + fp32 re-rank path."),
      metrics::GetCounter("serve.quant.rerank_candidates_total", "candidates",
                          "Int8 top-k candidates re-scored exactly in fp32 "
                          "before the final selection."),
      metrics::GetCounter("serve.quant.fallbacks_total", "batches",
                          "Micro-batches that requested int8 scoring but ran "
                          "fp32 (no quantized table, or non-finite "
                          "activations)."),
      metrics::GetCounter("serve.reload.reloads_total", "reloads",
                          "Hot model reloads published by the serving "
                          "engine (version swaps)."),
      metrics::GetCounter("serve.reload.failures_total", "failures",
                          "Rejected reload attempts (load failure or "
                          "architecture mismatch); the previous version "
                          "kept serving."),
      metrics::GetHistogram("serve.reload.seconds", "seconds",
                            "Wall time of a reload publish: quantized-table "
                            "rebuild + atomic swap (the score path is never "
                            "blocked).",
                            metrics::ExponentialBuckets(1e-6, 10.0, 8)),
      metrics::GetGauge("serve.reload.active_version", "version",
                        "Model version currently serving (monotonic, "
                        "starts at 1)."),
      metrics::GetCounter("serve.reload.stale_rebuilds_total", "sessions",
                          "Cached session states discarded on touch because "
                          "they were built by an older model version, then "
                          "rebuilt by bootstrap replay."),
      metrics::GetHistogram("serve.shard.batch_seconds", "seconds",
                            "Wall time of one catalog shard's fused "
                            "GEMM + top-k task within a sharded scoring "
                            "pass (--score-shards > 1).",
                            metrics::ExponentialBuckets(1e-6, 10.0, 8)),
      metrics::GetCounter("serve.shard.store_hits_total", "hits",
                          "Session-store hits served by a hash-partitioned "
                          "shard (stays 0 with --session-shards=1)."),
      metrics::GetCounter("serve.shard.store_misses_total", "misses",
                          "Session-store misses taken by a hash-partitioned "
                          "shard (stays 0 with --session-shards=1)."),
      metrics::GetGauge("serve.shard.imbalance", "ratio",
                        "Max/mean shard wall time of the latest sharded "
                        "scoring pass (1.0 = perfectly balanced)."),
  };
  return m;
}

namespace {

/// SplitMix64 finalizer: users are often dense small integers, and `id % S`
/// would map contiguous user ranges onto the same few shards under batched
/// traffic. The mix spreads any id distribution uniformly.
inline uint64_t MixUser(int user) {
  uint64_t h = static_cast<uint64_t>(static_cast<uint32_t>(user));
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

}  // namespace

SessionStore::SessionStore(int max_sessions, int shards) {
  int count = std::max(1, shards);
  if (max_sessions > 0) {
    // Every shard of a bounded store must own at least one slot, or a
    // zero-cap shard would silently mean "unbounded" for its users.
    count = std::min(count, max_sessions);
  }
  shards_.reserve(count);
  const int base = max_sessions > 0 ? max_sessions / count : 0;
  const int remainder = max_sessions > 0 ? max_sessions % count : 0;
  for (int s = 0; s < count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->cap = max_sessions > 0 ? base + (s < remainder ? 1 : 0) : 0;
    shards_.push_back(std::move(shard));
  }
}

SessionStore::Shard& SessionStore::ShardOf(int user) {
  return *shards_[MixUser(user) % shards_.size()];
}

void SessionStore::Unlink(Shard& shard, Entry* entry) {
  if (entry->newer != nullptr) {
    entry->newer->older = entry->older;
  } else {
    shard.mru = entry->older;
  }
  if (entry->older != nullptr) {
    entry->older->newer = entry->newer;
  } else {
    shard.lru = entry->newer;
  }
  entry->newer = entry->older = nullptr;
}

void SessionStore::PushMru(Shard& shard, Entry* entry) {
  entry->newer = nullptr;
  entry->older = shard.mru;
  if (shard.mru != nullptr) shard.mru->newer = entry;
  shard.mru = entry;
  if (shard.lru == nullptr) shard.lru = entry;
}

void SessionStore::EvictUnderCap(Shard& shard, bool measure) {
  // O(1) per victim: the LRU end of the intrusive list *is* the oldest
  // entry — no full-map stamp scan. Entries pinned by an in-flight batch
  // (use_count > 1: the map holds one reference, handles the rest) are
  // walked past, not evicted: dropping one's map entry mid-batch would
  // fork the user's session, and its memory would survive anyway. With
  // every entry pinned the shard transiently exceeds its cap by at most
  // the batch size; the next unpinned Acquire shrinks it back.
  while (shard.cap > 0 &&
         static_cast<int>(shard.sessions.size()) >= shard.cap) {
    Entry* victim = shard.lru;
    while (victim != nullptr && victim->state.use_count() > 1) {
      victim = victim->newer;  // pinned: skip toward the MRU end
    }
    if (victim == nullptr) break;  // everything pinned: overshoot
    Unlink(shard, victim);
    shard.sessions.erase(victim->user);
    size_.fetch_sub(1, std::memory_order_relaxed);
    if (measure) ServeMetrics().evictions.Add();
  }
}

SessionStore::Handle SessionStore::Acquire(
    int user, const std::vector<data::Step>* bootstrap,
    const std::shared_ptr<models::SequentialRecommender>& model,
    uint64_t version) {
  const bool measure = metrics::Enabled();
  const bool sharded = shards_.size() > 1;
  Shard& shard = ShardOf(user);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.sessions.find(user);
  if (it != shard.sessions.end()) {
    if (it->second.version == version) {
      // Touch: move to the MRU end of this shard's recency list.
      Unlink(shard, &it->second);
      PushMru(shard, &it->second);
      if (measure) {
        ServeMetrics().session_hits.Add();
        if (sharded) ServeMetrics().shard_store_hits.Add();
      }
      return it->second.state;
    }
    // Stale: built by a different model version. Never advance or serve it
    // — drop the entry and fall through to the miss path, which rebuilds
    // from the bootstrap replay under the current model. Any handle still
    // pinning the old state keeps it alive, and that handle's batch pins
    // the ServedModel it started on, so the state cannot outlive its
    // weights.
    Unlink(shard, &it->second);
    shard.sessions.erase(it);
    size_.fetch_sub(1, std::memory_order_relaxed);
    if (measure) ServeMetrics().stale_rebuilds.Add();
  }
  EvictUnderCap(shard, measure);
  Entry entry;
  entry.state = model->NewSessionState(user);
  entry.model = model;
  entry.version = version;
  entry.user = user;
  if (bootstrap != nullptr) {
    // Replay the prior history into the fresh state. Only the most recent
    // max_history steps can influence scoring (ScoreAll truncates), so the
    // replay starts at that suffix: O(max_history) however long the
    // history is.
    const size_t cap = static_cast<size_t>(model->config().max_history);
    const size_t start =
        bootstrap->size() > cap ? bootstrap->size() - cap : 0;
    for (size_t i = start; i < bootstrap->size(); ++i) {
      model->AdvanceState(*entry.state, (*bootstrap)[i]);
    }
  }
  auto [pos, inserted] = shard.sessions.emplace(user, std::move(entry));
  CAUSER_CHECK(inserted);
  PushMru(shard, &pos->second);
  const int total = size_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (measure) {
    ServeMetrics().session_misses.Add();
    if (sharded) ServeMetrics().shard_store_misses.Add();
    ServeMetrics().sessions.Set(static_cast<double>(total));
  }
  return pos->second.state;
}

void SessionStore::Evict(int user) {
  Shard& shard = ShardOf(user);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.sessions.find(user);
  if (it == shard.sessions.end()) return;
  Unlink(shard, &it->second);
  shard.sessions.erase(it);
  const int total = size_.fetch_sub(1, std::memory_order_relaxed) - 1;
  if (metrics::Enabled()) {
    ServeMetrics().sessions.Set(static_cast<double>(total));
  }
}

int SessionStore::size() const {
  return size_.load(std::memory_order_relaxed);
}

}  // namespace causer::serve
