#include "serve/session_store.h"

#include <limits>
#include <utility>

#include "common/log.h"

namespace causer::serve {

ServeMetricsT& ServeMetrics() {
  static ServeMetricsT m{
      metrics::GetCounter("serve.requests_total", "requests",
                          "Scoring requests handled by the serving engine."),
      metrics::GetCounter("serve.batches_total", "batches",
                          "Micro-batches dispatched (coalesced request "
                          "groups scored together)."),
      metrics::GetCounter("serve.session_hits_total", "hits",
                          "Requests whose user already had a cached "
                          "incremental session state."),
      metrics::GetCounter("serve.session_misses_total", "misses",
                          "Requests that created a session state (first "
                          "sight or post-eviction bootstrap replay)."),
      metrics::GetCounter("serve.session_evictions_total", "evictions",
                          "Sessions evicted by the store's LRU cap."),
      metrics::GetGauge("serve.sessions", "sessions",
                        "Incremental session states currently cached."),
      metrics::GetHistogram("serve.batch_size", "requests",
                            "Requests coalesced per dispatched micro-batch.",
                            {1, 2, 4, 8, 16, 32, 64, 128}),
      metrics::GetHistogram("serve.request_seconds", "seconds",
                            "End-to-end request latency through the "
                            "micro-batcher (enqueue to response).",
                            metrics::ExponentialBuckets(1e-6, 10.0, 8)),
      metrics::GetHistogram("serve.advance_seconds", "seconds",
                            "Wall time of a batch's session-advance phase.",
                            metrics::ExponentialBuckets(1e-6, 10.0, 8)),
      metrics::GetHistogram("serve.score_seconds", "seconds",
                            "Wall time of a batch's catalog-scoring phase "
                            "(batched GEMM + fused top-k, or per-request "
                            "fallback).",
                            metrics::ExponentialBuckets(1e-6, 10.0, 8)),
      metrics::GetCounter("serve.quant.batches_total", "batches",
                          "Micro-batches scored through the int8 quantized "
                          "GEMM + fp32 re-rank path."),
      metrics::GetCounter("serve.quant.rerank_candidates_total", "candidates",
                          "Int8 top-k candidates re-scored exactly in fp32 "
                          "before the final selection."),
      metrics::GetCounter("serve.quant.fallbacks_total", "batches",
                          "Micro-batches that requested int8 scoring but ran "
                          "fp32 (no quantized table, or non-finite "
                          "activations)."),
      metrics::GetCounter("serve.reload.reloads_total", "reloads",
                          "Hot model reloads published by the serving "
                          "engine (version swaps)."),
      metrics::GetCounter("serve.reload.failures_total", "failures",
                          "Rejected reload attempts (load failure or "
                          "architecture mismatch); the previous version "
                          "kept serving."),
      metrics::GetHistogram("serve.reload.seconds", "seconds",
                            "Wall time of a reload publish: quantized-table "
                            "rebuild + atomic swap (the score path is never "
                            "blocked).",
                            metrics::ExponentialBuckets(1e-6, 10.0, 8)),
      metrics::GetGauge("serve.reload.active_version", "version",
                        "Model version currently serving (monotonic, "
                        "starts at 1)."),
      metrics::GetCounter("serve.reload.stale_rebuilds_total", "sessions",
                          "Cached session states discarded on touch because "
                          "they were built by an older model version, then "
                          "rebuilt by bootstrap replay."),
  };
  return m;
}

SessionStore::SessionStore(int max_sessions)
    : max_sessions_(max_sessions) {}

SessionStore::Handle SessionStore::Acquire(
    int user, const std::vector<data::Step>* bootstrap,
    const std::shared_ptr<models::SequentialRecommender>& model,
    uint64_t version) {
  const bool measure = metrics::Enabled();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(user);
  if (it != sessions_.end()) {
    if (it->second.version == version) {
      it->second.stamp = ++clock_;
      if (measure) ServeMetrics().session_hits.Add();
      return it->second.state;
    }
    // Stale: built by a different model version. Never advance or serve it
    // — drop the entry and fall through to the miss path, which rebuilds
    // from the bootstrap replay under the current model. Any handle still
    // pinning the old state keeps it alive, and that handle's batch pins
    // the ServedModel it started on, so the state cannot outlive its
    // weights.
    sessions_.erase(it);
    if (measure) ServeMetrics().stale_rebuilds.Add();
  }
  // Linear LRU scan: the store holds ~max_sessions entries and evictions
  // are rare next to scoring work, so an index structure would buy nothing
  // at this scale. Entries pinned by an in-flight batch (use_count > 1:
  // handles only ever multiply under this mutex) are skipped — evicting
  // one would not free memory anyway, and dropping its map entry
  // mid-batch would fork the user's session. With every entry pinned the
  // store transiently exceeds the cap by at most the batch size; the loop
  // shrinks it back on the next Acquire that finds unpinned victims.
  while (max_sessions_ > 0 &&
         static_cast<int>(sessions_.size()) >= max_sessions_) {
    auto victim = sessions_.end();
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (auto cand = sessions_.begin(); cand != sessions_.end(); ++cand) {
      if (cand->second.state.use_count() > 1) continue;  // pinned
      if (cand->second.stamp < oldest) {
        oldest = cand->second.stamp;
        victim = cand;
      }
    }
    if (victim == sessions_.end()) break;  // everything pinned: overshoot
    sessions_.erase(victim);
    if (measure) ServeMetrics().evictions.Add();
  }
  Entry entry;
  entry.state = model->NewSessionState(user);
  entry.model = model;
  entry.version = version;
  entry.stamp = ++clock_;
  if (bootstrap != nullptr) {
    // Replay the prior history into the fresh state. Only the most recent
    // max_history steps can influence scoring (ScoreAll truncates), so the
    // replay starts at that suffix: O(max_history) however long the
    // history is.
    const size_t cap = static_cast<size_t>(model->config().max_history);
    const size_t start =
        bootstrap->size() > cap ? bootstrap->size() - cap : 0;
    for (size_t i = start; i < bootstrap->size(); ++i) {
      model->AdvanceState(*entry.state, (*bootstrap)[i]);
    }
  }
  auto [pos, inserted] = sessions_.emplace(user, std::move(entry));
  CAUSER_CHECK(inserted);
  if (measure) {
    ServeMetrics().session_misses.Add();
    ServeMetrics().sessions.Set(static_cast<double>(sessions_.size()));
  }
  return pos->second.state;
}

void SessionStore::Evict(int user) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(user);
  if (metrics::Enabled()) {
    ServeMetrics().sessions.Set(static_cast<double>(sessions_.size()));
  }
}

int SessionStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sessions_.size());
}

}  // namespace causer::serve
