#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "common/fault.h"
#include "common/log.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "eval/metrics.h"
#include "tensor/kernels.h"
#include "tensor/primitives/primitives.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"

namespace causer::serve {

namespace {

/// Feeds one sharded scoring pass's per-shard wall times into the
/// serve.shard.* instruments: a histogram observation per shard and the
/// imbalance gauge (max/mean — 1.0 means the static row split kept every
/// shard equally busy). Caller checks metrics::Enabled().
void ObserveShardTimes(const double* seconds, int count) {
  if (count <= 1) return;
  double sum = 0.0;
  double worst = 0.0;
  for (int s = 0; s < count; ++s) {
    ServeMetrics().shard_batch_seconds.Observe(seconds[s]);
    sum += seconds[s];
    worst = std::max(worst, seconds[s]);
  }
  if (sum > 0.0) {
    ServeMetrics().shard_imbalance.Set(worst * count / sum);
  }
}

}  // namespace

ServingEngine::ServingEngine(
    std::shared_ptr<models::SequentialRecommender> model,
    const ServingConfig& config)
    : config_([&config] {
        ServingConfig c = config;
        c.batch_max = std::max(1, c.batch_max);
        c.batch_wait_us = std::max(0, c.batch_wait_us);
        c.top_k = std::max(1, c.top_k);
        // A negative capacity must not silently mean unbounded: the store
        // receives the clamped value, and 0 is the documented "no cap".
        c.max_sessions = std::max(0, c.max_sessions);
        // A re-rank narrower than the response would drop results.
        c.rerank_k = std::max(std::max(1, c.top_k), c.rerank_k);
        c.score_shards = std::max(1, c.score_shards);
        c.session_shards = std::max(1, c.session_shards);
        return c;
      }()),
      store_(config_.max_sessions, config_.session_shards) {
  CAUSER_CHECK(model != nullptr);
  served_.store(BuildServed(std::move(model), 1, "initial"),
                std::memory_order_release);
  if (metrics::Enabled()) ServeMetrics().active_version.Set(1.0);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

ServingEngine::ServingEngine(models::SequentialRecommender& model,
                             const ServingConfig& config)
    : ServingEngine(std::shared_ptr<models::SequentialRecommender>(
                        &model, [](models::SequentialRecommender*) {}),
                    config) {}

ServingEngine::~ServingEngine() { Stop(); }

std::shared_ptr<const ServingEngine::ServedModel> ServingEngine::BuildServed(
    std::shared_ptr<models::SequentialRecommender> model, uint64_t version,
    const std::string& source) {
  auto served = std::make_shared<ServedModel>();
  served->version = version;
  served->model = std::move(model);
  served->source = source;
  if (config_.quantize_int8) {
    // Calibrate (or fetch the model's cached) quantized table up front so
    // the first batch doesn't pay the absmax pass, and so an unquantizable
    // model is reported once per version instead of per batch. On reload
    // this runs on the reloader's thread while the old version keeps
    // scoring.
    served->qtable = served->model->QuantizedItemTable();
    if (served->qtable == nullptr) {
      CAUSER_LOG(Warning)
          << "int8 scoring requested but " << served->model->name()
          << " has no quantizable item table; serving fp32";
    }
  }
  return served;
}

uint64_t ServingEngine::Reload(
    std::shared_ptr<models::SequentialRecommender> model,
    const std::string& source) {
  const bool measure = metrics::Enabled();
  std::lock_guard<std::mutex> lock(reload_mu_);
  Stopwatch watch;
  const auto current = served_.load(std::memory_order_acquire);
  if (model == nullptr ||
      model->config().num_items != current->model->config().num_items) {
    // The catalog size is load-bearing: the server validates request item
    // ids against it once at startup, and clients key cached expectations
    // on it. A model of a different shape is a deployment error, not a
    // reload.
    CAUSER_LOG(Warning) << "model reload rejected (" << source << "): "
                        << (model == nullptr ? "no model"
                                             : "catalog size mismatch");
    if (measure) ServeMetrics().reload_failures.Add();
    return 0;
  }
  const auto next = BuildServed(std::move(model), current->version + 1,
                                source);
  // The swap itself: one atomic store. Batches already running keep the
  // ServedModel they pinned; the next batch (and the session store's
  // version stamps, via the version it passes to Acquire) sees the new
  // one. Nothing on the score path blocks on reload_mu_.
  served_.store(next, std::memory_order_release);
  if (measure) {
    ServeMetrics().reloads.Add();
    ServeMetrics().active_version.Set(static_cast<double>(next->version));
    ServeMetrics().reload_seconds.Observe(watch.ElapsedSeconds());
  }
  return next->version;
}

uint64_t ServingEngine::active_version() const {
  return served_.load(std::memory_order_acquire)->version;
}

std::shared_ptr<const models::SequentialRecommender> ServingEngine::model()
    const {
  return served_.load(std::memory_order_acquire)->model;
}

void ServingEngine::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

Response ServingEngine::Handle(const Request& request) {
  Stopwatch watch;
  Pending pending;
  pending.request = &request;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) {
      // The dispatcher may already have drained and exited; enqueueing now
      // would block on done_cv_ forever. Reject instead of hanging.
      Response rejected;
      rejected.status = ResponseStatus::kShuttingDown;
      return rejected;
    }
    queue_.push_back(&pending);
    queue_cv_.notify_one();
    done_cv_.wait(lock, [&] { return pending.done; });
  }
  if (metrics::Enabled()) {
    ServeMetrics().request_seconds.Observe(watch.ElapsedSeconds());
  }
  return std::move(pending.response);
}

std::vector<Response> ServingEngine::ScoreBatch(
    const std::vector<Request>& requests) {
  std::vector<Pending> pendings(requests.size());
  std::vector<Pending*> batch;
  batch.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    pendings[i].request = &requests[i];
    batch.push_back(&pendings[i]);
  }
  if (!batch.empty()) {
    Stopwatch watch;
    {
      std::lock_guard<std::mutex> batch_lock(batch_mu_);
      ProcessBatch(batch);
    }
    if (metrics::Enabled()) {
      // Latency parity with Handle: the synchronous path must feed the
      // same histogram, one observation per request, or replay/test
      // traffic undercounts serve.request_seconds.
      const double elapsed = watch.ElapsedSeconds();
      for (size_t i = 0; i < batch.size(); ++i) {
        ServeMetrics().request_seconds.Observe(elapsed);
      }
    }
  }
  std::vector<Response> responses;
  responses.reserve(pendings.size());
  for (Pending& pending : pendings) {
    responses.push_back(std::move(pending.response));
  }
  return responses;
}

void ServingEngine::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    // A request is waiting: linger up to batch_wait_us for peers to
    // coalesce, but dispatch immediately once the batch is full (or on
    // shutdown, to drain).
    if (config_.batch_wait_us > 0 &&
        static_cast<int>(queue_.size()) < config_.batch_max) {
      queue_cv_.wait_for(
          lock, std::chrono::microseconds(config_.batch_wait_us), [&] {
            return stop_ ||
                   static_cast<int>(queue_.size()) >= config_.batch_max;
          });
    }
    std::vector<Pending*> batch;
    while (!queue_.empty() &&
           static_cast<int>(batch.size()) < config_.batch_max) {
      batch.push_back(queue_.front());
      queue_.pop_front();
    }
    lock.unlock();
    {
      std::lock_guard<std::mutex> batch_lock(batch_mu_);
      ProcessBatch(batch);
    }
    lock.lock();
    for (Pending* pending : batch) pending->done = true;
    done_cv_.notify_all();
  }
}

bool ServingEngine::ScoreRowsQuantized(
    const ServedModel& served, const float* reps, int rows, int dim,
    int vocab, const tensor::Tensor* table, const std::vector<int>& gemm_rows,
    std::vector<Response>& unique_responses) {
  std::vector<std::int8_t> qreps(static_cast<size_t>(rows) * dim);
  std::vector<float> rep_scales(rows);
  if (!tensor::QuantizeRows(reps, rows, dim, qreps.data(),
                            rep_scales.data())) {
    return false;
  }
  const bool measure = metrics::Enabled();
  const int k = config_.top_k;
  const int kq = std::min(vocab, config_.rerank_k);
  std::vector<tensor::kernels::TopKEntry> cands(static_cast<size_t>(rows) *
                                                kq);
  if (config_.score_shards > 1) {
    std::vector<double> shard_seconds(
        measure ? static_cast<size_t>(config_.score_shards) : 0);
    const int used = tensor::kernels::MatMulTopKQSharded(
        qreps.data(), rep_scales.data(), served.qtable->data.data(),
        served.qtable->scales.data(), rows, dim, vocab, kq,
        config_.score_shards, cands.data(),
        measure ? shard_seconds.data() : nullptr);
    if (measure) ObserveShardTimes(shard_seconds.data(), used);
  } else {
    tensor::kernels::MatMulTopKQ(qreps.data(), rep_scales.data(),
                                 served.qtable->data.data(),
                                 served.qtable->scales.data(), rows, dim,
                                 vocab, kq, cands.data());
  }
  // Exact fp32 re-rank: ops.dot is the same zero-seeded ascending-k chain
  // MatMulTopK scores with, so every returned score carries the fp32
  // path's bits; with rerank_k >= vocab every item is a candidate and the
  // whole response is provably identical to the fp32 branch.
  const tensor::primitives::Ops& ops = tensor::primitives::Active();
  const float* tbl = table->data().data();
  std::vector<tensor::kernels::TopKEntry> rerank;
  rerank.reserve(kq);
  size_t rescored = 0;
  for (int r = 0; r < rows; ++r) {
    const float* rep = reps + static_cast<size_t>(r) * dim;
    const tensor::kernels::TopKEntry* crow =
        cands.data() + static_cast<size_t>(r) * kq;
    rerank.clear();
    for (int j = 0; j < kq && crow[j].index >= 0; ++j) {
      rerank.push_back(
          {crow[j].index,
           ops.dot(dim, rep, tbl + static_cast<size_t>(crow[j].index) * dim)});
    }
    rescored += rerank.size();
    // eval::TopK's total order, same as the kernels' selection heaps.
    std::sort(rerank.begin(), rerank.end(),
              [](const tensor::kernels::TopKEntry& x,
                 const tensor::kernels::TopKEntry& y) {
                if (x.score != y.score) return x.score > y.score;
                return x.index < y.index;
              });
    Response& response = unique_responses[gemm_rows[r]];
    const int take = std::min(k, static_cast<int>(rerank.size()));
    for (int j = 0; j < take; ++j) {
      response.items.push_back(rerank[j].index);
      response.scores.push_back(rerank[j].score);
    }
  }
  if (measure) {
    ServeMetrics().quant_batches.Add();
    ServeMetrics().quant_rerank.Add(static_cast<double>(rescored));
  }
  return true;
}

void ServingEngine::ProcessBatch(const std::vector<Pending*>& batch) {
  const bool measure = metrics::Enabled();
  trace::TraceSpan batch_span("serve.batch");
  batch_span.AddArg("size", static_cast<double>(batch.size()));
  if (measure) {
    ServeMetrics().requests.Add(static_cast<double>(batch.size()));
    ServeMetrics().batches.Add();
    ServeMetrics().batch_size.Observe(static_cast<double>(batch.size()));
  }

  // Pin the current model version for the whole batch: one atomic load,
  // no lock. A Reload publishing mid-batch swaps served_ under us, but
  // this shared_ptr keeps our version (weights + quantized table) alive
  // and every step below uses it — the batch is bit-exact for the version
  // it started on.
  const std::shared_ptr<const ServedModel> served =
      served_.load(std::memory_order_acquire);
  models::SequentialRecommender& model = *served->model;
  if (fault::ShouldFail("serve.reload_mid_batch")) {
    // Chaos harness: widen the pin-to-score window so a concurrent Reload
    // reliably lands inside it; the assertions above must keep holding.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Phase 1 — advance sessions in arrival order. Duplicate users in one
  // batch fold into a single session: each append lands in order and every
  // duplicate scores the final state (exactly what sequential per-request
  // handling would produce). The handles pin every acquired session for
  // the whole batch, so a later Acquire's LRU eviction cannot free a state
  // Phase 2 still reads.
  std::vector<SessionStore::Handle> states(batch.size());
  std::vector<int> uniques;           // batch index of each unique user
  std::unordered_map<int, int> seen;  // user -> position in `uniques`
  std::vector<int> unique_of(batch.size());
  {
    Stopwatch watch;
    trace::TraceSpan span("serve.advance");
    for (size_t i = 0; i < batch.size(); ++i) {
      const Request& request = *batch[i]->request;
      states[i] = store_.Acquire(request.user, request.bootstrap,
                                 served->model, served->version);
      if (request.append != nullptr) {
        model.AdvanceState(*states[i], *request.append);
      }
      auto [it, inserted] =
          seen.emplace(request.user, static_cast<int>(uniques.size()));
      if (inserted) uniques.push_back(static_cast<int>(i));
      unique_of[i] = it->second;
    }
    if (measure) {
      ServeMetrics().advance_seconds.Observe(watch.ElapsedSeconds());
    }
  }

  // Phase 2 — score each unique user once. When the model exposes the
  // single-inner-product form, stack the reps into [B,d] and run one fused
  // GEMM + top-k over the catalog; otherwise (or for states that decline,
  // e.g. Causer's grouped scoring) fall back to per-user ScoreFromState.
  const int num_unique = static_cast<int>(uniques.size());
  const int k = config_.top_k;
  std::vector<Response> unique_responses(num_unique);
  {
    Stopwatch watch;
    trace::TraceSpan span("serve.score");
    span.AddArg("unique_users", static_cast<double>(num_unique));
    const tensor::Tensor* table = model.OutputItemTable();
    std::vector<int> fallback;
    std::vector<int> gemm_rows;  // unique index of each packed rep row
    std::vector<float> reps;
    if (table != nullptr) {
      const int dim = table->cols();
      reps.resize(static_cast<size_t>(num_unique) * dim);
      for (int u = 0; u < num_unique; ++u) {
        float* row = reps.data() + static_cast<size_t>(gemm_rows.size()) * dim;
        if (model.StateRep(*states[uniques[u]], row)) {
          gemm_rows.push_back(u);
        } else {
          fallback.push_back(u);
        }
      }
    } else {
      for (int u = 0; u < num_unique; ++u) fallback.push_back(u);
    }
    bool quantized = false;
    if (!gemm_rows.empty()) {
      const int rows = static_cast<int>(gemm_rows.size());
      const int dim = table->cols();
      const int vocab = table->rows();
      if (served->qtable != nullptr) {
        quantized = ScoreRowsQuantized(*served, reps.data(), rows, dim,
                                       vocab, table, gemm_rows,
                                       unique_responses);
      }
      if (!quantized) {
        std::vector<tensor::kernels::TopKEntry> entries(
            static_cast<size_t>(rows) * k);
        if (config_.score_shards > 1) {
          std::vector<double> shard_seconds(
              measure ? static_cast<size_t>(config_.score_shards) : 0);
          const int used = tensor::kernels::MatMulTopKSharded(
              reps.data(), table->data().data(), rows, dim, vocab, k,
              config_.score_shards, entries.data(),
              measure ? shard_seconds.data() : nullptr);
          if (measure) ObserveShardTimes(shard_seconds.data(), used);
        } else {
          tensor::kernels::MatMulTopK(reps.data(), table->data().data(),
                                      rows, dim, vocab, k, entries.data());
        }
        for (int r = 0; r < rows; ++r) {
          Response& response = unique_responses[gemm_rows[r]];
          const tensor::kernels::TopKEntry* row =
              entries.data() + static_cast<size_t>(r) * k;
          for (int j = 0; j < k && row[j].index >= 0; ++j) {
            response.items.push_back(row[j].index);
            response.scores.push_back(row[j].score);
          }
        }
      }
    }
    if (measure && config_.quantize_int8 && !quantized) {
      ServeMetrics().quant_fallbacks.Add();
    }
    for (int u : fallback) {
      const std::vector<float> scores =
          model.ScoreFromState(*states[uniques[u]]);
      Response& response = unique_responses[u];
      for (int item : eval::TopK(scores, k)) {
        response.items.push_back(item);
        response.scores.push_back(scores[item]);
      }
    }
    if (measure) {
      ServeMetrics().score_seconds.Observe(watch.ElapsedSeconds());
    }
  }

  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i]->response = unique_responses[unique_of[i]];
    batch[i]->response.model_version = served->version;
  }
}

}  // namespace causer::serve
