#ifndef CAUSER_SERVE_SERVER_H_
#define CAUSER_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "serve/engine.h"
#include "serve/protocol.h"

namespace causer::serve {

/// Network front-end knobs. The engine's own knobs (batch_max,
/// batch_wait_us, top_k, max_sessions) stay on ServingConfig.
struct ServerConfig {
  /// Numeric IPv4 address to bind.
  std::string host = "127.0.0.1";
  /// TCP port; 0 = ephemeral (read the bound port from port()).
  int port = 0;
  /// Admission cap: requests queued across both priority lanes beyond
  /// which new arrivals are rejected with kQueueFull (backpressure).
  int queue_depth = 256;
  /// Scheduler threads pulling lane work into the engine; concurrent
  /// workers are what the micro-batcher coalesces into one GEMM.
  int workers = 2;
  /// Default per-request deadline applied when a frame carries 0;
  /// 0 = no deadline.
  int deadline_ms = 0;
  /// listen(2) backlog.
  int backlog = 128;
  /// Per-connection read deadline (slow-loris guard): a connection whose
  /// peer sends nothing — or stalls mid-frame — for this long is closed
  /// and counted by server.conn_idle_timeout_total, instead of pinning a
  /// reader thread forever. 0 = no deadline.
  int idle_timeout_ms = 0;
  /// Invoked on a kReload control frame (protocol.h). Returns whether the
  /// reload took; the frame is acked with kOk + the new active version, or
  /// kReloadFailed. Runs on the connection's reader thread and may be
  /// called concurrently from several connections — the hook serializes
  /// itself (ServingEngine::Reload already does). Null = reloads over the
  /// wire are rejected.
  std::function<bool()> on_reload;
};

/// Self-contained TCP front-end over a ServingEngine: a blocking accept
/// loop (one reader thread per connection, pipelining allowed), a two-lane
/// priority scheduler with per-request deadlines and queue-depth admission
/// control, and worker threads that feed the engine's micro-batcher.
/// Graceful drain: BeginDrain() stops accepting and admitting while queued
/// and in-flight requests complete; Shutdown() then closes every
/// connection, so no client is left hanging. Wire format: protocol.h.
class Server {
 public:
  Server(ServingEngine& engine, const ServerConfig& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and starts the accept loop and workers. False if the listen
  /// socket could not be bound.
  bool Start();

  /// Port actually bound (after Start(); useful with config.port = 0).
  int port() const { return port_; }

  /// Stops accepting connections and admitting requests: the listener
  /// closes and readers answer every later request with kShuttingDown.
  /// Already-queued and in-flight requests keep flowing to completion.
  /// Idempotent, non-blocking.
  void BeginDrain();

  /// BeginDrain(), then blocks until every queued request was answered,
  /// closes all connections and joins all threads. Idempotent. The engine
  /// is left running (the caller owns its lifetime).
  void Shutdown();

  /// Requests currently queued in the scheduler (both lanes).
  int queue_size() const;

  /// Test hook: while paused, workers stop popping the lanes — queued
  /// requests age deterministically (deadline/admission/priority tests).
  void PauseWorkersForTest(bool paused);

 private:
  /// One accepted socket. Jobs hold shared ownership so a worker can
  /// still write its response after the reader saw EOF; the write mutex
  /// serializes interleaved responses on pipelined connections.
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    int fd = -1;
    std::mutex write_mu;
  };

  /// A decoded, admitted request waiting for a worker. Owns the Step
  /// storage the engine's Request points into.
  struct Job {
    std::shared_ptr<Connection> conn;
    uint32_t request_id = 0;
    int user = 0;
    wire::Priority priority = wire::Priority::kNormal;
    data::Step append;
    bool has_append = false;
    std::vector<data::Step> bootstrap;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
    std::chrono::steady_clock::time_point admitted;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop();
  /// Scores one popped job through the engine (or rejects it on an
  /// expired deadline) and writes its response.
  void ProcessJob(Job& job);
  void WriteResponse(Connection& conn, const wire::ResponseFrame& frame);
  void Reject(Connection& conn, uint32_t request_id, wire::Status status);

  ServingEngine& engine_;
  const ServerConfig config_;
  const int num_items_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  mutable std::mutex sched_mu_;
  std::condition_variable sched_cv_;    // workers wait for lane work
  std::condition_variable drained_cv_;  // Shutdown waits for quiescence
  std::deque<std::unique_ptr<Job>> high_lane_;
  std::deque<std::unique_ptr<Job>> normal_lane_;
  int in_flight_jobs_ = 0;  // popped but not yet responded
  bool draining_ = false;
  bool paused_ = false;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> readers_;
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace causer::serve

#endif  // CAUSER_SERVE_SERVER_H_
