#include "serve/model_registry.h"

#include <utility>

#include "core/checkpoint.h"
#include "nn/serialization.h"

namespace causer::serve {

ModelRegistry::ModelRegistry(Factory factory)
    : factory_(std::move(factory)) {}

std::shared_ptr<const ModelVersion> ModelRegistry::Current() const {
  return current_.load(std::memory_order_acquire);
}

std::shared_ptr<const ModelVersion> ModelRegistry::Publish(
    std::shared_ptr<models::SequentialRecommender> model,
    std::string source) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  auto entry = std::make_shared<ModelVersion>();
  entry->version = next_version_++;
  entry->model = std::move(model);
  entry->source = std::move(source);
  current_.store(entry, std::memory_order_release);
  return entry;
}

std::shared_ptr<const ModelVersion> ModelRegistry::LoadAndPublish(
    const std::string& path) {
  if (!factory_) return nullptr;
  std::unique_ptr<models::SequentialRecommender> model = factory_();
  if (model == nullptr) return nullptr;
  // A training checkpoint validates magic, CRCs and the architecture guard
  // before mutating the model, so trying it first is safe on any file; a
  // bare parameter dump is the fallback.
  models::FitResumeState resume;  // discarded — serving needs weights only
  if (!core::LoadTrainingCheckpoint(*model, &resume, path) &&
      !nn::LoadParameters(*model, path)) {
    return nullptr;
  }
  model->OnParametersRestored();
  return Publish(std::move(model), path);
}

}  // namespace causer::serve
