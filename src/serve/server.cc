#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "common/metrics.h"
#include "common/net.h"
#include "common/trace.h"

namespace causer::serve {

namespace {

/// Server front-end instruments (see docs/OBSERVABILITY.md), registered
/// together on first touch. The engine behind the server keeps its own
/// serve.* group; these cover what only the network layer sees — admission
/// decisions, queueing and connection churn.
struct ServerMetricsT {
  metrics::Counter& connections;        ///< server.connections_total
  metrics::Counter& requests;           ///< server.requests_total
  metrics::Counter& rejected_queue;     ///< server.rejected_queue_full_total
  metrics::Counter& rejected_deadline;  ///< server.rejected_deadline_total
  metrics::Counter& rejected_shutdown;  ///< server.rejected_shutdown_total
  metrics::Counter& bad_requests;       ///< server.bad_requests_total
  metrics::Counter& protocol_errors;    ///< server.protocol_errors_total
  metrics::Counter& idle_timeouts;      ///< server.conn_idle_timeout_total
  metrics::Gauge& open_connections;     ///< server.open_connections
  metrics::Gauge& queue_depth;          ///< server.queue_depth
  metrics::Histogram& queue_seconds;    ///< server.queue_seconds
  metrics::Histogram& request_seconds;  ///< server.request_seconds
};

ServerMetricsT& ServerMetrics() {
  static ServerMetricsT m{
      metrics::GetCounter("server.connections_total", "connections",
                          "TCP connections accepted by the serving "
                          "front-end."),
      metrics::GetCounter("server.requests_total", "requests",
                          "Request frames received, including rejected "
                          "ones."),
      metrics::GetCounter("server.rejected_queue_full_total", "requests",
                          "Requests rejected by queue-depth admission "
                          "control (backpressure)."),
      metrics::GetCounter("server.rejected_deadline_total", "requests",
                          "Requests whose deadline expired while queued; "
                          "rejected before scoring."),
      metrics::GetCounter("server.rejected_shutdown_total", "requests",
                          "Requests rejected because the server was "
                          "draining."),
      metrics::GetCounter("server.bad_requests_total", "requests",
                          "Semantically invalid requests answered with "
                          "bad_request (e.g. item id outside the "
                          "catalog)."),
      metrics::GetCounter("server.protocol_errors_total", "errors",
                          "Connections dropped on undecodable frames or "
                          "oversized declared lengths."),
      metrics::GetCounter("server.conn_idle_timeout_total", "connections",
                          "Connections closed by the per-connection read "
                          "deadline (slow-loris guard): the peer sent "
                          "nothing, or stalled mid-frame, for "
                          "--conn-idle-timeout-ms."),
      metrics::GetGauge("server.open_connections", "connections",
                        "Currently accepted TCP connections."),
      metrics::GetGauge("server.queue_depth", "requests",
                        "Requests queued in the scheduler lanes (the "
                        "admission-control variable)."),
      metrics::GetHistogram("server.queue_seconds", "seconds",
                            "Time from admission to a worker popping the "
                            "request (scheduler queueing delay).",
                            metrics::ExponentialBuckets(1e-6, 10.0, 8)),
      metrics::GetHistogram("server.request_seconds", "seconds",
                            "Server-side latency from admission to the "
                            "response write, including rejections.",
                            metrics::ExponentialBuckets(1e-6, 10.0, 8)),
  };
  return m;
}

}  // namespace

Server::Connection::~Connection() { net::CloseSocket(fd); }

Server::Server(ServingEngine& engine, const ServerConfig& config)
    : engine_(engine),
      config_([&config] {
        ServerConfig c = config;
        c.queue_depth = std::max(1, c.queue_depth);
        c.workers = std::max(1, c.workers);
        c.deadline_ms = std::max(0, c.deadline_ms);
        c.backlog = std::max(1, c.backlog);
        c.idle_timeout_ms = std::max(0, c.idle_timeout_ms);
        return c;
      }()),
      num_items_(engine.model()->config().num_items) {}

Server::~Server() { Shutdown(); }

bool Server::Start() {
  CAUSER_CHECK(!started_);
  listen_fd_ =
      net::ListenTcp(config_.host, config_.port, config_.backlog, &port_);
  if (listen_fd_ < 0) return false;
  started_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(config_.workers);
  for (int w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return true;
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = net::AcceptConnection(listen_fd_);
    if (fd < 0) return;  // listener closed by BeginDrain (or failed)
    auto conn = std::make_shared<Connection>(fd);
    bool draining;
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      draining = draining_;
    }
    if (draining) continue;  // raced BeginDrain: Connection dtor closes fd
    if (metrics::Enabled()) ServerMetrics().connections.Add();
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    if (metrics::Enabled()) {
      ServerMetrics().open_connections.Set(
          static_cast<double>(conns_.size()));
    }
    readers_.emplace_back(
        [this, conn = std::move(conn)] { ReaderLoop(conn); });
  }
}

void Server::ReaderLoop(std::shared_ptr<Connection> conn) {
  if (config_.idle_timeout_ms > 0) {
    // Slow-loris guard: without a receive deadline, a peer that stalls —
    // idle between frames or, worse, mid-frame — pins this reader thread
    // (and its connection slot) forever.
    net::SetRecvTimeout(conn->fd, config_.idle_timeout_ms / 1000.0);
  }
  std::vector<uint8_t> payload;
  wire::RequestFrame frame;
  net::ReadError read_error = net::ReadError::kNone;
  while (net::ReadFrame(conn->fd, &payload, wire::kMaxFrameBytes,
                        &read_error)) {
    const bool measure = metrics::Enabled();
    if (measure) ServerMetrics().requests.Add();
    if (!wire::DecodeRequest(payload, &frame)) {
      // Undecodable bytes mean the stream framing can no longer be
      // trusted; drop the connection rather than answer garbage.
      if (measure) ServerMetrics().protocol_errors.Add();
      break;
    }
    if (frame.op == wire::Op::kReload) {
      // Control frame: same effect as SIGHUP, acked inline from this
      // reader thread (reloads are rare and never block the score path).
      wire::ResponseFrame ack;
      ack.request_id = frame.request_id;
      const bool reloaded = config_.on_reload != nullptr &&
                            frame.append.empty() && frame.bootstrap.empty() &&
                            config_.on_reload();
      ack.status = reloaded ? wire::Status::kOk : wire::Status::kReloadFailed;
      ack.model_version = static_cast<uint32_t>(engine_.active_version());
      WriteResponse(*conn, ack);
      continue;
    }
    bool bad = frame.user < 0;
    for (int32_t item : frame.append) {
      bad = bad || item < 0 || item >= num_items_;
    }
    for (const auto& step : frame.bootstrap) {
      for (int32_t item : step) {
        bad = bad || item < 0 || item >= num_items_;
      }
    }
    if (bad) {
      if (measure) ServerMetrics().bad_requests.Add();
      Reject(*conn, frame.request_id, wire::Status::kBadRequest);
      continue;
    }

    auto job = std::make_unique<Job>();
    job->conn = conn;
    job->request_id = frame.request_id;
    job->user = frame.user;
    job->priority = frame.priority;
    job->has_append = !frame.append.empty();
    if (job->has_append) {
      job->append.items.assign(frame.append.begin(), frame.append.end());
    }
    job->bootstrap.reserve(frame.bootstrap.size());
    for (const auto& step : frame.bootstrap) {
      data::Step s;
      s.items.assign(step.begin(), step.end());
      job->bootstrap.push_back(std::move(s));
    }
    const uint32_t deadline_ms = frame.deadline_ms != 0
                                     ? frame.deadline_ms
                                     : static_cast<uint32_t>(
                                           config_.deadline_ms);
    job->admitted = std::chrono::steady_clock::now();
    job->has_deadline = deadline_ms != 0;
    if (job->has_deadline) {
      job->deadline = job->admitted + std::chrono::milliseconds(deadline_ms);
    }

    // Admission under the scheduler lock: the draining flag and the depth
    // check must be atomic with the enqueue, or a drain could strand a
    // just-admitted request.
    wire::Status rejection = wire::Status::kOk;
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      if (draining_) {
        rejection = wire::Status::kShuttingDown;
      } else if (static_cast<int>(high_lane_.size() + normal_lane_.size()) >=
                 config_.queue_depth) {
        rejection = wire::Status::kQueueFull;
      } else {
        auto& lane = job->priority == wire::Priority::kHigh ? high_lane_
                                                            : normal_lane_;
        lane.push_back(std::move(job));
        if (measure) {
          ServerMetrics().queue_depth.Set(static_cast<double>(
              high_lane_.size() + normal_lane_.size()));
        }
        sched_cv_.notify_one();
      }
    }
    if (rejection != wire::Status::kOk) {
      if (measure) {
        if (rejection == wire::Status::kQueueFull) {
          ServerMetrics().rejected_queue.Add();
        } else {
          ServerMetrics().rejected_shutdown.Add();
        }
      }
      Reject(*conn, frame.request_id, rejection);
    }
  }
  if (read_error == net::ReadError::kTimeout) {
    // The read deadline expired: close the connection so the stalled peer
    // cannot hold the slot. In-flight responses for it may still be
    // written; their failed writes unwind harmlessly.
    if (metrics::Enabled()) ServerMetrics().idle_timeouts.Add();
    net::ShutdownSocket(conn->fd);
  }
}

void Server::WorkerLoop() {
  for (;;) {
    std::unique_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(sched_mu_);
      sched_cv_.wait(lock, [&] {
        const bool work =
            !paused_ && (!high_lane_.empty() || !normal_lane_.empty());
        const bool done =
            draining_ && high_lane_.empty() && normal_lane_.empty();
        return work || done;
      });
      if (high_lane_.empty() && normal_lane_.empty()) return;  // drained
      auto& lane = !high_lane_.empty() ? high_lane_ : normal_lane_;
      job = std::move(lane.front());
      lane.pop_front();
      ++in_flight_jobs_;
      if (metrics::Enabled()) {
        ServerMetrics().queue_depth.Set(
            static_cast<double>(high_lane_.size() + normal_lane_.size()));
      }
    }
    ProcessJob(*job);
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      --in_flight_jobs_;
      if (draining_ && in_flight_jobs_ == 0 && high_lane_.empty() &&
          normal_lane_.empty()) {
        drained_cv_.notify_all();
        sched_cv_.notify_all();  // wake peers so they observe "done"
      }
    }
  }
}

void Server::ProcessJob(Job& job) {
  const bool measure = metrics::Enabled();
  trace::TraceSpan span("server.request");
  span.AddArg("priority", static_cast<double>(job.priority));
  const auto popped = std::chrono::steady_clock::now();
  if (measure) {
    ServerMetrics().queue_seconds.Observe(
        std::chrono::duration<double>(popped - job.admitted).count());
  }

  wire::ResponseFrame response;
  response.request_id = job.request_id;
  if (job.has_deadline && popped > job.deadline) {
    // Expired while queued: reject before spending scoring work on a
    // response the client already gave up on.
    response.status = wire::Status::kDeadlineExceeded;
    if (measure) ServerMetrics().rejected_deadline.Add();
  } else {
    Request request;
    request.user = job.user;
    if (job.has_append) request.append = &job.append;
    request.bootstrap = &job.bootstrap;
    Response scored = engine_.Handle(request);
    if (scored.status == ResponseStatus::kOk) {
      response.status = wire::Status::kOk;
      // The version that actually scored this request — not the currently
      // active one, which a concurrent reload may already have advanced.
      response.model_version = static_cast<uint32_t>(scored.model_version);
      response.items.assign(scored.items.begin(), scored.items.end());
      response.scores = std::move(scored.scores);
    } else {
      response.status = wire::Status::kShuttingDown;
      if (measure) ServerMetrics().rejected_shutdown.Add();
    }
  }
  WriteResponse(*job.conn, response);
  if (measure) {
    ServerMetrics().request_seconds.Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      job.admitted)
            .count());
  }
}

void Server::WriteResponse(Connection& conn,
                           const wire::ResponseFrame& frame) {
  std::vector<uint8_t> payload;
  wire::EncodeResponse(frame, &payload);
  std::lock_guard<std::mutex> lock(conn.write_mu);
  // A failed write means the peer is gone or the frame went out torn
  // (net.torn_write). Either way the stream can no longer carry aligned
  // frames: shut the socket down so the peer unwinds instead of waiting
  // for the rest of a frame that will never come, and so our reader sees
  // EOF and retires the connection.
  if (!net::WriteFrame(conn.fd, payload.data(), payload.size())) {
    net::ShutdownSocket(conn.fd);
  }
}

void Server::Reject(Connection& conn, uint32_t request_id,
                    wire::Status status) {
  wire::ResponseFrame response;
  response.request_id = request_id;
  response.status = status;
  WriteResponse(conn, response);
}

int Server::queue_size() const {
  std::lock_guard<std::mutex> lock(sched_mu_);
  return static_cast<int>(high_lane_.size() + normal_lane_.size());
}

void Server::PauseWorkersForTest(bool paused) {
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    paused_ = paused;
  }
  sched_cv_.notify_all();
}

void Server::BeginDrain() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    if (draining_) return;
    draining_ = true;
  }
  // Closing the listener makes the blocking accept() return; from here on
  // connects are refused and readers reject with kShuttingDown.
  net::ShutdownSocket(listen_fd_);
  sched_cv_.notify_all();
}

void Server::Shutdown() {
  if (!started_ || joined_) return;
  BeginDrain();
  {
    // Every queued and in-flight request gets its response before any
    // socket closes: the drain contract.
    std::unique_lock<std::mutex> lock(sched_mu_);
    drained_cv_.wait(lock, [&] {
      return high_lane_.empty() && normal_lane_.empty() &&
             in_flight_jobs_ == 0;
    });
  }
  if (acceptor_.joinable()) acceptor_.join();
  net::CloseSocket(listen_fd_);
  listen_fd_ = -1;
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  {
    // Wake readers blocked in ReadFrame; Connection dtors close the fds.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) net::ShutdownSocket(conn->fd);
  }
  for (auto& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
    if (metrics::Enabled()) ServerMetrics().open_connections.Set(0.0);
  }
  joined_ = true;
}

}  // namespace causer::serve
