#ifndef CAUSER_SERVE_SESSION_STORE_H_
#define CAUSER_SERVE_SESSION_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "data/dataset.h"
#include "models/recommender.h"

namespace causer::serve {

/// Serving instruments (see docs/OBSERVABILITY.md), registered together on
/// first touch and shared by the session store and the engine.
struct ServeMetricsT {
  metrics::Counter& requests;        ///< serve.requests_total
  metrics::Counter& batches;         ///< serve.batches_total
  metrics::Counter& session_hits;    ///< serve.session_hits_total
  metrics::Counter& session_misses;  ///< serve.session_misses_total
  metrics::Counter& evictions;       ///< serve.session_evictions_total
  metrics::Gauge& sessions;          ///< serve.sessions
  metrics::Histogram& batch_size;    ///< serve.batch_size
  metrics::Histogram& request_seconds;  ///< serve.request_seconds
  metrics::Histogram& advance_seconds;  ///< serve.advance_seconds
  metrics::Histogram& score_seconds;    ///< serve.score_seconds
  metrics::Counter& quant_batches;      ///< serve.quant.batches_total
  metrics::Counter& quant_rerank;       ///< serve.quant.rerank_candidates_total
  metrics::Counter& quant_fallbacks;    ///< serve.quant.fallbacks_total
  metrics::Counter& reloads;            ///< serve.reload.reloads_total
  metrics::Counter& reload_failures;    ///< serve.reload.failures_total
  metrics::Histogram& reload_seconds;   ///< serve.reload.seconds
  metrics::Gauge& active_version;       ///< serve.reload.active_version
  metrics::Counter& stale_rebuilds;     ///< serve.reload.stale_rebuilds_total
};

/// The shared serving instrument group.
ServeMetricsT& ServeMetrics();

/// Per-user cache of incremental inference states (models::SessionState):
/// a hit turns scoring an event into an O(1) state advance instead of an
/// O(T) history replay. Bounded by `max_sessions` with least-recently-used
/// eviction; an evicted user is rebuilt from the request's bootstrap
/// history on its next appearance, so eviction only costs time, never
/// correctness. Entries are version-stamped with the model version that
/// built them: a hot reload bumps the engine's version, and a stale entry
/// is lazily rebuilt by bootstrap replay on its next touch — a state is
/// never advanced or scored by a model other than the one that created it.
/// Thread-safe; states themselves are handed out under the engine's
/// serialization (one dispatcher advances them).
class SessionStore {
 public:
  /// Shared ownership of a cached session. Holding a Handle pins the state:
  /// the LRU scan skips pinned entries, so a batch that acquires more
  /// distinct users than `max_sessions` cannot free a state an earlier
  /// request in the same batch still points at. Eviction then only drops
  /// the map entry; the state itself lives until its last Handle releases.
  using Handle = std::shared_ptr<models::SessionState>;

  /// `max_sessions` == 0 means unbounded (the engine clamps negatives).
  explicit SessionStore(int max_sessions);

  /// Returns the session for `user` under `model`/`version`, creating it
  /// on miss — replaying `bootstrap` (may be null = start empty) into the
  /// fresh state. A cached entry stamped with a different version is
  /// treated as a miss and rebuilt from `bootstrap` with the given model
  /// (SessionStates are only valid with the model that created them). The
  /// entry co-owns `model`, so a pinned pre-reload state can never outlive
  /// its weights. The handle keeps the state alive across evictions; drop
  /// it when the request's batch completes so the LRU cap can reclaim the
  /// entry.
  Handle Acquire(int user, const std::vector<data::Step>* bootstrap,
                 const std::shared_ptr<models::SequentialRecommender>& model,
                 uint64_t version);

  /// Drops a user's session (testing / explicit logout).
  void Evict(int user);

  int size() const;

 private:
  struct Entry {
    std::shared_ptr<models::SessionState> state;
    /// The model that created `state` — kept alive for as long as the
    /// entry (or a pinned Handle) might still reference the state.
    std::shared_ptr<models::SequentialRecommender> model;
    uint64_t version = 0;  // engine model version that built the state
    uint64_t stamp = 0;    // LRU clock value of the last Acquire
  };

  const int max_sessions_;

  mutable std::mutex mu_;
  std::unordered_map<int, Entry> sessions_;
  uint64_t clock_ = 0;
};

}  // namespace causer::serve

#endif  // CAUSER_SERVE_SESSION_STORE_H_
