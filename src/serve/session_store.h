#ifndef CAUSER_SERVE_SESSION_STORE_H_
#define CAUSER_SERVE_SESSION_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "data/dataset.h"
#include "models/recommender.h"

namespace causer::serve {

/// Serving instruments (see docs/OBSERVABILITY.md), registered together on
/// first touch and shared by the session store and the engine.
struct ServeMetricsT {
  metrics::Counter& requests;        ///< serve.requests_total
  metrics::Counter& batches;         ///< serve.batches_total
  metrics::Counter& session_hits;    ///< serve.session_hits_total
  metrics::Counter& session_misses;  ///< serve.session_misses_total
  metrics::Counter& evictions;       ///< serve.session_evictions_total
  metrics::Gauge& sessions;          ///< serve.sessions
  metrics::Histogram& batch_size;    ///< serve.batch_size
  metrics::Histogram& request_seconds;  ///< serve.request_seconds
  metrics::Histogram& advance_seconds;  ///< serve.advance_seconds
  metrics::Histogram& score_seconds;    ///< serve.score_seconds
  metrics::Counter& quant_batches;      ///< serve.quant.batches_total
  metrics::Counter& quant_rerank;       ///< serve.quant.rerank_candidates_total
  metrics::Counter& quant_fallbacks;    ///< serve.quant.fallbacks_total
};

/// The shared serving instrument group.
ServeMetricsT& ServeMetrics();

/// Per-user cache of incremental inference states (models::SessionState):
/// a hit turns scoring an event into an O(1) state advance instead of an
/// O(T) history replay. Bounded by `max_sessions` with least-recently-used
/// eviction; an evicted user is rebuilt from the request's bootstrap
/// history on its next appearance, so eviction only costs time, never
/// correctness. Thread-safe; states themselves are handed out under the
/// engine's serialization (one dispatcher advances them).
class SessionStore {
 public:
  /// Shared ownership of a cached session. Holding a Handle pins the state:
  /// the LRU scan skips pinned entries, so a batch that acquires more
  /// distinct users than `max_sessions` cannot free a state an earlier
  /// request in the same batch still points at. Eviction then only drops
  /// the map entry; the state itself lives until its last Handle releases.
  using Handle = std::shared_ptr<models::SessionState>;

  /// `max_sessions` == 0 means unbounded (the engine clamps negatives).
  SessionStore(models::SequentialRecommender& model, int max_sessions);

  /// Returns the session for `user`, creating it on miss — replaying
  /// `bootstrap` (may be null = start empty) into the fresh state. The
  /// handle keeps the state alive across evictions; drop it when the
  /// request's batch completes so the LRU cap can reclaim the entry.
  Handle Acquire(int user, const std::vector<data::Step>* bootstrap);

  /// Drops a user's session (testing / explicit logout).
  void Evict(int user);

  int size() const;

 private:
  struct Entry {
    std::shared_ptr<models::SessionState> state;
    uint64_t stamp = 0;  // LRU clock value of the last Acquire
  };

  models::SequentialRecommender& model_;
  const int max_sessions_;

  mutable std::mutex mu_;
  std::unordered_map<int, Entry> sessions_;
  uint64_t clock_ = 0;
};

}  // namespace causer::serve

#endif  // CAUSER_SERVE_SESSION_STORE_H_
