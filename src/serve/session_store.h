#ifndef CAUSER_SERVE_SESSION_STORE_H_
#define CAUSER_SERVE_SESSION_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "data/dataset.h"
#include "models/recommender.h"

namespace causer::serve {

/// Serving instruments (see docs/OBSERVABILITY.md), registered together on
/// first touch and shared by the session store and the engine.
struct ServeMetricsT {
  metrics::Counter& requests;        ///< serve.requests_total
  metrics::Counter& batches;         ///< serve.batches_total
  metrics::Counter& session_hits;    ///< serve.session_hits_total
  metrics::Counter& session_misses;  ///< serve.session_misses_total
  metrics::Counter& evictions;       ///< serve.session_evictions_total
  metrics::Gauge& sessions;          ///< serve.sessions
  metrics::Histogram& batch_size;    ///< serve.batch_size
  metrics::Histogram& request_seconds;  ///< serve.request_seconds
  metrics::Histogram& advance_seconds;  ///< serve.advance_seconds
  metrics::Histogram& score_seconds;    ///< serve.score_seconds
  metrics::Counter& quant_batches;      ///< serve.quant.batches_total
  metrics::Counter& quant_rerank;       ///< serve.quant.rerank_candidates_total
  metrics::Counter& quant_fallbacks;    ///< serve.quant.fallbacks_total
  metrics::Counter& reloads;            ///< serve.reload.reloads_total
  metrics::Counter& reload_failures;    ///< serve.reload.failures_total
  metrics::Histogram& reload_seconds;   ///< serve.reload.seconds
  metrics::Gauge& active_version;       ///< serve.reload.active_version
  metrics::Counter& stale_rebuilds;     ///< serve.reload.stale_rebuilds_total
  metrics::Histogram& shard_batch_seconds;  ///< serve.shard.batch_seconds
  metrics::Counter& shard_store_hits;    ///< serve.shard.store_hits_total
  metrics::Counter& shard_store_misses;  ///< serve.shard.store_misses_total
  metrics::Gauge& shard_imbalance;       ///< serve.shard.imbalance
};

/// The shared serving instrument group.
ServeMetricsT& ServeMetrics();

/// Per-user cache of incremental inference states (models::SessionState):
/// a hit turns scoring an event into an O(1) state advance instead of an
/// O(T) history replay. Bounded by `max_sessions` with least-recently-used
/// eviction; an evicted user is rebuilt from the request's bootstrap
/// history on its next appearance, so eviction only costs time, never
/// correctness. Entries are version-stamped with the model version that
/// built them: a hot reload bumps the engine's version, and a stale entry
/// is lazily rebuilt by bootstrap replay on its next touch — a state is
/// never advanced or scored by a model other than the one that created it.
///
/// The map is hash-partitioned into `shards` independent shards, each with
/// its own mutex, intrusive LRU list, and slice of the capacity — so
/// concurrent Acquire calls for different users stop serializing on one
/// lock (the single-mutex store was the first wall on the way to
/// million-user state; bench/bench_sharding.cc measures the difference).
/// A user's shard is a pure function of the user id, so per-user ordering
/// guarantees are untouched. Eviction is O(1) per victim: each shard keeps
/// recency as a doubly-linked list threaded through its entries instead of
/// scanning the whole map for the oldest stamp.
///
/// Thread-safe; states themselves are handed out under the engine's
/// serialization (one dispatcher advances them).
class SessionStore {
 public:
  /// Shared ownership of a cached session. Holding a Handle pins the state:
  /// the LRU walk skips pinned entries, so a batch that acquires more
  /// distinct users than `max_sessions` cannot free a state an earlier
  /// request in the same batch still points at. Eviction then only drops
  /// the map entry; the state itself lives until its last Handle releases.
  using Handle = std::shared_ptr<models::SessionState>;

  /// `max_sessions` == 0 means unbounded (the engine clamps negatives).
  /// `shards` is clamped to [1, max(1, max_sessions)] so every shard owns
  /// at least one slot of a bounded cache; the global cap is split across
  /// shards (first `max_sessions % shards` shards hold the remainder).
  explicit SessionStore(int max_sessions, int shards = 1);

  /// Returns the session for `user` under `model`/`version`, creating it
  /// on miss — replaying `bootstrap` (may be null = start empty) into the
  /// fresh state. A cached entry stamped with a different version is
  /// treated as a miss and rebuilt from `bootstrap` with the given model
  /// (SessionStates are only valid with the model that created them). The
  /// entry co-owns `model`, so a pinned pre-reload state can never outlive
  /// its weights. The handle keeps the state alive across evictions; drop
  /// it when the request's batch completes so the LRU cap can reclaim the
  /// entry. Only the user's shard is locked.
  Handle Acquire(int user, const std::vector<data::Step>* bootstrap,
                 const std::shared_ptr<models::SequentialRecommender>& model,
                 uint64_t version);

  /// Drops a user's session (testing / explicit logout).
  void Evict(int user);

  /// Cached sessions across all shards (atomic counter, no locks).
  int size() const;

  /// The hash-partition count after clamping.
  int shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Entry {
    std::shared_ptr<models::SessionState> state;
    /// The model that created `state` — kept alive for as long as the
    /// entry (or a pinned Handle) might still reference the state.
    std::shared_ptr<models::SequentialRecommender> model;
    uint64_t version = 0;  // engine model version that built the state
    int user = 0;          // map key, for list-driven erasure
    /// Intrusive recency list: `newer` points toward the shard's MRU end,
    /// `older` toward the LRU end. unordered_map nodes are address-stable,
    /// so the links survive rehashing.
    Entry* newer = nullptr;
    Entry* older = nullptr;
  };

  /// One hash partition: private lock, private map, private recency list,
  /// private slice of the global capacity.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<int, Entry> sessions;
    Entry* mru = nullptr;  ///< most recently used
    Entry* lru = nullptr;  ///< least recently used (first eviction victim)
    int cap = 0;           ///< 0 = unbounded
  };

  Shard& ShardOf(int user);
  /// Removes `entry` from `shard`'s recency list (list only, not the map).
  static void Unlink(Shard& shard, Entry* entry);
  /// Prepends `entry` at `shard`'s MRU end.
  static void PushMru(Shard& shard, Entry* entry);
  /// Evicts unpinned LRU entries until the shard is under its cap (or only
  /// pinned entries remain). Caller holds the shard lock.
  void EvictUnderCap(Shard& shard, bool measure);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int> size_{0};
};

}  // namespace causer::serve

#endif  // CAUSER_SERVE_SESSION_STORE_H_
