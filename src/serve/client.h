#ifndef CAUSER_SERVE_CLIENT_H_
#define CAUSER_SERVE_CLIENT_H_

#include <string>

#include "serve/protocol.h"

namespace causer::serve {

/// Minimal blocking client for the serving wire protocol (tests, benches
/// and simple tools; the open-loop load generator drives the protocol
/// directly for pipelining). One Client per thread — no internal locking.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port (numeric IPv4). False on failure.
  bool Connect(const std::string& host, int port);

  /// Writes one request frame. False on a broken connection.
  bool Send(const wire::RequestFrame& request);

  /// Blocks for the next response frame (whatever its request_id — the
  /// server may answer out of order). False on EOF/error.
  bool Receive(wire::ResponseFrame* response);

  /// Send + Receive. False on a broken connection or undecodable reply.
  bool Call(const wire::RequestFrame& request,
            wire::ResponseFrame* response);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace causer::serve

#endif  // CAUSER_SERVE_CLIENT_H_
