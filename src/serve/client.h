#ifndef CAUSER_SERVE_CLIENT_H_
#define CAUSER_SERVE_CLIENT_H_

#include <string>

#include "common/rng.h"
#include "serve/protocol.h"

namespace causer::serve {

/// CallWithRetry knobs: capped exponential backoff with decorrelating
/// jitter, bounded by the request's deadline budget.
struct RetryPolicy {
  /// Attempts in total (1 = no retry).
  int max_attempts = 5;
  /// Backoff before the second attempt; doubles per attempt.
  int initial_backoff_ms = 2;
  /// Backoff growth cap.
  int max_backoff_ms = 64;
};

/// Minimal blocking client for the serving wire protocol (tests, benches
/// and simple tools; the open-loop load generator drives the protocol
/// directly for pipelining). One Client per thread — no internal locking.
class Client {
 public:
  /// `jitter_seed` decorrelates backoff across clients (retry herds from
  /// many clients hitting a full queue must not re-collide in lockstep).
  explicit Client(uint64_t jitter_seed = 0x9E3779B97F4A7C15ull)
      : rng_(jitter_seed) {}
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port (numeric IPv4). False on failure. The address
  /// is remembered so CallWithRetry can reconnect.
  bool Connect(const std::string& host, int port);

  /// Writes one request frame. False on a broken connection.
  bool Send(const wire::RequestFrame& request);

  /// Blocks for the next response frame (whatever its request_id — the
  /// server may answer out of order). False on EOF/error.
  bool Receive(wire::ResponseFrame* response);

  /// Send + Receive. False on a broken connection or undecodable reply.
  bool Call(const wire::RequestFrame& request,
            wire::ResponseFrame* response);

  /// Call with retries: kQueueFull responses, connect failures and
  /// transport errors (torn frames, resets) are retried with capped
  /// exponential backoff + jitter, reconnecting as needed — safe because
  /// scoring requests are idempotent. `request.deadline_ms` (when nonzero)
  /// bounds the whole affair: attempts and backoffs stop when the budget
  /// is spent, and each receive is capped to the remaining budget. True
  /// when the final attempt yielded a decoded response — inspect
  /// `response->status`, which may still be kQueueFull if every attempt
  /// was rejected; false when it ended in a transport failure.
  /// `response->attempts` receives the attempts made either way.
  bool CallWithRetry(const wire::RequestFrame& request,
                     wire::ResponseFrame* response,
                     const RetryPolicy& policy = {});

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string host_;
  int port_ = -1;
  Rng rng_;
};

}  // namespace causer::serve

#endif  // CAUSER_SERVE_CLIENT_H_
