#ifndef CAUSER_SERVE_ENGINE_H_
#define CAUSER_SERVE_ENGINE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "models/recommender.h"
#include "serve/session_store.h"

namespace causer::serve {

/// Serving engine knobs.
struct ServingConfig {
  /// Requests coalesced into one scoring batch at most.
  int batch_max = 32;
  /// How long the dispatcher waits for the batch to fill after the first
  /// request arrives (0 = dispatch immediately with whatever is queued).
  int batch_wait_us = 200;
  /// Recommendations returned per request.
  int top_k = 10;
  /// Session-store LRU capacity; 0 = unbounded (negative values are
  /// clamped to 0 by the constructor, like batch_max/top_k).
  int max_sessions = 0;
};

/// One scoring request. Pointed-to data must stay alive until the call
/// returns (Handle/ScoreBatch block, so stack storage works).
struct Request {
  int user = 0;
  /// Interaction to append to the session before scoring; null = score the
  /// session as it stands.
  const data::Step* append = nullptr;
  /// Prior history replayed if the user has no cached session (first sight
  /// or post-eviction); null = start from an empty history.
  const std::vector<data::Step>* bootstrap = nullptr;
};

/// Why a Response carries no recommendations.
enum class ResponseStatus : uint8_t {
  kOk = 0,
  /// The engine was stopping when the request arrived; nothing was scored.
  /// Handle fails fast with this instead of enqueueing onto a dispatcher
  /// that already drained and exited (which would hang the caller forever)
  /// — the contract the server's graceful drain is built on.
  kShuttingDown = 1,
};

/// Top-k recommendations, best first — exactly eval::TopK of the model's
/// ScoreAll over the session's history. Empty with a non-kOk status when
/// the request was rejected instead of scored.
struct Response {
  std::vector<int> items;
  std::vector<float> scores;
  ResponseStatus status = ResponseStatus::kOk;
};

/// Online inference engine: a session store for O(1) incremental advances
/// plus a micro-batcher that coalesces concurrent requests and scores them
/// with one batched GEMM + fused top-k pass (kernels::MatMulTopK) when the
/// model exposes the single-inner-product form (StateRep/OutputItemTable),
/// falling back to per-request ScoreFromState otherwise (Causer's grouped
/// scoring). See docs/ARCHITECTURE.md for the request data flow.
class ServingEngine {
 public:
  ServingEngine(models::SequentialRecommender& model,
                const ServingConfig& config);
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Thread-safe blocking call: enqueues the request, wakes the dispatcher
  /// and returns when the coalesced batch containing it was scored. Once
  /// the engine is stopping it returns a kShuttingDown Response instead of
  /// blocking; requests enqueued before the stop are still drained.
  Response Handle(const Request& request);

  /// Stops the dispatcher: requests already queued are drained and
  /// answered, later Handle calls fail fast with kShuttingDown.
  /// Idempotent; the destructor calls it.
  void Stop();

  /// Synchronous batch path bypassing the batcher (deterministic; used by
  /// tests, benches and single-threaded replay). Requests for the same
  /// user are advanced in order and score the same final session state.
  std::vector<Response> ScoreBatch(const std::vector<Request>& requests);

  SessionStore& store() { return store_; }
  const ServingConfig& config() const { return config_; }
  /// The served model (e.g. for catalog-size request validation).
  const models::SequentialRecommender& model() const { return model_; }

 private:
  struct Pending {
    const Request* request = nullptr;
    Response response;
    bool done = false;
  };

  void DispatcherLoop();
  /// Advances every request's session, then scores them (batched GEMM +
  /// fused top-k when available). Fills each Pending's response.
  void ProcessBatch(const std::vector<Pending*>& batch);

  models::SequentialRecommender& model_;
  const ServingConfig config_;
  SessionStore store_;

  std::mutex mu_;
  std::mutex batch_mu_;  // serializes ProcessBatch (dispatcher vs ScoreBatch)
  std::condition_variable queue_cv_;  // dispatcher waits for work here
  std::condition_variable done_cv_;   // callers wait for their response
  std::deque<Pending*> queue_;
  bool stop_ = false;
  std::thread dispatcher_;
};

}  // namespace causer::serve

#endif  // CAUSER_SERVE_ENGINE_H_
