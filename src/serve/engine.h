#ifndef CAUSER_SERVE_ENGINE_H_
#define CAUSER_SERVE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "models/recommender.h"
#include "serve/session_store.h"

namespace causer::serve {

/// Serving engine knobs.
struct ServingConfig {
  /// Requests coalesced into one scoring batch at most.
  int batch_max = 32;
  /// How long the dispatcher waits for the batch to fill after the first
  /// request arrives (0 = dispatch immediately with whatever is queued).
  int batch_wait_us = 200;
  /// Recommendations returned per request.
  int top_k = 10;
  /// Session-store LRU capacity; 0 = unbounded (negative values are
  /// clamped to 0 by the constructor, like batch_max/top_k).
  int max_sessions = 0;
  /// Score batches against the model's int8 per-row-quantized item table
  /// (models::SequentialRecommender::QuantizedItemTable) with an exact
  /// fp32 re-rank of the best `rerank_k` candidates, instead of the fp32
  /// table. Returned scores are always fp32-exact; the top-k *set* can
  /// differ from fp32 only when a true top-k item ranks below rerank_k
  /// under quantized scoring (docs/KERNELS.md, "Quantized primitives").
  /// Models without a single-GEMM form fall back to fp32 per-request
  /// scoring as usual (counted by serve.quant.fallbacks_total).
  bool quantize_int8 = false;
  /// Candidates per request surviving the int8 pass into the fp32 re-rank
  /// under quantize_int8. Clamped to at least top_k; values >= the catalog
  /// size make the result provably identical to the fp32 path (every
  /// candidate is re-scored exactly). The default covers any plausible
  /// quantization-induced rank displacement with big margin.
  int rerank_k = 2048;
  /// Catalog shards for the scoring pass: > 1 splits the item table
  /// row-wise and fans the fused GEMM + top-k out across the thread pool
  /// (kernels::MatMulTopKSharded / the int8 sibling), merging the
  /// per-shard k-heaps under the same total order — responses are
  /// bit-identical to unsharded at every value. Useful when batches are
  /// small: row-parallelism caps at the batch size, shard-parallelism at
  /// min(score_shards, threads) even for a single request. Clamped to at
  /// least 1; the kernel further clamps to the catalog size.
  int score_shards = 1;
  /// Hash partitions for the session store: > 1 gives each shard its own
  /// mutex, intrusive LRU list, and slice of max_sessions, so concurrent
  /// Acquire calls for different users stop serializing on one lock.
  /// Clamped to at least 1 (and by the store to max_sessions when the
  /// cache is bounded, so no shard gets a zero = unbounded cap).
  int session_shards = 1;
};

/// One scoring request. Pointed-to data must stay alive until the call
/// returns (Handle/ScoreBatch block, so stack storage works).
struct Request {
  int user = 0;
  /// Interaction to append to the session before scoring; null = score the
  /// session as it stands.
  const data::Step* append = nullptr;
  /// Prior history replayed if the user has no cached session (first sight
  /// or post-eviction); null = start from an empty history.
  const std::vector<data::Step>* bootstrap = nullptr;
};

/// Why a Response carries no recommendations.
enum class ResponseStatus : uint8_t {
  kOk = 0,
  /// The engine was stopping when the request arrived; nothing was scored.
  /// Handle fails fast with this instead of enqueueing onto a dispatcher
  /// that already drained and exited (which would hang the caller forever)
  /// — the contract the server's graceful drain is built on.
  kShuttingDown = 1,
};

/// Top-k recommendations, best first — exactly eval::TopK of the model's
/// ScoreAll over the session's history. Empty with a non-kOk status when
/// the request was rejected instead of scored.
struct Response {
  std::vector<int> items;
  std::vector<float> scores;
  ResponseStatus status = ResponseStatus::kOk;
  /// The engine model version that scored this response (1 = the model the
  /// engine was constructed with, bumped by each Reload). 0 on rejection.
  uint64_t model_version = 0;
};

/// Online inference engine: a session store for O(1) incremental advances
/// plus a micro-batcher that coalesces concurrent requests and scores them
/// with one batched GEMM + fused top-k pass (kernels::MatMulTopK) when the
/// model exposes the single-inner-product form (StateRep/OutputItemTable),
/// falling back to per-request ScoreFromState otherwise (Causer's grouped
/// scoring). See docs/ARCHITECTURE.md for the request data flow.
///
/// The model is hot-swappable: Reload() publishes a new version through an
/// atomic shared_ptr (epoch swap). Each batch pins the version live when
/// it starts and scores with it to completion, so a reload never blocks
/// the score path and an in-flight batch never sees weights change under
/// it; session states built by older versions are lazily rebuilt from
/// their request's bootstrap on next touch (docs/ROBUSTNESS.md, "Serving
/// fault tolerance").
class ServingEngine {
 public:
  ServingEngine(std::shared_ptr<models::SequentialRecommender> model,
                const ServingConfig& config);
  /// Non-owning convenience overload: `model` must outlive the engine
  /// (tests, benches, single-model embedders).
  ServingEngine(models::SequentialRecommender& model,
                const ServingConfig& config);
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Thread-safe blocking call: enqueues the request, wakes the dispatcher
  /// and returns when the coalesced batch containing it was scored. Once
  /// the engine is stopping it returns a kShuttingDown Response instead of
  /// blocking; requests enqueued before the stop are still drained.
  Response Handle(const Request& request);

  /// Stops the dispatcher: requests already queued are drained and
  /// answered, later Handle calls fail fast with kShuttingDown.
  /// Idempotent; the destructor calls it.
  void Stop();

  /// Synchronous batch path bypassing the batcher (deterministic; used by
  /// tests, benches and single-threaded replay). Requests for the same
  /// user are advanced in order and score the same final session state.
  std::vector<Response> ScoreBatch(const std::vector<Request>& requests);

  /// Hot-swaps the served model: rebuilds the int8 quantized item table
  /// when quantize_int8 is on (on this thread — scoring continues on the
  /// old version meanwhile), then publishes the new version with one
  /// atomic store. Batches in flight finish on the version they pinned;
  /// later batches pick up the new one, and their stale session states
  /// are rebuilt from bootstrap on touch. Returns the new active version,
  /// or 0 — previous version keeps serving — when `model` is null or its
  /// catalog size differs from the current one (the server's request
  /// validation and every cached expectation key on it). Thread-safe;
  /// concurrent reloads are serialized.
  uint64_t Reload(std::shared_ptr<models::SequentialRecommender> model,
                  const std::string& source = "reload");

  /// The version currently serving (1 = construction model).
  uint64_t active_version() const;

  SessionStore& store() { return store_; }
  const ServingConfig& config() const { return config_; }
  /// The served model (e.g. for catalog-size request validation). The
  /// returned pointer stays valid across reloads — hold it, not a
  /// reference into it.
  std::shared_ptr<const models::SequentialRecommender> model() const;

 private:
  struct Pending {
    const Request* request = nullptr;
    Response response;
    bool done = false;
  };

  /// One published model version plus its serving-side derived state.
  /// Immutable after publish; batches pin it with one atomic shared_ptr
  /// load and keep it for the whole batch.
  struct ServedModel {
    uint64_t version = 1;
    std::shared_ptr<models::SequentialRecommender> model;
    /// Model-owned quantized item table; non-null only under quantize_int8
    /// with a quantizable model. Valid while `model` lives — the pin above
    /// covers it.
    const tensor::QuantizedMatrix* qtable = nullptr;
    std::string source;
  };

  /// Builds a ServedModel (quantized-table calibration included).
  std::shared_ptr<const ServedModel> BuildServed(
      std::shared_ptr<models::SequentialRecommender> model, uint64_t version,
      const std::string& source);

  void DispatcherLoop();
  /// Advances every request's session, then scores them (batched GEMM +
  /// fused top-k when available). Fills each Pending's response.
  void ProcessBatch(const std::vector<Pending*>& batch);
  /// Int8 path of ProcessBatch's scoring phase: quantizes the packed
  /// [rows, dim] reps per row, runs the quantized fused top-rerank_k
  /// (kernels::MatMulTopKQ) against `served`'s table, then re-scores the
  /// surviving candidates exactly in fp32 and fills the responses. Returns
  /// false — responses untouched, caller runs the fp32 path — when the
  /// activations cannot be quantized (non-finite values).
  bool ScoreRowsQuantized(const ServedModel& served, const float* reps,
                          int rows, int dim, int vocab,
                          const tensor::Tensor* table,
                          const std::vector<int>& gemm_rows,
                          std::vector<Response>& unique_responses);

  const ServingConfig config_;
  SessionStore store_;
  /// The epoch-swapped current version: readers (batches) do one atomic
  /// load and never lock; Reload publishes with one atomic store.
  std::atomic<std::shared_ptr<const ServedModel>> served_;
  std::mutex reload_mu_;  // serializes writers (Reload)

  std::mutex mu_;
  std::mutex batch_mu_;  // serializes ProcessBatch (dispatcher vs ScoreBatch)
  std::condition_variable queue_cv_;  // dispatcher waits for work here
  std::condition_variable done_cv_;   // callers wait for their response
  std::deque<Pending*> queue_;
  bool stop_ = false;
  std::thread dispatcher_;
};

}  // namespace causer::serve

#endif  // CAUSER_SERVE_ENGINE_H_
