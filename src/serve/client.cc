#include "serve/client.h"

#include <vector>

#include "common/net.h"

namespace causer::serve {

bool Client::Connect(const std::string& host, int port) {
  Close();
  fd_ = net::ConnectTcp(host, port);
  return fd_ >= 0;
}

bool Client::Send(const wire::RequestFrame& request) {
  if (fd_ < 0) return false;
  std::vector<uint8_t> payload;
  wire::EncodeRequest(request, &payload);
  return net::WriteFrame(fd_, payload.data(), payload.size());
}

bool Client::Receive(wire::ResponseFrame* response) {
  if (fd_ < 0) return false;
  std::vector<uint8_t> payload;
  if (!net::ReadFrame(fd_, &payload, wire::kMaxFrameBytes)) return false;
  return wire::DecodeResponse(payload, response);
}

bool Client::Call(const wire::RequestFrame& request,
                  wire::ResponseFrame* response) {
  return Send(request) && Receive(response);
}

void Client::Close() {
  net::CloseSocket(fd_);
  fd_ = -1;
}

}  // namespace causer::serve
