#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "common/net.h"

namespace causer::serve {

bool Client::Connect(const std::string& host, int port) {
  Close();
  host_ = host;
  port_ = port;
  fd_ = net::ConnectTcp(host, port);
  return fd_ >= 0;
}

bool Client::Send(const wire::RequestFrame& request) {
  if (fd_ < 0) return false;
  std::vector<uint8_t> payload;
  wire::EncodeRequest(request, &payload);
  return net::WriteFrame(fd_, payload.data(), payload.size());
}

bool Client::Receive(wire::ResponseFrame* response) {
  if (fd_ < 0) return false;
  std::vector<uint8_t> payload;
  if (!net::ReadFrame(fd_, &payload, wire::kMaxFrameBytes)) return false;
  return wire::DecodeResponse(payload, response);
}

bool Client::Call(const wire::RequestFrame& request,
                  wire::ResponseFrame* response) {
  return Send(request) && Receive(response);
}

bool Client::CallWithRetry(const wire::RequestFrame& request,
                           wire::ResponseFrame* response,
                           const RetryPolicy& policy) {
  using Clock = std::chrono::steady_clock;
  const int max_attempts = std::max(1, policy.max_attempts);
  const auto start = Clock::now();
  const bool bounded = request.deadline_ms > 0;
  const auto budget = std::chrono::milliseconds(request.deadline_ms);
  auto remaining_ms = [&]() -> double {
    if (!bounded) return 1e9;
    const auto left = budget - (Clock::now() - start);
    return std::chrono::duration<double, std::milli>(left).count();
  };

  int backoff_ms = std::max(1, policy.initial_backoff_ms);
  for (int attempt = 1;; ++attempt) {
    response->attempts = attempt;
    bool decoded = false;
    if (fd_ >= 0 || (port_ >= 0 && Connect(host_, port_))) {
      // Cap the wait for the response to the remaining budget, so a torn
      // or swallowed frame costs the budget, not forever.
      if (bounded) {
        net::SetRecvTimeout(fd_, std::max(remaining_ms(), 1.0) * 1e-3);
      }
      decoded = Call(request, response);
      if (decoded && response->status != wire::Status::kQueueFull) {
        if (bounded) net::SetRecvTimeout(fd_, 0);  // don't poison later Calls
        return true;
      }
      if (!decoded) {
        // Transport failure mid-exchange: the stream may hold a half
        // frame or a response we never consumed. Reconnect rather than
        // resync.
        Close();
      }
    }
    if (attempt >= max_attempts) return decoded;
    // Capped exponential backoff with jitter in [backoff/2, backoff):
    // full-window jitter decorrelates the retry herd a queue-full burst
    // creates. Skip the retry when the backoff would overrun the budget —
    // the caller gets the rejection rather than a deadline breach.
    const double delay = rng_.Uniform(backoff_ms / 2.0, backoff_ms);
    if (bounded && delay >= remaining_ms()) return decoded;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
    backoff_ms = std::min(policy.max_backoff_ms, backoff_ms * 2);
  }
}

void Client::Close() {
  net::CloseSocket(fd_);
  fd_ = -1;
}

}  // namespace causer::serve
