#ifndef CAUSER_SERVE_MODEL_REGISTRY_H_
#define CAUSER_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "models/recommender.h"

namespace causer::serve {

/// One published model version. Immutable once published: readers hold the
/// shared_ptr for as long as they score with it, so a later publish can
/// never pull the weights out from under an in-flight batch.
struct ModelVersion {
  /// Monotonic publish counter, starting at 1 for the first publish.
  uint64_t version = 0;
  std::shared_ptr<models::SequentialRecommender> model;
  /// Where the weights came from (file path or a caller-supplied label).
  std::string source;
};

/// Loads model versions from files — PR-4 training checkpoints
/// (`ckpt-NNNNNN.causer`, CRC-validated) or bare nn::SaveParameters dumps —
/// and publishes them via shared_ptr epoch swap. Current() is a single
/// atomic shared_ptr load: hot-path readers never take a lock, and the
/// version they grab stays alive until the last reader drops it. Writers
/// (reload paths) are serialized by a mutex; a failed load publishes
/// nothing, so the previous version keeps serving.
class ModelRegistry {
 public:
  /// Builds an architecture-compatible empty model for each load. May be
  /// null when only Publish() is used.
  using Factory =
      std::function<std::unique_ptr<models::SequentialRecommender>()>;

  explicit ModelRegistry(Factory factory = nullptr);

  /// The live version (lock-free), or null before the first publish.
  std::shared_ptr<const ModelVersion> Current() const;

  /// Publishes an already-built model as the next version. Never fails;
  /// returns the published entry.
  std::shared_ptr<const ModelVersion> Publish(
      std::shared_ptr<models::SequentialRecommender> model,
      std::string source);

  /// Builds a fresh factory model, restores it from `path` (training
  /// checkpoint tried first — it validates every CRC before mutating —
  /// then a bare parameter dump), runs OnParametersRestored(), and
  /// publishes. Null on failure, in which case Current() is untouched.
  /// Requires a factory.
  std::shared_ptr<const ModelVersion> LoadAndPublish(const std::string& path);

 private:
  Factory factory_;
  std::mutex publish_mu_;
  uint64_t next_version_ = 1;  // guarded by publish_mu_
  std::atomic<std::shared_ptr<const ModelVersion>> current_;
};

}  // namespace causer::serve

#endif  // CAUSER_SERVE_MODEL_REGISTRY_H_
