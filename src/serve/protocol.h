#ifndef CAUSER_SERVE_PROTOCOL_H_
#define CAUSER_SERVE_PROTOCOL_H_

#include <cstdint>
#include <vector>

namespace causer::serve::wire {

// The serving wire protocol: length-prefixed binary frames (the u32
// little-endian length prefix lives in common/net.h; this header defines
// the payloads). One request frame yields exactly one response frame with
// the same request_id; responses may arrive out of request order, since
// the server schedules across priority lanes and pipelined connections.
//
// Request payload (all integers little-endian):
//   u8  version (= kVersion)
//   u8  priority (Priority)
//   u8  op               Op: 0 = score, 1 = reload (control frame)
//   u8  reserved (0)
//   u32 request_id       echoed verbatim in the response
//   u32 user             session key (any non-negative id; not bounded by
//                        the model's training-time user count); 0 for
//                        kReload
//   u32 deadline_ms      relative deadline from server receipt; 0 = use
//                        the server's default (--deadline-ms), which may
//                        itself be 0 = none
//   u16 append_items     number of items in the appended step; 0 = score
//                        the session as it stands
//   u16 bootstrap_steps  prior-history steps replayed if the user has no
//                        cached session
//   append_items  x u32  item ids of the appended step
//   bootstrap_steps x [u16 count, count x u32 item ids]
//
// Response payload:
//   u8  version
//   u8  status (Status)
//   u16 k                number of recommendations (0 unless kOk)
//   u32 request_id
//   u32 model_version    engine model version (low 32 bits) that produced
//                        this response; for kReload acks, the version now
//                        active. Lets clients cross-check bit-exactness
//                        per served version across hot reloads.
//   k x [u32 item, f32 score]   best first

inline constexpr uint8_t kVersion = 2;

/// Upper bound on a frame payload; a declared length above this is a
/// protocol error and closes the connection.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

enum class Status : uint8_t {
  kOk = 0,
  /// Admission control: the scheduler queue was at --queue-depth when the
  /// request arrived. Back off and retry (the protocol's backpressure).
  kQueueFull = 1,
  /// The request's deadline expired while it queued; it was rejected
  /// before scoring.
  kDeadlineExceeded = 2,
  /// The server is draining (or the engine stopped); nothing was scored.
  kShuttingDown = 3,
  /// Malformed or out-of-range request (e.g. an item id outside the
  /// catalog). The connection stays open.
  kBadRequest = 4,
  /// A kReload control frame was received but the reload did not take
  /// (load failure, architecture mismatch, or no reload hook configured).
  /// The previously active model keeps serving.
  kReloadFailed = 5,
};

enum class Priority : uint8_t {
  kNormal = 0,
  /// Scheduled ahead of every queued kNormal request (two-lane scheduler).
  kHigh = 1,
};

enum class Op : uint8_t {
  /// Score the user's session (the normal request).
  kScore = 0,
  /// Control frame: ask the server to hot-reload its model (same effect
  /// as SIGHUP). Acked with kOk + the new active model_version, or
  /// kReloadFailed. append/bootstrap must be empty.
  kReload = 1,
};

struct RequestFrame {
  uint32_t request_id = 0;
  int32_t user = 0;
  uint32_t deadline_ms = 0;
  Priority priority = Priority::kNormal;
  Op op = Op::kScore;
  /// Item ids of the interaction appended before scoring; empty = none.
  std::vector<int32_t> append;
  /// Prior history replayed on session miss, oldest first.
  std::vector<std::vector<int32_t>> bootstrap;
};

struct ResponseFrame {
  uint32_t request_id = 0;
  Status status = Status::kOk;
  /// Low 32 bits of the engine model version that served this response.
  uint32_t model_version = 0;
  std::vector<int32_t> items;
  std::vector<float> scores;
  /// Client-side bookkeeping, not on the wire: attempts made by
  /// Client::CallWithRetry to get this response (1 = first try).
  int attempts = 0;
};

/// Serializes the payload (no length prefix) into `*out` (cleared first).
void EncodeRequest(const RequestFrame& frame, std::vector<uint8_t>* out);
void EncodeResponse(const ResponseFrame& frame, std::vector<uint8_t>* out);

/// Parses a payload. False on truncation, trailing bytes, or an unknown
/// version — the caller should treat the connection as broken.
bool DecodeRequest(const std::vector<uint8_t>& payload, RequestFrame* out);
bool DecodeResponse(const std::vector<uint8_t>& payload, ResponseFrame* out);

/// Human-readable status label ("ok", "queue_full", ...).
const char* StatusName(Status status);

}  // namespace causer::serve::wire

#endif  // CAUSER_SERVE_PROTOCOL_H_
