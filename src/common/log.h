#ifndef CAUSER_COMMON_LOG_H_
#define CAUSER_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace causer {

/// Log verbosity levels, lowest first.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);

/// Current global minimum level.
LogLevel GetLogLevel();

/// Emits a single log line to stderr if `level` passes the global filter.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style collector that emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// CHECK-style invariant enforcement: aborts with a message on failure.
/// Used for programmer errors (shape mismatches etc.), not data errors.
void CheckFailed(const char* file, int line, const char* expr);

#define CAUSER_CHECK(expr)                              \
  do {                                                  \
    if (!(expr)) {                                      \
      ::causer::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                   \
  } while (0)

#define CAUSER_LOG(level) \
  ::causer::internal::LogStream(::causer::LogLevel::k##level)

}  // namespace causer

#endif  // CAUSER_COMMON_LOG_H_
