#ifndef CAUSER_COMMON_FLAGS_H_
#define CAUSER_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace causer {

/// Minimal command-line flag parser for the CLI tools:
///   --key=value  or  --key value  or  --bool_flag
/// Positional arguments are collected in order.
class Flags {
 public:
  /// Parses argv (argv[0] is skipped). Unknown flags are kept; validity is
  /// the caller's concern. A later occurrence of a flag overrides an
  /// earlier one.
  static Flags Parse(int argc, const char* const* argv);

  /// True when --name was present (with or without a value).
  bool Has(const std::string& name) const;

  /// String value of --name, or `fallback` when absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;

  /// Integer value of --name, or `fallback` when the flag is absent or has
  /// an empty value. A present-but-malformed value (trailing garbage,
  /// non-numeric) is a usage error: prints to stderr and exits 2 — it must
  /// never silently become the fallback.
  int GetInt(const std::string& name, int fallback) const;

  /// Double value of --name; same absent/empty fallback and exit-2
  /// malformed-value contract as GetInt.
  double GetDouble(const std::string& name, double fallback) const;

  /// Boolean: true for presence without value or value in
  /// {1, true, yes, on}; false for {0, false, no, off}.
  bool GetBool(const std::string& name, bool fallback = false) const;

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace causer

#endif  // CAUSER_COMMON_FLAGS_H_
