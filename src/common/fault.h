#ifndef CAUSER_COMMON_FAULT_H_
#define CAUSER_COMMON_FAULT_H_

#include <atomic>
#include <string>
#include <vector>

namespace causer::fault {

/// Fault-injection harness: named injection points compiled into the
/// recovery-critical paths (checkpoint writer, serialization, optimizer)
/// so that failure handling is exercised by real tests instead of staying
/// theoretical. Disarmed — the production state — every ShouldFail call is
/// a single relaxed atomic load and a predicted-not-taken branch; the
/// registry lock is only touched while at least one point is armed.
///
/// The point catalog lives in docs/ROBUSTNESS.md; tests and the CLI arm
/// points by name via Arm() / --fault-inject / the CAUSER_FAULT env var.

namespace internal {

/// Number of points currently armed (fired-out points count until
/// disarmed). Nonzero switches ShouldFail onto the locked slow path.
extern std::atomic<int> armed_points;

/// Locked lookup + hit bookkeeping; returns true when this hit fires.
bool ShouldFailSlow(const char* point);

}  // namespace internal

/// True when the `point` injection site should fail on this hit. Call it
/// exactly where the induced failure would occur; every call counts as one
/// hit of the point. Free when nothing is armed.
inline bool ShouldFail(const char* point) {
  if (internal::armed_points.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  return internal::ShouldFailSlow(point);
}

/// Arms `point` to fire on hits [fire_on_hit, fire_on_hit + times - 1]
/// (1-based). Re-arming an armed point resets its hit count.
void Arm(const std::string& point, int fire_on_hit = 1, int times = 1);

/// Disarms one point (forgetting its hit count). No-op when not armed.
void Disarm(const std::string& point);

/// Disarms everything. Tests call this in teardown.
void DisarmAll();

/// Hits observed on an armed point so far (0 when not armed).
int HitCount(const std::string& point);

/// Times the point actually fired so far (0 when not armed).
int FireCount(const std::string& point);

/// Arms a comma-separated spec: each entry is `point`, `point@N` (fire on
/// the N-th hit) or `point@N*M` (fire on N..N+M-1). Returns false — arming
/// nothing — when the spec fails to parse.
bool ArmFromSpec(const std::string& spec);

/// Arms from the CAUSER_FAULT environment variable when it is set (same
/// spec grammar). Aborts on a malformed value: a typo in a fault-injection
/// test setup must not silently run the happy path.
void ArmFromEnvironment();

}  // namespace causer::fault

#endif  // CAUSER_COMMON_FAULT_H_
