#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace causer {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int Rng::UniformInt(int n) {
  assert(n > 0);
  return static_cast<int>(Next() % static_cast<uint64_t>(n));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  double u2 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0) return UniformInt(static_cast<int>(weights.size()));
  double target = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

int Rng::TruncatedGeometric(double p, int max_value) {
  int count = 0;
  while (count < max_value && !Bernoulli(p)) ++count;
  return count;
}

void Rng::SaveState(std::string* out) const {
  for (uint64_t s : state_) serial::AppendU64(out, s);
  serial::AppendU32(out, has_cached_normal_ ? 1 : 0);
  serial::AppendF64(out, cached_normal_);
}

bool Rng::LoadState(serial::Reader& in) {
  uint64_t state[4];
  uint32_t has_cached = 0;
  double cached = 0.0;
  for (auto& s : state) in.ReadU64(&s);
  in.ReadU32(&has_cached);
  in.ReadF64(&cached);
  if (!in.ok()) return false;
  for (int i = 0; i < 4; ++i) state_[i] = state[i];
  has_cached_normal_ = has_cached != 0;
  cached_normal_ = cached;
  return true;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  assert(k <= n);
  std::vector<int> pool(n);
  for (int i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: the first k slots become the sample.
  for (int i = 0; i < k; ++i) {
    int j = i + UniformInt(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace causer
