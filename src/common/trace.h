#ifndef CAUSER_COMMON_TRACE_H_
#define CAUSER_COMMON_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace causer::trace {

/// Process-wide tracing switch. Spans created while disabled record
/// nothing (one relaxed atomic load, no clock read). Disabled is the
/// default; `causer_cli` enables tracing when `--trace-out` is passed.
bool Enabled();

/// Turns tracing on or off. Events recorded while enabled are kept.
void SetEnabled(bool on);

/// Discards all recorded events and resets the drop counter. The trace
/// clock epoch is unchanged. Intended for tests and between CLI runs.
void Reset();

/// Maximum structured args a span or instant can carry.
inline constexpr int kMaxArgs = 2;

/// One recorded event. `name`/`category`/arg keys are the pointers passed
/// at the instrumentation site and must be string literals (they are
/// stored unowned).
struct Event {
  const char* name = nullptr;
  const char* category = nullptr;
  /// Chrome trace phase: 'X' = complete span, 'i' = instant.
  char phase = 'X';
  /// Microseconds since the process trace epoch.
  int64_t ts_us = 0;
  /// Span duration in microseconds (0 for instants).
  int64_t dur_us = 0;
  /// Small sequential id of the recording thread.
  int tid = 0;
  int num_args = 0;
  const char* arg_keys[kMaxArgs] = {nullptr, nullptr};
  double arg_values[kMaxArgs] = {0.0, 0.0};
};

/// RAII scope that records one complete ('X') event covering its lifetime
/// into the calling thread's buffer. Construction reads the clock only
/// when tracing is enabled; an enabled span records at destruction even if
/// tracing was disabled in between. `name` and `category` must be string
/// literals (stored unowned in the event buffer).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "causer");
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric argument shown in the trace viewer's detail pane
  /// (at most kMaxArgs; extras are dropped). `key` must be a literal.
  void AddArg(const char* key, double value);

 private:
  const char* name_;
  const char* category_;
  int64_t start_us_ = -1;  // -1 = span was created while disabled
  int num_args_ = 0;
  const char* arg_keys_[kMaxArgs] = {nullptr, nullptr};
  double arg_values_[kMaxArgs] = {0.0, 0.0};
};

/// Records a zero-duration instant ('i') event.
void Instant(const char* name, const char* category = "causer");

/// All recorded events, merged across thread buffers (including threads
/// that have exited) and sorted by (timestamp, tid). Taking a snapshot
/// while other threads are still recording is safe; events appended after
/// the snapshot started may be missed.
std::vector<Event> Snapshot();

/// Events dropped because the global buffer cap was reached.
uint64_t DroppedEvents();

/// The recorded events as Chrome trace JSON ("traceEvents" array format),
/// loadable by chrome://tracing and https://ui.perfetto.dev.
std::string ChromeTraceJson();

/// Writes ChromeTraceJson() to `path`. Returns false on I/O failure.
bool WriteChromeTrace(const std::string& path);

}  // namespace causer::trace

#endif  // CAUSER_COMMON_TRACE_H_
