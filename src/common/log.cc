#include "common/log.h"

#include <cstdio>
#include <cstdlib>

namespace causer {
namespace {

LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace causer
