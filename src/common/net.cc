#include "common/net.h"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/fault.h"

namespace causer::net {

namespace {

/// Micro-batched serving wants request frames on the wire immediately,
/// not Nagle-coalesced: the engine does its own batching server-side.
void DisableNagle(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

int ListenTcp(const std::string& host, int port, int backlog,
              int* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseSocket(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    CloseSocket(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      CloseSocket(fd);
      return -1;
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

int ConnectTcp(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseSocket(fd);
    return -1;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    CloseSocket(fd);
    return -1;
  }
  DisableNagle(fd);
  return fd;
}

int AcceptConnection(int listen_fd) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      DisableNagle(fd);
      return fd;
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return -1;
  }
}

void ShutdownSocket(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void CloseSocket(int fd) {
  if (fd < 0) return;
  int rc;
  do {
    rc = ::close(fd);
  } while (rc != 0 && errno == EINTR);
}

bool SetRecvTimeout(int fd, double seconds) {
  if (fd < 0 || seconds < 0) return false;
  timeval tv{};  // zero = clear the timeout (block forever again)
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - tv.tv_sec) * 1e6);
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

bool ReadFull(int fd, void* buf, size_t n, ReadError* error) {
  if (error != nullptr) *error = ReadError::kNone;
  uint8_t* p = static_cast<uint8_t*>(buf);
  while (n > 0) {
    ssize_t got = ::recv(fd, p, n, 0);
    if (got > 0) {
      p += got;
      n -= static_cast<size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    if (error != nullptr) {
      if (got == 0) {
        *error = ReadError::kClosed;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        *error = ReadError::kTimeout;  // SO_RCVTIMEO expired
      } else {
        *error = ReadError::kError;
      }
    }
    return false;
  }
  return true;
}

bool WriteFull(int fd, const void* buf, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  while (n > 0) {
    ssize_t put = ::send(fd, p, n, MSG_NOSIGNAL);
    if (put > 0) {
      p += put;
      n -= static_cast<size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool ReadFrame(int fd, std::vector<uint8_t>* payload, uint32_t max_bytes,
               ReadError* error) {
  if (error != nullptr) *error = ReadError::kNone;
  if (fault::ShouldFail("net.conn_reset")) {
    // Simulate the peer resetting the connection right before our read.
    ShutdownSocket(fd);
    if (error != nullptr) *error = ReadError::kError;
    return false;
  }
  uint8_t header[4];
  if (!ReadFull(fd, header, sizeof(header), error)) return false;
  const uint32_t len = static_cast<uint32_t>(header[0]) |
                       static_cast<uint32_t>(header[1]) << 8 |
                       static_cast<uint32_t>(header[2]) << 16 |
                       static_cast<uint32_t>(header[3]) << 24;
  if (len > max_bytes) {
    if (error != nullptr) *error = ReadError::kTooLarge;
    return false;
  }
  if (fault::ShouldFail("net.slow_reader")) {
    // Stall between header and payload: the window a slow-loris peer
    // leaves a reader thread dangling in, and the one the server's read
    // deadline must cover.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  payload->resize(len);
  return len == 0 || ReadFull(fd, payload->data(), len, error);
}

bool WriteFrame(int fd, const uint8_t* payload, size_t len) {
  uint8_t header[4] = {static_cast<uint8_t>(len),
                       static_cast<uint8_t>(len >> 8),
                       static_cast<uint8_t>(len >> 16),
                       static_cast<uint8_t>(len >> 24)};
  if (fault::ShouldFail("net.torn_write")) {
    // Emit the header plus a truncated payload, then report failure: the
    // peer's decoder must reject the torn frame, and the writer must treat
    // the connection as dead.
    if (WriteFull(fd, header, sizeof(header)) && len > 1) {
      WriteFull(fd, payload, len / 2);
    }
    return false;
  }
  if (!WriteFull(fd, header, sizeof(header))) return false;
  return len == 0 || WriteFull(fd, payload, len);
}

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutF32(std::vector<uint8_t>* out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(out, bits);
}

uint8_t Cursor::U8() {
  if (pos + 1 > len) {
    ok = false;
    return 0;
  }
  return data[pos++];
}

uint16_t Cursor::U16() {
  if (pos + 2 > len) {
    ok = false;
    return 0;
  }
  uint16_t v = static_cast<uint16_t>(data[pos]) |
               static_cast<uint16_t>(data[pos + 1]) << 8;
  pos += 2;
  return v;
}

uint32_t Cursor::U32() {
  if (pos + 4 > len) {
    ok = false;
    return 0;
  }
  uint32_t v = static_cast<uint32_t>(data[pos]) |
               static_cast<uint32_t>(data[pos + 1]) << 8 |
               static_cast<uint32_t>(data[pos + 2]) << 16 |
               static_cast<uint32_t>(data[pos + 3]) << 24;
  pos += 4;
  return v;
}

float Cursor::F32() {
  uint32_t bits = U32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

namespace {

// Self-pipe shutdown/reload plumbing: the handlers only do
// async-signal-safe work (a flag store and one write); waiters block on
// the pipe's read end.
std::atomic<bool> g_shutdown_requested{false};
std::atomic<int> g_reload_requests{0};
int g_shutdown_pipe[2] = {-1, -1};

void WakeSignalPipe() {
  if (g_shutdown_pipe[1] >= 0) {
    const uint8_t byte = 1;
    [[maybe_unused]] ssize_t n = ::write(g_shutdown_pipe[1], &byte, 1);
  }
}

extern "C" void ShutdownSignalHandler(int /*signum*/) {
  g_shutdown_requested.store(true, std::memory_order_relaxed);
  WakeSignalPipe();
}

extern "C" void ReloadSignalHandler(int /*signum*/) {
  g_reload_requests.fetch_add(1, std::memory_order_relaxed);
  WakeSignalPipe();
}

bool EnsureSignalPipe() {
  return g_shutdown_pipe[0] >= 0 || ::pipe(g_shutdown_pipe) == 0;
}

}  // namespace

bool InstallShutdownHandler() {
  if (!EnsureSignalPipe()) return false;
  struct sigaction action{};
  action.sa_handler = ShutdownSignalHandler;
  sigemptyset(&action.sa_mask);
  return ::sigaction(SIGINT, &action, nullptr) == 0 &&
         ::sigaction(SIGTERM, &action, nullptr) == 0;
}

bool ShutdownRequested() {
  return g_shutdown_requested.load(std::memory_order_relaxed);
}

void WaitForShutdown() {
  while (!ShutdownRequested()) {
    if (g_shutdown_pipe[0] < 0) return;  // nothing to wait on
    uint8_t byte;
    ssize_t n = ::read(g_shutdown_pipe[0], &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
  }
}

void TriggerShutdown() {
  if (!EnsureSignalPipe()) {
    g_shutdown_requested.store(true, std::memory_order_relaxed);
    return;
  }
  ShutdownSignalHandler(0);
}

bool InstallReloadHandler() {
  if (!EnsureSignalPipe()) return false;
  struct sigaction action{};
  action.sa_handler = ReloadSignalHandler;
  sigemptyset(&action.sa_mask);
  return ::sigaction(SIGHUP, &action, nullptr) == 0;
}

void TriggerReload() {
  if (!EnsureSignalPipe()) {
    g_reload_requests.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ReloadSignalHandler(0);
}

SignalKind WaitForSignal(double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    // Shutdown wins over queued reloads: a draining process must not start
    // loading a new model.
    if (ShutdownRequested()) return SignalKind::kShutdown;
    int pending = g_reload_requests.load(std::memory_order_relaxed);
    while (pending > 0) {
      if (g_reload_requests.compare_exchange_weak(
              pending, pending - 1, std::memory_order_relaxed)) {
        return SignalKind::kReload;
      }
    }
    if (g_shutdown_pipe[0] < 0) return SignalKind::kNone;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return SignalKind::kNone;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    pollfd pfd{g_shutdown_pipe[0], POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
    if (rc < 0 && errno != EINTR) return SignalKind::kNone;
    if (rc > 0 && (pfd.revents & POLLIN) != 0) {
      uint8_t byte;
      [[maybe_unused]] ssize_t n = ::read(g_shutdown_pipe[0], &byte, 1);
    }
  }
}

}  // namespace causer::net
