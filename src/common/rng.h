#ifndef CAUSER_COMMON_RNG_H_
#define CAUSER_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/serial.h"

namespace causer {

/// Deterministic pseudo-random number generator used throughout the library.
///
/// Wraps a SplitMix64-seeded xoshiro256** core. Every component that needs
/// randomness takes a `Rng&` (or a seed) so that experiments are exactly
/// reproducible from a single integer seed.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed. Two Rng instances created from
  /// the same seed produce identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n);

  /// Standard normal variate (Box-Muller, cached second value).
  double Normal();

  /// Normal with mean/stddev.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Non-positive weights are treated as zero; if all weights are zero the
  /// result is uniform.
  int Categorical(const std::vector<double>& weights);

  /// Geometric-like draw: number of Bernoulli(p) failures before the first
  /// success, truncated at `max_value`.
  int TruncatedGeometric(double p, int max_value);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
      int j = UniformInt(i + 1);
      std::swap(v[i], v[j]);
    }
  }

  /// Samples `k` distinct values from [0, n) (k <= n), in random order.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Appends the complete generator state (the four xoshiro words plus the
  /// cached Box-Muller normal) to `out`. A generator restored with
  /// LoadState continues the exact stream — the checkpoint/resume
  /// bit-exactness contract depends on it.
  void SaveState(std::string* out) const;

  /// Restores state written by SaveState. Returns false (leaving the
  /// generator unchanged) when the reader runs short.
  bool LoadState(serial::Reader& in);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace causer

#endif  // CAUSER_COMMON_RNG_H_
