#include "common/flags.h"

#include <cstdio>
#include <cstdlib>

namespace causer {

Flags Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int Flags::GetInt(const std::string& name, int fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == nullptr || end == it->second.c_str() || *end != '\0') {
    // Trailing garbage ("--rerank-k=2kf") must not silently become the
    // fallback: the caller asked for a number and didn't get one.
    std::fprintf(stderr, "malformed integer for --%s: '%s'\n", name.c_str(),
                 it->second.c_str());
    std::exit(2);
  }
  return static_cast<int>(v);
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || end == it->second.c_str() || *end != '\0') {
    std::fprintf(stderr, "malformed number for --%s: '%s'\n", name.c_str(),
                 it->second.c_str());
    std::exit(2);
  }
  return v;
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on")
    return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return fallback;
}

}  // namespace causer
