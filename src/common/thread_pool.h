#ifndef CAUSER_COMMON_THREAD_POOL_H_
#define CAUSER_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace causer {

class Flags;

/// Fixed-size fork-join thread pool (no work stealing). A pool of size N
/// keeps N-1 persistent worker threads; the calling thread executes shard 0
/// of every parallel region, so `ThreadPool(1)` spawns nothing and runs
/// everything inline.
///
/// ParallelFor partitions an index range into at most N contiguous shards
/// (static, deterministic partitioning: shard s covers
/// [begin + n*s/S, begin + n*(s+1)/S)), hands one shard to each thread, and
/// blocks until all shards finish. Because the partition depends only on
/// (range, shard count), results of any race-free body are reproducible for
/// a fixed pool size.
///
/// Nested parallelism is flattened: a ParallelFor issued from inside a pool
/// thread (or from the calling thread while it is executing its own shard)
/// runs the whole range inline on that thread. This keeps the kernels free
/// to call ParallelFor unconditionally without deadlock or oversubscription.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs body(shard_begin, shard_end) over a partition of [begin, end).
  /// Blocks until every shard completed. Safe to call with an empty range.
  void ParallelFor(int begin, int end,
                   const std::function<void(int, int)>& body);

  /// True when the current thread is a pool worker or is executing its
  /// shard of an active ParallelFor region.
  static bool InParallelRegion();

 private:
  struct Region {
    const std::function<void(int, int)>* body = nullptr;
    int begin = 0;
    int end = 0;
    int shards = 0;
  };

  void WorkerLoop(int worker_index);
  static void RunShard(const Region& region, int shard);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Region region_;
  uint64_t epoch_ = 0;  // bumped once per region; workers wait on it
  int remaining_ = 0;   // workers still inside the current region
  bool stop_ = false;
};

/// Process-wide worker count used by the parallel kernels (blocked matmul,
/// sharded evaluation, batched training). Defaults to 1, which keeps every
/// code path bit-identical to the sequential implementation.
int DefaultThreads();

/// Sets the process-wide worker count (clamped to >= 1). The shared pool is
/// rebuilt lazily on the next DefaultPool() call. Must not be called while
/// a parallel region is running.
void SetDefaultThreads(int n);

/// The shared pool, sized to DefaultThreads(). Lazily (re)constructed.
ThreadPool& DefaultPool();

/// Installs --threads=N from the command line (fallback: the CAUSER_THREADS
/// environment variable, else 1) as the default worker count.
void ConfigureThreadsFromFlags(const Flags& flags);

}  // namespace causer

#endif  // CAUSER_COMMON_THREAD_POOL_H_
