#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <memory>

#include "common/flags.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace causer {
namespace {

/// Set on pool workers for their whole lifetime, and on the calling thread
/// while it runs its shard of a region. Nested ParallelFor calls from such
/// threads run inline.
thread_local bool tl_in_region = false;

/// Pool instruments (see docs/OBSERVABILITY.md). Registered together on
/// first touch so a snapshot enumerates the whole group even before the
/// pool has forked a region. The fork-join pool has no task queue — the
/// unit of work is the region; per-shard timing is what exposes worker
/// utilization (idle workers simply record no shard time).
struct PoolMetricsT {
  metrics::Gauge& size;
  metrics::Counter& regions;
  metrics::Counter& inline_regions;
  metrics::Counter& shards;
  metrics::Histogram& shard_seconds;
};

PoolMetricsT& PoolMetrics() {
  static PoolMetricsT m{
      metrics::GetGauge("threadpool.size", "threads",
                        "Current process-wide pool size (DefaultThreads)."),
      metrics::GetCounter(
          "threadpool.regions_total", "regions",
          "ParallelFor regions that forked across pool threads."),
      metrics::GetCounter(
          "threadpool.inline_regions_total", "regions",
          "Non-empty ParallelFor regions that ran inline on the calling "
          "thread (pool size 1, single shard, or nested region)."),
      metrics::GetCounter("threadpool.shards_total", "shards",
                          "Shards executed across all forked regions."),
      metrics::GetHistogram(
          "threadpool.shard_seconds", "seconds",
          "Wall time of each executed shard (forked regions only); the "
          "per-worker share of this exposes worker utilization.",
          metrics::ExponentialBuckets(1e-6, 10.0, 8)),
  };
  return m;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::InParallelRegion() { return tl_in_region; }

void ThreadPool::RunShard(const Region& region, int shard) {
  if (shard >= region.shards) return;
  const int64_t n = region.end - region.begin;
  const int lo = region.begin + static_cast<int>(n * shard / region.shards);
  const int hi =
      region.begin + static_cast<int>(n * (shard + 1) / region.shards);
  if (lo < hi) (*region.body)(lo, hi);
}

void ThreadPool::WorkerLoop(int worker_index) {
  tl_in_region = true;
  uint64_t seen = 0;
  for (;;) {
    Region region;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      region = region_;
    }
    // Worker i owns shard i + 1; shard 0 belongs to the calling thread.
    {
      trace::TraceSpan span("threadpool.shard", "threadpool");
      const bool measure = metrics::Enabled();
      Stopwatch sw;
      RunShard(region, worker_index + 1);
      if (measure) {
        PoolMetrics().shards.Add();
        PoolMetrics().shard_seconds.Observe(sw.ElapsedSeconds());
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --remaining_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(int begin, int end,
                             const std::function<void(int, int)>& body) {
  if (begin >= end) return;
  const int n = end - begin;
  const int shards = std::min(num_threads_, n);
  if (shards <= 1 || tl_in_region) {
    PoolMetrics().inline_regions.Add();
    body(begin, end);
    return;
  }
  trace::TraceSpan region_span("threadpool.region", "threadpool");
  region_span.AddArg("range", n);
  region_span.AddArg("shards", shards);
  PoolMetrics().regions.Add();
  Region region{&body, begin, end, shards};
  {
    std::lock_guard<std::mutex> lock(mu_);
    region_ = region;
    ++epoch_;
    remaining_ = num_threads_ - 1;
  }
  work_cv_.notify_all();
  tl_in_region = true;
  {
    const bool measure = metrics::Enabled();
    Stopwatch sw;
    RunShard(region, 0);
    if (measure) {
      PoolMetrics().shards.Add();
      PoolMetrics().shard_seconds.Observe(sw.ElapsedSeconds());
    }
  }
  tl_in_region = false;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return remaining_ == 0; });
}

namespace {

std::atomic<int> g_default_threads{1};
std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

int DefaultThreads() { return g_default_threads.load(std::memory_order_relaxed); }

void SetDefaultThreads(int n) {
  if (n < 1) n = 1;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool && g_pool->num_threads() != n) g_pool.reset();
  g_default_threads.store(n, std::memory_order_relaxed);
  PoolMetrics().size.Set(n);
}

ThreadPool& DefaultPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  const int n = g_default_threads.load(std::memory_order_relaxed);
  if (!g_pool || g_pool->num_threads() != n) {
    g_pool = std::make_unique<ThreadPool>(n);
  }
  return *g_pool;
}

void ConfigureThreadsFromFlags(const Flags& flags) {
  int fallback = 1;
  if (const char* env = std::getenv("CAUSER_THREADS")) {
    fallback = std::atoi(env);
    if (fallback < 1) fallback = 1;
  }
  SetDefaultThreads(flags.GetInt("threads", fallback));
}

}  // namespace causer
