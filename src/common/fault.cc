#include "common/fault.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "common/log.h"

namespace causer::fault {
namespace internal {

std::atomic<int> armed_points{0};

}  // namespace internal

namespace {

struct PointState {
  int fire_on_hit = 1;  ///< first hit (1-based) that fires
  int times = 1;        ///< consecutive firing hits
  int hits = 0;
  int fired = 0;
};

std::mutex& RegistryMutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, PointState>& Registry() {
  static std::map<std::string, PointState> points;
  return points;
}

}  // namespace

namespace internal {

bool ShouldFailSlow(const char* point) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(point);
  if (it == Registry().end()) return false;
  PointState& st = it->second;
  ++st.hits;
  if (st.hits >= st.fire_on_hit && st.fired < st.times) {
    ++st.fired;
    CAUSER_LOG(Warning) << "fault injection: " << point << " firing (hit "
                        << st.hits << ")";
    return true;
  }
  return false;
}

}  // namespace internal

void Arm(const std::string& point, int fire_on_hit, int times) {
  CAUSER_CHECK(fire_on_hit >= 1 && times >= 1);
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto [it, inserted] = Registry().try_emplace(point);
  it->second = PointState{fire_on_hit, times, 0, 0};
  if (inserted) {
    internal::armed_points.fetch_add(1, std::memory_order_relaxed);
  }
}

void Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  if (Registry().erase(point) > 0) {
    internal::armed_points.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  internal::armed_points.fetch_sub(static_cast<int>(Registry().size()),
                                   std::memory_order_relaxed);
  Registry().clear();
}

int HitCount(const std::string& point) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(point);
  return it == Registry().end() ? 0 : it->second.hits;
}

int FireCount(const std::string& point) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(point);
  return it == Registry().end() ? 0 : it->second.fired;
}

bool ArmFromSpec(const std::string& spec) {
  struct Parsed {
    std::string point;
    int fire_on_hit = 1;
    int times = 1;
  };
  // Parse the whole spec before arming anything: a malformed entry must
  // not leave a half-armed configuration behind.
  std::vector<Parsed> entries;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    Parsed p;
    size_t at = entry.find('@');
    p.point = entry.substr(0, at);
    if (p.point.empty()) return false;
    if (at != std::string::npos) {
      std::string sched = entry.substr(at + 1);
      size_t star = sched.find('*');
      try {
        size_t used = 0;
        p.fire_on_hit = std::stoi(sched.substr(0, star), &used);
        if (used != (star == std::string::npos ? sched.size() : star)) {
          return false;
        }
        if (star != std::string::npos) {
          p.times = std::stoi(sched.substr(star + 1), &used);
          if (used != sched.size() - star - 1) return false;
        }
      } catch (...) {
        return false;
      }
      if (p.fire_on_hit < 1 || p.times < 1) return false;
    }
    entries.push_back(std::move(p));
  }
  if (entries.empty()) return false;
  for (const auto& p : entries) Arm(p.point, p.fire_on_hit, p.times);
  return true;
}

void ArmFromEnvironment() {
  const char* spec = std::getenv("CAUSER_FAULT");
  if (spec == nullptr || spec[0] == '\0') return;
  if (!ArmFromSpec(spec)) {
    CAUSER_LOG(Error) << "unparsable CAUSER_FAULT spec: " << spec;
    std::abort();
  }
}

}  // namespace causer::fault
