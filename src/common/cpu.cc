#include "common/cpu.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <optional>

#include "common/log.h"

namespace causer::cpu {
namespace {

/// The compiled-in set is decided at build time: CMake defines
/// CAUSER_ISA_AVX2_COMPILED / CAUSER_ISA_AVX512_COMPILED project-wide
/// exactly when it also compiles the matching primitives_*.cc translation
/// unit, so this file and the dispatch registry can never disagree.
constexpr bool kAvx2Compiled =
#ifdef CAUSER_ISA_AVX2_COMPILED
    true;
#else
    false;
#endif
constexpr bool kAvx512Compiled =
#ifdef CAUSER_ISA_AVX512_COMPILED
    true;
#else
    false;
#endif

bool CpuHas(Isa isa) {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2");
    case Isa::kAvx512:
      // The AVX-512 variant uses only AVX-512F ops (plus the AVX2 ones it
      // shares with the 256-bit variant, implied by -mavx512f).
      return __builtin_cpu_supports("avx512f");
  }
  return false;
#else
  return isa == Isa::kScalar;
#endif
}

/// Selection state: the flag override (highest precedence) plus the cached
/// resolution. `generation`-free by design — hot paths read `active`
/// with one relaxed atomic load; mutation is rare (startup, tests, bench)
/// and serialized by `mu`.
struct State {
  std::mutex mu;
  std::optional<Isa> flag_override;
  std::atomic<int> active{-1};  // -1 = not resolved yet
  IsaSelection selection;      // valid iff active != -1, guarded by mu
};

State& GetState() {
  static State s;
  return s;
}

/// Walks the fallback chain: the strongest supported tier at or below
/// `want`. kScalar is always compiled and supported, so this terminates.
Isa Degrade(Isa want) {
  for (int t = static_cast<int>(want); t > 0; --t) {
    if (IsaSupported(static_cast<Isa>(t))) return static_cast<Isa>(t);
  }
  return Isa::kScalar;
}

/// Computes the selection under the precedence flag > env > cpuid.
/// A malformed CAUSER_CPU_ISA value is logged and ignored (cpuid wins);
/// a malformed flag never reaches here (SetIsaOverride rejects it).
IsaSelection Resolve(const std::optional<Isa>& flag_override) {
  IsaSelection sel;
  if (flag_override.has_value()) {
    sel.source = IsaSource::kFlag;
    sel.requested = *flag_override;
  } else if (const char* env = std::getenv("CAUSER_CPU_ISA");
             env != nullptr && env[0] != '\0') {
    Isa parsed;
    if (ParseIsa(env, &parsed)) {
      sel.source = IsaSource::kEnv;
      sel.requested = parsed;
    } else {
      CAUSER_LOG(Warning) << "cpu: ignoring malformed CAUSER_CPU_ISA='"
                          << env
                          << "' (expected scalar|avx2|avx512|auto)";
      sel.source = IsaSource::kCpuid;
      sel.requested = DetectBest();
    }
  } else {
    sel.source = IsaSource::kCpuid;
    sel.requested = DetectBest();
  }
  sel.active = Degrade(sel.requested);
  sel.fell_back = sel.active != sel.requested;
  if (sel.fell_back) {
    CAUSER_LOG(Warning) << "cpu: requested ISA '" << IsaName(sel.requested)
                        << "' unavailable (compiled="
                        << (IsaCompiled(sel.requested) ? 1 : 0)
                        << ", cpu=" << (CpuHas(sel.requested) ? 1 : 0)
                        << "); falling back to '" << IsaName(sel.active)
                        << "'";
  }
  return sel;
}

/// Resolves-and-caches under the lock; returns the active tier.
Isa ResolveLocked(State& s) {
  s.selection = Resolve(s.flag_override);
  s.active.store(static_cast<int>(s.selection.active),
                 std::memory_order_release);
  return s.selection.active;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseIsa(const std::string& name, Isa* out) {
  if (name == "scalar") {
    *out = Isa::kScalar;
  } else if (name == "avx2") {
    *out = Isa::kAvx2;
  } else if (name == "avx512") {
    *out = Isa::kAvx512;
  } else if (name == "auto") {
    *out = DetectBest();
  } else {
    return false;
  }
  return true;
}

bool IsaCompiled(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return kAvx2Compiled;
    case Isa::kAvx512:
      return kAvx512Compiled;
  }
  return false;
}

bool IsaSupported(Isa isa) { return IsaCompiled(isa) && CpuHas(isa); }

Isa DetectBest() { return Degrade(Isa::kAvx512); }

std::vector<Isa> CompiledIsas() {
  std::vector<Isa> out = {Isa::kScalar};
  if (IsaCompiled(Isa::kAvx2)) out.push_back(Isa::kAvx2);
  if (IsaCompiled(Isa::kAvx512)) out.push_back(Isa::kAvx512);
  return out;
}

Isa ActiveIsa() {
  State& s = GetState();
  int cached = s.active.load(std::memory_order_acquire);
  if (cached >= 0) return static_cast<Isa>(cached);
  std::lock_guard<std::mutex> lock(s.mu);
  cached = s.active.load(std::memory_order_relaxed);
  if (cached >= 0) return static_cast<Isa>(cached);
  return ResolveLocked(s);
}

IsaSelection ActiveSelection() {
  ActiveIsa();  // ensure resolved
  State& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.selection;
}

bool SetIsaOverride(const std::string& name) {
  Isa parsed;
  if (!ParseIsa(name, &parsed)) return false;
  State& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  s.flag_override = parsed;
  ResolveLocked(s);
  return true;
}

void ResetIsaForTest() {
  State& s = GetState();
  std::lock_guard<std::mutex> lock(s.mu);
  s.flag_override.reset();
  s.active.store(-1, std::memory_order_release);
}

}  // namespace causer::cpu
