#ifndef CAUSER_COMMON_TABLE_H_
#define CAUSER_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace causer {

/// ASCII table builder used by the bench harness to print paper-style tables.
///
/// Usage:
///   Table t({"Model", "F1@5", "NDCG@5"});
///   t.AddRow({"BPR", "0.63", "1.28"});
///   std::cout << t.ToString();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row. Rows shorter than the header are padded with "".
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Renders the table with aligned columns and +---+ borders.
  std::string ToString() const;

  /// Number of data rows (separators excluded).
  int num_rows() const;

  /// Formats a double with `precision` decimals (fixed notation).
  static std::string Fmt(double value, int precision = 2);

 private:
  std::vector<std::string> header_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace causer

#endif  // CAUSER_COMMON_TABLE_H_
