#ifndef CAUSER_COMMON_METRICS_H_
#define CAUSER_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace causer::metrics {

/// Process-wide recording switch. Instruments are registered eagerly (so a
/// snapshot always enumerates the full schema, even for metrics that never
/// fired) but record nothing while disabled: every fast-path operation is
/// one relaxed atomic load and a predictable branch. Disabled is the
/// default, which keeps the engine's hot paths at their pre-observability
/// cost; `causer_cli` enables recording when `--metrics-out` or
/// `--metrics-interval` is passed.
bool Enabled();

/// Turns recording on or off. Safe to call at any time; updates recorded
/// while enabled are kept when recording is later disabled.
void SetEnabled(bool on);

/// The three instrument kinds of the registry.
enum class MetricType { kCounter, kGauge, kHistogram };

namespace internal {

/// Stripe counts: each thread picks a stable stripe index on first use
/// (round-robin assignment), so concurrent updates from different threads
/// land on distinct cache lines — the lock-free fast path. Snapshot()
/// merges the stripes. More than kCounterStripes concurrent threads simply
/// share stripes (still correct, relaxed atomic adds).
inline constexpr int kCounterStripes = 16;
inline constexpr int kHistogramStripes = 8;

/// Stable per-thread stripe index, assigned round-robin on first call.
int ThreadStripe();

/// A cache-line-padded atomic cell (one stripe of a counter).
struct alignas(64) PaddedU64 {
  std::atomic<uint64_t> value{0};
};

}  // namespace internal

/// Monotonically increasing counter. Add() is lock-free (one relaxed
/// fetch_add on the calling thread's stripe).
class Counter {
 public:
  /// Adds `n` to the counter. No-op while recording is disabled.
  void Add(uint64_t n = 1) {
    if (!Enabled()) return;
    cells_[internal::ThreadStripe() % internal::kCounterStripes]
        .value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Merged value across all stripes.
  uint64_t Value() const;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend void ResetForTest();

  internal::PaddedU64 cells_[internal::kCounterStripes];
};

/// Last-write-wins double value (e.g. the current acyclicity residual).
class Gauge {
 public:
  /// Stores `v`. No-op while recording is disabled.
  void Set(double v) {
    if (!Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend void ResetForTest();

  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: observation counts per bucket plus total count
/// and sum. Bucket i counts observations v <= bounds[i]; one extra
/// overflow bucket counts v > bounds.back(). Observe() is lock-free
/// (relaxed atomic adds on the calling thread's stripe).
class Histogram {
 public:
  /// Records one observation. No-op while recording is disabled.
  void Observe(double v);

  /// Upper bounds of the finite buckets, ascending.
  const std::vector<double>& bounds() const { return bounds_; }

  /// Merged per-bucket counts (size bounds().size() + 1; last = overflow).
  std::vector<uint64_t> BucketCounts() const;
  /// Merged observation count.
  uint64_t Count() const;
  /// Merged observation sum.
  double Sum() const;

  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend void ResetForTest();

  struct Stripe {
    /// buckets[i] for i < bounds.size() counts v <= bounds[i]; the last
    /// slot counts overflow. Allocated once at construction.
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::vector<Stripe> stripes_;
};

/// `count` upper bounds starting at `start`, each `factor` times the
/// previous — the standard latency-bucket shape.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);

/// Registers (or looks up) a counter by name. Name is the identity: a
/// second call with the same name returns the same instrument, and
/// CHECK-fails if the existing registration is a different type. `unit`
/// and `help` document the metric (surfaced in snapshots and
/// docs/OBSERVABILITY.md).
Counter& GetCounter(const std::string& name, const std::string& unit,
                    const std::string& help);

/// Registers (or looks up) a gauge by name.
Gauge& GetGauge(const std::string& name, const std::string& unit,
                const std::string& help);

/// Registers (or looks up) a histogram by name. `bounds` must be
/// non-empty and strictly ascending, and must match the existing
/// registration if the name is already taken.
Histogram& GetHistogram(const std::string& name, const std::string& unit,
                        const std::string& help,
                        const std::vector<double>& bounds);

/// One metric's merged state at snapshot time.
struct SnapshotEntry {
  std::string name;
  MetricType type = MetricType::kCounter;
  std::string unit;
  std::string help;
  /// Counter value, or histogram observation count.
  uint64_t count = 0;
  /// Gauge value, or histogram observation sum.
  double value = 0.0;
  /// Histogram bucket upper bounds (empty for counters/gauges).
  std::vector<double> bounds;
  /// Histogram per-bucket counts, size bounds.size() + 1 (last = overflow).
  std::vector<uint64_t> bucket_counts;

  bool operator==(const SnapshotEntry&) const = default;
};

/// Merged state of every registered metric, sorted by name. Deterministic:
/// two snapshots with no interleaved updates are equal, independent of the
/// number of threads that produced the updates.
std::vector<SnapshotEntry> Snapshot();

/// Human-readable one-line-per-metric dump (for --metrics-interval).
std::string SnapshotText();

/// The snapshot as a JSON document:
///   {"metrics": [{"name": ..., "type": ..., "unit": ..., "help": ...,
///                 "value"|"count"/"sum"/"buckets": ...}, ...]}
std::string SnapshotJson();

/// Writes SnapshotJson() to `path`. Returns false on I/O failure.
bool WriteSnapshotJson(const std::string& path);

/// Zeroes every registered metric (registrations are kept). Test-only.
void ResetForTest();

}  // namespace causer::metrics

#endif  // CAUSER_COMMON_METRICS_H_
