#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace causer::trace {
namespace {

std::atomic<bool> g_enabled{false};

/// Global cap on buffered events; a runaway loop with tracing on degrades
/// to counted drops instead of unbounded memory.
constexpr uint64_t kMaxEvents = 1u << 20;

/// One thread's event buffer. Appends come only from the owning thread;
/// the mutex serializes them against Snapshot()/Reset() from other
/// threads (uncontended in steady state, so the append fast path is one
/// uncontended lock).
struct ThreadBuffer {
  std::mutex mu;
  std::vector<Event> events;
  int tid = 0;
};

struct Global {
  std::mutex mu;
  std::vector<ThreadBuffer*> live;
  /// Events of exited threads, moved here by the thread-local handle's
  /// destructor so they survive the thread.
  std::vector<Event> retired;
  int next_tid = 0;
  std::atomic<uint64_t> total{0};
  std::atomic<uint64_t> dropped{0};
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

/// Leaked on purpose: thread-local buffer handles unregister themselves at
/// thread exit, which may run during static destruction in the main
/// thread; a leaked registry cannot be destroyed out from under them.
Global& GetGlobal() {
  static Global* global = new Global;
  return *global;
}

/// Registers the calling thread's buffer for its lifetime; flushes the
/// events into the retired list at thread exit.
class BufferHandle {
 public:
  BufferHandle() {
    Global& global = GetGlobal();
    std::lock_guard<std::mutex> lock(global.mu);
    buffer_.tid = global.next_tid++;
    global.live.push_back(&buffer_);
  }

  ~BufferHandle() {
    Global& global = GetGlobal();
    std::lock_guard<std::mutex> lock(global.mu);
    {
      std::lock_guard<std::mutex> buffer_lock(buffer_.mu);
      global.retired.insert(global.retired.end(), buffer_.events.begin(),
                            buffer_.events.end());
      buffer_.events.clear();
    }
    global.live.erase(
        std::find(global.live.begin(), global.live.end(), &buffer_));
  }

  ThreadBuffer& buffer() { return buffer_; }

 private:
  ThreadBuffer buffer_;
};

ThreadBuffer& LocalBuffer() {
  thread_local BufferHandle handle;
  return handle.buffer();
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - GetGlobal().epoch)
      .count();
}

void Append(Event event) {
  Global& global = GetGlobal();
  if (global.total.fetch_add(1, std::memory_order_relaxed) >= kMaxEvents) {
    global.total.fetch_sub(1, std::memory_order_relaxed);
    global.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ThreadBuffer& buffer = LocalBuffer();
  event.tid = buffer.tid;
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(event);
}

std::string JsonQuote(const char* s) {
  std::string out = "\"";
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  return out + "\"";
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void Reset() {
  Global& global = GetGlobal();
  std::lock_guard<std::mutex> lock(global.mu);
  for (ThreadBuffer* buffer : global.live) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  global.retired.clear();
  global.total.store(0, std::memory_order_relaxed);
  global.dropped.store(0, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char* name, const char* category)
    : name_(name), category_(category) {
  if (!Enabled()) return;
  start_us_ = NowUs();
}

TraceSpan::~TraceSpan() {
  if (start_us_ < 0) return;
  Event event;
  event.name = name_;
  event.category = category_;
  event.phase = 'X';
  event.ts_us = start_us_;
  event.dur_us = NowUs() - start_us_;
  event.num_args = num_args_;
  for (int i = 0; i < num_args_; ++i) {
    event.arg_keys[i] = arg_keys_[i];
    event.arg_values[i] = arg_values_[i];
  }
  Append(event);
}

void TraceSpan::AddArg(const char* key, double value) {
  if (start_us_ < 0 || num_args_ >= kMaxArgs) return;
  arg_keys_[num_args_] = key;
  arg_values_[num_args_] = value;
  ++num_args_;
}

void Instant(const char* name, const char* category) {
  if (!Enabled()) return;
  Event event;
  event.name = name;
  event.category = category;
  event.phase = 'i';
  event.ts_us = NowUs();
  Append(event);
}

std::vector<Event> Snapshot() {
  Global& global = GetGlobal();
  std::lock_guard<std::mutex> lock(global.mu);
  std::vector<Event> out = global.retired;
  for (ThreadBuffer* buffer : global.live) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    return a.tid < b.tid;
  });
  return out;
}

uint64_t DroppedEvents() {
  return GetGlobal().dropped.load(std::memory_order_relaxed);
}

std::string ChromeTraceJson() {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const Event& event : Snapshot()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": " + JsonQuote(event.name) +
           ", \"cat\": " + JsonQuote(event.category) + ", \"ph\": \"" +
           event.phase + "\", \"ts\": " + std::to_string(event.ts_us) +
           ", \"pid\": 1, \"tid\": " + std::to_string(event.tid);
    if (event.phase == 'X') {
      out += ", \"dur\": " + std::to_string(event.dur_us);
    } else {
      out += ", \"s\": \"t\"";  // instant scope: thread
    }
    if (event.num_args > 0) {
      out += ", \"args\": {";
      for (int i = 0; i < event.num_args; ++i) {
        if (i > 0) out += ", ";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.9g", event.arg_values[i]);
        out += JsonQuote(event.arg_keys[i]) + ": " + buf;
      }
      out += "}";
    }
    out += "}";
  }
  return out + "]}";
}

bool WriteChromeTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ChromeTraceJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fputc('\n', f);
  return std::fclose(f) == 0 && ok;
}

}  // namespace causer::trace
