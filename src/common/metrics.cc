#include "common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>

#include "common/log.h"

namespace causer::metrics {
namespace {

std::atomic<bool> g_enabled{false};

/// One registered metric. Exactly one of the instrument pointers is set.
struct Registered {
  MetricType type = MetricType::kCounter;
  std::string unit;
  std::string help;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct Registry {
  std::mutex mu;
  /// std::map: name-sorted iteration gives deterministic snapshots.
  std::map<std::string, Registered> metrics;
};

/// Leaked on purpose: instruments are referenced from function-local
/// statics across the codebase, and a destruction-order race at process
/// exit would buy nothing.
Registry& GetRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out + "\"";
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

}  // namespace

namespace internal {

int ThreadStripe() {
  static std::atomic<int> next{0};
  thread_local int stripe = next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

}  // namespace internal

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& cell : cells_)
    total += cell.value.load(std::memory_order_relaxed);
  return total;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      stripes_(internal::kHistogramStripes) {
  CAUSER_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i)
    CAUSER_CHECK(bounds_[i - 1] < bounds_[i]);
  for (auto& stripe : stripes_) {
    stripe.buckets =
        std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  }
}

void Histogram::Observe(double v) {
  if (!Enabled()) return;
  Stripe& stripe =
      stripes_[internal::ThreadStripe() % internal::kHistogramStripes];
  size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  stripe.buckets[b].fetch_add(1, std::memory_order_relaxed);
  stripe.count.fetch_add(1, std::memory_order_relaxed);
  stripe.sum.fetch_add(v, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& stripe : stripes_) {
    for (size_t b = 0; b < out.size(); ++b)
      out[b] += stripe.buckets[b].load(std::memory_order_relaxed);
  }
  return out;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& stripe : stripes_)
    total += stripe.count.load(std::memory_order_relaxed);
  return total;
}

double Histogram::Sum() const {
  // Stripes are summed in index order, so the float rounding is
  // deterministic for a given set of per-stripe sums.
  double total = 0.0;
  for (const auto& stripe : stripes_)
    total += stripe.sum.load(std::memory_order_relaxed);
  return total;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  CAUSER_CHECK(start > 0.0 && factor > 1.0 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

Counter& GetCounter(const std::string& name, const std::string& unit,
                    const std::string& help) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] = registry.metrics.try_emplace(name);
  if (inserted) {
    it->second.type = MetricType::kCounter;
    it->second.unit = unit;
    it->second.help = help;
    it->second.counter = std::make_unique<Counter>();
  }
  CAUSER_CHECK(it->second.type == MetricType::kCounter);
  return *it->second.counter;
}

Gauge& GetGauge(const std::string& name, const std::string& unit,
                const std::string& help) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] = registry.metrics.try_emplace(name);
  if (inserted) {
    it->second.type = MetricType::kGauge;
    it->second.unit = unit;
    it->second.help = help;
    it->second.gauge = std::make_unique<Gauge>();
  }
  CAUSER_CHECK(it->second.type == MetricType::kGauge);
  return *it->second.gauge;
}

Histogram& GetHistogram(const std::string& name, const std::string& unit,
                        const std::string& help,
                        const std::vector<double>& bounds) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] = registry.metrics.try_emplace(name);
  if (inserted) {
    it->second.type = MetricType::kHistogram;
    it->second.unit = unit;
    it->second.help = help;
    it->second.histogram = std::make_unique<Histogram>(bounds);
  }
  CAUSER_CHECK(it->second.type == MetricType::kHistogram);
  CAUSER_CHECK(it->second.histogram->bounds() == bounds);
  return *it->second.histogram;
}

std::vector<SnapshotEntry> Snapshot() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<SnapshotEntry> out;
  out.reserve(registry.metrics.size());
  for (const auto& [name, metric] : registry.metrics) {
    SnapshotEntry entry;
    entry.name = name;
    entry.type = metric.type;
    entry.unit = metric.unit;
    entry.help = metric.help;
    switch (metric.type) {
      case MetricType::kCounter:
        entry.count = metric.counter->Value();
        break;
      case MetricType::kGauge:
        entry.value = metric.gauge->Value();
        break;
      case MetricType::kHistogram:
        entry.count = metric.histogram->Count();
        entry.value = metric.histogram->Sum();
        entry.bounds = metric.histogram->bounds();
        entry.bucket_counts = metric.histogram->BucketCounts();
        break;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

std::string SnapshotText() {
  std::string out;
  for (const SnapshotEntry& entry : Snapshot()) {
    out += entry.name;
    switch (entry.type) {
      case MetricType::kCounter:
        out += " " + std::to_string(entry.count);
        break;
      case MetricType::kGauge:
        out += " " + FormatDouble(entry.value);
        break;
      case MetricType::kHistogram: {
        out += " count=" + std::to_string(entry.count) +
               " sum=" + FormatDouble(entry.value) + " buckets=";
        for (size_t b = 0; b < entry.bucket_counts.size(); ++b) {
          if (b > 0) out += ",";
          out += (b < entry.bounds.size()
                      ? "le" + FormatDouble(entry.bounds[b])
                      : std::string("inf")) +
                 ":" + std::to_string(entry.bucket_counts[b]);
        }
        break;
      }
    }
    out += " (" + entry.unit + ")\n";
  }
  return out;
}

std::string SnapshotJson() {
  std::string out = "{\"metrics\": [";
  bool first = true;
  for (const SnapshotEntry& entry : Snapshot()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": " + JsonQuote(entry.name) +
           ", \"type\": " + JsonQuote(TypeName(entry.type)) +
           ", \"unit\": " + JsonQuote(entry.unit) +
           ", \"help\": " + JsonQuote(entry.help);
    switch (entry.type) {
      case MetricType::kCounter:
        out += ", \"value\": " + std::to_string(entry.count);
        break;
      case MetricType::kGauge:
        out += ", \"value\": " + FormatDouble(entry.value);
        break;
      case MetricType::kHistogram: {
        out += ", \"count\": " + std::to_string(entry.count) +
               ", \"sum\": " + FormatDouble(entry.value) +
               ", \"buckets\": [";
        for (size_t b = 0; b < entry.bucket_counts.size(); ++b) {
          if (b > 0) out += ", ";
          out += "{\"le\": " +
                 (b < entry.bounds.size()
                      ? FormatDouble(entry.bounds[b])
                      : JsonQuote("inf")) +
                 ", \"count\": " + std::to_string(entry.bucket_counts[b]) +
                 "}";
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  return out + "]}";
}

bool WriteSnapshotJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = SnapshotJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fputc('\n', f);
  return std::fclose(f) == 0 && ok;
}

void ResetForTest() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& [name, metric] : registry.metrics) {
    switch (metric.type) {
      case MetricType::kCounter:
        for (auto& cell : metric.counter->cells_)
          cell.value.store(0, std::memory_order_relaxed);
        break;
      case MetricType::kGauge:
        metric.gauge->value_.store(0.0, std::memory_order_relaxed);
        break;
      case MetricType::kHistogram:
        for (auto& stripe : metric.histogram->stripes_) {
          for (size_t b = 0; b <= metric.histogram->bounds_.size(); ++b)
            stripe.buckets[b].store(0, std::memory_order_relaxed);
          stripe.count.store(0, std::memory_order_relaxed);
          stripe.sum.store(0.0, std::memory_order_relaxed);
        }
        break;
    }
  }
}

}  // namespace causer::metrics
