#ifndef CAUSER_COMMON_NET_H_
#define CAUSER_COMMON_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace causer::net {

// Dependency-free TCP + framing layer shared by the serving front-end
// (src/serve/server.cc), its client (src/serve/client.cc) and the load
// generator (tools/causer_loadgen.cc). All frames on a causer socket are
// [u32 little-endian payload length][payload]; payload layouts live in
// src/serve/protocol.h.

// ---- sockets ----------------------------------------------------------

/// Opens a listening TCP socket bound to host:port (port 0 = ephemeral)
/// with SO_REUSEADDR. Returns the fd, or -1 on failure; `*bound_port`
/// (may be null) receives the actually bound port.
int ListenTcp(const std::string& host, int port, int backlog,
              int* bound_port);

/// Blocking connect to host:port (numeric IPv4 host). Returns fd or -1.
int ConnectTcp(const std::string& host, int port);

/// accept() retrying EINTR. Returns the connection fd, or -1 once the
/// listener was shut down or failed.
int AcceptConnection(int listen_fd);

/// shutdown(fd, SHUT_RDWR): wakes any thread blocked reading the socket.
void ShutdownSocket(int fd);

/// close() retrying EINTR. Safe on -1 (no-op).
void CloseSocket(int fd);

/// SO_RCVTIMEO: blocking reads fail after `seconds` instead of hanging
/// (the load generator's hung-connection detector). False on failure.
bool SetRecvTimeout(int fd, double seconds);

// ---- length-prefixed framing ------------------------------------------

/// Reads exactly `n` bytes (retries EINTR and short reads). False on EOF
/// or error.
bool ReadFull(int fd, void* buf, size_t n);

/// Writes exactly `n` bytes; uses MSG_NOSIGNAL so a closed peer yields an
/// error instead of SIGPIPE. False on error.
bool WriteFull(int fd, const void* buf, size_t n);

/// Reads one frame into `*payload`. False on EOF, error, or a declared
/// length above `max_bytes` (corruption / protocol-confusion guard).
bool ReadFrame(int fd, std::vector<uint8_t>* payload, uint32_t max_bytes);

/// Writes one frame.
bool WriteFrame(int fd, const uint8_t* payload, size_t len);

// ---- little-endian scalar packing (the wire byte order) ---------------

void PutU8(std::vector<uint8_t>* out, uint8_t v);
void PutU16(std::vector<uint8_t>* out, uint16_t v);
void PutU32(std::vector<uint8_t>* out, uint32_t v);
void PutF32(std::vector<uint8_t>* out, float v);

/// Bounds-checked little-endian reader: every getter past the end flips
/// `ok` to false and returns 0, so decoders can check once at the end.
struct Cursor {
  const uint8_t* data = nullptr;
  size_t len = 0;
  size_t pos = 0;
  bool ok = true;

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  float F32();
  bool AtEnd() const { return pos == len; }
};

// ---- signal-driven shutdown (self-pipe) -------------------------------

/// Installs SIGINT/SIGTERM handlers that record the request and write one
/// byte to an internal pipe (async-signal-safe). Idempotent; returns
/// false if the pipe or handlers could not be installed.
bool InstallShutdownHandler();

/// True once a shutdown signal arrived or TriggerShutdown() was called.
bool ShutdownRequested();

/// Blocks until ShutdownRequested() becomes true.
void WaitForShutdown();

/// Programmatic equivalent of the signal (tests, embedding).
void TriggerShutdown();

}  // namespace causer::net

#endif  // CAUSER_COMMON_NET_H_
