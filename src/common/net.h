#ifndef CAUSER_COMMON_NET_H_
#define CAUSER_COMMON_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace causer::net {

// Dependency-free TCP + framing layer shared by the serving front-end
// (src/serve/server.cc), its client (src/serve/client.cc) and the load
// generator (tools/causer_loadgen.cc). All frames on a causer socket are
// [u32 little-endian payload length][payload]; payload layouts live in
// src/serve/protocol.h.

// ---- sockets ----------------------------------------------------------

/// Opens a listening TCP socket bound to host:port (port 0 = ephemeral)
/// with SO_REUSEADDR. Returns the fd, or -1 on failure; `*bound_port`
/// (may be null) receives the actually bound port.
int ListenTcp(const std::string& host, int port, int backlog,
              int* bound_port);

/// Blocking connect to host:port (numeric IPv4 host). Returns fd or -1.
int ConnectTcp(const std::string& host, int port);

/// accept() retrying EINTR. Returns the connection fd, or -1 once the
/// listener was shut down or failed.
int AcceptConnection(int listen_fd);

/// shutdown(fd, SHUT_RDWR): wakes any thread blocked reading the socket.
void ShutdownSocket(int fd);

/// close() retrying EINTR. Safe on -1 (no-op).
void CloseSocket(int fd);

/// SO_RCVTIMEO: blocking reads fail after `seconds` instead of hanging
/// (the load generator's hung-connection detector, the server's
/// slow-loris guard). 0 clears the timeout. False on failure.
bool SetRecvTimeout(int fd, double seconds);

// ---- length-prefixed framing ------------------------------------------

/// Why a read-side call returned false. `kTimeout` is only reported on
/// sockets with SetRecvTimeout() applied; the server's slow-loris guard
/// uses it to tell an idle/stalled peer apart from a clean disconnect.
enum class ReadError : uint8_t {
  kNone = 0,      // the call succeeded
  kClosed,        // EOF before any/all bytes arrived
  kTimeout,       // SO_RCVTIMEO expired mid-read
  kError,         // other socket error
  kTooLarge,      // frame declared a length above max_bytes
};

/// Reads exactly `n` bytes (retries EINTR and short reads). False on EOF
/// or error; `*error` (may be null) receives the cause.
bool ReadFull(int fd, void* buf, size_t n, ReadError* error = nullptr);

/// Writes exactly `n` bytes; uses MSG_NOSIGNAL so a closed peer yields an
/// error instead of SIGPIPE. False on error.
bool WriteFull(int fd, const void* buf, size_t n);

/// Reads one frame into `*payload`. False on EOF, error, or a declared
/// length above `max_bytes` (corruption / protocol-confusion guard);
/// `*error` (may be null) receives the cause. Fault points:
/// `net.conn_reset` resets the socket before the read, `net.slow_reader`
/// stalls between the length header and the payload.
bool ReadFrame(int fd, std::vector<uint8_t>* payload, uint32_t max_bytes,
               ReadError* error = nullptr);

/// Writes one frame. Fault point `net.torn_write` emits the header plus a
/// truncated payload and reports failure — the peer sees a torn frame.
bool WriteFrame(int fd, const uint8_t* payload, size_t len);

// ---- little-endian scalar packing (the wire byte order) ---------------

void PutU8(std::vector<uint8_t>* out, uint8_t v);
void PutU16(std::vector<uint8_t>* out, uint16_t v);
void PutU32(std::vector<uint8_t>* out, uint32_t v);
void PutF32(std::vector<uint8_t>* out, float v);

/// Bounds-checked little-endian reader: every getter past the end flips
/// `ok` to false and returns 0, so decoders can check once at the end.
struct Cursor {
  const uint8_t* data = nullptr;
  size_t len = 0;
  size_t pos = 0;
  bool ok = true;

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  float F32();
  bool AtEnd() const { return pos == len; }
};

// ---- signal-driven shutdown (self-pipe) -------------------------------

/// Installs SIGINT/SIGTERM handlers that record the request and write one
/// byte to an internal pipe (async-signal-safe). Idempotent; returns
/// false if the pipe or handlers could not be installed.
bool InstallShutdownHandler();

/// True once a shutdown signal arrived or TriggerShutdown() was called.
bool ShutdownRequested();

/// Blocks until ShutdownRequested() becomes true.
void WaitForShutdown();

/// Programmatic equivalent of the signal (tests, embedding).
void TriggerShutdown();

// ---- signal-driven reload (SIGHUP, same self-pipe) --------------------

/// Installs a SIGHUP handler that records a reload request on the same
/// self-pipe. Call after InstallShutdownHandler(). Idempotent; false if
/// the pipe or handler could not be installed.
bool InstallReloadHandler();

/// Programmatic equivalent of SIGHUP (tests, wire-triggered reloads).
void TriggerReload();

enum class SignalKind : uint8_t {
  kNone = 0,   // timeout expired with no signal
  kShutdown,   // SIGINT/SIGTERM/TriggerShutdown
  kReload,     // SIGHUP/TriggerReload
};

/// Blocks up to `timeout_seconds` for a shutdown or reload request.
/// Consumes one pending reload per kReload return; kShutdown is sticky.
/// Lets the serve loop interleave signal handling with periodic work
/// (checkpoint-directory polling for `--reload-watch`).
SignalKind WaitForSignal(double timeout_seconds);

}  // namespace causer::net

#endif  // CAUSER_COMMON_NET_H_
