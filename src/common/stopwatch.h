#ifndef CAUSER_COMMON_STOPWATCH_H_
#define CAUSER_COMMON_STOPWATCH_H_

#include <chrono>

namespace causer {

/// Wall-clock stopwatch returning a scalar duration. Used wherever the
/// caller consumes the number directly: bench reports, log lines, and the
/// `*_seconds` histogram observations in the metrics registry
/// (common/metrics.h). For timing that should appear on a timeline instead,
/// use trace::TraceSpan (common/trace.h), which records begin/end events
/// into per-thread buffers for chrome://tracing export rather than
/// returning a value.
class Stopwatch {
 public:
  /// Starts (or restarts) the stopwatch.
  Stopwatch();

  /// Resets the start time to now.
  void Restart();

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace causer

#endif  // CAUSER_COMMON_STOPWATCH_H_
