#ifndef CAUSER_COMMON_STOPWATCH_H_
#define CAUSER_COMMON_STOPWATCH_H_

#include <chrono>

namespace causer {

/// Wall-clock stopwatch for coarse timing of training loops and benches.
class Stopwatch {
 public:
  /// Starts (or restarts) the stopwatch.
  Stopwatch();

  /// Resets the start time to now.
  void Restart();

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace causer

#endif  // CAUSER_COMMON_STOPWATCH_H_
