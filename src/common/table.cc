#include "common/table.h"

#include <iomanip>
#include <sstream>

namespace causer {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::AddSeparator() { rows_.emplace_back(); }

int Table::num_rows() const {
  int n = 0;
  for (const auto& r : rows_) {
    if (!r.empty()) ++n;
  }
  return n;
}

std::string Table::Fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto hline = [&]() {
    std::string s = "+";
    for (size_t w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      os << " " << std::left << std::setw(static_cast<int>(widths[c])) << cell
         << " |";
    }
    os << "\n";
    return os.str();
  };

  std::string out = hline() + line(header_) + hline();
  for (const auto& row : rows_) {
    out += row.empty() ? hline() : line(row);
  }
  out += hline();
  return out;
}

}  // namespace causer
