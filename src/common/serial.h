#ifndef CAUSER_COMMON_SERIAL_H_
#define CAUSER_COMMON_SERIAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace causer::serial {

/// Little building blocks for binary state blobs (optimizer moments, RNG
/// streams, checkpoint sections). Values are appended in native byte order
/// — the blobs are machine-local resume state, not an interchange format.
/// Every Append* has a matching Reader::Read* that fails (returns false,
/// latches !ok()) instead of reading past the end, so a truncated blob can
/// never be half-applied silently.
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
void AppendI32(std::string* out, int32_t v);
void AppendF32(std::string* out, float v);
void AppendF64(std::string* out, double v);
/// u64 length prefix + raw bytes.
void AppendString(std::string* out, const std::string& s);
/// u64 element count + raw float data.
void AppendFloats(std::string* out, const std::vector<float>& v);
/// Same framing from a raw pointer (for buffers with custom allocators).
void AppendFloats(std::string* out, const float* data, size_t n);
/// u64 element count + raw double data.
void AppendDoubles(std::string* out, const std::vector<double>& v);

/// Sequential reader over a byte range. All Read* return false on
/// exhaustion (and every later call keeps failing), so callers can batch
/// reads and check ok() once.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::string& blob)
      : Reader(blob.data(), blob.size()) {}

  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadI32(int32_t* v);
  bool ReadF32(float* v);
  bool ReadF64(double* v);
  bool ReadString(std::string* s);
  bool ReadFloats(std::vector<float>* v);
  bool ReadDoubles(std::vector<double>* v);

  /// Advances the cursor by `n` bytes without copying; fails (and
  /// latches) like a read when fewer than `n` bytes remain.
  bool Skip(size_t n);

  /// True while no read has failed.
  bool ok() const { return ok_; }
  /// Bytes left to read.
  size_t remaining() const { return size_ - pos_; }
  /// True when the cursor consumed the whole range without failures.
  bool AtEnd() const { return ok_ && pos_ == size_; }

 private:
  bool Take(void* dst, size_t n);

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib one) of `size` bytes. Pass a
/// previous return value as `seed` to checksum data in chunks.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace causer::serial

#endif  // CAUSER_COMMON_SERIAL_H_
