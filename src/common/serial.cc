#include "common/serial.h"

#include <cstring>

namespace causer::serial {
namespace {

void AppendRaw(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

/// Sanity cap on length-prefixed reads: a corrupted length prefix must not
/// turn into a multi-gigabyte allocation before the (inevitable) short-read
/// failure. No legitimate blob in this codebase approaches this.
constexpr uint64_t kMaxElements = uint64_t{1} << 32;

}  // namespace

void AppendU32(std::string* out, uint32_t v) { AppendRaw(out, &v, sizeof(v)); }
void AppendU64(std::string* out, uint64_t v) { AppendRaw(out, &v, sizeof(v)); }
void AppendI32(std::string* out, int32_t v) { AppendRaw(out, &v, sizeof(v)); }
void AppendF32(std::string* out, float v) { AppendRaw(out, &v, sizeof(v)); }
void AppendF64(std::string* out, double v) { AppendRaw(out, &v, sizeof(v)); }

void AppendString(std::string* out, const std::string& s) {
  AppendU64(out, s.size());
  out->append(s);
}

void AppendFloats(std::string* out, const std::vector<float>& v) {
  AppendFloats(out, v.data(), v.size());
}

void AppendFloats(std::string* out, const float* data, size_t n) {
  AppendU64(out, n);
  AppendRaw(out, data, n * sizeof(float));
}

void AppendDoubles(std::string* out, const std::vector<double>& v) {
  AppendU64(out, v.size());
  AppendRaw(out, v.data(), v.size() * sizeof(double));
}

bool Reader::Take(void* dst, size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  std::memcpy(dst, data_ + pos_, n);
  pos_ += n;
  return true;
}

bool Reader::Skip(size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  pos_ += n;
  return true;
}

bool Reader::ReadU32(uint32_t* v) { return Take(v, sizeof(*v)); }
bool Reader::ReadU64(uint64_t* v) { return Take(v, sizeof(*v)); }
bool Reader::ReadI32(int32_t* v) { return Take(v, sizeof(*v)); }
bool Reader::ReadF32(float* v) { return Take(v, sizeof(*v)); }
bool Reader::ReadF64(double* v) { return Take(v, sizeof(*v)); }

bool Reader::ReadString(std::string* s) {
  uint64_t n = 0;
  if (!ReadU64(&n) || n > kMaxElements || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  s->assign(data_ + pos_, n);
  pos_ += n;
  return true;
}

bool Reader::ReadFloats(std::vector<float>* v) {
  uint64_t n = 0;
  if (!ReadU64(&n) || n > kMaxElements ||
      size_ - pos_ < n * sizeof(float)) {
    ok_ = false;
    return false;
  }
  v->resize(n);
  return Take(v->data(), n * sizeof(float));
}

bool Reader::ReadDoubles(std::vector<double>* v) {
  uint64_t n = 0;
  if (!ReadU64(&n) || n > kMaxElements ||
      size_ - pos_ < n * sizeof(double)) {
    ok_ = false;
    return false;
  }
  v->resize(n);
  return Take(v->data(), n * sizeof(double));
}

namespace {

/// Nibble-wise CRC-32 table: 16 entries instead of 256 keeps the static
/// footprint trivial; checkpoint payloads are small enough that the extra
/// shift per byte is invisible next to the file I/O around it.
constexpr uint32_t kCrcNibble[16] = {
    0x00000000, 0x1DB71064, 0x3B6E20C8, 0x26D930AC, 0x76DC4190, 0x6B6B51F4,
    0x4DB26158, 0x5005713C, 0xEDB88320, 0xF00F9344, 0xD6D6A3E8, 0xCB61B38C,
    0x9B64C2B0, 0x86D3D2D4, 0xA00AE278, 0xBDBDF21C,
};

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc ^= p[i];
    crc = (crc >> 4) ^ kCrcNibble[crc & 0x0F];
    crc = (crc >> 4) ^ kCrcNibble[crc & 0x0F];
  }
  return ~crc;
}

}  // namespace causer::serial
