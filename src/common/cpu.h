#ifndef CAUSER_COMMON_CPU_H_
#define CAUSER_COMMON_CPU_H_

#include <string>
#include <vector>

namespace causer::cpu {

/// Instruction-set tiers the compute-primitive layer
/// (`src/tensor/primitives/`) ships explicit variants for, ordered from
/// weakest to strongest. The numeric order is the fallback chain: when a
/// requested tier is unavailable, selection walks down to the strongest
/// available one below it.
enum class Isa : int {
  kScalar = 0,  ///< Portable C++; the compiler may auto-vectorize at the
                ///< build baseline (SSE2 on x86-64). Always compiled in.
  kAvx2 = 1,    ///< 256-bit explicit intrinsics (no FMA — see the fp32
                ///< bit-identity contract in docs/KERNELS.md).
  kAvx512 = 2,  ///< 512-bit explicit intrinsics (AVX-512F, no FMA).
};

/// Where the active ISA came from — the override precedence is
/// flag > env > cpuid, enforced by Resolve() and tested by cpu_test.
enum class IsaSource : int {
  kCpuid = 0,  ///< Hardware detection picked the strongest supported tier.
  kEnv = 1,    ///< The CAUSER_CPU_ISA environment variable.
  kFlag = 2,   ///< The --cpu-isa command-line flag (SetIsaOverride).
};

/// One resolved selection: what runs, what was asked for, and whether the
/// request had to fall back because the tier is not compiled in or the
/// CPU lacks it.
struct IsaSelection {
  Isa active = Isa::kScalar;
  Isa requested = Isa::kScalar;
  IsaSource source = IsaSource::kCpuid;
  bool fell_back = false;  ///< requested != active (graceful degradation).
};

/// Lower-case variant name ("scalar", "avx2", "avx512") — the spelling
/// used by --cpu-isa, CAUSER_CPU_ISA, BENCH_kernels.json, and the
/// docs/KERNELS.md ISA table (diffed by tools/check_docs.sh).
const char* IsaName(Isa isa);

/// Parses an IsaName spelling (or "auto" → strongest supported tier,
/// reported as requested = DetectBest()). Returns false on anything else;
/// `*out` is untouched on failure.
bool ParseIsa(const std::string& name, Isa* out);

/// True when this binary contains the variant's translation unit (the
/// build compiles AVX TUs only when the compiler targets x86-64 and
/// accepts the -m flags). kScalar is always true.
bool IsaCompiled(Isa isa);

/// True when the variant is compiled in AND the running CPU reports the
/// feature via cpuid (__builtin_cpu_supports). kScalar is always true.
bool IsaSupported(Isa isa);

/// Strongest supported tier — what runs with no override installed.
Isa DetectBest();

/// All compiled-in tiers, weakest first. Used by bench_kernels to measure
/// every variant and by the docs drift check.
std::vector<Isa> CompiledIsas();

/// The process-wide active ISA, resolved once on first use (flag override
/// if installed, else CAUSER_CPU_ISA, else cpuid) and cached. Hot paths
/// read this through tensor::primitives::Active(); the cached read is one
/// atomic load.
Isa ActiveIsa();

/// Full detail of the cached selection (resolves first if needed).
IsaSelection ActiveSelection();

/// Installs the flag-level override (--cpu-isa) and re-resolves
/// immediately. Highest precedence. An unavailable tier degrades to the
/// strongest available one below it (logged, and visible as fell_back in
/// ActiveSelection()). Returns false — with no state change — when `name`
/// is not a known tier. Must not be called while kernels are running on
/// the pool.
bool SetIsaOverride(const std::string& name);

/// Drops the flag override and the cached selection so the next
/// resolution re-reads CAUSER_CPU_ISA / cpuid. Testing only (the
/// precedence tests in cpu_test flip the env var between resolutions).
void ResetIsaForTest();

}  // namespace causer::cpu

#endif  // CAUSER_COMMON_CPU_H_
