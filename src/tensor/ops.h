#ifndef CAUSER_TENSOR_OPS_H_
#define CAUSER_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace causer::tensor {

/// Differentiable operations. All binary elementwise ops support NumPy-style
/// broadcasting along either dimension when that dimension is 1 in one of
/// the operands (e.g. [n,m]+[1,m] bias add, [T,d]*[T,1] row scaling).

/// Elementwise a + b (broadcasting).
Tensor Add(const Tensor& a, const Tensor& b);

/// Elementwise a - b (broadcasting).
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise a * b (broadcasting).
Tensor Mul(const Tensor& a, const Tensor& b);

/// Elementwise a / b (broadcasting). Caller must ensure b != 0.
Tensor Div(const Tensor& a, const Tensor& b);

/// -a.
Tensor Neg(const Tensor& a);

/// a * c for a compile-time constant scalar.
Tensor ScalarMul(const Tensor& a, float c);

/// a + c elementwise.
Tensor AddScalar(const Tensor& a, float c);

/// Matrix product [n,m] x [m,p] -> [n,p].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Transpose [n,m] -> [m,n].
Tensor Transpose(const Tensor& a);

/// Logistic sigmoid, elementwise.
Tensor Sigmoid(const Tensor& a);

/// Hyperbolic tangent, elementwise.
Tensor Tanh(const Tensor& a);

/// Rectified linear unit, elementwise.
Tensor Relu(const Tensor& a);

/// Exponential, elementwise.
Tensor Exp(const Tensor& a);

/// Natural log of max(a, eps) for numerical safety.
Tensor Log(const Tensor& a, float eps = 1e-12f);

/// Elementwise square root of max(a, 0).
Tensor Sqrt(const Tensor& a);

/// Row-wise softmax: each row of the result sums to 1.
/// `temperature` divides the logits before exponentiation (paper's eta).
Tensor SoftmaxRows(const Tensor& a, float temperature = 1.0f);

/// Sum of all entries -> [1,1].
Tensor Sum(const Tensor& a);

/// Mean of all entries -> [1,1].
Tensor Mean(const Tensor& a);

/// Per-row sum across columns: [n,m] -> [n,1].
Tensor SumRows(const Tensor& a);

/// Per-column sum across rows: [n,m] -> [1,m].
Tensor SumCols(const Tensor& a);

/// Sum of absolute values -> [1,1] (L1; subgradient sign(x) at 0 -> 0).
Tensor L1Norm(const Tensor& a);

/// Sum of squares -> [1,1].
Tensor SquaredNorm(const Tensor& a);

/// Horizontal concatenation [n,m1],[n,m2] -> [n,m1+m2].
Tensor ConcatCols(const Tensor& a, const Tensor& b);

/// Vertical concatenation of equally wide tensors -> [sum rows, m].
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Row slice [start, start+len) -> [len, m] (differentiable view copy).
Tensor SliceRows(const Tensor& a, int start, int len);

/// Gathers rows by index: out[i] = a[indices[i]]. Backward scatter-adds,
/// so repeated indices accumulate gradient (embedding lookup semantics).
Tensor GatherRows(const Tensor& a, const std::vector<int>& indices);

/// Reduction mode for loss ops.
enum class Reduction { kSum, kMean };

/// Numerically stable binary cross-entropy on logits:
///   loss_i = max(x,0) - x*t + log(1 + exp(-|x|)).
/// `logits` and `targets` must have identical shapes; targets in [0,1].
Tensor BceWithLogits(const Tensor& logits, const Tensor& targets,
                     Reduction reduction = Reduction::kSum);

/// Sum of squared differences (optionally mean-reduced).
Tensor MseLoss(const Tensor& a, const Tensor& b,
               Reduction reduction = Reduction::kSum);

}  // namespace causer::tensor

#endif  // CAUSER_TENSOR_OPS_H_
