#ifndef CAUSER_TENSOR_ARENA_H_
#define CAUSER_TENSOR_ARENA_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <vector>

namespace causer::tensor {

/// Bump allocator backing the autograd tape. A training step allocates
/// thousands of short-lived buffers (Node values, gradients, the nodes
/// themselves) that all die together when the step's graph is released;
/// the arena turns each of those malloc/free pairs into a pointer bump and
/// one O(1) Reset() per step.
///
/// Lifetime rules (see docs/PERFORMANCE.md):
///  - Memory from Allocate() is valid until the next Reset(). There is no
///    per-allocation free; deallocation is a no-op.
///  - Reset() rewinds all blocks but keeps them reserved, so a steady-state
///    training loop stops growing after the first few steps.
///  - An Arena is single-threaded: each thread uses its own (ArenaScope
///    activates the calling thread's thread-local arena).
class Arena {
 public:
  /// Every allocation is aligned to this many bytes (covers SIMD loads on
  /// the value/grad buffers and any over-aligned shared_ptr control block).
  static constexpr size_t kAlignment = 64;

  explicit Arena(size_t first_block_bytes = size_t{1} << 20);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of kAlignment-aligned storage valid until Reset().
  void* Allocate(size_t bytes);

  /// Rewinds the arena to empty. All previously returned pointers become
  /// invalid; the underlying blocks stay reserved for reuse.
  void Reset();

  /// Bytes handed out since the last Reset() (rounded up to kAlignment).
  size_t bytes_in_use() const { return in_use_; }

  /// Total bytes of backing blocks currently reserved.
  size_t bytes_reserved() const { return reserved_; }

  /// Number of backing blocks allocated over the arena's lifetime.
  size_t num_blocks() const { return blocks_.size(); }

  /// True when `p` points into one of the arena's blocks (used by
  /// deallocate() to tell arena pointers from heap pointers, and by tests).
  bool Owns(const void* p) const;

 private:
  struct Block {
    char* data = nullptr;
    size_t size = 0;
  };

  void AddBlock(size_t min_bytes);

  std::vector<Block> blocks_;
  size_t block_index_ = 0;  // block currently being bumped
  size_t offset_ = 0;       // bump offset within blocks_[block_index_]
  size_t in_use_ = 0;
  size_t reserved_ = 0;
  size_t first_block_bytes_;
};

/// The calling thread's active arena, or null when no ArenaScope is open.
Arena* ActiveArena();

/// Globally enables/disables ArenaScope activation (default: enabled).
/// When disabled every ArenaScope is a no-op and all tape storage comes
/// from the heap — the before/after knob for benchmarks and the --arena
/// CLI flag.
void SetArenaEnabled(bool enabled);
bool ArenaEnabled();

/// RAII activation of the calling thread's recycled thread-local arena (or
/// an explicit one). While the scope is open, new autograd nodes and their
/// value/grad buffers are carved from the arena; the destructor resets it,
/// releasing the whole tape at once.
///
/// Usage contract: everything allocated inside the scope must be dead (or
/// copied out to plain heap storage) before the scope closes — i.e. open
/// the scope at the top of a training-step or scoring-instance body so its
/// Tensors are inner locals. Parameters created outside any scope stay on
/// the heap, including their lazily allocated gradient buffers, so
/// optimizer state survives Reset(). Nested scopes are no-ops: the inner
/// scope neither switches arenas nor resets the outer one.
class ArenaScope {
 public:
  ArenaScope();
  explicit ArenaScope(Arena* arena);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// True when this scope actually activated an arena (false when nested
  /// inside another scope or when SetArenaEnabled(false) is in effect).
  bool active() const { return arena_ != nullptr; }

 private:
  Arena* arena_ = nullptr;  // the arena this scope activated, or null
};

/// Standard-library allocator that carves from the arena captured at
/// construction time, falling back to the global heap when none was active.
/// Capturing at construction (not at allocate()) is what pins a container
/// to its origin: a parameter's grad vector constructed outside any scope
/// keeps heap-allocating even when EnsureGrad() later runs inside one.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  // Moves and swaps carry the source's arena along with its buffer; copy
  // assignment keeps the destination's allocator (std::vector then copies
  // element-wise through storage from the destination's own source).
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() noexcept : arena_(ActiveArena()) {}
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(size_t n) {
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->Allocate(n * sizeof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
    // Arena memory is reclaimed wholesale by Arena::Reset().
  }

  /// Copy-constructed containers allocate from the *copier's* context (the
  /// arena active right now, or the heap), never from the source's arena:
  /// a buffer copied outside its originating scope must outlive that
  /// scope's Reset().
  ArenaAllocator select_on_container_copy_construction() const {
    return ArenaAllocator(ActiveArena());
  }

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  Arena* arena_;
};

/// Float buffer type of Node values/gradients: a std::vector whose backing
/// store comes from the arena active when the owning Node was created.
using FloatBuffer = std::vector<float, ArenaAllocator<float>>;

}  // namespace causer::tensor

#endif  // CAUSER_TENSOR_ARENA_H_
