#include "tensor/ops.h"

#include <cmath>
#include <functional>

#include "tensor/kernels.h"
#include "tensor/primitives/primitives.h"

namespace causer::tensor {
namespace {

using internal::Node;
using NodePtr = std::shared_ptr<Node>;

/// Every op input resolves through the thread's active
/// ParamSubstitutionScope, so worker threads transparently build their
/// graphs against private parameter copies.
NodePtr Res(const Tensor& t) { return internal::Resolve(t.node()); }

/// Creates the result node of an op. Parents and the backward closure are
/// only recorded when gradients are globally enabled and at least one parent
/// requires them; otherwise the result is a detached leaf.
Tensor MakeResult(int rows, int cols, std::vector<NodePtr> parents,
                  std::function<void(Node&)> backward_fn) {
  auto node = internal::NewNode();
  node->rows = rows;
  node->cols = cols;
  node->value.assign(static_cast<size_t>(rows) * cols, 0.0f);
  bool needs_grad = false;
  if (GradEnabled()) {
    for (const auto& p : parents) {
      if (p->requires_grad) {
        needs_grad = true;
        break;
      }
    }
  }
  if (needs_grad) {
    node->requires_grad = true;
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return Tensor(node);
}

bool BroadcastCompatible(int da, int db) { return da == db || da == 1 || db == 1; }

/// Generic broadcasting binary elementwise op.
/// fwd(x, y) computes the value; dfa/dfb give dL/dx and dL/dy contributions
/// as functions of (x, y, gout).
Tensor BroadcastBinary(const Tensor& a, const Tensor& b,
                       float (*fwd)(float, float),
                       float (*dfa)(float, float, float),
                       float (*dfb)(float, float, float)) {
  CAUSER_CHECK(a.defined() && b.defined());
  CAUSER_CHECK(BroadcastCompatible(a.rows(), b.rows()));
  CAUSER_CHECK(BroadcastCompatible(a.cols(), b.cols()));
  const int rows = std::max(a.rows(), b.rows());
  const int cols = std::max(a.cols(), b.cols());
  NodePtr an = Res(a);
  NodePtr bn = Res(b);

  auto index = [](const NodePtr& n, int r, int c) {
    int rr = n->rows == 1 ? 0 : r;
    int cc = n->cols == 1 ? 0 : c;
    return static_cast<size_t>(rr) * n->cols + cc;
  };

  Tensor out = MakeResult(
      rows, cols, {an, bn}, [an, bn, rows, cols, dfa, dfb, index](Node& self) {
        if (an->requires_grad) an->EnsureGrad();
        if (bn->requires_grad) bn->EnsureGrad();
        for (int r = 0; r < rows; ++r) {
          for (int c = 0; c < cols; ++c) {
            size_t oi = static_cast<size_t>(r) * cols + c;
            float g = self.grad[oi];
            float x = an->value[index(an, r, c)];
            float y = bn->value[index(bn, r, c)];
            if (an->requires_grad) an->grad[index(an, r, c)] += dfa(x, y, g);
            if (bn->requires_grad) bn->grad[index(bn, r, c)] += dfb(x, y, g);
          }
        }
      });
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      out.data()[static_cast<size_t>(r) * cols + c] =
          fwd(an->value[index(an, r, c)], bn->value[index(bn, r, c)]);
    }
  }
  return out;
}

/// Generic elementwise unary op; dfn(x, y, gout) returns dL/dx where y is
/// the forward output (lets sigmoid/tanh reuse the output).
Tensor UnaryOp(const Tensor& a, float (*fwd)(float),
               float (*dfn)(float, float, float)) {
  CAUSER_CHECK(a.defined());
  NodePtr an = Res(a);
  Tensor out = MakeResult(a.rows(), a.cols(), {an}, [an, dfn](Node& self) {
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (size_t i = 0; i < self.value.size(); ++i) {
      an->grad[i] += dfn(an->value[i], self.value[i], self.grad[i]);
    }
  });
  for (size_t i = 0; i < out.data().size(); ++i) {
    out.data()[i] = fwd(an->value[i]);
  }
  return out;
}

/// c[n,p] += op(a) * op(b) on raw buffers: the packed/blocked kernel module
/// (tensor/kernels.h) handles operand packing, vectorization, and the
/// row-sharded pool dispatch, and is bit-identical to the sequential
/// reference for every thread count.
void RawMatMulAdd(const float* a, const float* b, float* c, int n, int m,
                  int p, bool transpose_a, bool transpose_b) {
  kernels::MatMulAdd(a, b, c, n, m, p, transpose_a, transpose_b);
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(
      a, b, [](float x, float y) { return x + y; },
      [](float, float, float g) { return g; },
      [](float, float, float g) { return g; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(
      a, b, [](float x, float y) { return x - y; },
      [](float, float, float g) { return g; },
      [](float, float, float g) { return -g; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(
      a, b, [](float x, float y) { return x * y; },
      [](float, float y, float g) { return g * y; },
      [](float x, float, float g) { return g * x; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(
      a, b, [](float x, float y) { return x / y; },
      [](float, float y, float g) { return g / y; },
      [](float x, float y, float g) { return -g * x / (y * y); });
}

Tensor Neg(const Tensor& a) { return ScalarMul(a, -1.0f); }

Tensor ScalarMul(const Tensor& a, float c) {
  NodePtr an = Res(a);
  Tensor out = MakeResult(a.rows(), a.cols(), {an}, [an, c](Node& self) {
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (size_t i = 0; i < self.value.size(); ++i)
      an->grad[i] += c * self.grad[i];
  });
  for (size_t i = 0; i < out.data().size(); ++i) out.data()[i] = c * an->value[i];
  return out;
}

Tensor AddScalar(const Tensor& a, float c) {
  NodePtr an = Res(a);
  Tensor out = MakeResult(a.rows(), a.cols(), {an}, [an](Node& self) {
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (size_t i = 0; i < self.value.size(); ++i) an->grad[i] += self.grad[i];
  });
  for (size_t i = 0; i < out.data().size(); ++i) out.data()[i] = an->value[i] + c;
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CAUSER_CHECK(a.cols() == b.rows());
  const int n = a.rows(), m = a.cols(), p = b.cols();
  NodePtr an = Res(a);
  NodePtr bn = Res(b);
  Tensor out = MakeResult(n, p, {an, bn}, [an, bn, n, m, p](Node& self) {
    if (an->requires_grad) {
      an->EnsureGrad();
      // dA = dC * B^T : [n,p] x [p,m]
      RawMatMulAdd(self.grad.data(), bn->value.data(), an->grad.data(), n, p,
                   m, /*transpose_a=*/false, /*transpose_b=*/true);
    }
    if (bn->requires_grad) {
      bn->EnsureGrad();
      // dB = A^T * dC : [m,n] x [n,p]
      RawMatMulAdd(an->value.data(), self.grad.data(), bn->grad.data(), m, n,
                   p, /*transpose_a=*/true, /*transpose_b=*/false);
    }
  });
  RawMatMulAdd(an->value.data(), bn->value.data(), out.data().data(), n, m, p,
               false, false);
  return out;
}

Tensor Transpose(const Tensor& a) {
  const int n = a.rows(), m = a.cols();
  NodePtr an = Res(a);
  Tensor out = MakeResult(m, n, {an}, [an, n, m](Node& self) {
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < m; ++j)
        an->grad[static_cast<size_t>(i) * m + j] +=
            self.grad[static_cast<size_t>(j) * n + i];
  });
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < m; ++j)
      out.data()[static_cast<size_t>(j) * n + i] =
          an->value[static_cast<size_t>(i) * m + j];
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) {
        return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                         : std::exp(x) / (1.0f + std::exp(x));
      },
      [](float, float y, float g) { return g * y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::tanh(x); },
                 [](float, float y, float g) { return g * (1.0f - y * y); });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(a, [](float x) { return x > 0.0f ? x : 0.0f; },
                 [](float x, float, float g) { return x > 0.0f ? g : 0.0f; });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::exp(x); },
                 [](float, float y, float g) { return g * y; });
}

Tensor Log(const Tensor& a, float eps) {
  NodePtr an = Res(a);
  Tensor out = MakeResult(a.rows(), a.cols(), {an}, [an, eps](Node& self) {
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (size_t i = 0; i < self.value.size(); ++i) {
      float x = std::max(an->value[i], eps);
      an->grad[i] += self.grad[i] / x;
    }
  });
  for (size_t i = 0; i < out.data().size(); ++i)
    out.data()[i] = std::log(std::max(an->value[i], eps));
  return out;
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::sqrt(std::max(x, 0.0f)); },
      [](float x, float y, float g) {
        return x > 0.0f ? g / (2.0f * y) : 0.0f;
      });
}

Tensor SoftmaxRows(const Tensor& a, float temperature) {
  CAUSER_CHECK(temperature > 0.0f);
  const int n = a.rows(), m = a.cols();
  NodePtr an = Res(a);
  Tensor out =
      MakeResult(n, m, {an}, [an, n, m, temperature](Node& self) {
        if (!an->requires_grad) return;
        an->EnsureGrad();
        for (int r = 0; r < n; ++r) {
          const float* y = self.value.data() + static_cast<size_t>(r) * m;
          const float* gy = self.grad.data() + static_cast<size_t>(r) * m;
          float dot = 0.0f;
          for (int c = 0; c < m; ++c) dot += gy[c] * y[c];
          float* ga = an->grad.data() + static_cast<size_t>(r) * m;
          for (int c = 0; c < m; ++c)
            ga[c] += y[c] * (gy[c] - dot) / temperature;
        }
      });
  const auto& ops = primitives::Active();
  for (int r = 0; r < n; ++r) {
    const float* x = an->value.data() + static_cast<size_t>(r) * m;
    float* y = out.data().data() + static_cast<size_t>(r) * m;
    // reduce_max is value-exact across ISAs; a +0/-0 tie can flip the
    // sign of mx, but exp((x - ±0)/t) lands on the same value either way.
    const float mx = ops.reduce_max(static_cast<std::size_t>(m), x);
    for (int c = 0; c < m; ++c) y[c] = (x[c] - mx) / temperature;
    ops.exp_apply(static_cast<std::size_t>(m), y);
    float total = 0.0f;
    for (int c = 0; c < m; ++c) total += y[c];
    for (int c = 0; c < m; ++c) y[c] /= total;
  }
  return out;
}

Tensor Sum(const Tensor& a) {
  NodePtr an = Res(a);
  Tensor out = MakeResult(1, 1, {an}, [an](Node& self) {
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (auto& g : an->grad) g += self.grad[0];
  });
  float total = 0.0f;
  for (float v : an->value) total += v;
  out.data()[0] = total;
  return out;
}

Tensor Mean(const Tensor& a) { return ScalarMul(Sum(a), 1.0f / a.size()); }

Tensor SumRows(const Tensor& a) {
  const int n = a.rows(), m = a.cols();
  NodePtr an = Res(a);
  Tensor out = MakeResult(n, 1, {an}, [an, n, m](Node& self) {
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < m; ++c)
        an->grad[static_cast<size_t>(r) * m + c] += self.grad[r];
  });
  for (int r = 0; r < n; ++r) {
    float total = 0.0f;
    for (int c = 0; c < m; ++c) total += an->value[static_cast<size_t>(r) * m + c];
    out.data()[r] = total;
  }
  return out;
}

Tensor SumCols(const Tensor& a) {
  const int n = a.rows(), m = a.cols();
  NodePtr an = Res(a);
  Tensor out = MakeResult(1, m, {an}, [an, n, m](Node& self) {
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < m; ++c)
        an->grad[static_cast<size_t>(r) * m + c] += self.grad[c];
  });
  for (int c = 0; c < m; ++c) {
    float total = 0.0f;
    for (int r = 0; r < n; ++r) total += an->value[static_cast<size_t>(r) * m + c];
    out.data()[c] = total;
  }
  return out;
}

Tensor L1Norm(const Tensor& a) {
  NodePtr an = Res(a);
  Tensor out = MakeResult(1, 1, {an}, [an](Node& self) {
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (size_t i = 0; i < an->value.size(); ++i) {
      float x = an->value[i];
      float s = x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f);
      an->grad[i] += self.grad[0] * s;
    }
  });
  float total = 0.0f;
  for (float v : an->value) total += std::fabs(v);
  out.data()[0] = total;
  return out;
}

Tensor SquaredNorm(const Tensor& a) {
  NodePtr an = Res(a);
  Tensor out = MakeResult(1, 1, {an}, [an](Node& self) {
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (size_t i = 0; i < an->value.size(); ++i)
      an->grad[i] += self.grad[0] * 2.0f * an->value[i];
  });
  float total = 0.0f;
  for (float v : an->value) total += v * v;
  out.data()[0] = total;
  return out;
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  CAUSER_CHECK(a.rows() == b.rows());
  const int n = a.rows(), ma = a.cols(), mb = b.cols();
  NodePtr an = Res(a);
  NodePtr bn = Res(b);
  Tensor out = MakeResult(n, ma + mb, {an, bn}, [an, bn, n, ma, mb](Node& self) {
    if (an->requires_grad) an->EnsureGrad();
    if (bn->requires_grad) bn->EnsureGrad();
    for (int r = 0; r < n; ++r) {
      const float* g = self.grad.data() + static_cast<size_t>(r) * (ma + mb);
      if (an->requires_grad)
        for (int c = 0; c < ma; ++c)
          an->grad[static_cast<size_t>(r) * ma + c] += g[c];
      if (bn->requires_grad)
        for (int c = 0; c < mb; ++c)
          bn->grad[static_cast<size_t>(r) * mb + c] += g[ma + c];
    }
  });
  for (int r = 0; r < n; ++r) {
    float* o = out.data().data() + static_cast<size_t>(r) * (ma + mb);
    for (int c = 0; c < ma; ++c) o[c] = an->value[static_cast<size_t>(r) * ma + c];
    for (int c = 0; c < mb; ++c) o[ma + c] = bn->value[static_cast<size_t>(r) * mb + c];
  }
  return out;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  CAUSER_CHECK(!parts.empty());
  const int m = parts[0].cols();
  int total_rows = 0;
  std::vector<NodePtr> nodes;
  nodes.reserve(parts.size());
  for (const auto& p : parts) {
    CAUSER_CHECK(p.cols() == m);
    total_rows += p.rows();
    nodes.push_back(Res(p));
  }
  Tensor out = MakeResult(total_rows, m, nodes, [nodes, m](Node& self) {
    int row = 0;
    for (const auto& p : nodes) {
      if (p->requires_grad) {
        p->EnsureGrad();
        for (int r = 0; r < p->rows; ++r)
          for (int c = 0; c < m; ++c)
            p->grad[static_cast<size_t>(r) * m + c] +=
                self.grad[static_cast<size_t>(row + r) * m + c];
      }
      row += p->rows;
    }
  });
  int row = 0;
  for (const auto& p : nodes) {
    std::copy(p->value.begin(), p->value.end(),
              out.data().begin() + static_cast<size_t>(row) * m);
    row += p->rows;
  }
  return out;
}

Tensor SliceRows(const Tensor& a, int start, int len) {
  CAUSER_CHECK(start >= 0 && len > 0 && start + len <= a.rows());
  const int m = a.cols();
  NodePtr an = Res(a);
  Tensor out = MakeResult(len, m, {an}, [an, start, len, m](Node& self) {
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (int r = 0; r < len; ++r)
      for (int c = 0; c < m; ++c)
        an->grad[static_cast<size_t>(start + r) * m + c] +=
            self.grad[static_cast<size_t>(r) * m + c];
  });
  std::copy(an->value.begin() + static_cast<size_t>(start) * m,
            an->value.begin() + static_cast<size_t>(start + len) * m,
            out.data().begin());
  return out;
}

Tensor GatherRows(const Tensor& a, const std::vector<int>& indices) {
  CAUSER_CHECK(!indices.empty());
  const int m = a.cols();
  const int k = static_cast<int>(indices.size());
  NodePtr an = Res(a);
  for (int idx : indices) CAUSER_CHECK(idx >= 0 && idx < a.rows());
  Tensor out = MakeResult(k, m, {an}, [an, indices, k, m](Node& self) {
    if (!an->requires_grad) return;
    an->EnsureGrad();
    for (int r = 0; r < k; ++r)
      for (int c = 0; c < m; ++c)
        an->grad[static_cast<size_t>(indices[r]) * m + c] +=
            self.grad[static_cast<size_t>(r) * m + c];
  });
  for (int r = 0; r < k; ++r)
    std::copy(an->value.begin() + static_cast<size_t>(indices[r]) * m,
              an->value.begin() + static_cast<size_t>(indices[r] + 1) * m,
              out.data().begin() + static_cast<size_t>(r) * m);
  return out;
}

Tensor BceWithLogits(const Tensor& logits, const Tensor& targets,
                     Reduction reduction) {
  CAUSER_CHECK(logits.rows() == targets.rows() &&
               logits.cols() == targets.cols());
  NodePtr xn = Res(logits);
  NodePtr tn = Res(targets);
  const float scale =
      reduction == Reduction::kMean ? 1.0f / logits.size() : 1.0f;
  Tensor out = MakeResult(1, 1, {xn, tn}, [xn, tn, scale](Node& self) {
    // d/dx = sigmoid(x) - t. Targets are treated as constants.
    if (!xn->requires_grad) return;
    xn->EnsureGrad();
    for (size_t i = 0; i < xn->value.size(); ++i) {
      float x = xn->value[i];
      float s = x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                          : std::exp(x) / (1.0f + std::exp(x));
      xn->grad[i] += self.grad[0] * scale * (s - tn->value[i]);
    }
  });
  float total = 0.0f;
  for (size_t i = 0; i < xn->value.size(); ++i) {
    float x = xn->value[i];
    float t = tn->value[i];
    total += std::max(x, 0.0f) - x * t + std::log1p(std::exp(-std::fabs(x)));
  }
  out.data()[0] = total * scale;
  return out;
}

Tensor MseLoss(const Tensor& a, const Tensor& b, Reduction reduction) {
  Tensor diff = Sub(a, b);
  Tensor loss = SquaredNorm(diff);
  if (reduction == Reduction::kMean) loss = ScalarMul(loss, 1.0f / a.size());
  return loss;
}

}  // namespace causer::tensor
