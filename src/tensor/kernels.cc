#include "tensor/kernels.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "tensor/primitives/primitives.h"

namespace causer::tensor::kernels {
namespace {

/// Pack instruments (see docs/OBSERVABILITY.md), registered together on
/// first touch. bytes_total / packs_total gives the mean packed panel size.
struct PackMetricsT {
  metrics::Counter& packs;
  metrics::Counter& bytes;
};

PackMetricsT& PackMetrics() {
  static PackMetricsT m{
      metrics::GetCounter("tensor.pack.packs_total", "packs",
                          "Transposed operands repacked into contiguous "
                          "row-major panels before a matmul."),
      metrics::GetCounter("tensor.pack.bytes_total", "bytes",
                          "Bytes written into pack buffers."),
  };
  return m;
}

/// Below this many multiply-adds the pool dispatch overhead dominates and
/// the product stays on the calling thread.
constexpr int64_t kParallelMatMulMinOps = 1 << 15;

/// Transposes `src` (row-major [rows, cols]) into the thread-local pack
/// buffer `buf` as row-major [cols, rows]. Reads stream through src; the
/// strided writes touch each destination cache line rows times in quick
/// succession, so packing is O(rows*cols) cheap next to the O(n*m*p)
/// product it unlocks.
const float* PackTranspose(const float* src, int rows, int cols,
                           std::vector<float>& buf) {
  buf.resize(static_cast<size_t>(rows) * cols);
  float* dst = buf.data();
  for (int r = 0; r < rows; ++r) {
    const float* srow = src + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) {
      dst[static_cast<size_t>(c) * rows + r] = srow[c];
    }
  }
  if (metrics::Enabled()) {
    PackMetrics().packs.Add();
    PackMetrics().bytes.Add(static_cast<uint64_t>(rows) * cols *
                            sizeof(float));
  }
  return dst;
}

/// Reusable per-thread pack storage; capacity converges to the largest
/// operand this thread ever packs. Only B^T needs packing: its naive inner
/// loop strides by m per j step, while A^T is already contiguous along the
/// blocked row direction (see TransAKernel) and is consumed in place.
const float* PackB(const float* b, int rows, int cols) {
  static thread_local std::vector<float> buf;
  return PackTranspose(b, rows, cols, buf);
}

/// Row-major panel kernel: c rows [row_begin, row_end) += a * b with a
/// effectively [n? ,m] and b [m,p], both contiguous. Delegates to the
/// active ISA's register-blocked gemm panels (a_step = 1: A rows are
/// contiguous in k). Per element the k-summation stays ascending with one
/// rounding per multiply and add — bit-identical to the naive reference
/// whichever primitives::Ops variant is live (see tensor/primitives/).
void PanelKernel(const float* a, const float* b, float* c, int row_begin,
                 int row_end, int m, int p) {
  const primitives::Ops& ops = primitives::Active();
  int i = row_begin;
  for (; i + 4 <= row_end; i += 4) {
    const float* a0 = a + static_cast<size_t>(i) * m;
    float* c0 = c + static_cast<size_t>(i) * p;
    ops.gemm_panel4(m, p, a0, a0 + m, a0 + 2 * m, a0 + 3 * m, /*a_step=*/1,
                    b, /*ldb=*/p, c0, c0 + p, c0 + 2 * p, c0 + 3 * p);
  }
  for (; i < row_end; ++i) {
    ops.gemm_panel1(m, p, a + static_cast<size_t>(i) * m, /*a_step=*/1, b,
                    /*ldb=*/p, c + static_cast<size_t>(i) * p);
  }
}

/// Single-output-row kernel for transpose_b: each b row is contiguous, so
/// the dot products stream both operands instead of striding across b.
/// Eight dots advance together through the active ISA's dot8 (lanes =
/// distinct output columns, seeded from the incoming c values); the
/// j-remainder keeps the seeded scalar chain inline — `dot` starts from
/// zero, and folding c[j] in afterwards would round differently. Every
/// accumulator chain is strictly sequential in k, matching the reference
/// rounding exactly.
void DotRowKernel(const float* a, const float* b, float* c, int m, int p) {
  const primitives::Ops& ops = primitives::Active();
  int j = 0;
  for (; j + 8 <= p; j += 8) {
    ops.dot8(m, a, b + static_cast<size_t>(j) * m, /*stride=*/m, c + j);
  }
  for (; j < p; ++j) {
    const float* bj = b + static_cast<size_t>(j) * m;
    float acc = c[j];
    for (int k = 0; k < m; ++k) acc += a[k] * bj[k];
    c[j] = acc;
  }
}

/// Kernel consuming A^T in place (a stored [m,n]). Packing A^T would cost
/// n*m strided writes, but it buys nothing here: under transpose_a, four
/// consecutive *logical* rows of A are four adjacent columns of the stored
/// matrix, so the register-blocked loads a[k*n + i..i+3] are already
/// contiguous. Per output element the k-summation stays ascending with one
/// rounding per add. Computes output rows [row_begin, row_end).
void TransAKernel(const float* a, const float* b, float* c, int row_begin,
                  int row_end, int n, int m, int p) {
  const primitives::Ops& ops = primitives::Active();
  if (p == 1) {
    // Single output column: k-outer vectorizes over i instead — one axpy
    // per k, so each c[i] still accumulates its own ascending-k chain
    // (call r advances every chain by exactly term r).
    for (int k = 0; k < m; ++k) {
      ops.axpy(row_end - row_begin, b[k],
               a + static_cast<size_t>(k) * n + row_begin, c + row_begin);
    }
    return;
  }
  // Four consecutive logical rows of A^T are four adjacent stored columns:
  // base pointers a+i..a+i+3 with a_step = n.
  int i = row_begin;
  for (; i + 4 <= row_end; i += 4) {
    float* c0 = c + static_cast<size_t>(i) * p;
    ops.gemm_panel4(m, p, a + i, a + i + 1, a + i + 2, a + i + 3,
                    /*a_step=*/n, b, /*ldb=*/p, c0, c0 + p, c0 + 2 * p,
                    c0 + 3 * p);
  }
  for (; i < row_end; ++i) {
    ops.gemm_panel1(m, p, a + i, /*a_step=*/n, b, /*ldb=*/p,
                    c + static_cast<size_t>(i) * p);
  }
}

/// True when this product should be sharded over output rows on the shared
/// pool. Any row partition computes identical per-element sums, so the
/// cutoff is purely a performance knob.
bool ShouldParallelize(int n, int m, int p) {
  const int64_t total_ops =
      static_cast<int64_t>(n) * m * static_cast<int64_t>(p);
  return DefaultThreads() > 1 && n > 1 &&
         total_ops >= kParallelMatMulMinOps &&
         !ThreadPool::InParallelRegion();
}

}  // namespace

void MatMulAddNaive(const float* a, const float* b, float* c, int n, int m,
                    int p, bool transpose_a, bool transpose_b) {
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < m; ++k) {
      const float av = transpose_a ? a[static_cast<size_t>(k) * n + i]
                                   : a[static_cast<size_t>(i) * m + k];
      float* crow = c + static_cast<size_t>(i) * p;
      if (!transpose_b) {
        const float* brow = b + static_cast<size_t>(k) * p;
        for (int j = 0; j < p; ++j) crow[j] += av * brow[j];
      } else {
        // b is [p, m] stored row-major; b^T[k][j] = b[j][k].
        for (int j = 0; j < p; ++j)
          crow[j] += av * b[static_cast<size_t>(j) * m + k];
      }
    }
  }
}

void MatMulAdd(const float* a, const float* b, float* c, int n, int m, int p,
               bool transpose_a, bool transpose_b) {
  // A [m,1] under transpose_a is the same memory as [1,m]: no packing and
  // the plain row kernels apply.
  if (n == 1) {
    if (transpose_b) {
      DotRowKernel(a, b, c, m, p);
    } else {
      PanelKernel(a, b, c, 0, 1, m, p);
    }
    return;
  }

  // Packing happens once on the calling thread; pool workers only read the
  // packed panels (ParallelFor's region setup orders the writes before
  // them).
  const float* be = transpose_b ? PackB(b, p, m) : b;

  if (transpose_a) {
    if (ShouldParallelize(n, m, p)) {
      DefaultPool().ParallelFor(0, n, [&](int row_begin, int row_end) {
        TransAKernel(a, be, c, row_begin, row_end, n, m, p);
      });
    } else {
      TransAKernel(a, be, c, 0, n, n, m, p);
    }
    return;
  }

  if (ShouldParallelize(n, m, p)) {
    DefaultPool().ParallelFor(0, n, [&](int row_begin, int row_end) {
      PanelKernel(a, be, c, row_begin, row_end, m, p);
    });
  } else {
    PanelKernel(a, be, c, 0, n, m, p);
  }
}

namespace {

/// eval::TopK's strict total order on (score, index): score descending,
/// index ascending on ties. Shared by the bounded heap and the final sort
/// so the fused kernel reproduces the evaluator's ranking exactly.
inline bool BetterEntry(const TopKEntry& x, const TopKEntry& y) {
  if (x.score != y.score) return x.score > y.score;
  return x.index < y.index;
}

/// Candidate columns scanned per tile. At m = 64 a tile of B is 128 KiB —
/// it stays in L2 while every row of the batch scores it, so B streams from
/// memory once per kernel call instead of once per row.
constexpr int kTopKTile = 512;

/// Scores rows [row_begin, row_end) of A against all p rows of B, keeping
/// the k best per row. Column-tiled: the j scan is still globally ascending
/// per row, so heap updates see candidates in the same order a flat scan
/// would (the selection result is order-independent anyway — the order on
/// (score, index) is total). `index_base` offsets the emitted indices: a
/// catalog shard passes its first global row so merged results carry
/// catalog indices (ascending j within a shard stays ascending globally —
/// shards are contiguous).
void TopKRows(const float* a, const float* b, int row_begin, int row_end,
              int m, int p, int k, TopKEntry* out, int index_base = 0) {
  const primitives::Ops& ops = primitives::Active();
  std::vector<TopKEntry> heap;
  heap.reserve(k);
  // Heap maintenance on (score, index) is a total order, so batching the
  // dots eight at a time changes nothing observable as long as candidates
  // are offered in ascending j — which the scores buffer preserves.
  auto offer = [&](int j, float score) {
    const TopKEntry cand{index_base + j, score};
    if (static_cast<int>(heap.size()) < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), BetterEntry);
    } else if (BetterEntry(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), BetterEntry);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), BetterEntry);
    }
  };
  for (int i = row_begin; i < row_end; ++i) {
    const float* ai = a + static_cast<size_t>(i) * m;
    heap.clear();
    // One running B-row pointer instead of a b + j*m recomputation per
    // offer: the multiply is loop-invariant per tile and the stride per
    // step is constant.
    const float* bj = b;
    for (int jt = 0; jt < p; jt += kTopKTile) {
      const int jend = jt + kTopKTile < p ? jt + kTopKTile : p;
      int j = jt;
      for (; j + 8 <= jend; j += 8, bj += 8 * static_cast<size_t>(m)) {
        // Eight ascending-k accumulator chains from zero — per column the
        // exact rounding sequence of MatMulAddNaive on a zeroed output.
        float scores[8] = {0, 0, 0, 0, 0, 0, 0, 0};
        ops.dot8(m, ai, bj, /*stride=*/m, scores);
        for (int l = 0; l < 8; ++l) offer(j + l, scores[l]);
      }
      for (; j < jend; ++j, bj += m) {
        offer(j, ops.dot(m, ai, bj));
      }
    }
    std::sort(heap.begin(), heap.end(), BetterEntry);
    TopKEntry* orow = out + static_cast<size_t>(i) * k;
    for (int r = 0; r < k; ++r) {
      orow[r] = r < static_cast<int>(heap.size()) ? heap[r] : TopKEntry{};
    }
  }
}

/// Int8 counterpart of TopKRows: same column tiling and the same
/// (score, index) total order — but each tile's scores come from one
/// gemm_panel_s8 call (exact int32 dots of the quantized codes), and the
/// dequantize + threshold scan runs inside ops.dequant_filter, which
/// hands back only the surviving tile positions. The filter's score
/// expression acc * (a_scale * b_scale) is bit-identical on every tier,
/// so the quantized scores — while approximations of the fp32 ones — are
/// identical on every ISA tier and thread count.
void TopKRowsQ(const std::int8_t* a, const float* a_scales,
               const std::int8_t* b, const float* b_scales, int row_begin,
               int row_end, int m, int p, int k, TopKEntry* out,
               int index_base = 0) {
  const primitives::Ops& ops = primitives::Active();
  const int rows = row_end - row_begin;
  const int tile = kTopKTile < p ? kTopKTile : p;
  std::vector<std::int32_t> acc(tile);
  std::vector<std::int32_t> idx(tile);
  // The tile loop is OUTER and the row loop inner — the opposite of
  // TopKRows. The int8 panel is memory-bound, not compute-bound: with
  // rows outer, every row re-streams the whole code table; with tiles
  // outer, one tile of codes (kTopKTile * m bytes, cache-resident) is
  // scored against every row in the shard before moving on, so the shard
  // reads the table once. Selection state is therefore kept per row.
  //
  // Selection also differs from TopKRows' heap: the serving path asks
  // for rerank_k candidates (64-2048), and at that k the per-insert heap
  // rebalancing dominates the kernel. Instead, every filter survivor
  // appends unconditionally (no per-element compare at all), and an
  // nth_element compaction at tile boundaries re-tightens the filter
  // threshold once the buffer crosses cap. The filter only ever drops
  // scores strictly below an exact kth-best-so-far — a discard in
  // BetterEntry's total order regardless of index — and everything else
  // stays buffered until a compaction judges it, so the selection is
  // identical to the heap's.
  const std::size_t cap = 4 * static_cast<std::size_t>(k);
  // Per-row buffers live in one flat slab: between the compaction checks
  // at tile boundaries a buffer holds at most cap-1 entries plus one
  // tile's survivors, so slot size cap+tile is a hard bound and the call
  // makes one allocation instead of one per row.
  const std::size_t slot = cap + static_cast<std::size_t>(tile);
  std::vector<TopKEntry> slab(slot * static_cast<std::size_t>(rows));
  std::vector<int> len(rows, 0);
  std::vector<float> thr(rows, -std::numeric_limits<float>::infinity());
  auto compact = [&](int r) {
    TopKEntry* buf = slab.data() + slot * static_cast<std::size_t>(r);
    std::nth_element(buf, buf + (k - 1), buf + len[r], BetterEntry);
    thr[r] = buf[k - 1].score;
    len[r] = k;
  };
  std::vector<float> scores(tile);
  std::vector<float> scratch(tile);
  const std::int8_t* bt = b;
  for (int jt = 0; jt < p;
       jt += kTopKTile, bt += static_cast<size_t>(kTopKTile) * m) {
    const int tp = jt + kTopKTile < p ? kTopKTile : p - jt;
    const float* bs = b_scales + jt;
    for (int r = 0; r < rows; ++r) {
      const int i = row_begin + r;
      const std::int8_t* ai = a + static_cast<size_t>(i) * m;
      const float ascale = a_scales[i];
      ops.gemm_panel_s8(m, tp, ai, bt, /*stride=*/m, acc.data());
      TopKEntry* buf = slab.data() + slot * static_cast<std::size_t>(r);
      int n_buf = len[r];
      if (jt == 0 && k < tp) {
        // Prime the threshold from a prefix of the first tile: with thr
        // still at -inf the filter would pass the whole tile into the
        // buffer. The kth-largest of a prefix can only be <= the
        // kth-largest of anything containing it, so it is a valid (if
        // slightly loose) threshold and the >= filter keeps a superset
        // of the true top k — priming changes nothing about which
        // candidates are exact-best. A 4k prefix keeps the nth_element
        // small while leaving the threshold tight enough.
        const int prime = static_cast<int>(cap) < tp ? static_cast<int>(cap)
                                                     : tp;
        for (int l = 0; l < prime; ++l) {
          scores[l] = static_cast<float>(acc[l]) * (ascale * bs[l]);
        }
        std::copy(scores.begin(), scores.begin() + prime, scratch.begin());
        std::nth_element(scratch.begin(), scratch.begin() + (k - 1),
                         scratch.begin() + prime, std::greater<float>());
        thr[r] = scratch[k - 1];
        for (int l = 0; l < prime; ++l) {
          if (scores[l] >= thr[r]) {
            buf[n_buf++] = TopKEntry{index_base + l, scores[l]};
          }
        }
        const int cnt =
            ops.dequant_filter(tp - prime, acc.data() + prime, bs + prime,
                               ascale, thr[r], idx.data(), scores.data());
        for (int t = 0; t < cnt; ++t) {
          buf[n_buf++] = TopKEntry{index_base + prime + idx[t], scores[t]};
        }
      } else {
        const int cnt = ops.dequant_filter(tp, acc.data(), bs, ascale, thr[r],
                                           idx.data(), scores.data());
        for (int t = 0; t < cnt; ++t) {
          buf[n_buf++] = TopKEntry{index_base + jt + idx[t], scores[t]};
        }
      }
      len[r] = n_buf;
      if (static_cast<std::size_t>(n_buf) >= cap) compact(r);
    }
  }
  for (int r = 0; r < rows; ++r) {
    TopKEntry* buf = slab.data() + slot * static_cast<std::size_t>(r);
    // Shrink to the k best before sorting so the sort never touches the
    // beaten tail the buffer may still hold.
    if (len[r] > k) compact(r);
    std::sort(buf, buf + len[r], BetterEntry);
    TopKEntry* orow = out + static_cast<size_t>(row_begin + r) * k;
    for (int rr = 0; rr < k; ++rr) {
      orow[rr] = rr < len[r] ? buf[rr] : TopKEntry{};
    }
  }
}

}  // namespace

void MatMulTopK(const float* a, const float* b, int n, int m, int p, int k,
                TopKEntry* out) {
  if (n <= 0 || k <= 0) return;
  // TopKRows fills the tail of each output row with {-1, 0} entries when
  // p < k (the heap can never hold more than p candidates), so no separate
  // clamping pass is needed.
  if (ShouldParallelize(n, m, p)) {
    DefaultPool().ParallelFor(0, n, [&](int row_begin, int row_end) {
      TopKRows(a, b, row_begin, row_end, m, p, k, out);
    });
  } else {
    TopKRows(a, b, 0, n, m, p, k, out);
  }
}

void MatMulTopKQ(const std::int8_t* a, const float* a_scales,
                 const std::int8_t* b, const float* b_scales, int n, int m,
                 int p, int k, TopKEntry* out) {
  if (n <= 0 || k <= 0) return;
  // |sum of m products of codes in [-127, 127]| <= m * 127^2 must stay
  // inside int32; past the documented bound the scores would wrap silently
  // and the selection would be garbage that *looks* ranked.
  CAUSER_CHECK(m <= 65536);
  if (ShouldParallelize(n, m, p)) {
    DefaultPool().ParallelFor(0, n, [&](int row_begin, int row_end) {
      TopKRowsQ(a, a_scales, b, b_scales, row_begin, row_end, m, p, k, out);
    });
  } else {
    TopKRowsQ(a, a_scales, b, b_scales, 0, n, m, p, k, out);
  }
}

namespace {

/// Static catalog partition shared by both sharded kernels: shard s of S
/// covers B rows [p*s/S, p*(s+1)/S) — the thread pool's ParallelFor
/// formula, so the split is deterministic in (p, S) alone.
inline int ShardBegin(int p, int S, int s) {
  return static_cast<int>(static_cast<int64_t>(p) * s / S);
}

/// Merges S per-row k-selections (each sorted best-first, -1-padded) into
/// the global top k under BetterEntry's total order. A globally top-k
/// column is top-k within its own shard, so the union of the per-shard
/// selections contains the global answer and the merge is exact — same
/// entries, same order, same bits as the unsharded kernel.
void MergeShardTopK(const TopKEntry* local, int S, int n, int k,
                    TopKEntry* out) {
  std::vector<TopKEntry> cand;
  cand.reserve(static_cast<size_t>(S) * k);
  for (int i = 0; i < n; ++i) {
    cand.clear();
    for (int s = 0; s < S; ++s) {
      const TopKEntry* row =
          local + (static_cast<size_t>(s) * n + i) * k;
      for (int r = 0; r < k && row[r].index >= 0; ++r) cand.push_back(row[r]);
    }
    std::sort(cand.begin(), cand.end(), BetterEntry);
    TopKEntry* orow = out + static_cast<size_t>(i) * k;
    for (int r = 0; r < k; ++r) {
      orow[r] = r < static_cast<int>(cand.size()) ? cand[r] : TopKEntry{};
    }
  }
}

/// Shared driver: runs `shard_body(jb, je, local_out)` for every shard
/// (fanning shards out over the pool — each task scores *all* n batch rows
/// against its slice of the catalog, so parallelism no longer caps at n),
/// times each shard when asked, then merges. The per-shard outputs live in
/// one [S, n, k] slab.
template <typename ShardBody>
int RunSharded(int n, int p, int k, int shards, TopKEntry* out,
               double* shard_seconds, const ShardBody& shard_body) {
  int S = shards < 1 ? 1 : shards;
  if (S > p) S = p;  // an empty shard scores nothing
  if (S < 1) S = 1;  // p == 0: degenerate, one shard of nothing
  std::vector<TopKEntry> local(static_cast<size_t>(S) * n * k);
  auto run_shard = [&](int s) {
    Stopwatch watch;
    const int jb = ShardBegin(p, S, s);
    const int je = ShardBegin(p, S, s + 1);
    shard_body(jb, je,
               local.data() + static_cast<size_t>(s) * n * k);
    if (shard_seconds != nullptr) shard_seconds[s] = watch.ElapsedSeconds();
  };
  if (S > 1 && DefaultThreads() > 1 && !ThreadPool::InParallelRegion()) {
    DefaultPool().ParallelFor(0, S, [&](int begin, int end) {
      for (int s = begin; s < end; ++s) run_shard(s);
    });
  } else {
    for (int s = 0; s < S; ++s) run_shard(s);
  }
  MergeShardTopK(local.data(), S, n, k, out);
  return S;
}

}  // namespace

int MatMulTopKSharded(const float* a, const float* b, int n, int m, int p,
                      int k, int shards, TopKEntry* out,
                      double* shard_seconds) {
  if (n <= 0 || k <= 0) return 0;
  if (shards <= 1 || p <= 1) {
    Stopwatch watch;
    MatMulTopK(a, b, n, m, p, k, out);
    if (shard_seconds != nullptr) shard_seconds[0] = watch.ElapsedSeconds();
    return 1;
  }
  return RunSharded(n, p, k, shards, out, shard_seconds,
                    [&](int jb, int je, TopKEntry* local) {
                      TopKRows(a, b + static_cast<size_t>(jb) * m, 0, n, m,
                               je - jb, k, local, /*index_base=*/jb);
                    });
}

int MatMulTopKQSharded(const std::int8_t* a, const float* a_scales,
                       const std::int8_t* b, const float* b_scales, int n,
                       int m, int p, int k, int shards, TopKEntry* out,
                       double* shard_seconds) {
  if (n <= 0 || k <= 0) return 0;
  CAUSER_CHECK(m <= 65536);
  if (shards <= 1 || p <= 1) {
    Stopwatch watch;
    MatMulTopKQ(a, a_scales, b, b_scales, n, m, p, k, out);
    if (shard_seconds != nullptr) shard_seconds[0] = watch.ElapsedSeconds();
    return 1;
  }
  return RunSharded(n, p, k, shards, out, shard_seconds,
                    [&](int jb, int je, TopKEntry* local) {
                      TopKRowsQ(a, a_scales,
                                b + static_cast<size_t>(jb) * m,
                                b_scales + jb, 0, n, m, je - jb, k, local,
                                /*index_base=*/jb);
                    });
}

}  // namespace causer::tensor::kernels
