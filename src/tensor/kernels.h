#ifndef CAUSER_TENSOR_KERNELS_H_
#define CAUSER_TENSOR_KERNELS_H_

namespace causer::tensor::kernels {

/// Matmul microkernels: C[n,p] += op(A) * op(B) on raw row-major float
/// buffers, where op transposes when the corresponding flag is set (so A is
/// stored [m,n] under transpose_a and B is stored [p,m] under transpose_b).
///
/// Both entry points compute, for every output element, the same ascending-k
/// sequence of single-rounded multiply-adds — the bit-exactness contract the
/// parallel training/eval paths rely on (see docs/PERFORMANCE.md). They may
/// reorder across *distinct* elements (row blocking, j-vectorization, thread
/// partitioning) but never reassociate within one dot product.

/// Reference kernel: the plain ikj triple loop, kept for the equivalence
/// suite and as the bench_kernels baseline. Always runs on the calling
/// thread.
void MatMulAddNaive(const float* a, const float* b, float* c, int n, int m,
                    int p, bool transpose_a, bool transpose_b);

/// Production kernel: packs a transposed B into contiguous row-major panels
/// (reusable thread-local pack buffer; a transposed A is consumed in place —
/// its blocked row loads are already contiguous), then runs a
/// register-blocked kernel whose contiguous j loop auto-vectorizes. Large
/// products are sharded over output rows on the shared thread pool; every
/// partition computes the identical per-element sums, so results are
/// bit-identical to MatMulAddNaive at every thread count.
void MatMulAdd(const float* a, const float* b, float* c, int n, int m, int p,
               bool transpose_a, bool transpose_b);

}  // namespace causer::tensor::kernels

#endif  // CAUSER_TENSOR_KERNELS_H_
