#ifndef CAUSER_TENSOR_KERNELS_H_
#define CAUSER_TENSOR_KERNELS_H_

#include <cstdint>

namespace causer::tensor::kernels {

/// One selected candidate of a fused score-and-select row: the candidate's
/// column index and its inner-product score.
struct TopKEntry {
  int index = -1;
  float score = 0.0f;
};

/// Matmul microkernels: C[n,p] += op(A) * op(B) on raw row-major float
/// buffers, where op transposes when the corresponding flag is set (so A is
/// stored [m,n] under transpose_a and B is stored [p,m] under transpose_b).
///
/// Both entry points compute, for every output element, the same ascending-k
/// sequence of single-rounded multiply-adds — the bit-exactness contract the
/// parallel training/eval paths rely on (see docs/KERNELS.md and
/// docs/PERFORMANCE.md). They may reorder across *distinct* elements (row
/// blocking, SIMD lanes over j, thread partitioning) but never reassociate
/// within one dot product.
///
/// This header is a *dispatch point*, not an implementation tier: the
/// kernels' inner loops run on the active tensor::primitives::Ops variant
/// (explicit scalar / AVX2 / AVX-512 translation units), selected once per
/// process via cpu::ActiveIsa() — precedence --cpu-isa flag >
/// CAUSER_CPU_ISA env > cpuid, with graceful fallback. Because every
/// variant honors the contract above, the selected tier changes throughput
/// only, never a single output bit.

/// Reference kernel: the plain ikj triple loop, kept for the equivalence
/// suite and as the bench_kernels baseline. Always runs on the calling
/// thread and never dispatches to the SIMD variants — it *defines* the
/// rounding sequence the primitive layer must reproduce.
void MatMulAddNaive(const float* a, const float* b, float* c, int n, int m,
                    int p, bool transpose_a, bool transpose_b);

/// Production kernel: packs a transposed B into contiguous row-major panels
/// (reusable thread-local pack buffer; a transposed A is consumed in place —
/// its blocked row loads are already contiguous), then runs the active
/// ISA's register-blocked gemm panels (gemm_panel4/gemm_panel1, or
/// dot8/axpy on the degenerate shapes). Large products are sharded over
/// output rows on the shared thread pool; every partition computes the
/// identical per-element sums, so results are bit-identical to
/// MatMulAddNaive at every thread count and on every ISA tier.
void MatMulAdd(const float* a, const float* b, float* c, int n, int m, int p,
               bool transpose_a, bool transpose_b);

/// Fused GEMM + top-k selection for the serving engine's catalog scoring:
/// for every row i of A [n, m], scores all p rows of B [p, m] (both
/// row-major, i.e. B is in transpose_b layout) by inner product and writes
/// the k best candidates of row i into out[i*k .. i*k+k), sorted best-first.
/// The full [n, p] score matrix is never materialized — B is streamed in
/// cache-sized column tiles and each row keeps a bounded selection heap.
///
/// Exactness: every score is the same ascending-k single-accumulator dot
/// product MatMulAddNaive computes (from a zero accumulator — eight of
/// them advance per dot8 call on the SIMD tiers, one output element per
/// lane), and the selection order is eval::TopK's total order — score
/// descending, index ascending on ties — so the result is bit-identical to
/// a full matmul followed by eval::TopK at every thread count and on every
/// ISA tier (rows may be sharded over the shared pool; each row's scan
/// offers candidates in ascending j).
///
/// k is clamped to [0, p]; when k > p the trailing entries of each output
/// row keep {index = -1, score = 0}.
void MatMulTopK(const float* a, const float* b, int n, int m, int p, int k,
                TopKEntry* out);

/// Quantized sibling of MatMulTopK for the int8 scoring path: A and B are
/// symmetric per-row int8 quantizations (codes in [-127, 127] with fp32
/// row scales — tensor/quant.h), and each candidate's score is the exact
/// int32 dot of the codes dequantized once:
///   score(i, j) = (float)sum_k a[i*m+k]*b[j*m+k] * (a_scales[i] * b_scales[j])
/// Tiling, the bounded per-row heap, the (score desc, index asc) selection
/// order, and the k > p tail behavior match MatMulTopK exactly.
///
/// Exactness: the int32 accumulation is exact, and the two fp32 multiplies
/// happen in a fixed order in baseline-compiled code — so the output is
/// bit-identical across ISA tiers and thread counts. The scores themselves
/// are *quantized approximations* of the fp32 inner products; callers that
/// need fp32-exact scores re-rank the returned candidates with ops.dot
/// (see serve::ServingEngine and docs/KERNELS.md "Quantized primitives").
/// Requires m <= 65536 so |sum| stays inside int32 — enforced with a
/// CAUSER_CHECK, not silent overflow.
void MatMulTopKQ(const std::int8_t* a, const float* a_scales,
                 const std::int8_t* b, const float* b_scales, int n, int m,
                 int p, int k, TopKEntry* out);

/// Catalog-sharded MatMulTopK for serving batches whose row count is
/// smaller than the machine: partitions B's p rows into `shards` contiguous
/// row ranges (the thread pool's static formula: shard s covers
/// [p*s/S, p*(s+1)/S)), scores every A row against each shard with the
/// fused tiled GEMM + bounded-heap selection above — shards fan out across
/// the shared pool, so parallelism is min(S, threads) even when n = 1 —
/// then merges the S per-row k-heaps under the same (score desc, index asc)
/// total order.
///
/// Exactness: every dot product is the identical zero-seeded ascending-k
/// chain whichever shard scans its column, and a global top-k item is by
/// definition in the top-k of its own shard, so the merged selection is
/// *provably bit-identical* to the unsharded kernel at every shard count,
/// thread count, and ISA tier (tests/sharding_test.cc sweeps all three).
///
/// `shards` is clamped to [1, p]; 1 (or n/k <= 0 like the unsharded entry
/// points) degenerates to MatMulTopK. Returns the effective shard count.
/// When `shard_seconds` is non-null it must hold `shards` doubles; entries
/// [0, returned) receive each shard's scoring wall time (the serving
/// engine's serve.shard.* instruments — pass null to skip timing).
int MatMulTopKSharded(const float* a, const float* b, int n, int m, int p,
                      int k, int shards, TopKEntry* out,
                      double* shard_seconds = nullptr);

/// Quantized sibling of MatMulTopKSharded: shards MatMulTopKQ the same way
/// (per-shard int8 tiles, threshold priming per shard, exact int32 dots)
/// and merges with the same total order. Per-shard selection equals the
/// quantized bounded heap over that shard, so the merge is bit-identical
/// to unsharded MatMulTopKQ at every shard count, thread count, and ISA
/// tier. Same m <= 65536 precondition, same return/timing contract as
/// MatMulTopKSharded.
int MatMulTopKQSharded(const std::int8_t* a, const float* a_scales,
                       const std::int8_t* b, const float* b_scales, int n,
                       int m, int p, int k, int shards, TopKEntry* out,
                       double* shard_seconds = nullptr);

}  // namespace causer::tensor::kernels

#endif  // CAUSER_TENSOR_KERNELS_H_
