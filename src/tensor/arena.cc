#include "tensor/arena.h"

#include <algorithm>
#include <atomic>

#include "common/log.h"
#include "common/metrics.h"

// Poison arena blocks while they are not handed out so the ASan CI job
// flags any use of a tensor that outlived its ArenaScope (a stale tape
// reference would otherwise silently read recycled memory).
#if defined(__SANITIZE_ADDRESS__)
#define CAUSER_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CAUSER_ARENA_ASAN 1
#endif
#endif
#ifdef CAUSER_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#define CAUSER_ARENA_POISON(p, n) ASAN_POISON_MEMORY_REGION(p, n)
#define CAUSER_ARENA_UNPOISON(p, n) ASAN_UNPOISON_MEMORY_REGION(p, n)
#else
#define CAUSER_ARENA_POISON(p, n) ((void)0)
#define CAUSER_ARENA_UNPOISON(p, n) ((void)0)
#endif

namespace causer::tensor {
namespace {

/// Arena instruments (see docs/OBSERVABILITY.md), registered together on
/// first touch. Reset counts approximate optimizer steps + scored
/// instances; reset_bytes is the per-step tape footprint.
struct ArenaMetricsT {
  metrics::Counter& resets;
  metrics::Counter& blocks;
  metrics::Gauge& reserved_bytes;
  metrics::Histogram& reset_bytes;
};

ArenaMetricsT& ArenaMetrics() {
  static ArenaMetricsT m{
      metrics::GetCounter("tensor.arena.resets_total", "resets",
                          "Arena rewinds (one per ArenaScope exit: a "
                          "training step or a scored eval instance)."),
      metrics::GetCounter("tensor.arena.blocks_total", "blocks",
                          "Backing blocks allocated by arenas (growth "
                          "events; flat once steady state is reached)."),
      metrics::GetGauge("tensor.arena.reserved_bytes", "bytes",
                        "Bytes reserved by the most recently reset arena."),
      metrics::GetHistogram(
          "tensor.arena.reset_bytes", "bytes",
          "Tape bytes handed out between consecutive arena resets.",
          metrics::ExponentialBuckets(1024.0, 4.0, 10)),
  };
  return m;
}

std::atomic<bool> g_arena_enabled{true};
thread_local Arena* g_active_arena = nullptr;

/// The calling thread's recycled arena, created on first ArenaScope.
Arena& ThreadArena() {
  static thread_local Arena arena;
  return arena;
}

constexpr size_t AlignUp(size_t n) {
  return (n + Arena::kAlignment - 1) & ~(Arena::kAlignment - 1);
}

}  // namespace

Arena::Arena(size_t first_block_bytes)
    : first_block_bytes_(std::max(AlignUp(first_block_bytes), kAlignment)) {}

Arena::~Arena() {
  for (Block& b : blocks_) {
    CAUSER_ARENA_UNPOISON(b.data, b.size);
    ::operator delete(b.data, std::align_val_t{kAlignment});
  }
}

void Arena::AddBlock(size_t min_bytes) {
  // Geometric growth: each new block doubles the largest so far, so a
  // workload with tape footprint F settles into O(log F) blocks total.
  size_t size = blocks_.empty() ? first_block_bytes_ : blocks_.back().size * 2;
  size = std::max(size, AlignUp(min_bytes));
  Block b;
  b.data = static_cast<char*>(::operator new(size, std::align_val_t{kAlignment}));
  b.size = size;
  CAUSER_ARENA_POISON(b.data, b.size);
  blocks_.push_back(b);
  reserved_ += size;
  if (metrics::Enabled()) ArenaMetrics().blocks.Add();
}

void* Arena::Allocate(size_t bytes) {
  bytes = std::max(AlignUp(bytes), kAlignment);
  while (block_index_ < blocks_.size() &&
         offset_ + bytes > blocks_[block_index_].size) {
    // Skip to the next retained block; the unused tail of this one is
    // wasted until the next Reset (bounded by doubling sizes).
    ++block_index_;
    offset_ = 0;
  }
  if (block_index_ == blocks_.size()) AddBlock(bytes);
  char* p = blocks_[block_index_].data + offset_;
  CAUSER_ARENA_UNPOISON(p, bytes);
  offset_ += bytes;
  in_use_ += bytes;
  return p;
}

void Arena::Reset() {
  if (metrics::Enabled()) {
    ArenaMetricsT& m = ArenaMetrics();
    m.resets.Add();
    m.reset_bytes.Observe(static_cast<double>(in_use_));
    m.reserved_bytes.Set(static_cast<double>(reserved_));
  }
  for (Block& b : blocks_) CAUSER_ARENA_POISON(b.data, b.size);
  block_index_ = 0;
  offset_ = 0;
  in_use_ = 0;
}

bool Arena::Owns(const void* p) const {
  const char* c = static_cast<const char*>(p);
  for (const Block& b : blocks_) {
    if (c >= b.data && c < b.data + b.size) return true;
  }
  return false;
}

Arena* ActiveArena() { return g_active_arena; }

void SetArenaEnabled(bool enabled) {
  g_arena_enabled.store(enabled, std::memory_order_relaxed);
}

bool ArenaEnabled() {
  return g_arena_enabled.load(std::memory_order_relaxed);
}

ArenaScope::ArenaScope()
    : ArenaScope(ArenaEnabled() && ActiveArena() == nullptr ? &ThreadArena()
                                                            : nullptr) {}

ArenaScope::ArenaScope(Arena* arena) {
  if (arena == nullptr || !ArenaEnabled() || g_active_arena != nullptr) {
    return;  // nested or disabled: leave the outer scope in charge
  }
  arena_ = arena;
  g_active_arena = arena;
}

ArenaScope::~ArenaScope() {
  if (arena_ == nullptr) return;
  g_active_arena = nullptr;
  arena_->Reset();
}

}  // namespace causer::tensor
