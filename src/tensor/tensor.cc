#include "tensor/tensor.h"

#include <sstream>
#include <unordered_map>

namespace causer::tensor {
namespace {

thread_local int g_no_grad_depth = 0;

using SubstitutionMap =
    std::unordered_map<const internal::Node*, std::shared_ptr<internal::Node>>;

/// Active substitution table of the current thread (ParamSubstitutionScope),
/// or null. Thread-local so worker threads redirect independently.
thread_local SubstitutionMap* g_substitutions = nullptr;

std::shared_ptr<internal::Node> MakeLeaf(int rows, int cols,
                                         bool requires_grad) {
  CAUSER_CHECK(rows > 0 && cols > 0);
  auto node = internal::NewNode();
  node->rows = rows;
  node->cols = cols;
  node->value.assign(static_cast<size_t>(rows) * cols, 0.0f);
  node->requires_grad = requires_grad;
  return node;
}

}  // namespace

namespace internal {

std::shared_ptr<Node> NewNode() {
  if (Arena* arena = ActiveArena()) {
    // allocate_shared puts the control block and the Node in one arena
    // allocation; both are reclaimed by the scope-exit Reset() (by then
    // every shared_ptr into the tape is gone).
    return std::allocate_shared<Node>(ArenaAllocator<Node>(arena));
  }
  return std::make_shared<Node>();
}

std::shared_ptr<Node> Resolve(const std::shared_ptr<Node>& node) {
  if (g_substitutions != nullptr) {
    auto it = g_substitutions->find(node.get());
    if (it != g_substitutions->end()) return it->second;
  }
  return node;
}

}  // namespace internal

ParamSubstitutionScope::ParamSubstitutionScope(const std::vector<Tensor>& from,
                                               const std::vector<Tensor>& to) {
  CAUSER_CHECK(from.size() == to.size());
  CAUSER_CHECK(g_substitutions == nullptr);  // scopes do not nest
  auto* map = new SubstitutionMap();
  map->reserve(from.size());
  for (size_t i = 0; i < from.size(); ++i) {
    CAUSER_CHECK(from[i].rows() == to[i].rows() &&
                 from[i].cols() == to[i].cols());
    map->emplace(from[i].node().get(), to[i].node());
  }
  g_substitutions = map;
}

ParamSubstitutionScope::~ParamSubstitutionScope() {
  delete g_substitutions;
  g_substitutions = nullptr;
}

NoGradGuard::NoGradGuard() { ++g_no_grad_depth; }
NoGradGuard::~NoGradGuard() { --g_no_grad_depth; }

bool GradEnabled() { return g_no_grad_depth == 0; }

Tensor Tensor::Zeros(int rows, int cols, bool requires_grad) {
  return Tensor(MakeLeaf(rows, cols, requires_grad));
}

Tensor Tensor::Full(int rows, int cols, float value, bool requires_grad) {
  auto node = MakeLeaf(rows, cols, requires_grad);
  std::fill(node->value.begin(), node->value.end(), value);
  return Tensor(node);
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return Full(1, 1, value, requires_grad);
}

Tensor Tensor::FromData(int rows, int cols, std::vector<float> data,
                        bool requires_grad) {
  CAUSER_CHECK(static_cast<int>(data.size()) == rows * cols);
  auto node = MakeLeaf(rows, cols, requires_grad);
  // Copy (not move): `data` is a plain heap vector while node->value is
  // arena-aware; the copy lands in whichever arena owns the node.
  node->value.assign(data.begin(), data.end());
  return Tensor(node);
}

Tensor Tensor::RandomUniform(int rows, int cols, float lo, float hi, Rng& rng,
                             bool requires_grad) {
  auto node = MakeLeaf(rows, cols, requires_grad);
  for (auto& v : node->value) v = static_cast<float>(rng.Uniform(lo, hi));
  return Tensor(node);
}

Tensor Tensor::RandomNormal(int rows, int cols, float stddev, Rng& rng,
                            bool requires_grad) {
  auto node = MakeLeaf(rows, cols, requires_grad);
  for (auto& v : node->value) v = static_cast<float>(rng.Normal(0.0, stddev));
  return Tensor(node);
}

Tensor Tensor::Clone(bool requires_grad) const {
  CAUSER_CHECK(defined());
  auto node = internal::NewNode();
  node->rows = rows();
  node->cols = cols();
  node->value = node_->value;
  node->requires_grad = requires_grad;
  return Tensor(node);
}

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(null)";
  std::ostringstream os;
  os << "Tensor[" << rows() << "x" << cols() << "](";
  for (int r = 0; r < rows(); ++r) {
    os << (r == 0 ? "[" : ", [");
    for (int c = 0; c < cols(); ++c) {
      if (c) os << ", ";
      os << At(r, c);
    }
    os << "]";
  }
  os << ")";
  return os.str();
}

}  // namespace causer::tensor
