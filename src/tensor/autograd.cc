#include "tensor/autograd.h"

#include <vector>

namespace causer::tensor {
namespace {

using internal::Node;

// Monotone epoch for visit marks, so we never have to clear them. Graphs
// are thread-confined, so per-thread epochs suffice.
thread_local int g_visit_epoch = 0;

// Iterative post-order DFS producing children-before-parents order; we then
// walk it backwards so each node's grad is complete before propagation.
void TopoSort(Node* root, std::vector<Node*>& order, int epoch) {
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (root->visit_mark == epoch) return;
  root->visit_mark = epoch;
  stack.push_back({root, 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      Node* parent = top.node->parents[top.next_parent++].get();
      if (parent->visit_mark != epoch && parent->requires_grad) {
        parent->visit_mark = epoch;
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Tensor& loss) {
  CAUSER_CHECK(loss.defined() && loss.size() == 1);
  Node* root = loss.node().get();
  if (!root->requires_grad) return;

  std::vector<Node*> order;
  TopoSort(root, order, ++g_visit_epoch);

  root->EnsureGrad();
  root->grad[0] += 1.0f;

  // `order` is post-order (leaves first); iterate from the root backwards.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn) {
      node->EnsureGrad();
      node->backward_fn(*node);
    }
  }
}

double NumericalGradient(const std::function<double()>& f, Tensor& x, int r,
                         int c, double eps) {
  float original = x.At(r, c);
  x.At(r, c) = original + static_cast<float>(eps);
  double up = f();
  x.At(r, c) = original - static_cast<float>(eps);
  double down = f();
  x.At(r, c) = original;
  return (up - down) / (2.0 * eps);
}

}  // namespace causer::tensor
