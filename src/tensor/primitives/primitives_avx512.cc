// AVX-512 variant of the compute-primitive layer: 512-bit intrinsics,
// compiled with -mavx512f (which implies AVX2 for the 256-bit remainders
// here, but NOT FMA — plus -ffp-contract=off — so multiply and add keep
// their separate roundings; see primitives.h). Only AVX512F instructions
// are used: the double-precision Adam bias corrections move between zmm
// and 128-bit quarters via extractf32x4/insertf32x4 rather than the
// AVX512DQ 256-bit extracts. Lanes always map to distinct output
// elements; per-lane chains are the scalar reference chains.
//
// All helpers have internal linkage — the comdat-folding/SIGILL rule of
// variants.h applies doubly to this most-privileged TU.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <immintrin.h>

#include "tensor/primitives/variants.h"

namespace causer::tensor::primitives {
namespace {

// ---------------------------------------------------------------------------
// GEMM panels: 32-wide j tiles (two zmm per row) with the full ascending-k
// sweep in registers; 16- and 8-wide remainders, then scalar.

void GemmPanel4(int m, int p, const float* a0, const float* a1,
                const float* a2, const float* a3, int a_step, const float* b,
                int ldb, float* c0, float* c1, float* c2, float* c3) {
  int j = 0;
  for (; j + 32 <= p; j += 32) {
    __m512 x00 = _mm512_loadu_ps(c0 + j), x01 = _mm512_loadu_ps(c0 + j + 16);
    __m512 x10 = _mm512_loadu_ps(c1 + j), x11 = _mm512_loadu_ps(c1 + j + 16);
    __m512 x20 = _mm512_loadu_ps(c2 + j), x21 = _mm512_loadu_ps(c2 + j + 16);
    __m512 x30 = _mm512_loadu_ps(c3 + j), x31 = _mm512_loadu_ps(c3 + j + 16);
    for (int k = 0; k < m; ++k) {
      const float* bk = b + static_cast<std::size_t>(k) * ldb + j;
      const __m512 b0 = _mm512_loadu_ps(bk);
      const __m512 b1 = _mm512_loadu_ps(bk + 16);
      const std::size_t ak = static_cast<std::size_t>(k) * a_step;
      __m512 av;
      av = _mm512_set1_ps(a0[ak]);
      x00 = _mm512_add_ps(x00, _mm512_mul_ps(av, b0));
      x01 = _mm512_add_ps(x01, _mm512_mul_ps(av, b1));
      av = _mm512_set1_ps(a1[ak]);
      x10 = _mm512_add_ps(x10, _mm512_mul_ps(av, b0));
      x11 = _mm512_add_ps(x11, _mm512_mul_ps(av, b1));
      av = _mm512_set1_ps(a2[ak]);
      x20 = _mm512_add_ps(x20, _mm512_mul_ps(av, b0));
      x21 = _mm512_add_ps(x21, _mm512_mul_ps(av, b1));
      av = _mm512_set1_ps(a3[ak]);
      x30 = _mm512_add_ps(x30, _mm512_mul_ps(av, b0));
      x31 = _mm512_add_ps(x31, _mm512_mul_ps(av, b1));
    }
    _mm512_storeu_ps(c0 + j, x00);
    _mm512_storeu_ps(c0 + j + 16, x01);
    _mm512_storeu_ps(c1 + j, x10);
    _mm512_storeu_ps(c1 + j + 16, x11);
    _mm512_storeu_ps(c2 + j, x20);
    _mm512_storeu_ps(c2 + j + 16, x21);
    _mm512_storeu_ps(c3 + j, x30);
    _mm512_storeu_ps(c3 + j + 16, x31);
  }
  for (; j + 16 <= p; j += 16) {
    __m512 x0 = _mm512_loadu_ps(c0 + j);
    __m512 x1 = _mm512_loadu_ps(c1 + j);
    __m512 x2 = _mm512_loadu_ps(c2 + j);
    __m512 x3 = _mm512_loadu_ps(c3 + j);
    for (int k = 0; k < m; ++k) {
      const __m512 bk =
          _mm512_loadu_ps(b + static_cast<std::size_t>(k) * ldb + j);
      const std::size_t ak = static_cast<std::size_t>(k) * a_step;
      x0 = _mm512_add_ps(x0, _mm512_mul_ps(_mm512_set1_ps(a0[ak]), bk));
      x1 = _mm512_add_ps(x1, _mm512_mul_ps(_mm512_set1_ps(a1[ak]), bk));
      x2 = _mm512_add_ps(x2, _mm512_mul_ps(_mm512_set1_ps(a2[ak]), bk));
      x3 = _mm512_add_ps(x3, _mm512_mul_ps(_mm512_set1_ps(a3[ak]), bk));
    }
    _mm512_storeu_ps(c0 + j, x0);
    _mm512_storeu_ps(c1 + j, x1);
    _mm512_storeu_ps(c2 + j, x2);
    _mm512_storeu_ps(c3 + j, x3);
  }
  for (; j + 8 <= p; j += 8) {
    __m256 x0 = _mm256_loadu_ps(c0 + j);
    __m256 x1 = _mm256_loadu_ps(c1 + j);
    __m256 x2 = _mm256_loadu_ps(c2 + j);
    __m256 x3 = _mm256_loadu_ps(c3 + j);
    for (int k = 0; k < m; ++k) {
      const __m256 bk =
          _mm256_loadu_ps(b + static_cast<std::size_t>(k) * ldb + j);
      const std::size_t ak = static_cast<std::size_t>(k) * a_step;
      x0 = _mm256_add_ps(x0, _mm256_mul_ps(_mm256_set1_ps(a0[ak]), bk));
      x1 = _mm256_add_ps(x1, _mm256_mul_ps(_mm256_set1_ps(a1[ak]), bk));
      x2 = _mm256_add_ps(x2, _mm256_mul_ps(_mm256_set1_ps(a2[ak]), bk));
      x3 = _mm256_add_ps(x3, _mm256_mul_ps(_mm256_set1_ps(a3[ak]), bk));
    }
    _mm256_storeu_ps(c0 + j, x0);
    _mm256_storeu_ps(c1 + j, x1);
    _mm256_storeu_ps(c2 + j, x2);
    _mm256_storeu_ps(c3 + j, x3);
  }
  for (; j < p; ++j) {
    float s0 = c0[j], s1 = c1[j], s2 = c2[j], s3 = c3[j];
    for (int k = 0; k < m; ++k) {
      const float* bk = b + static_cast<std::size_t>(k) * ldb;
      const std::size_t ak = static_cast<std::size_t>(k) * a_step;
      s0 += a0[ak] * bk[j];
      s1 += a1[ak] * bk[j];
      s2 += a2[ak] * bk[j];
      s3 += a3[ak] * bk[j];
    }
    c0[j] = s0;
    c1[j] = s1;
    c2[j] = s2;
    c3[j] = s3;
  }
}

void GemmPanel1(int m, int p, const float* a, int a_step, const float* b,
                int ldb, float* c) {
  int j = 0;
  for (; j + 64 <= p; j += 64) {
    __m512 x0 = _mm512_loadu_ps(c + j);
    __m512 x1 = _mm512_loadu_ps(c + j + 16);
    __m512 x2 = _mm512_loadu_ps(c + j + 32);
    __m512 x3 = _mm512_loadu_ps(c + j + 48);
    for (int k = 0; k < m; ++k) {
      const float* bk = b + static_cast<std::size_t>(k) * ldb + j;
      const __m512 av =
          _mm512_set1_ps(a[static_cast<std::size_t>(k) * a_step]);
      x0 = _mm512_add_ps(x0, _mm512_mul_ps(av, _mm512_loadu_ps(bk)));
      x1 = _mm512_add_ps(x1, _mm512_mul_ps(av, _mm512_loadu_ps(bk + 16)));
      x2 = _mm512_add_ps(x2, _mm512_mul_ps(av, _mm512_loadu_ps(bk + 32)));
      x3 = _mm512_add_ps(x3, _mm512_mul_ps(av, _mm512_loadu_ps(bk + 48)));
    }
    _mm512_storeu_ps(c + j, x0);
    _mm512_storeu_ps(c + j + 16, x1);
    _mm512_storeu_ps(c + j + 32, x2);
    _mm512_storeu_ps(c + j + 48, x3);
  }
  for (; j + 16 <= p; j += 16) {
    __m512 x0 = _mm512_loadu_ps(c + j);
    for (int k = 0; k < m; ++k) {
      const __m512 av =
          _mm512_set1_ps(a[static_cast<std::size_t>(k) * a_step]);
      x0 = _mm512_add_ps(
          x0, _mm512_mul_ps(
                  av, _mm512_loadu_ps(b + static_cast<std::size_t>(k) * ldb +
                                      j)));
    }
    _mm512_storeu_ps(c + j, x0);
  }
  for (; j < p; ++j) {
    float s = c[j];
    for (int k = 0; k < m; ++k) {
      s += a[static_cast<std::size_t>(k) * a_step] *
           b[static_cast<std::size_t>(k) * ldb + j];
    }
    c[j] = s;
  }
}

void Axpy(int n, float alpha, const float* x, float* y) {
  const __m512 av = _mm512_set1_ps(alpha);
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 xv = _mm512_loadu_ps(x + i);
    const __m512 yv = _mm512_loadu_ps(y + i);
    _mm512_storeu_ps(y + i, _mm512_add_ps(yv, _mm512_mul_ps(av, xv)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

// ---------------------------------------------------------------------------
// Dot8's interface is eight rows wide, so the natural register is ymm even
// in this tier; the 8x8 transpose trick is the same as the AVX2 variant
// (duplicated rather than shared — internal linkage rule).

void Dot8(int m, const float* a, const float* b, std::size_t stride,
          float* io) {
  __m256 acc = _mm256_loadu_ps(io);
  int k = 0;
  for (; k + 8 <= m; k += 8) {
    __m256 r0 = _mm256_loadu_ps(b + 0 * stride + k);
    __m256 r1 = _mm256_loadu_ps(b + 1 * stride + k);
    __m256 r2 = _mm256_loadu_ps(b + 2 * stride + k);
    __m256 r3 = _mm256_loadu_ps(b + 3 * stride + k);
    __m256 r4 = _mm256_loadu_ps(b + 4 * stride + k);
    __m256 r5 = _mm256_loadu_ps(b + 5 * stride + k);
    __m256 r6 = _mm256_loadu_ps(b + 6 * stride + k);
    __m256 r7 = _mm256_loadu_ps(b + 7 * stride + k);
    const __m256 u0 = _mm256_unpacklo_ps(r0, r1);
    const __m256 u1 = _mm256_unpackhi_ps(r0, r1);
    const __m256 u2 = _mm256_unpacklo_ps(r2, r3);
    const __m256 u3 = _mm256_unpackhi_ps(r2, r3);
    const __m256 u4 = _mm256_unpacklo_ps(r4, r5);
    const __m256 u5 = _mm256_unpackhi_ps(r4, r5);
    const __m256 u6 = _mm256_unpacklo_ps(r6, r7);
    const __m256 u7 = _mm256_unpackhi_ps(r6, r7);
    const __m256 s0 = _mm256_shuffle_ps(u0, u2, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s1 = _mm256_shuffle_ps(u0, u2, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s2 = _mm256_shuffle_ps(u1, u3, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s3 = _mm256_shuffle_ps(u1, u3, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s4 = _mm256_shuffle_ps(u4, u6, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s5 = _mm256_shuffle_ps(u4, u6, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s6 = _mm256_shuffle_ps(u5, u7, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s7 = _mm256_shuffle_ps(u5, u7, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 t0 = _mm256_permute2f128_ps(s0, s4, 0x20);
    const __m256 t1 = _mm256_permute2f128_ps(s1, s5, 0x20);
    const __m256 t2 = _mm256_permute2f128_ps(s2, s6, 0x20);
    const __m256 t3 = _mm256_permute2f128_ps(s3, s7, 0x20);
    const __m256 t4 = _mm256_permute2f128_ps(s0, s4, 0x31);
    const __m256 t5 = _mm256_permute2f128_ps(s1, s5, 0x31);
    const __m256 t6 = _mm256_permute2f128_ps(s2, s6, 0x31);
    const __m256 t7 = _mm256_permute2f128_ps(s3, s7, 0x31);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[k + 0]), t0));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[k + 1]), t1));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[k + 2]), t2));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[k + 3]), t3));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[k + 4]), t4));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[k + 5]), t5));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[k + 6]), t6));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[k + 7]), t7));
  }
  _mm256_storeu_ps(io, acc);
  for (; k < m; ++k) {
    for (int l = 0; l < 8; ++l) {
      io[l] += a[k] * b[static_cast<std::size_t>(l) * stride + k];
    }
  }
}

float Dot(int m, const float* a, const float* b) {
  float acc = 0.0f;
  for (int k = 0; k < m; ++k) acc += a[k] * b[k];
  return acc;
}

// ---------------------------------------------------------------------------

void AdamStep(std::size_t count, float lr, float beta1, float beta2,
              float one_minus_b1, float one_minus_b2, double bc1, double bc2,
              float eps, float* w, const float* g, float* m, float* v) {
  const __m512 b1v = _mm512_set1_ps(beta1);
  const __m512 b2v = _mm512_set1_ps(beta2);
  const __m512 omb1v = _mm512_set1_ps(one_minus_b1);
  const __m512 omb2v = _mm512_set1_ps(one_minus_b2);
  const __m512 lrv = _mm512_set1_ps(lr);
  const __m512 epsv = _mm512_set1_ps(eps);
  const __m256d bc1v = _mm256_set1_pd(bc1);
  const __m256d bc2v = _mm256_set1_pd(bc2);
  // Widen each 128-bit quarter to double, divide once, narrow once —
  // all three steps correctly rounded, so each lane matches the scalar
  // static_cast<float>(x / bc). AVX512F only (extract/insertf32x4).
  const auto div_quarter = [](__m128 quarter, __m256d d) -> __m128 {
    return _mm256_cvtpd_ps(_mm256_div_pd(_mm256_cvtps_pd(quarter), d));
  };
  const auto div_by_double = [div_quarter](__m512 x, __m256d d) -> __m512 {
    // extract/insertf32x4 take immediates, hence the unrolled quarters.
    __m512 out = x;
    out = _mm512_insertf32x4(out, div_quarter(_mm512_extractf32x4_ps(x, 0), d), 0);
    out = _mm512_insertf32x4(out, div_quarter(_mm512_extractf32x4_ps(x, 1), d), 1);
    out = _mm512_insertf32x4(out, div_quarter(_mm512_extractf32x4_ps(x, 2), d), 2);
    out = _mm512_insertf32x4(out, div_quarter(_mm512_extractf32x4_ps(x, 3), d), 3);
    return out;
  };
  std::size_t j = 0;
  for (; j + 16 <= count; j += 16) {
    const __m512 gj = _mm512_loadu_ps(g + j);
    const __m512 mj = _mm512_add_ps(_mm512_mul_ps(b1v, _mm512_loadu_ps(m + j)),
                                    _mm512_mul_ps(omb1v, gj));
    const __m512 vj = _mm512_add_ps(
        _mm512_mul_ps(b2v, _mm512_loadu_ps(v + j)),
        _mm512_mul_ps(_mm512_mul_ps(omb2v, gj), gj));
    _mm512_storeu_ps(m + j, mj);
    _mm512_storeu_ps(v + j, vj);
    const __m512 mhat = div_by_double(mj, bc1v);
    const __m512 vhat = div_by_double(vj, bc2v);
    const __m512 denom = _mm512_add_ps(_mm512_sqrt_ps(vhat), epsv);
    const __m512 upd = _mm512_div_ps(_mm512_mul_ps(lrv, mhat), denom);
    _mm512_storeu_ps(w + j, _mm512_sub_ps(_mm512_loadu_ps(w + j), upd));
  }
  for (; j < count; ++j) {
    const float gj = g[j];
    const float mj = beta1 * m[j] + one_minus_b1 * gj;
    const float vj = beta2 * v[j] + one_minus_b2 * gj * gj;
    m[j] = mj;
    v[j] = vj;
    const float mhat = static_cast<float>(mj / bc1);
    const float vhat = static_cast<float>(vj / bc2);
    w[j] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

float ReduceMax(std::size_t n, const float* x) {
  if (n < 16) {
    float mx = x[0];
    for (std::size_t i = 1; i < n; ++i) mx = mx < x[i] ? x[i] : mx;
    return mx;
  }
  __m512 mv = _mm512_loadu_ps(x);
  std::size_t i = 16;
  for (; i + 16 <= n; i += 16) mv = _mm512_max_ps(mv, _mm512_loadu_ps(x + i));
  alignas(64) float lanes[16];
  _mm512_store_ps(lanes, mv);
  float mx = lanes[0];
  for (int l = 1; l < 16; ++l) mx = mx < lanes[l] ? lanes[l] : mx;
  for (; i < n; ++i) mx = mx < x[i] ? x[i] : mx;
  return mx;
}

void Clamp(std::size_t n, float lo, float hi, float* x) {
  const __m512 lov = _mm512_set1_ps(lo);
  const __m512 hiv = _mm512_set1_ps(hi);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 xv = _mm512_loadu_ps(x + i);
    _mm512_storeu_ps(x + i, _mm512_min_ps(hiv, _mm512_max_ps(lov, xv)));
  }
  for (; i < n; ++i) {
    const float t = lo > x[i] ? lo : x[i];
    x[i] = hi < t ? hi : t;
  }
}

void ExpApply(std::size_t n, float* x) {
  // Scalar libm by contract — see primitives.h.
  for (std::size_t i = 0; i < n; ++i) x[i] = std::exp(x[i]);
}

// ---------------------------------------------------------------------------
// Int8 primitives. 256-bit copies of the AVX2 variants (internal linkage
// per the comdat-folding rule — see variants.h): the 512-bit byte/word
// widening ops (vpmovsxbw zmm, vpmaddwd zmm) live in AVX512BW, which this
// TU deliberately does not require (-mavx512f only). int32 accumulation
// is exact, so these return the same integers as every other tier by
// arithmetic (primitives.h).

inline std::int32_t HsumEpi32(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

/// Row sums of four 8-lane int32 accumulators in one vector: a hadd tree
/// beats four independent horizontal reductions (integer addition is
/// associative, so any reduction order yields the same bits).
inline __m128i Hsum4Epi32(__m256i a, __m256i b, __m256i c, __m256i d) {
  const __m256i h = _mm256_hadd_epi32(_mm256_hadd_epi32(a, b),
                                      _mm256_hadd_epi32(c, d));
  return _mm_add_epi32(_mm256_castsi256_si128(h),
                       _mm256_extracti128_si256(h, 1));
}

void Dot8S8(int m, const std::int8_t* a, const std::int8_t* b,
            std::size_t stride, std::int32_t* io) {
  // abs/sign + maddubs, same as the avx2 tier (256-bit: the byte/word ops
  // would need AVX512BW at 512 bits). Codes clamped to [-127, 127] keep
  // every int16 pair sum <= 2 * 127^2 = 32258, so maddubs cannot saturate.
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc[8];
  for (int l = 0; l < 8; ++l) acc[l] = _mm256_setzero_si256();
  int k = 0;
  for (; k + 32 <= m; k += 32) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k));
    const __m256i aabs = _mm256_abs_epi8(av);
    for (int l = 0; l < 8; ++l) {
      const __m256i bv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          b + static_cast<std::size_t>(l) * stride + k));
      const __m256i prod16 =
          _mm256_maddubs_epi16(aabs, _mm256_sign_epi8(bv, av));
      acc[l] = _mm256_add_epi32(acc[l], _mm256_madd_epi16(prod16, ones));
    }
  }
  std::int32_t sums[8];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(sums),
                   Hsum4Epi32(acc[0], acc[1], acc[2], acc[3]));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(sums + 4),
                   Hsum4Epi32(acc[4], acc[5], acc[6], acc[7]));
  std::int32_t tail[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (; k < m; ++k) {
    const std::int32_t ak = a[k];
    for (int l = 0; l < 8; ++l) {
      tail[l] += ak * b[static_cast<std::size_t>(l) * stride + k];
    }
  }
  for (int l = 0; l < 8; ++l) io[l] += sums[l] + tail[l];
}

std::int32_t DotS8(int m, const std::int8_t* a, const std::int8_t* b) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc = _mm256_setzero_si256();
  int k = 0;
  for (; k + 32 <= m; k += 32) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k));
    const __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + k));
    const __m256i prod16 =
        _mm256_maddubs_epi16(_mm256_abs_epi8(av), _mm256_sign_epi8(bv, av));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(prod16, ones));
  }
  std::int32_t sum = HsumEpi32(acc);
  for (; k < m; ++k) {
    sum += static_cast<std::int32_t>(a[k]) * static_cast<std::int32_t>(b[k]);
  }
  return sum;
}

// Full-width VNNI panel, selected at runtime when the CPU also has
// AVX512VNNI (the TU itself still only requires -mavx512f; this function
// carries its own target attribute). vpdpbusd wants an unsigned left
// operand, so the *item* rows are biased by +128 and the shared
// activation rides the signed side:
//   dpbusd(b ^ 0x80, a) = sum (b+128)*a = sum a*b + 128 * sum a
// The correction 128 * sum a depends only on the activation, so it is
// one scalar computed per call and subtracted from every dot — the
// panel's inner loop is one load + xor + dpbusd per 64 codes.
// Everything stays in int32: |sum (b+128)*a| <= 255*127*m and the
// correction <= 128*127*m both fit for any m <= 65536 (the documented
// bound), so the corrected dots match every other tier bit-for-bit by
// integer arithmetic.
__attribute__((target("avx512f,avx512bw,avx512vnni"))) void GemmPanelS8Vnni(
    int m, int p, const std::int8_t* a, const std::int8_t* b,
    std::size_t stride, std::int32_t* out) {
  const __m512i bias = _mm512_set1_epi8(static_cast<char>(0x80));
  const int mb = m & ~63;
  std::int32_t suma = 0;
  for (int k = 0; k < mb; ++k) suma += a[k];
  const std::int32_t corr = suma * 128;
  int j = 0;
  for (; j + 8 <= p; j += 8) {
    const std::int8_t* bj = b + static_cast<std::size_t>(j) * stride;
    __m512i dp[8];
    for (int l = 0; l < 8; ++l) dp[l] = _mm512_setzero_si512();
    for (int k = 0; k < mb; k += 64) {
      const __m512i av = _mm512_loadu_si512(a + k);
      for (int l = 0; l < 8; ++l) {
        const __m512i bu = _mm512_xor_si512(
            _mm512_loadu_si512(bj + static_cast<std::size_t>(l) * stride + k),
            bias);
        dp[l] = _mm512_dpbusd_epi32(dp[l], bu, av);
      }
    }
    __m256i h[8];
    for (int l = 0; l < 8; ++l) {
      h[l] = _mm256_add_epi32(_mm512_castsi512_si256(dp[l]),
                              _mm512_extracti64x4_epi64(dp[l], 1));
    }
    std::int32_t sums[8];
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sums),
                     Hsum4Epi32(h[0], h[1], h[2], h[3]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sums + 4),
                     Hsum4Epi32(h[4], h[5], h[6], h[7]));
    for (int l = 0; l < 8; ++l) {
      std::int32_t s = sums[l] - corr;
      const std::int8_t* bl = bj + static_cast<std::size_t>(l) * stride;
      for (int k = mb; k < m; ++k) {
        s += static_cast<std::int32_t>(a[k]) * static_cast<std::int32_t>(bl[k]);
      }
      out[j + l] = s;
    }
  }
  for (; j < p; ++j) {
    out[j] = DotS8(m, a, b + static_cast<std::size_t>(j) * stride);
  }
}

void GemmPanelS8(int m, int p, const std::int8_t* a, const std::int8_t* b,
                 std::size_t stride, std::int32_t* out) {
  static const bool kHasVnni = __builtin_cpu_supports("avx512vnni") != 0;
  if (kHasVnni) {
    GemmPanelS8Vnni(m, p, a, b, stride, out);
    return;
  }
  int j = 0;
  for (; j + 8 <= p; j += 8) {
    std::int32_t acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    Dot8S8(m, a, b + static_cast<std::size_t>(j) * stride, stride, acc);
    for (int l = 0; l < 8; ++l) out[j + l] = acc[l];
  }
  for (; j < p; ++j) {
    out[j] = DotS8(m, a, b + static_cast<std::size_t>(j) * stride);
  }
}

// Full-width dequantize + threshold: sixteen scores per k-mask, AVX512F
// only (cvtepi32_ps, mul_ps, cmp_ps_mask, and the two compress-stores
// are all F). Survivors stream out branch-free: one compress-store for
// the scores, one for the lane indices, and a popcount advances the
// cursor. Same two-rounding score expression as the scalar tier, so the
// mask and the emitted score bits are exact.
int DequantFilter(int n, const std::int32_t* acc, const float* b_scales,
                  float a_scale, float threshold, std::int32_t* out_idx,
                  float* out_scores) {
  const __m512 as = _mm512_set1_ps(a_scale);
  const __m512 thr = _mm512_set1_ps(threshold);
  const __m512i step = _mm512_set1_epi32(16);
  __m512i lane = _mm512_set_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3,
                                  2, 1, 0);
  int count = 0;
  int l = 0;
  for (; l + 16 <= n; l += 16) {
    const __m512 score = _mm512_mul_ps(
        _mm512_cvtepi32_ps(_mm512_loadu_si512(acc + l)),
        _mm512_mul_ps(as, _mm512_loadu_ps(b_scales + l)));
    const __mmask16 mask = _mm512_cmp_ps_mask(score, thr, _CMP_GE_OQ);
    _mm512_mask_compressstoreu_ps(out_scores + count, mask, score);
    _mm512_mask_compressstoreu_epi32(out_idx + count, mask, lane);
    count += __builtin_popcount(mask);
    lane = _mm512_add_epi32(lane, step);
  }
  for (; l < n; ++l) {
    const float score = static_cast<float>(acc[l]) * (a_scale * b_scales[l]);
    if (score >= threshold) {
      out_idx[count] = l;
      out_scores[count] = score;
      ++count;
    }
  }
  return count;
}

}  // namespace

const Ops kAvx512Ops = {
    /*name=*/"avx512",
    /*isa=*/cpu::Isa::kAvx512,
    /*gemm_panel4=*/GemmPanel4,
    /*gemm_panel1=*/GemmPanel1,
    /*axpy=*/Axpy,
    /*dot8=*/Dot8,
    /*dot=*/Dot,
    /*adam_step=*/AdamStep,
    /*reduce_max=*/ReduceMax,
    /*clamp=*/Clamp,
    /*exp_apply=*/ExpApply,
    /*dot8_s8=*/Dot8S8,
    /*gemm_panel_s8=*/GemmPanelS8,
    /*dequant_filter=*/DequantFilter,
};

}  // namespace causer::tensor::primitives
