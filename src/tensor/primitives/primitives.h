#ifndef CAUSER_TENSOR_PRIMITIVES_PRIMITIVES_H_
#define CAUSER_TENSOR_PRIMITIVES_PRIMITIVES_H_

#include <cstddef>
#include <cstdint>

#include "common/cpu.h"

/// The compute-primitive layer: the small set of inner loops every fp32
/// hot path (GEMM microkernels, the fused Adam update, MatMulTopK's tile
/// scan) is built from, with one explicit implementation per cpu::Isa
/// tier. `Active()` is the dispatch point — resolved once at startup from
/// cpuid with a flag/env override (precedence: --cpu-isa flag >
/// CAUSER_CPU_ISA env > cpuid; see common/cpu.h) — and the per-ISA tables
/// (`ForIsa`) are the implementations.
///
/// ## The fp32 bit-identity contract (hard invariant)
///
/// Every variant of every primitive produces bit-identical results to the
/// scalar reference, on every input, at every thread count. The layer
/// guarantees this *by construction*, not by tolerance:
///
///  1. **A vector lane owns a whole output element.** SIMD runs across
///     distinct output elements (the `j` direction / distinct dots /
///     distinct parameters) — never across the `k` direction inside one
///     reduction. Each element's summation stays the ascending-k,
///     single-accumulator chain of `kernels::MatMulAddNaive`, whatever
///     the lane width; widening the ISA changes how many chains advance
///     per instruction, never the order within a chain.
///  2. **Multiply and add are rounded separately.** No FMA contraction:
///     the AVX TUs are compiled without -mfma-generated contraction
///     (-ffp-contract=off, mul/add intrinsics), because a fused
///     multiply-add rounds once where the reference rounds twice.
///  3. **Per-lane ops are IEEE-exact.** vmulps/vaddps/vdivps/vsqrtps and
///     the float<->double conversions are correctly rounded per lane, so
///     lane arithmetic is indistinguishable from scalar arithmetic.
///
/// Two documented exceptions: `reduce_max` is value-exact (`==`) but may
/// return the other sign of zero when +0 and -0 tie for the maximum, and
/// `exp_apply` stays scalar libm in every variant (there is no
/// bit-compatible vector exp; it exists here so a tolerance-gated path
/// can swap one in behind the same dispatch point).
///
/// The int8 members (`dot8_s8`, `gemm_panel_s8`) sit outside the fp32
/// contract in the best way: int32 accumulation is exact, so they are
/// bit-identical across tiers by arithmetic even though the vector
/// variants reassociate freely. The *scores* built from them are
/// quantized — that approximation and its fp32 re-rank guarantee are
/// documented in docs/KERNELS.md "Quantized primitives".
///
/// The contract is enforced by tests/primitives_test.cc (every compiled
/// variant vs. scalar, GEMM/Adam/TopK, threads 1/2/8) and documented for
/// humans in docs/KERNELS.md.
namespace causer::tensor::primitives {

/// One ISA variant's implementation table. All pointers are always
/// non-null. Function-pointer indirection costs one predictable call per
/// *panel/array*, not per element — noise next to the O(m·p) work inside.
struct Ops {
  /// IsaName(isa) spelling; keys the BENCH_kernels.json variant rows and
  /// the docs/KERNELS.md ISA table.
  const char* name;
  /// The tier this table implements.
  cpu::Isa isa;

  /// Four-row fused multiply-add panel — the GEMM microkernel body.
  /// For r in 0..3, j in [0,p):
  ///   c_r[j] += sum_{k ascending in [0,m)} a_r[k*a_step] * b[k*ldb + j]
  /// accumulated element-wise in ascending k through c_r[j] itself (the
  /// chain starts from the incoming c value; each product and each add
  /// rounds once). `a_step` is 1 for row-major A panels and `n` when
  /// consuming a transposed A in place (kernels::MatMulAdd's TransA
  /// path). The four c rows must not alias each other or b.
  void (*gemm_panel4)(int m, int p, const float* a0, const float* a1,
                      const float* a2, const float* a3, int a_step,
                      const float* b, int ldb, float* c0, float* c1,
                      float* c2, float* c3);

  /// Single-row tail of gemm_panel4 (same contract, one row).
  void (*gemm_panel1)(int m, int p, const float* a, int a_step,
                      const float* b, int ldb, float* c);

  /// y[j] += alpha * x[j] for j in [0,n): one rounded multiply and one
  /// rounded add per element. Used by the single-output-column TransA
  /// path (k-outer loop: one axpy per k keeps each y[i] chain ascending
  /// in k across calls).
  void (*axpy)(int n, float alpha, const float* x, float* y);

  /// Eight interleaved dot products against eight consecutive rows of a
  /// row-major matrix: for lane l in 0..7,
  ///   io[l] += sum_{k ascending in [0,m)} a[k] * b[l*stride + k]
  /// with io[l] seeding lane l's accumulator chain (pass zeros for a
  /// from-scratch dot). Lanes are distinct output elements, so the AVX
  /// variants transpose 8xW input tiles to keep per-lane k order — they
  /// never split one dot across lanes. Powers DotRowKernel (GEMV against
  /// a transposed B) and MatMulTopK's tile scan.
  void (*dot8)(int m, const float* a, const float* b, std::size_t stride,
               float* io);

  /// One sequential ascending-k dot product from a zero accumulator —
  /// the j-remainder companion of dot8. Identical code in every variant
  /// (a single chain cannot vectorize under invariant 1).
  float (*dot)(int m, const float* a, const float* b);

  /// Fused Adam element update, term-for-term the classic three-statement
  /// form (see nn::Adam::Step). For each j:
  ///   m[j] = beta1*m[j] + one_minus_b1*g[j]
  ///   v[j] = beta2*v[j] + (one_minus_b2*g[j])*g[j]
  ///   w[j] -= lr * (float)(m[j]/bc1) / (sqrt((float)(v[j]/bc2)) + eps)
  /// Bias corrections divide in double then round to float exactly like
  /// the scalar reference (lanes widen/narrow through cvtps_pd/cvtpd_ps,
  /// both correctly rounded).
  void (*adam_step)(std::size_t count, float lr, float beta1, float beta2,
                    float one_minus_b1, float one_minus_b2, double bc1,
                    double bc2, float eps, float* w, const float* g,
                    float* m, float* v);

  /// Maximum of x[0..n), n >= 1. Tiled: per-lane running maxima folded at
  /// the end — exact because float max is associative/commutative on
  /// NaN-free input (the one primitive specified value-exact rather than
  /// bit-exact: a +0/-0 tie may return either zero). Feeds the softmax
  /// max-subtraction.
  float (*reduce_max)(std::size_t n, const float* x);

  /// x[i] = min(hi, max(lo, x[i])) with maxps/minps select semantics
  /// (constant operand first): a NaN x[i] propagates unchanged and signed
  /// zeros resolve identically in every variant. Requires lo <= hi.
  void (*clamp)(std::size_t n, float lo, float hi, float* x);

  /// x[i] = exp(x[i]) via scalar std::exp in every variant — see the
  /// contract note above.
  void (*exp_apply)(std::size_t n, float* x);

  // ---- Int8 primitives (quantized scoring path) ------------------------
  //
  // These accumulate in int32, where addition is exact and associative —
  // so unlike the fp32 primitives above, variants are free to widen,
  // reassociate, and horizontally reduce, and every tier still returns
  // identical integers by arithmetic rather than by lockstep ordering.
  // The caller keeps the reduction inside int32: |sum| <= 127*127*m, so
  // any m <= 65536 is safe with a wide margin (catalog dims here are far
  // smaller). Scale math and the accuracy contract of the scores built
  // from these live in docs/KERNELS.md "Quantized primitives".

  /// Eight interleaved int8 dot products against eight consecutive rows
  /// of a row-major int8 matrix: for lane l in 0..7,
  ///   io[l] += sum_k (int32)a[k] * (int32)b[l*stride + k]
  /// with io[l] seeding lane l's accumulator (pass zeros for a
  /// from-scratch dot). The int8 counterpart of dot8; the AVX variants
  /// use the abs/sign trick (a*b == |a| * sign-adjusted b) so vpmaddubsw
  /// pair-sums apply, which cannot saturate with codes clamped to
  /// [-127, 127] (pair sums <= 2*127^2 = 32258 < 32767).
  void (*dot8_s8)(int m, const std::int8_t* a, const std::int8_t* b,
                  std::size_t stride, std::int32_t* io);

  /// p from-scratch int8 dots of one activation row against p consecutive
  /// rows of a row-major int8 matrix:
  ///   out[j] = sum_k (int32)a[k] * (int32)b[j*stride + k],  j in [0,p)
  /// — the tile body of kernels::MatMulTopKQ.
  void (*gemm_panel_s8)(int m, int p, const std::int8_t* a,
                        const std::int8_t* b, std::size_t stride,
                        std::int32_t* out);

  /// Dequantizing threshold filter over a gemm_panel_s8 tile: writes to
  /// out_idx (ascending) every position l in [0, n) whose score
  ///   (float)acc[l] * (a_scale * b_scales[l])
  /// compares >= threshold, writes the same positions' scores to
  /// out_scores, and returns the count. Each lane's score is the same
  /// two-rounding fp32 expression the scalar tier evaluates, so the
  /// selected set and its score bits are identical on every tier; pass
  /// threshold = -infinity to keep all n. This is the survivor scan of
  /// kernels::MatMulTopKQ — vector tiers turn the per-element branch
  /// into a compare mask (AVX-512 compress-stores both streams) and the
  /// caller never touches positions that fail.
  int (*dequant_filter)(int n, const std::int32_t* acc,
                        const float* b_scales, float a_scale,
                        float threshold, std::int32_t* out_idx,
                        float* out_scores);
};

/// The dispatch point: the table for cpu::ActiveIsa(). First call
/// resolves the ISA (flag > env > cpuid, with graceful fallback); later
/// calls are one atomic load plus a table lookup. Hot kernels hoist the
/// reference once per call, not per element.
const Ops& Active();

/// The table for one specific tier, or nullptr when that variant is not
/// compiled into this binary. For the equivalence tests and bench_kernels
/// only — production code goes through Active(). Calling a table whose
/// ISA the running CPU lacks is undefined (SIGILL); guard with
/// cpu::IsaSupported.
const Ops* ForIsa(cpu::Isa isa);

}  // namespace causer::tensor::primitives

#endif  // CAUSER_TENSOR_PRIMITIVES_PRIMITIVES_H_
