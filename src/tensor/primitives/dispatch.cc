#include "tensor/primitives/primitives.h"

#include "tensor/primitives/variants.h"

namespace causer::tensor::primitives {

const Ops* ForIsa(cpu::Isa isa) {
  switch (isa) {
    case cpu::Isa::kScalar:
      return &kScalarOps;
    case cpu::Isa::kAvx2:
#ifdef CAUSER_ISA_AVX2_COMPILED
      return &kAvx2Ops;
#else
      return nullptr;
#endif
    case cpu::Isa::kAvx512:
#ifdef CAUSER_ISA_AVX512_COMPILED
      return &kAvx512Ops;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const Ops& Active() {
  // cpu::ActiveIsa() only ever returns a supported tier (the fallback
  // chain bottoms out at scalar), so the lookup cannot miss; the scalar
  // default is belt-and-braces.
  const Ops* ops = ForIsa(cpu::ActiveIsa());
  return ops != nullptr ? *ops : kScalarOps;
}

}  // namespace causer::tensor::primitives
