// AVX2 variant of the compute-primitive layer: 256-bit explicit
// intrinsics, compiled with -mavx2 only — deliberately WITHOUT -mfma, so
// the compiler cannot contract the separately-rounded multiply and add
// that the fp32 bit-identity contract requires (primitives.h; GCC lowers
// the mul/add intrinsics to plain vector +/* which would be contractable
// if an FMA target were enabled). Vector lanes always map to distinct
// output elements; every per-lane chain is the scalar reference chain.
//
// Every helper here has internal linkage on purpose: an inline helper
// shared with another TU could be comdat-folded into this AVX2-compiled
// copy and SIGILL a pre-AVX2 machine (see variants.h).

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <immintrin.h>

#include "tensor/primitives/variants.h"

namespace causer::tensor::primitives {
namespace {

// ---------------------------------------------------------------------------
// GEMM panels: register-tiled over j (16 floats = 2 ymm per row), the full
// ascending-k sweep accumulating in registers. Per element the chain is
// c[j] + t_0 + t_1 + ... exactly like the scalar panel; keeping the
// accumulators in registers instead of re-storing per k changes traffic,
// not rounding.

void GemmPanel4(int m, int p, const float* a0, const float* a1,
                const float* a2, const float* a3, int a_step, const float* b,
                int ldb, float* c0, float* c1, float* c2, float* c3) {
  int j = 0;
  for (; j + 16 <= p; j += 16) {
    __m256 x00 = _mm256_loadu_ps(c0 + j), x01 = _mm256_loadu_ps(c0 + j + 8);
    __m256 x10 = _mm256_loadu_ps(c1 + j), x11 = _mm256_loadu_ps(c1 + j + 8);
    __m256 x20 = _mm256_loadu_ps(c2 + j), x21 = _mm256_loadu_ps(c2 + j + 8);
    __m256 x30 = _mm256_loadu_ps(c3 + j), x31 = _mm256_loadu_ps(c3 + j + 8);
    for (int k = 0; k < m; ++k) {
      const float* bk = b + static_cast<std::size_t>(k) * ldb + j;
      const __m256 b0 = _mm256_loadu_ps(bk);
      const __m256 b1 = _mm256_loadu_ps(bk + 8);
      const std::size_t ak = static_cast<std::size_t>(k) * a_step;
      __m256 av;
      av = _mm256_set1_ps(a0[ak]);
      x00 = _mm256_add_ps(x00, _mm256_mul_ps(av, b0));
      x01 = _mm256_add_ps(x01, _mm256_mul_ps(av, b1));
      av = _mm256_set1_ps(a1[ak]);
      x10 = _mm256_add_ps(x10, _mm256_mul_ps(av, b0));
      x11 = _mm256_add_ps(x11, _mm256_mul_ps(av, b1));
      av = _mm256_set1_ps(a2[ak]);
      x20 = _mm256_add_ps(x20, _mm256_mul_ps(av, b0));
      x21 = _mm256_add_ps(x21, _mm256_mul_ps(av, b1));
      av = _mm256_set1_ps(a3[ak]);
      x30 = _mm256_add_ps(x30, _mm256_mul_ps(av, b0));
      x31 = _mm256_add_ps(x31, _mm256_mul_ps(av, b1));
    }
    _mm256_storeu_ps(c0 + j, x00);
    _mm256_storeu_ps(c0 + j + 8, x01);
    _mm256_storeu_ps(c1 + j, x10);
    _mm256_storeu_ps(c1 + j + 8, x11);
    _mm256_storeu_ps(c2 + j, x20);
    _mm256_storeu_ps(c2 + j + 8, x21);
    _mm256_storeu_ps(c3 + j, x30);
    _mm256_storeu_ps(c3 + j + 8, x31);
  }
  for (; j + 8 <= p; j += 8) {
    __m256 x0 = _mm256_loadu_ps(c0 + j);
    __m256 x1 = _mm256_loadu_ps(c1 + j);
    __m256 x2 = _mm256_loadu_ps(c2 + j);
    __m256 x3 = _mm256_loadu_ps(c3 + j);
    for (int k = 0; k < m; ++k) {
      const __m256 bk =
          _mm256_loadu_ps(b + static_cast<std::size_t>(k) * ldb + j);
      const std::size_t ak = static_cast<std::size_t>(k) * a_step;
      x0 = _mm256_add_ps(x0, _mm256_mul_ps(_mm256_set1_ps(a0[ak]), bk));
      x1 = _mm256_add_ps(x1, _mm256_mul_ps(_mm256_set1_ps(a1[ak]), bk));
      x2 = _mm256_add_ps(x2, _mm256_mul_ps(_mm256_set1_ps(a2[ak]), bk));
      x3 = _mm256_add_ps(x3, _mm256_mul_ps(_mm256_set1_ps(a3[ak]), bk));
    }
    _mm256_storeu_ps(c0 + j, x0);
    _mm256_storeu_ps(c1 + j, x1);
    _mm256_storeu_ps(c2 + j, x2);
    _mm256_storeu_ps(c3 + j, x3);
  }
  for (; j < p; ++j) {
    float s0 = c0[j], s1 = c1[j], s2 = c2[j], s3 = c3[j];
    for (int k = 0; k < m; ++k) {
      const float* bk = b + static_cast<std::size_t>(k) * ldb;
      const std::size_t ak = static_cast<std::size_t>(k) * a_step;
      s0 += a0[ak] * bk[j];
      s1 += a1[ak] * bk[j];
      s2 += a2[ak] * bk[j];
      s3 += a3[ak] * bk[j];
    }
    c0[j] = s0;
    c1[j] = s1;
    c2[j] = s2;
    c3[j] = s3;
  }
}

void GemmPanel1(int m, int p, const float* a, int a_step, const float* b,
                int ldb, float* c) {
  int j = 0;
  for (; j + 32 <= p; j += 32) {
    __m256 x0 = _mm256_loadu_ps(c + j);
    __m256 x1 = _mm256_loadu_ps(c + j + 8);
    __m256 x2 = _mm256_loadu_ps(c + j + 16);
    __m256 x3 = _mm256_loadu_ps(c + j + 24);
    for (int k = 0; k < m; ++k) {
      const float* bk = b + static_cast<std::size_t>(k) * ldb + j;
      const __m256 av =
          _mm256_set1_ps(a[static_cast<std::size_t>(k) * a_step]);
      x0 = _mm256_add_ps(x0, _mm256_mul_ps(av, _mm256_loadu_ps(bk)));
      x1 = _mm256_add_ps(x1, _mm256_mul_ps(av, _mm256_loadu_ps(bk + 8)));
      x2 = _mm256_add_ps(x2, _mm256_mul_ps(av, _mm256_loadu_ps(bk + 16)));
      x3 = _mm256_add_ps(x3, _mm256_mul_ps(av, _mm256_loadu_ps(bk + 24)));
    }
    _mm256_storeu_ps(c + j, x0);
    _mm256_storeu_ps(c + j + 8, x1);
    _mm256_storeu_ps(c + j + 16, x2);
    _mm256_storeu_ps(c + j + 24, x3);
  }
  for (; j + 8 <= p; j += 8) {
    __m256 x0 = _mm256_loadu_ps(c + j);
    for (int k = 0; k < m; ++k) {
      const __m256 av =
          _mm256_set1_ps(a[static_cast<std::size_t>(k) * a_step]);
      x0 = _mm256_add_ps(
          x0, _mm256_mul_ps(
                  av, _mm256_loadu_ps(b + static_cast<std::size_t>(k) * ldb +
                                      j)));
    }
    _mm256_storeu_ps(c + j, x0);
  }
  for (; j < p; ++j) {
    float s = c[j];
    for (int k = 0; k < m; ++k) {
      s += a[static_cast<std::size_t>(k) * a_step] *
           b[static_cast<std::size_t>(k) * ldb + j];
    }
    c[j] = s;
  }
}

void Axpy(int n, float alpha, const float* x, float* y) {
  const __m256 av = _mm256_set1_ps(alpha);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 yv = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_add_ps(yv, _mm256_mul_ps(av, xv)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

// ---------------------------------------------------------------------------
// Interleaved dots: lanes are eight distinct B rows. An 8x8 in-register
// transpose turns eight contiguous row segments into eight k-vectors, so
// each lane's accumulator advances in ascending k — never a horizontal
// reduction.

void Dot8(int m, const float* a, const float* b, std::size_t stride,
          float* io) {
  __m256 acc = _mm256_loadu_ps(io);
  int k = 0;
  for (; k + 8 <= m; k += 8) {
    __m256 r0 = _mm256_loadu_ps(b + 0 * stride + k);
    __m256 r1 = _mm256_loadu_ps(b + 1 * stride + k);
    __m256 r2 = _mm256_loadu_ps(b + 2 * stride + k);
    __m256 r3 = _mm256_loadu_ps(b + 3 * stride + k);
    __m256 r4 = _mm256_loadu_ps(b + 4 * stride + k);
    __m256 r5 = _mm256_loadu_ps(b + 5 * stride + k);
    __m256 r6 = _mm256_loadu_ps(b + 6 * stride + k);
    __m256 r7 = _mm256_loadu_ps(b + 7 * stride + k);
    // 8x8 transpose: out_kk lane l = r_l[kk].
    const __m256 u0 = _mm256_unpacklo_ps(r0, r1);
    const __m256 u1 = _mm256_unpackhi_ps(r0, r1);
    const __m256 u2 = _mm256_unpacklo_ps(r2, r3);
    const __m256 u3 = _mm256_unpackhi_ps(r2, r3);
    const __m256 u4 = _mm256_unpacklo_ps(r4, r5);
    const __m256 u5 = _mm256_unpackhi_ps(r4, r5);
    const __m256 u6 = _mm256_unpacklo_ps(r6, r7);
    const __m256 u7 = _mm256_unpackhi_ps(r6, r7);
    const __m256 s0 = _mm256_shuffle_ps(u0, u2, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s1 = _mm256_shuffle_ps(u0, u2, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s2 = _mm256_shuffle_ps(u1, u3, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s3 = _mm256_shuffle_ps(u1, u3, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s4 = _mm256_shuffle_ps(u4, u6, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s5 = _mm256_shuffle_ps(u4, u6, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s6 = _mm256_shuffle_ps(u5, u7, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s7 = _mm256_shuffle_ps(u5, u7, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 t0 = _mm256_permute2f128_ps(s0, s4, 0x20);
    const __m256 t1 = _mm256_permute2f128_ps(s1, s5, 0x20);
    const __m256 t2 = _mm256_permute2f128_ps(s2, s6, 0x20);
    const __m256 t3 = _mm256_permute2f128_ps(s3, s7, 0x20);
    const __m256 t4 = _mm256_permute2f128_ps(s0, s4, 0x31);
    const __m256 t5 = _mm256_permute2f128_ps(s1, s5, 0x31);
    const __m256 t6 = _mm256_permute2f128_ps(s2, s6, 0x31);
    const __m256 t7 = _mm256_permute2f128_ps(s3, s7, 0x31);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[k + 0]), t0));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[k + 1]), t1));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[k + 2]), t2));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[k + 3]), t3));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[k + 4]), t4));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[k + 5]), t5));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[k + 6]), t6));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a[k + 7]), t7));
  }
  _mm256_storeu_ps(io, acc);
  // k tail: each lane's chain continues in ascending k, scalar now.
  for (; k < m; ++k) {
    for (int l = 0; l < 8; ++l) {
      io[l] += a[k] * b[static_cast<std::size_t>(l) * stride + k];
    }
  }
}

float Dot(int m, const float* a, const float* b) {
  // A single chain cannot vectorize under the contract; identical to the
  // scalar variant by design.
  float acc = 0.0f;
  for (int k = 0; k < m; ++k) acc += a[k] * b[k];
  return acc;
}

// ---------------------------------------------------------------------------

void AdamStep(std::size_t count, float lr, float beta1, float beta2,
              float one_minus_b1, float one_minus_b2, double bc1, double bc2,
              float eps, float* w, const float* g, float* m, float* v) {
  const __m256 b1v = _mm256_set1_ps(beta1);
  const __m256 b2v = _mm256_set1_ps(beta2);
  const __m256 omb1v = _mm256_set1_ps(one_minus_b1);
  const __m256 omb2v = _mm256_set1_ps(one_minus_b2);
  const __m256 lrv = _mm256_set1_ps(lr);
  const __m256 epsv = _mm256_set1_ps(eps);
  const __m256d bc1v = _mm256_set1_pd(bc1);
  const __m256d bc2v = _mm256_set1_pd(bc2);
  // Divides a float vector by a double scalar with the scalar reference's
  // rounding: widen exactly, divide once in double, narrow once.
  const auto div_by_double = [](__m256 x, __m256d d) -> __m256 {
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(x));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(x, 1));
    const __m128 rlo = _mm256_cvtpd_ps(_mm256_div_pd(lo, d));
    const __m128 rhi = _mm256_cvtpd_ps(_mm256_div_pd(hi, d));
    return _mm256_insertf128_ps(_mm256_castps128_ps256(rlo), rhi, 1);
  };
  std::size_t j = 0;
  for (; j + 8 <= count; j += 8) {
    const __m256 gj = _mm256_loadu_ps(g + j);
    const __m256 mj = _mm256_add_ps(_mm256_mul_ps(b1v, _mm256_loadu_ps(m + j)),
                                    _mm256_mul_ps(omb1v, gj));
    const __m256 vj = _mm256_add_ps(
        _mm256_mul_ps(b2v, _mm256_loadu_ps(v + j)),
        _mm256_mul_ps(_mm256_mul_ps(omb2v, gj), gj));
    _mm256_storeu_ps(m + j, mj);
    _mm256_storeu_ps(v + j, vj);
    const __m256 mhat = div_by_double(mj, bc1v);
    const __m256 vhat = div_by_double(vj, bc2v);
    const __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(vhat), epsv);
    const __m256 upd = _mm256_div_ps(_mm256_mul_ps(lrv, mhat), denom);
    _mm256_storeu_ps(w + j, _mm256_sub_ps(_mm256_loadu_ps(w + j), upd));
  }
  for (; j < count; ++j) {
    const float gj = g[j];
    const float mj = beta1 * m[j] + one_minus_b1 * gj;
    const float vj = beta2 * v[j] + one_minus_b2 * gj * gj;
    m[j] = mj;
    v[j] = vj;
    const float mhat = static_cast<float>(mj / bc1);
    const float vhat = static_cast<float>(vj / bc2);
    w[j] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

float ReduceMax(std::size_t n, const float* x) {
  if (n < 8) {
    float mx = x[0];
    for (std::size_t i = 1; i < n; ++i) mx = mx < x[i] ? x[i] : mx;
    return mx;
  }
  __m256 mv = _mm256_loadu_ps(x);
  std::size_t i = 8;
  for (; i + 8 <= n; i += 8) mv = _mm256_max_ps(mv, _mm256_loadu_ps(x + i));
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, mv);
  float mx = lanes[0];
  for (int l = 1; l < 8; ++l) mx = mx < lanes[l] ? lanes[l] : mx;
  for (; i < n; ++i) mx = mx < x[i] ? x[i] : mx;
  return mx;
}

void Clamp(std::size_t n, float lo, float hi, float* x) {
  const __m256 lov = _mm256_set1_ps(lo);
  const __m256 hiv = _mm256_set1_ps(hi);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    _mm256_storeu_ps(x + i,
                     _mm256_min_ps(hiv, _mm256_max_ps(lov, xv)));
  }
  for (; i < n; ++i) {
    const float t = lo > x[i] ? lo : x[i];
    x[i] = hi < t ? hi : t;
  }
}

void ExpApply(std::size_t n, float* x) {
  // Scalar libm by contract — see primitives.h.
  for (std::size_t i = 0; i < n; ++i) x[i] = std::exp(x[i]);
}

// ---------------------------------------------------------------------------
// Int8 primitives. int32 accumulation is exact and associative, so unlike
// the fp32 kernels above these may reassociate and horizontally reduce
// freely — every tier returns the same integers by arithmetic
// (primitives.h). Widening is vpmovsxbw + vpmaddwd: sign-extend both
// operands to int16, multiply into pairwise-summed int32 lanes. With
// codes clamped to [-127, 127] a pair sum is at most 2*127*127, so
// vpmaddwd never saturates on this input (vpmaddubsw would — its int16
// pair sums of u8*s8 products can exceed 32767, which is why the u8
// flavor is not used here).

inline std::int32_t HsumEpi32(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

/// Row sums of four 8-lane int32 accumulators in one vector: a hadd tree
/// beats four independent horizontal reductions (integer addition is
/// associative, so any reduction order yields the same bits).
inline __m128i Hsum4Epi32(__m256i a, __m256i b, __m256i c, __m256i d) {
  const __m256i h = _mm256_hadd_epi32(_mm256_hadd_epi32(a, b),
                                      _mm256_hadd_epi32(c, d));
  return _mm_add_epi32(_mm256_castsi256_si128(h),
                       _mm256_extracti128_si256(h, 1));
}

void Dot8S8(int m, const std::int8_t* a, const std::int8_t* b,
            std::size_t stride, std::int32_t* io) {
  // abs/sign + maddubs trick: a[i]*b[i] == |a[i]| * (b[i] sign-adjusted by
  // a[i]), with |a| as the unsigned maddubs operand. Codes are clamped to
  // [-127, 127], so each int16 pair sum is at most 2 * 127^2 = 32258 —
  // maddubs cannot saturate, and the int32 result is exact. Eight row
  // accumulators share each |a| chunk, so the per-row cost is one load,
  // one sign, one maddubs, one widen-add.
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc[8];
  for (int l = 0; l < 8; ++l) acc[l] = _mm256_setzero_si256();
  int k = 0;
  for (; k + 32 <= m; k += 32) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k));
    const __m256i aabs = _mm256_abs_epi8(av);
    for (int l = 0; l < 8; ++l) {
      const __m256i bv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          b + static_cast<std::size_t>(l) * stride + k));
      // sign(b, a) also zeroes lanes where a == 0, matching a*b == 0.
      const __m256i prod16 =
          _mm256_maddubs_epi16(aabs, _mm256_sign_epi8(bv, av));
      acc[l] = _mm256_add_epi32(acc[l], _mm256_madd_epi16(prod16, ones));
    }
  }
  std::int32_t sums[8];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(sums),
                   Hsum4Epi32(acc[0], acc[1], acc[2], acc[3]));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(sums + 4),
                   Hsum4Epi32(acc[4], acc[5], acc[6], acc[7]));
  std::int32_t tail[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (; k < m; ++k) {
    const std::int32_t ak = a[k];
    for (int l = 0; l < 8; ++l) {
      tail[l] += ak * b[static_cast<std::size_t>(l) * stride + k];
    }
  }
  for (int l = 0; l < 8; ++l) io[l] += sums[l] + tail[l];
}

std::int32_t DotS8(int m, const std::int8_t* a, const std::int8_t* b) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc = _mm256_setzero_si256();
  int k = 0;
  for (; k + 32 <= m; k += 32) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k));
    const __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + k));
    const __m256i prod16 =
        _mm256_maddubs_epi16(_mm256_abs_epi8(av), _mm256_sign_epi8(bv, av));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(prod16, ones));
  }
  std::int32_t sum = HsumEpi32(acc);
  for (; k < m; ++k) {
    sum += static_cast<std::int32_t>(a[k]) * static_cast<std::int32_t>(b[k]);
  }
  return sum;
}

void GemmPanelS8(int m, int p, const std::int8_t* a, const std::int8_t* b,
                 std::size_t stride, std::int32_t* out) {
  int j = 0;
  for (; j + 8 <= p; j += 8) {
    std::int32_t acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    Dot8S8(m, a, b + static_cast<std::size_t>(j) * stride, stride, acc);
    for (int l = 0; l < 8; ++l) out[j + l] = acc[l];
  }
  for (; j < p; ++j) {
    out[j] = DotS8(m, a, b + static_cast<std::size_t>(j) * stride);
  }
}

// Dequantize + threshold in one pass: eight scores per compare mask, and
// only passing lanes take the bit-scan path. The score expression keeps
// the scalar tier's two-rounding order (a_scale * b_scales first, then
// the product with the converted accumulator), so the mask and the
// emitted score bits are exact.
int DequantFilter(int n, const std::int32_t* acc, const float* b_scales,
                  float a_scale, float threshold, std::int32_t* out_idx,
                  float* out_scores) {
  const __m256 as = _mm256_set1_ps(a_scale);
  const __m256 thr = _mm256_set1_ps(threshold);
  alignas(32) float lane[8];
  int count = 0;
  int l = 0;
  for (; l + 8 <= n; l += 8) {
    const __m256 score = _mm256_mul_ps(
        _mm256_cvtepi32_ps(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + l))),
        _mm256_mul_ps(as, _mm256_loadu_ps(b_scales + l)));
    int mask = _mm256_movemask_ps(_mm256_cmp_ps(score, thr, _CMP_GE_OQ));
    if (mask) {
      _mm256_store_ps(lane, score);
      do {
        const int bit = __builtin_ctz(mask);
        out_idx[count] = l + bit;
        out_scores[count] = lane[bit];
        ++count;
        mask &= mask - 1;
      } while (mask);
    }
  }
  for (; l < n; ++l) {
    const float score = static_cast<float>(acc[l]) * (a_scale * b_scales[l]);
    if (score >= threshold) {
      out_idx[count] = l;
      out_scores[count] = score;
      ++count;
    }
  }
  return count;
}

}  // namespace

const Ops kAvx2Ops = {
    /*name=*/"avx2",
    /*isa=*/cpu::Isa::kAvx2,
    /*gemm_panel4=*/GemmPanel4,
    /*gemm_panel1=*/GemmPanel1,
    /*axpy=*/Axpy,
    /*dot8=*/Dot8,
    /*dot=*/Dot,
    /*adam_step=*/AdamStep,
    /*reduce_max=*/ReduceMax,
    /*clamp=*/Clamp,
    /*exp_apply=*/ExpApply,
    /*dot8_s8=*/Dot8S8,
    /*gemm_panel_s8=*/GemmPanelS8,
    /*dequant_filter=*/DequantFilter,
};

}  // namespace causer::tensor::primitives
