// Scalar reference variant of the compute-primitive layer. Portable C++
// compiled at the project baseline (SSE2 auto-vectorization on x86-64) —
// the rounding reference every explicit-SIMD variant must reproduce
// bit-for-bit (tests/primitives_test.cc). Always compiled, always the
// fallback tier.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "tensor/primitives/variants.h"

namespace causer::tensor::primitives {
namespace {

// The 4-row register-blocked panel, formerly kernels.cc's PanelKernel /
// TransAKernel body: the four row accumulations share each streamed b row
// and the contiguous j loop auto-vectorizes (lanes = distinct j). Per
// element the k-summation is ascending through the incoming c value with
// one rounding per multiply and per add.
void GemmPanel4(int m, int p, const float* a0, const float* a1,
                const float* a2, const float* a3, int a_step, const float* b,
                int ldb, float* c0, float* c1, float* c2, float* c3) {
  float* __restrict__ r0 = c0;
  float* __restrict__ r1 = c1;
  float* __restrict__ r2 = c2;
  float* __restrict__ r3 = c3;
  for (int k = 0; k < m; ++k) {
    const std::size_t ak = static_cast<std::size_t>(k) * a_step;
    const float av0 = a0[ak];
    const float av1 = a1[ak];
    const float av2 = a2[ak];
    const float av3 = a3[ak];
    const float* bk = b + static_cast<std::size_t>(k) * ldb;
    for (int j = 0; j < p; ++j) {
      r0[j] += av0 * bk[j];
      r1[j] += av1 * bk[j];
      r2[j] += av2 * bk[j];
      r3[j] += av3 * bk[j];
    }
  }
}

void GemmPanel1(int m, int p, const float* a, int a_step, const float* b,
                int ldb, float* c) {
  float* __restrict__ cc = c;
  for (int k = 0; k < m; ++k) {
    const float av = a[static_cast<std::size_t>(k) * a_step];
    const float* bk = b + static_cast<std::size_t>(k) * ldb;
    for (int j = 0; j < p; ++j) cc[j] += av * bk[j];
  }
}

void Axpy(int n, float alpha, const float* x, float* y) {
  float* __restrict__ yy = y;
  for (int i = 0; i < n; ++i) yy[i] += alpha * x[i];
}

void Dot8(int m, const float* a, const float* b, std::size_t stride,
          float* io) {
  // Eight independent ascending-k chains, each seeded from io[l] —
  // exactly what one SIMD register of lanes computes in the AVX tiers.
  for (int l = 0; l < 8; ++l) {
    const float* bl = b + static_cast<std::size_t>(l) * stride;
    float acc = io[l];
    for (int k = 0; k < m; ++k) acc += a[k] * bl[k];
    io[l] = acc;
  }
}

float Dot(int m, const float* a, const float* b) {
  float acc = 0.0f;
  for (int k = 0; k < m; ++k) acc += a[k] * b[k];
  return acc;
}

void AdamStep(std::size_t count, float lr, float beta1, float beta2,
              float one_minus_b1, float one_minus_b2, double bc1, double bc2,
              float eps, float* w, const float* g, float* m, float* v) {
  float* __restrict__ wr = w;
  const float* __restrict__ gr = g;
  float* __restrict__ mr = m;
  float* __restrict__ vr = v;
  for (std::size_t j = 0; j < count; ++j) {
    const float gj = gr[j];
    const float mj = beta1 * mr[j] + one_minus_b1 * gj;
    const float vj = beta2 * vr[j] + one_minus_b2 * gj * gj;
    mr[j] = mj;
    vr[j] = vj;
    const float mhat = static_cast<float>(mj / bc1);
    const float vhat = static_cast<float>(vj / bc2);
    wr[j] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

float ReduceMax(std::size_t n, const float* x) {
  float mx = x[0];
  for (std::size_t i = 1; i < n; ++i) mx = std::max(mx, x[i]);
  return mx;
}

void Clamp(std::size_t n, float lo, float hi, float* x) {
  // Explicit ternaries, constant on the left: the exact semantics of
  // maxps(lo, x) / minps(hi, ·) — a NaN x falls through both selects, so
  // every variant propagates it identically.
  for (std::size_t i = 0; i < n; ++i) {
    const float t = lo > x[i] ? lo : x[i];
    x[i] = hi < t ? hi : t;
  }
}

void ExpApply(std::size_t n, float* x) {
  for (std::size_t i = 0; i < n; ++i) x[i] = std::exp(x[i]);
}

// The int32 reference the vector s8 variants must match by arithmetic:
// plain ascending-k sums of widened int8 products (exact, so the order
// here is documentation, not a constraint on the other tiers).
void Dot8S8(int m, const std::int8_t* a, const std::int8_t* b,
            std::size_t stride, std::int32_t* io) {
  for (int l = 0; l < 8; ++l) {
    const std::int8_t* bl = b + static_cast<std::size_t>(l) * stride;
    std::int32_t acc = io[l];
    for (int k = 0; k < m; ++k) {
      acc += static_cast<std::int32_t>(a[k]) * static_cast<std::int32_t>(bl[k]);
    }
    io[l] = acc;
  }
}

void GemmPanelS8(int m, int p, const std::int8_t* a, const std::int8_t* b,
                 std::size_t stride, std::int32_t* out) {
  for (int j = 0; j < p; ++j) {
    const std::int8_t* bj = b + static_cast<std::size_t>(j) * stride;
    std::int32_t acc = 0;
    for (int k = 0; k < m; ++k) {
      acc += static_cast<std::int32_t>(a[k]) * static_cast<std::int32_t>(bj[k]);
    }
    out[j] = acc;
  }
}

// The fp32 score reference the vector filters must match bit-for-bit:
// one rounding for a_scale * b_scales[l], one for the product with the
// converted accumulator. Both roundings are round-to-nearest in every
// tier, so >= threshold selects the same set everywhere.
int DequantFilter(int n, const std::int32_t* acc, const float* b_scales,
                  float a_scale, float threshold, std::int32_t* out_idx,
                  float* out_scores) {
  int count = 0;
  for (int l = 0; l < n; ++l) {
    const float score = static_cast<float>(acc[l]) * (a_scale * b_scales[l]);
    if (score >= threshold) {
      out_idx[count] = l;
      out_scores[count] = score;
      ++count;
    }
  }
  return count;
}

}  // namespace

const Ops kScalarOps = {
    /*name=*/"scalar",
    /*isa=*/cpu::Isa::kScalar,
    /*gemm_panel4=*/GemmPanel4,
    /*gemm_panel1=*/GemmPanel1,
    /*axpy=*/Axpy,
    /*dot8=*/Dot8,
    /*dot=*/Dot,
    /*adam_step=*/AdamStep,
    /*reduce_max=*/ReduceMax,
    /*clamp=*/Clamp,
    /*exp_apply=*/ExpApply,
    /*dot8_s8=*/Dot8S8,
    /*gemm_panel_s8=*/GemmPanelS8,
    /*dequant_filter=*/DequantFilter,
};

}  // namespace causer::tensor::primitives
