#ifndef CAUSER_TENSOR_PRIMITIVES_VARIANTS_H_
#define CAUSER_TENSOR_PRIMITIVES_VARIANTS_H_

#include "tensor/primitives/primitives.h"

/// Internal registry of the per-ISA tables, one per primitives_<isa>.cc
/// translation unit (that filename <-> variant mapping is what
/// tools/check_docs.sh diffs against the docs/KERNELS.md ISA table). The
/// AVX tables exist only when CMake compiled their TU — the same build
/// check that defines CAUSER_ISA_*_COMPILED project-wide, so cpu.cc's
/// IsaCompiled() and this registry cannot disagree.
///
/// Each variant TU keeps every helper at internal linkage: the TUs are
/// compiled with different -m flags, and a shared inline helper emitted
/// weakly from more than one of them could be comdat-folded into the copy
/// holding AVX instructions — a SIGILL on older CPUs.
namespace causer::tensor::primitives {

extern const Ops kScalarOps;
#ifdef CAUSER_ISA_AVX2_COMPILED
extern const Ops kAvx2Ops;
#endif
#ifdef CAUSER_ISA_AVX512_COMPILED
extern const Ops kAvx512Ops;
#endif

}  // namespace causer::tensor::primitives

#endif  // CAUSER_TENSOR_PRIMITIVES_VARIANTS_H_
