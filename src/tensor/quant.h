#ifndef CAUSER_TENSOR_QUANT_H_
#define CAUSER_TENSOR_QUANT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace causer::tensor {

/// A row-major fp32 matrix quantized to symmetric per-row int8: value
/// `(r, c)` dequantizes as `data[r * cols + c] * scales[r]`. Codes stay in
/// `[-127, 127]` (never -128, so negation and widening products are always
/// representable) and a row's scale is its absmax / 127, so the row's
/// extreme value round-trips to ±absmax exactly. Built once per model by
/// `QuantizeRows`; see docs/KERNELS.md "Quantized primitives" for the
/// accuracy contract of the scoring path that consumes it.
struct QuantizedMatrix {
  int rows = 0;
  int cols = 0;
  std::vector<std::int8_t> data;  ///< row-major [rows, cols] codes
  std::vector<float> scales;      ///< per-row dequantization scales

  /// Resident bytes of the quantized form (codes + scales). Against the
  /// fp32 original's `rows * cols * 4` this is the ~4x table-memory
  /// reduction the serving path banks on: `4c / (c + 4)` for c columns.
  std::size_t MemoryBytes() const {
    return data.size() * sizeof(std::int8_t) + scales.size() * sizeof(float);
  }
};

/// Symmetric per-row absmax quantization of a row-major [rows, cols] fp32
/// matrix into caller-provided buffers (`data`: rows*cols codes, `scales`:
/// rows floats). One pass per row: scale = absmax / 127, code =
/// round-to-nearest-even of value / scale, clamped to [-127, 127]. An
/// all-zero row (or one whose absmax is too small for a finite reciprocal
/// scale) gets scale 0 and all-zero codes. Returns false without finishing
/// if any input is non-finite (±inf / NaN) — callers must treat that as
/// "keep using fp32", never as a partially quantized table.
bool QuantizeRows(const float* src, int rows, int cols, std::int8_t* data,
                  float* scales);

/// Convenience overload: sizes and fills `out`. On failure returns false
/// and leaves `out` empty.
bool QuantizeRows(const float* src, int rows, int cols, QuantizedMatrix* out);

}  // namespace causer::tensor

#endif  // CAUSER_TENSOR_QUANT_H_
