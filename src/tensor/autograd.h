#ifndef CAUSER_TENSOR_AUTOGRAD_H_
#define CAUSER_TENSOR_AUTOGRAD_H_

#include "tensor/tensor.h"

namespace causer::tensor {

/// Runs reverse-mode automatic differentiation from `loss`, which must be a
/// [1,1] scalar. Gradients are *accumulated* into every reachable node with
/// `requires_grad == true`; call ZeroGrad() on parameters (or use an
/// Optimizer, which does it for you) between steps.
void Backward(const Tensor& loss);

/// Numerical gradient of `f` with respect to entry (r, c) of `x`, via
/// central differences. Test utility for verifying the analytic gradients.
double NumericalGradient(const std::function<double()>& f, Tensor& x, int r,
                         int c, double eps = 1e-3);

}  // namespace causer::tensor

#endif  // CAUSER_TENSOR_AUTOGRAD_H_
