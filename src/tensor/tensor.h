#ifndef CAUSER_TENSOR_TENSOR_H_
#define CAUSER_TENSOR_TENSOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "tensor/arena.h"

namespace causer::tensor {

/// All tensors in this library are dense, row-major, 2-D float matrices.
/// Scalars are represented as [1,1] and row vectors as [1,n]. This keeps the
/// autograd engine small while covering everything the recommender models
/// need (per-step RNN math is [batch, dim] matmuls).
class Tensor;

namespace internal {

struct Node;

/// Resolves `node` through the thread's active ParamSubstitutionScope (if
/// any): returns the registered shadow node, or `node` itself. Ops resolve
/// every input through this, so a scope transparently redirects graph
/// construction onto private parameter copies.
std::shared_ptr<Node> Resolve(const std::shared_ptr<Node>& node);

/// Allocates a fresh Node. When the calling thread has an ArenaScope open,
/// the node (and, via FloatBuffer's captured allocator, its value/grad
/// buffers) is carved from the arena and reclaimed wholesale at scope exit;
/// otherwise it lives on the heap as before.
std::shared_ptr<Node> NewNode();

/// Graph node holding the value, the gradient accumulator, and the backward
/// closure that scatters this node's gradient into its parents.
///
/// value/grad use FloatBuffer, whose allocator captures the arena active
/// when the node was constructed: tape nodes built inside an ArenaScope
/// bump-allocate, while parameters (constructed outside any scope) keep
/// heap storage even when EnsureGrad() later runs inside a scope.
struct Node {
  int rows = 0;
  int cols = 0;
  FloatBuffer value;
  FloatBuffer grad;  // allocated lazily, same layout as value
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  // Propagates `grad` of this node into parents' grads. Null for leaves.
  std::function<void(Node&)> backward_fn;
  // Scratch marker used by the topological sort in Backward().
  int visit_mark = 0;

  int size() const { return rows * cols; }
  void EnsureGrad() {
    if (grad.empty()) grad.assign(value.size(), 0.0f);
  }
};

}  // namespace internal

/// Value-semantics handle to a shared autograd graph node.
///
/// Copying a Tensor aliases the same node (like a Python reference); use
/// Clone() for a deep copy of the value.
class Tensor {
 public:
  /// Empty (null) tensor; most operations on it are invalid.
  Tensor() = default;

  /// Wraps an existing node (library-internal).
  explicit Tensor(std::shared_ptr<internal::Node> node)
      : node_(std::move(node)) {}

  // -- Factory functions ----------------------------------------------------

  /// [rows, cols] tensor of zeros.
  static Tensor Zeros(int rows, int cols, bool requires_grad = false);

  /// [rows, cols] tensor filled with `value`.
  static Tensor Full(int rows, int cols, float value,
                     bool requires_grad = false);

  /// [1,1] scalar.
  static Tensor Scalar(float value, bool requires_grad = false);

  /// Tensor from explicit row-major data; `data.size()` must equal
  /// rows*cols.
  static Tensor FromData(int rows, int cols, std::vector<float> data,
                         bool requires_grad = false);

  /// Tensor with entries drawn i.i.d. uniform in [lo, hi).
  static Tensor RandomUniform(int rows, int cols, float lo, float hi, Rng& rng,
                              bool requires_grad = false);

  /// Tensor with entries drawn i.i.d. N(0, stddev^2).
  static Tensor RandomNormal(int rows, int cols, float stddev, Rng& rng,
                             bool requires_grad = false);

  // -- Introspection --------------------------------------------------------

  bool defined() const { return node_ != nullptr; }
  int rows() const { return node_->rows; }
  int cols() const { return node_->cols; }
  int size() const { return node_->size(); }
  bool requires_grad() const { return node_->requires_grad; }

  /// Mutable element access (modifying values of graph interior nodes after
  /// building a graph is undefined; intended for leaves and results).
  float& At(int r, int c) {
    CAUSER_CHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
    return node_->value[static_cast<size_t>(r) * cols() + c];
  }
  float At(int r, int c) const {
    CAUSER_CHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
    return node_->value[static_cast<size_t>(r) * cols() + c];
  }

  /// Scalar extraction; requires a [1,1] tensor.
  float Item() const {
    CAUSER_CHECK(size() == 1);
    return node_->value[0];
  }

  /// Raw row-major value buffer (arena-backed inside an ArenaScope).
  FloatBuffer& data() { return node_->value; }
  const FloatBuffer& data() const { return node_->value; }

  /// Gradient buffer (empty until Backward() touched this node).
  const FloatBuffer& grad() const { return node_->grad; }

  /// Gradient element access; zero if no gradient was accumulated.
  float GradAt(int r, int c) const {
    if (node_->grad.empty()) return 0.0f;
    return node_->grad[static_cast<size_t>(r) * cols() + c];
  }

  /// Clears accumulated gradients on this node.
  void ZeroGrad() {
    if (!node_->grad.empty())
      std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
  }

  /// Deep copy of the value as a fresh leaf (no graph history).
  Tensor Clone(bool requires_grad = false) const;

  /// Leaf view of the same value buffer contents (copies data, drops graph).
  Tensor Detach() const { return Clone(false); }

  /// Human-readable dump (small tensors only; for debugging and tests).
  std::string ToString() const;

  /// Internal node accessor for the ops/autograd implementation.
  const std::shared_ptr<internal::Node>& node() const { return node_; }

 private:
  std::shared_ptr<internal::Node> node_;
};

/// Thread-local substitution of parameter tensors for the duration of the
/// scope: while active, every op building a graph node on this thread
/// resolves inputs whose node appears in `from` to the corresponding node
/// in `to`. The batched trainer uses this to give each worker thread a
/// private copy of the parameters (same values, separate gradient buffers),
/// so concurrent Backward() calls never touch shared state. Scopes do not
/// nest; `from[i]` and `to[i]` must have identical shapes.
class ParamSubstitutionScope {
 public:
  ParamSubstitutionScope(const std::vector<Tensor>& from,
                         const std::vector<Tensor>& to);
  ~ParamSubstitutionScope();
  ParamSubstitutionScope(const ParamSubstitutionScope&) = delete;
  ParamSubstitutionScope& operator=(const ParamSubstitutionScope&) = delete;
};

/// RAII guard disabling graph construction (inference mode). While any guard
/// is alive, newly created op results do not record parents/backward
/// closures, which speeds up evaluation loops.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;
};

/// True when gradient recording is currently enabled.
bool GradEnabled();

}  // namespace causer::tensor

#endif  // CAUSER_TENSOR_TENSOR_H_
