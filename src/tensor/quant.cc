#include "tensor/quant.h"

#include <cmath>

namespace causer::tensor {

// Compiled at the project baseline (no ISA variants): quantization runs
// once per table / once per request batch, far off the per-score hot
// path, and keeping a single rounding implementation means the codes —
// and therefore every downstream int32 dot — are identical on every
// machine and thread count.
bool QuantizeRows(const float* src, int rows, int cols, std::int8_t* data,
                  float* scales) {
  for (int r = 0; r < rows; ++r) {
    const float* row = src + static_cast<std::size_t>(r) * cols;
    float absmax = 0.0f;
    for (int c = 0; c < cols; ++c) {
      if (!std::isfinite(row[c])) return false;
      const float a = std::fabs(row[c]);
      if (a > absmax) absmax = a;
    }
    std::int8_t* qrow = data + static_cast<std::size_t>(r) * cols;
    const float scale = absmax / 127.0f;
    const float inv = 1.0f / scale;
    // absmax == 0 gives scale 0; a subnormal absmax can give a scale whose
    // reciprocal overflows. Either way the row carries no usable signal at
    // int8 precision: store it as exact zeros.
    if (!(scale > 0.0f) || !std::isfinite(inv)) {
      scales[r] = 0.0f;
      for (int c = 0; c < cols; ++c) qrow[c] = 0;
      continue;
    }
    scales[r] = scale;
    for (int c = 0; c < cols; ++c) {
      long q = std::lrintf(row[c] * inv);
      if (q > 127) q = 127;
      if (q < -127) q = -127;
      qrow[c] = static_cast<std::int8_t>(q);
    }
  }
  return true;
}

bool QuantizeRows(const float* src, int rows, int cols, QuantizedMatrix* out) {
  out->rows = rows;
  out->cols = cols;
  out->data.assign(static_cast<std::size_t>(rows) * cols, 0);
  out->scales.assign(static_cast<std::size_t>(rows), 0.0f);
  if (!QuantizeRows(src, rows, cols, out->data.data(), out->scales.data())) {
    out->rows = 0;
    out->cols = 0;
    out->data.clear();
    out->scales.clear();
    return false;
  }
  return true;
}

}  // namespace causer::tensor
