#ifndef CAUSER_NN_OPTIMIZER_H_
#define CAUSER_NN_OPTIMIZER_H_

#include <string>
#include <vector>

#include "common/serial.h"
#include "tensor/tensor.h"

namespace causer::nn {

using tensor::Tensor;

/// Base optimizer over a fixed flat parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently stored on the params.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  /// Rescales all gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm (non-finite when any gradient is — the
  /// trainers use that as their per-step numeric-health signal).
  double ClipGradNorm(double max_norm);

  /// Appends the optimizer's mutable state — schedule position and moment
  /// buffers — to `out`, so a checkpoint can resume the exact update
  /// trajectory (parameters alone restart the moments from zero).
  virtual void SaveState(std::string* out) const = 0;

  /// Restores state written by SaveState for an optimizer over the same
  /// parameter list. All-or-nothing: returns false on a short or
  /// wrong-shape blob with the optimizer unchanged.
  virtual bool LoadState(serial::Reader& in) = 0;

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// Plain stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);

  void Step() override;
  void SaveState(std::string* out) const override;
  bool LoadState(serial::Reader& in) override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba, 2015) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

  void Step() override;
  void SaveState(std::string* out) const override;
  bool LoadState(serial::Reader& in) override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_, beta1_, beta2_, eps_;
  int step_count_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace causer::nn

#endif  // CAUSER_NN_OPTIMIZER_H_
