#ifndef CAUSER_NN_LINEAR_H_
#define CAUSER_NN_LINEAR_H_

#include <memory>
#include <vector>

#include "nn/module.h"

namespace causer::nn {

/// Affine map y = x W + b with W: [in, out], b: [1, out].
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, causer::Rng& rng,
         bool with_bias = true);

  /// x: [n, in] -> [n, out].
  Tensor Forward(const Tensor& x) const;

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }
  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  Tensor weight_;
  Tensor bias_;  // undefined when with_bias == false
};

/// Multi-layer perceptron with a fixed activation between layers
/// (sigmoid, matching the paper's encoder/decoder; ReLU optional).
class Mlp : public Module {
 public:
  enum class Activation { kSigmoid, kRelu, kTanh };

  /// dims = {in, hidden..., out}; activation applied between layers but not
  /// after the final one.
  Mlp(const std::vector<int>& dims, Activation activation, causer::Rng& rng);

  Tensor Forward(const Tensor& x) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation activation_;
};

}  // namespace causer::nn

#endif  // CAUSER_NN_LINEAR_H_
