#ifndef CAUSER_NN_SERIALIZATION_H_
#define CAUSER_NN_SERIALIZATION_H_

#include <string>

#include "nn/module.h"

namespace causer::nn {

/// Writes all parameters of `module` to `path` in a simple binary format
/// (magic, parameter count, then per parameter: rows, cols, row-major
/// float data). Returns false on I/O failure, including errors surfaced
/// only at fflush/fclose time (e.g. a full disk).
bool SaveParameters(const Module& module, const std::string& path);

/// Loads parameters saved by SaveParameters into `module`. The module must
/// have the same architecture: parameter count and every shape must match,
/// and every payload value must be finite (a garbled-but-well-framed file
/// is rejected with a log line naming the offending parameter); otherwise
/// loading fails and the module is left unchanged. Returns true on
/// success.
bool LoadParameters(Module& module, const std::string& path);

}  // namespace causer::nn

#endif  // CAUSER_NN_SERIALIZATION_H_
