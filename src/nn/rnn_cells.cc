#include "nn/rnn_cells.h"

#include "nn/init.h"
#include "tensor/ops.h"

namespace causer::nn {

using tensor::Add;
using tensor::MatMul;
using tensor::Mul;
using tensor::Sigmoid;
using tensor::Sub;
using tensor::Tanh;
using tensor::Tensor;

namespace {

Tensor Gate(const Tensor& x, const Tensor& w, const Tensor& h, const Tensor& u,
            const Tensor& b) {
  return Add(Add(MatMul(x, w), MatMul(h, u)), b);
}

}  // namespace

GruCell::GruCell(int input_dim, int hidden_dim, causer::Rng& rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  auto weight = [&](int in, int out) {
    return RegisterParameter(XavierUniform(in, out, rng));
  };
  auto bias = [&](int out) { return RegisterParameter(ZeroParam(1, out)); };
  wz_ = weight(input_dim, hidden_dim);
  uz_ = weight(hidden_dim, hidden_dim);
  bz_ = bias(hidden_dim);
  wr_ = weight(input_dim, hidden_dim);
  ur_ = weight(hidden_dim, hidden_dim);
  br_ = bias(hidden_dim);
  wc_ = weight(input_dim, hidden_dim);
  uc_ = weight(hidden_dim, hidden_dim);
  bc_ = bias(hidden_dim);
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) const {
  CAUSER_CHECK(x.cols() == input_dim_ && h.cols() == hidden_dim_);
  Tensor z = Sigmoid(Gate(x, wz_, h, uz_, bz_));
  Tensor r = Sigmoid(Gate(x, wr_, h, ur_, br_));
  Tensor c = Tanh(Add(Add(MatMul(x, wc_), MatMul(Mul(r, h), uc_)), bc_));
  // (1-z)*h + z*c
  Tensor one_minus_z = Sub(Tensor::Full(z.rows(), z.cols(), 1.0f), z);
  return Add(Mul(one_minus_z, h), Mul(z, c));
}

Tensor GruCell::InitialState(int n) const {
  return Tensor::Zeros(n, hidden_dim_);
}

LstmCell::LstmCell(int input_dim, int hidden_dim, causer::Rng& rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  auto weight = [&](int in, int out) {
    return RegisterParameter(XavierUniform(in, out, rng));
  };
  auto bias = [&](int out) { return RegisterParameter(ZeroParam(1, out)); };
  wi_ = weight(input_dim, hidden_dim);
  ui_ = weight(hidden_dim, hidden_dim);
  bi_ = bias(hidden_dim);
  wf_ = weight(input_dim, hidden_dim);
  uf_ = weight(hidden_dim, hidden_dim);
  bf_ = bias(hidden_dim);
  wo_ = weight(input_dim, hidden_dim);
  uo_ = weight(hidden_dim, hidden_dim);
  bo_ = bias(hidden_dim);
  wg_ = weight(input_dim, hidden_dim);
  ug_ = weight(hidden_dim, hidden_dim);
  bg_ = bias(hidden_dim);
}

LstmState LstmCell::Forward(const Tensor& x, const LstmState& state) const {
  CAUSER_CHECK(x.cols() == input_dim_ && state.h.cols() == hidden_dim_);
  Tensor i = Sigmoid(Gate(x, wi_, state.h, ui_, bi_));
  Tensor f = Sigmoid(Gate(x, wf_, state.h, uf_, bf_));
  Tensor o = Sigmoid(Gate(x, wo_, state.h, uo_, bo_));
  Tensor g = Tanh(Gate(x, wg_, state.h, ug_, bg_));
  Tensor c_next = Add(Mul(f, state.c), Mul(i, g));
  Tensor h_next = Mul(o, Tanh(c_next));
  return {h_next, c_next};
}

LstmState LstmCell::InitialState(int n) const {
  return {Tensor::Zeros(n, hidden_dim_), Tensor::Zeros(n, hidden_dim_)};
}

}  // namespace causer::nn
