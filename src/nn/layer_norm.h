#ifndef CAUSER_NN_LAYER_NORM_H_
#define CAUSER_NN_LAYER_NORM_H_

#include "nn/module.h"

namespace causer::nn {

/// Layer normalization (Ba et al., 2016): per-row standardization followed
/// by a learned affine map,
///   y = (x - mean) / sqrt(var + eps) * gamma + beta.
/// Used by the SASRec baseline's transformer block.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int dim, float eps = 1e-5f);

  /// x: [n, dim] -> [n, dim], each row normalized independently.
  Tensor Forward(const Tensor& x) const;

  const Tensor& gamma() const { return gamma_; }
  const Tensor& beta() const { return beta_; }

 private:
  int dim_;
  float eps_;
  Tensor gamma_;  // [1, dim]
  Tensor beta_;   // [1, dim]
};

}  // namespace causer::nn

#endif  // CAUSER_NN_LAYER_NORM_H_
