#include "nn/init.h"

#include <cmath>

namespace causer::nn {

tensor::Tensor XavierUniform(int rows, int cols, causer::Rng& rng) {
  float a = std::sqrt(6.0f / static_cast<float>(rows + cols));
  return tensor::Tensor::RandomUniform(rows, cols, -a, a, rng,
                                       /*requires_grad=*/true);
}

tensor::Tensor UniformParam(int rows, int cols, float scale, causer::Rng& rng) {
  return tensor::Tensor::RandomUniform(rows, cols, -scale, scale, rng,
                                       /*requires_grad=*/true);
}

tensor::Tensor ZeroParam(int rows, int cols) {
  return tensor::Tensor::Zeros(rows, cols, /*requires_grad=*/true);
}

}  // namespace causer::nn
