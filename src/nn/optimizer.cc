#include "nn/optimizer.h"

#include <cmath>
#include <limits>

#include "common/fault.h"
#include "tensor/primitives/primitives.h"

namespace causer::nn {

Optimizer::Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {
  for (const auto& p : params_) CAUSER_CHECK(p.defined() && p.requires_grad());
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

double Optimizer::ClipGradNorm(double max_norm) {
  // Injection point `optimizer.nan_grad`: poisons one gradient value the
  // way a numerically exploded backward pass would, so the trainer's
  // sentinel + checkpoint-rollback path is testable end to end.
  if (fault::ShouldFail("optimizer.nan_grad")) {
    for (auto& p : params_) {
      auto& node = *p.node();
      if (!node.grad.empty()) {
        node.grad[0] = std::numeric_limits<float>::quiet_NaN();
        break;
      }
    }
  }
  double total = 0.0;
  for (const auto& p : params_) {
    for (float g : p.grad()) total += static_cast<double>(g) * g;
  }
  double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    float scale = static_cast<float>(max_norm / norm);
    for (auto& p : params_) {
      auto& node = *p.node();
      for (auto& g : node.grad) g *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.resize(params_.size());
    for (size_t i = 0; i < params_.size(); ++i)
      velocity_[i].assign(params_[i].size(), 0.0f);
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& node = *params_[i].node();
    if (node.grad.empty()) continue;
    if (momentum_ > 0.0f) {
      for (size_t j = 0; j < node.value.size(); ++j) {
        velocity_[i][j] = momentum_ * velocity_[i][j] + node.grad[j];
        node.value[j] -= lr_ * velocity_[i][j];
      }
    } else {
      for (size_t j = 0; j < node.value.size(); ++j)
        node.value[j] -= lr_ * node.grad[j];
    }
  }
}

void Sgd::SaveState(std::string* out) const {
  serial::AppendF32(out, lr_);
  serial::AppendF32(out, momentum_);
  serial::AppendU64(out, velocity_.size());
  for (const auto& v : velocity_) serial::AppendFloats(out, v);
}

bool Sgd::LoadState(serial::Reader& in) {
  float lr = 0.0f, momentum = 0.0f;
  uint64_t count = 0;
  in.ReadF32(&lr);
  in.ReadF32(&momentum);
  in.ReadU64(&count);
  if (!in.ok() || count != velocity_.size()) return false;
  std::vector<std::vector<float>> staged(velocity_.size());
  for (size_t i = 0; i < staged.size(); ++i) {
    if (!in.ReadFloats(&staged[i]) ||
        staged[i].size() != velocity_[i].size()) {
      return false;
    }
  }
  lr_ = lr;
  momentum_ = momentum;
  velocity_ = std::move(staged);
  return true;
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].size(), 0.0f);
    v_[i].assign(params_[i].size(), 0.0f);
  }
}

void Adam::Step() {
  ++step_count_;
  // Bias corrections in double: float pow both loses the low bits of
  // beta^t at moderate t and truncates step_count_ itself once it exceeds
  // 2^24, which can snap the corrections to exactly 0/1 too early.
  const double bc1 =
      1.0 - std::pow(static_cast<double>(beta1_),
                     static_cast<double>(step_count_));
  const double bc2 =
      1.0 - std::pow(static_cast<double>(beta2_),
                     static_cast<double>(step_count_));
  // Fused single pass per parameter through the active ISA's adam_step
  // primitive (tensor/primitives/): moment updates and the write-back in
  // one sweep, with the (1-beta) factors precomputed. The primitive is
  // term-for-term the classic three-statement update (same operand order
  // and rounding in every variant), so trajectories are bit-identical —
  // enforced by nn_test's AdamFusedStepMatchesReferenceTrajectory and by
  // primitives_test across ISAs.
  const float one_minus_b1 = 1.0f - beta1_;
  const float one_minus_b2 = 1.0f - beta2_;
  const auto& ops = tensor::primitives::Active();
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& node = *params_[i].node();
    if (node.grad.empty()) continue;
    ops.adam_step(node.value.size(), lr_, beta1_, beta2_, one_minus_b1,
                  one_minus_b2, bc1, bc2, eps_, node.value.data(),
                  node.grad.data(), m_[i].data(), v_[i].data());
  }
}

void Adam::SaveState(std::string* out) const {
  serial::AppendF32(out, lr_);
  serial::AppendF32(out, beta1_);
  serial::AppendF32(out, beta2_);
  serial::AppendF32(out, eps_);
  serial::AppendI32(out, step_count_);
  serial::AppendU64(out, m_.size());
  for (size_t i = 0; i < m_.size(); ++i) {
    serial::AppendFloats(out, m_[i]);
    serial::AppendFloats(out, v_[i]);
  }
}

bool Adam::LoadState(serial::Reader& in) {
  float lr = 0.0f, beta1 = 0.0f, beta2 = 0.0f, eps = 0.0f;
  int32_t step_count = 0;
  uint64_t count = 0;
  in.ReadF32(&lr);
  in.ReadF32(&beta1);
  in.ReadF32(&beta2);
  in.ReadF32(&eps);
  in.ReadI32(&step_count);
  in.ReadU64(&count);
  if (!in.ok() || count != m_.size() || step_count < 0) return false;
  std::vector<std::vector<float>> m(m_.size()), v(v_.size());
  for (size_t i = 0; i < m_.size(); ++i) {
    if (!in.ReadFloats(&m[i]) || m[i].size() != m_[i].size() ||
        !in.ReadFloats(&v[i]) || v[i].size() != v_[i].size()) {
      return false;
    }
  }
  lr_ = lr;
  beta1_ = beta1;
  beta2_ = beta2;
  eps_ = eps;
  step_count_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
  return true;
}

}  // namespace causer::nn
