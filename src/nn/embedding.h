#ifndef CAUSER_NN_EMBEDDING_H_
#define CAUSER_NN_EMBEDDING_H_

#include "nn/module.h"

namespace causer::nn {

/// Lookup table [num_embeddings, dim]; rows are gathered differentiably.
class Embedding : public Module {
 public:
  Embedding(int num_embeddings, int dim, causer::Rng& rng, float scale = 0.1f);

  /// Gathers rows: -> [indices.size(), dim].
  Tensor Forward(const std::vector<int>& indices) const;

  /// Single-row convenience: -> [1, dim].
  Tensor Row(int index) const;

  /// Full table, e.g. for scoring all items at once: [num, dim].
  const Tensor& weight() const { return weight_; }

  int num_embeddings() const { return weight_.rows(); }
  int dim() const { return weight_.cols(); }

 private:
  Tensor weight_;
};

}  // namespace causer::nn

#endif  // CAUSER_NN_EMBEDDING_H_
