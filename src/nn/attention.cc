#include "nn/attention.h"

#include <cmath>

#include "nn/init.h"
#include "tensor/ops.h"

namespace causer::nn {

using tensor::Add;
using tensor::MatMul;
using tensor::ScalarMul;
using tensor::SoftmaxRows;
using tensor::Tensor;
using tensor::Transpose;

BilinearAttention::BilinearAttention(int dim, causer::Rng& rng) {
  a_ = RegisterParameter(XavierUniform(dim, dim, rng));
}

Tensor BilinearAttention::Scores(const Tensor& history,
                                 const Tensor& query) const {
  CAUSER_CHECK(history.cols() == a_.rows() && query.cols() == a_.cols());
  // [T, dim] x [dim, dim] x [dim, 1] -> [T, 1]
  return MatMul(MatMul(history, a_), Transpose(query));
}

Tensor BilinearAttention::Weights(const Tensor& history,
                                  const Tensor& query) const {
  Tensor scores = Scores(history, query);       // [T, 1]
  Tensor row = Transpose(scores);               // [1, T]
  return Transpose(SoftmaxRows(row));           // softmax over T -> [T, 1]
}

Tensor BilinearAttention::Pool(const Tensor& history,
                               const Tensor& query) const {
  Tensor w = Weights(history, query);           // [T, 1]
  return MatMul(Transpose(w), history);         // [1, dim]
}

CausalSelfAttention::CausalSelfAttention(int dim, causer::Rng& rng)
    : dim_(dim) {
  wq_ = std::make_unique<Linear>(dim, dim, rng, /*with_bias=*/false);
  wk_ = std::make_unique<Linear>(dim, dim, rng, /*with_bias=*/false);
  wv_ = std::make_unique<Linear>(dim, dim, rng, /*with_bias=*/false);
  RegisterModule(wq_.get());
  RegisterModule(wk_.get());
  RegisterModule(wv_.get());
}

Tensor CausalSelfAttention::Forward(const Tensor& x) const {
  CAUSER_CHECK(x.cols() == dim_);
  const int t = x.rows();
  Tensor q = wq_->Forward(x);
  Tensor k = wk_->Forward(x);
  Tensor v = wv_->Forward(x);
  Tensor scores =
      ScalarMul(MatMul(q, Transpose(k)), 1.0f / std::sqrt(static_cast<float>(dim_)));
  // Causal mask: position i may not attend to j > i.
  Tensor mask = Tensor::Zeros(t, t);
  for (int i = 0; i < t; ++i)
    for (int j = i + 1; j < t; ++j) mask.At(i, j) = -1e9f;
  scores = Add(scores, mask);
  Tensor weights = SoftmaxRows(scores);
  return MatMul(weights, v);
}

}  // namespace causer::nn
