#ifndef CAUSER_NN_ATTENTION_H_
#define CAUSER_NN_ATTENTION_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace causer::nn {

/// Bilinear attention sim(h_t, q) = h_t^T A q (the paper's Eq. 10 alpha).
/// Produces softmax-normalized weights over the rows of H.
class BilinearAttention : public Module {
 public:
  BilinearAttention(int dim, causer::Rng& rng);

  /// H: [T, dim] history states, q: [1, dim] query -> weights [T, 1].
  Tensor Weights(const Tensor& history, const Tensor& query) const;

  /// Weighted sum of history rows: weights^T H -> [1, dim].
  Tensor Pool(const Tensor& history, const Tensor& query) const;

  /// Raw (pre-softmax) scores, for inspection: [T, 1].
  Tensor Scores(const Tensor& history, const Tensor& query) const;

 private:
  Tensor a_;  // [dim, dim]
};

/// Single-head scaled dot-product self-attention with causal masking, the
/// building block of the SASRec baseline.
class CausalSelfAttention : public Module {
 public:
  CausalSelfAttention(int dim, causer::Rng& rng);

  /// X: [T, dim] -> [T, dim]; position t attends to positions <= t.
  Tensor Forward(const Tensor& x) const;

 private:
  std::unique_ptr<Linear> wq_;
  std::unique_ptr<Linear> wk_;
  std::unique_ptr<Linear> wv_;
  int dim_;
};

}  // namespace causer::nn

#endif  // CAUSER_NN_ATTENTION_H_
