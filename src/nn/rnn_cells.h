#ifndef CAUSER_NN_RNN_CELLS_H_
#define CAUSER_NN_RNN_CELLS_H_

#include "nn/module.h"

namespace causer::nn {

/// Gated recurrent unit cell (Cho et al., 2014):
///   z = sig(x Wz + h Uz + bz)
///   r = sig(x Wr + h Ur + br)
///   c = tanh(x Wc + (r*h) Uc + bc)
///   h' = (1-z)*h + z*c
class GruCell : public Module {
 public:
  GruCell(int input_dim, int hidden_dim, causer::Rng& rng);

  /// x: [n, input_dim], h: [n, hidden_dim] -> [n, hidden_dim].
  Tensor Forward(const Tensor& x, const Tensor& h) const;

  /// Zero initial hidden state for a batch of n sequences.
  Tensor InitialState(int n = 1) const;

  int hidden_dim() const { return hidden_dim_; }
  int input_dim() const { return input_dim_; }

 private:
  int input_dim_;
  int hidden_dim_;
  Tensor wz_, uz_, bz_;
  Tensor wr_, ur_, br_;
  Tensor wc_, uc_, bc_;
};

/// LSTM cell state: hidden h and cell memory c, both [n, hidden_dim].
struct LstmState {
  Tensor h;
  Tensor c;
};

/// Long short-term memory cell (Hochreiter & Schmidhuber, 1997):
///   i = sig(x Wi + h Ui + bi)
///   f = sig(x Wf + h Uf + bf)
///   o = sig(x Wo + h Uo + bo)
///   g = tanh(x Wg + h Ug + bg)
///   c' = f*c + i*g ;  h' = o*tanh(c')
class LstmCell : public Module {
 public:
  LstmCell(int input_dim, int hidden_dim, causer::Rng& rng);

  /// Advances one step.
  LstmState Forward(const Tensor& x, const LstmState& state) const;

  /// Zero initial state for a batch of n sequences.
  LstmState InitialState(int n = 1) const;

  int hidden_dim() const { return hidden_dim_; }
  int input_dim() const { return input_dim_; }

 private:
  int input_dim_;
  int hidden_dim_;
  Tensor wi_, ui_, bi_;
  Tensor wf_, uf_, bf_;
  Tensor wo_, uo_, bo_;
  Tensor wg_, ug_, bg_;
};

}  // namespace causer::nn

#endif  // CAUSER_NN_RNN_CELLS_H_
