#include "nn/linear.h"

#include "nn/init.h"
#include "tensor/ops.h"

namespace causer::nn {

Linear::Linear(int in_features, int out_features, causer::Rng& rng,
               bool with_bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter(XavierUniform(in_features, out_features, rng));
  if (with_bias) bias_ = RegisterParameter(ZeroParam(1, out_features));
}

Tensor Linear::Forward(const Tensor& x) const {
  Tensor y = tensor::MatMul(x, weight_);
  if (bias_.defined()) y = tensor::Add(y, bias_);
  return y;
}

Mlp::Mlp(const std::vector<int>& dims, Activation activation, causer::Rng& rng)
    : activation_(activation) {
  CAUSER_CHECK(dims.size() >= 2);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterModule(layers_.back().get());
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) {
      switch (activation_) {
        case Activation::kSigmoid:
          h = tensor::Sigmoid(h);
          break;
        case Activation::kRelu:
          h = tensor::Relu(h);
          break;
        case Activation::kTanh:
          h = tensor::Tanh(h);
          break;
      }
    }
  }
  return h;
}

}  // namespace causer::nn
