#include "nn/layer_norm.h"

#include "tensor/ops.h"

namespace causer::nn {

using tensor::Tensor;

LayerNorm::LayerNorm(int dim, float eps) : dim_(dim), eps_(eps) {
  gamma_ = RegisterParameter(Tensor::Full(1, dim, 1.0f, /*requires_grad=*/true));
  beta_ = RegisterParameter(Tensor::Zeros(1, dim, /*requires_grad=*/true));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  CAUSER_CHECK(x.cols() == dim_);
  const float inv_d = 1.0f / static_cast<float>(dim_);
  Tensor mean = tensor::ScalarMul(tensor::SumRows(x), inv_d);     // [n, 1]
  Tensor centered = tensor::Sub(x, mean);                          // broadcast
  Tensor var = tensor::ScalarMul(
      tensor::SumRows(tensor::Mul(centered, centered)), inv_d);    // [n, 1]
  Tensor inv_std = tensor::Div(Tensor::Full(var.rows(), 1, 1.0f),
                               tensor::Sqrt(tensor::AddScalar(var, eps_)));
  Tensor normalized = tensor::Mul(centered, inv_std);              // broadcast
  return tensor::Add(tensor::Mul(normalized, gamma_), beta_);
}

}  // namespace causer::nn
