#ifndef CAUSER_NN_MODULE_H_
#define CAUSER_NN_MODULE_H_

#include <vector>

#include "tensor/tensor.h"

namespace causer::nn {

using tensor::Tensor;

/// Base class for anything that owns trainable parameters.
///
/// Child modules register themselves with RegisterModule so that
/// `Parameters()` flattens the whole tree; optimizers operate on that flat
/// list. Modules are neither copyable nor movable (parameter identity
/// matters to optimizers).
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its registered children.
  std::vector<Tensor> Parameters() const;

  /// Zeroes every parameter gradient in the tree.
  void ZeroGrad();

  /// Total number of scalar parameters in the tree.
  int NumParameters() const;

 protected:
  /// Registers a direct parameter tensor (must have requires_grad == true).
  Tensor RegisterParameter(Tensor t);

  /// Registers a child module; the child must outlive this module.
  void RegisterModule(Module* child);

 private:
  std::vector<Tensor> params_;
  std::vector<Module*> children_;
};

}  // namespace causer::nn

#endif  // CAUSER_NN_MODULE_H_
