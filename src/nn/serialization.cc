#include "nn/serialization.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/fault.h"
#include "common/log.h"

namespace causer::nn {
namespace {

constexpr uint32_t kMagic = 0x43415553;  // "CAUS"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* f, uint32_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool ReadU32(std::FILE* f, uint32_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

}  // namespace

bool SaveParameters(const Module& module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  auto params = module.Parameters();
  if (!WriteU32(f.get(), kMagic) || !WriteU32(f.get(), kVersion) ||
      !WriteU32(f.get(), static_cast<uint32_t>(params.size()))) {
    return false;
  }
  for (const auto& p : params) {
    if (!WriteU32(f.get(), static_cast<uint32_t>(p.rows())) ||
        !WriteU32(f.get(), static_cast<uint32_t>(p.cols()))) {
      return false;
    }
    if (std::fwrite(p.data().data(), sizeof(float), p.data().size(),
                    f.get()) != p.data().size()) {
      return false;
    }
  }
  // fwrite only hands data to stdio's buffer; a full disk usually
  // surfaces at flush/close. Both must be checked or a truncated file is
  // reported as a successful save. (`params.flush_fail` simulates ENOSPC.)
  if (std::fflush(f.get()) != 0 || fault::ShouldFail("params.flush_fail")) {
    return false;
  }
  return std::fclose(f.release()) == 0;
}

bool LoadParameters(Module& module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  uint32_t magic = 0, version = 0, count = 0;
  if (!ReadU32(f.get(), &magic) || magic != kMagic) return false;
  if (!ReadU32(f.get(), &version) || version != kVersion) return false;
  auto params = module.Parameters();
  if (!ReadU32(f.get(), &count) || count != params.size()) return false;

  // Stage everything first so a short/mismatched file cannot leave the
  // module half-loaded.
  std::vector<std::vector<float>> staged(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    uint32_t rows = 0, cols = 0;
    if (!ReadU32(f.get(), &rows) || !ReadU32(f.get(), &cols)) return false;
    if (static_cast<int>(rows) != params[i].rows() ||
        static_cast<int>(cols) != params[i].cols()) {
      return false;
    }
    staged[i].resize(static_cast<size_t>(rows) * cols);
    if (std::fread(staged[i].data(), sizeof(float), staged[i].size(),
                   f.get()) != staged[i].size()) {
      return false;
    }
    // A well-framed file can still carry garbage payloads (bit rot, a
    // crash mid-overwrite): NaN/Inf weights would load silently and only
    // show up later as degraded metrics. Reject them here, by name.
    for (size_t j = 0; j < staged[i].size(); ++j) {
      if (!std::isfinite(staged[i][j])) {
        CAUSER_LOG(Error) << "LoadParameters(" << path
                          << "): non-finite value in parameter " << i
                          << " at element " << j;
        return false;
      }
    }
  }
  // The last tensor must end exactly at EOF: trailing bytes mean a
  // concatenated, wrong-architecture, or otherwise garbled checkpoint, and
  // loading a prefix of it silently would half-match some other model.
  unsigned char extra = 0;
  if (std::fread(&extra, 1, 1, f.get()) == 1) return false;
  if (std::feof(f.get()) == 0) return false;
  for (size_t i = 0; i < params.size(); ++i)
    params[i].data().assign(staged[i].begin(), staged[i].end());
  return true;
}

}  // namespace causer::nn
