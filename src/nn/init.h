#ifndef CAUSER_NN_INIT_H_
#define CAUSER_NN_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace causer::nn {

/// Xavier/Glorot uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
/// Returned tensor has requires_grad = true.
tensor::Tensor XavierUniform(int rows, int cols, causer::Rng& rng);

/// Uniform init in [-scale, scale] with requires_grad = true.
tensor::Tensor UniformParam(int rows, int cols, float scale, causer::Rng& rng);

/// Zero-initialized parameter (e.g. biases) with requires_grad = true.
tensor::Tensor ZeroParam(int rows, int cols);

}  // namespace causer::nn

#endif  // CAUSER_NN_INIT_H_
