#include "nn/module.h"

namespace causer::nn {

Tensor Module::RegisterParameter(Tensor t) {
  CAUSER_CHECK(t.defined() && t.requires_grad());
  params_.push_back(t);
  return t;
}

void Module::RegisterModule(Module* child) {
  CAUSER_CHECK(child != nullptr && child != this);
  children_.push_back(child);
}

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> all = params_;
  for (const Module* child : children_) {
    auto sub = child->Parameters();
    all.insert(all.end(), sub.begin(), sub.end());
  }
  return all;
}

void Module::ZeroGrad() {
  for (auto& p : Parameters()) p.ZeroGrad();
}

int Module::NumParameters() const {
  int n = 0;
  for (const auto& p : Parameters()) n += p.size();
  return n;
}

}  // namespace causer::nn
