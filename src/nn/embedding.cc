#include "nn/embedding.h"

#include "nn/init.h"
#include "tensor/ops.h"

namespace causer::nn {

Embedding::Embedding(int num_embeddings, int dim, causer::Rng& rng,
                     float scale) {
  // scale == 0 requests a zero table; skip the generator entirely so the
  // surrounding model's random stream is identical with or without this
  // embedding (important for reproducibility of configuration ablations).
  weight_ = RegisterParameter(scale == 0.0f
                                  ? ZeroParam(num_embeddings, dim)
                                  : UniformParam(num_embeddings, dim, scale,
                                                 rng));
}

Tensor Embedding::Forward(const std::vector<int>& indices) const {
  return tensor::GatherRows(weight_, indices);
}

Tensor Embedding::Row(int index) const {
  return tensor::GatherRows(weight_, {index});
}

}  // namespace causer::nn
