// Explainable recommendation scenario (the paper's Fig. 1 motivation): on
// a Baby-like dataset, compare what a co-occurrence/attention model and
// Causer's causal module point at when explaining the same
// recommendation, and measure both against the generator's ground-truth
// causes.
//
//   ./build/examples/example_explainable_rec

#include <cstdio>

#include "core/explainer.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/explanation_eval.h"
#include "models/narm.h"

int main() {
  using namespace causer;

  auto dataset = data::MakeDataset(data::SpecFor(data::PaperDataset::kBaby));
  auto split = data::LeaveLastOut(dataset);
  std::printf("Baby-like dataset: %d users, %d items, %d true clusters\n",
              dataset.num_users, dataset.num_items,
              dataset.true_cluster_graph.n());

  // Train Causer and an attention baseline (NARM).
  core::CauserModel causer_model(
      core::DefaultCauserConfig(dataset, core::Backbone::kGru));
  core::TrainCauser(causer_model, split, {.max_epochs = 12, .patience = 3});

  models::ModelConfig narm_cfg;
  narm_cfg.num_users = dataset.num_users;
  narm_cfg.num_items = dataset.num_items;
  narm_cfg.item_features = &dataset.item_features;
  models::Narm narm(narm_cfg);
  models::Fit(narm, split, {.max_epochs = 8, .patience = 2});

  // Ground-truth explanation set (stand-in for the paper's human labels).
  Rng rng(5);
  auto examples = eval::BuildExplanationSet(split.test, dataset, 400, rng);
  std::printf("explanation set: %zu samples, avg %.2f causes each\n\n",
              examples.size(),
              eval::EvaluateExplanations(
                  core::MakeCauserExplainer(causer_model,
                                            core::ExplainMode::kFull),
                  examples, 3)
                  .avg_causes_per_example);

  auto score = [&](const char* label, const eval::Explainer& explainer) {
    auto r = eval::EvaluateExplanations(explainer, examples, 3);
    std::printf("  %-24s F1@3 %.4f   NDCG@3 %.4f\n", label, r.f1, r.ndcg);
  };
  std::printf("explanation quality against ground-truth causes:\n");
  score("Causer (alpha * What)",
        core::MakeCauserExplainer(causer_model, core::ExplainMode::kFull));
  score("Causer causal only",
        core::MakeCauserExplainer(causer_model, core::ExplainMode::kCausal));
  score("Causer attention only",
        core::MakeCauserExplainer(causer_model,
                                  core::ExplainMode::kAttention));
  score("NARM attention", core::MakeNarmExplainer(narm));

  // One concrete case, printed side by side.
  for (const auto& ex : examples) {
    if (ex.instance->history.size() < 4) continue;
    const auto& inst = *ex.instance;
    std::printf("\ncase study: user %d, recommended item %d (cluster %d)\n",
                inst.user, ex.target_item,
                dataset.item_true_cluster[ex.target_item]);
    auto causer_scores = causer_model.ExplainScores(
        inst, ex.target_item, core::ExplainMode::kFull);
    auto narm_scores = core::MakeNarmExplainer(narm)(inst, ex.target_item);
    std::printf("  %-6s %-28s %-10s %-10s %s\n", "step", "items (cluster)",
                "causer", "narm", "truth");
    for (size_t t = 0; t < inst.history.size(); ++t) {
      std::string items;
      for (int item : inst.history[t].items) {
        items += std::to_string(item) + "(" +
                 std::to_string(dataset.item_true_cluster[item]) + ") ";
      }
      bool truth = false;
      for (int p : ex.true_cause_positions) truth = truth || p == (int)t;
      std::printf("  %-6zu %-28s %-10.4f %-10.4f %s\n", t, items.c_str(),
                  causer_scores[t], narm_scores[t], truth ? "<- cause" : "");
    }
    break;
  }
  return 0;
}
