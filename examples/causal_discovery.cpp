// Standalone causal discovery with the NOTEARS substrate: simulate a
// linear SEM from a random ground-truth DAG, learn the graph from the
// observational data alone, and compare against the truth (edges, SHD,
// Markov equivalence). This exercises the causal/ library independently of
// the recommender.
//
//   ./build/examples/example_causal_discovery

#include <cstdio>

#include "causal/d_separation.h"
#include "causal/markov_equivalence.h"
#include "causal/notears.h"
#include "common/rng.h"

int main() {
  using namespace causer;

  Rng rng(7);
  const int num_vars = 7;
  causal::Graph truth = causal::RandomDag(num_vars, 0.35, rng);
  std::printf("ground-truth DAG over %d variables (%d edges):\n", num_vars,
              truth.NumEdges());
  for (int i = 0; i < num_vars; ++i)
    for (int j = 0; j < num_vars; ++j)
      if (truth.Edge(i, j)) std::printf("  X%d -> X%d\n", i, j);

  causal::Dense weights;
  causal::Dense data =
      causal::SimulateLinearSem(truth, /*n=*/800, 1.0, 2.0, rng, &weights);
  std::printf("\nsimulated %d samples from the linear SEM\n", data.rows());

  causal::NotearsResult result = causal::NotearsLinear(data);
  std::printf("\nNOTEARS finished: %d outer iterations, h(W) = %.2e, %s\n",
              result.outer_iterations, result.final_h,
              result.converged ? "converged" : "hit rho_max");
  std::printf("learned graph (%d edges):\n", result.graph.NumEdges());
  for (int i = 0; i < num_vars; ++i) {
    for (int j = 0; j < num_vars; ++j) {
      if (result.graph.Edge(i, j)) {
        std::printf("  X%d -> X%d   (w = %+0.2f, true w = %+0.2f)\n", i, j,
                    result.weights(i, j), weights(i, j));
      }
    }
  }

  int shd = causal::StructuralHammingDistance(result.graph, truth);
  bool same_mec = causal::SameMarkovEquivalenceClass(result.graph, truth);
  std::printf("\nstructural Hamming distance to truth: %d\n", shd);
  std::printf("same Markov equivalence class: %s\n", same_mec ? "yes" : "no");

  // Bonus: query d-separation in the learned graph.
  std::printf("\nd-separation queries on the learned graph:\n");
  for (int a = 0; a < 2; ++a) {
    for (int b = 3; b < 5; ++b) {
      bool sep = causal::DSeparated(result.graph, {a}, {b}, {});
      std::printf("  X%d _||_ X%d (unconditional): %s\n", a, b,
                  sep ? "d-separated" : "d-connected");
    }
  }
  return 0;
}
