// Model persistence & dataset round-trip: train Causer, save both the
// dataset (TSV) and the model weights (binary), then reload into fresh
// objects and verify the recommendations survive — the offline-train /
// online-serve pattern.
//
//   ./build/examples/example_model_persistence

#include <cstdio>

#include "core/trainer.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "nn/serialization.h"

int main() {
  using namespace causer;

  const std::string dir = "/tmp/causer_persistence_demo";
  std::system(("mkdir -p " + dir).c_str());

  // --- offline: generate data, train, save everything ---
  data::Dataset dataset = data::MakeDataset(data::TinySpec());
  data::Split split = data::LeaveLastOut(dataset);

  core::CauserConfig config =
      core::DefaultCauserConfig(dataset, core::Backbone::kGru);
  core::CauserModel model(config);
  core::TrainCauser(model, split, {.max_epochs = 10, .patience = 3});
  double trained_ndcg =
      eval::Evaluate(models::MakeScorer(model), split.test, 5).ndcg;
  std::printf("offline: trained Causer, test NDCG@5 %.4f\n", trained_ndcg);

  if (!data::SaveDataset(dataset, dir)) {
    std::fprintf(stderr, "failed to save dataset\n");
    return 1;
  }
  if (!nn::SaveParameters(model, dir + "/causer_weights.bin")) {
    std::fprintf(stderr, "failed to save model\n");
    return 1;
  }
  std::printf("offline: saved dataset + weights under %s\n", dir.c_str());

  // --- online: reload into fresh objects, serve recommendations ---
  data::Dataset served_data;
  if (!data::LoadDataset(dir, &served_data)) {
    std::fprintf(stderr, "failed to load dataset\n");
    return 1;
  }
  core::CauserConfig served_config =
      core::DefaultCauserConfig(served_data, core::Backbone::kGru);
  core::CauserModel served(served_config);
  if (!nn::LoadParameters(served, dir + "/causer_weights.bin")) {
    std::fprintf(stderr, "failed to load weights\n");
    return 1;
  }
  served.OnParametersRestored();  // rebuild the item-level W cache

  data::Split served_split = data::LeaveLastOut(served_data);
  double served_ndcg =
      eval::Evaluate(models::MakeScorer(served), served_split.test, 5).ndcg;
  std::printf("online: reloaded model, test NDCG@5 %.4f (%s)\n", served_ndcg,
              served_ndcg == trained_ndcg ? "bit-identical" : "MISMATCH");

  const auto& inst = served_split.test[0];
  auto top = eval::TopK(served.ScoreAll(inst.user, inst.history), 3);
  std::printf("online: user %d -> top-3 recommendations:", inst.user);
  for (int item : top) std::printf(" %d", item);
  std::printf("\n");
  return served_ndcg == trained_ndcg ? 0 : 1;
}
