// Next-basket recommendation (the paper's multi-hot setting, Section II-A):
// steps hold several items at once. Trains FPMC (the classic next-basket
// baseline) and Causer on a basket-mode dataset and compares them.
//
//   ./build/examples/example_next_basket

#include <cstdio>

#include "core/trainer.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "models/fpmc.h"

int main() {
  using namespace causer;

  data::DatasetSpec spec = data::SpecFor(data::PaperDataset::kPatio);
  spec.basket_extend_prob = 0.45;  // markedly multi-item baskets
  data::Dataset dataset = data::MakeDataset(spec);

  int multi_steps = 0, total_steps = 0;
  for (const auto& seq : dataset.sequences) {
    for (const auto& step : seq.steps) {
      ++total_steps;
      multi_steps += step.items.size() > 1;
    }
  }
  std::printf("basket dataset: %d users, %d items; %.1f%% of steps hold >1 "
              "item\n",
              dataset.num_users, dataset.num_items,
              100.0 * multi_steps / total_steps);

  data::Split split = data::LeaveLastOut(dataset);

  models::ModelConfig fpmc_cfg;
  fpmc_cfg.num_users = dataset.num_users;
  fpmc_cfg.num_items = dataset.num_items;
  models::Fpmc fpmc(fpmc_cfg);
  models::Fit(fpmc, split, {.max_epochs = 8, .patience = 2});
  auto fpmc_result = eval::Evaluate(models::MakeScorer(fpmc), split.test, 5);

  core::CauserModel causer_model(
      core::DefaultCauserConfig(dataset, core::Backbone::kGru));
  core::TrainCauser(causer_model, split, {.max_epochs = 12, .patience = 3});
  auto causer_result =
      eval::Evaluate(models::MakeScorer(causer_model), split.test, 5);

  std::printf("\nnext-basket results (targets are whole baskets):\n");
  std::printf("  FPMC    F1@5 %.4f  NDCG@5 %.4f\n", fpmc_result.f1,
              fpmc_result.ndcg);
  std::printf("  Causer  F1@5 %.4f  NDCG@5 %.4f\n", causer_result.f1,
              causer_result.ndcg);

  const auto& inst = split.test[0];
  auto scores = causer_model.ScoreAll(inst.user, inst.history);
  std::printf("\nexample basket completion for user %d:\n", inst.user);
  std::printf("  last basket:");
  for (int item : inst.history.back().items) std::printf(" %d", item);
  std::printf("\n  true next basket:");
  for (int item : inst.target_items) std::printf(" %d", item);
  auto top = eval::TopK(scores, 5);
  std::printf("\n  recommended:");
  for (int item : top) std::printf(" %d", item);
  std::printf("\n");
  return 0;
}
