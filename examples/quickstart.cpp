// Quickstart: generate a small causal interaction dataset, train Causer,
// and print top-5 recommendations with causal explanations for one user.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cstdio>

#include "core/explainer.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/split.h"
#include "data/stats.h"
#include "eval/metrics.h"

int main() {
  using namespace causer;

  // 1. Data: a synthetic dataset generated from a ground-truth cluster
  //    causal graph (stand-in for a real interaction log).
  data::DatasetSpec spec = data::TinySpec();
  spec.num_users = 200;
  spec.num_items = 80;
  data::Dataset dataset = data::MakeDataset(spec);
  data::DatasetStats stats = data::ComputeStats(dataset);
  std::printf("dataset: %d users, %d items, %d interactions (%.2f%% sparse)\n",
              stats.num_users, stats.num_items, stats.num_interactions,
              100.0 * stats.sparsity);

  // 2. Split: leave-last-out (last step = test, second-to-last = validation).
  data::Split split = data::LeaveLastOut(dataset);

  // 3. Model: Causer with a GRU backbone; K defaults to the generator's
  //    cluster count, everything else to library defaults.
  core::CauserConfig config =
      core::DefaultCauserConfig(dataset, core::Backbone::kGru);
  core::CauserModel model(config);
  std::printf("model: %s with %d parameters\n", model.name().c_str(),
              model.NumParameters());

  // 4. Train with early stopping on validation NDCG@5.
  core::CauserTrainResult result =
      core::TrainCauser(model, split, {.max_epochs = 12, .patience = 3});
  std::printf("trained %d epochs, best validation NDCG@5 %.4f\n",
              result.fit.epochs_run, result.fit.best_validation_ndcg);
  std::printf("learned cluster graph: %d edges, acyclicity residual %.2e\n",
              result.learned_cluster_graph.NumEdges(),
              result.final_acyclicity);

  // 5. Evaluate on the held-out test interactions.
  eval::EvalResult test =
      eval::Evaluate(models::MakeScorer(model), split.test, 5);
  std::printf("test F1@5 %.4f, NDCG@5 %.4f\n", test.f1, test.ndcg);

  // 6. Recommend for one user and explain each recommendation with its
  //    most causal history step.
  const data::EvalInstance& inst = split.test[0];
  std::vector<float> scores = model.ScoreAll(inst.user, inst.history);
  std::vector<int> top5 = eval::TopK(scores, 5);
  std::printf("\nuser %d history:", inst.user);
  for (size_t t = 0; t < inst.history.size(); ++t) {
    for (int item : inst.history[t].items) std::printf(" %d", item);
  }
  std::printf("\nactual next item(s):");
  for (int item : inst.target_items) std::printf(" %d", item);
  std::printf("\ntop-5 recommendations with causal explanations:\n");
  for (int item : top5) {
    std::vector<double> expl =
        model.ExplainScores(inst, item, core::ExplainMode::kFull);
    int best_step = 0;
    for (size_t t = 1; t < expl.size(); ++t)
      if (expl[t] > expl[best_step]) best_step = static_cast<int>(t);
    std::printf("  item %3d (score %6.3f) — because of history step %d:",
                item, scores[item], best_step);
    for (int cause : inst.history[best_step].items)
      std::printf(" item %d", cause);
    std::printf("\n");
  }
  return 0;
}
