# Empty dependencies file for causer_models.
# This may be replaced when dependencies are built.
