file(REMOVE_RECURSE
  "libcauser_models.a"
)
