
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/bpr.cc" "src/CMakeFiles/causer_models.dir/models/bpr.cc.o" "gcc" "src/CMakeFiles/causer_models.dir/models/bpr.cc.o.d"
  "/root/repo/src/models/fpmc.cc" "src/CMakeFiles/causer_models.dir/models/fpmc.cc.o" "gcc" "src/CMakeFiles/causer_models.dir/models/fpmc.cc.o.d"
  "/root/repo/src/models/gru4rec.cc" "src/CMakeFiles/causer_models.dir/models/gru4rec.cc.o" "gcc" "src/CMakeFiles/causer_models.dir/models/gru4rec.cc.o.d"
  "/root/repo/src/models/mmsarec.cc" "src/CMakeFiles/causer_models.dir/models/mmsarec.cc.o" "gcc" "src/CMakeFiles/causer_models.dir/models/mmsarec.cc.o.d"
  "/root/repo/src/models/narm.cc" "src/CMakeFiles/causer_models.dir/models/narm.cc.o" "gcc" "src/CMakeFiles/causer_models.dir/models/narm.cc.o.d"
  "/root/repo/src/models/ncf.cc" "src/CMakeFiles/causer_models.dir/models/ncf.cc.o" "gcc" "src/CMakeFiles/causer_models.dir/models/ncf.cc.o.d"
  "/root/repo/src/models/recommender.cc" "src/CMakeFiles/causer_models.dir/models/recommender.cc.o" "gcc" "src/CMakeFiles/causer_models.dir/models/recommender.cc.o.d"
  "/root/repo/src/models/sasrec.cc" "src/CMakeFiles/causer_models.dir/models/sasrec.cc.o" "gcc" "src/CMakeFiles/causer_models.dir/models/sasrec.cc.o.d"
  "/root/repo/src/models/stamp.cc" "src/CMakeFiles/causer_models.dir/models/stamp.cc.o" "gcc" "src/CMakeFiles/causer_models.dir/models/stamp.cc.o.d"
  "/root/repo/src/models/vtrnn.cc" "src/CMakeFiles/causer_models.dir/models/vtrnn.cc.o" "gcc" "src/CMakeFiles/causer_models.dir/models/vtrnn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/causer_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/causer_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/causer_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/causer_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/causer_causal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/causer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
