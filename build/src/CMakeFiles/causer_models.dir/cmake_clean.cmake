file(REMOVE_RECURSE
  "CMakeFiles/causer_models.dir/models/bpr.cc.o"
  "CMakeFiles/causer_models.dir/models/bpr.cc.o.d"
  "CMakeFiles/causer_models.dir/models/fpmc.cc.o"
  "CMakeFiles/causer_models.dir/models/fpmc.cc.o.d"
  "CMakeFiles/causer_models.dir/models/gru4rec.cc.o"
  "CMakeFiles/causer_models.dir/models/gru4rec.cc.o.d"
  "CMakeFiles/causer_models.dir/models/mmsarec.cc.o"
  "CMakeFiles/causer_models.dir/models/mmsarec.cc.o.d"
  "CMakeFiles/causer_models.dir/models/narm.cc.o"
  "CMakeFiles/causer_models.dir/models/narm.cc.o.d"
  "CMakeFiles/causer_models.dir/models/ncf.cc.o"
  "CMakeFiles/causer_models.dir/models/ncf.cc.o.d"
  "CMakeFiles/causer_models.dir/models/recommender.cc.o"
  "CMakeFiles/causer_models.dir/models/recommender.cc.o.d"
  "CMakeFiles/causer_models.dir/models/sasrec.cc.o"
  "CMakeFiles/causer_models.dir/models/sasrec.cc.o.d"
  "CMakeFiles/causer_models.dir/models/stamp.cc.o"
  "CMakeFiles/causer_models.dir/models/stamp.cc.o.d"
  "CMakeFiles/causer_models.dir/models/vtrnn.cc.o"
  "CMakeFiles/causer_models.dir/models/vtrnn.cc.o.d"
  "libcauser_models.a"
  "libcauser_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causer_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
