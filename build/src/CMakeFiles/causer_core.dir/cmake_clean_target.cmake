file(REMOVE_RECURSE
  "libcauser_core.a"
)
