file(REMOVE_RECURSE
  "CMakeFiles/causer_core.dir/core/causer_model.cc.o"
  "CMakeFiles/causer_core.dir/core/causer_model.cc.o.d"
  "CMakeFiles/causer_core.dir/core/cluster_graph.cc.o"
  "CMakeFiles/causer_core.dir/core/cluster_graph.cc.o.d"
  "CMakeFiles/causer_core.dir/core/clustering.cc.o"
  "CMakeFiles/causer_core.dir/core/clustering.cc.o.d"
  "CMakeFiles/causer_core.dir/core/explainer.cc.o"
  "CMakeFiles/causer_core.dir/core/explainer.cc.o.d"
  "CMakeFiles/causer_core.dir/core/trainer.cc.o"
  "CMakeFiles/causer_core.dir/core/trainer.cc.o.d"
  "libcauser_core.a"
  "libcauser_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
