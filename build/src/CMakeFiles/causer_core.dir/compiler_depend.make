# Empty compiler generated dependencies file for causer_core.
# This may be replaced when dependencies are built.
