# Empty compiler generated dependencies file for causer_tensor.
# This may be replaced when dependencies are built.
