file(REMOVE_RECURSE
  "CMakeFiles/causer_tensor.dir/tensor/autograd.cc.o"
  "CMakeFiles/causer_tensor.dir/tensor/autograd.cc.o.d"
  "CMakeFiles/causer_tensor.dir/tensor/ops.cc.o"
  "CMakeFiles/causer_tensor.dir/tensor/ops.cc.o.d"
  "CMakeFiles/causer_tensor.dir/tensor/tensor.cc.o"
  "CMakeFiles/causer_tensor.dir/tensor/tensor.cc.o.d"
  "libcauser_tensor.a"
  "libcauser_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causer_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
