file(REMOVE_RECURSE
  "libcauser_tensor.a"
)
