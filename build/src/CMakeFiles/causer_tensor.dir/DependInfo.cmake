
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/autograd.cc" "src/CMakeFiles/causer_tensor.dir/tensor/autograd.cc.o" "gcc" "src/CMakeFiles/causer_tensor.dir/tensor/autograd.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/CMakeFiles/causer_tensor.dir/tensor/ops.cc.o" "gcc" "src/CMakeFiles/causer_tensor.dir/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/causer_tensor.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/causer_tensor.dir/tensor/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/causer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
