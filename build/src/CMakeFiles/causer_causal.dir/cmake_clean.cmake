file(REMOVE_RECURSE
  "CMakeFiles/causer_causal.dir/causal/acyclicity.cc.o"
  "CMakeFiles/causer_causal.dir/causal/acyclicity.cc.o.d"
  "CMakeFiles/causer_causal.dir/causal/d_separation.cc.o"
  "CMakeFiles/causer_causal.dir/causal/d_separation.cc.o.d"
  "CMakeFiles/causer_causal.dir/causal/ges.cc.o"
  "CMakeFiles/causer_causal.dir/causal/ges.cc.o.d"
  "CMakeFiles/causer_causal.dir/causal/graph.cc.o"
  "CMakeFiles/causer_causal.dir/causal/graph.cc.o.d"
  "CMakeFiles/causer_causal.dir/causal/markov_equivalence.cc.o"
  "CMakeFiles/causer_causal.dir/causal/markov_equivalence.cc.o.d"
  "CMakeFiles/causer_causal.dir/causal/matrix_exp.cc.o"
  "CMakeFiles/causer_causal.dir/causal/matrix_exp.cc.o.d"
  "CMakeFiles/causer_causal.dir/causal/notears.cc.o"
  "CMakeFiles/causer_causal.dir/causal/notears.cc.o.d"
  "CMakeFiles/causer_causal.dir/causal/pc.cc.o"
  "CMakeFiles/causer_causal.dir/causal/pc.cc.o.d"
  "libcauser_causal.a"
  "libcauser_causal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causer_causal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
