# Empty compiler generated dependencies file for causer_causal.
# This may be replaced when dependencies are built.
