
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/causal/acyclicity.cc" "src/CMakeFiles/causer_causal.dir/causal/acyclicity.cc.o" "gcc" "src/CMakeFiles/causer_causal.dir/causal/acyclicity.cc.o.d"
  "/root/repo/src/causal/d_separation.cc" "src/CMakeFiles/causer_causal.dir/causal/d_separation.cc.o" "gcc" "src/CMakeFiles/causer_causal.dir/causal/d_separation.cc.o.d"
  "/root/repo/src/causal/ges.cc" "src/CMakeFiles/causer_causal.dir/causal/ges.cc.o" "gcc" "src/CMakeFiles/causer_causal.dir/causal/ges.cc.o.d"
  "/root/repo/src/causal/graph.cc" "src/CMakeFiles/causer_causal.dir/causal/graph.cc.o" "gcc" "src/CMakeFiles/causer_causal.dir/causal/graph.cc.o.d"
  "/root/repo/src/causal/markov_equivalence.cc" "src/CMakeFiles/causer_causal.dir/causal/markov_equivalence.cc.o" "gcc" "src/CMakeFiles/causer_causal.dir/causal/markov_equivalence.cc.o.d"
  "/root/repo/src/causal/matrix_exp.cc" "src/CMakeFiles/causer_causal.dir/causal/matrix_exp.cc.o" "gcc" "src/CMakeFiles/causer_causal.dir/causal/matrix_exp.cc.o.d"
  "/root/repo/src/causal/notears.cc" "src/CMakeFiles/causer_causal.dir/causal/notears.cc.o" "gcc" "src/CMakeFiles/causer_causal.dir/causal/notears.cc.o.d"
  "/root/repo/src/causal/pc.cc" "src/CMakeFiles/causer_causal.dir/causal/pc.cc.o" "gcc" "src/CMakeFiles/causer_causal.dir/causal/pc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/causer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
