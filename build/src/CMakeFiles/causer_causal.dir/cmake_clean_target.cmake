file(REMOVE_RECURSE
  "libcauser_causal.a"
)
