file(REMOVE_RECURSE
  "libcauser_common.a"
)
