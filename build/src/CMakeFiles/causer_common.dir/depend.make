# Empty dependencies file for causer_common.
# This may be replaced when dependencies are built.
