file(REMOVE_RECURSE
  "CMakeFiles/causer_common.dir/common/flags.cc.o"
  "CMakeFiles/causer_common.dir/common/flags.cc.o.d"
  "CMakeFiles/causer_common.dir/common/log.cc.o"
  "CMakeFiles/causer_common.dir/common/log.cc.o.d"
  "CMakeFiles/causer_common.dir/common/rng.cc.o"
  "CMakeFiles/causer_common.dir/common/rng.cc.o.d"
  "CMakeFiles/causer_common.dir/common/stopwatch.cc.o"
  "CMakeFiles/causer_common.dir/common/stopwatch.cc.o.d"
  "CMakeFiles/causer_common.dir/common/table.cc.o"
  "CMakeFiles/causer_common.dir/common/table.cc.o.d"
  "libcauser_common.a"
  "libcauser_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causer_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
