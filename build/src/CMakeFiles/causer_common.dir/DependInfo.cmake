
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/flags.cc" "src/CMakeFiles/causer_common.dir/common/flags.cc.o" "gcc" "src/CMakeFiles/causer_common.dir/common/flags.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/causer_common.dir/common/log.cc.o" "gcc" "src/CMakeFiles/causer_common.dir/common/log.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/causer_common.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/causer_common.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stopwatch.cc" "src/CMakeFiles/causer_common.dir/common/stopwatch.cc.o" "gcc" "src/CMakeFiles/causer_common.dir/common/stopwatch.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/causer_common.dir/common/table.cc.o" "gcc" "src/CMakeFiles/causer_common.dir/common/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
