file(REMOVE_RECURSE
  "libcauser_nn.a"
)
