file(REMOVE_RECURSE
  "CMakeFiles/causer_nn.dir/nn/attention.cc.o"
  "CMakeFiles/causer_nn.dir/nn/attention.cc.o.d"
  "CMakeFiles/causer_nn.dir/nn/embedding.cc.o"
  "CMakeFiles/causer_nn.dir/nn/embedding.cc.o.d"
  "CMakeFiles/causer_nn.dir/nn/init.cc.o"
  "CMakeFiles/causer_nn.dir/nn/init.cc.o.d"
  "CMakeFiles/causer_nn.dir/nn/layer_norm.cc.o"
  "CMakeFiles/causer_nn.dir/nn/layer_norm.cc.o.d"
  "CMakeFiles/causer_nn.dir/nn/linear.cc.o"
  "CMakeFiles/causer_nn.dir/nn/linear.cc.o.d"
  "CMakeFiles/causer_nn.dir/nn/module.cc.o"
  "CMakeFiles/causer_nn.dir/nn/module.cc.o.d"
  "CMakeFiles/causer_nn.dir/nn/optimizer.cc.o"
  "CMakeFiles/causer_nn.dir/nn/optimizer.cc.o.d"
  "CMakeFiles/causer_nn.dir/nn/rnn_cells.cc.o"
  "CMakeFiles/causer_nn.dir/nn/rnn_cells.cc.o.d"
  "CMakeFiles/causer_nn.dir/nn/serialization.cc.o"
  "CMakeFiles/causer_nn.dir/nn/serialization.cc.o.d"
  "libcauser_nn.a"
  "libcauser_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causer_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
