
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cc" "src/CMakeFiles/causer_nn.dir/nn/attention.cc.o" "gcc" "src/CMakeFiles/causer_nn.dir/nn/attention.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/CMakeFiles/causer_nn.dir/nn/embedding.cc.o" "gcc" "src/CMakeFiles/causer_nn.dir/nn/embedding.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/causer_nn.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/causer_nn.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/layer_norm.cc" "src/CMakeFiles/causer_nn.dir/nn/layer_norm.cc.o" "gcc" "src/CMakeFiles/causer_nn.dir/nn/layer_norm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/causer_nn.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/causer_nn.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/causer_nn.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/causer_nn.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/causer_nn.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/causer_nn.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/rnn_cells.cc" "src/CMakeFiles/causer_nn.dir/nn/rnn_cells.cc.o" "gcc" "src/CMakeFiles/causer_nn.dir/nn/rnn_cells.cc.o.d"
  "/root/repo/src/nn/serialization.cc" "src/CMakeFiles/causer_nn.dir/nn/serialization.cc.o" "gcc" "src/CMakeFiles/causer_nn.dir/nn/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/causer_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/causer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
