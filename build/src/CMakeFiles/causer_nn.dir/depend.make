# Empty dependencies file for causer_nn.
# This may be replaced when dependencies are built.
