# Empty dependencies file for causer_data.
# This may be replaced when dependencies are built.
