file(REMOVE_RECURSE
  "libcauser_data.a"
)
