
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/causer_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/causer_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/CMakeFiles/causer_data.dir/data/generator.cc.o" "gcc" "src/CMakeFiles/causer_data.dir/data/generator.cc.o.d"
  "/root/repo/src/data/io.cc" "src/CMakeFiles/causer_data.dir/data/io.cc.o" "gcc" "src/CMakeFiles/causer_data.dir/data/io.cc.o.d"
  "/root/repo/src/data/sampler.cc" "src/CMakeFiles/causer_data.dir/data/sampler.cc.o" "gcc" "src/CMakeFiles/causer_data.dir/data/sampler.cc.o.d"
  "/root/repo/src/data/specs.cc" "src/CMakeFiles/causer_data.dir/data/specs.cc.o" "gcc" "src/CMakeFiles/causer_data.dir/data/specs.cc.o.d"
  "/root/repo/src/data/split.cc" "src/CMakeFiles/causer_data.dir/data/split.cc.o" "gcc" "src/CMakeFiles/causer_data.dir/data/split.cc.o.d"
  "/root/repo/src/data/stats.cc" "src/CMakeFiles/causer_data.dir/data/stats.cc.o" "gcc" "src/CMakeFiles/causer_data.dir/data/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/causer_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/causer_causal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
