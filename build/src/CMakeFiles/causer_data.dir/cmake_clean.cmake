file(REMOVE_RECURSE
  "CMakeFiles/causer_data.dir/data/dataset.cc.o"
  "CMakeFiles/causer_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/causer_data.dir/data/generator.cc.o"
  "CMakeFiles/causer_data.dir/data/generator.cc.o.d"
  "CMakeFiles/causer_data.dir/data/io.cc.o"
  "CMakeFiles/causer_data.dir/data/io.cc.o.d"
  "CMakeFiles/causer_data.dir/data/sampler.cc.o"
  "CMakeFiles/causer_data.dir/data/sampler.cc.o.d"
  "CMakeFiles/causer_data.dir/data/specs.cc.o"
  "CMakeFiles/causer_data.dir/data/specs.cc.o.d"
  "CMakeFiles/causer_data.dir/data/split.cc.o"
  "CMakeFiles/causer_data.dir/data/split.cc.o.d"
  "CMakeFiles/causer_data.dir/data/stats.cc.o"
  "CMakeFiles/causer_data.dir/data/stats.cc.o.d"
  "libcauser_data.a"
  "libcauser_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causer_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
