# Empty compiler generated dependencies file for causer_eval.
# This may be replaced when dependencies are built.
