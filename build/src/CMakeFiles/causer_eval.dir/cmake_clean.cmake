file(REMOVE_RECURSE
  "CMakeFiles/causer_eval.dir/eval/analysis.cc.o"
  "CMakeFiles/causer_eval.dir/eval/analysis.cc.o.d"
  "CMakeFiles/causer_eval.dir/eval/evaluator.cc.o"
  "CMakeFiles/causer_eval.dir/eval/evaluator.cc.o.d"
  "CMakeFiles/causer_eval.dir/eval/explanation_eval.cc.o"
  "CMakeFiles/causer_eval.dir/eval/explanation_eval.cc.o.d"
  "CMakeFiles/causer_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/causer_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/causer_eval.dir/eval/significance.cc.o"
  "CMakeFiles/causer_eval.dir/eval/significance.cc.o.d"
  "libcauser_eval.a"
  "libcauser_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causer_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
