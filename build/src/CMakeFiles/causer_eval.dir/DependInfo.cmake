
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/analysis.cc" "src/CMakeFiles/causer_eval.dir/eval/analysis.cc.o" "gcc" "src/CMakeFiles/causer_eval.dir/eval/analysis.cc.o.d"
  "/root/repo/src/eval/evaluator.cc" "src/CMakeFiles/causer_eval.dir/eval/evaluator.cc.o" "gcc" "src/CMakeFiles/causer_eval.dir/eval/evaluator.cc.o.d"
  "/root/repo/src/eval/explanation_eval.cc" "src/CMakeFiles/causer_eval.dir/eval/explanation_eval.cc.o" "gcc" "src/CMakeFiles/causer_eval.dir/eval/explanation_eval.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/causer_eval.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/causer_eval.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/significance.cc" "src/CMakeFiles/causer_eval.dir/eval/significance.cc.o" "gcc" "src/CMakeFiles/causer_eval.dir/eval/significance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/causer_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/causer_causal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/causer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
