file(REMOVE_RECURSE
  "libcauser_eval.a"
)
