# Empty compiler generated dependencies file for causer_model_test.
# This may be replaced when dependencies are built.
