file(REMOVE_RECURSE
  "CMakeFiles/causer_model_test.dir/causer_model_test.cc.o"
  "CMakeFiles/causer_model_test.dir/causer_model_test.cc.o.d"
  "causer_model_test"
  "causer_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causer_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
