file(REMOVE_RECURSE
  "CMakeFiles/core_graph_test.dir/core_graph_test.cc.o"
  "CMakeFiles/core_graph_test.dir/core_graph_test.cc.o.d"
  "core_graph_test"
  "core_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
