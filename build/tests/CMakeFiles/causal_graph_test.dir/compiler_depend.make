# Empty compiler generated dependencies file for causal_graph_test.
# This may be replaced when dependencies are built.
