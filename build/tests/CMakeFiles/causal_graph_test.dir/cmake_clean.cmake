file(REMOVE_RECURSE
  "CMakeFiles/causal_graph_test.dir/causal_graph_test.cc.o"
  "CMakeFiles/causal_graph_test.dir/causal_graph_test.cc.o.d"
  "causal_graph_test"
  "causal_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
