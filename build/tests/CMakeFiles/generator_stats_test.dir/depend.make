# Empty dependencies file for generator_stats_test.
# This may be replaced when dependencies are built.
