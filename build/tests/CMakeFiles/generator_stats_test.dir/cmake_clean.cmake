file(REMOVE_RECURSE
  "CMakeFiles/generator_stats_test.dir/generator_stats_test.cc.o"
  "CMakeFiles/generator_stats_test.dir/generator_stats_test.cc.o.d"
  "generator_stats_test"
  "generator_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generator_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
