file(REMOVE_RECURSE
  "CMakeFiles/core_clustering_test.dir/core_clustering_test.cc.o"
  "CMakeFiles/core_clustering_test.dir/core_clustering_test.cc.o.d"
  "core_clustering_test"
  "core_clustering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_clustering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
