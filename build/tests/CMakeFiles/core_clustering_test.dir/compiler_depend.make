# Empty compiler generated dependencies file for core_clustering_test.
# This may be replaced when dependencies are built.
