# Empty dependencies file for tensor_shapes_test.
# This may be replaced when dependencies are built.
