file(REMOVE_RECURSE
  "CMakeFiles/tensor_shapes_test.dir/tensor_shapes_test.cc.o"
  "CMakeFiles/tensor_shapes_test.dir/tensor_shapes_test.cc.o.d"
  "tensor_shapes_test"
  "tensor_shapes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
