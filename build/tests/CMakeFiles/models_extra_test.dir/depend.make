# Empty dependencies file for models_extra_test.
# This may be replaced when dependencies are built.
