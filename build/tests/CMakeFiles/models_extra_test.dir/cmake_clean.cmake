file(REMOVE_RECURSE
  "CMakeFiles/models_extra_test.dir/models_extra_test.cc.o"
  "CMakeFiles/models_extra_test.dir/models_extra_test.cc.o.d"
  "models_extra_test"
  "models_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
