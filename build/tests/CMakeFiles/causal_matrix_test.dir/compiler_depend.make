# Empty compiler generated dependencies file for causal_matrix_test.
# This may be replaced when dependencies are built.
