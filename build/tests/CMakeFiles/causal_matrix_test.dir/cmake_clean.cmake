file(REMOVE_RECURSE
  "CMakeFiles/causal_matrix_test.dir/causal_matrix_test.cc.o"
  "CMakeFiles/causal_matrix_test.dir/causal_matrix_test.cc.o.d"
  "causal_matrix_test"
  "causal_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
