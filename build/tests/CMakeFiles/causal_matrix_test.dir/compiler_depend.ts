# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for causal_matrix_test.
