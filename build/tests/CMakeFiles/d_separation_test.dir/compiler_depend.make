# Empty compiler generated dependencies file for d_separation_test.
# This may be replaced when dependencies are built.
