file(REMOVE_RECURSE
  "CMakeFiles/d_separation_test.dir/d_separation_test.cc.o"
  "CMakeFiles/d_separation_test.dir/d_separation_test.cc.o.d"
  "d_separation_test"
  "d_separation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d_separation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
