file(REMOVE_RECURSE
  "CMakeFiles/markov_equivalence_test.dir/markov_equivalence_test.cc.o"
  "CMakeFiles/markov_equivalence_test.dir/markov_equivalence_test.cc.o.d"
  "markov_equivalence_test"
  "markov_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
