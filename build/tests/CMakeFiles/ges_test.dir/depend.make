# Empty dependencies file for ges_test.
# This may be replaced when dependencies are built.
