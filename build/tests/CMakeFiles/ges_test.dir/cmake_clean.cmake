file(REMOVE_RECURSE
  "CMakeFiles/ges_test.dir/ges_test.cc.o"
  "CMakeFiles/ges_test.dir/ges_test.cc.o.d"
  "ges_test"
  "ges_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ges_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
