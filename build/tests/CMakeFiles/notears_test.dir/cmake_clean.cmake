file(REMOVE_RECURSE
  "CMakeFiles/notears_test.dir/notears_test.cc.o"
  "CMakeFiles/notears_test.dir/notears_test.cc.o.d"
  "notears_test"
  "notears_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/notears_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
