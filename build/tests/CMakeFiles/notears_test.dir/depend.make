# Empty dependencies file for notears_test.
# This may be replaced when dependencies are built.
