# Empty compiler generated dependencies file for causer_config_test.
# This may be replaced when dependencies are built.
