file(REMOVE_RECURSE
  "CMakeFiles/causer_config_test.dir/causer_config_test.cc.o"
  "CMakeFiles/causer_config_test.dir/causer_config_test.cc.o.d"
  "causer_config_test"
  "causer_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causer_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
