file(REMOVE_RECURSE
  "CMakeFiles/bench_identifiability.dir/bench_identifiability.cc.o"
  "CMakeFiles/bench_identifiability.dir/bench_identifiability.cc.o.d"
  "bench_identifiability"
  "bench_identifiability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_identifiability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
