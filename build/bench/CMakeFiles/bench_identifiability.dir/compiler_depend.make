# Empty compiler generated dependencies file for bench_identifiability.
# This may be replaced when dependencies are built.
