file(REMOVE_RECURSE
  "CMakeFiles/table3_tuning_ranges.dir/table3_tuning_ranges.cc.o"
  "CMakeFiles/table3_tuning_ranges.dir/table3_tuning_ranges.cc.o.d"
  "table3_tuning_ranges"
  "table3_tuning_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_tuning_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
