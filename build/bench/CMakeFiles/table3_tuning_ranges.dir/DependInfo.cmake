
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table3_tuning_ranges.cc" "bench/CMakeFiles/table3_tuning_ranges.dir/table3_tuning_ranges.cc.o" "gcc" "bench/CMakeFiles/table3_tuning_ranges.dir/table3_tuning_ranges.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/causer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/causer_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/causer_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/causer_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/causer_causal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/causer_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/causer_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/causer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
