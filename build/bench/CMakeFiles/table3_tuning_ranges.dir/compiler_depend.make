# Empty compiler generated dependencies file for table3_tuning_ranges.
# This may be replaced when dependencies are built.
