file(REMOVE_RECURSE
  "CMakeFiles/fig7_explanation_quant.dir/fig7_explanation_quant.cc.o"
  "CMakeFiles/fig7_explanation_quant.dir/fig7_explanation_quant.cc.o.d"
  "fig7_explanation_quant"
  "fig7_explanation_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_explanation_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
