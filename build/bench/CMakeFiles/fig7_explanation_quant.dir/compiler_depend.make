# Empty compiler generated dependencies file for fig7_explanation_quant.
# This may be replaced when dependencies are built.
