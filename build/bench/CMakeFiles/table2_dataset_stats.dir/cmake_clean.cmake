file(REMOVE_RECURSE
  "CMakeFiles/table2_dataset_stats.dir/table2_dataset_stats.cc.o"
  "CMakeFiles/table2_dataset_stats.dir/table2_dataset_stats.cc.o.d"
  "table2_dataset_stats"
  "table2_dataset_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dataset_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
