# Empty dependencies file for table2_dataset_stats.
# This may be replaced when dependencies are built.
