file(REMOVE_RECURSE
  "CMakeFiles/table4_overall.dir/table4_overall.cc.o"
  "CMakeFiles/table4_overall.dir/table4_overall.cc.o.d"
  "table4_overall"
  "table4_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
