# Empty dependencies file for table4_overall.
# This may be replaced when dependencies are built.
