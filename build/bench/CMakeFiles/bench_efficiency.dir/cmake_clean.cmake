file(REMOVE_RECURSE
  "CMakeFiles/bench_efficiency.dir/bench_efficiency.cc.o"
  "CMakeFiles/bench_efficiency.dir/bench_efficiency.cc.o.d"
  "bench_efficiency"
  "bench_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
