file(REMOVE_RECURSE
  "CMakeFiles/fig5_epsilon_sweep.dir/fig5_epsilon_sweep.cc.o"
  "CMakeFiles/fig5_epsilon_sweep.dir/fig5_epsilon_sweep.cc.o.d"
  "fig5_epsilon_sweep"
  "fig5_epsilon_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_epsilon_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
