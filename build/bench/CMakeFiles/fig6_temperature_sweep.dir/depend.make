# Empty dependencies file for fig6_temperature_sweep.
# This may be replaced when dependencies are built.
