# Empty compiler generated dependencies file for fig3_seqlen_dist.
# This may be replaced when dependencies are built.
