file(REMOVE_RECURSE
  "CMakeFiles/fig3_seqlen_dist.dir/fig3_seqlen_dist.cc.o"
  "CMakeFiles/fig3_seqlen_dist.dir/fig3_seqlen_dist.cc.o.d"
  "fig3_seqlen_dist"
  "fig3_seqlen_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_seqlen_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
