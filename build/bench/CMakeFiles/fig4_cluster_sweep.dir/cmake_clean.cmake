file(REMOVE_RECURSE
  "CMakeFiles/fig4_cluster_sweep.dir/fig4_cluster_sweep.cc.o"
  "CMakeFiles/fig4_cluster_sweep.dir/fig4_cluster_sweep.cc.o.d"
  "fig4_cluster_sweep"
  "fig4_cluster_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cluster_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
