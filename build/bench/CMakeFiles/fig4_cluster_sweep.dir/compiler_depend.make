# Empty compiler generated dependencies file for fig4_cluster_sweep.
# This may be replaced when dependencies are built.
