file(REMOVE_RECURSE
  "CMakeFiles/fig8_explanation_cases.dir/fig8_explanation_cases.cc.o"
  "CMakeFiles/fig8_explanation_cases.dir/fig8_explanation_cases.cc.o.d"
  "fig8_explanation_cases"
  "fig8_explanation_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_explanation_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
