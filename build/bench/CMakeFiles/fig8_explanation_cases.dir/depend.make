# Empty dependencies file for fig8_explanation_cases.
# This may be replaced when dependencies are built.
