file(REMOVE_RECURSE
  "CMakeFiles/table5_ablation.dir/table5_ablation.cc.o"
  "CMakeFiles/table5_ablation.dir/table5_ablation.cc.o.d"
  "table5_ablation"
  "table5_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
