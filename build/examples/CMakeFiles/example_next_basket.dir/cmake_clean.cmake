file(REMOVE_RECURSE
  "CMakeFiles/example_next_basket.dir/next_basket.cpp.o"
  "CMakeFiles/example_next_basket.dir/next_basket.cpp.o.d"
  "example_next_basket"
  "example_next_basket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_next_basket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
