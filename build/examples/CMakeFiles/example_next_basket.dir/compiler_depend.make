# Empty compiler generated dependencies file for example_next_basket.
# This may be replaced when dependencies are built.
