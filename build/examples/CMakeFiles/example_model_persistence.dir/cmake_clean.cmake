file(REMOVE_RECURSE
  "CMakeFiles/example_model_persistence.dir/model_persistence.cpp.o"
  "CMakeFiles/example_model_persistence.dir/model_persistence.cpp.o.d"
  "example_model_persistence"
  "example_model_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_model_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
