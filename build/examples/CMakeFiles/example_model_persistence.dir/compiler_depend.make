# Empty compiler generated dependencies file for example_model_persistence.
# This may be replaced when dependencies are built.
