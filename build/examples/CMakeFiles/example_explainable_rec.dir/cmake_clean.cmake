file(REMOVE_RECURSE
  "CMakeFiles/example_explainable_rec.dir/explainable_rec.cpp.o"
  "CMakeFiles/example_explainable_rec.dir/explainable_rec.cpp.o.d"
  "example_explainable_rec"
  "example_explainable_rec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_explainable_rec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
