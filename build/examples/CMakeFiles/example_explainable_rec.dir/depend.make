# Empty dependencies file for example_explainable_rec.
# This may be replaced when dependencies are built.
