# Empty dependencies file for example_causal_discovery.
# This may be replaced when dependencies are built.
