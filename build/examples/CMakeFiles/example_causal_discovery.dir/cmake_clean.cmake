file(REMOVE_RECURSE
  "CMakeFiles/example_causal_discovery.dir/causal_discovery.cpp.o"
  "CMakeFiles/example_causal_discovery.dir/causal_discovery.cpp.o.d"
  "example_causal_discovery"
  "example_causal_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_causal_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
