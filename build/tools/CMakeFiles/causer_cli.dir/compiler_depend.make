# Empty compiler generated dependencies file for causer_cli.
# This may be replaced when dependencies are built.
