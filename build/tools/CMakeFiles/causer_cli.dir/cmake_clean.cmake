file(REMOVE_RECURSE
  "CMakeFiles/causer_cli.dir/causer_cli.cc.o"
  "CMakeFiles/causer_cli.dir/causer_cli.cc.o.d"
  "causer_cli"
  "causer_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causer_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
