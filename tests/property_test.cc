#include <gtest/gtest.h>

#include <cmath>

#include "causal/acyclicity.h"
#include "causal/d_separation.h"
#include "causal/markov_equivalence.h"
#include "causal/matrix_exp.h"
#include "causal/notears.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "tensor/ops.h"

// Property-style sweeps over random seeds: each TEST_P instance checks an
// invariant on freshly sampled inputs.

namespace causer {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST_P(SeededProperty, SoftmaxRowsAlwaysDistribution) {
  Rng rng(GetParam());
  int rows = 1 + rng.UniformInt(6);
  int cols = 2 + rng.UniformInt(8);
  auto t = tensor::Tensor::RandomNormal(rows, cols, 3.0f, rng);
  auto s = tensor::SoftmaxRows(t, 0.1f + static_cast<float>(rng.Uniform()));
  for (int r = 0; r < rows; ++r) {
    float total = 0.0f;
    for (int c = 0; c < cols; ++c) {
      EXPECT_GE(s.At(r, c), 0.0f);
      total += s.At(r, c);
    }
    EXPECT_NEAR(total, 1.0f, 1e-4);
  }
}

TEST_P(SeededProperty, MatMulAssociativeWithIdentity) {
  Rng rng(GetParam());
  int n = 2 + rng.UniformInt(5);
  auto a = tensor::Tensor::RandomNormal(n, n, 1.0f, rng);
  auto eye = tensor::Tensor::Zeros(n, n);
  for (int i = 0; i < n; ++i) eye.At(i, i) = 1.0f;
  auto left = tensor::MatMul(eye, a);
  auto right = tensor::MatMul(a, eye);
  for (int i = 0; i < n * n; ++i) {
    EXPECT_NEAR(left.data()[i], a.data()[i], 1e-5);
    EXPECT_NEAR(right.data()[i], a.data()[i], 1e-5);
  }
}

TEST_P(SeededProperty, TransposeIsInvolution) {
  Rng rng(GetParam());
  auto a = tensor::Tensor::RandomNormal(2 + rng.UniformInt(5),
                                        2 + rng.UniformInt(5), 1.0f, rng);
  auto tt = tensor::Transpose(tensor::Transpose(a));
  EXPECT_EQ(tt.rows(), a.rows());
  for (int i = 0; i < a.size(); ++i)
    EXPECT_FLOAT_EQ(tt.data()[i], a.data()[i]);
}

TEST_P(SeededProperty, RandomDagIsAlwaysAcyclicWithZeroResidual) {
  Rng rng(GetParam());
  int n = 3 + rng.UniformInt(10);
  causal::Graph g = causal::RandomDag(n, rng.Uniform(), rng);
  EXPECT_TRUE(g.IsDag());
  EXPECT_NEAR(causal::AcyclicityValue(causal::ToDense(g)), 0.0, 1e-6);
}

TEST_P(SeededProperty, AcyclicityNonNegative) {
  Rng rng(GetParam());
  int n = 2 + rng.UniformInt(6);
  causal::Dense w(n, n);
  for (auto& v : w.data()) v = rng.Normal();
  EXPECT_GE(causal::AcyclicityValue(w), -1e-9);
}

TEST_P(SeededProperty, MatrixExpOfTransposeIsTransposeOfExp) {
  Rng rng(GetParam());
  int n = 2 + rng.UniformInt(4);
  causal::Dense a(n, n);
  for (auto& v : a.data()) v = rng.Normal(0.0, 0.5);
  causal::Dense e1 = causal::MatrixExponential(a.Transposed());
  causal::Dense e2 = causal::MatrixExponential(a).Transposed();
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) EXPECT_NEAR(e1(i, j), e2(i, j), 1e-8);
}

TEST_P(SeededProperty, DagIsAlwaysMarkovEquivalentToItself) {
  Rng rng(GetParam());
  causal::Graph g = causal::RandomDag(8, 0.3, rng);
  EXPECT_TRUE(causal::SameMarkovEquivalenceClass(g, g));
  EXPECT_EQ(causal::StructuralHammingDistance(g, g), 0);
  EXPECT_TRUE(causal::Cpdag(g) == causal::Cpdag(g));
}

TEST_P(SeededProperty, EquivalentDagsHaveEqualCpdags) {
  // Reversing a "covered" edge (same parent sets modulo the edge) keeps
  // the MEC; the CPDAGs must match.
  Rng rng(GetParam());
  causal::Graph g = causal::RandomDag(7, 0.35, rng);
  // Find a covered edge x -> y: parents(y) = parents(x) + {x}.
  for (int x = 0; x < g.n(); ++x) {
    for (int y = 0; y < g.n(); ++y) {
      if (!g.Edge(x, y)) continue;
      auto px = g.Parents(x);
      auto py = g.Parents(y);
      px.push_back(x);
      std::sort(px.begin(), px.end());
      std::sort(py.begin(), py.end());
      if (px != py) continue;
      causal::Graph reversed = g;
      reversed.SetEdge(x, y, false);
      reversed.SetEdge(y, x, true);
      ASSERT_TRUE(reversed.IsDag());
      EXPECT_TRUE(causal::SameMarkovEquivalenceClass(g, reversed));
      EXPECT_TRUE(causal::Cpdag(g) == causal::Cpdag(reversed));
      return;  // one covered edge per seed suffices
    }
  }
}

TEST_P(SeededProperty, DSeparationSymmetric) {
  Rng rng(GetParam());
  causal::Graph g = causal::RandomDag(8, 0.3, rng);
  for (int trial = 0; trial < 5; ++trial) {
    int a = rng.UniformInt(8), b = rng.UniformInt(8);
    if (a == b) continue;
    std::vector<int> cond;
    for (int c = 0; c < 8; ++c) {
      if (c != a && c != b && rng.Bernoulli(0.3)) cond.push_back(c);
    }
    EXPECT_EQ(causal::DSeparated(g, {a}, {b}, cond),
              causal::DSeparated(g, {b}, {a}, cond));
  }
}

TEST_P(SeededProperty, NonAdjacentNodesSeparableByParents) {
  // Classic property: a node is d-separated from its non-descendant,
  // non-adjacent nodes given its parents (local Markov condition).
  Rng rng(GetParam());
  causal::Graph g = causal::RandomDag(7, 0.3, rng);
  for (int v = 0; v < g.n(); ++v) {
    auto parents = g.Parents(v);
    auto desc = g.Descendants(v);
    std::vector<int> nondesc;
    for (int u = 0; u < g.n(); ++u) {
      if (u == v) continue;
      if (std::find(desc.begin(), desc.end(), u) != desc.end()) continue;
      if (std::find(parents.begin(), parents.end(), u) != parents.end())
        continue;
      nondesc.push_back(u);
    }
    if (nondesc.empty()) continue;
    EXPECT_TRUE(causal::DSeparated(g, {v}, nondesc, parents))
        << "node " << v;
  }
}

TEST_P(SeededProperty, MetricsBounded) {
  Rng rng(GetParam());
  std::vector<float> scores(20);
  for (auto& s : scores) s = static_cast<float>(rng.Normal());
  auto ranked = eval::TopK(scores, 5);
  std::vector<int> relevant;
  for (int i = 0; i < 20; ++i)
    if (rng.Bernoulli(0.2)) relevant.push_back(i);
  double f1 = eval::F1(ranked, relevant);
  double ndcg = eval::Ndcg(ranked, relevant);
  EXPECT_GE(f1, 0.0);
  EXPECT_LE(f1, 1.0);
  EXPECT_GE(ndcg, 0.0);
  EXPECT_LE(ndcg, 1.0);
  // Precision and recall bound F1 from above.
  EXPECT_LE(f1, std::max(eval::Precision(ranked, relevant),
                         eval::Recall(ranked, relevant)) +
                    1e-12);
}

TEST_P(SeededProperty, GeneratedDatasetInvariants) {
  data::DatasetSpec spec = data::TinySpec();
  spec.seed = GetParam();
  spec.basket_extend_prob = GetParam() % 2 == 0 ? 0.3 : 0.0;
  data::Dataset d = data::MakeDataset(spec);
  EXPECT_TRUE(d.true_cluster_graph.IsDag());
  EXPECT_EQ(static_cast<int>(d.sequences.size()), spec.num_users);
  for (const auto& seq : d.sequences) {
    for (size_t t = 0; t < seq.steps.size(); ++t) {
      const auto& step = seq.steps[t];
      EXPECT_FALSE(step.items.empty());
      EXPECT_EQ(step.items.size(), step.cause_step.size());
      for (size_t k = 0; k < step.items.size(); ++k) {
        EXPECT_GE(step.items[k], 0);
        EXPECT_LT(step.items[k], spec.num_items);
        EXPECT_LT(step.cause_step[k], static_cast<int>(t));
      }
    }
  }
  data::Split s = data::LeaveLastOut(d);
  EXPECT_EQ(s.test.size(), d.sequences.size());  // min_len >= 3
}

TEST_P(SeededProperty, NotearsOutputAlwaysDag) {
  Rng rng(GetParam());
  causal::Graph truth = causal::RandomDag(5, 0.4, rng);
  causal::Dense x = causal::SimulateLinearSem(truth, 150, 0.8, 1.6, rng);
  causal::NotearsOptions opts;
  opts.max_outer_iterations = 6;
  opts.inner_iterations = 80;
  causal::NotearsResult r = causal::NotearsLinear(x, opts);
  EXPECT_TRUE(r.graph.IsDag());
  EXPECT_GE(r.final_h, 0.0);
}

}  // namespace
}  // namespace causer
