#include <gtest/gtest.h>

#include <cmath>

#include "causal/acyclicity.h"
#include "core/cluster_graph.h"
#include "nn/optimizer.h"

namespace causer::core {
namespace {

TEST(ClusterGraphTest, InitializationProperties) {
  Rng rng(5);
  ClusterCausalGraph g(6, rng);
  EXPECT_EQ(g.num_clusters(), 6);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(g.weights().At(i, i), 0.0f);  // zero diagonal
    for (int j = 0; j < 6; ++j) {
      if (i != j) {
        EXPECT_GE(g.weights().At(i, j), 0.2f);
        EXPECT_LE(g.weights().At(i, j), 0.6f);
      }
    }
  }
}

TEST(ClusterGraphTest, ResidualMatchesAcyclicityDefinition) {
  Rng rng(6);
  ClusterCausalGraph g(4, rng);
  double h = g.AcyclicityResidual();
  EXPECT_GT(h, 0.0);  // dense positive init is cyclic
  EXPECT_NEAR(h, causal::AcyclicityValue(g.AsDense()), 1e-9);
}

TEST(ClusterGraphTest, PenaltyDrivesTowardDag) {
  Rng rng(7);
  ClusterCausalGraph g(5, rng);
  nn::Adam opt(g.Parameters(), 0.05f);
  double h0 = g.AcyclicityResidual();
  for (int step = 0; step < 200; ++step) {
    opt.ZeroGrad();
    g.AccumulatePenaltyGradient(/*beta1=*/1.0, /*beta2=*/4.0,
                                /*lambda=*/0.01);
    opt.Step();
  }
  double h1 = g.AcyclicityResidual();
  EXPECT_LT(h1, h0 * 0.2);
}

TEST(ClusterGraphTest, PenaltyReturnsResidual) {
  Rng rng(8);
  ClusterCausalGraph g(3, rng);
  double reported = g.AccumulatePenaltyGradient(0.5, 0.5, 0.0);
  EXPECT_NEAR(reported, g.AcyclicityResidual(), 1e-9);
}

TEST(ClusterGraphTest, L1PenaltyShrinksWeights) {
  Rng rng(9);
  ClusterCausalGraph g(4, rng);
  nn::Adam opt(g.Parameters(), 0.02f);
  double before = 0;
  for (float w : g.weights().data()) before += std::fabs(w);
  for (int step = 0; step < 100; ++step) {
    opt.ZeroGrad();
    g.AccumulatePenaltyGradient(0.0, 0.0, /*lambda=*/1.0);
    opt.Step();
  }
  double after = 0;
  for (float w : g.weights().data()) after += std::fabs(w);
  EXPECT_LT(after, before);
}

TEST(ClusterGraphTest, ItemLevelMatrixMatchesFormula) {
  Rng rng(10);
  ClusterCausalGraph g(2, rng);
  // Two items with hand-built assignments.
  nn::Tensor a = nn::Tensor::FromData(2, 2, {0.8f, 0.2f, 0.3f, 0.7f});
  std::vector<float> w = g.ItemLevelMatrix(a);
  ASSERT_EQ(w.size(), 4u);
  auto wc = [&](int i, int j) { return g.weights().At(i, j); };
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      double expected = 0.0;
      for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
          expected += a.At(x, i) * wc(i, j) * a.At(y, j);
      EXPECT_NEAR(w[x * 2 + y], expected, 1e-5);
    }
  }
}

TEST(ClusterGraphTest, ThresholdedGraphUsesSignedComparison) {
  Rng rng(11);
  ClusterCausalGraph g(3, rng);
  auto& wc = g.mutable_weights();
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) wc.At(i, j) = 0.0f;
  wc.At(0, 1) = 0.5f;
  wc.At(1, 2) = -0.9f;  // negative: not a causal edge under paper semantics
  causal::Graph thresholded = g.ThresholdedGraph(0.3);
  EXPECT_TRUE(thresholded.Edge(0, 1));
  EXPECT_FALSE(thresholded.Edge(1, 2));
  EXPECT_EQ(thresholded.NumEdges(), 1);
}

TEST(AugmentedLagrangianTest, Beta1AccumulatesResidual) {
  AugmentedLagrangian al(0.0, 0.5, 2.0, 0.9);
  al.Update(1.0);
  EXPECT_NEAR(al.beta1(), 0.5, 1e-12);
  al.Update(0.5);
  EXPECT_NEAR(al.beta1(), 0.5 + al.beta2() / 2.0 * 0.0 + 0.25, 1e-1);
}

TEST(AugmentedLagrangianTest, Beta2GrowsOnlyWithoutProgress) {
  AugmentedLagrangian al(0.0, 1.0, 2.0, 0.5);
  al.Update(1.0);  // first update: h_prev was inf, no growth
  EXPECT_NEAR(al.beta2(), 1.0, 1e-12);
  al.Update(0.9);  // 0.9 >= 0.5 * 1.0: grow
  EXPECT_NEAR(al.beta2(), 2.0, 1e-12);
  al.Update(0.1);  // 0.1 < 0.5 * 0.9: no growth
  EXPECT_NEAR(al.beta2(), 2.0, 1e-12);
}

TEST(AugmentedLagrangianTest, Beta2Capped) {
  AugmentedLagrangian al(0.0, 1.0, 10.0, 0.0, /*beta2_max=*/50.0);
  for (int i = 0; i < 10; ++i) al.Update(1.0);
  EXPECT_LE(al.beta2(), 50.0);
}

}  // namespace
}  // namespace causer::core
