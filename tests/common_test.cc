#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/log.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace causer {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.Uniform();
  EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, CategoricalAllZeroUniform) {
  Rng rng(23);
  std::vector<double> w = {0.0, 0.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 9000; ++i) ++counts[rng.Categorical(w)];
  for (int c : counts) EXPECT_GT(c, 2500);
}

TEST(RngTest, TruncatedGeometricBounds) {
  Rng rng(29);
  for (int i = 0; i < 500; ++i) {
    int v = rng.TruncatedGeometric(0.4, 6);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 6);
  }
}

TEST(RngTest, TruncatedGeometricZeroProbHitsMax) {
  Rng rng(31);
  EXPECT_EQ(rng.TruncatedGeometric(0.0, 5), 5);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  auto sample = rng.SampleWithoutReplacement(20, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(43);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TableTest, FormatsAlignedColumns) {
  Table t({"Model", "NDCG"});
  t.AddRow({"BPR", "1.28"});
  t.AddRow({"LongModelName", "12.34"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| Model"), std::string::npos);
  EXPECT_NE(s.find("LongModelName"), std::string::npos);
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(TableTest, PadsShortRows) {
  Table t({"A", "B", "C"});
  t.AddRow({"x"});
  EXPECT_EQ(t.num_rows(), 1);
  EXPECT_NE(t.ToString().find("x"), std::string::npos);
}

TEST(TableTest, SeparatorNotCountedAsRow) {
  Table t({"A"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  EXPECT_EQ(t.num_rows(), 2);
}

TEST(TableTest, FmtRounds) {
  EXPECT_EQ(Table::Fmt(1.2345, 2), "1.23");
  EXPECT_EQ(Table::Fmt(1.2355, 3), "1.236");
  EXPECT_EQ(Table::Fmt(-0.5, 1), "-0.5");
}

TEST(StopwatchTest, ElapsedNonNegativeAndMonotone) {
  Stopwatch sw;
  double a = sw.ElapsedSeconds();
  double b = sw.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 0.5);
}

TEST(LogTest, LevelFilterRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  LogMessage(LogLevel::kDebug, "should be suppressed");
  SetLogLevel(original);
}

TEST(LogTest, StreamCompiles) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  CAUSER_LOG(Info) << "value " << 42;  // suppressed, exercises the stream
  SetLogLevel(original);
}

}  // namespace
}  // namespace causer
