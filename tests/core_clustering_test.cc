#include <gtest/gtest.h>

#include <map>

#include "core/clustering.h"
#include "data/generator.h"
#include "nn/optimizer.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace causer::core {
namespace {

const data::Dataset& TinyData() {
  static data::Dataset d = data::MakeDataset(data::TinySpec());
  return d;
}

std::unique_ptr<ItemClusterer> MakeClusterer(float eta = 0.5f) {
  static Rng rng(55);
  return std::make_unique<ItemClusterer>(TinyData().item_features, 4, 8, 8,
                                         eta, rng);
}

TEST(ClustererTest, Shapes) {
  auto c = MakeClusterer();
  EXPECT_EQ(c->num_items(), TinyData().num_items);
  EXPECT_EQ(c->num_clusters(), 4);
  tensor::Tensor e = c->EncodeAll();
  EXPECT_EQ(e.rows(), TinyData().num_items);
  EXPECT_EQ(e.cols(), 8);
  tensor::Tensor a = c->AssignmentsAll();
  EXPECT_EQ(a.rows(), TinyData().num_items);
  EXPECT_EQ(a.cols(), 4);
}

TEST(ClustererTest, AssignmentsAreDistributions) {
  auto c = MakeClusterer();
  tensor::Tensor a = c->AssignmentsAll();
  for (int r = 0; r < a.rows(); ++r) {
    float total = 0.0f;
    for (int k = 0; k < a.cols(); ++k) {
      EXPECT_GT(a.At(r, k), 0.0f);
      total += a.At(r, k);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5);
  }
}

TEST(ClustererTest, SubsetMatchesFull) {
  auto c = MakeClusterer();
  tensor::Tensor all = c->AssignmentsAll();
  tensor::Tensor some = c->Assignments({3, 7});
  for (int k = 0; k < 4; ++k) {
    EXPECT_FLOAT_EQ(some.At(0, k), all.At(3, k));
    EXPECT_FLOAT_EQ(some.At(1, k), all.At(7, k));
  }
  tensor::Tensor enc_all = c->EncodeAll();
  tensor::Tensor enc_some = c->EncodeItems({5});
  for (int j = 0; j < 8; ++j)
    EXPECT_FLOAT_EQ(enc_some.At(0, j), enc_all.At(5, j));
}

TEST(ClustererTest, LowTemperatureSharpensAssignments) {
  auto soft = MakeClusterer(10.0f);
  auto hard = MakeClusterer(0.01f);
  auto max_of = [](const tensor::Tensor& a, int r) {
    float m = 0.0f;
    for (int k = 0; k < a.cols(); ++k) m = std::max(m, a.At(r, k));
    return m;
  };
  tensor::Tensor sa = soft->AssignmentsAll();
  tensor::Tensor ha = hard->AssignmentsAll();
  double soft_avg = 0, hard_avg = 0;
  for (int r = 0; r < sa.rows(); ++r) {
    soft_avg += max_of(sa, r);
    hard_avg += max_of(ha, r);
  }
  EXPECT_GT(hard_avg, soft_avg);
}

TEST(ClustererTest, LossesDecreaseUnderOptimization) {
  auto c = MakeClusterer();
  nn::Adam opt(c->Parameters(), 0.02f);
  double first_clus = c->ClusteringLoss().Item();
  double first_rec = c->ReconstructionLoss().Item();
  for (int step = 0; step < 80; ++step) {
    tensor::Tensor loss =
        tensor::Add(c->ClusteringLoss(), c->ReconstructionLoss());
    opt.ZeroGrad();
    tensor::Backward(loss);
    opt.Step();
  }
  EXPECT_LT(c->ClusteringLoss().Item(), first_clus);
  EXPECT_LT(c->ReconstructionLoss().Item(), first_rec);
}

TEST(ClustererTest, RecoversTrueClustersAboveChance) {
  // After optimizing Eqs. 7+8, hard assignments should align with the
  // generator's true clusters well above the random-purity baseline.
  auto c = MakeClusterer();
  nn::Adam opt(c->Parameters(), 0.02f);
  for (int step = 0; step < 250; ++step) {
    tensor::Tensor loss =
        tensor::Add(c->ClusteringLoss(), c->ReconstructionLoss());
    opt.ZeroGrad();
    tensor::Backward(loss);
    opt.Step();
  }
  std::vector<int> hard = c->HardAssignments();
  // Purity: for each learned cluster take its majority true cluster.
  std::map<int, std::map<int, int>> table;
  for (int i = 0; i < TinyData().num_items; ++i) {
    table[hard[i]][TinyData().item_true_cluster[i]]++;
  }
  int majority = 0;
  for (const auto& [learned, counts] : table) {
    int best = 0;
    for (const auto& [truth, n] : counts) best = std::max(best, n);
    majority += best;
  }
  double purity = static_cast<double>(majority) / TinyData().num_items;
  EXPECT_GT(purity, 0.5) << "purity " << purity;  // chance is ~0.25-0.4
}

TEST(ClustererTest, HardAssignmentsInRange) {
  auto c = MakeClusterer();
  for (int h : c->HardAssignments()) {
    EXPECT_GE(h, 0);
    EXPECT_LT(h, 4);
  }
}

}  // namespace
}  // namespace causer::core
