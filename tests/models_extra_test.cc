#include <gtest/gtest.h>

#include <cmath>

#include "data/generator.h"
#include "data/split.h"
#include "models/bpr.h"
#include "models/gru4rec.h"
#include "models/mmsarec.h"
#include "models/narm.h"
#include "models/sasrec.h"
#include "models/stamp.h"
#include "models/vtrnn.h"

// Behavioural contracts of the baseline models beyond the smoke checks of
// models_test: seed determinism, capacity (overfit a deterministic
// pattern), feature sensitivity of the side-information models, and the
// evaluation-protocol interplay.

namespace causer::models {
namespace {

const data::Dataset& TinyData() {
  static data::Dataset d = data::MakeDataset(data::TinySpec());
  return d;
}

ModelConfig TinyConfig(uint64_t seed = 7) {
  ModelConfig c;
  c.num_users = TinyData().num_users;
  c.num_items = TinyData().num_items;
  c.item_features = &TinyData().item_features;
  c.embedding_dim = 8;
  c.hidden_dim = 8;
  c.seed = seed;
  return c;
}

TEST(DeterminismTest, SameSeedSameTraining) {
  data::Split split = data::LeaveLastOut(TinyData());
  Gru4Rec a(TinyConfig(11)), b(TinyConfig(11));
  double la = a.TrainEpoch(split.train);
  double lb = b.TrainEpoch(split.train);
  EXPECT_DOUBLE_EQ(la, lb);
  const auto& inst = split.test[0];
  EXPECT_EQ(a.ScoreAll(inst.user, inst.history),
            b.ScoreAll(inst.user, inst.history));
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  data::Split split = data::LeaveLastOut(TinyData());
  Gru4Rec a(TinyConfig(11)), b(TinyConfig(12));
  a.TrainEpoch(split.train);
  b.TrainEpoch(split.train);
  const auto& inst = split.test[0];
  EXPECT_NE(a.ScoreAll(inst.user, inst.history),
            b.ScoreAll(inst.user, inst.history));
}

TEST(CapacityTest, Gru4RecOverfitsDeterministicChain) {
  // All users repeat the same chain 0 -> 1 -> 2; after the first item the
  // model must put the true successor on top.
  data::Dataset d;
  d.name = "chain";
  d.num_users = 30;
  d.num_items = 6;
  for (int u = 0; u < d.num_users; ++u) {
    data::Sequence seq;
    seq.user = u;
    for (int item : {0, 1, 2}) {
      seq.steps.push_back({{item}, {-1}, {-1}});
    }
    d.sequences.push_back(seq);
  }
  ModelConfig cfg;
  cfg.num_users = d.num_users;
  cfg.num_items = d.num_items;
  cfg.embedding_dim = 8;
  cfg.hidden_dim = 8;
  Gru4Rec model(cfg);
  for (int e = 0; e < 30; ++e) model.TrainEpoch(d.sequences);
  std::vector<data::Step> history = {{{0}, {-1}, {-1}}};
  auto scores = model.ScoreAll(0, history);
  int best = 0;
  for (int i = 1; i < d.num_items; ++i)
    if (scores[i] > scores[best]) best = i;
  EXPECT_EQ(best, 1) << "after item 0 the chain always continues with 1";
}

TEST(FeatureModelsTest, VtrnnReactsToFeatures) {
  // Two items with identical interaction roles but different features
  // must produce different step inputs for VTRNN.
  data::Split split = data::LeaveLastOut(TinyData());
  Vtrnn model(TinyConfig());
  model.TrainEpoch(split.train);
  std::vector<data::Step> h1 = {{{0}, {-1}, {-1}}};
  std::vector<data::Step> h2 = {{{1}, {-1}, {-1}}};
  EXPECT_NE(model.ScoreAll(0, h1), model.ScoreAll(0, h2));
}

TEST(FeatureModelsTest, ConstructionRequiresFeatures) {
  ModelConfig cfg = TinyConfig();
  cfg.item_features = nullptr;
  EXPECT_DEATH({ Vtrnn model(cfg); }, "item_features");
  EXPECT_DEATH({ MmsaRec model(cfg); }, "item_features");
}

TEST(ProtocolTest, EmptyHistoryNeutralScores) {
  Gru4Rec model(TinyConfig());
  auto scores = model.ScoreAll(0, {});
  for (float s : scores) EXPECT_EQ(s, 0.0f);
}

TEST(ProtocolTest, BasketStepAveragesEmbeddings) {
  // A basket of identical items must equal the single-item step.
  SasRec model(TinyConfig());
  std::vector<data::Step> single = {{{3}, {-1}, {-1}}};
  std::vector<data::Step> tripled = {{{3, 3, 3}, {-1, -1, -1}, {-1, -1, -1}}};
  // Generator never emits duplicate items, but the model must handle them
  // gracefully (mean of identical rows = the row, up to float rounding).
  auto a = model.ScoreAll(0, single);
  auto b = model.ScoreAll(0, tripled);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-4);
}

TEST(ProtocolTest, StampUsesLastStepStrongly) {
  data::Split split = data::LeaveLastOut(TinyData());
  Stamp model(TinyConfig());
  for (int e = 0; e < 3; ++e) model.TrainEpoch(split.train);
  std::vector<data::Step> h1 = {{{1}, {-1}, {-1}}, {{2}, {-1}, {-1}}};
  std::vector<data::Step> h2 = {{{1}, {-1}, {-1}}, {{9}, {-1}, {-1}}};
  EXPECT_NE(model.ScoreAll(0, h1), model.ScoreAll(0, h2));
}

TEST(ProtocolTest, BprIgnoresSeedOfHistoryButNotUser) {
  data::Split split = data::LeaveLastOut(TinyData());
  Bpr model(TinyConfig());
  model.TrainEpoch(split.train);
  std::vector<data::Step> h = {{{1}, {-1}, {-1}}};
  EXPECT_NE(model.ScoreAll(0, h), model.ScoreAll(1, h))
      << "BPR personalizes by user";
}

}  // namespace
}  // namespace causer::models
