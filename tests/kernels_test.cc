// Kernel equivalence suite: the packed/blocked production kernel must be
// bit-identical to the naive reference for every shape, transpose-flag
// combination, and thread count — the contract that keeps training loss
// trajectories and eval metrics independent of --threads.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "eval/metrics.h"
#include "tensor/autograd.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace causer::tensor {
namespace {

std::vector<float> RandomBuffer(size_t size, Rng& rng) {
  std::vector<float> out(size);
  // A mix of magnitudes plus exact zeros: zeros used to take a skip branch
  // in the old kernel, so keep them represented.
  for (auto& v : out) {
    v = static_cast<float>(rng.Uniform(-2.0, 2.0));
    if (rng.Uniform(0.0, 1.0) < 0.1) v = 0.0f;
  }
  return out;
}

void ExpectBitwiseEqual(const std::vector<float>& expected,
                        const std::vector<float>& actual, int n, int m, int p,
                        bool ta, bool tb, int threads) {
  ASSERT_EQ(expected.size(), actual.size());
  bool equal = std::memcmp(expected.data(), actual.data(),
                           expected.size() * sizeof(float)) == 0;
  EXPECT_TRUE(equal) << "kernel mismatch at n=" << n << " m=" << m
                     << " p=" << p << " ta=" << ta << " tb=" << tb
                     << " threads=" << threads;
}

TEST(KernelEquivalenceTest, MatchesNaiveAcrossShapesFlagsAndThreads) {
  const int ns[] = {1, 3, 8, 33, 64};
  const int ms[] = {1, 5, 17, 128};
  const int ps[] = {1, 5, 17, 128};
  Rng rng(20240801);
  for (int threads : {1, 2, 8}) {
    SetDefaultThreads(threads);
    for (int n : ns) {
      for (int m : ms) {
        for (int p : ps) {
          for (bool ta : {false, true}) {
            for (bool tb : {false, true}) {
              auto a = RandomBuffer(static_cast<size_t>(n) * m, rng);
              auto b = RandomBuffer(static_cast<size_t>(m) * p, rng);
              // Nonzero initial C: both entry points must *accumulate*.
              auto c0 = RandomBuffer(static_cast<size_t>(n) * p, rng);
              auto expected = c0;
              auto actual = c0;
              kernels::MatMulAddNaive(a.data(), b.data(), expected.data(), n,
                                      m, p, ta, tb);
              kernels::MatMulAdd(a.data(), b.data(), actual.data(), n, m, p,
                                 ta, tb);
              ExpectBitwiseEqual(expected, actual, n, m, p, ta, tb, threads);
            }
          }
        }
      }
    }
  }
  SetDefaultThreads(1);
}

TEST(KernelEquivalenceTest, MatMulTopKMatchesNaiveGemvPlusTopK) {
  // The fused serving kernel must reproduce "materialize the [n,p] score
  // matrix, then eval::TopK each row" bit-for-bit — same dot-product
  // rounding as MatMulAddNaive, same score-descending / index-ascending
  // total order — at every thread count, including p straddling the
  // column-tile size and k > p (short rows padded with index -1).
  const int ns[] = {1, 3, 17};
  const int ms[] = {1, 8, 33};
  const int ps[] = {1, 7, 100, 700};
  const int ks[] = {1, 5, 64, 1000};
  Rng rng(20260806);
  for (int threads : {1, 2, 8}) {
    SetDefaultThreads(threads);
    for (int n : ns) {
      for (int m : ms) {
        for (int p : ps) {
          for (int k : ks) {
            auto a = RandomBuffer(static_cast<size_t>(n) * m, rng);
            auto b = RandomBuffer(static_cast<size_t>(p) * m, rng);
            std::vector<kernels::TopKEntry> fused(static_cast<size_t>(n) *
                                                  k);
            kernels::MatMulTopK(a.data(), b.data(), n, m, p, k,
                                fused.data());
            for (int i = 0; i < n; ++i) {
              std::vector<float> scores(p, 0.0f);
              kernels::MatMulAddNaive(a.data() + static_cast<size_t>(i) * m,
                                      b.data(), scores.data(), 1, m, p,
                                      false, true);
              auto ranked = eval::TopK(scores, k);
              const kernels::TopKEntry* row =
                  fused.data() + static_cast<size_t>(i) * k;
              for (int j = 0; j < k; ++j) {
                if (j < static_cast<int>(ranked.size())) {
                  ASSERT_EQ(row[j].index, ranked[j])
                      << "row " << i << " rank " << j << " n=" << n
                      << " m=" << m << " p=" << p << " k=" << k
                      << " threads=" << threads;
                  ASSERT_EQ(row[j].score, scores[ranked[j]]);
                } else {
                  ASSERT_EQ(row[j].index, -1);
                }
              }
            }
          }
        }
      }
    }
  }
  SetDefaultThreads(1);
}

TEST(KernelEquivalenceTest, GraphMatMulForwardAndBackwardBitExact) {
  // End-to-end through the op layer: forward values and both operand
  // gradients (which exercise the transpose_b and transpose_a kernel paths)
  // are identical across thread counts.
  Rng rng(7);
  auto run = [&](int threads) {
    SetDefaultThreads(threads);
    Rng local(42);
    Tensor a = Tensor::RandomNormal(33, 64, 1.0f, local, true);
    Tensor b = Tensor::RandomNormal(64, 128, 1.0f, local, true);
    Tensor c = tensor::MatMul(a, b);
    Tensor loss = tensor::Sum(c);
    tensor::Backward(loss);
    struct Out {
      std::vector<float> value, ga, gb;
    } out;
    out.value.assign(c.data().begin(), c.data().end());
    out.ga.assign(a.grad().begin(), a.grad().end());
    out.gb.assign(b.grad().begin(), b.grad().end());
    SetDefaultThreads(1);
    return out;
  };
  auto seq = run(1);
  for (int threads : {2, 8}) {
    auto par = run(threads);
    EXPECT_EQ(seq.value, par.value) << "forward, threads=" << threads;
    EXPECT_EQ(seq.ga, par.ga) << "dA, threads=" << threads;
    EXPECT_EQ(seq.gb, par.gb) << "dB, threads=" << threads;
  }
}

TEST(KernelEquivalenceTest, ZeroRowsNoLongerSkipNanPropagation) {
  // The old kernel skipped av == 0.0f, which (as a side effect) suppressed
  // NaN/Inf propagation from B rows multiplied by zero. IEEE semantics say
  // 0 * inf = nan; the branchless kernels propagate it. No production path
  // relies on skipping (weights and activations are finite), so the
  // kernels agree with each other — and with plain float math.
  const float inf = std::numeric_limits<float>::infinity();
  std::vector<float> a = {0.0f, 1.0f};        // [1, 2]
  std::vector<float> b = {inf, 2.0f};          // [2, 1]
  std::vector<float> naive = {0.0f}, packed = {0.0f};
  kernels::MatMulAddNaive(a.data(), b.data(), naive.data(), 1, 2, 1, false,
                          false);
  kernels::MatMulAdd(a.data(), b.data(), packed.data(), 1, 2, 1, false,
                     false);
  EXPECT_TRUE(std::isnan(naive[0]));
  EXPECT_TRUE(std::isnan(packed[0]));
}

TEST(KernelEquivalenceTest, ZeroTimesFiniteKeepsExactZeroSums) {
  // First-step GRU/LSTM matmuls multiply an all-zero state row by finite
  // weights: the branchless kernel must still produce exact +0 results
  // (0*b = ±0 and +0 + -0 = +0 under round-to-nearest).
  Rng rng(3);
  const int m = 17, p = 33;
  std::vector<float> a(m, 0.0f);
  auto b = RandomBuffer(static_cast<size_t>(m) * p, rng);
  std::vector<float> c(p, 0.0f);
  kernels::MatMulAdd(a.data(), b.data(), c.data(), 1, m, p, false, false);
  for (int j = 0; j < p; ++j) {
    EXPECT_EQ(c[j], 0.0f);
    EXPECT_FALSE(std::signbit(c[j])) << "expected +0 at j=" << j;
  }
}

}  // namespace
}  // namespace causer::tensor
