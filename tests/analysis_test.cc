#include <gtest/gtest.h>

#include "eval/analysis.h"

namespace causer::eval {
namespace {

TEST(PurityTest, PerfectClusteringIsOne) {
  std::vector<int> pred = {0, 0, 1, 1, 2};
  EXPECT_DOUBLE_EQ(ClusterPurity(pred, pred), 1.0);
}

TEST(PurityTest, PermutedLabelsStillPerfect) {
  std::vector<int> pred = {2, 2, 0, 0, 1};
  std::vector<int> truth = {0, 0, 1, 1, 2};
  EXPECT_DOUBLE_EQ(ClusterPurity(pred, truth), 1.0);
}

TEST(PurityTest, MixedClusterPenalized) {
  std::vector<int> pred = {0, 0, 0, 0};
  std::vector<int> truth = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(ClusterPurity(pred, truth), 0.5);
}

TEST(PurityTest, SingletonClustersTriviallyPure) {
  std::vector<int> pred = {0, 1, 2, 3};
  std::vector<int> truth = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(ClusterPurity(pred, truth), 1.0);
}

TEST(MajorityMappingTest, MapsToMostFrequentLabel) {
  std::vector<int> pred = {0, 0, 0, 1, 1};
  std::vector<int> truth = {2, 2, 1, 0, 0};
  auto m = MajorityMapping(pred, truth, 2, 3);
  EXPECT_EQ(m[0], 2);
  EXPECT_EQ(m[1], 0);
}

TEST(MajorityMappingTest, EmptyPredictedClusterUnmapped) {
  std::vector<int> pred = {0, 0};
  std::vector<int> truth = {1, 1};
  auto m = MajorityMapping(pred, truth, 3, 2);
  EXPECT_EQ(m[0], 1);
  EXPECT_EQ(m[1], -1);
  EXPECT_EQ(m[2], -1);
}

TEST(CompareEdgesTest, PerfectRecovery) {
  causal::Graph g(3);
  g.SetEdge(0, 1);
  g.SetEdge(1, 2);
  auto r = CompareEdges(g, g);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
  EXPECT_EQ(r.true_positives, 2);
}

TEST(CompareEdgesTest, PartialRecovery) {
  causal::Graph truth(3);
  truth.SetEdge(0, 1);
  truth.SetEdge(1, 2);
  causal::Graph learned(3);
  learned.SetEdge(0, 1);
  learned.SetEdge(0, 2);  // false positive
  auto r = CompareEdges(learned, truth);
  EXPECT_DOUBLE_EQ(r.precision, 0.5);
  EXPECT_DOUBLE_EQ(r.recall, 0.5);
}

TEST(CompareEdgesTest, EmptyLearnedGraph) {
  causal::Graph truth(2);
  truth.SetEdge(0, 1);
  auto r = CompareEdges(causal::Graph(2), truth);
  EXPECT_DOUBLE_EQ(r.precision, 0.0);
  EXPECT_DOUBLE_EQ(r.recall, 0.0);
  EXPECT_DOUBLE_EQ(r.f1, 0.0);
}

TEST(CompareEdgesMappedTest, PermutedClusterIdsRecovered) {
  // True graph over 2 clusters: 0 -> 1. Learned graph uses swapped ids:
  // learned cluster 1 is true 0, learned 0 is true 1; learned edge 1 -> 0.
  causal::Graph truth(2);
  truth.SetEdge(0, 1);
  causal::Graph learned(2);
  learned.SetEdge(1, 0);
  std::vector<int> pred = {1, 1, 0, 0};
  std::vector<int> tru = {0, 0, 1, 1};
  auto r = CompareEdgesMapped(learned, truth, pred, tru);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
}

TEST(CompareEdgesMappedTest, CollapsedClustersDropEdges) {
  causal::Graph truth(2);
  truth.SetEdge(0, 1);
  causal::Graph learned(2);
  learned.SetEdge(0, 1);
  // Both learned clusters map to true cluster 0 -> edge unmatchable.
  std::vector<int> pred = {0, 1};
  std::vector<int> tru = {0, 0};
  auto r = CompareEdgesMapped(learned, truth, pred, tru);
  EXPECT_EQ(r.learned_edges, 0);
  EXPECT_DOUBLE_EQ(r.recall, 0.0);
}

}  // namespace
}  // namespace causer::eval
