// Serving-stack chaos suite: repeated hot reloads under concurrent wire
// traffic with network faults firing (torn response frames, connection
// resets, stalled readers, widened reload-vs-batch races). The gate
// mirrors the chaos-reload CI job: every kOk response must be bit-exact
// for the model version stamped on it (versions alternate between two
// known weight sets), every rejection must be one of the retryable
// statuses, retries must succeed within their deadline budgets, and the
// whole stack must drain cleanly — no hangs, nothing for ASan.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "models/gru4rec.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace causer::serve {
namespace {

const data::Dataset& TinyData() {
  static data::Dataset d = data::MakeDataset(data::TinySpec());
  return d;
}

const data::Split& TinySplit() {
  static data::Split s = data::LeaveLastOut(TinyData());
  return s;
}

std::shared_ptr<models::Gru4Rec> GruModel(uint64_t seed) {
  models::ModelConfig config;
  config.num_users = TinyData().num_users;
  config.num_items = TinyData().num_items;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  config.seed = seed;
  return std::make_shared<models::Gru4Rec>(config);
}

constexpr int kTopK = 5;

/// Precomputed expectation for one (model, test instance) pair.
struct Expected {
  std::vector<int32_t> items;
  std::vector<float> scores;
};

Expected ExpectedFor(models::SequentialRecommender& model, int index) {
  const auto& inst = TinySplit().test[index];
  auto scores = model.ScoreAll(inst.user, inst.history);
  auto ranked = eval::TopK(scores, kTopK);
  Expected e;
  for (int item : ranked) {
    e.items.push_back(item);
    e.scores.push_back(scores[item]);
  }
  return e;
}

TEST(ChaosTest, ReloadsUnderFaultyTrafficStayBitExactPerVersion) {
  // Version parity identifies the weights: v1 = a, the reloader then
  // alternates b, a, b, ... so odd versions are always a, even always b.
  auto a = GruModel(1);
  auto b = GruModel(2);
  const int num_instances =
      std::min<int>(8, static_cast<int>(TinySplit().test.size()));
  std::vector<Expected> expect_a(num_instances), expect_b(num_instances);
  for (int i = 0; i < num_instances; ++i) {
    expect_a[i] = ExpectedFor(*a, i);
    expect_b[i] = ExpectedFor(*b, i);
  }

  ServingConfig sc;
  sc.top_k = kTopK;
  sc.batch_max = 8;
  sc.max_sessions = 6;  // LRU churn: rebuilds interleave with reloads
  ServingEngine engine(a, sc);
  ServerConfig server_config;
  server_config.queue_depth = 64;
  server_config.workers = 2;
  server_config.idle_timeout_ms = 5000;
  server_config.on_reload = [&] {
    // Wire-triggered reloads flip to whichever weights the version
    // parity says comes next.
    const uint64_t next = engine.active_version() + 1;
    return engine.Reload(next % 2 == 0 ? b : a) != 0;
  };
  Server server(engine, server_config);
  ASSERT_TRUE(server.Start());

  // The reload-vs-batch race window stays wide for the whole run.
  fault::Arm("serve.reload_mid_batch", 1, 1000000000);

  std::atomic<bool> running{true};
  std::atomic<long> ok_count{0};
  std::atomic<long> retried_count{0};
  std::atomic<long> transport_failures{0};

  // Reloader: >= 5 version swaps while traffic flows, then keeps going
  // until the clients finish.
  std::thread reloader([&] {
    uint64_t version = 1;
    while (running.load()) {
      ++version;
      ASSERT_EQ(engine.Reload(version % 2 == 0 ? b : a), version);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Fault thread: periodically re-arm the network fault points with
  // small hit offsets so they keep firing across both ends of every
  // connection (client and server share the process-wide harness).
  std::thread chaos([&] {
    int round = 0;
    while (running.load()) {
      fault::Arm("net.torn_write", 7 + (round % 5), 1);
      fault::Arm("net.conn_reset", 9 + (round % 7), 1);
      fault::Arm("net.slow_reader", 3 + (round % 3), 2);
      ++round;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    fault::Disarm("net.torn_write");
    fault::Disarm("net.conn_reset");
    fault::Disarm("net.slow_reader");
  });

  const int kClients = 4;
  const int kRequestsPerClient = 80;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(0xC0FFEE + static_cast<uint64_t>(c));
      ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const int index = (c + i) % num_instances;
        wire::RequestFrame request;
        request.request_id = static_cast<uint32_t>(c * 1000 + i);
        request.user = TinySplit().test[index].user;
        request.deadline_ms = 10000;
        for (const auto& step : TinySplit().test[index].history) {
          request.bootstrap.emplace_back(step.items.begin(),
                                         step.items.end());
        }
        wire::ResponseFrame response;
        if (!client.CallWithRetry(request, &response)) {
          // Transport failure after every retry: tolerated under chaos,
          // but it must be the exception, not the rule (asserted below).
          ++transport_failures;
          continue;
        }
        if (response.attempts > 1) ++retried_count;
        switch (response.status) {
          case wire::Status::kOk: {
            ++ok_count;
            ASSERT_GE(response.model_version, 1u);
            const Expected& expected = response.model_version % 2 == 1
                                           ? expect_a[index]
                                           : expect_b[index];
            ASSERT_EQ(response.items, expected.items)
                << "client " << c << " request " << i << " version "
                << response.model_version;
            ASSERT_EQ(response.scores, expected.scores)
                << "client " << c << " request " << i << " version "
                << response.model_version;
            break;
          }
          case wire::Status::kQueueFull:
          case wire::Status::kShuttingDown:
            break;  // the retryable rejections; fine under chaos
          default:
            FAIL() << "unexpected status "
                   << wire::StatusName(response.status) << " (client " << c
                   << " request " << i << ")";
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  running.store(false);
  reloader.join();
  chaos.join();
  fault::DisarmAll();

  // >= 5 reloads happened (the reloader swaps every 5ms for the whole
  // run) and the vast majority of traffic was served and verified.
  EXPECT_GE(engine.active_version(), 6u);
  const long total = static_cast<long>(kClients) * kRequestsPerClient;
  EXPECT_GE(ok_count.load(), total / 2);
  EXPECT_LE(transport_failures.load(), total / 10);

  // Clean drain with the faults disarmed: every in-flight request is
  // answered, later ones rejected — nothing hangs.
  server.Shutdown();
  engine.Stop();
}

}  // namespace
}  // namespace causer::serve
