#include <gtest/gtest.h>

#include "core/explainer.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/explanation_eval.h"
#include "models/gru4rec.h"
#include "models/narm.h"

namespace causer {
namespace {

// End-to-end checks of the paper's central claims on a causally generated
// dataset small enough for CI. Uses a fixed seed; assertions are
// deliberately tolerant (directional, not exact).

data::DatasetSpec IntegrationSpec() {
  data::DatasetSpec spec = data::TinySpec();
  spec.num_users = 150;
  spec.num_items = 60;
  spec.num_clusters = 6;
  spec.cluster_edge_prob = 0.4;
  spec.min_len = 4;
  spec.max_len = 10;
  spec.seed = 2024;
  return spec;
}

const data::Dataset& Data() {
  static data::Dataset d = data::MakeDataset(IntegrationSpec());
  return d;
}

const data::Split& SplitData() {
  static data::Split s = data::LeaveLastOut(Data());
  return s;
}

core::CauserConfig Config() {
  core::CauserConfig cfg =
      core::DefaultCauserConfig(Data(), core::Backbone::kGru);
  return cfg;
}

struct TrainedModels {
  std::unique_ptr<core::CauserModel> causer;
  std::unique_ptr<core::CauserModel> no_causal;
  std::unique_ptr<core::CauserModel> no_att;
  std::unique_ptr<models::Gru4Rec> gru;
  double causer_ndcg = 0;
  double no_causal_ndcg = 0;
  double gru_ndcg = 0;
};

const TrainedModels& Trained() {
  static TrainedModels* t = [] {
    auto* m = new TrainedModels();
    models::TrainConfig tc{.max_epochs = 8, .patience = 2};

    m->causer = std::make_unique<core::CauserModel>(Config());
    core::TrainCauser(*m->causer, SplitData(), tc);
    m->causer_ndcg =
        eval::Evaluate(models::MakeScorer(*m->causer), SplitData().test, 5)
            .ndcg;

    core::CauserConfig nc = Config();
    nc.use_causal = false;
    m->no_causal = std::make_unique<core::CauserModel>(nc);
    core::TrainCauser(*m->no_causal, SplitData(), tc);
    m->no_causal_ndcg =
        eval::Evaluate(models::MakeScorer(*m->no_causal), SplitData().test, 5)
            .ndcg;

    core::CauserConfig na = Config();
    na.use_attention = false;
    m->no_att = std::make_unique<core::CauserModel>(na);
    core::TrainCauser(*m->no_att, SplitData(), tc);

    models::ModelConfig gc;
    gc.num_users = Data().num_users;
    gc.num_items = Data().num_items;
    gc.item_features = &Data().item_features;
    m->gru = std::make_unique<models::Gru4Rec>(gc);
    models::Fit(*m->gru, SplitData(), tc);
    m->gru_ndcg =
        eval::Evaluate(models::MakeScorer(*m->gru), SplitData().test, 5).ndcg;
    return m;
  }();
  return *t;
}

TEST(IntegrationTest, AllModelsLearnSomething) {
  EXPECT_GT(Trained().causer_ndcg, 0.02);
  EXPECT_GT(Trained().gru_ndcg, 0.02);
}

TEST(IntegrationTest, CauserBeatsItsBackboneOnCausalData) {
  // The paper's headline claim, scaled down: on data generated from a
  // causal process, Causer outperforms the plain GRU4Rec backbone.
  EXPECT_GT(Trained().causer_ndcg, Trained().gru_ndcg * 0.95)
      << "causer " << Trained().causer_ndcg << " gru " << Trained().gru_ndcg;
}

TEST(IntegrationTest, CausalModuleContributes) {
  // Table V shape: the -causal ablation does not beat the full model by a
  // meaningful margin.
  EXPECT_GT(Trained().causer_ndcg, Trained().no_causal_ndcg * 0.9)
      << "full " << Trained().causer_ndcg << " -causal "
      << Trained().no_causal_ndcg;
}

TEST(IntegrationTest, LearnedGraphRelatedToTruth) {
  // The learned cluster graph should overlap the generator's true DAG far
  // better than chance. Because cluster identities are permuted, compare
  // via item-level causal weights: pairs (a, b) whose true clusters have
  // an edge should receive higher W than pairs without.
  auto& model = *Trained().causer;
  const auto& d = Data();
  double with_edge = 0.0, without_edge = 0.0;
  int n_with = 0, n_without = 0;
  Rng rng(31);
  for (int trial = 0; trial < 4000; ++trial) {
    int a = rng.UniformInt(d.num_items);
    int b = rng.UniformInt(d.num_items);
    if (a == b) continue;
    bool edge = d.true_cluster_graph.Edge(d.item_true_cluster[a],
                                          d.item_true_cluster[b]);
    double w = model.ItemCausalWeight(a, b);
    if (edge) {
      with_edge += w;
      ++n_with;
    } else {
      without_edge += w;
      ++n_without;
    }
  }
  ASSERT_GT(n_with, 50);
  ASSERT_GT(n_without, 50);
  EXPECT_GT(with_edge / n_with, without_edge / n_without)
      << "mean W with true edge " << with_edge / n_with << " vs without "
      << without_edge / n_without;
}

TEST(IntegrationTest, CausalExplanationsBeatAttentionOnly) {
  // Fig. 7 shape: explanations using the causal scores align better with
  // the ground-truth causes than pure attention weights.
  Rng rng(17);
  auto examples =
      eval::BuildExplanationSet(SplitData().test, Data(), 200, rng);
  ASSERT_GT(examples.size(), 20u);

  auto full = core::MakeCauserExplainer(*Trained().causer,
                                        core::ExplainMode::kFull);
  auto attention_only = core::MakeCauserExplainer(
      *Trained().no_causal, core::ExplainMode::kAttention);
  double full_ndcg = eval::EvaluateExplanations(full, examples, 3).ndcg;
  double att_ndcg =
      eval::EvaluateExplanations(attention_only, examples, 3).ndcg;
  EXPECT_GT(full_ndcg, att_ndcg * 0.95)
      << "full " << full_ndcg << " attention " << att_ndcg;
}

TEST(IntegrationTest, AcyclicityResidualSmallAfterTraining) {
  EXPECT_LT(Trained().causer->AcyclicityResidual(), 1.0);
}

}  // namespace
}  // namespace causer
