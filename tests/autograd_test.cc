#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace causer::tensor {
namespace {

/// Verifies the analytic gradient of `loss_fn` w.r.t. every entry of every
/// leaf against central differences. `loss_fn` must rebuild the graph from
/// the current leaf values on each call.
void CheckGradients(std::vector<Tensor> leaves,
                    const std::function<Tensor()>& loss_fn,
                    double tol = 2e-2) {
  Tensor loss = loss_fn();
  for (auto& leaf : leaves) leaf.ZeroGrad();
  Backward(loss);
  auto value = [&]() { return static_cast<double>(loss_fn().Item()); };
  for (auto& leaf : leaves) {
    for (int r = 0; r < leaf.rows(); ++r) {
      for (int c = 0; c < leaf.cols(); ++c) {
        double numeric = NumericalGradient(value, leaf, r, c);
        double analytic = leaf.GradAt(r, c);
        double scale = std::max({1.0, std::fabs(numeric), std::fabs(analytic)});
        EXPECT_NEAR(analytic, numeric, tol * scale)
            << "leaf entry (" << r << "," << c << ")";
      }
    }
  }
}

Rng& TestRng() {
  static Rng rng(12345);
  return rng;
}

Tensor RandLeaf(int r, int c) {
  return Tensor::RandomUniform(r, c, -1.0f, 1.0f, TestRng(),
                               /*requires_grad=*/true);
}

TEST(GradCheck, Add) {
  Tensor a = RandLeaf(2, 3), b = RandLeaf(2, 3);
  CheckGradients({a, b}, [&] { return Sum(Mul(Add(a, b), Add(a, b))); });
}

TEST(GradCheck, AddBroadcastBias) {
  Tensor a = RandLeaf(3, 2), bias = RandLeaf(1, 2);
  CheckGradients({a, bias}, [&] { return SquaredNorm(Add(a, bias)); });
}

TEST(GradCheck, AddBroadcastColumn) {
  Tensor a = RandLeaf(3, 2), col = RandLeaf(3, 1);
  CheckGradients({a, col}, [&] { return SquaredNorm(Add(a, col)); });
}

TEST(GradCheck, SubAndScalarMul) {
  Tensor a = RandLeaf(2, 2), b = RandLeaf(2, 2);
  CheckGradients({a, b},
                 [&] { return SquaredNorm(ScalarMul(Sub(a, b), 2.5f)); });
}

TEST(GradCheck, MulElementwise) {
  Tensor a = RandLeaf(2, 3), b = RandLeaf(2, 3);
  CheckGradients({a, b}, [&] { return Sum(Mul(a, b)); });
}

TEST(GradCheck, MulBroadcastColumn) {
  Tensor h = RandLeaf(4, 3), w = RandLeaf(4, 1);
  CheckGradients({h, w}, [&] { return SquaredNorm(Mul(h, w)); });
}

TEST(GradCheck, Div) {
  Tensor a = RandLeaf(2, 2);
  Tensor b = Tensor::RandomUniform(2, 2, 1.0f, 2.0f, TestRng(), true);
  CheckGradients({a, b}, [&] { return Sum(Div(a, b)); });
}

TEST(GradCheck, MatMul) {
  Tensor a = RandLeaf(2, 3), b = RandLeaf(3, 4);
  CheckGradients({a, b}, [&] { return SquaredNorm(MatMul(a, b)); });
}

TEST(GradCheck, MatMulChain) {
  Tensor a = RandLeaf(2, 3), b = RandLeaf(3, 3), c = RandLeaf(3, 2);
  CheckGradients({a, b, c},
                 [&] { return Sum(MatMul(MatMul(a, b), c)); });
}

TEST(GradCheck, Transpose) {
  Tensor a = RandLeaf(2, 3);
  CheckGradients({a}, [&] { return SquaredNorm(MatMul(Transpose(a), a)); });
}

TEST(GradCheck, Sigmoid) {
  Tensor a = RandLeaf(2, 3);
  CheckGradients({a}, [&] { return Sum(Sigmoid(a)); });
}

TEST(GradCheck, Tanh) {
  Tensor a = RandLeaf(2, 3);
  CheckGradients({a}, [&] { return SquaredNorm(Tanh(a)); });
}

TEST(GradCheck, ReluAwayFromKink) {
  Tensor a = Tensor::FromData(1, 4, {0.5f, -0.5f, 1.2f, -1.2f}, true);
  CheckGradients({a}, [&] { return Sum(Relu(a)); });
}

TEST(GradCheck, Exp) {
  Tensor a = RandLeaf(2, 2);
  CheckGradients({a}, [&] { return Sum(Exp(a)); });
}

TEST(GradCheck, Log) {
  Tensor a = Tensor::RandomUniform(2, 2, 0.5f, 2.0f, TestRng(), true);
  CheckGradients({a}, [&] { return Sum(Log(a)); });
}

TEST(GradCheck, Sqrt) {
  Tensor a = Tensor::RandomUniform(2, 3, 0.5f, 2.0f, TestRng(), true);
  CheckGradients({a}, [&] { return Sum(Sqrt(a)); });
}

TEST(GradCheck, SoftmaxRows) {
  Tensor a = RandLeaf(2, 4);
  Tensor target = Tensor::RandomUniform(2, 4, 0.0f, 1.0f, TestRng());
  CheckGradients({a},
                 [&] { return SquaredNorm(Sub(SoftmaxRows(a), target)); });
}

TEST(GradCheck, SoftmaxWithTemperature) {
  Tensor a = RandLeaf(1, 5);
  CheckGradients(
      {a}, [&] { return Sum(Mul(SoftmaxRows(a, 0.7f), SoftmaxRows(a, 0.7f))); });
}

TEST(GradCheck, SumRowsAndCols) {
  Tensor a = RandLeaf(3, 2);
  CheckGradients({a}, [&] { return SquaredNorm(SumRows(a)); });
  CheckGradients({a}, [&] { return SquaredNorm(SumCols(a)); });
}

TEST(GradCheck, L1NormAwayFromZero) {
  Tensor a = Tensor::FromData(2, 2, {0.5f, -0.7f, 1.1f, -2.0f}, true);
  CheckGradients({a}, [&] { return L1Norm(a); });
}

TEST(GradCheck, SquaredNorm) {
  Tensor a = RandLeaf(3, 3);
  CheckGradients({a}, [&] { return SquaredNorm(a); });
}

TEST(GradCheck, ConcatColsAndRows) {
  Tensor a = RandLeaf(2, 2), b = RandLeaf(2, 3);
  CheckGradients({a, b}, [&] { return SquaredNorm(ConcatCols(a, b)); });
  Tensor c = RandLeaf(1, 2), d = RandLeaf(2, 2);
  CheckGradients({c, d}, [&] { return SquaredNorm(ConcatRows({c, d})); });
}

TEST(GradCheck, SliceRows) {
  Tensor a = RandLeaf(4, 2);
  CheckGradients({a}, [&] { return SquaredNorm(SliceRows(a, 1, 2)); });
}

TEST(GradCheck, GatherRowsAccumulatesRepeats) {
  Tensor a = RandLeaf(3, 2);
  CheckGradients({a},
                 [&] { return SquaredNorm(GatherRows(a, {0, 2, 0})); });
}

TEST(GradCheck, BceWithLogits) {
  Tensor x = RandLeaf(3, 1);
  Tensor t = Tensor::FromData(3, 1, {1.0f, 0.0f, 1.0f});
  CheckGradients({x}, [&] { return BceWithLogits(x, t); });
}

TEST(GradCheck, BceMean) {
  Tensor x = RandLeaf(4, 1);
  Tensor t = Tensor::FromData(4, 1, {1, 0, 0, 1});
  CheckGradients({x}, [&] { return BceWithLogits(x, t, Reduction::kMean); });
}

TEST(GradCheck, MseLoss) {
  Tensor a = RandLeaf(2, 3), b = RandLeaf(2, 3);
  CheckGradients({a, b}, [&] { return MseLoss(a, b); });
}

TEST(GradCheck, CompositeMiniNetwork) {
  // A little MLP-like composite: sigmoid(x W1 + b) W2 -> BCE.
  Tensor x = RandLeaf(2, 3);
  Tensor w1 = RandLeaf(3, 4);
  Tensor b1 = RandLeaf(1, 4);
  Tensor w2 = RandLeaf(4, 1);
  Tensor t = Tensor::FromData(2, 1, {1.0f, 0.0f});
  CheckGradients({x, w1, b1, w2}, [&] {
    Tensor h = Sigmoid(Add(MatMul(x, w1), b1));
    return BceWithLogits(MatMul(h, w2), t);
  });
}

TEST(GradCheck, DiamondGraphReuse) {
  // a feeds two branches that are recombined: gradient must accumulate.
  Tensor a = RandLeaf(2, 2);
  CheckGradients({a}, [&] {
    Tensor s = Sigmoid(a);
    Tensor t = Tanh(a);
    return Sum(Mul(s, t));
  });
}

TEST(AutogradTest, BackwardAccumulatesAcrossCalls) {
  Tensor a = Tensor::Full(1, 1, 2.0f, true);
  Tensor loss1 = SquaredNorm(a);  // d/da = 4
  Backward(loss1);
  EXPECT_FLOAT_EQ(a.GradAt(0, 0), 4.0f);
  Tensor loss2 = SquaredNorm(a);
  Backward(loss2);
  EXPECT_FLOAT_EQ(a.GradAt(0, 0), 8.0f);  // accumulated
  a.ZeroGrad();
  EXPECT_FLOAT_EQ(a.GradAt(0, 0), 0.0f);
}

TEST(AutogradTest, NoGradLeafUntouched) {
  Tensor a = Tensor::Full(1, 1, 2.0f, true);
  Tensor constant = Tensor::Full(1, 1, 3.0f, false);
  Tensor loss = Sum(Mul(a, constant));
  Backward(loss);
  EXPECT_FLOAT_EQ(a.GradAt(0, 0), 3.0f);
  EXPECT_TRUE(constant.grad().empty());
}

TEST(AutogradTest, BackwardOnDetachedLossIsNoOp) {
  Tensor a = Tensor::Full(1, 1, 2.0f, false);
  Tensor loss = SquaredNorm(a);
  Backward(loss);  // must not crash
  EXPECT_TRUE(a.grad().empty());
}

TEST(AutogradTest, SharedSubgraphGradientCorrect) {
  // loss = sum(b) + sum(b) where b = 2a  =>  dloss/da = 4 per entry.
  Tensor a = Tensor::Full(2, 2, 1.0f, true);
  Tensor b = ScalarMul(a, 2.0f);
  Tensor loss = Add(Sum(b), Sum(b));
  Backward(loss);
  EXPECT_FLOAT_EQ(a.GradAt(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(a.GradAt(1, 1), 4.0f);
}

TEST(AutogradTest, DeepChainGradient) {
  Tensor a = Tensor::Full(1, 1, 1.0f, true);
  Tensor x = a;
  for (int i = 0; i < 50; ++i) x = ScalarMul(x, 1.01f);
  Backward(Sum(x));
  EXPECT_NEAR(a.GradAt(0, 0), std::pow(1.01f, 50), 1e-3);
}

}  // namespace
}  // namespace causer::tensor
