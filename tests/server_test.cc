// TCP front-end suite (src/serve/server.h): wire round-trips must equal
// eval::TopK of the model's scores, malformed/out-of-range requests must be
// rejected without killing the connection, the scheduler must honor
// queue-depth admission, per-request deadlines and priority lanes, and
// graceful drain must answer every admitted request and cleanly reject
// every later one — no client left blocked — at 1 and 8 workers.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/net.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "models/gru4rec.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace causer::serve {
namespace {

const data::Dataset& TinyData() {
  static data::Dataset d = data::MakeDataset(data::TinySpec());
  return d;
}

const data::Split& TinySplit() {
  static data::Split s = data::LeaveLastOut(TinyData());
  return s;
}

/// Untrained GRU4Rec: deterministic from its seed, cheap to build, and
/// exposes the batched GEMM path — plenty for protocol-level tests.
std::unique_ptr<models::Gru4Rec> TinyModel() {
  models::ModelConfig config;
  config.num_users = TinyData().num_users;
  config.num_items = TinyData().num_items;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  return std::make_unique<models::Gru4Rec>(config);
}

/// The history of test instance `index`, in wire form (bootstrap steps).
std::vector<std::vector<int32_t>> WireHistory(int index) {
  std::vector<std::vector<int32_t>> steps;
  for (const auto& step : TinySplit().test[index].history) {
    steps.emplace_back(step.items.begin(), step.items.end());
  }
  return steps;
}

int WireUser(int index) { return TinySplit().test[index].user; }

void ExpectTopKOf(const wire::ResponseFrame& response,
                  models::SequentialRecommender& model, int index) {
  ASSERT_EQ(response.status, wire::Status::kOk) << "instance " << index;
  const auto& inst = TinySplit().test[index];
  auto scores = model.ScoreAll(inst.user, inst.history);
  auto ranked = eval::TopK(scores, static_cast<int>(response.items.size()));
  ASSERT_EQ(response.items.size(), ranked.size()) << "instance " << index;
  for (size_t j = 0; j < ranked.size(); ++j) {
    EXPECT_EQ(response.items[j], ranked[j]) << "instance " << index;
    EXPECT_EQ(response.scores[j], scores[ranked[j]]) << "instance " << index;
  }
}

void SpinUntil(const std::function<bool()>& done) {
  for (int spin = 0; spin < 2000 && !done(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(done());
}

TEST(ServerTest, ResponsesMatchScoreAllTopKAcrossConnections) {
  auto model = TinyModel();
  ServingConfig sc;
  sc.top_k = 5;
  sc.batch_max = 8;
  ServingEngine engine(*model, sc);
  Server server(engine, ServerConfig{});
  ASSERT_TRUE(server.Start());
  const int num_clients = 4;
  std::vector<std::thread> threads;
  for (int c = 0; c < num_clients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
      for (int round = 0; round < 2; ++round) {
        const int index = c * 2 + round;
        wire::RequestFrame request;
        request.request_id = static_cast<uint32_t>(100 * c + round);
        request.user = WireUser(index);
        request.bootstrap = WireHistory(index);
        wire::ResponseFrame response;
        ASSERT_TRUE(client.Call(request, &response));
        EXPECT_EQ(response.request_id, request.request_id);
        ExpectTopKOf(response, *model, index);
      }
    });
  }
  for (auto& t : threads) t.join();
  server.Shutdown();
}

TEST(ServerTest, OutOfCatalogItemRejectedWithoutKillingConnection) {
  auto model = TinyModel();
  ServingConfig sc;
  sc.top_k = 3;
  ServingEngine engine(*model, sc);
  Server server(engine, ServerConfig{});
  ASSERT_TRUE(server.Start());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));

  wire::RequestFrame bad;
  bad.request_id = 1;
  bad.user = WireUser(0);
  bad.append = {static_cast<int32_t>(TinyData().num_items)};  // one past
  wire::ResponseFrame response;
  ASSERT_TRUE(client.Call(bad, &response));
  EXPECT_EQ(response.request_id, 1u);
  EXPECT_EQ(response.status, wire::Status::kBadRequest);
  EXPECT_TRUE(response.items.empty());

  // The connection survives a bad request; the next one scores normally.
  wire::RequestFrame good;
  good.request_id = 2;
  good.user = WireUser(0);
  good.bootstrap = WireHistory(0);
  ASSERT_TRUE(client.Call(good, &response));
  EXPECT_EQ(response.request_id, 2u);
  ExpectTopKOf(response, *model, 0);
  server.Shutdown();
}

TEST(ServerTest, QueueDepthAdmissionRejectsWithQueueFull) {
  auto model = TinyModel();
  ServingEngine engine(*model, {.top_k = 3});
  ServerConfig config;
  config.queue_depth = 2;
  Server server(engine, config);
  ASSERT_TRUE(server.Start());
  server.PauseWorkersForTest(true);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  // One connection = one reader = admission in send order: 1 and 2 fill
  // the queue, 3 bounces immediately with the backpressure status.
  for (uint32_t id = 1; id <= 3; ++id) {
    wire::RequestFrame request;
    request.request_id = id;
    request.user = 0;
    ASSERT_TRUE(client.Send(request));
  }
  wire::ResponseFrame response;
  ASSERT_TRUE(client.Receive(&response));
  EXPECT_EQ(response.request_id, 3u);
  EXPECT_EQ(response.status, wire::Status::kQueueFull);
  EXPECT_EQ(server.queue_size(), 2);

  server.PauseWorkersForTest(false);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(client.Receive(&response));
    EXPECT_LE(response.request_id, 2u);
    EXPECT_EQ(response.status, wire::Status::kOk);
  }
  server.Shutdown();
}

TEST(ServerTest, ExpiredDeadlineRejectedBeforeScoring) {
  auto model = TinyModel();
  ServingEngine engine(*model, {.top_k = 3});
  Server server(engine, ServerConfig{});
  ASSERT_TRUE(server.Start());
  server.PauseWorkersForTest(true);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  wire::RequestFrame request;
  request.request_id = 7;
  request.user = 0;
  request.deadline_ms = 30;
  ASSERT_TRUE(client.Send(request));
  SpinUntil([&] { return server.queue_size() == 1; });
  // The request ages past its deadline while workers are paused; on pop it
  // must be rejected without touching the engine.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.PauseWorkersForTest(false);
  wire::ResponseFrame response;
  ASSERT_TRUE(client.Receive(&response));
  EXPECT_EQ(response.request_id, 7u);
  EXPECT_EQ(response.status, wire::Status::kDeadlineExceeded);
  EXPECT_TRUE(response.items.empty());
  server.Shutdown();
}

TEST(ServerTest, HighPriorityLaneSchedulesAheadOfNormal) {
  auto model = TinyModel();
  ServingEngine engine(*model, {.top_k = 3});
  ServerConfig config;
  config.workers = 1;  // serial pops make the lane order observable
  Server server(engine, config);
  ASSERT_TRUE(server.Start());
  server.PauseWorkersForTest(true);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  wire::RequestFrame normal;
  normal.request_id = 1;
  normal.user = 0;
  ASSERT_TRUE(client.Send(normal));
  wire::RequestFrame high;
  high.request_id = 2;
  high.user = 1;
  high.priority = wire::Priority::kHigh;
  ASSERT_TRUE(client.Send(high));
  SpinUntil([&] { return server.queue_size() == 2; });
  server.PauseWorkersForTest(false);
  // Although the normal request was admitted first, the single worker must
  // pop (and so answer) the high lane first.
  wire::ResponseFrame first, second;
  ASSERT_TRUE(client.Receive(&first));
  ASSERT_TRUE(client.Receive(&second));
  EXPECT_EQ(first.request_id, 2u);
  EXPECT_EQ(first.status, wire::Status::kOk);
  EXPECT_EQ(second.request_id, 1u);
  EXPECT_EQ(second.status, wire::Status::kOk);
  server.Shutdown();
}

/// Drain contract at a given worker count: every admitted request is
/// answered with a real response, every post-drain request with a clean
/// kShuttingDown, and after Shutdown the sockets read EOF — nobody hangs.
void ExpectGracefulDrain(int workers) {
  auto model = TinyModel();
  ServingConfig sc;
  sc.top_k = 3;
  sc.batch_max = 4;
  ServingEngine engine(*model, sc);
  ServerConfig config;
  config.workers = workers;
  Server server(engine, config);
  ASSERT_TRUE(server.Start());
  server.PauseWorkersForTest(true);

  const int num_clients = 3;
  const int per_client = 2;
  std::vector<Client> clients(num_clients);
  for (int c = 0; c < num_clients; ++c) {
    ASSERT_TRUE(clients[c].Connect("127.0.0.1", server.port()))
        << "workers " << workers;
    for (int i = 0; i < per_client; ++i) {
      wire::RequestFrame request;
      request.request_id = static_cast<uint32_t>(10 * c + i);
      request.user = WireUser(c);
      request.bootstrap = WireHistory(c);
      ASSERT_TRUE(clients[c].Send(request));
    }
  }
  SpinUntil([&] { return server.queue_size() == num_clients * per_client; });

  server.BeginDrain();
  // Post-drain requests are rejected by the reader immediately, even while
  // the queued ones are still waiting for (paused) workers.
  for (int c = 0; c < num_clients; ++c) {
    wire::RequestFrame late;
    late.request_id = 99;
    late.user = WireUser(c);
    ASSERT_TRUE(clients[c].Send(late));
    wire::ResponseFrame response;
    ASSERT_TRUE(clients[c].Receive(&response));
    EXPECT_EQ(response.request_id, 99u);
    EXPECT_EQ(response.status, wire::Status::kShuttingDown);
  }

  server.PauseWorkersForTest(false);
  for (int c = 0; c < num_clients; ++c) {
    for (int i = 0; i < per_client; ++i) {
      wire::ResponseFrame response;
      ASSERT_TRUE(clients[c].Receive(&response))
          << "workers " << workers << " client " << c;
      ExpectTopKOf(response, *model, c);
    }
  }
  server.Shutdown();
  // Drained and closed: the next read must see EOF, not block forever.
  wire::ResponseFrame eof;
  for (int c = 0; c < num_clients; ++c) {
    EXPECT_FALSE(clients[c].Receive(&eof)) << "workers " << workers;
  }
  // New connections are refused once the listener is down.
  Client refused;
  EXPECT_FALSE(refused.Connect("127.0.0.1", server.port()));
}

TEST(ServerTest, GracefulDrainAnswersEveryInFlightRequestOneWorker) {
  ExpectGracefulDrain(1);
}

TEST(ServerTest, GracefulDrainAnswersEveryInFlightRequestEightWorkers) {
  ExpectGracefulDrain(8);
}

TEST(ServerTest, ProtocolRoundTripAndMalformedPayloads) {
  wire::RequestFrame request;
  request.request_id = 0xDEADBEEF;
  request.user = 12345;
  request.deadline_ms = 250;
  request.priority = wire::Priority::kHigh;
  request.op = wire::Op::kReload;
  request.append = {1, 2, 3};
  request.bootstrap = {{4}, {5, 6}};
  std::vector<uint8_t> payload;
  wire::EncodeRequest(request, &payload);
  wire::RequestFrame decoded;
  ASSERT_TRUE(wire::DecodeRequest(payload, &decoded));
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.user, request.user);
  EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded.priority, request.priority);
  EXPECT_EQ(decoded.op, request.op);
  EXPECT_EQ(decoded.append, request.append);
  EXPECT_EQ(decoded.bootstrap, request.bootstrap);

  wire::ResponseFrame response;
  response.request_id = 42;
  response.status = wire::Status::kOk;
  response.model_version = 7;
  response.items = {7, 8};
  response.scores = {0.5f, 0.25f};
  wire::EncodeResponse(response, &payload);
  wire::ResponseFrame round;
  ASSERT_TRUE(wire::DecodeResponse(payload, &round));
  EXPECT_EQ(round.request_id, response.request_id);
  EXPECT_EQ(round.model_version, response.model_version);
  EXPECT_EQ(round.items, response.items);
  EXPECT_EQ(round.scores, response.scores);

  // An out-of-range op byte must fail to decode.
  std::vector<uint8_t> bad_op = payload;
  wire::EncodeRequest(request, &bad_op);
  bad_op[2] = 2;  // past Op::kReload
  EXPECT_FALSE(wire::DecodeRequest(bad_op, &decoded));

  // Truncation, trailing garbage and a wrong version must all fail.
  wire::EncodeRequest(request, &payload);
  std::vector<uint8_t> truncated(payload.begin(), payload.end() - 1);
  EXPECT_FALSE(wire::DecodeRequest(truncated, &decoded));
  std::vector<uint8_t> padded = payload;
  padded.push_back(0);
  EXPECT_FALSE(wire::DecodeRequest(padded, &decoded));
  std::vector<uint8_t> wrong_version = payload;
  wrong_version[0] = wire::kVersion + 1;
  EXPECT_FALSE(wire::DecodeRequest(wrong_version, &decoded));
}

}  // namespace
}  // namespace causer::serve
