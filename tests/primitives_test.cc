// Compute-primitive dispatch suite: every ISA variant compiled into this
// binary (and supported by the running CPU) must be bit-identical to the
// scalar reference — both called directly through its Ops table and
// dispatched end-to-end through the production kernels (MatMulAdd,
// MatMulTopK, the fused Adam update) at thread counts 1/2/8. This is the
// executable form of the fp32 bit-identity contract in
// tensor/primitives/primitives.h and docs/KERNELS.md.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/cpu.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/kernels.h"
#include "tensor/primitives/primitives.h"

namespace causer::tensor::primitives {
namespace {

std::vector<float> RandomBuffer(size_t size, Rng& rng) {
  std::vector<float> out(size);
  for (auto& v : out) {
    v = static_cast<float>(rng.Uniform(-2.0, 2.0));
    if (rng.Uniform(0.0, 1.0) < 0.1) v = 0.0f;
  }
  return out;
}

bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Variants that can actually execute here: always the scalar table, plus
/// every compiled SIMD tier the CPU reports support for (calling an
/// unsupported table would SIGILL, not fail an EXPECT).
std::vector<const Ops*> RunnableVariants() {
  std::vector<const Ops*> out;
  for (cpu::Isa isa : cpu::CompiledIsas()) {
    if (cpu::IsaSupported(isa)) out.push_back(ForIsa(isa));
  }
  return out;
}

class PrimitivesTest : public ::testing::Test {
 protected:
  void TearDown() override {
    cpu::ResetIsaForTest();
    SetDefaultThreads(1);
  }
};

TEST_F(PrimitivesTest, EveryCompiledVariantHasATable) {
  for (cpu::Isa isa : cpu::CompiledIsas()) {
    const Ops* ops = ForIsa(isa);
    ASSERT_NE(ops, nullptr) << cpu::IsaName(isa);
    EXPECT_EQ(ops->isa, isa);
    EXPECT_STREQ(ops->name, cpu::IsaName(isa));
  }
  EXPECT_EQ(&Active(), ForIsa(cpu::ActiveIsa()));
}

TEST_F(PrimitivesTest, GemmPanelsMatchScalarBitwise) {
  const Ops* scalar = ForIsa(cpu::Isa::kScalar);
  Rng rng(20260808);
  // Sizes straddle every vector width and remainder path: 8/16/32/64-wide
  // tiles plus scalar tails, and a_step > 1 exercises the TransA layout.
  const int ms[] = {1, 3, 8, 17};
  const int ps[] = {1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 130};
  for (const Ops* ops : RunnableVariants()) {
    if (ops->isa == cpu::Isa::kScalar) continue;
    for (int m : ms) {
      for (int p : ps) {
        for (int a_step : {1, 4}) {
          auto a = RandomBuffer(static_cast<size_t>(m) * a_step * 4 + 3, rng);
          auto b = RandomBuffer(static_cast<size_t>(m) * p, rng);
          auto c_ref = RandomBuffer(static_cast<size_t>(4) * p, rng);
          auto c_simd = c_ref;
          auto call4 = [&](const Ops* o, std::vector<float>& c) {
            o->gemm_panel4(m, p, a.data(), a.data() + 1, a.data() + 2,
                           a.data() + 3, a_step, b.data(), p, c.data(),
                           c.data() + p, c.data() + 2 * p, c.data() + 3 * p);
          };
          call4(scalar, c_ref);
          call4(ops, c_simd);
          EXPECT_TRUE(BitwiseEqual(c_ref, c_simd))
              << ops->name << " gemm_panel4 m=" << m << " p=" << p
              << " a_step=" << a_step;

          auto c1_ref = RandomBuffer(static_cast<size_t>(p), rng);
          auto c1_simd = c1_ref;
          scalar->gemm_panel1(m, p, a.data(), a_step, b.data(), p,
                              c1_ref.data());
          ops->gemm_panel1(m, p, a.data(), a_step, b.data(), p,
                           c1_simd.data());
          EXPECT_TRUE(BitwiseEqual(c1_ref, c1_simd))
              << ops->name << " gemm_panel1 m=" << m << " p=" << p
              << " a_step=" << a_step;
        }
      }
    }
  }
}

TEST_F(PrimitivesTest, AxpyDotAndDot8MatchScalarBitwise) {
  const Ops* scalar = ForIsa(cpu::Isa::kScalar);
  Rng rng(20260809);
  for (const Ops* ops : RunnableVariants()) {
    if (ops->isa == cpu::Isa::kScalar) continue;
    for (int n : {1, 7, 8, 9, 16, 17, 33, 130}) {
      auto x = RandomBuffer(static_cast<size_t>(n), rng);
      auto y_ref = RandomBuffer(static_cast<size_t>(n), rng);
      auto y_simd = y_ref;
      const float alpha = static_cast<float>(rng.Uniform(-1.5, 1.5));
      scalar->axpy(n, alpha, x.data(), y_ref.data());
      ops->axpy(n, alpha, x.data(), y_simd.data());
      EXPECT_TRUE(BitwiseEqual(y_ref, y_simd)) << ops->name << " axpy n=" << n;
    }
    for (int m : {1, 5, 7, 8, 9, 16, 24, 33, 130}) {
      const std::size_t stride = static_cast<std::size_t>(m) + 3;
      auto a = RandomBuffer(static_cast<size_t>(m), rng);
      auto b = RandomBuffer(stride * 8, rng);
      auto io_ref = RandomBuffer(8, rng);
      auto io_simd = io_ref;
      scalar->dot8(m, a.data(), b.data(), stride, io_ref.data());
      ops->dot8(m, a.data(), b.data(), stride, io_simd.data());
      EXPECT_TRUE(BitwiseEqual(io_ref, io_simd))
          << ops->name << " dot8 m=" << m;
      const float d_ref = scalar->dot(m, a.data(), b.data());
      const float d_simd = ops->dot(m, a.data(), b.data());
      EXPECT_EQ(std::memcmp(&d_ref, &d_simd, sizeof(float)), 0)
          << ops->name << " dot m=" << m;
    }
  }
}

TEST_F(PrimitivesTest, ReduceMaxClampExpMatchScalar) {
  const Ops* scalar = ForIsa(cpu::Isa::kScalar);
  Rng rng(20260810);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (const Ops* ops : RunnableVariants()) {
    if (ops->isa == cpu::Isa::kScalar) continue;
    for (int n : {1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 130}) {
      auto x = RandomBuffer(static_cast<size_t>(n), rng);
      // reduce_max: value-exact across variants (no NaNs by contract).
      EXPECT_EQ(scalar->reduce_max(x.size(), x.data()),
                ops->reduce_max(x.size(), x.data()))
          << ops->name << " reduce_max n=" << n;

      // clamp: bit-exact, including NaN propagation and signed zeros.
      auto y_ref = x;
      auto y_simd = x;
      if (n >= 3) {
        y_ref[0] = y_simd[0] = nan;
        y_ref[1] = y_simd[1] = -0.0f;
        y_ref[2] = y_simd[2] = 0.0f;
      }
      scalar->clamp(y_ref.size(), -0.75f, 0.75f, y_ref.data());
      ops->clamp(y_simd.size(), -0.75f, 0.75f, y_simd.data());
      EXPECT_EQ(std::memcmp(y_ref.data(), y_simd.data(),
                            y_ref.size() * sizeof(float)),
                0)
          << ops->name << " clamp n=" << n;
      if (n >= 3) {
        EXPECT_TRUE(std::isnan(y_simd[0])) << ops->name;
      }

      auto e_ref = x;
      auto e_simd = x;
      scalar->exp_apply(e_ref.size(), e_ref.data());
      ops->exp_apply(e_simd.size(), e_simd.data());
      EXPECT_TRUE(BitwiseEqual(e_ref, e_simd))
          << ops->name << " exp_apply n=" << n;
    }
  }
}

TEST_F(PrimitivesTest, AdamStepTrajectoryMatchesScalarBitwise) {
  const Ops* scalar = ForIsa(cpu::Isa::kScalar);
  const float lr = 0.001f, beta1 = 0.9f, beta2 = 0.999f, eps = 1e-8f;
  for (const Ops* ops : RunnableVariants()) {
    if (ops->isa == cpu::Isa::kScalar) continue;
    for (int count : {1, 7, 8, 9, 16, 17, 33, 257}) {
      Rng rng(777);  // same trajectory inputs for both runs
      auto w_ref = RandomBuffer(static_cast<size_t>(count), rng);
      auto w_simd = w_ref;
      std::vector<float> m_ref(count, 0.0f), v_ref(count, 0.0f);
      auto m_simd = m_ref;
      auto v_simd = v_ref;
      for (int step = 1; step <= 5; ++step) {
        const double bc1 = 1.0 - std::pow(static_cast<double>(beta1), step);
        const double bc2 = 1.0 - std::pow(static_cast<double>(beta2), step);
        auto g = RandomBuffer(static_cast<size_t>(count), rng);
        scalar->adam_step(count, lr, beta1, beta2, 1.0f - beta1,
                          1.0f - beta2, bc1, bc2, eps, w_ref.data(), g.data(),
                          m_ref.data(), v_ref.data());
        ops->adam_step(count, lr, beta1, beta2, 1.0f - beta1, 1.0f - beta2,
                       bc1, bc2, eps, w_simd.data(), g.data(), m_simd.data(),
                       v_simd.data());
      }
      EXPECT_TRUE(BitwiseEqual(w_ref, w_simd))
          << ops->name << " adam w count=" << count;
      EXPECT_TRUE(BitwiseEqual(m_ref, m_simd))
          << ops->name << " adam m count=" << count;
      EXPECT_TRUE(BitwiseEqual(v_ref, v_simd))
          << ops->name << " adam v count=" << count;
    }
  }
}

TEST_F(PrimitivesTest, DispatchedMatMulAddMatchesNaivePerIsaAndThreads) {
  const int ns[] = {1, 3, 8, 33};
  const int ms[] = {1, 5, 17, 64};
  const int ps[] = {1, 5, 17, 64};
  for (cpu::Isa isa : cpu::CompiledIsas()) {
    if (!cpu::IsaSupported(isa)) {
      // Not skippable silently: record which tier could not run here.
      std::fprintf(stderr, "note: %s compiled but unsupported on this CPU\n",
                   cpu::IsaName(isa));
      continue;
    }
    ASSERT_TRUE(cpu::SetIsaOverride(cpu::IsaName(isa)));
    ASSERT_EQ(Active().isa, isa);
    Rng rng(20260811);  // identical inputs for every tier
    for (int threads : {1, 2, 8}) {
      SetDefaultThreads(threads);
      for (int n : ns) {
        for (int m : ms) {
          for (int p : ps) {
            for (bool ta : {false, true}) {
              for (bool tb : {false, true}) {
                auto a = RandomBuffer(static_cast<size_t>(n) * m, rng);
                auto b = RandomBuffer(static_cast<size_t>(m) * p, rng);
                auto c0 = RandomBuffer(static_cast<size_t>(n) * p, rng);
                auto expected = c0;
                auto actual = c0;
                kernels::MatMulAddNaive(a.data(), b.data(), expected.data(),
                                        n, m, p, ta, tb);
                kernels::MatMulAdd(a.data(), b.data(), actual.data(), n, m,
                                   p, ta, tb);
                EXPECT_TRUE(BitwiseEqual(expected, actual))
                    << cpu::IsaName(isa) << " n=" << n << " m=" << m
                    << " p=" << p << " ta=" << ta << " tb=" << tb
                    << " threads=" << threads;
              }
            }
          }
        }
      }
    }
    SetDefaultThreads(1);
  }
}

TEST_F(PrimitivesTest, DispatchedMatMulTopKMatchesScalarPerIsaAndThreads) {
  const int n = 9, m = 24, p = 700, k = 40;  // p straddles the column tile
  Rng rng(20260812);
  auto a = RandomBuffer(static_cast<size_t>(n) * m, rng);
  auto b = RandomBuffer(static_cast<size_t>(p) * m, rng);
  // Scalar tier at one thread defines the expectation.
  ASSERT_TRUE(cpu::SetIsaOverride("scalar"));
  SetDefaultThreads(1);
  std::vector<kernels::TopKEntry> expected(static_cast<size_t>(n) * k);
  kernels::MatMulTopK(a.data(), b.data(), n, m, p, k, expected.data());
  for (cpu::Isa isa : cpu::CompiledIsas()) {
    if (!cpu::IsaSupported(isa)) continue;
    ASSERT_TRUE(cpu::SetIsaOverride(cpu::IsaName(isa)));
    for (int threads : {1, 2, 8}) {
      SetDefaultThreads(threads);
      std::vector<kernels::TopKEntry> actual(static_cast<size_t>(n) * k);
      kernels::MatMulTopK(a.data(), b.data(), n, m, p, k, actual.data());
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(expected[i].index, actual[i].index)
            << cpu::IsaName(isa) << " threads=" << threads << " entry " << i;
        ASSERT_EQ(std::memcmp(&expected[i].score, &actual[i].score,
                              sizeof(float)),
                  0)
            << cpu::IsaName(isa) << " threads=" << threads << " entry " << i;
      }
    }
  }
}

std::vector<std::int8_t> RandomCodes(size_t size, Rng& rng) {
  std::vector<std::int8_t> out(size);
  for (auto& v : out) {
    v = static_cast<std::int8_t>(
        static_cast<int>(rng.Uniform(-127.9, 127.9)));
  }
  return out;
}

// The int8 members sit outside the fp32 contract, but int32 accumulation is
// exact, so every variant must still agree bit-for-bit with scalar — seeded
// dot8_s8 and from-scratch gemm_panel_s8 alike.
TEST_F(PrimitivesTest, Int8PrimitivesMatchScalarExactly) {
  const Ops* scalar = ForIsa(cpu::Isa::kScalar);
  Rng rng(20260810);
  for (const Ops* ops : RunnableVariants()) {
    if (ops->isa == cpu::Isa::kScalar) continue;
    for (int m : {1, 7, 8, 31, 32, 33, 64, 65, 130}) {
      for (size_t stride : {static_cast<size_t>(m), static_cast<size_t>(m) + 5}) {
        auto a = RandomCodes(static_cast<size_t>(m), rng);
        auto b = RandomCodes(stride * 8, rng);
        std::vector<std::int32_t> io_ref(8), io_simd(8);
        for (int l = 0; l < 8; ++l) {
          io_ref[l] = static_cast<std::int32_t>(rng.Uniform(-1000.0, 1000.0));
          io_simd[l] = io_ref[l];
        }
        scalar->dot8_s8(m, a.data(), b.data(), stride, io_ref.data());
        ops->dot8_s8(m, a.data(), b.data(), stride, io_simd.data());
        EXPECT_EQ(io_ref, io_simd)
            << ops->name << " dot8_s8 m=" << m << " stride=" << stride;
      }
      for (int p : {1, 7, 8, 9, 17, 130}) {
        auto a = RandomCodes(static_cast<size_t>(m), rng);
        auto b = RandomCodes(static_cast<size_t>(m) * p, rng);
        std::vector<std::int32_t> out_ref(p), out_simd(p);
        scalar->gemm_panel_s8(m, p, a.data(), b.data(),
                              static_cast<size_t>(m), out_ref.data());
        ops->gemm_panel_s8(m, p, a.data(), b.data(), static_cast<size_t>(m),
                           out_simd.data());
        EXPECT_EQ(out_ref, out_simd)
            << ops->name << " gemm_panel_s8 m=" << m << " p=" << p;
      }
    }
  }
}

TEST_F(PrimitivesTest, DequantFilterMatchesScalarExactly) {
  const Ops* scalar = ForIsa(cpu::Isa::kScalar);
  Rng rng(20260811);
  for (const Ops* ops : RunnableVariants()) {
    if (ops->isa == cpu::Isa::kScalar) continue;
    for (int n : {1, 7, 15, 16, 17, 64, 257}) {
      std::vector<std::int32_t> acc(n);
      std::vector<float> b_scales(n);
      for (int l = 0; l < n; ++l) {
        acc[l] = static_cast<std::int32_t>(rng.Uniform(-500000.0, 500000.0));
        b_scales[l] = static_cast<float>(rng.Uniform(0.001, 0.1));
      }
      const float a_scale = 0.017f;
      // Thresholds spanning keep-all, keep-some, and keep-none, plus one
      // planted exact-tie score to pin down the >= boundary.
      const float mid =
          static_cast<float>(acc[n / 2]) * (a_scale * b_scales[n / 2]);
      for (float threshold :
           {-std::numeric_limits<float>::infinity(), mid, 0.0f, 1e30f}) {
        std::vector<std::int32_t> idx_ref(n, -7), idx_simd(n, -7);
        std::vector<float> sc_ref(n, -7.0f), sc_simd(n, -7.0f);
        const int cnt_ref =
            scalar->dequant_filter(n, acc.data(), b_scales.data(), a_scale,
                                   threshold, idx_ref.data(), sc_ref.data());
        const int cnt_simd =
            ops->dequant_filter(n, acc.data(), b_scales.data(), a_scale,
                                threshold, idx_simd.data(), sc_simd.data());
        ASSERT_EQ(cnt_ref, cnt_simd)
            << ops->name << " dequant_filter n=" << n << " thr=" << threshold;
        for (int t = 0; t < cnt_ref; ++t) {
          EXPECT_EQ(idx_ref[t], idx_simd[t]) << ops->name << " n=" << n;
          EXPECT_EQ(std::memcmp(&sc_ref[t], &sc_simd[t], sizeof(float)), 0)
              << ops->name << " n=" << n << " t=" << t;
        }
      }
    }
  }
}

}  // namespace
}  // namespace causer::tensor::primitives
