#include <gtest/gtest.h>

#include <cstdio>

#include "data/generator.h"
#include "data/io.h"
#include "data/stats.h"

namespace causer::data {
namespace {

std::string TempDir() { return ::testing::TempDir(); }

TEST(DataIoTest, RoundTripPreservesEverything) {
  Dataset original = MakeDataset(TinySpec());
  ASSERT_TRUE(SaveDataset(original, TempDir()));
  Dataset loaded;
  ASSERT_TRUE(LoadDataset(TempDir(), &loaded));

  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.num_users, original.num_users);
  EXPECT_EQ(loaded.num_items, original.num_items);
  EXPECT_EQ(loaded.feature_dim, original.feature_dim);
  EXPECT_EQ(loaded.basket_mode, original.basket_mode);
  EXPECT_EQ(loaded.item_true_cluster, original.item_true_cluster);
  EXPECT_TRUE(loaded.true_cluster_graph == original.true_cluster_graph);

  ASSERT_EQ(loaded.sequences.size(), original.sequences.size());
  for (size_t u = 0; u < original.sequences.size(); ++u) {
    const auto& a = original.sequences[u];
    const auto& b = loaded.sequences[u];
    ASSERT_EQ(a.steps.size(), b.steps.size()) << "user " << u;
    for (size_t t = 0; t < a.steps.size(); ++t) {
      EXPECT_EQ(a.steps[t].items, b.steps[t].items);
      EXPECT_EQ(a.steps[t].cause_step, b.steps[t].cause_step);
      EXPECT_EQ(a.steps[t].cause_item, b.steps[t].cause_item);
    }
  }
  for (int i = 0; i < original.num_items; ++i) {
    ASSERT_EQ(loaded.item_features[i].size(),
              original.item_features[i].size());
    for (size_t f = 0; f < original.item_features[i].size(); ++f)
      EXPECT_NEAR(loaded.item_features[i][f], original.item_features[i][f],
                  1e-4);
  }
}

TEST(DataIoTest, RoundTripPreservesStats) {
  Dataset original = MakeDataset(TinySpec());
  ASSERT_TRUE(SaveDataset(original, TempDir()));
  Dataset loaded;
  ASSERT_TRUE(LoadDataset(TempDir(), &loaded));
  auto a = ComputeStats(original);
  auto b = ComputeStats(loaded);
  EXPECT_EQ(a.num_interactions, b.num_interactions);
  EXPECT_DOUBLE_EQ(a.avg_seq_len, b.avg_seq_len);
  EXPECT_DOUBLE_EQ(a.sparsity, b.sparsity);
}

TEST(DataIoTest, MissingDirectoryFails) {
  Dataset loaded;
  EXPECT_FALSE(LoadDataset("/nonexistent/path", &loaded));
}

TEST(DataIoTest, CorruptMetaFails) {
  std::string dir = TempDir();
  Dataset original = MakeDataset(TinySpec());
  ASSERT_TRUE(SaveDataset(original, dir));
  {
    std::FILE* f = std::fopen((dir + "/meta.tsv").c_str(), "w");
    std::fputs("num_users\t0\n", f);
    std::fclose(f);
  }
  Dataset loaded;
  EXPECT_FALSE(LoadDataset(dir, &loaded));
}

TEST(DataIoTest, OutOfRangeItemFails) {
  std::string dir = TempDir();
  Dataset original = MakeDataset(TinySpec());
  ASSERT_TRUE(SaveDataset(original, dir));
  {
    std::FILE* f = std::fopen((dir + "/interactions.tsv").c_str(), "a");
    std::fputs("0\t0\t999999\t-1\t-1\n", f);
    std::fclose(f);
  }
  Dataset loaded;
  EXPECT_FALSE(LoadDataset(dir, &loaded));
}

}  // namespace
}  // namespace causer::data
