#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "data/generator.h"
#include "data/split.h"
#include "eval/evaluator.h"
#include "models/gru4rec.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace causer {
namespace {

/// Restores the process-wide thread count on scope exit so tests cannot
/// leak a parallel configuration into each other.
struct ThreadCountGuard {
  int saved = DefaultThreads();
  ~ThreadCountGuard() { SetDefaultThreads(saved); }
};

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(0, 1000, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EmptyAndSingleElementRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](int, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(3, 4, [&](int begin, int end) {
    EXPECT_EQ(begin, 3);
    EXPECT_EQ(end, 4);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ReusableAcrossRegions) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(0, 64, [&](int begin, int end) {
      int local = 0;
      for (int i = begin; i < end; ++i) local += i;
      sum += local;
    });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<int> hits(256, 0);
  pool.ParallelFor(0, 4, [&](int begin, int end) {
    for (int s = begin; s < end; ++s) {
      // Nested region: must run inline on this thread, touching only this
      // shard's slice, with no deadlock.
      pool.ParallelFor(s * 64, (s + 1) * 64, [&](int lo, int hi) {
        for (int i = lo; i < hi; ++i) ++hits[i];
      });
    }
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsCallerInline) {
  ThreadPool pool(1);
  bool called = false;
  pool.ParallelFor(0, 10, [&](int begin, int end) {
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 10);
    called = true;
  });
  EXPECT_TRUE(called);
}

TEST(DefaultPoolTest, ResizesOnDemand) {
  ThreadCountGuard guard;
  SetDefaultThreads(3);
  EXPECT_EQ(DefaultThreads(), 3);
  EXPECT_EQ(DefaultPool().num_threads(), 3);
  SetDefaultThreads(1);
  EXPECT_EQ(DefaultPool().num_threads(), 1);
  SetDefaultThreads(0);  // clamped
  EXPECT_EQ(DefaultThreads(), 1);
}

tensor::Tensor RandomMatrix(int rows, int cols, Rng& rng) {
  return tensor::Tensor::RandomUniform(rows, cols, -1.0f, 1.0f, rng);
}

TEST(ParallelMatMulTest, BitExactAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(42);
  // Big enough to clear the parallel dispatch threshold (64*96*64 ops).
  tensor::Tensor a = RandomMatrix(64, 96, rng);
  tensor::Tensor b = RandomMatrix(96, 64, rng);

  SetDefaultThreads(1);
  tensor::Tensor sequential = tensor::MatMul(a, b);
  for (int threads : {2, 4, 8}) {
    SetDefaultThreads(threads);
    tensor::Tensor parallel = tensor::MatMul(a, b);
    ASSERT_EQ(sequential.data(), parallel.data())
        << "threads=" << threads << " diverged from sequential";
  }
}

TEST(ParallelMatMulTest, BackwardBitExactAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(43);
  auto run = [&](int threads) {
    SetDefaultThreads(threads);
    Rng local(7);
    tensor::Tensor a = RandomMatrix(48, 64, local);
    tensor::Tensor b =
        tensor::Tensor::RandomUniform(64, 48, -1.0f, 1.0f, local, true);
    tensor::Tensor loss = tensor::Sum(tensor::MatMul(a, b));
    tensor::Backward(loss);
    return b.grad();
  };
  auto g1 = run(1);
  auto g4 = run(4);
  EXPECT_EQ(g1, g4);
}

eval::Scorer MakeSyntheticScorer(int num_items) {
  return [num_items](const data::EvalInstance& inst) {
    std::vector<float> scores(num_items);
    for (int i = 0; i < num_items; ++i) {
      scores[i] = static_cast<float>(((inst.user + 1) * (i + 3)) % 97) / 97.0f;
    }
    return scores;
  };
}

TEST(ParallelEvaluateTest, BitIdenticalToSequential) {
  ThreadCountGuard guard;
  std::vector<data::EvalInstance> instances(37);
  for (int i = 0; i < 37; ++i) {
    instances[i].user = i;
    instances[i].target_items = {i % 50, (i * 7) % 50};
  }
  auto scorer = MakeSyntheticScorer(50);
  SetDefaultThreads(1);
  eval::EvalResult sequential = eval::Evaluate(scorer, instances, 5);
  for (int threads : {2, 4, 8}) {
    eval::EvalResult parallel =
        eval::Evaluate(scorer, instances, 5, threads);
    EXPECT_EQ(sequential.f1, parallel.f1) << "threads=" << threads;
    EXPECT_EQ(sequential.ndcg, parallel.ndcg) << "threads=" << threads;
    EXPECT_EQ(sequential.per_instance_f1, parallel.per_instance_f1);
    EXPECT_EQ(sequential.per_instance_ndcg, parallel.per_instance_ndcg);
  }
}

TEST(ParallelEvaluateTest, RealModelScoresMatchSequential) {
  ThreadCountGuard guard;
  data::Dataset dataset = data::MakeDataset(data::TinySpec());
  data::Split split = data::LeaveLastOut(dataset);
  models::ModelConfig cfg;
  cfg.num_users = dataset.num_users;
  cfg.num_items = dataset.num_items;
  cfg.item_features = &dataset.item_features;
  models::Gru4Rec model(cfg);
  model.TrainEpoch(split.train);
  auto scorer = models::MakeScorer(model);
  eval::EvalResult sequential = eval::Evaluate(scorer, split.test, 5, 1);
  eval::EvalResult parallel = eval::Evaluate(scorer, split.test, 5, 4);
  EXPECT_EQ(sequential.per_instance_ndcg, parallel.per_instance_ndcg);
  EXPECT_EQ(sequential.f1, parallel.f1);
}

models::ModelConfig BatchedConfig(const data::Dataset& dataset,
                                  int batch_size) {
  models::ModelConfig cfg;
  cfg.num_users = dataset.num_users;
  cfg.num_items = dataset.num_items;
  cfg.item_features = &dataset.item_features;
  cfg.batch_size = batch_size;
  return cfg;
}

TEST(BatchedTrainingTest, DeterministicForFixedThreadCount) {
  ThreadCountGuard guard;
  data::Dataset dataset = data::MakeDataset(data::TinySpec());
  data::Split split = data::LeaveLastOut(dataset);
  SetDefaultThreads(4);
  auto run = [&] {
    models::Gru4Rec model(BatchedConfig(dataset, 8));
    std::vector<double> losses;
    for (int e = 0; e < 2; ++e) losses.push_back(model.TrainEpoch(split.train));
    return losses;
  };
  EXPECT_EQ(run(), run());
}

TEST(BatchedTrainingTest, ThreadCountOnlyPerturbsRounding) {
  ThreadCountGuard guard;
  data::Dataset dataset = data::MakeDataset(data::TinySpec());
  data::Split split = data::LeaveLastOut(dataset);
  auto run = [&](int threads) {
    SetDefaultThreads(threads);
    models::Gru4Rec model(BatchedConfig(dataset, 8));
    return model.TrainEpoch(split.train);
  };
  double l1 = run(1);
  double l4 = run(4);
  // The per-shard gradient reduce changes float summation order, nothing
  // else; losses must agree tightly (they are sums of per-example forward
  // passes on near-identical parameters).
  EXPECT_NEAR(l1, l4, 1e-3 * (1.0 + std::abs(l1)));
}

TEST(BatchedTrainingTest, BatchedTrainingLearns) {
  ThreadCountGuard guard;
  SetDefaultThreads(4);
  data::Dataset dataset = data::MakeDataset(data::TinySpec());
  data::Split split = data::LeaveLastOut(dataset);
  models::Gru4Rec model(BatchedConfig(dataset, 8));
  double first = model.TrainEpoch(split.train);
  double last = first;
  for (int e = 0; e < 4; ++e) last = model.TrainEpoch(split.train);
  EXPECT_LT(last, first);
}

}  // namespace
}  // namespace causer
