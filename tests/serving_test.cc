// Serving equivalence suite: the incremental session path (NewSessionState /
// AdvanceState / ScoreFromState) must be bit-identical to scoring the full
// appended history with ScoreAll — for the plain GRU4Rec backbone and for
// Causer with either backbone, with and without the causal filter, at every
// thread count, including window slides past max_history. The engine's
// batched GEMM + fused top-k responses must in turn equal eval::TopK of
// those scores.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cpu.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "models/gru4rec.h"
#include "serve/engine.h"
#include "serve/session_store.h"

namespace causer::serve {
namespace {

const data::Dataset& TinyData() {
  static data::Dataset d = data::MakeDataset(data::TinySpec());
  return d;
}

const data::Split& TinySplit() {
  static data::Split s = data::LeaveLastOut(TinyData());
  return s;
}

core::CauserConfig TinyConfig(core::Backbone backbone) {
  core::CauserConfig c = core::DefaultCauserConfig(TinyData(), backbone);
  c.base.embedding_dim = 8;
  c.base.hidden_dim = 8;
  c.encoder_hidden = 8;
  c.cluster_dim = 8;
  c.aux_steps_per_epoch = 5;
  return c;
}

struct ThreadCountGuard {
  ~ThreadCountGuard() { SetDefaultThreads(1); }
};

/// Advances a session one step at a time and checks that every intermediate
/// ScoreFromState equals ScoreAll over the appended prefix, float for float.
void ExpectIncrementalMatchesReplay(models::SequentialRecommender& model,
                                    int user,
                                    const std::vector<data::Step>& history,
                                    const std::string& label) {
  auto state = model.NewSessionState(user);
  std::vector<data::Step> prefix;
  for (size_t t = 0; t < history.size(); ++t) {
    model.AdvanceState(*state, history[t]);
    prefix.push_back(history[t]);
    auto incremental = model.ScoreFromState(*state);
    auto replay = model.ScoreAll(user, prefix);
    ASSERT_EQ(incremental.size(), replay.size()) << label << " step " << t;
    for (size_t i = 0; i < replay.size(); ++i) {
      ASSERT_EQ(incremental[i], replay[i])
          << label << " user " << user << " step " << t << " item " << i;
    }
  }
}

/// A deterministic synthetic history longer than max_history (12), so the
/// session window slides and the lazy rebuild path runs.
std::vector<data::Step> LongHistory(int user, int num_items, int length) {
  std::vector<data::Step> history(length);
  for (int t = 0; t < length; ++t) {
    history[t].items = {(user * 7 + t * 3) % num_items,
                        (user * 11 + t * 5) % num_items};
  }
  return history;
}

TEST(ServingEquivalenceTest, Gru4RecIncrementalMatchesScoreAll) {
  ThreadCountGuard guard;
  models::ModelConfig config;
  config.num_users = TinyData().num_users;
  config.num_items = TinyData().num_items;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  models::Gru4Rec model(config);
  for (int threads : {1, 8}) {
    SetDefaultThreads(threads);
    const std::string label = "gru4rec t" + std::to_string(threads);
    for (int user : {0, 1, 2}) {
      ExpectIncrementalMatchesReplay(model, user,
                                     TinySplit().test[user].history, label);
      // 30 steps > max_history = 12: the window slides every advance.
      ExpectIncrementalMatchesReplay(
          model, user, LongHistory(user, config.num_items, 30),
          label + " long");
    }
  }
}

TEST(ServingEquivalenceTest, CauserIncrementalMatchesScoreAll) {
  ThreadCountGuard guard;
  for (auto backbone : {core::Backbone::kGru, core::Backbone::kLstm}) {
    for (bool causal : {true, false}) {
      core::CauserConfig config = TinyConfig(backbone);
      config.use_causal = causal;
      core::CauserModel model(config);
      // A couple of epochs makes the learned filter (and so the candidate
      // grouping) nontrivial before the equivalence check.
      core::TrainCauser(model, TinySplit(), {.max_epochs = 2, .patience = 1});
      for (int threads : {1, 8}) {
        SetDefaultThreads(threads);
        const std::string label =
            std::string(backbone == core::Backbone::kGru ? "gru" : "lstm") +
            (causal ? "+causal" : "-causal") + " t" +
            std::to_string(threads);
        for (int user : {0, 3}) {
          ExpectIncrementalMatchesReplay(
              model, user, TinySplit().test[user].history, label);
          ExpectIncrementalMatchesReplay(
              model, user,
              LongHistory(user, TinyData().num_items, 30), label + " long");
        }
      }
    }
  }
}

TEST(ServingEngineTest, BatchedResponsesMatchScoreAllTopK) {
  ThreadCountGuard guard;
  core::CauserModel model(TinyConfig(core::Backbone::kGru));
  core::TrainCauser(model, TinySplit(), {.max_epochs = 2, .patience = 1});
  ServingConfig sc;
  sc.batch_max = 8;
  sc.batch_wait_us = 1000;
  sc.top_k = 5;
  ServingEngine engine(model, sc);
  const int num_clients = 8;
  std::vector<Response> responses(num_clients);
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      const auto& inst = TinySplit().test[c];
      Request request;
      request.user = inst.user;
      request.bootstrap = &inst.history;
      responses[c] = engine.Handle(request);
    });
  }
  for (auto& client : clients) client.join();
  for (int c = 0; c < num_clients; ++c) {
    const auto& inst = TinySplit().test[c];
    auto scores = model.ScoreAll(inst.user, inst.history);
    auto ranked = eval::TopK(scores, sc.top_k);
    ASSERT_EQ(responses[c].items.size(), ranked.size()) << "user " << c;
    for (size_t j = 0; j < ranked.size(); ++j) {
      EXPECT_EQ(responses[c].items[j], ranked[j]) << "user " << c;
      EXPECT_EQ(responses[c].scores[j], scores[ranked[j]]) << "user " << c;
    }
  }
}

TEST(ServingEngineTest, DuplicateUsersInOneBatchFoldIntoOneSession) {
  models::ModelConfig config;
  config.num_users = TinyData().num_users;
  config.num_items = TinyData().num_items;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  models::Gru4Rec model(config);
  ServingConfig sc;
  sc.top_k = 5;
  ServingEngine engine(model, sc);
  const auto& history = TinySplit().test[0].history;
  ASSERT_GE(history.size(), 2u);
  std::vector<data::Step> bootstrap(history.begin(), history.end() - 2);
  Request first, second;
  first.user = second.user = TinySplit().test[0].user;
  first.bootstrap = second.bootstrap = &bootstrap;
  first.append = &history[history.size() - 2];
  second.append = &history[history.size() - 1];
  auto responses = engine.ScoreBatch({first, second});
  // Both appends land in order; both requests score the final state.
  auto scores = model.ScoreAll(first.user, history);
  auto ranked = eval::TopK(scores, sc.top_k);
  for (const Response& response : responses) {
    ASSERT_EQ(response.items.size(), ranked.size());
    for (size_t j = 0; j < ranked.size(); ++j) {
      EXPECT_EQ(response.items[j], ranked[j]);
      EXPECT_EQ(response.scores[j], scores[ranked[j]]);
    }
  }
}

// Regression (ASan): a batch with more distinct users than max_sessions
// used to LRU-evict an Entry whose SessionState* an earlier request in the
// same ProcessBatch still held, so Phase 2's StateRep/ScoreFromState read
// freed memory. Sessions referenced by the in-flight batch are now pinned
// (shared handles) and skipped as eviction victims.
TEST(ServingEngineTest, EvictionDuringBatchKeepsInFlightSessionsAlive) {
  models::ModelConfig config;
  config.num_users = TinyData().num_users;
  config.num_items = TinyData().num_items;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  models::Gru4Rec model(config);
  ServingConfig sc;
  sc.top_k = 3;
  sc.batch_max = 8;
  sc.max_sessions = 2;  // < batch size: later Acquires must evict
  ServingEngine engine(model, sc);
  const int num_users = 8;
  std::vector<Request> requests(num_users);
  for (int u = 0; u < num_users; ++u) {
    requests[u].user = TinySplit().test[u].user;
    requests[u].bootstrap = &TinySplit().test[u].history;
  }
  auto responses = engine.ScoreBatch(requests);
  ASSERT_EQ(responses.size(), static_cast<size_t>(num_users));
  for (int u = 0; u < num_users; ++u) {
    const auto& inst = TinySplit().test[u];
    auto scores = model.ScoreAll(inst.user, inst.history);
    auto ranked = eval::TopK(scores, sc.top_k);
    ASSERT_EQ(responses[u].items.size(), ranked.size()) << "user " << u;
    for (size_t j = 0; j < ranked.size(); ++j) {
      EXPECT_EQ(responses[u].items[j], ranked[j]) << "user " << u;
      EXPECT_EQ(responses[u].scores[j], scores[ranked[j]]) << "user " << u;
    }
  }
  // The cap is exceeded only while the batch pins its sessions; the next
  // session-creating acquire finds them unpinned and shrinks the store
  // back under the cap.
  EXPECT_LE(engine.store().size(), num_users);
  Request fresh;
  fresh.user = TinySplit().test[num_users].user;
  fresh.bootstrap = &TinySplit().test[num_users].history;
  auto follow_up = engine.ScoreBatch({fresh});
  ASSERT_EQ(follow_up.size(), 1u);
  EXPECT_LE(engine.store().size(), sc.max_sessions);
}

TEST(ServingEngineTest, SessionStoreEvictsLruAndRebuildsFromBootstrap) {
  core::CauserModel model(TinyConfig(core::Backbone::kGru));
  ServingConfig sc;
  sc.top_k = 3;
  sc.max_sessions = 4;
  ServingEngine engine(model, sc);
  const int num_users = 16;
  for (int round = 0; round < 2; ++round) {
    for (int u = 0; u < num_users; ++u) {
      const auto& inst = TinySplit().test[u];
      Request request;
      request.user = inst.user;
      request.bootstrap = &inst.history;
      auto responses = engine.ScoreBatch({request});
      ASSERT_EQ(responses.size(), 1u);
      auto scores = model.ScoreAll(inst.user, inst.history);
      auto ranked = eval::TopK(scores, sc.top_k);
      ASSERT_EQ(responses[0].items.size(), ranked.size())
          << "round " << round << " user " << u;
      for (size_t j = 0; j < ranked.size(); ++j) {
        EXPECT_EQ(responses[0].items[j], ranked[j]);
      }
      EXPECT_LE(engine.store().size(), sc.max_sessions);
    }
  }
}

// Regression: a Handle racing engine shutdown used to enqueue onto a
// dispatcher that had already drained and exited, blocking on done_cv_
// forever. It must fail fast with kShuttingDown instead.
TEST(ServingEngineTest, HandleAfterStopFailsFastInsteadOfHanging) {
  models::ModelConfig config;
  config.num_users = TinyData().num_users;
  config.num_items = TinyData().num_items;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  models::Gru4Rec model(config);
  ServingConfig sc;
  sc.top_k = 3;
  ServingEngine engine(model, sc);
  Request request;
  request.user = TinySplit().test[0].user;
  request.bootstrap = &TinySplit().test[0].history;
  Response before = engine.Handle(request);
  EXPECT_EQ(before.status, ResponseStatus::kOk);
  EXPECT_FALSE(before.items.empty());
  engine.Stop();
  // Would deadlock before the fix; gtest has no timeout, so a hang here is
  // the failure mode the CI job surfaces.
  Response after = engine.Handle(request);
  EXPECT_EQ(after.status, ResponseStatus::kShuttingDown);
  EXPECT_TRUE(after.items.empty());
  engine.Stop();  // idempotent
}

// A negative LRU capacity must clamp to 0 (= unbounded) rather than
// reaching the store raw; the documented contract of the flag table.
TEST(ServingEngineTest, NegativeMaxSessionsClampsToUnbounded) {
  models::ModelConfig config;
  config.num_users = TinyData().num_users;
  config.num_items = TinyData().num_items;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  models::Gru4Rec model(config);
  ServingConfig sc;
  sc.top_k = 3;
  sc.max_sessions = -5;
  ServingEngine engine(model, sc);
  EXPECT_EQ(engine.config().max_sessions, 0);
  std::vector<Request> requests(6);
  for (int u = 0; u < 6; ++u) {
    requests[u].user = TinySplit().test[u].user;
    requests[u].bootstrap = &TinySplit().test[u].history;
  }
  engine.ScoreBatch(requests);
  EXPECT_EQ(engine.store().size(), 6);
}

// serve.request_seconds must count one observation per request on both the
// micro-batcher path (Handle) and the synchronous path (ScoreBatch), or
// latency histograms undercount under test/replay traffic.
TEST(ServingEngineTest, RequestSecondsObservedOnBothPaths) {
  models::ModelConfig config;
  config.num_users = TinyData().num_users;
  config.num_items = TinyData().num_items;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  models::Gru4Rec model(config);
  ServingConfig sc;
  sc.top_k = 3;
  ServingEngine engine(model, sc);
  metrics::SetEnabled(true);
  const uint64_t before = ServeMetrics().request_seconds.Count();
  const uint64_t before_requests = ServeMetrics().requests.Value();
  std::vector<Request> requests(3);
  for (int u = 0; u < 3; ++u) {
    requests[u].user = TinySplit().test[u].user;
    requests[u].bootstrap = &TinySplit().test[u].history;
  }
  engine.ScoreBatch(requests);  // synchronous path: 3 requests
  for (int u = 0; u < 2; ++u) {
    engine.Handle(requests[u]);  // micro-batcher path: 2 requests
  }
  const uint64_t observed = ServeMetrics().request_seconds.Count() - before;
  const uint64_t counted = ServeMetrics().requests.Value() - before_requests;
  metrics::SetEnabled(false);
  EXPECT_EQ(observed, 5u);
  EXPECT_EQ(observed, counted);
}

/// A trained tiny GRU4Rec (the single-GEMM model the int8 path targets).
/// Trained, not fresh: quantization error depends on the learned weight
/// distribution, so the equality claims below must survive real weights.
models::Gru4Rec& TrainedTinyGru() {
  static models::Gru4Rec* model = [] {
    models::ModelConfig config;
    config.num_users = TinyData().num_users;
    config.num_items = TinyData().num_items;
    config.embedding_dim = 8;
    config.hidden_dim = 8;
    auto* m = new models::Gru4Rec(config);
    models::Fit(*m, TinySplit(), {.max_epochs = 2, .patience = 1});
    return m;
  }();
  return *model;
}

std::vector<Request> TestSplitRequests(int count) {
  std::vector<Request> requests(count);
  for (int u = 0; u < count; ++u) {
    requests[u].user = TinySplit().test[u].user;
    requests[u].bootstrap = &TinySplit().test[u].history;
  }
  return requests;
}

/// Restores automatic ISA selection (and 1 thread) when a test exits.
struct IsaGuard {
  ~IsaGuard() {
    cpu::ResetIsaForTest();
    SetDefaultThreads(1);
  }
};

TEST(ServingQuantTest, Int8RerankMatchesFp32TopKAcrossThreadsAndIsas) {
  IsaGuard guard;
  models::Gru4Rec& model = TrainedTinyGru();
  // The default rerank_k (2048) covers this tiny catalog entirely, so the
  // int8+re-rank responses are provably identical to fp32 — items and
  // score bits — whatever the quantization error.
  ServingConfig fp32_config;
  fp32_config.top_k = 5;
  ServingConfig int8_config = fp32_config;
  int8_config.quantize_int8 = true;
  const std::vector<Request> requests = TestSplitRequests(8);
  for (const char* isa : {"scalar", "avx2"}) {
    if (!cpu::SetIsaOverride(isa)) continue;  // tier not compiled in
    for (int threads : {1, 8}) {
      SetDefaultThreads(threads);
      ServingEngine fp32_engine(model, fp32_config);
      ServingEngine int8_engine(model, int8_config);
      const auto fp32 = fp32_engine.ScoreBatch(requests);
      const auto int8 = int8_engine.ScoreBatch(requests);
      ASSERT_EQ(fp32.size(), int8.size());
      for (size_t r = 0; r < fp32.size(); ++r) {
        const std::string label = std::string("isa ") + isa + " t" +
                                  std::to_string(threads) + " req " +
                                  std::to_string(r);
        ASSERT_EQ(fp32[r].items, int8[r].items) << label;
        ASSERT_EQ(fp32[r].scores.size(), int8[r].scores.size()) << label;
        for (size_t j = 0; j < fp32[r].scores.size(); ++j) {
          EXPECT_EQ(fp32[r].scores[j], int8[r].scores[j]) << label;
        }
      }
    }
    cpu::ResetIsaForTest();
  }
}

TEST(ServingQuantTest, Int8ScoresAreFp32ExactEvenWithMinimalRerank) {
  ThreadCountGuard guard;
  models::Gru4Rec& model = TrainedTinyGru();
  // rerank_k clamps down to top_k: the candidate *set* may now deviate
  // from fp32, but every returned score must still carry the fp32 bits of
  // that item's true inner product — the re-rank guarantee.
  ServingConfig sc;
  sc.top_k = 5;
  sc.quantize_int8 = true;
  sc.rerank_k = 1;  // clamped up to top_k by the engine
  ServingEngine engine(model, sc);
  const std::vector<Request> requests = TestSplitRequests(8);
  const auto responses = engine.ScoreBatch(requests);
  for (size_t r = 0; r < responses.size(); ++r) {
    const auto& inst = TinySplit().test[r];
    const auto scores = model.ScoreAll(inst.user, inst.history);
    ASSERT_EQ(responses[r].items.size(), static_cast<size_t>(sc.top_k));
    for (size_t j = 0; j < responses[r].items.size(); ++j) {
      const int item = responses[r].items[j];
      EXPECT_EQ(responses[r].scores[j], scores[item])
          << "req " << r << " item " << item;
    }
  }
}

TEST(ServingQuantTest, Int8NdcgDeltaWithinTolerance) {
  ThreadCountGuard guard;
  models::Gru4Rec& model = TrainedTinyGru();
  // The paper's eval protocol (NDCG@Z, Z = 5) through engine-backed
  // scorers: the int8 path with the default --rerank-k must hold the
  // accuracy gate |NDCG_int8 - NDCG_fp32| <= 1e-3 on the eval suite.
  constexpr int kZ = 5;
  auto engine_scorer = [](ServingEngine& engine, int catalog) {
    return [&engine, catalog](const data::EvalInstance& inst) {
      Request request;
      request.user = inst.user;
      request.bootstrap = &inst.history;
      const Response response = engine.Handle(request);
      // Only the returned top-k carries scores; everything else sinks far
      // below. NDCG@Z with Z <= top_k only reads the first Z ranks, so
      // this reproduces the engine's ranking exactly.
      std::vector<float> scores(catalog, -1e30f);
      for (size_t j = 0; j < response.items.size(); ++j) {
        scores[response.items[j]] = response.scores[j];
      }
      return scores;
    };
  };
  const int catalog = TinyData().num_items;
  ServingConfig fp32_config;
  fp32_config.top_k = kZ;
  ServingConfig int8_config = fp32_config;
  int8_config.quantize_int8 = true;
  ServingEngine fp32_engine(model, fp32_config);
  ServingEngine int8_engine(model, int8_config);
  const auto fp32 = eval::Evaluate(engine_scorer(fp32_engine, catalog),
                                   TinySplit().test, kZ);
  const auto int8 = eval::Evaluate(engine_scorer(int8_engine, catalog),
                                   TinySplit().test, kZ);
  EXPECT_LE(std::fabs(int8.ndcg - fp32.ndcg), 1e-3)
      << "int8 " << int8.ndcg << " fp32 " << fp32.ndcg;
  // With the default rerank_k covering the catalog the delta is exactly 0.
  EXPECT_DOUBLE_EQ(int8.ndcg, fp32.ndcg);
  EXPECT_DOUBLE_EQ(int8.f1, fp32.f1);
}

}  // namespace
}  // namespace causer::serve
