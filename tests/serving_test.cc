// Serving equivalence suite: the incremental session path (NewSessionState /
// AdvanceState / ScoreFromState) must be bit-identical to scoring the full
// appended history with ScoreAll — for the plain GRU4Rec backbone and for
// Causer with either backbone, with and without the causal filter, at every
// thread count, including window slides past max_history. The engine's
// batched GEMM + fused top-k responses must in turn equal eval::TopK of
// those scores.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "models/gru4rec.h"
#include "serve/engine.h"
#include "serve/session_store.h"

namespace causer::serve {
namespace {

const data::Dataset& TinyData() {
  static data::Dataset d = data::MakeDataset(data::TinySpec());
  return d;
}

const data::Split& TinySplit() {
  static data::Split s = data::LeaveLastOut(TinyData());
  return s;
}

core::CauserConfig TinyConfig(core::Backbone backbone) {
  core::CauserConfig c = core::DefaultCauserConfig(TinyData(), backbone);
  c.base.embedding_dim = 8;
  c.base.hidden_dim = 8;
  c.encoder_hidden = 8;
  c.cluster_dim = 8;
  c.aux_steps_per_epoch = 5;
  return c;
}

struct ThreadCountGuard {
  ~ThreadCountGuard() { SetDefaultThreads(1); }
};

/// Advances a session one step at a time and checks that every intermediate
/// ScoreFromState equals ScoreAll over the appended prefix, float for float.
void ExpectIncrementalMatchesReplay(models::SequentialRecommender& model,
                                    int user,
                                    const std::vector<data::Step>& history,
                                    const std::string& label) {
  auto state = model.NewSessionState(user);
  std::vector<data::Step> prefix;
  for (size_t t = 0; t < history.size(); ++t) {
    model.AdvanceState(*state, history[t]);
    prefix.push_back(history[t]);
    auto incremental = model.ScoreFromState(*state);
    auto replay = model.ScoreAll(user, prefix);
    ASSERT_EQ(incremental.size(), replay.size()) << label << " step " << t;
    for (size_t i = 0; i < replay.size(); ++i) {
      ASSERT_EQ(incremental[i], replay[i])
          << label << " user " << user << " step " << t << " item " << i;
    }
  }
}

/// A deterministic synthetic history longer than max_history (12), so the
/// session window slides and the lazy rebuild path runs.
std::vector<data::Step> LongHistory(int user, int num_items, int length) {
  std::vector<data::Step> history(length);
  for (int t = 0; t < length; ++t) {
    history[t].items = {(user * 7 + t * 3) % num_items,
                        (user * 11 + t * 5) % num_items};
  }
  return history;
}

TEST(ServingEquivalenceTest, Gru4RecIncrementalMatchesScoreAll) {
  ThreadCountGuard guard;
  models::ModelConfig config;
  config.num_users = TinyData().num_users;
  config.num_items = TinyData().num_items;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  models::Gru4Rec model(config);
  for (int threads : {1, 8}) {
    SetDefaultThreads(threads);
    const std::string label = "gru4rec t" + std::to_string(threads);
    for (int user : {0, 1, 2}) {
      ExpectIncrementalMatchesReplay(model, user,
                                     TinySplit().test[user].history, label);
      // 30 steps > max_history = 12: the window slides every advance.
      ExpectIncrementalMatchesReplay(
          model, user, LongHistory(user, config.num_items, 30),
          label + " long");
    }
  }
}

TEST(ServingEquivalenceTest, CauserIncrementalMatchesScoreAll) {
  ThreadCountGuard guard;
  for (auto backbone : {core::Backbone::kGru, core::Backbone::kLstm}) {
    for (bool causal : {true, false}) {
      core::CauserConfig config = TinyConfig(backbone);
      config.use_causal = causal;
      core::CauserModel model(config);
      // A couple of epochs makes the learned filter (and so the candidate
      // grouping) nontrivial before the equivalence check.
      core::TrainCauser(model, TinySplit(), {.max_epochs = 2, .patience = 1});
      for (int threads : {1, 8}) {
        SetDefaultThreads(threads);
        const std::string label =
            std::string(backbone == core::Backbone::kGru ? "gru" : "lstm") +
            (causal ? "+causal" : "-causal") + " t" +
            std::to_string(threads);
        for (int user : {0, 3}) {
          ExpectIncrementalMatchesReplay(
              model, user, TinySplit().test[user].history, label);
          ExpectIncrementalMatchesReplay(
              model, user,
              LongHistory(user, TinyData().num_items, 30), label + " long");
        }
      }
    }
  }
}

TEST(ServingEngineTest, BatchedResponsesMatchScoreAllTopK) {
  ThreadCountGuard guard;
  core::CauserModel model(TinyConfig(core::Backbone::kGru));
  core::TrainCauser(model, TinySplit(), {.max_epochs = 2, .patience = 1});
  ServingConfig sc;
  sc.batch_max = 8;
  sc.batch_wait_us = 1000;
  sc.top_k = 5;
  ServingEngine engine(model, sc);
  const int num_clients = 8;
  std::vector<Response> responses(num_clients);
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      const auto& inst = TinySplit().test[c];
      Request request;
      request.user = inst.user;
      request.bootstrap = &inst.history;
      responses[c] = engine.Handle(request);
    });
  }
  for (auto& client : clients) client.join();
  for (int c = 0; c < num_clients; ++c) {
    const auto& inst = TinySplit().test[c];
    auto scores = model.ScoreAll(inst.user, inst.history);
    auto ranked = eval::TopK(scores, sc.top_k);
    ASSERT_EQ(responses[c].items.size(), ranked.size()) << "user " << c;
    for (size_t j = 0; j < ranked.size(); ++j) {
      EXPECT_EQ(responses[c].items[j], ranked[j]) << "user " << c;
      EXPECT_EQ(responses[c].scores[j], scores[ranked[j]]) << "user " << c;
    }
  }
}

TEST(ServingEngineTest, DuplicateUsersInOneBatchFoldIntoOneSession) {
  models::ModelConfig config;
  config.num_users = TinyData().num_users;
  config.num_items = TinyData().num_items;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  models::Gru4Rec model(config);
  ServingConfig sc;
  sc.top_k = 5;
  ServingEngine engine(model, sc);
  const auto& history = TinySplit().test[0].history;
  ASSERT_GE(history.size(), 2u);
  std::vector<data::Step> bootstrap(history.begin(), history.end() - 2);
  Request first, second;
  first.user = second.user = TinySplit().test[0].user;
  first.bootstrap = second.bootstrap = &bootstrap;
  first.append = &history[history.size() - 2];
  second.append = &history[history.size() - 1];
  auto responses = engine.ScoreBatch({first, second});
  // Both appends land in order; both requests score the final state.
  auto scores = model.ScoreAll(first.user, history);
  auto ranked = eval::TopK(scores, sc.top_k);
  for (const Response& response : responses) {
    ASSERT_EQ(response.items.size(), ranked.size());
    for (size_t j = 0; j < ranked.size(); ++j) {
      EXPECT_EQ(response.items[j], ranked[j]);
      EXPECT_EQ(response.scores[j], scores[ranked[j]]);
    }
  }
}

TEST(ServingEngineTest, SessionStoreEvictsLruAndRebuildsFromBootstrap) {
  core::CauserModel model(TinyConfig(core::Backbone::kGru));
  ServingConfig sc;
  sc.top_k = 3;
  sc.max_sessions = 4;
  ServingEngine engine(model, sc);
  const int num_users = 16;
  for (int round = 0; round < 2; ++round) {
    for (int u = 0; u < num_users; ++u) {
      const auto& inst = TinySplit().test[u];
      Request request;
      request.user = inst.user;
      request.bootstrap = &inst.history;
      auto responses = engine.ScoreBatch({request});
      ASSERT_EQ(responses.size(), 1u);
      auto scores = model.ScoreAll(inst.user, inst.history);
      auto ranked = eval::TopK(scores, sc.top_k);
      ASSERT_EQ(responses[0].items.size(), ranked.size())
          << "round " << round << " user " << u;
      for (size_t j = 0; j < ranked.size(); ++j) {
        EXPECT_EQ(responses[0].items[j], ranked[j]);
      }
      EXPECT_LE(engine.store().size(), sc.max_sessions);
    }
  }
}

}  // namespace
}  // namespace causer::serve
