#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "data/generator.h"
#include "data/split.h"
#include "eval/evaluator.h"
#include "eval/explanation_eval.h"
#include "eval/metrics.h"
#include "eval/significance.h"

namespace causer::eval {
namespace {

TEST(TopKTest, OrdersByScore) {
  std::vector<float> scores = {0.1f, 0.9f, 0.5f, 0.7f};
  EXPECT_EQ(TopK(scores, 2), (std::vector<int>{1, 3}));
  EXPECT_EQ(TopK(scores, 4), (std::vector<int>{1, 3, 2, 0}));
}

TEST(TopKTest, TiesBrokenByIndex) {
  std::vector<float> scores = {0.5f, 0.5f, 0.5f};
  EXPECT_EQ(TopK(scores, 2), (std::vector<int>{0, 1}));
}

TEST(TopKTest, HeapSelectionMatchesFullSortIncludingTies) {
  // The heap selection must return exactly what a full stable ranking
  // would: score descending, index ascending on ties. Randomized scores
  // drawn from a tiny value set force frequent exact ties.
  std::mt19937 rng(123);
  std::uniform_int_distribution<int> coarse(0, 9);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng() % 400);
    std::vector<float> scores(n);
    for (auto& s : scores) s = 0.1f * static_cast<float>(coarse(rng));
    std::vector<int> all(n);
    for (int i = 0; i < n; ++i) all[i] = i;
    std::sort(all.begin(), all.end(), [&](int a, int b) {
      if (scores[a] != scores[b]) return scores[a] > scores[b];
      return a < b;
    });
    for (int k : {1, 5, 20, n}) {
      std::vector<int> expected(all.begin(),
                                all.begin() + std::min(k, n));
      EXPECT_EQ(TopK(scores, k), expected)
          << "trial " << trial << " n=" << n << " k=" << k;
    }
  }
}

TEST(TopKTest, KLargerThanSize) {
  std::vector<float> scores = {1.0f, 2.0f};
  EXPECT_EQ(TopK(scores, 10).size(), 2u);
}

TEST(TopKTest, ZeroAndNegativeKGiveEmpty) {
  std::vector<float> scores = {1.0f, 2.0f, 3.0f};
  EXPECT_TRUE(TopK(scores, 0).empty());
  EXPECT_TRUE(TopK(scores, -3).empty());
  EXPECT_TRUE(TopK({}, 5).empty());
}

TEST(MetricsTest, PrecisionRecallF1HandComputed) {
  std::vector<int> ranked = {1, 2, 3, 4, 5};
  std::vector<int> relevant = {2, 5, 9};
  EXPECT_DOUBLE_EQ(Precision(ranked, relevant), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(Recall(ranked, relevant), 2.0 / 3.0);
  double p = 0.4, r = 2.0 / 3.0;
  EXPECT_NEAR(F1(ranked, relevant), 2 * p * r / (p + r), 1e-12);
}

TEST(MetricsTest, PerfectAndZeroF1) {
  EXPECT_DOUBLE_EQ(F1({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(F1({3, 4}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(F1({}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(F1({1}, {}), 0.0);
}

TEST(MetricsTest, NdcgHandComputed) {
  // Hits at positions 1 and 3 (1-indexed), 2 relevant items.
  std::vector<int> ranked = {7, 8, 9};
  std::vector<int> relevant = {7, 9};
  double dcg = 1.0 / std::log2(2.0) + 1.0 / std::log2(4.0);
  double idcg = 1.0 / std::log2(2.0) + 1.0 / std::log2(3.0);
  EXPECT_NEAR(Ndcg(ranked, relevant), dcg / idcg, 1e-12);
}

TEST(MetricsTest, NdcgPerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(Ndcg({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(Ndcg({1, 9, 8}, {1}), 1.0);
}

TEST(MetricsTest, NdcgRewardsEarlierHits) {
  std::vector<int> relevant = {5};
  EXPECT_GT(Ndcg({5, 1, 2}, relevant), Ndcg({1, 2, 5}, relevant));
}

TEST(MetricsTest, NdcgEmptyRelevantIsZero) {
  EXPECT_DOUBLE_EQ(Ndcg({1, 2}, {}), 0.0);
}

TEST(EvaluatorTest, AveragesOverInstances) {
  data::EvalInstance good;
  good.target_items = {0};
  data::EvalInstance bad;
  bad.target_items = {3};
  // Scorer always ranks item 0 first.
  Scorer scorer = [](const data::EvalInstance&) {
    return std::vector<float>{10.0f, 1.0f, 0.5f, 0.1f};
  };
  EvalResult r = Evaluate(scorer, {good, bad}, 1);
  EXPECT_EQ(r.per_instance_f1.size(), 2u);
  EXPECT_DOUBLE_EQ(r.per_instance_f1[0], 1.0);
  EXPECT_DOUBLE_EQ(r.per_instance_f1[1], 0.0);
  EXPECT_DOUBLE_EQ(r.f1, 0.5);
  EXPECT_DOUBLE_EQ(r.ndcg, 0.5);
}

TEST(EvaluatorTest, ZLargerThanCatalogRanksWholeCatalog) {
  data::EvalInstance inst;
  inst.target_items = {2};
  Scorer scorer = [](const data::EvalInstance&) {
    return std::vector<float>{3.0f, 2.0f, 1.0f};
  };
  // z = 50 on a 3-item catalog must behave like z = 3, not crash or read
  // out of bounds.
  EvalResult r = Evaluate(scorer, {inst}, 50);
  EXPECT_GT(r.ndcg, 0.0);
  EXPECT_DOUBLE_EQ(r.ndcg, Evaluate(scorer, {inst}, 3).ndcg);
}

TEST(EvaluatorTest, EmptyScoreVectorCountsAsMiss) {
  data::EvalInstance scored;
  scored.target_items = {0};
  data::EvalInstance unscored;
  unscored.user = 1;
  unscored.target_items = {0};
  Scorer scorer = [](const data::EvalInstance& inst) {
    if (inst.user == 1) return std::vector<float>{};
    return std::vector<float>{5.0f, 1.0f};
  };
  EvalResult r = Evaluate(scorer, {scored, unscored}, 1);
  ASSERT_EQ(r.per_instance_f1.size(), 2u);
  EXPECT_DOUBLE_EQ(r.per_instance_f1[0], 1.0);
  EXPECT_DOUBLE_EQ(r.per_instance_f1[1], 0.0);
  EXPECT_DOUBLE_EQ(r.f1, 0.5);
}

TEST(EvaluatorTest, EmptyInstancesGiveZero) {
  Scorer scorer = [](const data::EvalInstance&) {
    return std::vector<float>{1.0f};
  };
  EvalResult r = Evaluate(scorer, {}, 5);
  EXPECT_DOUBLE_EQ(r.f1, 0.0);
  EXPECT_TRUE(r.per_instance_ndcg.empty());
}

TEST(TTestTest, IdenticalSamplesNotSignificant) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  TTestResult r = PairedTTest(a, a);
  EXPECT_DOUBLE_EQ(r.t_statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(TTestTest, LargeConsistentDifferenceSignificant) {
  std::vector<double> a, b;
  Rng rng(8);
  for (int i = 0; i < 30; ++i) {
    double base = rng.Uniform();
    b.push_back(base);
    a.push_back(base + 1.0 + 0.1 * rng.Normal());
  }
  TTestResult r = PairedTTest(a, b);
  EXPECT_GT(r.t_statistic, 10.0);
  EXPECT_LT(r.p_value, 0.001);
  EXPECT_GT(r.mean_difference, 0.9);
}

TEST(TTestTest, NoisyEqualMeansNotSignificant) {
  std::vector<double> a, b;
  Rng rng(9);
  for (int i = 0; i < 40; ++i) {
    a.push_back(rng.Normal());
    b.push_back(rng.Normal());
  }
  TTestResult r = PairedTTest(a, b);
  EXPECT_GT(r.p_value, 0.05);
}

TEST(TTestTest, KnownTDistributionValue) {
  // For t = 2.776 with df = 4, two-sided p = 0.05 (classic table value).
  EXPECT_NEAR(StudentTTwoSidedPValue(2.776, 4), 0.05, 1e-3);
  // t = 0 is always p = 1.
  EXPECT_NEAR(StudentTTwoSidedPValue(0.0, 10), 1.0, 1e-9);
}

TEST(TTestTest, SymmetricInSign) {
  EXPECT_NEAR(StudentTTwoSidedPValue(2.0, 7), StudentTTwoSidedPValue(-2.0, 7),
              1e-12);
}

TEST(ExplanationSetTest, BuiltFromCausalTargetsOnly) {
  data::Dataset d = data::MakeDataset(data::TinySpec());
  data::Split split = data::LeaveLastOut(d);
  Rng rng(10);
  auto examples = BuildExplanationSet(split.test, d, 100, rng);
  EXPECT_FALSE(examples.empty());
  for (const auto& ex : examples) {
    EXPECT_FALSE(ex.true_cause_positions.empty());
    for (int pos : ex.true_cause_positions) {
      EXPECT_GE(pos, 0);
      EXPECT_LT(pos, static_cast<int>(ex.instance->history.size()));
    }
  }
}

TEST(ExplanationSetTest, RespectsMaxExamples) {
  data::Dataset d = data::MakeDataset(data::TinySpec());
  data::Split split = data::LeaveLastOut(d);
  Rng rng(11);
  auto examples = BuildExplanationSet(split.test, d, 5, rng);
  EXPECT_LE(examples.size(), 5u);
}

TEST(ExplanationEvalTest, OracleExplainerScoresPerfectly) {
  data::Dataset d = data::MakeDataset(data::TinySpec());
  data::Split split = data::LeaveLastOut(d);
  Rng rng(12);
  auto examples = BuildExplanationSet(split.test, d, 50, rng);
  ASSERT_FALSE(examples.empty());
  // Oracle: looks up the true causes (via the matching example).
  Explainer oracle = [&](const data::EvalInstance& inst, int item) {
    std::vector<double> scores(inst.history.size(), 0.0);
    for (const auto& ex : examples) {
      if (ex.instance == &inst && ex.target_item == item) {
        for (int pos : ex.true_cause_positions) scores[pos] = 1.0;
      }
    }
    return scores;
  };
  ExplanationResult r = EvaluateExplanations(oracle, examples, 3);
  EXPECT_GT(r.ndcg, 0.95);
  EXPECT_GT(r.f1, 0.6);  // F1@3 is capped when there are < 3 true causes
  EXPECT_EQ(r.num_examples, static_cast<int>(examples.size()));
  EXPECT_GE(r.avg_causes_per_example, 1.0);
}

TEST(ExplanationEvalTest, RandomWorseThanOracle) {
  data::Dataset d = data::MakeDataset(data::TinySpec());
  data::Split split = data::LeaveLastOut(d);
  Rng rng(13);
  auto examples = BuildExplanationSet(split.test, d, 50, rng);
  ASSERT_FALSE(examples.empty());
  Rng noise(14);
  Explainer random_explainer = [&](const data::EvalInstance& inst, int) {
    std::vector<double> scores(inst.history.size());
    for (auto& s : scores) s = noise.Uniform();
    return scores;
  };
  Explainer oracle = [&](const data::EvalInstance& inst, int item) {
    std::vector<double> scores(inst.history.size(), 0.0);
    for (const auto& ex : examples) {
      if (ex.instance == &inst && ex.target_item == item) {
        for (int pos : ex.true_cause_positions) scores[pos] = 1.0;
      }
    }
    return scores;
  };
  double random_ndcg = EvaluateExplanations(random_explainer, examples, 3).ndcg;
  double oracle_ndcg = EvaluateExplanations(oracle, examples, 3).ndcg;
  EXPECT_LT(random_ndcg, oracle_ndcg);
}

}  // namespace
}  // namespace causer::eval
