#include <gtest/gtest.h>

#include <cmath>

#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/init.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/rnn_cells.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace causer::nn {
namespace {

using tensor::Backward;
using tensor::Tensor;

Rng& TestRng() {
  static Rng rng(999);
  return rng;
}

TEST(InitTest, XavierBounds) {
  Rng rng(1);
  Tensor w = XavierUniform(10, 20, rng);
  float bound = std::sqrt(6.0f / 30.0f);
  for (float v : w.data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
  EXPECT_TRUE(w.requires_grad());
}

TEST(InitTest, ZeroParam) {
  Tensor b = ZeroParam(1, 5);
  for (float v : b.data()) EXPECT_EQ(v, 0.0f);
  EXPECT_TRUE(b.requires_grad());
}

TEST(ModuleTest, ParameterAggregation) {
  Linear a(3, 4, TestRng());
  Linear b(4, 2, TestRng(), /*with_bias=*/false);
  EXPECT_EQ(a.Parameters().size(), 2u);  // weight + bias
  EXPECT_EQ(b.Parameters().size(), 1u);
  EXPECT_EQ(a.NumParameters(), 3 * 4 + 4);
  EXPECT_EQ(b.NumParameters(), 4 * 2);
}

TEST(ModuleTest, ZeroGradClears) {
  Linear lin(2, 2, TestRng());
  Tensor x = Tensor::Full(1, 2, 1.0f);
  Backward(tensor::SquaredNorm(lin.Forward(x)));
  bool any = false;
  for (float g : lin.weight().grad()) any = any || g != 0.0f;
  EXPECT_TRUE(any);
  lin.ZeroGrad();
  for (float g : lin.weight().grad()) EXPECT_EQ(g, 0.0f);
}

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(2);
  Linear lin(2, 3, rng);
  Tensor x = Tensor::FromData(1, 2, {1.0f, -2.0f});
  Tensor y = lin.Forward(x);
  for (int c = 0; c < 3; ++c) {
    float expected = lin.weight().At(0, c) * 1.0f +
                     lin.weight().At(1, c) * -2.0f + lin.bias().At(0, c);
    EXPECT_NEAR(y.At(0, c), expected, 1e-5);
  }
}

TEST(LinearTest, BatchForward) {
  Linear lin(3, 2, TestRng());
  Tensor x = Tensor::Zeros(5, 3);
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 2);
}

TEST(MlpTest, ForwardShapeAndGrad) {
  Mlp mlp({4, 8, 2}, Mlp::Activation::kSigmoid, TestRng());
  Tensor x = Tensor::Full(3, 4, 0.5f);
  Tensor y = mlp.Forward(x);
  EXPECT_EQ(y.rows(), 3);
  EXPECT_EQ(y.cols(), 2);
  Backward(tensor::SquaredNorm(y));
  for (const auto& p : mlp.Parameters()) {
    EXPECT_FALSE(p.grad().empty());
  }
}

TEST(EmbeddingTest, RowLookup) {
  Embedding emb(5, 3, TestRng());
  Tensor row = emb.Row(2);
  EXPECT_EQ(row.rows(), 1);
  for (int c = 0; c < 3; ++c) EXPECT_EQ(row.At(0, c), emb.weight().At(2, c));
}

TEST(EmbeddingTest, GradientOnlyOnLookedUpRows) {
  Embedding emb(4, 2, TestRng());
  Backward(tensor::SquaredNorm(emb.Forward({1, 3})));
  const auto& g = emb.weight().grad();
  EXPECT_EQ(g[0 * 2], 0.0f);
  EXPECT_EQ(g[2 * 2], 0.0f);
  bool row1 = g[1 * 2] != 0.0f || g[1 * 2 + 1] != 0.0f;
  bool row3 = g[3 * 2] != 0.0f || g[3 * 2 + 1] != 0.0f;
  EXPECT_TRUE(row1);
  EXPECT_TRUE(row3);
}

TEST(GruCellTest, OutputShapeAndRange) {
  GruCell cell(3, 4, TestRng());
  Tensor x = Tensor::Full(1, 3, 0.5f);
  Tensor h = cell.InitialState();
  h = cell.Forward(x, h);
  EXPECT_EQ(h.rows(), 1);
  EXPECT_EQ(h.cols(), 4);
  for (float v : h.data()) {
    EXPECT_GT(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(GruCellTest, ZeroStatePersistsWithZeroInput) {
  GruCell cell(2, 3, TestRng());
  Tensor x = Tensor::Zeros(1, 2);
  Tensor h = cell.Forward(x, cell.InitialState());
  // With zero biases the candidate is tanh(0)=0, so the state stays 0.
  for (float v : h.data()) EXPECT_NEAR(v, 0.0f, 1e-6);
}

TEST(GruCellTest, GradientsFlowThroughTime) {
  GruCell cell(2, 3, TestRng());
  Tensor x = Tensor::Full(1, 2, 0.7f);
  Tensor h = cell.InitialState();
  for (int t = 0; t < 5; ++t) h = cell.Forward(x, h);
  Backward(tensor::SquaredNorm(h));
  int with_grad = 0;
  for (const auto& p : cell.Parameters()) {
    for (float g : p.grad()) {
      if (g != 0.0f) {
        ++with_grad;
        break;
      }
    }
  }
  EXPECT_GT(with_grad, 5);
}

TEST(LstmCellTest, ShapesAndGradients) {
  LstmCell cell(3, 4, TestRng());
  LstmState s = cell.InitialState();
  Tensor x = Tensor::Full(1, 3, 0.3f);
  for (int t = 0; t < 4; ++t) s = cell.Forward(x, s);
  EXPECT_EQ(s.h.cols(), 4);
  EXPECT_EQ(s.c.cols(), 4);
  Backward(tensor::SquaredNorm(s.h));
  EXPECT_FALSE(cell.Parameters()[0].grad().empty());
}

TEST(LstmCellTest, BatchedState) {
  LstmCell cell(2, 3, TestRng());
  LstmState s = cell.InitialState(4);
  EXPECT_EQ(s.h.rows(), 4);
  Tensor x = Tensor::Zeros(4, 2);
  s = cell.Forward(x, s);
  EXPECT_EQ(s.h.rows(), 4);
}

TEST(BilinearAttentionTest, WeightsFormDistribution) {
  BilinearAttention att(4, TestRng());
  Rng rng(3);
  Tensor h = Tensor::RandomNormal(6, 4, 1.0f, rng);
  Tensor q = Tensor::RandomNormal(1, 4, 1.0f, rng);
  Tensor w = att.Weights(h, q);
  EXPECT_EQ(w.rows(), 6);
  EXPECT_EQ(w.cols(), 1);
  float total = 0.0f;
  for (int r = 0; r < 6; ++r) {
    EXPECT_GT(w.At(r, 0), 0.0f);
    total += w.At(r, 0);
  }
  EXPECT_NEAR(total, 1.0f, 1e-5);
}

TEST(BilinearAttentionTest, PoolIsConvexCombination) {
  BilinearAttention att(3, TestRng());
  Tensor h = Tensor::Full(4, 3, 0.6f);
  Tensor q = Tensor::Full(1, 3, 0.2f);
  Tensor pooled = att.Pool(h, q);
  for (int c = 0; c < 3; ++c) EXPECT_NEAR(pooled.At(0, c), 0.6f, 1e-5);
}

TEST(CausalSelfAttentionTest, OutputShape) {
  CausalSelfAttention att(4, TestRng());
  Rng rng(4);
  Tensor x = Tensor::RandomNormal(5, 4, 1.0f, rng);
  Tensor y = att.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 4);
}

TEST(CausalSelfAttentionTest, MaskPreventsFutureLeakage) {
  CausalSelfAttention att(3, TestRng());
  Rng rng(5);
  Tensor x1 = Tensor::RandomNormal(4, 3, 1.0f, rng);
  Tensor x2 = x1.Clone();
  x2.At(3, 0) += 10.0f;  // change only the last position
  Tensor y1 = att.Forward(x1);
  Tensor y2 = att.Forward(x2);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_NEAR(y1.At(r, c), y2.At(r, c), 1e-5);
  }
}

TEST(LayerNormTest, NormalizesRows) {
  LayerNorm norm(4);
  Rng rng(31);
  Tensor x = Tensor::RandomNormal(3, 4, 5.0f, rng);
  Tensor y = norm.Forward(x);
  // With gamma = 1, beta = 0 each output row has mean ~0 and variance ~1.
  for (int r = 0; r < 3; ++r) {
    float mean = 0.0f, var = 0.0f;
    for (int c = 0; c < 4; ++c) mean += y.At(r, c);
    mean /= 4;
    for (int c = 0; c < 4; ++c) {
      float d = y.At(r, c) - mean;
      var += d * d;
    }
    var /= 4;
    EXPECT_NEAR(mean, 0.0f, 1e-4);
    EXPECT_NEAR(var, 1.0f, 1e-2);
  }
}

TEST(LayerNormTest, AffineParametersApplied) {
  LayerNorm norm(2);
  // gamma and beta are the first two registered parameters.
  auto params = norm.Parameters();
  params[0].At(0, 0) = 3.0f;  // gamma
  params[1].At(0, 1) = 7.0f;  // beta
  Tensor x = Tensor::FromData(1, 2, {1.0f, -1.0f});
  Tensor y = norm.Forward(x);
  // Normalized row is (1, -1); gamma scales col 0 by 3, beta shifts col 1.
  EXPECT_NEAR(y.At(0, 0), 3.0f, 1e-3);
  EXPECT_NEAR(y.At(0, 1), 6.0f, 1e-3);
}

TEST(LayerNormTest, GradientsFlow) {
  LayerNorm norm(3);
  Rng rng(32);
  Tensor x = Tensor::RandomNormal(2, 3, 1.0f, rng, /*requires_grad=*/true);
  tensor::Backward(tensor::SquaredNorm(norm.Forward(x)));
  EXPECT_FALSE(x.grad().empty());
  for (const auto& p : norm.Parameters()) EXPECT_FALSE(p.grad().empty());
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor x = Tensor::Full(1, 1, 5.0f, true);
  Sgd opt({x}, 0.1f);
  for (int i = 0; i < 200; ++i) {
    opt.ZeroGrad();
    Backward(tensor::SquaredNorm(x));
    opt.Step();
  }
  EXPECT_NEAR(x.Item(), 0.0f, 1e-4);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  Tensor a = Tensor::Full(1, 1, 5.0f, true);
  Tensor b = Tensor::Full(1, 1, 5.0f, true);
  Sgd plain({a}, 0.01f);
  Sgd momentum({b}, 0.01f, 0.9f);
  for (int i = 0; i < 50; ++i) {
    plain.ZeroGrad();
    Backward(tensor::SquaredNorm(a));
    plain.Step();
    momentum.ZeroGrad();
    Backward(tensor::SquaredNorm(b));
    momentum.Step();
  }
  EXPECT_LT(std::fabs(b.Item()), std::fabs(a.Item()));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor x = Tensor::Full(1, 2, 3.0f, true);
  Adam opt({x}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    Backward(tensor::SquaredNorm(x));
    opt.Step();
  }
  EXPECT_NEAR(x.At(0, 0), 0.0f, 1e-3);
  EXPECT_NEAR(x.At(0, 1), 0.0f, 1e-3);
}

TEST(AdamTest, StableAtHighStepCounts) {
  // Bias corrections are computed in double: at step counts past 2^24 a
  // float pow of the step index truncates and the corrections drift. Run
  // well past 1e5 steps on a quadratic and require the iterate to stay
  // finite and converged the whole way.
  Tensor x = Tensor::Full(1, 1, 4.0f, true);
  Adam opt({x}, 0.01f);
  for (int i = 0; i < 150000; ++i) {
    opt.ZeroGrad();
    Backward(tensor::SquaredNorm(x));
    opt.Step();
    ASSERT_TRUE(std::isfinite(x.Item())) << "diverged at step " << i;
  }
  EXPECT_NEAR(x.Item(), 0.0f, 1e-3);
}

TEST(AdamTest, FusedStepMatchesReferenceTrajectory) {
  // Adam::Step() fuses the moment updates and write-back into one pass over
  // hoisted pointers. This pins it to the original three-statement update:
  // feed both the optimizer and an inline reference the same synthetic
  // gradient stream and require bit-identical weights and moments at every
  // step.
  const int n = 37;  // odd size: exercises any unrolled tail
  const float lr = 0.01f, beta1 = 0.9f, beta2 = 0.999f, eps = 1e-8f;
  std::vector<float> init(n);
  for (int j = 0; j < n; ++j)
    init[j] = 0.05f * static_cast<float>(j - n / 2);
  Tensor x = Tensor::FromData(1, n, init, /*requires_grad=*/true);
  Adam opt({x}, lr, beta1, beta2, eps);

  std::vector<float> ref_w = init;
  std::vector<float> ref_m(n, 0.0f), ref_v(n, 0.0f);
  for (int step = 1; step <= 25; ++step) {
    // Deterministic, sign-alternating gradient stream.
    std::vector<float> g(n);
    for (int j = 0; j < n; ++j) {
      g[j] = std::sin(0.7f * static_cast<float>(step) +
                      0.3f * static_cast<float>(j)) +
             0.1f * static_cast<float>(j % 3 - 1);
    }
    x.node()->EnsureGrad();
    auto& grad = x.node()->grad;
    for (int j = 0; j < n; ++j) grad[j] = g[j];
    opt.Step();

    // Pre-fusion update, verbatim (two separate moment statements, then the
    // write-back reading the stored moments).
    const double bc1 = 1.0 - std::pow(static_cast<double>(beta1),
                                      static_cast<double>(step));
    const double bc2 = 1.0 - std::pow(static_cast<double>(beta2),
                                      static_cast<double>(step));
    for (int j = 0; j < n; ++j) {
      ref_m[j] = beta1 * ref_m[j] + (1.0f - beta1) * g[j];
      ref_v[j] = beta2 * ref_v[j] + (1.0f - beta2) * g[j] * g[j];
      float mhat = static_cast<float>(ref_m[j] / bc1);
      float vhat = static_cast<float>(ref_v[j] / bc2);
      ref_w[j] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
    for (int j = 0; j < n; ++j) {
      ASSERT_EQ(x.data()[j], ref_w[j])
          << "weight diverged at step " << step << ", j=" << j;
    }
  }
}

TEST(AdamTest, SkipsParamsWithoutGrad) {
  Tensor x = Tensor::Full(1, 1, 1.0f, true);
  Adam opt({x}, 0.1f);
  opt.Step();  // no Backward happened; must not crash or move x
  EXPECT_EQ(x.Item(), 1.0f);
}

TEST(OptimizerTest, ClipGradNormScales) {
  Tensor x = Tensor::FromData(1, 2, {3.0f, 4.0f}, true);
  Sgd opt({x}, 1.0f);
  Backward(tensor::Sum(tensor::Mul(x, Tensor::FromData(1, 2, {3.0f, 4.0f}))));
  double norm = opt.ClipGradNorm(1.0);  // grad = (3, 4), norm 5
  EXPECT_NEAR(norm, 5.0, 1e-5);
  EXPECT_NEAR(x.GradAt(0, 0), 0.6f, 1e-5);
  EXPECT_NEAR(x.GradAt(0, 1), 0.8f, 1e-5);
}

TEST(OptimizerTest, ClipLeavesSmallGradientsAlone) {
  Tensor x = Tensor::FromData(1, 1, {1.0f}, true);
  Sgd opt({x}, 1.0f);
  Backward(tensor::ScalarMul(x, 0.5f));
  opt.ClipGradNorm(10.0);
  EXPECT_NEAR(x.GradAt(0, 0), 0.5f, 1e-6);
}

TEST(TrainingTest, LinearRegressionLearned) {
  // y = 2x - 1 learned by a Linear layer via Adam.
  Rng rng(6);
  Linear lin(1, 1, rng);
  Adam opt(lin.Parameters(), 0.05f);
  for (int step = 0; step < 400; ++step) {
    float xv = static_cast<float>(rng.Uniform(-1.0, 1.0));
    Tensor x = Tensor::FromData(1, 1, {xv});
    Tensor target = Tensor::FromData(1, 1, {2.0f * xv - 1.0f});
    Tensor loss = tensor::MseLoss(lin.Forward(x), target);
    opt.ZeroGrad();
    Backward(loss);
    opt.Step();
  }
  EXPECT_NEAR(lin.weight().At(0, 0), 2.0f, 0.1f);
  EXPECT_NEAR(lin.bias().At(0, 0), -1.0f, 0.1f);
}

TEST(TrainingTest, GruLearnsToDiscriminateSequences) {
  // Two input sequences with different targets; the GRU + readout should
  // fit both (tiny-capacity sanity check of BPTT end-to-end).
  Rng rng(7);
  GruCell cell(1, 4, rng);
  Linear readout(4, 1, rng);
  std::vector<Tensor> params = cell.Parameters();
  auto rp = readout.Parameters();
  params.insert(params.end(), rp.begin(), rp.end());
  Adam opt(params, 0.05f);

  auto run = [&](const std::vector<float>& xs) {
    Tensor h = cell.InitialState();
    for (float v : xs) h = cell.Forward(Tensor::FromData(1, 1, {v}), h);
    return readout.Forward(h);
  };
  for (int step = 0; step < 300; ++step) {
    Tensor loss = tensor::Add(
        tensor::MseLoss(run({1, 0, 1}), Tensor::Scalar(1.0f)),
        tensor::MseLoss(run({0, 1, 0}), Tensor::Scalar(-1.0f)));
    opt.ZeroGrad();
    Backward(loss);
    opt.Step();
  }
  EXPECT_NEAR(run({1, 0, 1}).Item(), 1.0f, 0.2f);
  EXPECT_NEAR(run({0, 1, 0}).Item(), -1.0f, 0.2f);
}

}  // namespace
}  // namespace causer::nn
