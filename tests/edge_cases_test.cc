#include <gtest/gtest.h>

#include "causal/matrix_exp.h"
#include "causal/notears.h"
#include "common/table.h"
#include "data/generator.h"
#include "data/sampler.h"
#include "data/split.h"
#include "eval/evaluator.h"
#include "models/gru4rec.h"

// Boundary conditions across modules: degenerate sizes, empty inputs,
// and protocol corner cases.

namespace causer {
namespace {

TEST(EdgeCaseTest, EvaluateWithZLargerThanCatalog) {
  data::EvalInstance inst;
  inst.target_items = {1};
  eval::Scorer scorer = [](const data::EvalInstance&) {
    return std::vector<float>{0.1f, 0.9f, 0.5f};
  };
  eval::EvalResult r = eval::Evaluate(scorer, {inst}, 100);
  EXPECT_GT(r.ndcg, 0.0);  // item 1 found despite oversized Z
  EXPECT_LE(r.f1, 1.0);
}

TEST(EdgeCaseTest, EmptyTableRenders) {
  Table t({"A", "B"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| A"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 0);
}

TEST(EdgeCaseTest, MatrixExponentialOneByOne) {
  causal::Dense a(1, 1);
  a(0, 0) = 2.0;
  EXPECT_NEAR(causal::MatrixExponential(a)(0, 0), std::exp(2.0), 1e-10);
}

TEST(EdgeCaseTest, NotearsSingleVariable) {
  causer::Rng rng(1);
  causal::Dense x(100, 1);
  for (auto& v : x.data()) v = rng.Normal();
  auto r = causal::NotearsLinear(x);
  EXPECT_EQ(r.graph.NumEdges(), 0);
  EXPECT_TRUE(r.converged);
}

TEST(EdgeCaseTest, SampleZeroNegatives) {
  Rng rng(2);
  auto negs = data::SampleNegatives(10, {1, 2}, 0, rng);
  EXPECT_TRUE(negs.empty());
}

TEST(EdgeCaseTest, ModelsSkipEmptySteps) {
  data::Dataset d = data::MakeDataset(data::TinySpec());
  models::ModelConfig cfg;
  cfg.num_users = d.num_users;
  cfg.num_items = d.num_items;
  cfg.embedding_dim = 8;
  cfg.hidden_dim = 8;
  models::Gru4Rec model(cfg);

  std::vector<data::Step> with_empty = {
      {{1}, {-1}, {-1}}, {{}, {}, {}}, {{2}, {-1}, {-1}}};
  std::vector<data::Step> without_empty = {{{1}, {-1}, {-1}},
                                           {{2}, {-1}, {-1}}};
  EXPECT_EQ(model.ScoreAll(0, with_empty),
            model.ScoreAll(0, without_empty));
}

TEST(EdgeCaseTest, SingleClusterDatasetGenerates) {
  data::DatasetSpec spec = data::TinySpec();
  spec.num_clusters = 1;  // DAG over one node has no edges: pure noise data
  data::Dataset d = data::MakeDataset(spec);
  EXPECT_EQ(d.true_cluster_graph.NumEdges(), 0);
  int causal = 0;
  for (const auto& seq : d.sequences)
    for (const auto& step : seq.steps)
      for (int cs : step.cause_step) causal += cs >= 0;
  EXPECT_EQ(causal, 0) << "no edges -> no causal interactions";
}

TEST(EdgeCaseTest, MaxLenEqualsMinLen) {
  data::DatasetSpec spec = data::TinySpec();
  spec.min_len = 4;
  spec.max_len = 4;
  data::Dataset d = data::MakeDataset(spec);
  for (const auto& seq : d.sequences) EXPECT_EQ(seq.steps.size(), 4u);
}

TEST(EdgeCaseTest, GraphSelfLoopForbidden) {
  causal::Graph g(3);
  EXPECT_DEATH(g.SetEdge(1, 1), "");
}

TEST(EdgeCaseTest, TensorItemRequiresScalar) {
  auto t = tensor::Tensor::Zeros(2, 2);
  EXPECT_DEATH((void)t.Item(), "");
}

}  // namespace
}  // namespace causer
