// Int8 quantization suite: the symmetric per-row absmax round-trip property
// (scale = absmax/127, extreme values hit ±127, everything else lands within
// half a step), degenerate rows, non-finite rejection, and exact-entry
// equality of the fused MatMulTopKQ kernel against a plain-code reference at
// every runnable ISA tier and thread count. Quantized scores are
// approximations of fp32, but they are *deterministic* approximations: int32
// accumulation is exact, so these checks are equalities, not tolerances.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/cpu.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/kernels.h"
#include "tensor/quant.h"

namespace causer::tensor {
namespace {

std::vector<float> RandomMatrix(int rows, int cols, Rng& rng) {
  std::vector<float> out(static_cast<size_t>(rows) * cols);
  for (auto& v : out) v = static_cast<float>(rng.Uniform(-3.0, 3.0));
  return out;
}

class QuantTest : public ::testing::Test {
 protected:
  void TearDown() override {
    cpu::ResetIsaForTest();
    SetDefaultThreads(1);
  }
};

TEST_F(QuantTest, RoundTripWithinHalfStepAndAbsmaxExact) {
  Rng rng(20260811);
  const int rows = 17, cols = 33;
  auto src = RandomMatrix(rows, cols, rng);
  QuantizedMatrix q;
  ASSERT_TRUE(QuantizeRows(src.data(), rows, cols, &q));
  ASSERT_EQ(q.rows, rows);
  ASSERT_EQ(q.cols, cols);
  ASSERT_EQ(q.data.size(), src.size());
  ASSERT_EQ(q.scales.size(), static_cast<size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    const float* row = src.data() + static_cast<size_t>(r) * cols;
    float absmax = 0.0f;
    for (int c = 0; c < cols; ++c) absmax = std::max(absmax, std::fabs(row[c]));
    // Calibration is exactly absmax / 127 — same fp32 expression, so bitwise.
    EXPECT_EQ(q.scales[r], absmax / 127.0f) << "row " << r;
    for (int c = 0; c < cols; ++c) {
      const std::int8_t code = q.data[static_cast<size_t>(r) * cols + c];
      EXPECT_GE(code, -127) << "row " << r << " col " << c;
      EXPECT_LE(code, 127) << "row " << r << " col " << c;
      const float dequant = static_cast<float>(code) * q.scales[r];
      // Round-to-nearest leaves at most half a quantization step of error
      // (tiny slack for the fp32 multiply in the reconstruction itself).
      EXPECT_LE(std::fabs(dequant - row[c]), 0.5f * q.scales[r] * 1.001f)
          << "row " << r << " col " << c;
      if (std::fabs(row[c]) == absmax && absmax > 0.0f) {
        // The row's extreme value must occupy the full code range.
        EXPECT_EQ(std::abs(static_cast<int>(code)), 127)
            << "row " << r << " col " << c;
      }
    }
  }
  // Codes + one float scale per row vs four bytes per element.
  EXPECT_EQ(q.MemoryBytes(),
            src.size() * sizeof(std::int8_t) + rows * sizeof(float));
}

TEST_F(QuantTest, ZeroRowGetsZeroScaleAndZeroCodes) {
  const int rows = 3, cols = 8;
  std::vector<float> src(static_cast<size_t>(rows) * cols, 0.0f);
  src[0 * cols + 2] = 1.5f;   // row 0: normal
  src[2 * cols + 5] = -2.0f;  // row 2: normal; row 1 stays all-zero
  QuantizedMatrix q;
  ASSERT_TRUE(QuantizeRows(src.data(), rows, cols, &q));
  EXPECT_GT(q.scales[0], 0.0f);
  EXPECT_EQ(q.scales[1], 0.0f);
  EXPECT_GT(q.scales[2], 0.0f);
  for (int c = 0; c < cols; ++c) {
    EXPECT_EQ(q.data[1 * cols + c], 0) << "col " << c;
  }
}

TEST_F(QuantTest, NonFiniteInputIsRejectedByBothOverloads) {
  const int rows = 2, cols = 4;
  for (float poison : {std::numeric_limits<float>::infinity(),
                       -std::numeric_limits<float>::infinity(),
                       std::numeric_limits<float>::quiet_NaN()}) {
    std::vector<float> src(static_cast<size_t>(rows) * cols, 0.25f);
    src[5] = poison;
    std::vector<std::int8_t> data(src.size());
    std::vector<float> scales(rows);
    EXPECT_FALSE(QuantizeRows(src.data(), rows, cols, data.data(),
                              scales.data()));
    QuantizedMatrix q;
    q.rows = 99;  // stale state the failed call must clear
    q.data.assign(7, 1);
    EXPECT_FALSE(QuantizeRows(src.data(), rows, cols, &q));
    EXPECT_EQ(q.rows, 0);
    EXPECT_TRUE(q.data.empty());
    EXPECT_TRUE(q.scales.empty());
  }
}

// Plain-code reference for MatMulTopKQ: int32 dots, the kernel's exact
// dequantization expression, and its (score desc, index asc) tie-break.
std::vector<kernels::TopKEntry> ReferenceTopKQ(
    const std::int8_t* a, const float* a_scales, const std::int8_t* b,
    const float* b_scales, int n, int m, int p, int k) {
  std::vector<kernels::TopKEntry> out(static_cast<size_t>(n) * k);
  for (int i = 0; i < n; ++i) {
    std::vector<kernels::TopKEntry> all(p);
    for (int j = 0; j < p; ++j) {
      std::int32_t acc = 0;
      for (int c = 0; c < m; ++c) {
        acc += static_cast<std::int32_t>(a[static_cast<size_t>(i) * m + c]) *
               static_cast<std::int32_t>(b[static_cast<size_t>(j) * m + c]);
      }
      all[j].index = j;
      all[j].score = static_cast<float>(acc) * (a_scales[i] * b_scales[j]);
    }
    std::sort(all.begin(), all.end(),
              [](const kernels::TopKEntry& x, const kernels::TopKEntry& y) {
                if (x.score != y.score) return x.score > y.score;
                return x.index < y.index;
              });
    for (int l = 0; l < k; ++l) {
      out[static_cast<size_t>(i) * k + l] =
          l < p ? all[l] : kernels::TopKEntry{};
    }
  }
  return out;
}

TEST_F(QuantTest, MatMulTopKQMatchesReferenceAcrossIsasAndThreads) {
  Rng rng(20260812);
  for (cpu::Isa isa : cpu::CompiledIsas()) {
    if (!cpu::IsaSupported(isa)) continue;
    ASSERT_TRUE(cpu::SetIsaOverride(cpu::IsaName(isa)));
    for (int threads : {1, 8}) {
      SetDefaultThreads(threads);
      for (int m : {8, 33}) {
        // p = 600 crosses the 512-wide tile boundary; k > p pads with
        // sentinel entries.
        for (int p : {10, 600}) {
          for (int k : {1, 10, p + 3}) {
            const int n = 5;
            auto af = RandomMatrix(n, m, rng);
            auto bf = RandomMatrix(p, m, rng);
            QuantizedMatrix qa, qb;
            ASSERT_TRUE(QuantizeRows(af.data(), n, m, &qa));
            ASSERT_TRUE(QuantizeRows(bf.data(), p, m, &qb));
            auto expected =
                ReferenceTopKQ(qa.data.data(), qa.scales.data(),
                               qb.data.data(), qb.scales.data(), n, m, p, k);
            std::vector<kernels::TopKEntry> actual(
                static_cast<size_t>(n) * k);
            kernels::MatMulTopKQ(qa.data.data(), qa.scales.data(),
                                 qb.data.data(), qb.scales.data(), n, m, p, k,
                                 actual.data());
            for (size_t e = 0; e < expected.size(); ++e) {
              ASSERT_EQ(expected[e].index, actual[e].index)
                  << cpu::IsaName(isa) << " threads=" << threads
                  << " m=" << m << " p=" << p << " k=" << k << " entry " << e;
              ASSERT_EQ(std::memcmp(&expected[e].score, &actual[e].score,
                                    sizeof(float)),
                        0)
                  << cpu::IsaName(isa) << " threads=" << threads
                  << " m=" << m << " p=" << p << " k=" << k << " entry " << e;
            }
          }
        }
      }
    }
    cpu::ResetIsaForTest();
    SetDefaultThreads(1);
  }
}

TEST_F(QuantTest, MatMulTopKQEnforcesDepthBoundInsteadOfOverflowing) {
  // m = 65536 is the largest depth whose worst case (65536 * 127 * 127)
  // still fits int32; one past it must die on the documented CAUSER_CHECK
  // rather than silently wrap the accumulator.
  const int m_ok = 65536;
  std::vector<std::int8_t> a(static_cast<size_t>(m_ok) + 1, 1);
  std::vector<std::int8_t> b(static_cast<size_t>(m_ok) + 1, 1);
  const float a_scale = 1.0f;
  const float b_scale = 1.0f;
  kernels::TopKEntry out;
  kernels::MatMulTopKQ(a.data(), &a_scale, b.data(), &b_scale, 1, m_ok, 1, 1,
                       &out);
  EXPECT_EQ(out.index, 0);
  EXPECT_EQ(out.score, static_cast<float>(m_ok));  // exact: 2^16 in fp32
  EXPECT_DEATH(kernels::MatMulTopKQ(a.data(), &a_scale, b.data(), &b_scale, 1,
                                    m_ok + 1, 1, 1, &out),
               "65536");
  // The sharded entry point checks before fanning out, so the failure is
  // one message on the calling thread, not a race of S aborts.
  EXPECT_DEATH(
      kernels::MatMulTopKQSharded(a.data(), &a_scale, b.data(), &b_scale, 1,
                                  m_ok + 1, 1, 1, 2, &out),
      "65536");
}

}  // namespace
}  // namespace causer::tensor
