// Enforces the OBSERVABILITY.md contract: the doc's metric reference table
// lists exactly the names the process registers — no undocumented metrics,
// no documented-but-gone metrics. Lives in its own binary so test-local
// instruments from other suites cannot leak into the registry snapshot.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/split.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/server.h"

namespace causer {
namespace {

/// Touches every instrumented module so each metric group registers:
/// SetDefaultThreads registers the threadpool group, and a short Causer
/// training run (past graph_warmup_epochs, so FitClusterGraph fires)
/// registers the trainer, eval, notears, and causer groups.
void RunWorkloadTouchingEveryModuleImpl() {
  metrics::SetEnabled(true);
  SetDefaultThreads(2);
  data::Dataset dataset = data::MakeDataset(data::TinySpec());
  data::Split split = data::LeaveLastOut(dataset);
  core::CauserConfig config =
      core::DefaultCauserConfig(dataset, core::Backbone::kGru);
  config.base.embedding_dim = 8;
  config.base.hidden_dim = 8;
  config.encoder_hidden = 8;
  config.cluster_dim = 8;
  config.aux_steps_per_epoch = 2;
  core::CauserModel model(config);
  core::TrainCauser(model, split, {.max_epochs = 3, .patience = 3});
  // A couple of requests through the serving engine (one with an LRU cap
  // small enough to evict) registers the serve group.
  {
    serve::ServingConfig sc;
    sc.top_k = 3;
    sc.max_sessions = 1;
    serve::ServingEngine engine(model, sc);
    for (int u = 0; u < 2; ++u) {
      serve::Request request;
      request.user = split.test[u].user;
      request.bootstrap = &split.test[u].history;
      engine.Handle(request);
    }
    // One wire round-trip through the TCP front-end registers the server
    // group (connections, admission, queueing and latency instruments).
    serve::Server server(engine, serve::ServerConfig{});
    if (server.Start()) {
      serve::Client client;
      if (client.Connect("127.0.0.1", server.port())) {
        serve::wire::RequestFrame request;
        request.request_id = 1;
        request.user = split.test[0].user;
        serve::wire::ResponseFrame response;
        client.Call(request, &response);
      }
      server.Shutdown();
    }
  }
  SetDefaultThreads(1);
  metrics::SetEnabled(false);
}

/// Runs the workload exactly once per process, whichever test asks first.
void RunWorkloadTouchingEveryModule() {
  static const bool done = (RunWorkloadTouchingEveryModuleImpl(), true);
  (void)done;
}

std::set<std::string> RegisteredMetricNames() {
  std::set<std::string> names;
  for (const auto& entry : metrics::Snapshot()) names.insert(entry.name);
  return names;
}

/// Extracts `backticked` names from the table rows between the doc's
/// metrics-table-begin/-end markers: any cell content of the form `a.b`
/// (a dot, no spaces) counts as a metric name. The markers scope the scan
/// so trace span names elsewhere in the doc are not mistaken for metrics.
std::set<std::string> DocumentedMetricNames(const std::string& path) {
  std::set<std::string> names;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::string line;
  bool in_table = false;
  while (std::getline(in, line)) {
    if (line.find("<!-- metrics-table-begin -->") != std::string::npos) {
      in_table = true;
      continue;
    }
    if (line.find("<!-- metrics-table-end -->") != std::string::npos) {
      in_table = false;
      continue;
    }
    if (!in_table || line.empty() || line[0] != '|') continue;
    size_t pos = 0;
    while ((pos = line.find('`', pos)) != std::string::npos) {
      size_t end = line.find('`', pos + 1);
      if (end == std::string::npos) break;
      std::string token = line.substr(pos + 1, end - pos - 1);
      if (token.find('.') != std::string::npos &&
          token.find(' ') == std::string::npos &&
          token.find('(') == std::string::npos) {
        names.insert(token);
      }
      pos = end + 1;
    }
  }
  return names;
}

std::string Join(const std::set<std::string>& names) {
  std::ostringstream out;
  for (const auto& n : names) out << "  " << n << "\n";
  return out.str();
}

TEST(ObservabilityDocsTest, DocTableMatchesRegistrySnapshot) {
  RunWorkloadTouchingEveryModule();
  std::set<std::string> registered = RegisteredMetricNames();
  ASSERT_FALSE(registered.empty());

  const std::string doc_path =
      std::string(CAUSER_SOURCE_DIR) + "/docs/OBSERVABILITY.md";
  std::set<std::string> documented = DocumentedMetricNames(doc_path);
  ASSERT_FALSE(documented.empty());

  std::set<std::string> undocumented;
  std::set_difference(registered.begin(), registered.end(),
                      documented.begin(), documented.end(),
                      std::inserter(undocumented, undocumented.begin()));
  std::set<std::string> stale;
  std::set_difference(documented.begin(), documented.end(),
                      registered.begin(), registered.end(),
                      std::inserter(stale, stale.begin()));

  EXPECT_TRUE(undocumented.empty())
      << "registered metrics missing from docs/OBSERVABILITY.md:\n"
      << Join(undocumented);
  EXPECT_TRUE(stale.empty())
      << "docs/OBSERVABILITY.md lists metrics that are not registered:\n"
      << Join(stale);
}

TEST(ObservabilityDocsTest, WorkloadActuallyRecordedEveryGroup) {
  RunWorkloadTouchingEveryModule();
  // The companion test proves name coverage; this one proves the workload
  // exercised each module (a counter that stayed at zero would mean the
  // doc example could never be reproduced).
  for (const char* name :
       {"trainer.epochs_total", "notears.subproblems_total",
        "causal.matrix_exp_calls_total", "causer.graph_updates_total",
        "eval.runs_total", "threadpool.regions_total",
        "serve.requests_total", "serve.session_evictions_total",
        "server.connections_total", "server.requests_total"}) {
    bool found = false;
    for (const auto& entry : metrics::Snapshot()) {
      if (entry.name == name) {
        found = true;
        EXPECT_GT(entry.count, 0u) << name << " never incremented";
      }
    }
    EXPECT_TRUE(found) << name << " not registered";
  }
}

}  // namespace
}  // namespace causer
