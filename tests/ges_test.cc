#include <gtest/gtest.h>

#include "causal/ges.h"
#include "causal/markov_equivalence.h"
#include "causal/notears.h"

namespace causer::causal {
namespace {

TEST(BicScoreTest, TrueParentsBeatEmptyGraph) {
  Rng rng(12);
  Graph truth(3);
  truth.SetEdge(0, 1);
  truth.SetEdge(1, 2);
  Dense x = SimulateLinearSem(truth, 600, 1.0, 1.5, rng);
  EXPECT_GT(BicScore(x, truth), BicScore(x, Graph(3)));
}

TEST(BicScoreTest, PenaltyReducesScoreOfDenseGraphs) {
  Rng rng(13);
  Graph truth(3);
  truth.SetEdge(0, 1);
  Dense x = SimulateLinearSem(truth, 300, 1.0, 1.5, rng);
  Graph dense(3);
  dense.SetEdge(0, 1);
  dense.SetEdge(0, 2);
  dense.SetEdge(1, 2);
  double mild = BicScore(x, dense, 1.0);
  double harsh = BicScore(x, dense, 10.0);
  EXPECT_GT(mild, harsh);
}

TEST(GesTest, TwoVariableEdgeFound) {
  Rng rng(14);
  Graph truth(2);
  truth.SetEdge(0, 1);
  Dense x = SimulateLinearSem(truth, 500, 1.0, 1.6, rng);
  GesResult r = GreedyEquivalenceSearch(x);
  EXPECT_EQ(Skeleton(r.graph).NumEdges(), 2);  // symmetric storage: 1 edge
  EXPECT_TRUE(r.graph.IsDag());
  EXPECT_GE(r.insertions, 1);
}

TEST(GesTest, RecoversMecOfChain) {
  Rng rng(15);
  Graph truth(4);
  truth.SetEdge(0, 1);
  truth.SetEdge(1, 2);
  truth.SetEdge(2, 3);
  Dense x = SimulateLinearSem(truth, 1500, 1.0, 1.8, rng);
  GesResult r = GreedyEquivalenceSearch(x);
  // GES returns some DAG; it should share the chain's skeleton (the chain
  // MEC has no v-structures, so any orientation with this skeleton works).
  EXPECT_TRUE(Skeleton(r.graph) == Skeleton(truth));
}

TEST(GesTest, ColliderYieldsAnIMap) {
  // Single-move DAG hill climbing can land in the reversed-collider local
  // optimum {2->0, 2->1, 0->1}: a valid I-map of the distribution that is
  // one edge denser than the true MEC (the classic limitation that true
  // equivalence-class GES fixes; NOTEARS and PC recover this case
  // exactly). We verify the result is a DAG containing the true skeleton
  // with at most one extra adjacency.
  Rng rng(16);
  Graph truth(3);
  truth.SetEdge(0, 2);
  truth.SetEdge(1, 2);
  Dense x = SimulateLinearSem(truth, 1500, 1.0, 1.8, rng);
  GesResult r = GreedyEquivalenceSearch(x);
  EXPECT_TRUE(r.graph.IsDag());
  Graph skel = Skeleton(r.graph);
  EXPECT_TRUE(skel.Edge(0, 2));
  EXPECT_TRUE(skel.Edge(1, 2));
  EXPECT_LE(r.graph.NumEdges(), truth.NumEdges() + 1);
}

TEST(GesTest, IndependentDataGivesEmptyGraph) {
  Rng rng(17);
  Dense x(600, 4);
  for (auto& v : x.data()) v = rng.Normal();
  GesResult r = GreedyEquivalenceSearch(x);
  EXPECT_EQ(r.graph.NumEdges(), 0);
}

TEST(GesTest, RandomDagLowShd) {
  Rng rng(18);
  Graph truth = RandomDag(6, 0.35, rng);
  Dense x = SimulateLinearSem(truth, 1500, 1.0, 2.0, rng);
  GesResult r = GreedyEquivalenceSearch(x);
  EXPECT_TRUE(r.graph.IsDag());
  EXPECT_LE(StructuralHammingDistance(r.graph, truth), 3)
      << "true " << truth.NumEdges() << " learned " << r.graph.NumEdges();
}

TEST(GesTest, MaxParentsRespected) {
  Rng rng(19);
  Graph truth(5);
  for (int i = 1; i < 5; ++i) truth.SetEdge(i, 0);  // 4 parents of node 0
  Dense x = SimulateLinearSem(truth, 800, 1.0, 1.5, rng);
  GesOptions opts;
  opts.max_parents = 2;
  GesResult r = GreedyEquivalenceSearch(x, opts);
  for (int v = 0; v < 5; ++v)
    EXPECT_LE(r.graph.Parents(v).size(), 2u);
}

}  // namespace
}  // namespace causer::causal
