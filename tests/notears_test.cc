#include <gtest/gtest.h>

#include <cmath>

#include "causal/markov_equivalence.h"
#include "causal/notears.h"

namespace causer::causal {
namespace {

TEST(SimulateSemTest, ShapeAndDeterminism) {
  Rng rng1(9), rng2(9);
  Graph g(3);
  g.SetEdge(0, 1);
  g.SetEdge(1, 2);
  Dense w1, w2;
  Dense x1 = SimulateLinearSem(g, 50, 0.5, 2.0, rng1, &w1);
  Dense x2 = SimulateLinearSem(g, 50, 0.5, 2.0, rng2, &w2);
  EXPECT_EQ(x1.rows(), 50);
  EXPECT_EQ(x1.cols(), 3);
  for (size_t i = 0; i < x1.data().size(); ++i)
    EXPECT_DOUBLE_EQ(x1.data()[i], x2.data()[i]);
  EXPECT_DOUBLE_EQ(w1(0, 1), w2(0, 1));
}

TEST(SimulateSemTest, WeightsOnlyOnEdges) {
  Rng rng(10);
  Graph g(4);
  g.SetEdge(0, 2);
  Dense w;
  SimulateLinearSem(g, 10, 0.5, 2.0, rng, &w);
  EXPECT_NE(w(0, 2), 0.0);
  EXPECT_GE(std::fabs(w(0, 2)), 0.5);
  EXPECT_LE(std::fabs(w(0, 2)), 2.0);
  EXPECT_EQ(w(2, 0), 0.0);
  EXPECT_EQ(w(1, 3), 0.0);
}

TEST(SimulateSemTest, ChildVarianceExceedsNoise) {
  // x1 = w*x0 + e with |w| >= 1 -> var(x1) >= 2 approx.
  Rng rng(11);
  Graph g(2);
  g.SetEdge(0, 1);
  Dense x = SimulateLinearSem(g, 4000, 1.0, 1.5, rng);
  double var = 0.0, mean = 0.0;
  for (int i = 0; i < x.rows(); ++i) mean += x(i, 1);
  mean /= x.rows();
  for (int i = 0; i < x.rows(); ++i) var += (x(i, 1) - mean) * (x(i, 1) - mean);
  var /= x.rows();
  EXPECT_GT(var, 1.5);
}

TEST(NotearsTest, TwoVariableEdgeRecovered) {
  Rng rng(21);
  Graph truth(2);
  truth.SetEdge(0, 1);
  Dense x = SimulateLinearSem(truth, 500, 1.0, 1.5, rng);
  NotearsResult result = NotearsLinear(x);
  EXPECT_TRUE(result.graph.Edge(0, 1));
  EXPECT_FALSE(result.graph.Edge(1, 0));
  EXPECT_TRUE(result.graph.IsDag());
  EXPECT_LT(result.final_h, 1e-6);
}

TEST(NotearsTest, ChainRecoveredToSkeleton) {
  Rng rng(22);
  Graph truth(4);
  truth.SetEdge(0, 1);
  truth.SetEdge(1, 2);
  truth.SetEdge(2, 3);
  Dense x = SimulateLinearSem(truth, 800, 1.0, 1.8, rng);
  NotearsResult result = NotearsLinear(x);
  EXPECT_TRUE(result.graph.IsDag());
  EXPECT_LE(StructuralHammingDistance(result.graph, truth), 1);
}

TEST(NotearsTest, IndependentVariablesGiveEmptyGraph) {
  Rng rng(23);
  Graph truth(4);  // no edges
  Dense x = SimulateLinearSem(truth, 600, 1.0, 1.5, rng);
  NotearsResult result = NotearsLinear(x);
  EXPECT_EQ(result.graph.NumEdges(), 0);
}

TEST(NotearsTest, ErdosRenyiGraphLowShd) {
  Rng rng(24);
  Graph truth = RandomDag(6, 0.35, rng);
  Dense x = SimulateLinearSem(truth, 1200, 1.0, 2.0, rng);
  NotearsResult result = NotearsLinear(x);
  EXPECT_TRUE(result.graph.IsDag());
  // Allow a small recovery error; the point is closeness, not perfection.
  EXPECT_LE(StructuralHammingDistance(result.graph, truth), 2)
      << "true edges " << truth.NumEdges() << " learned "
      << result.graph.NumEdges();
}

TEST(NotearsTest, OutputAlwaysDagEvenWithFewIterations) {
  Rng rng(25);
  Graph truth = RandomDag(5, 0.5, rng);
  Dense x = SimulateLinearSem(truth, 200, 1.0, 2.0, rng);
  NotearsOptions opts;
  opts.max_outer_iterations = 2;
  opts.inner_iterations = 20;
  NotearsResult result = NotearsLinear(x, opts);
  EXPECT_TRUE(result.graph.IsDag());
}

TEST(NotearsTest, StrongerL1GivesSparserGraph) {
  Rng rng(26);
  Graph truth = RandomDag(5, 0.4, rng);
  Dense x = SimulateLinearSem(truth, 400, 0.7, 1.2, rng);
  NotearsOptions weak;
  weak.lambda1 = 0.01;
  NotearsOptions strong;
  strong.lambda1 = 0.3;
  int weak_edges = NotearsLinear(x, weak).graph.NumEdges();
  int strong_edges = NotearsLinear(x, strong).graph.NumEdges();
  EXPECT_LE(strong_edges, weak_edges);
}

TEST(NotearsTest, ConvergedFlagMatchesResidual) {
  Rng rng(27);
  Graph truth(3);
  truth.SetEdge(0, 1);
  Dense x = SimulateLinearSem(truth, 300, 1.0, 1.5, rng);
  NotearsResult result = NotearsLinear(x);
  EXPECT_EQ(result.converged, result.final_h <= NotearsOptions{}.h_tolerance);
  EXPECT_GE(result.outer_iterations, 1);
}

}  // namespace
}  // namespace causer::causal
