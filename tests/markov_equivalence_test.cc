#include <gtest/gtest.h>

#include "causal/markov_equivalence.h"

namespace causer::causal {
namespace {

TEST(SkeletonTest, Symmetrizes) {
  Graph g(3);
  g.SetEdge(0, 1);
  Graph s = Skeleton(g);
  EXPECT_TRUE(s.Edge(0, 1));
  EXPECT_TRUE(s.Edge(1, 0));
  EXPECT_FALSE(s.Edge(0, 2));
}

TEST(VStructuresTest, ColliderDetected) {
  // 0 -> 2 <- 1, 0 and 1 non-adjacent.
  Graph g(3);
  g.SetEdge(0, 2);
  g.SetEdge(1, 2);
  auto v = VStructures(g);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], std::make_tuple(0, 2, 1));
}

TEST(VStructuresTest, ShieldedColliderNotCounted) {
  // 0 -> 2 <- 1 with 0 -> 1: shielded, no v-structure.
  Graph g(3);
  g.SetEdge(0, 2);
  g.SetEdge(1, 2);
  g.SetEdge(0, 1);
  EXPECT_TRUE(VStructures(g).empty());
}

TEST(VStructuresTest, ChainAndForkHaveNone) {
  Graph chain(3);
  chain.SetEdge(0, 1);
  chain.SetEdge(1, 2);
  EXPECT_TRUE(VStructures(chain).empty());
  Graph fork(3);
  fork.SetEdge(1, 0);
  fork.SetEdge(1, 2);
  EXPECT_TRUE(VStructures(fork).empty());
}

TEST(MecTest, ChainForkEquivalent) {
  // 0 -> 1 -> 2, 0 <- 1 -> 2 and 0 <- 1 <- 2 are all Markov equivalent.
  Graph chain(3);
  chain.SetEdge(0, 1);
  chain.SetEdge(1, 2);
  Graph fork(3);
  fork.SetEdge(1, 0);
  fork.SetEdge(1, 2);
  Graph reversed(3);
  reversed.SetEdge(2, 1);
  reversed.SetEdge(1, 0);
  EXPECT_TRUE(SameMarkovEquivalenceClass(chain, fork));
  EXPECT_TRUE(SameMarkovEquivalenceClass(chain, reversed));
}

TEST(MecTest, ColliderNotEquivalentToChain) {
  Graph chain(3);
  chain.SetEdge(0, 1);
  chain.SetEdge(1, 2);
  Graph collider(3);
  collider.SetEdge(0, 1);
  collider.SetEdge(2, 1);
  EXPECT_FALSE(SameMarkovEquivalenceClass(chain, collider));
}

TEST(MecTest, DifferentSkeletonsNotEquivalent) {
  Graph a(3);
  a.SetEdge(0, 1);
  Graph b(3);
  b.SetEdge(0, 2);
  EXPECT_FALSE(SameMarkovEquivalenceClass(a, b));
}

TEST(MecTest, IdenticalGraphsEquivalent) {
  Rng rng(5);
  Graph g = RandomDag(8, 0.3, rng);
  EXPECT_TRUE(SameMarkovEquivalenceClass(g, g));
}

TEST(MecTest, SizeMismatchNotEquivalent) {
  EXPECT_FALSE(SameMarkovEquivalenceClass(Graph(2), Graph(3)));
}

TEST(ShdTest, IdenticalZero) {
  Rng rng(6);
  Graph g = RandomDag(6, 0.4, rng);
  EXPECT_EQ(StructuralHammingDistance(g, g), 0);
}

TEST(ShdTest, MissingEdgeCountsOne) {
  Graph a(3), b(3);
  a.SetEdge(0, 1);
  EXPECT_EQ(StructuralHammingDistance(a, b), 1);
}

TEST(ShdTest, ReversedEdgeCountsOne) {
  Graph a(2), b(2);
  a.SetEdge(0, 1);
  b.SetEdge(1, 0);
  EXPECT_EQ(StructuralHammingDistance(a, b), 1);
}

TEST(ShdTest, Additive) {
  Graph a(4), b(4);
  a.SetEdge(0, 1);   // missing in b
  a.SetEdge(2, 3);   // reversed in b
  b.SetEdge(3, 2);
  b.SetEdge(0, 2);   // extra in b
  EXPECT_EQ(StructuralHammingDistance(a, b), 3);
}

TEST(CpdagTest, ChainFullyUndirected) {
  Graph chain(3);
  chain.SetEdge(0, 1);
  chain.SetEdge(1, 2);
  Pdag p = Cpdag(chain);
  EXPECT_TRUE(p.HasUndirected(0, 1));
  EXPECT_TRUE(p.HasUndirected(1, 2));
  EXPECT_FALSE(p.HasDirected(0, 1));
}

TEST(CpdagTest, ColliderEdgesDirected) {
  Graph collider(3);
  collider.SetEdge(0, 2);
  collider.SetEdge(1, 2);
  Pdag p = Cpdag(collider);
  EXPECT_TRUE(p.HasDirected(0, 2));
  EXPECT_TRUE(p.HasDirected(1, 2));
  EXPECT_FALSE(p.HasUndirected(0, 2));
}

TEST(CpdagTest, MeekRuleOneOrientsDownstream) {
  // 0 -> 2 <- 1 plus 2 - 3: R1 orients 2 -> 3 (else a new v-structure).
  Graph g(4);
  g.SetEdge(0, 2);
  g.SetEdge(1, 2);
  g.SetEdge(2, 3);
  Pdag p = Cpdag(g);
  EXPECT_TRUE(p.HasDirected(2, 3));
}

TEST(CpdagTest, EquivalentDagsShareCpdag) {
  Graph chain(3);
  chain.SetEdge(0, 1);
  chain.SetEdge(1, 2);
  Graph fork(3);
  fork.SetEdge(1, 0);
  fork.SetEdge(1, 2);
  EXPECT_TRUE(Cpdag(chain) == Cpdag(fork));
}

TEST(CpdagTest, NonEquivalentDagsDifferentCpdag) {
  Graph chain(3);
  chain.SetEdge(0, 1);
  chain.SetEdge(1, 2);
  Graph collider(3);
  collider.SetEdge(0, 1);
  collider.SetEdge(2, 1);
  EXPECT_FALSE(Cpdag(chain) == Cpdag(collider));
}

TEST(PdagTest, StateTransitions) {
  Pdag p(3);
  EXPECT_FALSE(p.Adjacent(0, 1));
  p.SetUndirected(0, 1);
  EXPECT_TRUE(p.Adjacent(0, 1));
  EXPECT_TRUE(p.HasUndirected(1, 0));
  p.SetDirected(0, 1);
  EXPECT_TRUE(p.HasDirected(0, 1));
  EXPECT_FALSE(p.HasUndirected(0, 1));
  EXPECT_TRUE(p.Adjacent(1, 0));
  p.Remove(0, 1);
  EXPECT_FALSE(p.Adjacent(0, 1));
}

}  // namespace
}  // namespace causer::causal
