#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/fault.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/split.h"
#include "models/gru4rec.h"
#include "nn/linear.h"
#include "nn/serialization.h"

namespace causer::nn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializationTest, RoundTripRestoresValues) {
  Rng rng(1);
  Linear a(4, 3, rng);
  std::string path = TempPath("linear.bin");
  ASSERT_TRUE(SaveParameters(a, path));

  Rng rng2(99);  // different init
  Linear b(4, 3, rng2);
  ASSERT_TRUE(LoadParameters(b, path));
  for (int i = 0; i < a.weight().size(); ++i)
    EXPECT_EQ(a.weight().data()[i], b.weight().data()[i]);
  for (int i = 0; i < a.bias().size(); ++i)
    EXPECT_EQ(a.bias().data()[i], b.bias().data()[i]);
  std::remove(path.c_str());
}

TEST(SerializationTest, ShapeMismatchRejectedAtomically) {
  Rng rng(2);
  Linear small(2, 2, rng);
  Linear big(3, 3, rng);
  std::string path = TempPath("mismatch.bin");
  ASSERT_TRUE(SaveParameters(small, path));
  auto before = big.weight().data();
  EXPECT_FALSE(LoadParameters(big, path));
  EXPECT_EQ(big.weight().data(), before);  // untouched on failure
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileFails) {
  Rng rng(3);
  Linear lin(2, 2, rng);
  EXPECT_FALSE(LoadParameters(lin, TempPath("does_not_exist.bin")));
}

TEST(SerializationTest, CorruptMagicRejected) {
  std::string path = TempPath("corrupt.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  uint32_t junk = 0xDEADBEEF;
  std::fwrite(&junk, sizeof(junk), 1, f);
  std::fclose(f);
  Rng rng(4);
  Linear lin(2, 2, rng);
  EXPECT_FALSE(LoadParameters(lin, path));
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileRejected) {
  Rng rng(5);
  Linear lin(8, 8, rng);
  std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(SaveParameters(lin, path));
  // Truncate the file to half its size.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  Linear other(8, 8, rng);
  EXPECT_FALSE(LoadParameters(other, path));
  std::remove(path.c_str());
}

TEST(SerializationTest, TrailingBytesRejected) {
  Rng rng(6);
  Linear lin(4, 4, rng);
  std::string path = TempPath("trailing.bin");
  ASSERT_TRUE(SaveParameters(lin, path));
  // A checkpoint with extra bytes after the last tensor is not a checkpoint
  // for this architecture (e.g. a bigger model whose prefix happens to
  // match); loading it must fail rather than silently use the prefix.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char junk[] = "extra";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  Linear other(4, 4, rng);
  auto before = other.weight().data();
  EXPECT_FALSE(LoadParameters(other, path));
  EXPECT_EQ(other.weight().data(), before);
  std::remove(path.c_str());
}

TEST(SerializationTest, VersionMismatchRejected) {
  Rng rng(7);
  Linear lin(2, 2, rng);
  std::string path = TempPath("version.bin");
  ASSERT_TRUE(SaveParameters(lin, path));
  // Bump the version field (second u32) to a future value.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 4, SEEK_SET);
  uint32_t future_version = 999;
  std::fwrite(&future_version, sizeof(future_version), 1, f);
  std::fclose(f);
  Linear other(2, 2, rng);
  EXPECT_FALSE(LoadParameters(other, path));
  std::remove(path.c_str());
}

TEST(SerializationTest, FlushFailureReportedAsSaveFailure) {
  // Regression for the fflush/fclose-ignored bug: a flush-time error
  // (e.g. ENOSPC surfacing only when stdio drains its buffer) must turn
  // into a failed save, not a silently truncated file.
  Rng rng(8);
  Linear lin(4, 4, rng);
  std::string path = TempPath("flushfail.bin");
  fault::Arm("params.flush_fail");
  EXPECT_FALSE(SaveParameters(lin, path));
  fault::DisarmAll();
  std::remove(path.c_str());
  // Disarmed, the same save succeeds.
  EXPECT_TRUE(SaveParameters(lin, path));
  std::remove(path.c_str());
}

TEST(SerializationTest, NonFinitePayloadRejectedWithoutMutation) {
  Rng rng(9);
  Linear lin(3, 3, rng);
  std::string path = TempPath("nanpayload.bin");
  ASSERT_TRUE(SaveParameters(lin, path));
  // Patch a NaN into the first weight payload float (after magic, version,
  // param count, rows, cols = 5 * u32).
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 20, SEEK_SET);
  float nan = std::nanf("");
  std::fwrite(&nan, sizeof(nan), 1, f);
  std::fclose(f);

  Linear other(3, 3, rng);
  auto before = other.weight().data();
  EXPECT_FALSE(LoadParameters(other, path));
  EXPECT_EQ(other.weight().data(), before);
  std::remove(path.c_str());
}

TEST(SerializationTest, TrainedModelRoundTripPreservesScores) {
  data::Dataset dataset = data::MakeDataset(data::TinySpec());
  data::Split split = data::LeaveLastOut(dataset);
  models::ModelConfig cfg;
  cfg.num_users = dataset.num_users;
  cfg.num_items = dataset.num_items;
  cfg.item_features = &dataset.item_features;
  models::Gru4Rec trained(cfg);
  trained.TrainEpoch(split.train);
  std::string path = TempPath("gru4rec.bin");
  ASSERT_TRUE(SaveParameters(trained, path));

  models::Gru4Rec restored(cfg);
  ASSERT_TRUE(LoadParameters(restored, path));
  const auto& inst = split.test[0];
  EXPECT_EQ(trained.ScoreAll(inst.user, inst.history),
            restored.ScoreAll(inst.user, inst.history));
  std::remove(path.c_str());
}

TEST(SerializationTest, CauserRoundTripPreservesScoresAndGraph) {
  data::Dataset dataset = data::MakeDataset(data::TinySpec());
  data::Split split = data::LeaveLastOut(dataset);
  auto cfg = core::DefaultCauserConfig(dataset, core::Backbone::kGru);
  core::CauserModel trained(cfg);
  trained.TrainEpoch(split.train);
  trained.TrainEpoch(split.train);
  std::string path = TempPath("causer.bin");
  ASSERT_TRUE(SaveParameters(trained, path));

  core::CauserModel restored(cfg);
  ASSERT_TRUE(LoadParameters(restored, path));
  restored.OnParametersRestored();
  const auto& inst = split.test[0];
  EXPECT_EQ(trained.ScoreAll(inst.user, inst.history),
            restored.ScoreAll(inst.user, inst.history));
  EXPECT_TRUE(restored.LearnedClusterGraph() ==
              trained.LearnedClusterGraph());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace causer::nn
