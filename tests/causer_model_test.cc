#include <gtest/gtest.h>

#include <cmath>

#include "core/explainer.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/evaluator.h"

namespace causer::core {
namespace {

const data::Dataset& TinyData() {
  static data::Dataset d = data::MakeDataset(data::TinySpec());
  return d;
}

const data::Split& TinySplit() {
  static data::Split s = data::LeaveLastOut(TinyData());
  return s;
}

CauserConfig TinyConfig(Backbone backbone = Backbone::kGru) {
  CauserConfig c = DefaultCauserConfig(TinyData(), backbone);
  c.base.embedding_dim = 8;
  c.base.hidden_dim = 8;
  c.encoder_hidden = 8;
  c.cluster_dim = 8;
  c.aux_steps_per_epoch = 5;
  return c;
}

TEST(CauserModelTest, NameReflectsBackboneAndAblations) {
  EXPECT_EQ(CauserModel(TinyConfig(Backbone::kGru)).name(), "Causer (GRU)");
  EXPECT_EQ(CauserModel(TinyConfig(Backbone::kLstm)).name(), "Causer (LSTM)");
  CauserConfig c = TinyConfig();
  c.use_attention = false;
  EXPECT_EQ(CauserModel(c).name(), "Causer (GRU) [-att]");
  c = TinyConfig();
  c.use_causal = false;
  c.use_clustering_loss = false;
  EXPECT_EQ(CauserModel(c).name(), "Causer (GRU) [-clus,-causal]");
}

TEST(CauserModelTest, ScoreAllShapeAndFinite) {
  CauserModel model(TinyConfig());
  const auto& inst = TinySplit().test[0];
  auto scores = model.ScoreAll(inst.user, inst.history);
  EXPECT_EQ(static_cast<int>(scores.size()), TinyData().num_items);
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(CauserModelTest, EmptyHistoryGivesZeroScores) {
  CauserModel model(TinyConfig());
  auto scores = model.ScoreAll(0, {});
  for (float s : scores) EXPECT_EQ(s, 0.0f);
}

TEST(CauserModelTest, UserBiasCacheInvalidatedWhenParametersChange) {
  // ScoreAll caches the per-user bias GEMV (out_items * u_user) alongside
  // the item-filter cache; restoring parameters must drop both, or stale
  // biases leak into post-restore scores.
  CauserModel model(TinyConfig());
  const auto& inst = TinySplit().test[0];
  auto before = model.ScoreAll(inst.user, inst.history);  // warms the cache
  for (auto& p : model.Parameters())
    for (auto& v : p.data()) v += 0.25f;
  model.OnParametersRestored();
  auto after = model.ScoreAll(inst.user, inst.history);
  // Reference: a fresh model given the same perturbed parameters before its
  // first ScoreAll never had a cache to go stale.
  CauserModel fresh(TinyConfig());
  auto fresh_params = fresh.Parameters();
  auto params = model.Parameters();
  ASSERT_EQ(fresh_params.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    fresh_params[i].data().assign(params[i].data().begin(),
                                  params[i].data().end());
  }
  auto expected = fresh.ScoreAll(inst.user, inst.history);
  EXPECT_EQ(after, expected);
  EXPECT_NE(before, after);
}

TEST(CauserModelTest, ItemCausalWeightMatchesEquationNine) {
  CauserModel model(TinyConfig());
  // W[a][b] = assignment_a^T Wc assignment_b.
  tensor::NoGradGuard guard;
  auto assignments = model.clusterer().AssignmentsAll();
  const auto& wc = model.cluster_graph().weights();
  int a = 3, b = 11;
  double expected = 0.0;
  for (int i = 0; i < wc.rows(); ++i)
    for (int j = 0; j < wc.cols(); ++j)
      expected += assignments.At(a, i) * wc.At(i, j) * assignments.At(b, j);
  EXPECT_NEAR(model.ItemCausalWeight(a, b), expected, 1e-4);
}

TEST(CauserModelTest, TrainingReducesLoss) {
  CauserModel model(TinyConfig());
  double first = model.TrainEpoch(TinySplit().train);
  double last = first;
  for (int e = 0; e < 4; ++e) last = model.TrainEpoch(TinySplit().train);
  EXPECT_LT(last, first);
}

TEST(CauserModelTest, TrainedModelBeatsUntrained) {
  CauserModel untrained(TinyConfig());
  double before =
      eval::Evaluate(models::MakeScorer(untrained), TinySplit().test, 5).ndcg;
  CauserModel model(TinyConfig());
  TrainCauser(model, TinySplit(), {.max_epochs = 6, .patience = 2});
  double after =
      eval::Evaluate(models::MakeScorer(model), TinySplit().test, 5).ndcg;
  EXPECT_GT(after, before);
}

TEST(CauserModelTest, AcyclicityResidualShrinksDuringTraining) {
  CauserModel model(TinyConfig());
  double h0 = model.AcyclicityResidual();
  for (int e = 0; e < 6; ++e) model.TrainEpoch(TinySplit().train);
  EXPECT_LT(model.AcyclicityResidual(), h0);
}

TEST(CauserModelTest, LstmBackboneTrains) {
  CauserModel model(TinyConfig(Backbone::kLstm));
  double first = model.TrainEpoch(TinySplit().train);
  double second = model.TrainEpoch(TinySplit().train);
  EXPECT_TRUE(std::isfinite(first));
  EXPECT_TRUE(std::isfinite(second));
  const auto& inst = TinySplit().test[0];
  for (float s : model.ScoreAll(inst.user, inst.history))
    EXPECT_TRUE(std::isfinite(s));
}

TEST(CauserModelTest, ExplainScoresHaveHistoryLength) {
  CauserModel model(TinyConfig());
  model.TrainEpoch(TinySplit().train);
  const auto& inst = TinySplit().test[0];
  for (ExplainMode mode :
       {ExplainMode::kFull, ExplainMode::kCausal, ExplainMode::kAttention}) {
    auto scores = model.ExplainScores(inst, inst.target_items[0], mode);
    EXPECT_EQ(scores.size(), inst.history.size());
    for (double s : scores) EXPECT_TRUE(std::isfinite(s));
  }
}

TEST(CauserModelTest, FullExplanationIsProductOfParts) {
  CauserModel model(TinyConfig());
  model.TrainEpoch(TinySplit().train);
  const auto& inst = TinySplit().test[0];
  int item = inst.target_items[0];
  auto full = model.ExplainScores(inst, item, ExplainMode::kFull);
  auto causal_part = model.ExplainScores(inst, item, ExplainMode::kCausal);
  auto att = model.ExplainScores(inst, item, ExplainMode::kAttention);
  for (size_t t = 0; t < full.size(); ++t) {
    EXPECT_NEAR(full[t], causal_part[t] * att[t], 1e-5);
  }
}

TEST(CauserModelTest, DisablingCausalIgnoresGraph) {
  CauserConfig cfg = TinyConfig();
  cfg.use_causal = false;
  CauserModel model(cfg);
  model.TrainEpoch(TinySplit().train);
  const auto& inst = TinySplit().test[0];
  auto causal_scores =
      model.ExplainScores(inst, inst.target_items[0], ExplainMode::kCausal);
  // Without the causal module every kept step has What == 1.
  for (size_t t = 0; t < causal_scores.size(); ++t) {
    if (!inst.history[t].items.empty()) EXPECT_NEAR(causal_scores[t], 1.0, 1e-5);
  }
}

TEST(CauserModelTest, DisablingAttentionGivesUniformWeights) {
  CauserConfig cfg = TinyConfig();
  cfg.use_attention = false;
  cfg.use_causal = false;  // so all steps are kept
  CauserModel model(cfg);
  const auto& inst = TinySplit().test[0];
  auto att = model.ExplainScores(inst, inst.target_items[0],
                                 ExplainMode::kAttention);
  int kept = 0;
  for (const auto& s : inst.history) kept += !s.items.empty();
  for (size_t t = 0; t < att.size(); ++t) {
    if (!inst.history[t].items.empty())
      EXPECT_NEAR(att[t], 1.0 / kept, 1e-5);
  }
}

TEST(CauserModelTest, LearnedGraphIsBinarizedWc) {
  CauserModel model(TinyConfig());
  causal::Graph g = model.LearnedClusterGraph();
  const auto& wc = model.cluster_graph().weights();
  float eps = model.causer_config().epsilon;
  for (int i = 0; i < g.n(); ++i)
    for (int j = 0; j < g.n(); ++j)
      if (i != j) EXPECT_EQ(g.Edge(i, j), wc.At(i, j) > eps);
}

TEST(CauserModelTest, CacheInvalidationOnRestore) {
  CauserModel model(TinyConfig());
  int a = 1, b = 2;
  float w_before = model.ItemCausalWeight(a, b);
  // Mutate Wc directly and signal a restore; the cached item-level W must
  // be recomputed.
  auto params = model.Parameters();
  model.cluster_graph();  // no-op, documents intent
  for (auto& p : params) {
    if (p.rows() == model.causer_config().num_clusters &&
        p.cols() == model.causer_config().num_clusters) {
      for (auto& v : p.data()) v += 1.0f;
    }
  }
  model.OnParametersRestored();
  EXPECT_NE(model.ItemCausalWeight(a, b), w_before);
}

TEST(CauserModelTest, SlowUpdateModeTrains) {
  CauserConfig cfg = TinyConfig();
  cfg.w_update_every = 3;
  CauserModel model(cfg);
  for (int e = 0; e < 4; ++e) {
    EXPECT_TRUE(std::isfinite(model.TrainEpoch(TinySplit().train)));
  }
}

TEST(CauserModelTest, PretrainAndFreezeGraphFixesWc) {
  CauserModel model(TinyConfig());
  model.PretrainAndFreezeGraph(TinySplit().train, /*rounds=*/3);
  EXPECT_TRUE(model.graph_frozen());
  auto wc_before = model.cluster_graph().weights().data();
  model.TrainEpoch(TinySplit().train);
  model.TrainEpoch(TinySplit().train);
  EXPECT_EQ(model.cluster_graph().weights().data(), wc_before)
      << "frozen W^c must not move during TrainEpoch";
}

TEST(CauserModelTest, PretrainedGraphIsUsable) {
  CauserModel model(TinyConfig());
  model.PretrainAndFreezeGraph(TinySplit().train, /*rounds=*/3);
  for (int e = 0; e < 4; ++e) model.TrainEpoch(TinySplit().train);
  double ndcg =
      eval::Evaluate(models::MakeScorer(model), TinySplit().test, 5).ndcg;
  EXPECT_GT(ndcg, 0.0);
  EXPECT_TRUE(std::isfinite(model.AcyclicityResidual()));
}

TEST(TrainerTest, DefaultConfigWiresDataset) {
  CauserConfig cfg = DefaultCauserConfig(TinyData(), Backbone::kGru, 99);
  EXPECT_EQ(cfg.base.num_items, TinyData().num_items);
  EXPECT_EQ(cfg.base.num_users, TinyData().num_users);
  EXPECT_EQ(cfg.base.item_features, &TinyData().item_features);
  EXPECT_EQ(cfg.num_clusters, TinyData().true_cluster_graph.n());
  EXPECT_EQ(cfg.base.seed, 99u);
}

TEST(TrainerTest, TrainCauserReportsDiagnostics) {
  CauserModel model(TinyConfig());
  CauserTrainResult r =
      TrainCauser(model, TinySplit(), {.max_epochs = 3, .patience = 1});
  EXPECT_GE(r.fit.epochs_run, 1);
  EXPECT_TRUE(std::isfinite(r.final_acyclicity));
  EXPECT_EQ(r.learned_cluster_graph.n(),
            model.causer_config().num_clusters);
}

TEST(ExplainerAdapterTest, MatchesModelScores) {
  CauserModel model(TinyConfig());
  model.TrainEpoch(TinySplit().train);
  auto explainer = MakeCauserExplainer(model, ExplainMode::kFull);
  const auto& inst = TinySplit().test[0];
  int item = inst.target_items[0];
  EXPECT_EQ(explainer(inst, item),
            model.ExplainScores(inst, item, ExplainMode::kFull));
}

}  // namespace
}  // namespace causer::core
