#include "common/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "testing_json.h"

namespace causer::trace {
namespace {

/// Every test runs with tracing enabled and an empty event buffer, and
/// leaves tracing disabled (the process default) behind.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    Reset();
  }
  void TearDown() override {
    SetEnabled(false);
    Reset();
  }
};

TEST_F(TraceTest, SpanRecordsCompleteEventWithArgs) {
  {
    TraceSpan span("test.span", "test");
    span.AddArg("items", 42.0);
    span.AddArg("threads", 2.0);
  }
  auto events = Snapshot();
  ASSERT_EQ(events.size(), 1u);
  const Event& e = events[0];
  EXPECT_STREQ(e.name, "test.span");
  EXPECT_STREQ(e.category, "test");
  EXPECT_EQ(e.phase, 'X');
  EXPECT_GE(e.ts_us, 0);
  EXPECT_GE(e.dur_us, 0);
  ASSERT_EQ(e.num_args, 2);
  EXPECT_STREQ(e.arg_keys[0], "items");
  EXPECT_EQ(e.arg_values[0], 42.0);
  EXPECT_STREQ(e.arg_keys[1], "threads");
  EXPECT_EQ(e.arg_values[1], 2.0);
}

TEST_F(TraceTest, ArgsBeyondCapacityAreDropped) {
  {
    TraceSpan span("test.span", "test");
    span.AddArg("a", 1.0);
    span.AddArg("b", 2.0);
    span.AddArg("c", 3.0);  // beyond kMaxArgs: silently dropped
  }
  auto events = Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].num_args, kMaxArgs);
}

TEST_F(TraceTest, InstantRecordsZeroDurationEvent) {
  Instant("test.instant", "test");
  auto events = Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_EQ(events[0].dur_us, 0);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  SetEnabled(false);
  {
    TraceSpan span("test.span", "test");
    span.AddArg("items", 1.0);
  }
  Instant("test.instant", "test");
  EXPECT_TRUE(Snapshot().empty());
}

TEST_F(TraceTest, PerThreadBuffersMergeAndSurviveThreadExit) {
  constexpr int kSpansPerThread = 50;
  for (int threads : {1, 2, 8}) {
    Reset();
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([] {
        for (int i = 0; i < kSpansPerThread; ++i) {
          TraceSpan span("test.worker", "test");
        }
      });
    }
    // Joining first means every event comes from an exited thread: the
    // merged snapshot must include the retired buffers.
    for (auto& w : workers) w.join();
    auto events = Snapshot();
    EXPECT_EQ(events.size(),
              static_cast<size_t>(threads) * kSpansPerThread);
    for (size_t i = 1; i < events.size(); ++i) {
      EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
    }
    EXPECT_EQ(DroppedEvents(), 0u);
  }
}

TEST_F(TraceTest, NestedSpansBothRecorded) {
  {
    TraceSpan outer("test.outer", "test");
    TraceSpan inner("test.inner", "test");
  }
  auto events = Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Destruction order records inner first; sorting is by start time.
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
}

TEST_F(TraceTest, ChromeTraceJsonIsWellFormed) {
  {
    TraceSpan span("test.span", "test");
    span.AddArg("items", 3.0);
  }
  Instant("test.instant", "test");
  std::string json = ChromeTraceJson();
  EXPECT_TRUE(causer::testing::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("test.span"), std::string::npos);
  EXPECT_NE(json.find("test.instant"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
}

TEST_F(TraceTest, WriteChromeTraceRoundTrips) {
  { TraceSpan span("test.span", "test"); }
  std::string path =
      ::testing::TempDir() + "/causer_trace_test_roundtrip.json";
  ASSERT_TRUE(WriteChromeTrace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream contents;
  contents << in.rdbuf();
  EXPECT_TRUE(causer::testing::IsValidJson(contents.str()))
      << contents.str();
  std::remove(path.c_str());
}

TEST_F(TraceTest, ResetClearsEvents) {
  { TraceSpan span("test.span", "test"); }
  ASSERT_EQ(Snapshot().size(), 1u);
  Reset();
  EXPECT_TRUE(Snapshot().empty());
}

}  // namespace
}  // namespace causer::trace
