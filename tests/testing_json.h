#ifndef CAUSER_TESTS_TESTING_JSON_H_
#define CAUSER_TESTS_TESTING_JSON_H_

#include <cctype>
#include <cstdlib>
#include <string>

namespace causer::testing {

/// Minimal recursive-descent JSON syntax checker for tests: validates that
/// a whole string is one well-formed JSON value (object, array, string,
/// number, or literal). No DOM is built; only syntax is checked, which is
/// what the metrics / trace export tests need.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool ParseValue() {
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject() {
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    do {
      if (!ParseString()) return false;
      if (!Consume(':')) return false;
      if (!ParseValue()) return false;
    } while (Consume(','));
    return Consume('}');
  }

  bool ParseArray() {
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    do {
      if (!ParseValue()) return false;
    } while (Consume(','));
    return Consume(']');
  }

  bool ParseString() {
    if (!Consume('"')) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        ++pos_;  // accept any escaped character
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
    }
    return false;
  }

  bool ParseNumber() {
    SkipWs();
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    size_t digits = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      ++digits;
    }
    if (digits == 0) return false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool ParseLiteral(const char* lit) {
    SkipWs();
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
      ++pos_;
    }
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

inline bool IsValidJson(const std::string& text) {
  return JsonChecker(text).Valid();
}

}  // namespace causer::testing

#endif  // CAUSER_TESTS_TESTING_JSON_H_
