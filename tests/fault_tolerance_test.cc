#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/split.h"
#include "models/gru4rec.h"
#include "nn/serialization.h"

namespace causer {
namespace {

namespace fs = std::filesystem;

/// End-to-end fault tolerance: a training run killed at a fault point and
/// resumed from its checkpoints must converge to the byte-identical model
/// an uninterrupted run produces (docs/ROBUSTNESS.md).
class FaultToleranceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("ft_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
    dataset_ = data::MakeDataset(data::TinySpec());
    split_ = data::LeaveLastOut(dataset_);
  }

  void TearDown() override {
    fault::DisarmAll();
    SetDefaultThreads(1);
    metrics::SetEnabled(false);
    fs::remove_all(root_);
  }

  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  models::TrainConfig BaseConfig() {
    models::TrainConfig tc;
    tc.max_epochs = 6;
    tc.min_epochs = 2;
    tc.patience = 100;  // fixed-length run: no early-stop variance
    return tc;
  }

  models::TrainConfig WithCheckpoints(const std::string& dir,
                                      models::SequentialRecommender& model,
                                      bool resume) {
    models::TrainConfig tc = BaseConfig();
    core::CheckpointOptions opts;
    opts.dir = dir;
    opts.resume = resume;
    EXPECT_TRUE(core::InstallCheckpointHooks(opts, model, &tc));
    return tc;
  }

  /// The reference: an uninterrupted checkpointing run. Returns the path
  /// of the saved final model.
  std::string UninterruptedRun(const core::CauserConfig& cfg,
                               models::FitResult* result) {
    core::CauserModel model(cfg);
    auto tc = WithCheckpoints((root_ / "ref_ckpt").string(), model,
                              /*resume=*/false);
    *result = models::Fit(model, split_, tc);
    std::string out = (root_ / "ref_model.bin").string();
    EXPECT_TRUE(nn::SaveParameters(model, out));
    return out;
  }

  /// Kill training right after the `crash_after`-th checkpoint write, then
  /// resume in a fresh model (as a restarted process would). Returns the
  /// path of the saved final model.
  std::string CrashAndResumeRun(const core::CauserConfig& cfg,
                                int crash_after,
                                models::FitResult* result) {
    const std::string ckpt_dir = (root_ / "crash_ckpt").string();
    {
      core::CauserModel model(cfg);
      auto tc = WithCheckpoints(ckpt_dir, model, /*resume=*/false);
      fault::Arm("trainer.crash_after_checkpoint", crash_after);
      auto crashed = models::Fit(model, split_, tc);
      fault::DisarmAll();
      // The simulated kill abandoned the run early.
      EXPECT_LT(crashed.epochs_run, BaseConfig().max_epochs);
      // `model` dies here without its best snapshot restored — exactly
      // what SIGKILL leaves behind.
    }
    core::CauserModel resumed(cfg);
    auto tc = WithCheckpoints(ckpt_dir, resumed, /*resume=*/true);
    *result = models::Fit(resumed, split_, tc);
    std::string out = (root_ / "resumed_model.bin").string();
    EXPECT_TRUE(nn::SaveParameters(resumed, out));
    return out;
  }

  void ExpectCrashResumeBitExact(int threads) {
    SetDefaultThreads(threads);
    auto cfg = core::DefaultCauserConfig(dataset_, core::Backbone::kGru);
    models::FitResult ref_result, resumed_result;
    std::string ref = UninterruptedRun(cfg, &ref_result);
    std::string resumed = CrashAndResumeRun(cfg, /*crash_after=*/3,
                                            &resumed_result);
    std::string ref_bytes = ReadFile(ref);
    ASSERT_FALSE(ref_bytes.empty());
    // The acid test: the resumed model file is memcmp-identical to the
    // uninterrupted one.
    EXPECT_EQ(ref_bytes, ReadFile(resumed)) << "at " << threads << " threads";
    EXPECT_EQ(ref_result.epochs_run, resumed_result.epochs_run);
    EXPECT_EQ(ref_result.best_validation_ndcg,
              resumed_result.best_validation_ndcg);
    EXPECT_EQ(ref_result.epoch_losses, resumed_result.epoch_losses);
  }

  fs::path root_;
  data::Dataset dataset_;
  data::Split split_;
};

TEST_F(FaultToleranceTest, CrashResumeIsBitExactSingleThread) {
  ExpectCrashResumeBitExact(1);
}

TEST_F(FaultToleranceTest, CrashResumeIsBitExactEightThreads) {
  ExpectCrashResumeBitExact(8);
}

TEST_F(FaultToleranceTest, NanGradientRollsBackAndRecovers) {
  metrics::SetEnabled(true);
  const uint64_t rollbacks_before =
      models::HealthMetrics().rollbacks.Value();
  const uint64_t nonfinite_before =
      models::HealthMetrics().nonfinite.Value();

  models::ModelConfig cfg;
  cfg.num_users = dataset_.num_users;
  cfg.num_items = dataset_.num_items;
  cfg.embedding_dim = 4;
  cfg.hidden_dim = 4;
  cfg.item_features = &dataset_.item_features;

  // Measure optimizer steps per epoch on a twin model (same seed, same
  // stream) by arming the point beyond reach and reading the hit count.
  int steps_per_epoch = 0;
  {
    models::Gru4Rec twin(cfg);
    fault::Arm("optimizer.nan_grad", /*fire_on_hit=*/1 << 30);
    twin.TrainEpoch(split_.train);
    steps_per_epoch = fault::HitCount("optimizer.nan_grad");
    fault::DisarmAll();
  }
  ASSERT_GT(steps_per_epoch, 2);

  models::Gru4Rec model(cfg);
  auto tc = BaseConfig();
  tc.max_epochs = 4;
  core::CheckpointOptions opts;
  opts.dir = (root_ / "nan_ckpt").string();
  ASSERT_TRUE(core::InstallCheckpointHooks(opts, model, &tc));

  // Fire a NaN into a gradient mid-epoch-2: the per-step sentinel bails
  // out of the epoch, Fit rolls back to the epoch-1 checkpoint at half
  // the learning rate, and training completes.
  fault::Arm("optimizer.nan_grad", steps_per_epoch + 2);
  auto result = models::Fit(model, split_, tc);
  fault::DisarmAll();

  EXPECT_EQ(result.health_rollbacks, 1);
  EXPECT_FALSE(result.stopped_unhealthy);
  EXPECT_EQ(result.epochs_run, 4);
  for (double loss : result.epoch_losses) {
    EXPECT_TRUE(std::isfinite(loss));
  }
  for (const auto& p : model.Parameters()) {
    for (float v : p.data()) ASSERT_TRUE(std::isfinite(v));
  }
  EXPECT_EQ(models::HealthMetrics().rollbacks.Value() - rollbacks_before, 1u);
  EXPECT_EQ(models::HealthMetrics().nonfinite.Value() - nonfinite_before, 1u);
  EXPECT_EQ(models::HealthMetrics().lr_scale.Value(), 0.5);
}

TEST_F(FaultToleranceTest, NanWithoutCheckpointsStopsCleanly) {
  models::ModelConfig cfg;
  cfg.num_users = dataset_.num_users;
  cfg.num_items = dataset_.num_items;
  cfg.embedding_dim = 4;
  cfg.hidden_dim = 4;
  cfg.item_features = &dataset_.item_features;
  models::Gru4Rec model(cfg);
  auto tc = BaseConfig();  // no checkpoint hooks installed

  fault::Arm("optimizer.nan_grad");  // first step of the first epoch
  auto result = models::Fit(model, split_, tc);
  fault::DisarmAll();

  EXPECT_TRUE(result.stopped_unhealthy);
  EXPECT_EQ(result.epochs_run, 0);  // the poisoned epoch was voided
  EXPECT_TRUE(result.epoch_losses.empty());
  // The per-step sentinel bailed before Step(): parameters stayed finite.
  for (const auto& p : model.Parameters()) {
    for (float v : p.data()) ASSERT_TRUE(std::isfinite(v));
  }
}

TEST_F(FaultToleranceTest, RetriesExhaustedStopsUnhealthy) {
  models::ModelConfig cfg;
  cfg.num_users = dataset_.num_users;
  cfg.num_items = dataset_.num_items;
  cfg.embedding_dim = 4;
  cfg.hidden_dim = 4;
  cfg.item_features = &dataset_.item_features;
  models::Gru4Rec model(cfg);
  auto tc = BaseConfig();
  tc.max_epochs = 12;
  tc.health_max_retries = 2;
  core::CheckpointOptions opts;
  opts.dir = (root_ / "retry_ckpt").string();
  ASSERT_TRUE(core::InstallCheckpointHooks(opts, model, &tc));

  // Every optimizer step from epoch 2 on is poisoned: the sentinel burns
  // through its retries and gives up instead of looping forever.
  int steps_per_epoch = 0;
  {
    models::Gru4Rec twin(cfg);
    fault::Arm("optimizer.nan_grad", /*fire_on_hit=*/1 << 30);
    twin.TrainEpoch(split_.train);
    steps_per_epoch = fault::HitCount("optimizer.nan_grad");
    fault::DisarmAll();
  }
  fault::Arm("optimizer.nan_grad", steps_per_epoch + 1, /*times=*/1 << 30);
  auto result = models::Fit(model, split_, tc);
  fault::DisarmAll();

  EXPECT_TRUE(result.stopped_unhealthy);
  EXPECT_EQ(result.health_rollbacks, 2);
  EXPECT_EQ(result.epochs_run, 1);  // only the clean first epoch counts
}

TEST_F(FaultToleranceTest, FailedCheckpointWriteDoesNotStopTraining) {
  models::ModelConfig cfg;
  cfg.num_users = dataset_.num_users;
  cfg.num_items = dataset_.num_items;
  cfg.embedding_dim = 4;
  cfg.hidden_dim = 4;
  cfg.item_features = &dataset_.item_features;
  models::Gru4Rec model(cfg);
  auto tc = BaseConfig();
  tc.max_epochs = 3;
  core::CheckpointOptions opts;
  opts.dir = (root_ / "flaky_ckpt").string();
  ASSERT_TRUE(core::InstallCheckpointHooks(opts, model, &tc));

  fault::Arm("ckpt.rename_fail", /*fire_on_hit=*/1, /*times=*/1 << 30);
  auto result = models::Fit(model, split_, tc);
  fault::DisarmAll();

  // Availability over durability: every save failed, training finished.
  EXPECT_EQ(result.epochs_run, 3);
  EXPECT_FALSE(result.stopped_unhealthy);
  EXPECT_TRUE(core::ListCheckpoints(opts.dir).empty());
}

}  // namespace
}  // namespace causer
