#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "tensor/autograd.h"
#include "tensor/ops.h"

// Parameterized shape sweeps: the same algebraic identities must hold for
// every (rows, cols) combination, including degenerate 1-row/1-col cases.

namespace causer::tensor {
namespace {

class ShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  int rows() const { return std::get<0>(GetParam()); }
  int cols() const { return std::get<1>(GetParam()); }
  Rng rng_{static_cast<uint64_t>(rows() * 100 + cols())};
};

INSTANTIATE_TEST_SUITE_P(
    Grid, ShapeSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 16),
                       ::testing::Values(1, 2, 5, 8, 17)));

TEST_P(ShapeSweep, AddCommutes) {
  Tensor a = Tensor::RandomNormal(rows(), cols(), 1.0f, rng_);
  Tensor b = Tensor::RandomNormal(rows(), cols(), 1.0f, rng_);
  Tensor ab = Add(a, b);
  Tensor ba = Add(b, a);
  for (int i = 0; i < ab.size(); ++i)
    EXPECT_FLOAT_EQ(ab.data()[i], ba.data()[i]);
}

TEST_P(ShapeSweep, MulDistributesOverAdd) {
  Tensor a = Tensor::RandomNormal(rows(), cols(), 1.0f, rng_);
  Tensor b = Tensor::RandomNormal(rows(), cols(), 1.0f, rng_);
  Tensor c = Tensor::RandomNormal(rows(), cols(), 1.0f, rng_);
  Tensor lhs = Mul(a, Add(b, c));
  Tensor rhs = Add(Mul(a, b), Mul(a, c));
  for (int i = 0; i < lhs.size(); ++i)
    EXPECT_NEAR(lhs.data()[i], rhs.data()[i], 1e-4);
}

TEST_P(ShapeSweep, TransposeShapeAndInvolution) {
  Tensor a = Tensor::RandomNormal(rows(), cols(), 1.0f, rng_);
  Tensor t = Transpose(a);
  EXPECT_EQ(t.rows(), cols());
  EXPECT_EQ(t.cols(), rows());
  Tensor tt = Transpose(t);
  for (int i = 0; i < a.size(); ++i)
    EXPECT_FLOAT_EQ(tt.data()[i], a.data()[i]);
}

TEST_P(ShapeSweep, SumEqualsChainedReductions) {
  Tensor a = Tensor::RandomNormal(rows(), cols(), 1.0f, rng_);
  float direct = Sum(a).Item();
  float via_rows = Sum(SumRows(a)).Item();
  float via_cols = Sum(SumCols(a)).Item();
  EXPECT_NEAR(direct, via_rows, 1e-3);
  EXPECT_NEAR(direct, via_cols, 1e-3);
}

TEST_P(ShapeSweep, SoftmaxRowsNormalized) {
  Tensor a = Tensor::RandomNormal(rows(), cols(), 2.0f, rng_);
  Tensor s = SoftmaxRows(a);
  for (int r = 0; r < rows(); ++r) {
    float total = 0.0f;
    for (int c = 0; c < cols(); ++c) total += s.At(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5);
  }
}

TEST_P(ShapeSweep, SliceConcatRoundTrip) {
  if (rows() < 2) GTEST_SKIP();
  Tensor a = Tensor::RandomNormal(rows(), cols(), 1.0f, rng_);
  int split = rows() / 2;
  Tensor top = SliceRows(a, 0, split);
  Tensor bottom = SliceRows(a, split, rows() - split);
  Tensor back = ConcatRows({top, bottom});
  for (int i = 0; i < a.size(); ++i)
    EXPECT_FLOAT_EQ(back.data()[i], a.data()[i]);
}

TEST_P(ShapeSweep, GatherAllRowsIsIdentity) {
  Tensor a = Tensor::RandomNormal(rows(), cols(), 1.0f, rng_);
  std::vector<int> all(rows());
  for (int i = 0; i < rows(); ++i) all[i] = i;
  Tensor g = GatherRows(a, all);
  for (int i = 0; i < a.size(); ++i)
    EXPECT_FLOAT_EQ(g.data()[i], a.data()[i]);
}

TEST_P(ShapeSweep, MatMulWithIdentityPreserves) {
  Tensor a = Tensor::RandomNormal(rows(), cols(), 1.0f, rng_);
  Tensor eye = Tensor::Zeros(cols(), cols());
  for (int i = 0; i < cols(); ++i) eye.At(i, i) = 1.0f;
  Tensor p = MatMul(a, eye);
  for (int i = 0; i < a.size(); ++i)
    EXPECT_NEAR(p.data()[i], a.data()[i], 1e-5);
}

TEST_P(ShapeSweep, GradientOfSumIsOnes) {
  Tensor a = Tensor::RandomNormal(rows(), cols(), 1.0f, rng_,
                                  /*requires_grad=*/true);
  Backward(Sum(a));
  for (int r = 0; r < rows(); ++r)
    for (int c = 0; c < cols(); ++c) EXPECT_FLOAT_EQ(a.GradAt(r, c), 1.0f);
}

TEST_P(ShapeSweep, BroadcastAddMatchesManual) {
  Tensor a = Tensor::RandomNormal(rows(), cols(), 1.0f, rng_);
  Tensor bias = Tensor::RandomNormal(1, cols(), 1.0f, rng_);
  Tensor out = Add(a, bias);
  for (int r = 0; r < rows(); ++r)
    for (int c = 0; c < cols(); ++c)
      EXPECT_FLOAT_EQ(out.At(r, c), a.At(r, c) + bias.At(0, c));
}

TEST_P(ShapeSweep, BceNonNegative) {
  Tensor x = Tensor::RandomNormal(rows(), cols(), 2.0f, rng_);
  Tensor t = Tensor::Zeros(rows(), cols());
  for (auto& v : t.data()) v = rng_.Bernoulli(0.5) ? 1.0f : 0.0f;
  EXPECT_GE(BceWithLogits(x, t).Item(), 0.0f);
}

}  // namespace
}  // namespace causer::tensor
