#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/generator.h"
#include "data/sampler.h"
#include "data/split.h"
#include "data/stats.h"

namespace causer::data {
namespace {

Dataset TinyData() {
  static Dataset d = MakeDataset(TinySpec());
  return d;
}

TEST(GeneratorTest, DeterministicFromSeed) {
  Dataset a = MakeDataset(TinySpec());
  Dataset b = MakeDataset(TinySpec());
  ASSERT_EQ(a.sequences.size(), b.sequences.size());
  for (size_t i = 0; i < a.sequences.size(); ++i) {
    ASSERT_EQ(a.sequences[i].steps.size(), b.sequences[i].steps.size());
    for (size_t t = 0; t < a.sequences[i].steps.size(); ++t) {
      EXPECT_EQ(a.sequences[i].steps[t].items, b.sequences[i].steps[t].items);
    }
  }
  EXPECT_EQ(a.item_true_cluster, b.item_true_cluster);
  EXPECT_TRUE(a.true_cluster_graph == b.true_cluster_graph);
}

TEST(GeneratorTest, BasicShapes) {
  Dataset d = TinyData();
  auto spec = TinySpec();
  EXPECT_EQ(d.num_users, spec.num_users);
  EXPECT_EQ(d.num_items, spec.num_items);
  EXPECT_EQ(static_cast<int>(d.sequences.size()), spec.num_users);
  EXPECT_EQ(static_cast<int>(d.item_features.size()), spec.num_items);
  EXPECT_EQ(static_cast<int>(d.item_features[0].size()), spec.feature_dim);
  EXPECT_EQ(static_cast<int>(d.item_true_cluster.size()), spec.num_items);
}

TEST(GeneratorTest, SequenceLengthsWithinSpec) {
  Dataset d = TinyData();
  auto spec = TinySpec();
  for (const auto& seq : d.sequences) {
    EXPECT_GE(static_cast<int>(seq.steps.size()), spec.min_len);
    EXPECT_LE(static_cast<int>(seq.steps.size()), spec.max_len);
  }
}

TEST(GeneratorTest, ItemIdsValid) {
  Dataset d = TinyData();
  for (const auto& seq : d.sequences) {
    for (const auto& step : seq.steps) {
      EXPECT_FALSE(step.items.empty());
      for (int item : step.items) {
        EXPECT_GE(item, 0);
        EXPECT_LT(item, d.num_items);
      }
    }
  }
}

TEST(GeneratorTest, TrueClusterGraphIsDagWithEdges) {
  Dataset d = TinyData();
  EXPECT_TRUE(d.true_cluster_graph.IsDag());
  EXPECT_GE(d.true_cluster_graph.NumEdges(), 1);
}

TEST(GeneratorTest, EveryClusterNonEmpty) {
  Dataset d = TinyData();
  std::set<int> used(d.item_true_cluster.begin(), d.item_true_cluster.end());
  EXPECT_EQ(static_cast<int>(used.size()), TinySpec().num_clusters);
}

TEST(GeneratorTest, CauseLabelsAreConsistent) {
  // Every recorded cause must (a) point to an earlier step, (b) name an
  // item that is actually in that step, and (c) respect the true cluster
  // DAG: cluster(cause) -> cluster(effect).
  Dataset d = TinyData();
  int checked = 0;
  for (const auto& seq : d.sequences) {
    for (size_t t = 0; t < seq.steps.size(); ++t) {
      const Step& step = seq.steps[t];
      ASSERT_EQ(step.items.size(), step.cause_step.size());
      ASSERT_EQ(step.items.size(), step.cause_item.size());
      for (size_t k = 0; k < step.items.size(); ++k) {
        if (step.cause_step[k] < 0) continue;
        ++checked;
        int cs = step.cause_step[k];
        int ci = step.cause_item[k];
        EXPECT_LT(cs, static_cast<int>(t));
        const auto& cause_items = seq.steps[cs].items;
        EXPECT_TRUE(std::find(cause_items.begin(), cause_items.end(), ci) !=
                    cause_items.end());
        int c_from = d.item_true_cluster[ci];
        int c_to = d.item_true_cluster[step.items[k]];
        EXPECT_TRUE(d.true_cluster_graph.Edge(c_from, c_to))
            << c_from << "->" << c_to;
      }
    }
  }
  EXPECT_GT(checked, 20);  // the causal mechanism fired often
}

TEST(GeneratorTest, CausalInteractionsFrequent) {
  Dataset d = TinyData();
  int causal = 0, total = 0;
  for (const auto& seq : d.sequences) {
    for (const auto& step : seq.steps) {
      for (int cs : step.cause_step) {
        ++total;
        if (cs >= 0) ++causal;
      }
    }
  }
  // causal_prob is 0.75, but the first step can never be causal and a
  // picked cause whose cluster has no children falls through to noise.
  EXPECT_GT(static_cast<double>(causal) / total, 0.1);
}

TEST(GeneratorTest, FeaturesClusterSeparable) {
  // Items in the same cluster must be closer in feature space on average
  // than items in different clusters.
  Dataset d = TinyData();
  auto dist2 = [&](int a, int b) {
    double s = 0;
    for (size_t f = 0; f < d.item_features[a].size(); ++f) {
      double diff = d.item_features[a][f] - d.item_features[b][f];
      s += diff * diff;
    }
    return s;
  };
  double same = 0, cross = 0;
  int same_n = 0, cross_n = 0;
  for (int a = 0; a < d.num_items; ++a) {
    for (int b = a + 1; b < d.num_items; ++b) {
      if (d.item_true_cluster[a] == d.item_true_cluster[b]) {
        same += dist2(a, b);
        ++same_n;
      } else {
        cross += dist2(a, b);
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_LT(same / same_n, cross / cross_n);
}

TEST(GeneratorTest, BasketModeProducesMultiItemSteps) {
  DatasetSpec spec = TinySpec();
  spec.basket_extend_prob = 0.5;
  Dataset d = MakeDataset(spec);
  EXPECT_TRUE(d.basket_mode);
  int multi = 0;
  for (const auto& seq : d.sequences) {
    for (const auto& step : seq.steps) {
      EXPECT_LE(step.items.size(), 4u);
      if (step.items.size() > 1) ++multi;
      std::set<int> unique(step.items.begin(), step.items.end());
      EXPECT_EQ(unique.size(), step.items.size());  // no duplicates
    }
  }
  EXPECT_GT(multi, 10);
}

TEST(GeneratorTest, PaperSpecsAllGenerate) {
  for (const auto& spec : AllPaperSpecs()) {
    Dataset d = MakeDataset(spec);
    EXPECT_EQ(d.name, spec.name);
    EXPECT_GT(d.NumInteractions(), 0);
    EXPECT_TRUE(d.true_cluster_graph.IsDag());
  }
}

TEST(SpecsTest, NamesMatchPaper) {
  EXPECT_EQ(PaperDatasetName(PaperDataset::kEpinions), "Epinions");
  EXPECT_EQ(PaperDatasetName(PaperDataset::kFoursquare), "Foursquare");
  EXPECT_EQ(PaperDatasetName(PaperDataset::kPatio), "Patio");
  EXPECT_EQ(PaperDatasetName(PaperDataset::kBaby), "Baby");
  EXPECT_EQ(PaperDatasetName(PaperDataset::kVideo), "Video");
}

TEST(SpecsTest, RelativeShapesPreserved) {
  // Foursquare has the longest sequences; Epinions the fewest items.
  auto four = MakeDataset(SpecFor(PaperDataset::kFoursquare));
  auto epin = MakeDataset(SpecFor(PaperDataset::kEpinions));
  auto baby = MakeDataset(SpecFor(PaperDataset::kBaby));
  EXPECT_GT(four.AvgSequenceLength(), 2 * baby.AvgSequenceLength());
  EXPECT_LT(epin.num_items, four.num_items);
  // Baby is homogeneous: fewer clusters than Epinions (paper V-C1).
  EXPECT_LT(baby.true_cluster_graph.n(), epin.true_cluster_graph.n());
}

TEST(StatsTest, CountsConsistent) {
  Dataset d = TinyData();
  DatasetStats s = ComputeStats(d);
  EXPECT_EQ(s.num_users, d.num_users);
  EXPECT_EQ(s.num_interactions, d.NumInteractions());
  EXPECT_NEAR(s.avg_seq_len,
              static_cast<double>(s.num_interactions) / s.num_users, 1e-9);
  EXPECT_NEAR(s.sparsity,
              1.0 - static_cast<double>(s.num_interactions) /
                        (d.num_users * d.num_items),
              1e-9);
  EXPECT_GT(s.sparsity, 0.5);
}

TEST(StatsTest, HistogramPartitionsUsers) {
  Dataset d = TinyData();
  auto h = SequenceLengthHistogram(d, {0, 3, 5, 10});
  int total = 0;
  for (int c : h) total += c;
  EXPECT_EQ(total, d.num_users);
  EXPECT_EQ(h.size(), 4u);  // 3 buckets + overflow
}

TEST(SplitTest, ProtocolSizes) {
  Dataset d = TinyData();  // min_len = 3, so every user has test + val
  Split s = LeaveLastOut(d);
  EXPECT_EQ(static_cast<int>(s.test.size()), d.num_users);
  EXPECT_EQ(static_cast<int>(s.validation.size()), d.num_users);
  EXPECT_LE(s.train.size(), d.sequences.size());
}

TEST(SplitTest, HistoryPrecedesTarget) {
  Dataset d = TinyData();
  Split s = LeaveLastOut(d);
  for (const auto& inst : s.test) {
    const auto& seq = d.sequences[inst.user];
    EXPECT_EQ(inst.history.size(), seq.steps.size() - 1);
    EXPECT_EQ(inst.target_items, seq.steps.back().items);
  }
  for (const auto& inst : s.validation) {
    const auto& seq = d.sequences[inst.user];
    EXPECT_EQ(inst.history.size(), seq.steps.size() - 2);
  }
}

TEST(SplitTest, TrainPrefixExcludesHeldOut) {
  Dataset d = TinyData();
  Split s = LeaveLastOut(d);
  for (const auto& seq : s.train) {
    const auto& full = d.sequences[seq.user];
    EXPECT_EQ(seq.steps.size(), full.steps.size() - 2);
    EXPECT_GE(seq.steps.size(), 2u);
  }
}

TEST(SplitTest, ShortSequencesHandled) {
  Dataset d;
  d.num_users = 3;
  d.num_items = 5;
  Sequence one;
  one.user = 0;
  one.steps.push_back({{1}, {-1}, {-1}});
  Sequence two;
  two.user = 1;
  two.steps.push_back({{1}, {-1}, {-1}});
  two.steps.push_back({{2}, {0}, {1}});
  d.sequences = {one, two};
  Split s = LeaveLastOut(d);
  EXPECT_EQ(s.test.size(), 1u);       // only the 2-step user
  EXPECT_TRUE(s.validation.empty());
  EXPECT_TRUE(s.train.empty());
}

TEST(SamplerTest, NegativesExcludePositives) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    auto negs = SampleNegatives(20, {3, 7}, 5, rng);
    EXPECT_EQ(negs.size(), 5u);
    std::set<int> unique(negs.begin(), negs.end());
    EXPECT_EQ(unique.size(), 5u);
    for (int n : negs) {
      EXPECT_NE(n, 3);
      EXPECT_NE(n, 7);
      EXPECT_GE(n, 0);
      EXPECT_LT(n, 20);
    }
  }
}

TEST(SamplerTest, ExhaustiveSampling) {
  Rng rng(5);
  auto negs = SampleNegatives(5, {0}, 4, rng);
  std::set<int> unique(negs.begin(), negs.end());
  EXPECT_EQ(unique, (std::set<int>{1, 2, 3, 4}));
}

TEST(SamplerTest, DuplicatedPositivesDoNotShrinkCapacity) {
  // Multi-hot steps can repeat an item, so the positives list may contain
  // duplicates. Capacity is bounded by the number of *distinct* positives:
  // with 2 distinct positives in a 100-item catalog, k = 98 must succeed
  // (a naive size() check would see 5 positives and reject it).
  Rng rng(6);
  auto negs = SampleNegatives(100, {1, 1, 1, 2, 2}, 98, rng);
  ASSERT_EQ(negs.size(), 98u);
  std::set<int> unique(negs.begin(), negs.end());
  EXPECT_EQ(unique.size(), 98u);  // all distinct
  EXPECT_EQ(unique.count(1), 0u);
  EXPECT_EQ(unique.count(2), 0u);
  for (int n : negs) {
    EXPECT_GE(n, 0);
    EXPECT_LT(n, 100);
  }
}

TEST(SamplerTest, EnumerateExamplesSkipsFirstStep) {
  Dataset d = TinyData();
  auto examples = EnumerateExamples(d.sequences);
  for (const auto& ex : examples) {
    EXPECT_GE(ex.target_step, 1);
    EXPECT_LT(ex.target_step, static_cast<int>(ex.sequence->steps.size()));
  }
  int expected = 0;
  for (const auto& seq : d.sequences)
    expected += static_cast<int>(seq.steps.size()) - 1;
  EXPECT_EQ(static_cast<int>(examples.size()), expected);
}

}  // namespace
}  // namespace causer::data
