#include "core/checkpoint.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "data/generator.h"
#include "data/split.h"
#include "models/gru4rec.h"
#include "models/narm.h"

namespace causer::core {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("ckpt_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    fault::DisarmAll();
    fs::remove_all(dir_);
  }

  models::ModelConfig SmallConfig() {
    dataset_ = data::MakeDataset(data::TinySpec());
    split_ = data::LeaveLastOut(dataset_);
    models::ModelConfig cfg;
    cfg.num_users = dataset_.num_users;
    cfg.num_items = dataset_.num_items;
    cfg.embedding_dim = 4;
    cfg.hidden_dim = 4;
    cfg.item_features = &dataset_.item_features;
    return cfg;
  }

  /// One short trained state so the checkpoint carries non-trivial
  /// optimizer moments and RNG progress.
  void TrainBriefly(models::SequentialRecommender& model) {
    model.TrainEpoch(split_.train);
  }

  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  static void WriteFile(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// Full observable state of a model: parameters + training-state blob.
  static std::pair<std::vector<std::vector<float>>, std::string> StateOf(
      const models::SequentialRecommender& model) {
    std::vector<std::vector<float>> params;
    for (const auto& p : model.Parameters()) {
      params.emplace_back(p.data().begin(), p.data().end());
    }
    std::string blob;
    model.SaveTrainingState(&blob);
    return {std::move(params), std::move(blob)};
  }

  models::FitResumeState SomeFitState() {
    models::FitResumeState st;
    st.next_epoch = 3;
    st.best_ndcg = 0.625;
    st.stale = 1;
    st.epoch_losses = {0.9, 0.7, 0.55};
    st.best_snapshot = {{1.0f, 2.0f}, {3.0f}};
    return st;
  }

  fs::path dir_;
  data::Dataset dataset_;
  data::Split split_;
};

TEST_F(CheckpointTest, PathAndListOrdering) {
  std::string p0 = CheckpointPath(dir_.string(), 2);
  std::string p1 = CheckpointPath(dir_.string(), 10);
  EXPECT_NE(p0.find("ckpt-000002.causer"), std::string::npos);
  WriteFile(p1, "x");
  WriteFile(p0, "x");
  WriteFile((dir_ / "not-a-checkpoint.txt").string(), "x");
  WriteFile((dir_ / "ckpt-junk.causer").string(), "x");
  auto listed = ListCheckpoints(dir_.string());
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], p0);
  EXPECT_EQ(listed[1], p1);
  EXPECT_TRUE(ListCheckpoints((dir_ / "missing").string()).empty());
}

TEST_F(CheckpointTest, RoundTripRestoresEverything) {
  auto cfg = SmallConfig();
  models::Gru4Rec a(cfg);
  TrainBriefly(a);
  auto st = SomeFitState();
  std::string path = CheckpointPath(dir_.string(), st.next_epoch);
  ASSERT_TRUE(SaveTrainingCheckpoint(a, st, path));

  models::ModelConfig cfg2 = cfg;
  cfg2.seed = 99;  // different init + rng
  models::Gru4Rec b(cfg2);
  models::FitResumeState restored;
  ASSERT_TRUE(LoadTrainingCheckpoint(b, &restored, path));

  EXPECT_EQ(StateOf(a), StateOf(b));
  EXPECT_EQ(restored.next_epoch, st.next_epoch);
  EXPECT_EQ(restored.best_ndcg, st.best_ndcg);
  EXPECT_EQ(restored.stale, st.stale);
  EXPECT_EQ(restored.epoch_losses, st.epoch_losses);
  EXPECT_EQ(restored.best_snapshot, st.best_snapshot);

  // The restored model trains on in lockstep with the original.
  EXPECT_EQ(a.TrainEpoch(split_.train), b.TrainEpoch(split_.train));
}

TEST_F(CheckpointTest, ModelNameMismatchRejected) {
  auto cfg = SmallConfig();
  models::Gru4Rec a(cfg);
  auto st = SomeFitState();
  std::string path = CheckpointPath(dir_.string(), 0);
  ASSERT_TRUE(SaveTrainingCheckpoint(a, st, path));
  models::Narm other(cfg);
  auto before = StateOf(other);
  models::FitResumeState restored;
  EXPECT_FALSE(LoadTrainingCheckpoint(other, &restored, path));
  EXPECT_EQ(StateOf(other), before);
}

TEST_F(CheckpointTest, MissingFileFails) {
  auto cfg = SmallConfig();
  models::Gru4Rec m(cfg);
  models::FitResumeState st;
  EXPECT_FALSE(
      LoadTrainingCheckpoint(m, &st, (dir_ / "nope.causer").string()));
}

TEST_F(CheckpointTest, EveryBitFlipInHeadersRejectedWithoutMutation) {
  auto cfg = SmallConfig();
  models::Gru4Rec a(cfg);
  TrainBriefly(a);
  std::string path = CheckpointPath(dir_.string(), 0);
  ASSERT_TRUE(SaveTrainingCheckpoint(a, SomeFitState(), path));
  const std::string good = ReadFile(path);
  ASSERT_GT(good.size(), 64u);

  models::Gru4Rec victim(cfg);
  TrainBriefly(victim);
  const auto before = StateOf(victim);
  // Flip one bit at a spread of offsets covering the header, every
  // section, and the trailing checksum.
  const size_t step = std::max<size_t>(1, good.size() / 97);
  for (size_t off = 0; off < good.size(); off += step) {
    std::string bad = good;
    bad[off] = static_cast<char>(bad[off] ^ 0x10);
    WriteFile(path, bad);
    models::FitResumeState st;
    EXPECT_FALSE(LoadTrainingCheckpoint(victim, &st, path))
        << "bit flip at offset " << off << " was not detected";
    EXPECT_EQ(StateOf(victim), before) << "mutated at offset " << off;
  }
}

TEST_F(CheckpointTest, TruncationAtEveryBoundaryRejectedWithoutMutation) {
  auto cfg = SmallConfig();
  models::Gru4Rec a(cfg);
  TrainBriefly(a);
  std::string path = CheckpointPath(dir_.string(), 0);
  ASSERT_TRUE(SaveTrainingCheckpoint(a, SomeFitState(), path));
  const std::string good = ReadFile(path);

  // Recover the section layout from the file itself so the sweep hits
  // every section boundary exactly, plus interior offsets.
  std::vector<size_t> cuts = {0, 4, 8, 12};  // inside the header
  {
    size_t pos = 12;
    uint32_t section_count = 0;
    std::memcpy(&section_count, good.data() + 8, 4);
    for (uint32_t s = 0; s < section_count; ++s) {
      uint64_t size = 0;
      std::memcpy(&size, good.data() + pos + 4, 8);
      cuts.push_back(pos + 8);           // inside the section header
      pos += 16;                         // tag + size + crc
      cuts.push_back(pos);               // payload start
      cuts.push_back(pos + size / 2);    // mid-payload
      pos += size;
      cuts.push_back(pos);               // section boundary
    }
    ASSERT_EQ(pos + 4, good.size());  // trailing file CRC
  }

  models::Gru4Rec victim(cfg);
  TrainBriefly(victim);
  const auto before = StateOf(victim);
  for (size_t cut : cuts) {
    ASSERT_LT(cut, good.size());
    WriteFile(path, good.substr(0, cut));
    models::FitResumeState st;
    EXPECT_FALSE(LoadTrainingCheckpoint(victim, &st, path))
        << "truncation at " << cut << "/" << good.size()
        << " was not detected";
    EXPECT_EQ(StateOf(victim), before) << "mutated at cut " << cut;
  }
  // The untruncated file still loads (the sweep harness itself is sound).
  WriteFile(path, good);
  models::FitResumeState st;
  EXPECT_TRUE(LoadTrainingCheckpoint(victim, &st, path));
}

TEST_F(CheckpointTest, ShortWriteFailsAndPreservesPreviousCheckpoint) {
  auto cfg = SmallConfig();
  models::Gru4Rec a(cfg);
  TrainBriefly(a);
  std::string path = CheckpointPath(dir_.string(), 0);
  ASSERT_TRUE(SaveTrainingCheckpoint(a, SomeFitState(), path));
  const std::string good = ReadFile(path);

  TrainBriefly(a);
  fault::Arm("ckpt.short_write");
  EXPECT_FALSE(SaveTrainingCheckpoint(a, SomeFitState(), path));
  fault::DisarmAll();
  EXPECT_EQ(ReadFile(path), good);  // old file untouched
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(CheckpointTest, RenameFailFailsAndPreservesPreviousCheckpoint) {
  auto cfg = SmallConfig();
  models::Gru4Rec a(cfg);
  TrainBriefly(a);
  std::string path = CheckpointPath(dir_.string(), 0);
  ASSERT_TRUE(SaveTrainingCheckpoint(a, SomeFitState(), path));
  const std::string good = ReadFile(path);

  TrainBriefly(a);
  fault::Arm("ckpt.rename_fail");
  EXPECT_FALSE(SaveTrainingCheckpoint(a, SomeFitState(), path));
  fault::DisarmAll();
  EXPECT_EQ(ReadFile(path), good);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(CheckpointTest, TornFileReportsSuccessButIsRejectedOnLoad) {
  auto cfg = SmallConfig();
  models::Gru4Rec a(cfg);
  TrainBriefly(a);
  std::string path = CheckpointPath(dir_.string(), 0);
  fault::Arm("ckpt.torn_file");
  // The torn write completes the whole protocol — the caller cannot tell.
  EXPECT_TRUE(SaveTrainingCheckpoint(a, SomeFitState(), path));
  fault::DisarmAll();
  models::Gru4Rec b(cfg);
  models::FitResumeState st;
  EXPECT_FALSE(LoadTrainingCheckpoint(b, &st, path));
}

TEST_F(CheckpointTest, PruneKeepsNewest) {
  for (int e = 0; e < 5; ++e) {
    WriteFile(CheckpointPath(dir_.string(), e), "x");
  }
  PruneCheckpoints(dir_.string(), 2);
  auto listed = ListCheckpoints(dir_.string());
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], CheckpointPath(dir_.string(), 3));
  EXPECT_EQ(listed[1], CheckpointPath(dir_.string(), 4));
}

TEST_F(CheckpointTest, InstallHooksSaveAndRestore) {
  auto cfg = SmallConfig();
  models::Gru4Rec a(cfg);
  TrainBriefly(a);
  CheckpointOptions opts;
  opts.dir = dir_.string();
  opts.every = 2;
  models::TrainConfig tc;
  ASSERT_TRUE(InstallCheckpointHooks(opts, a, &tc));
  EXPECT_EQ(tc.checkpoint_every, 2);
  ASSERT_TRUE(tc.checkpoint_save != nullptr);
  ASSERT_TRUE(tc.checkpoint_restore != nullptr);

  auto st = SomeFitState();
  ASSERT_TRUE(tc.checkpoint_save(st));
  auto saved = StateOf(a);

  TrainBriefly(a);  // drift away from the checkpoint
  models::FitResumeState restored;
  ASSERT_TRUE(tc.checkpoint_restore(&restored));
  EXPECT_EQ(StateOf(a), saved);
  EXPECT_EQ(restored.next_epoch, st.next_epoch);
}

TEST_F(CheckpointTest, RestoreFallsBackPastTornNewestCheckpoint) {
  auto cfg = SmallConfig();
  models::Gru4Rec a(cfg);
  TrainBriefly(a);
  CheckpointOptions opts;
  opts.dir = dir_.string();
  models::TrainConfig tc;
  ASSERT_TRUE(InstallCheckpointHooks(opts, a, &tc));

  auto st = SomeFitState();
  st.next_epoch = 1;
  ASSERT_TRUE(tc.checkpoint_save(st));
  auto good_state = StateOf(a);

  TrainBriefly(a);
  st.next_epoch = 2;
  fault::Arm("ckpt.torn_file");
  ASSERT_TRUE(tc.checkpoint_save(st));  // "succeeds", file is torn
  fault::DisarmAll();

  TrainBriefly(a);  // drift further
  models::FitResumeState restored;
  ASSERT_TRUE(tc.checkpoint_restore(&restored));
  // The torn epoch-2 file was skipped; epoch 1 state came back.
  EXPECT_EQ(restored.next_epoch, 1);
  EXPECT_EQ(StateOf(a), good_state);
}

TEST_F(CheckpointTest, HooksRetainTwoCheckpoints) {
  auto cfg = SmallConfig();
  models::Gru4Rec a(cfg);
  CheckpointOptions opts;
  opts.dir = dir_.string();
  models::TrainConfig tc;
  ASSERT_TRUE(InstallCheckpointHooks(opts, a, &tc));
  models::FitResumeState st;
  for (int e = 1; e <= 4; ++e) {
    st.next_epoch = e;
    ASSERT_TRUE(tc.checkpoint_save(st));
  }
  auto listed = ListCheckpoints(dir_.string());
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], CheckpointPath(dir_.string(), 3));
  EXPECT_EQ(listed[1], CheckpointPath(dir_.string(), 4));
}

}  // namespace
}  // namespace causer::core
