#include <gtest/gtest.h>

#include <algorithm>

#include "causal/d_separation.h"

namespace causer::causal {
namespace {

Graph Chain3() {
  Graph g(3);
  g.SetEdge(0, 1);
  g.SetEdge(1, 2);
  return g;
}

TEST(DSeparationTest, ChainBlockedByMiddle) {
  Graph g = Chain3();
  EXPECT_FALSE(DSeparated(g, {0}, {2}, {}));
  EXPECT_TRUE(DSeparated(g, {0}, {2}, {1}));
}

TEST(DSeparationTest, ForkBlockedByRoot) {
  Graph g(3);
  g.SetEdge(1, 0);
  g.SetEdge(1, 2);
  EXPECT_FALSE(DSeparated(g, {0}, {2}, {}));
  EXPECT_TRUE(DSeparated(g, {0}, {2}, {1}));
}

TEST(DSeparationTest, ColliderBlocksUnlessObserved) {
  Graph g(3);
  g.SetEdge(0, 1);
  g.SetEdge(2, 1);
  EXPECT_TRUE(DSeparated(g, {0}, {2}, {}));       // collider blocks
  EXPECT_FALSE(DSeparated(g, {0}, {2}, {1}));     // opens when observed
}

TEST(DSeparationTest, ColliderDescendantOpensPath) {
  // 0 -> 1 <- 2, 1 -> 3. Conditioning on the descendant 3 opens the path.
  Graph g(4);
  g.SetEdge(0, 1);
  g.SetEdge(2, 1);
  g.SetEdge(1, 3);
  EXPECT_TRUE(DSeparated(g, {0}, {2}, {}));
  EXPECT_FALSE(DSeparated(g, {0}, {2}, {3}));
}

TEST(DSeparationTest, DisconnectedNodesSeparated) {
  Graph g(4);
  g.SetEdge(0, 1);
  g.SetEdge(2, 3);
  EXPECT_TRUE(DSeparated(g, {0, 1}, {2, 3}, {}));
}

TEST(DSeparationTest, SymmetricInArguments) {
  Graph g = Chain3();
  for (const std::vector<int>& cond : {std::vector<int>{}, {1}}) {
    EXPECT_EQ(DSeparated(g, {0}, {2}, cond), DSeparated(g, {2}, {0}, cond));
  }
}

TEST(DSeparationTest, MDiagramCase) {
  // Classic M-structure: 0 -> 2 <- 1, 1 -> 3, plus independent source.
  //   a=0, collider c=2, b=1, child d=3.
  Graph g(4);
  g.SetEdge(0, 2);
  g.SetEdge(1, 2);
  g.SetEdge(1, 3);
  // 0 and 3 connected only through collider 2 / fork 1.
  EXPECT_TRUE(DSeparated(g, {0}, {3}, {}));       // blocked at collider
  EXPECT_FALSE(DSeparated(g, {0}, {3}, {2}));     // collider opened
  EXPECT_TRUE(DSeparated(g, {0}, {3}, {2, 1}));   // re-blocked at fork 1
}

TEST(DSeparationTest, LongChainConditioning) {
  Graph g(5);
  for (int i = 0; i + 1 < 5; ++i) g.SetEdge(i, i + 1);
  EXPECT_FALSE(DSeparated(g, {0}, {4}, {}));
  for (int mid = 1; mid < 4; ++mid) {
    EXPECT_TRUE(DSeparated(g, {0}, {4}, {mid})) << "mid " << mid;
  }
}

TEST(ReachableTest, SourcesReachableWhenUnobserved) {
  Graph g = Chain3();
  auto r = ReachableViaActiveTrail(g, {0}, {});
  EXPECT_TRUE(std::find(r.begin(), r.end(), 0) != r.end());
  EXPECT_TRUE(std::find(r.begin(), r.end(), 2) != r.end());
}

TEST(ReachableTest, BlockedNodesExcluded) {
  Graph g = Chain3();
  auto r = ReachableViaActiveTrail(g, {0}, {1});
  EXPECT_TRUE(std::find(r.begin(), r.end(), 2) == r.end());
}

}  // namespace
}  // namespace causer::causal
