#include <gtest/gtest.h>

#include <algorithm>

#include "causal/graph.h"

namespace causer::causal {
namespace {

Graph Chain3() {
  Graph g(3);
  g.SetEdge(0, 1);
  g.SetEdge(1, 2);
  return g;
}

TEST(GraphTest, EdgeSetAndClear) {
  Graph g(3);
  EXPECT_FALSE(g.Edge(0, 1));
  g.SetEdge(0, 1);
  EXPECT_TRUE(g.Edge(0, 1));
  EXPECT_FALSE(g.Edge(1, 0));
  g.SetEdge(0, 1, false);
  EXPECT_FALSE(g.Edge(0, 1));
}

TEST(GraphTest, NumEdgesAndAdjacency) {
  Graph g = Chain3();
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_EQ(g.Parents(1), (std::vector<int>{0}));
  EXPECT_EQ(g.Children(1), (std::vector<int>{2}));
  EXPECT_TRUE(g.Parents(0).empty());
  EXPECT_TRUE(g.Children(2).empty());
}

TEST(GraphTest, IsDagOnChain) { EXPECT_TRUE(Chain3().IsDag()); }

TEST(GraphTest, CycleDetected) {
  Graph g = Chain3();
  g.SetEdge(2, 0);
  EXPECT_FALSE(g.IsDag());
}

TEST(GraphTest, TwoCycleDetected) {
  Graph g(2);
  g.SetEdge(0, 1);
  g.SetEdge(1, 0);
  EXPECT_FALSE(g.IsDag());
}

TEST(GraphTest, TopologicalOrderRespectsEdges) {
  Graph g(4);
  g.SetEdge(3, 1);
  g.SetEdge(1, 0);
  g.SetEdge(3, 2);
  g.SetEdge(2, 0);
  auto order = g.TopologicalOrder();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](int v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos(3), pos(1));
  EXPECT_LT(pos(1), pos(0));
  EXPECT_LT(pos(3), pos(2));
  EXPECT_LT(pos(2), pos(0));
}

TEST(GraphTest, DescendantsAndAncestors) {
  Graph g(5);
  g.SetEdge(0, 1);
  g.SetEdge(1, 2);
  g.SetEdge(1, 3);
  auto desc = g.Descendants(0);
  std::sort(desc.begin(), desc.end());
  EXPECT_EQ(desc, (std::vector<int>{1, 2, 3}));
  auto anc = g.Ancestors(2);
  std::sort(anc.begin(), anc.end());
  EXPECT_EQ(anc, (std::vector<int>{0, 1}));
  EXPECT_TRUE(g.Descendants(4).empty());
}

TEST(GraphTest, EqualityOperator) {
  Graph a = Chain3(), b = Chain3();
  EXPECT_TRUE(a == b);
  b.SetEdge(0, 2);
  EXPECT_FALSE(a == b);
}

TEST(RandomDagTest, AlwaysAcyclicAcrossSeeds) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    Graph g = RandomDag(12, 0.4, rng);
    EXPECT_TRUE(g.IsDag()) << "seed " << seed;
  }
}

TEST(RandomDagTest, EdgeProbabilityExtremes) {
  Rng rng(1);
  Graph empty = RandomDag(8, 0.0, rng);
  EXPECT_EQ(empty.NumEdges(), 0);
  Graph full = RandomDag(8, 1.0, rng);
  EXPECT_EQ(full.NumEdges(), 8 * 7 / 2);  // complete DAG
  EXPECT_TRUE(full.IsDag());
}

TEST(RandomDagTest, DeterministicGivenSeed) {
  Rng r1(77), r2(77);
  EXPECT_TRUE(RandomDag(10, 0.3, r1) == RandomDag(10, 0.3, r2));
}

TEST(ThresholdTest, BinarizesAndDropsDiagonal) {
  Dense w(3, 3);
  w(0, 1) = 0.5;
  w(1, 2) = -0.6;  // |.| > threshold counts
  w(2, 2) = 5.0;   // diagonal dropped
  w(1, 0) = 0.1;
  Graph g = Threshold(w, 0.3);
  EXPECT_TRUE(g.Edge(0, 1));
  EXPECT_TRUE(g.Edge(1, 2));
  EXPECT_FALSE(g.Edge(1, 0));
  EXPECT_EQ(g.NumEdges(), 2);
}

TEST(ToDenseTest, RoundTrip) {
  Graph g = Chain3();
  Dense d = ToDense(g);
  EXPECT_DOUBLE_EQ(d(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 0.0);
  Graph back = Threshold(d, 0.5);
  EXPECT_TRUE(back == g);
}

}  // namespace
}  // namespace causer::causal
